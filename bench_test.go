// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation, plus the baseline and the ablations called out in
// DESIGN.md. Quantities the paper reports (durations, counts, fractions)
// are emitted as custom benchmark metrics so `go test -bench` regenerates
// the evaluation in one run.
package sacha_test

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"testing"
	"time"

	"sacha/internal/apps"
	"sacha/internal/attack"
	"sacha/internal/attestation"
	"sacha/internal/channel"
	"sacha/internal/compress"
	"sacha/internal/core"
	"sacha/internal/cpu"
	"sacha/internal/device"
	"sacha/internal/ethsim"
	"sacha/internal/fabric"
	"sacha/internal/hwattest"
	"sacha/internal/netlist"
	"sacha/internal/obs/span"
	"sacha/internal/pose"
	"sacha/internal/prover"
	"sacha/internal/resources"
	"sacha/internal/scrub"
	"sacha/internal/swarm"
	"sacha/internal/timing"
	"sacha/internal/trace"
	"sacha/internal/verifier"
)

func newSmall(b *testing.B, mutate func(*core.Config)) *core.System {
	b.Helper()
	cfg := core.Config{
		Geo:        device.SmallLX(),
		App:        netlist.Blinker(16),
		KeyMode:    core.KeyStatPUF,
		DeviceID:   1,
		LabLatency: -1,
		Seed:       1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := core.NewSystem(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return sys
}

// BenchmarkTable2Resources regenerates Table 2 and reports the StatPart
// occupancy fraction (paper: < 9%).
func BenchmarkTable2Resources(b *testing.B) {
	geo := device.XC6VLX240T()
	var rows []resources.Usage
	for i := 0; i < b.N; i++ {
		rows = resources.Table2(geo)
	}
	b.ReportMetric(float64(rows[1].CLB), "statpart-CLBs")
	b.ReportMetric(float64(rows[2].CLB), "mac-CLBs")
	b.ReportMetric(resources.StatPartFraction(geo)*100, "statpart-%")
}

// BenchmarkTable3Actions regenerates the per-action timings of Table 3 as
// metrics (ns each).
func BenchmarkTable3Actions(b *testing.B) {
	m := timing.NewModel(device.XC6VLX240T())
	var rows []timing.Row
	for i := 0; i < b.N; i++ {
		rows = m.Table3()
	}
	for _, row := range rows {
		b.ReportMetric(float64(row.Time.Nanoseconds()), fmt.Sprintf("A%d-ns", int(row.Action)))
	}
}

// BenchmarkTable4Protocol regenerates the protocol totals of Table 4
// (paper: theoretical 1.443 s, measured 28.5 s) and the JTAG reference.
func BenchmarkTable4Protocol(b *testing.B) {
	m := timing.NewModel(device.XC6VLX240T())
	var tab timing.Table4
	for i := 0; i < b.N; i++ {
		tab = m.Table4()
	}
	b.ReportMetric(tab.Theoretical.Seconds(), "theoretical-s")
	b.ReportMetric(tab.Measured.Seconds(), "measured-s")
	b.ReportMetric(float64(tab.Commands), "commands")
	b.ReportMetric(m.JTAGConfigTime().Seconds(), "jtag-ref-s")
}

// BenchmarkFig8Protocol runs the full SACHa protocol of Fig. 8 (honest
// attestation) end to end on the small device, reporting the virtual lab
// duration scaled to the XC6VLX240T-equivalent message count.
func BenchmarkFig8Protocol(b *testing.B) {
	sys := newSmall(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sys.Attest(core.AttestOptions{})
		if err != nil || !rep.Accepted {
			b.Fatalf("attestation failed: %v", err)
		}
	}
	b.ReportMetric(float64(sys.Geo.NumFrames()), "frames")
}

// BenchmarkFig9Trace runs the low-level Fig. 9 sequence with a non-zero
// readback offset and the trace generator active.
func BenchmarkFig9Trace(b *testing.B) {
	sys := newSmall(b, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sys.Attest(core.AttestOptions{
			Opts: verifier.Options{Offset: 137, Trace: io.Discard},
		})
		if err != nil || !rep.Accepted {
			b.Fatalf("attestation failed: %v", err)
		}
	}
}

// BenchmarkSecurityMatrix replays the §7.2 adversary suite (five attacks,
// each a full protocol run against a fresh system).
func BenchmarkSecurityMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		results, err := attack.All(func() (*core.System, error) {
			return core.NewSystem(core.Config{
				Geo:        device.SmallLX(),
				App:        netlist.Blinker(8),
				KeyMode:    core.KeyStatPUF,
				DeviceID:   1,
				LabLatency: -1,
				Seed:       2,
			})
		})
		if err != nil {
			b.Fatal(err)
		}
		detected := 0
		for _, r := range results {
			if r.Detected {
				detected++
			}
		}
		if detected != len(results) {
			b.Fatalf("only %d/%d adversaries detected", detected, len(results))
		}
		b.ReportMetric(float64(detected), "detected")
	}
}

// BenchmarkCaptureAttestation exercises the §8 future-work extension:
// register-state attestation with verifier-side prediction.
func BenchmarkCaptureAttestation(b *testing.B) {
	sys := newSmall(b, func(c *core.Config) { c.App = netlist.LFSR(16, []int{0, 2, 3, 5}) })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sys.Attest(core.AttestOptions{Opts: verifier.Options{AppSteps: 41}})
		if err != nil || !rep.Accepted {
			b.Fatalf("capture attestation failed: %v", err)
		}
	}
}

// BenchmarkSignatureMode exercises the §8 signature extension (no
// pre-shared key).
func BenchmarkSignatureMode(b *testing.B) {
	sys := newSmall(b, func(c *core.Config) { c.EnableSignature = true })
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sys.Attest(core.AttestOptions{Opts: verifier.Options{SignatureMode: true}})
		if err != nil || !rep.Accepted {
			b.Fatalf("signature attestation failed: %v", err)
		}
	}
}

// BenchmarkPoSEBaseline runs the Perito–Tsudik proofs-of-secure-erasure
// baseline the SACHa design transplants to FPGAs.
func BenchmarkPoSEBaseline(b *testing.B) {
	key := [16]byte{1}
	code, err := cpu.Assemble(`
		LDI r0, 1
		OUT r0, 0
		HALT
	`)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	v := &pose.Verifier{Key: key, MemWords: 4096}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d, err := pose.NewDevice(4096, key)
		if err != nil {
			b.Fatal(err)
		}
		rep, err := v.SecureCodeUpdate(d, code, rng)
		if err != nil || !rep.Accepted {
			b.Fatalf("PoSE round failed: %v", err)
		}
	}
	b.ReportMetric(pose.ProtocolTime(4096, 1_000_000, 1_000_000).Seconds()*1e3, "modelled-ms")
}

// BenchmarkCombinedHwSw runs the Fig. 1 combined scenario: SACHa
// self-attestation plus software attestation of the µP.
func BenchmarkCombinedHwSw(b *testing.B) {
	program, err := cpu.Assemble(`
		LDI r0, 7
		OUT r0, 0
		HALT
	`)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := hwattest.New(core.Config{
		Geo:        device.SmallLX(),
		App:        netlist.Counter(8),
		LabLatency: -1,
		Seed:       4,
	}, program, 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := sys.Attest(core.AttestOptions{})
		if err != nil || !rep.Accepted {
			b.Fatalf("combined attestation failed: %v", err)
		}
	}
}

// BenchmarkAblationFramesPerPacket sweeps the §6.1 trade-off between the
// StatPart BRAM buffer size and the number of communication steps.
func BenchmarkAblationFramesPerPacket(b *testing.B) {
	m := timing.NewModel(device.XC6VLX240T())
	for _, k := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("frames=%d", k), func(b *testing.B) {
			var pts []timing.BatchPoint
			for i := 0; i < b.N; i++ {
				pts = m.BatchSweep([]int{k})
			}
			p := pts[0]
			b.ReportMetric(float64(p.BufferBytes), "buffer-B")
			b.ReportMetric(float64(p.Commands), "commands")
			b.ReportMetric(p.Measured.Seconds(), "measured-s")
		})
	}
}

// BenchmarkAblationDeviceSize sweeps protocol totals across device sizes.
func BenchmarkAblationDeviceSize(b *testing.B) {
	for _, geo := range []*device.Geometry{device.SmallLX(), device.XC6VLX240T(), device.BigLX()} {
		b.Run(geo.Name, func(b *testing.B) {
			m := timing.NewModel(geo)
			var tab timing.Table4
			for i := 0; i < b.N; i++ {
				tab = m.Table4()
			}
			b.ReportMetric(float64(geo.NumFrames()), "frames")
			b.ReportMetric(tab.Theoretical.Seconds(), "theoretical-s")
			b.ReportMetric(tab.Measured.Seconds(), "measured-s")
		})
	}
}

// BenchmarkAblationFrameOrder compares the default ascending readback
// order with a random permutation (paper §6.1: any permutation works).
func BenchmarkAblationFrameOrder(b *testing.B) {
	sys := newSmall(b, nil)
	perm := rand.New(rand.NewSource(9)).Perm(sys.Geo.NumFrames())
	b.Run("ascending", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := sys.Attest(core.AttestOptions{Opts: verifier.Options{Offset: 7}})
			if err != nil || !rep.Accepted {
				b.Fatal(err)
			}
		}
	})
	b.Run("permuted", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep, err := sys.Attest(core.AttestOptions{Opts: verifier.Options{Permutation: perm}})
			if err != nil || !rep.Accepted {
				b.Fatal(err)
			}
		}
	})
	b.Run("batched-config", func(b *testing.B) {
		// The real-protocol counterpart of the frames-per-packet
		// ablation: four frames per ICAP_config_batch packet.
		for i := 0; i < b.N; i++ {
			rep, err := sys.Attest(core.AttestOptions{Opts: verifier.Options{ConfigBatch: 4}})
			if err != nil || !rep.Accepted {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationCompression evaluates bitstream compression ([24] in
// the paper) on the golden partial bitstream: the compression ratio, and
// the configuration-phase wire time with compressed ICAP_config payloads.
func BenchmarkAblationCompression(b *testing.B) {
	geo := device.XC6VLX240T()
	golden, dynFrames, err := core.BuildGolden(geo, netlist.Blinker(16), 1, 0x5A5A)
	if err != nil {
		b.Fatal(err)
	}
	var words []uint32
	for _, idx := range dynFrames {
		words = append(words, golden.Frame(idx)...)
	}
	var ratio float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ratio = compress.Ratio(words)
	}
	b.StopTimer()
	rawBytes := len(words) * 4
	b.ReportMetric(ratio, "ratio")
	b.ReportMetric(float64(rawBytes)/1e6, "raw-MB")
	b.ReportMetric(float64(rawBytes)*ratio/1e6, "compressed-MB")
	// Configuration wire time: raw vs compressed payloads at Gigabit.
	raw := ethsim.WireTime(rawBytes)
	comp := ethsim.WireTime(int(float64(rawBytes) * ratio))
	b.ReportMetric(raw.Seconds()*1e3, "wire-raw-ms")
	b.ReportMetric(comp.Seconds()*1e3, "wire-compressed-ms")
}

// BenchmarkScrubCycle measures one full scrub (scan + repair) after a
// burst of injected SEUs — the §2.1.3 readback use case.
func BenchmarkScrubCycle(b *testing.B) {
	geo := device.SmallLX()
	golden, _, err := core.BuildGolden(geo, netlist.Counter(8), 1, 1)
	if err != nil {
		b.Fatal(err)
	}
	fab := fabric.New(geo)
	for i := 0; i < geo.NumFrames(); i++ {
		if err := fab.WriteFrame(i, golden.Frame(i)); err != nil {
			b.Fatal(err)
		}
	}
	s := scrub.New(fab, golden)
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scrub.InjectSEUs(fab, rng, 20)
		if _, err := s.ScrubOnce(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSwarmSweep attests a small fleet in parallel.
func BenchmarkSwarmSweep(b *testing.B) {
	fleet, err := swarm.NewFleet(4, func(id uint64) (*core.System, error) {
		return core.NewSystem(core.Config{
			Geo:        device.SmallLX(),
			App:        netlist.Blinker(8),
			KeyMode:    core.KeyStatPUF,
			DeviceID:   id,
			LabLatency: -1,
			Seed:       int64(id),
		})
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := fleet.AttestAll(true, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Healthy) != fleet.Size() {
			b.Fatalf("unhealthy fleet: %v", rep.Compromised)
		}
	}
}

// BenchmarkPlanReuse separates the per-class plan build from the
// per-device run on one system: "cold" rebuilds the plan inside every
// attestation (the pre-split behaviour), "shared" builds the plan once
// and drives only per-session Runs — no prediction, no mask generation,
// no message re-encoding in the loop.
func BenchmarkPlanReuse(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		sys := newSmall(b, nil)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := sys.Attest(core.AttestOptions{})
			if err != nil || !rep.Accepted {
				b.Fatalf("attestation failed: %v", err)
			}
		}
	})
	b.Run("shared", func(b *testing.B) {
		sys := newSmall(b, nil)
		plan, err := sys.Plan(42, verifier.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := sys.AttestWithPlan(plan, core.AttestOptions{})
			if err != nil || !rep.Accepted {
				b.Fatalf("attestation failed: %v", err)
			}
		}
	})
}

// BenchmarkFleetPlan compares a fleet sweep that builds one plan per
// device (cold) against the shared-plan sweep (one build per device
// class), reporting the golden-image builds each sweep pays.
func BenchmarkFleetPlan(b *testing.B) {
	newFleet := func(b *testing.B) *swarm.Fleet {
		b.Helper()
		fleet, err := swarm.NewFleet(6, func(id uint64) (*core.System, error) {
			return core.NewSystem(core.Config{
				Geo:        device.SmallLX(),
				App:        netlist.Blinker(8),
				KeyMode:    core.KeyStatPUF,
				DeviceID:   id,
				LabLatency: -1,
				Seed:       int64(id),
			})
		})
		if err != nil {
			b.Fatal(err)
		}
		return fleet
	}
	b.Run("cold-plan", func(b *testing.B) {
		fleet := newFleet(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := fleet.Sweep(context.Background(), swarm.SweepConfig{Concurrency: 4}, nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(rep.Healthy) != fleet.Size() {
				b.Fatalf("unhealthy fleet: %v", rep.Compromised)
			}
		}
		// Without SharePlans every device builds its own plan inside
		// Attest: fleet-size golden-image builds per sweep.
		b.ReportMetric(float64(fleet.Size()), "plan-builds/sweep")
	})
	b.Run("shared-plan", func(b *testing.B) {
		fleet := newFleet(b)
		nonce := uint64(0xBEEF)
		built := 0
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			rep, err := fleet.Sweep(context.Background(), swarm.SweepConfig{
				Concurrency: 4, SharePlans: true, Nonce: &nonce,
			}, nil)
			if err != nil {
				b.Fatal(err)
			}
			if len(rep.Healthy) != fleet.Size() {
				b.Fatalf("unhealthy fleet: %v", rep.Compromised)
			}
			built = rep.PlansBuilt
		}
		b.ReportMetric(float64(built), "plan-builds/sweep")
	})
}

// BenchmarkPlaceAndDecode measures the golden-image pipeline: place an
// application and functionally decode it from the bits.
func BenchmarkPlaceAndDecode(b *testing.B) {
	geo := device.SmallLX()
	app, err := apps.ByName("lfsr16")
	if err != nil {
		b.Fatal(err)
	}
	region := fabric.AppRegion(geo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		im := fabric.NewImage(geo)
		if _, err := fabric.PlaceDesign(im, region, app); err != nil {
			b.Fatal(err)
		}
		fab := fabric.New(geo)
		for _, idx := range region.Frames() {
			if err := fab.WriteFrame(idx, im.Frame(idx)); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := fab.Live(region); err != nil {
			b.Fatal(err)
		}
	}
}

// newTinyAttestRig builds the TinyLX plan and a fresh prover/link factory
// for the transport benchmarks: each call of the returned dial function
// boots one honest device, serves it over a simulated pair and wraps the
// verifier side in a DelayEndpoint with the given one-way latency.
func newTinyAttestRig(b *testing.B, delay time.Duration) (*attestation.Plan, prover.RegisterKey, func() channel.Endpoint) {
	b.Helper()
	geo := device.TinyLX()
	key := prover.RegisterKey{3, 1, 4, 1, 5}
	golden, dyn, err := core.BuildGolden(geo, netlist.Blinker(8), 0xD00D, 0xCAFEBABE)
	if err != nil {
		b.Fatal(err)
	}
	plan, err := attestation.NewPlan(attestation.Spec{Geo: geo, Golden: golden, DynFrames: dyn})
	if err != nil {
		b.Fatal(err)
	}
	dial := func() channel.Endpoint {
		dev, err := prover.New(prover.Config{Geo: geo, BootMem: core.BuildBootMem(geo, 0xD00D), Key: key})
		if err != nil {
			b.Fatal(err)
		}
		if err := dev.PowerOn(); err != nil {
			b.Fatal(err)
		}
		vrfEP, prvEP := channel.SimPair(channel.SimConfig{})
		go dev.Serve(prvEP)
		return channel.NewDelayEndpoint(vrfEP, delay)
	}
	return plan, key, dial
}

// BenchmarkWindowedReadback measures the attestation data path over a
// 1 ms one-way link at increasing pipeline depths. Window=1 is the
// paper's lockstep protocol — one round trip per frame — and the
// frames-per-sec metric is the headline: Window=16 sustains well over 5x
// the lockstep rate because up to 16 frames share each round trip.
//
// The "+spans" variants run the same protocol with causal tracing fully
// armed — session span, protocol-event bridge, phase children — and are
// the tracing overhead budget: frames/sec must stay within 3% of the
// untraced run at the same window (the path is latency-bound, so the
// per-event span cost amortises below measurement noise). With tracing
// disabled (the plain variants) the span hooks are nil and cost zero
// allocations, pinned separately by TestNilSpanZeroAlloc.
func BenchmarkWindowedReadback(b *testing.B) {
	const oneWay = time.Millisecond
	for _, window := range []int{1, 4, 16} {
		for _, traced := range []bool{false, true} {
			name := fmt.Sprintf("window=%d", window)
			if traced {
				name += "+spans"
			}
			b.Run(name, func(b *testing.B) {
				plan, key, dial := newTinyAttestRig(b, oneWay)
				col := span.NewCollector(0)
				root := col.StartTrace(span.NewTraceID(0xBE9C), "bench")
				defer root.End()
				var frames, retries int
				b.ResetTimer()
				start := time.Now()
				for i := 0; i < b.N; i++ {
					ep := dial()
					var k [16]byte = key
					opts := attestation.RunOpts{Key: k, Retry: attestation.RetryPolicy{
						Timeout:    250 * time.Millisecond,
						MaxRetries: 5,
						Window:     window,
					}}
					var sp *span.Span
					if traced {
						sp = root.DeviceChild("bench", uint64(i)+1)
						opts.Span = sp
						opts.Events = trace.NewLog(512)
					}
					rep, err := plan.Run(ep, opts)
					sp.End()
					ep.Close()
					if err != nil {
						b.Fatal(err)
					}
					if !rep.Accepted {
						b.Fatalf("rejected: %+v", rep)
					}
					frames += rep.FramesRead
					retries += rep.Retries
				}
				elapsed := time.Since(start)
				b.ReportMetric(float64(frames)/elapsed.Seconds(), "frames/sec")
				b.ReportMetric(float64(elapsed.Nanoseconds())/float64(frames), "ns/frame")
				b.ReportMetric(float64(retries)/float64(b.N), "retries/run")
			})
		}
	}
}

// BenchmarkPlanCache compares a cold attestation.NewPlan build against a
// PlanCache hit for the same (golden digest, geometry, options) key —
// the sweep-to-sweep saving of the digest-keyed cache.
func BenchmarkPlanCache(b *testing.B) {
	geo := device.TinyLX()
	golden, dyn, err := core.BuildGolden(geo, netlist.Blinker(8), 0xD00D, 0xCAFEBABE)
	if err != nil {
		b.Fatal(err)
	}
	spec := attestation.Spec{Geo: geo, Golden: golden, DynFrames: dyn}
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := attestation.NewPlan(spec); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("cached", func(b *testing.B) {
		cache := attestation.NewPlanCache(0)
		if _, built, err := cache.GetOrBuild(spec); err != nil || !built {
			b.Fatalf("warmup: built=%v err=%v", built, err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			_, built, err := cache.GetOrBuild(spec)
			if err != nil || built {
				b.Fatalf("cache miss on hit path: built=%v err=%v", built, err)
			}
		}
	})
}
