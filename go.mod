module sacha

go 1.22
