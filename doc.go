// Package sacha is a full reproduction of "SACHa: Self-Attestation of
// Configurable Hardware" (Vliegen, Rabbani, Conti, Mentens — DATE 2019)
// as a Go library: a frame-accurate FPGA fabric and ICAP model, the SACHa
// prover and verifier, the attestation protocol, the paper's adversaries,
// the Perito–Tsudik baseline and the future-work extensions.
//
// The public entry point is internal/core; the runnable entry points are
// the binaries under cmd/ and the programs under examples/. The benchmark
// harness in bench_test.go regenerates every table and figure of the
// paper's evaluation; see DESIGN.md and EXPERIMENTS.md.
package sacha
