// Remote attestation over TCP: a prover device served on a real socket
// and a verifier that dials it — the deployment shape of the command-line
// tools, in one process for easy running.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"sacha/internal/channel"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
	"sacha/internal/prover"
	"sacha/internal/verifier"
)

func main() {
	geo := device.SmallLX()
	app := netlist.Counter(16)
	const buildID = 7
	key := [16]byte{0: 0xA5, 15: 0x5A}

	// Prover side: boot the device and serve it on a socket.
	dev, err := prover.New(prover.Config{
		Geo:     geo,
		BootMem: core.BuildBootMem(geo, buildID),
		Key:     prover.RegisterKey(key),
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := dev.PowerOn(); err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			log.Fatal(err)
		}
		ep := channel.NewTCP(conn)
		defer ep.Close()
		if err := dev.Serve(ep); err != nil {
			log.Printf("prover: %v", err)
		}
	}()
	fmt.Printf("prover listening on %s\n", ln.Addr())

	// Verifier side: reconstruct the golden image from the shared
	// provisioning data and attest over the socket.
	nonce := uint64(time.Now().UnixNano())
	golden, dynFrames, err := core.BuildGolden(geo, app, buildID, nonce)
	if err != nil {
		log.Fatal(err)
	}
	ep, err := channel.Dial(ln.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	defer ep.Close()

	v := verifier.New(geo, key)
	start := time.Now()
	rep, err := v.Attest(ep, golden, dynFrames, verifier.Options{Offset: 1234})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("configured %d frames, read back %d frames in %v\n",
		rep.FramesConfigured, rep.FramesRead, time.Since(start).Round(time.Millisecond))
	fmt.Printf("H_Prv == H_Vrf: %v,  B_Prv == B_Vrf: %v  ->  accepted: %v\n",
		rep.MACOK, rep.ConfigOK, rep.Accepted)
}
