// Processor attestation: the motivating scenario of the paper (Fig. 1,
// right) end to end. An embedded system pairs a microprocessor with an
// FPGA. The FPGA first proves its own configuration with SACHa; only then
// is it trusted to attest the processor's software over the local bus.
package main

import (
	"fmt"
	"log"

	"sacha/internal/core"
	"sacha/internal/cpu"
	"sacha/internal/device"
	"sacha/internal/hwattest"
	"sacha/internal/netlist"
)

func main() {
	// The processor's firmware: compute 1+2+...+10 and publish it on
	// port 0.
	program, err := cpu.Assemble(`
		LDI  r0, 0
		LDI  r1, 10
		LDI  r2, 1
	loop:
		ADD  r0, r1
		SUB  r1, r2
		JNZ  r1, loop
		OUT  r0, 0
		HALT
	`)
	if err != nil {
		log.Fatal(err)
	}

	sys, err := hwattest.New(core.Config{
		Geo:        device.SmallLX(),
		App:        netlist.Counter(8),
		KeyMode:    core.KeyStatPUF,
		DeviceID:   3,
		LabLatency: -1,
		Seed:       3,
	}, program, 512)
	if err != nil {
		log.Fatal(err)
	}

	rep, err := sys.Attest(core.AttestOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stage 1 — FPGA self-attestation (SACHa): trusted=%v\n", rep.FPGATrusted)
	fmt.Printf("stage 2 — software attestation via FPGA: ok=%v\n", rep.SoftwareOK)
	fmt.Printf("combined verdict: accepted=%v\n\n", rep.Accepted)

	if err := sys.CPU.Run(1000); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("attested firmware ran: sum(1..10) = %d\n\n", sys.CPU.Out(0))

	// Now a software-level adversary patches the firmware (the classic
	// malicious code update). The FPGA stage still passes, the software
	// stage catches it.
	sys.CPU.Mem[4] = cpu.Encode(cpu.OpNOP, 0, 0, 0)
	rep, err = sys.Attest(core.AttestOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after firmware tampering: FPGA trusted=%v, software ok=%v, accepted=%v\n",
		rep.FPGATrusted, rep.SoftwareOK, rep.Accepted)
}
