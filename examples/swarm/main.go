// Swarm attestation: a fleet of SACHa devices attested concurrently, the
// deployment pattern the paper's related-work section motivates for
// large populations of embedded devices. One device in the fleet is
// compromised; the sweep isolates it.
package main

import (
	"context"
	"fmt"
	"log"

	"sacha/internal/attestation"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
	"sacha/internal/prover"
	"sacha/internal/swarm"
)

const fleetSize = 8

func main() {
	fleet, err := swarm.NewFleet(fleetSize, func(id uint64) (*core.System, error) {
		return core.NewSystem(core.Config{
			Geo:        device.SmallLX(),
			App:        netlist.Blinker(8),
			KeyMode:    core.KeyStatPUF,
			DeviceID:   id,
			LabLatency: -1,
			Seed:       int64(id),
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	// The whole fleet is one device class (same geometry, application,
	// build), so SharePlans builds one attestation plan for the sweep and
	// shares it read-only across the concurrent per-device runs. The
	// PerDevice freshness policy gives every device its own nonce anyway:
	// each run patches the shared plan's nonce column (Plan.WithNonce)
	// instead of rebuilding it.
	cfg := swarm.SweepConfig{
		Concurrency: swarm.DefaultConcurrency,
		SharePlans:  true,
		Freshness:   attestation.PerDevice,
	}

	// Device 6 is compromised: malicious logic spliced into its dynamic
	// partition between configuration and readback.
	rep, err := fleet.Sweep(context.Background(), cfg, func(id uint64) core.AttestOptions {
		if id != 6 {
			return core.AttestOptions{}
		}
		sys, _ := fleet.System(id)
		return core.AttestOptions{TamperDevice: func(d *prover.Device) {
			d.Fabric.Mem.Frame(sys.DynFrames()[7])[3] ^= 0x80
		}}
	})
	if err != nil {
		log.Fatal(err)
	}

	for _, r := range rep.Results {
		status := "ok"
		if !r.Healthy() {
			status = "COMPROMISED"
		}
		fmt.Printf("device %d: %-12s (%v)\n", r.DeviceID, status, r.Elapsed.Round(1e6))
	}
	fmt.Printf("\nswarm health: %d/%d devices attested in %v (parallel sweep)\n",
		len(rep.Healthy), fleet.Size(), rep.Elapsed.Round(1e6))
	fmt.Printf("attestation plans built: %d (shared across %d devices)\n",
		rep.PlansBuilt, fleet.Size())
	fmt.Printf("compromised devices: %v\n", rep.Compromised)
}
