// Swarm attestation: a fleet of SACHa devices attested concurrently, the
// deployment pattern the paper's related-work section motivates for
// large populations of embedded devices. One device in the fleet is
// compromised; the sweep isolates it.
package main

import (
	"fmt"
	"log"

	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
	"sacha/internal/prover"
	"sacha/internal/swarm"
)

const fleetSize = 8

func main() {
	fleet, err := swarm.NewFleet(fleetSize, func(id uint64) (*core.System, error) {
		return core.NewSystem(core.Config{
			Geo:        device.SmallLX(),
			App:        netlist.Blinker(8),
			KeyMode:    core.KeyStatPUF,
			DeviceID:   id,
			LabLatency: -1,
			Seed:       int64(id),
		})
	})
	if err != nil {
		log.Fatal(err)
	}

	// Device 6 is compromised: malicious logic spliced into its dynamic
	// partition between configuration and readback.
	rep := fleet.AttestAll(true, func(id uint64) core.AttestOptions {
		if id != 6 {
			return core.AttestOptions{}
		}
		sys, _ := fleet.System(id)
		return core.AttestOptions{TamperDevice: func(d *prover.Device) {
			d.Fabric.Mem.Frame(sys.DynFrames()[7])[3] ^= 0x80
		}}
	})

	for _, r := range rep.Results {
		status := "ok"
		if !r.Healthy() {
			status = "COMPROMISED"
		}
		fmt.Printf("device %d: %-12s (%v)\n", r.DeviceID, status, r.Elapsed.Round(1e6))
	}
	fmt.Printf("\nswarm health: %d/%d devices attested in %v (parallel sweep)\n",
		len(rep.Healthy), fleet.Size(), rep.Elapsed.Round(1e6))
	fmt.Printf("compromised devices: %v\n", rep.Compromised)
}
