// Attack detection: replay the five adversary classes of the paper's
// security evaluation (§7.2) and print the detection matrix.
package main

import (
	"fmt"
	"log"

	"sacha/internal/attack"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
)

func main() {
	newSys := func() (*core.System, error) {
		return core.NewSystem(core.Config{
			Geo:        device.SmallLX(),
			App:        netlist.LFSR(16, []int{0, 2, 3, 5}),
			KeyMode:    core.KeyStatPUF,
			DeviceID:   99,
			LabLatency: -1,
			Seed:       7,
		})
	}
	results, err := attack.All(newSys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SACHa security evaluation — adversaries of paper §7.2")
	fmt.Println()
	for _, r := range results {
		status := "DETECTED"
		if !r.Detected {
			status = "MISSED  "
		}
		fmt.Printf("[%s] %-32s (%s adversary)\n", status, r.Name, r.Class)
		fmt.Printf("           attack:    %s\n", r.Description)
		fmt.Printf("           caught by: %s\n", r.Mechanism)
		if r.Err != nil {
			fmt.Printf("           protocol:  %v\n", r.Err)
		}
		fmt.Println()
	}
}
