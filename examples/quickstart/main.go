// Quickstart: provision a SACHa system, attest it once, tamper with the
// configuration, and watch the second attestation fail.
package main

import (
	"fmt"
	"log"

	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
	"sacha/internal/prover"
)

func main() {
	// One call provisions the whole system of the paper: an FPGA with a
	// minimal static partition, a PUF-enrolled key, a golden bitstream
	// for the intended application, and a verifier.
	sys, err := core.NewSystem(core.Config{
		Geo:      device.SmallLX(),    // a small sibling of the XC6VLX240T
		App:      netlist.Blinker(16), // the intended application
		KeyMode:  core.KeyStatPUF,
		DeviceID: 1,
		Seed:     42,
		// Keep the simulated lab latency of the paper (≈493 µs/command);
		// set LabLatency: -1 for instant in-process runs.
		LabLatency: -1,
	})
	if err != nil {
		log.Fatal(err)
	}

	report, err := sys.Attest(core.AttestOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("honest device:   MAC ok=%v, bitstream ok=%v, accepted=%v\n",
		report.MACOK, report.ConfigOK, report.Accepted)
	fmt.Printf("virtual protocol time on the simulated lab link: %v\n", sys.VirtualDuration())

	// The attested FPGA now runs the intended application — drive it.
	live, err := sys.Device.App()
	if err != nil {
		log.Fatal(err)
	}
	if err := live.InputPin(sys.AppPlacement, "en", 1); err != nil {
		log.Fatal(err)
	}
	for i := 0; i < 1<<15; i++ {
		if err := live.Step(); err != nil {
			log.Fatal(err)
		}
	}
	led, err := live.OutputPin(sys.AppPlacement, "led")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blinker LED after 2^15 cycles: %d\n", led)

	// An adversary flips one configuration bit between configuration and
	// readback; SACHa must reject.
	report, err = sys.Attest(core.AttestOptions{
		TamperDevice: func(d *prover.Device) {
			frame := sys.DynFrames()[100]
			d.Fabric.Mem.Frame(frame)[10] ^= 1
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tampered device: MAC ok=%v, bitstream ok=%v, accepted=%v (mismatching frames: %d)\n",
		report.MACOK, report.ConfigOK, report.Accepted, len(report.Mismatches))
}
