// Soft-core state attestation: the paper's §8 future-work item realised.
// A soft-core processor (SC4: 8-bit accumulator, 4-bit PC, LUT-encoded
// program ROM) runs in the dynamic partition. CAPTURE attestation then
// verifies not only the FPGA configuration but the *live state of the
// embedded processor*, against a verifier-side prediction.
package main

import (
	"fmt"
	"log"

	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
	"sacha/internal/prover"
	"sacha/internal/verifier"
)

func main() {
	// The soft core's program, encoded into LUT truth tables: ACC
	// alternates between += 3 and ^= 0x55, forever.
	prog := netlist.SC4Program{
		{Op: netlist.SC4Addi, Imm: 3},
		{Op: netlist.SC4Xori, Imm: 0x55},
		{Op: netlist.SC4Jmp, Imm: 0},
	}
	sys, err := core.NewSystem(core.Config{
		Geo:        device.SmallLX(),
		App:        netlist.SoftCore(prog),
		KeyMode:    core.KeyStatPUF,
		DeviceID:   11,
		LabLatency: -1,
		Seed:       11,
	})
	if err != nil {
		log.Fatal(err)
	}

	const steps = 23
	rep, err := sys.Attest(core.AttestOptions{Opts: verifier.Options{AppSteps: steps}})
	if err != nil {
		log.Fatal(err)
	}
	wantAcc, wantPC := netlist.SC4Reference(prog, steps)
	fmt.Printf("CAPTURE attestation after %d soft-core cycles: accepted=%v\n", steps, rep.Accepted)
	fmt.Printf("verifier predicted processor state: ACC=%#02x PC=%d\n", wantAcc, wantPC)

	live, err := sys.Device.App()
	if err != nil {
		log.Fatal(err)
	}
	var acc, pc uint8
	for i := 0; i < 8; i++ {
		v, _ := live.OutputPin(sys.AppPlacement, fmt.Sprintf("acc%d", i))
		acc |= v << uint(i)
	}
	for i := 0; i < 4; i++ {
		v, _ := live.OutputPin(sys.AppPlacement, fmt.Sprintf("pc%d", i))
		pc |= v << uint(i)
	}
	fmt.Printf("device's actual processor state:    ACC=%#02x PC=%d\n\n", acc, pc)

	// A desynchronised processor (one stolen cycle) fails CAPTURE
	// attestation even though the configuration itself is pristine.
	rep, err = sys.Attest(core.AttestOptions{
		Opts: verifier.Options{AppSteps: steps},
		TamperDevice: func(d *prover.Device) {
			if l, err := d.App(); err == nil {
				l.Step()
			}
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after an adversary steals one clock cycle: accepted=%v (MAC ok=%v, state/config ok=%v)\n",
		rep.Accepted, rep.MACOK, rep.ConfigOK)
}
