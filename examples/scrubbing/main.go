// Configuration scrubbing: the fault-detection use of ICAP readback the
// paper describes in §2.1.3 (Single Event Upsets in space applications).
// Radiation flips configuration bits; the scrubber finds them against the
// golden image and repairs the affected frames, while live register
// activity stays invisible behind the Msk.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/netlist"
	"sacha/internal/scrub"
)

func main() {
	geo := device.SmallLX()
	golden, _, err := core.BuildGolden(geo, netlist.Counter(8), 1, 0x1234)
	if err != nil {
		log.Fatal(err)
	}
	fab := fabric.New(geo)
	for i := 0; i < geo.NumFrames(); i++ {
		if err := fab.WriteFrame(i, golden.Frame(i)); err != nil {
			log.Fatal(err)
		}
	}
	s := scrub.New(fab, golden)

	flips, err := s.Scan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial scan: %d upsets (clean device)\n", len(flips))

	// A radiation burst flips 40 random configuration bits.
	injected := scrub.InjectSEUs(fab, rand.New(rand.NewSource(2026)), 40)
	fmt.Printf("injected %d single event upsets\n", len(injected))

	found, err := s.ScrubOnce()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("scrubber found %d visible upsets and repaired %d frames\n",
		len(found), s.FramesRepaired)

	flips, err = s.Scan()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("post-repair scan: %d upsets\n", len(flips))
	if len(flips) == 0 {
		fmt.Println("configuration memory restored to the golden state")
	}
}
