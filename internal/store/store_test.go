package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func mustOpen(t *testing.T, dir string, o Options) *Store {
	t.Helper()
	st, err := Open(dir, o)
	if err != nil {
		t.Fatalf("open %s: %v", dir, err)
	}
	return st
}

func testRecord(id, gen uint64) EnrollmentRecord {
	rec := EnrollmentRecord{
		DeviceID:   id,
		Generation: gen,
		Helper:     []byte{1, 2, 3, 4, byte(id)},
		Class:      "class-of-" + string(rune('a'+id%26)),
	}
	for i := range rec.Key {
		rec.Key[i] = byte(id + gen + uint64(i))
	}
	for i := range rec.Golden {
		rec.Golden[i] = byte(id * uint64(i))
	}
	return rec
}

func TestStoreRoundTrip(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{})
	for id := uint64(1); id <= 5; id++ {
		if err := st.Enrollment().Put(testRecord(id, 1)); err != nil {
			t.Fatalf("put %d: %v", id, err)
		}
	}
	// Rotation overwrites: only the latest generation must survive.
	if err := st.Enrollment().Put(testRecord(3, 2)); err != nil {
		t.Fatalf("rotate put: %v", err)
	}
	if err := st.Enrollment().PutTrust(2, "class-x", true); err != nil {
		t.Fatalf("put trust: %v", err)
	}
	if err := st.Enrollment().PutTrust(4, "class-y", true); err != nil {
		t.Fatalf("put trust: %v", err)
	}
	if err := st.Enrollment().PutTrust(4, "class-y", false); err != nil {
		t.Fatalf("demote trust: %v", err)
	}
	for _, n := range []uint64{7, 0, ^uint64(0)} {
		if err := st.Nonces().Spend(n); err != nil {
			t.Fatalf("spend %#x: %v", n, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	st2 := mustOpen(t, dir, Options{})
	defer st2.Close()
	ids := st2.Enrollment().Devices()
	if len(ids) != 5 {
		t.Fatalf("devices after reopen: %v", ids)
	}
	got, ok := st2.Enrollment().Lookup(3)
	if !ok || got.Generation != 2 {
		t.Fatalf("device 3 after reopen: %+v ok=%t", got, ok)
	}
	want := testRecord(3, 2)
	if got.Key != want.Key || got.Golden != want.Golden || got.Class != want.Class ||
		string(got.Helper) != string(want.Helper) {
		t.Fatalf("device 3 record drifted:\n  got  %+v\n  want %+v", got, want)
	}
	warm := st2.Enrollment().TrustSnapshot()
	if len(warm) != 1 || warm[2] != "class-x" {
		t.Fatalf("trust after reopen: %v", warm)
	}
	for _, n := range []uint64{7, 0, ^uint64(0)} {
		if !st2.Nonces().Spent(n) {
			t.Fatalf("nonce %#x forgotten across reopen", n)
		}
	}
	if st2.Nonces().Spent(8) {
		t.Fatal("unspent nonce reported spent")
	}
}

func TestNonceSpendIsCheckAndSet(t *testing.T) {
	st := mustOpen(t, t.TempDir(), Options{})
	defer st.Close()
	if err := st.Nonces().Spend(42); err != nil {
		t.Fatalf("first spend: %v", err)
	}
	err := st.Nonces().Spend(42)
	if !errors.Is(err, ErrNonceReplayed) {
		t.Fatalf("second spend: %v, want ErrNonceReplayed", err)
	}
}

func TestNonceExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	clock := func() time.Time { return now }
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{NonceTTL: time.Minute, Now: clock})
	if err := st.Nonces().Spend(9); err != nil {
		t.Fatalf("spend: %v", err)
	}
	if !errors.Is(st.Nonces().Spend(9), ErrNonceReplayed) {
		t.Fatal("unexpired nonce re-spent")
	}
	now = now.Add(2 * time.Minute)
	if st.Nonces().Spent(9) {
		t.Fatal("expired nonce still reported spent")
	}
	if err := st.Nonces().Spend(9); err != nil {
		t.Fatalf("re-spend after expiry: %v", err)
	}
	st.Close()

	// The re-spend's later expiry must win the replay regardless of
	// record order.
	st2 := mustOpen(t, dir, Options{NonceTTL: time.Minute, Now: clock})
	defer st2.Close()
	if !st2.Nonces().Spent(9) {
		t.Fatal("re-spent nonce lost its fresh expiry across reopen")
	}
}

func TestCrashWithoutCloseLosesNothing(t *testing.T) {
	// A process crash (SIGKILL) never calls Close. Appends go straight
	// to the file, so a reopen — even under SyncBatch — sees everything.
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{Sync: SyncBatch})
	if err := st.Enrollment().Put(testRecord(1, 3)); err != nil {
		t.Fatalf("put: %v", err)
	}
	if err := st.Nonces().Spend(0xDEAD); err != nil {
		t.Fatalf("spend: %v", err)
	}
	// No Close: the old handles are simply abandoned.
	st2 := mustOpen(t, dir, Options{Sync: SyncBatch})
	defer st2.Close()
	if rec, ok := st2.Enrollment().Lookup(1); !ok || rec.Generation != 3 {
		t.Fatalf("enrollment lost without Close: %+v ok=%t", rec, ok)
	}
	if !st2.Nonces().Spent(0xDEAD) {
		t.Fatal("spent nonce lost without Close")
	}
}

func TestTornJournalTailTruncated(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{})
	for n := uint64(1); n <= 3; n++ {
		if err := st.Nonces().Spend(n); err != nil {
			t.Fatalf("spend: %v", err)
		}
	}
	st.Close()

	// A crash mid-append leaves a half-written frame at the tail.
	path := filepath.Join(dir, "nonce.journal")
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x10, 0x00, 0x00, 0x00, 0xAA}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st2 := mustOpen(t, dir, Options{})
	for n := uint64(1); n <= 3; n++ {
		if !st2.Nonces().Spent(n) {
			t.Fatalf("nonce %d lost to torn-tail truncation", n)
		}
	}
	// The journal must be appendable again on a clean frame boundary.
	if err := st2.Nonces().Spend(4); err != nil {
		t.Fatalf("spend after truncation: %v", err)
	}
	st2.Close()
	st3 := mustOpen(t, dir, Options{})
	defer st3.Close()
	if !st3.Nonces().Spent(4) {
		t.Fatal("post-truncation append lost")
	}
}

func TestCompactionPreservesStateAndShrinksJournal(t *testing.T) {
	dir := t.TempDir()
	o := Options{CompactEvery: 8}
	st := mustOpen(t, dir, o)
	for id := uint64(1); id <= 40; id++ {
		if err := st.Enrollment().Put(testRecord(id%4+1, id)); err != nil {
			t.Fatalf("put: %v", err)
		}
		if err := st.Nonces().Spend(id); err != nil {
			t.Fatalf("spend: %v", err)
		}
	}
	st.Close()

	for _, name := range []string{"enroll", "nonce"} {
		if _, err := os.Stat(filepath.Join(dir, name+".snap")); err != nil {
			t.Fatalf("no %s snapshot after %d appends: %v", name, 40, err)
		}
		info, err := os.Stat(filepath.Join(dir, name+".journal"))
		if err != nil {
			t.Fatal(err)
		}
		// 8 records at most remain journaled after the last compaction.
		if info.Size() > int64(headerSize+o.CompactEvery*(recHeaderSize+MaxRecord)) {
			t.Fatalf("%s journal did not shrink: %d bytes", name, info.Size())
		}
	}

	st2 := mustOpen(t, dir, o)
	defer st2.Close()
	for id := uint64(1); id <= 4; id++ {
		if _, ok := st2.Enrollment().Lookup(id); !ok {
			t.Fatalf("device %d lost to compaction", id)
		}
	}
	for n := uint64(1); n <= 40; n++ {
		if !st2.Nonces().Spent(n) {
			t.Fatalf("nonce %d lost to compaction", n)
		}
	}
}

func TestCorruptSnapshotRejected(t *testing.T) {
	dir := t.TempDir()
	st := mustOpen(t, dir, Options{CompactEvery: 1})
	if err := st.Nonces().Spend(1); err != nil {
		t.Fatal(err)
	}
	st.Close()
	path := filepath.Join(dir, "nonce.snap")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xFF // flip a payload byte: CRC now fails
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestHostileRecordPayloadRejected(t *testing.T) {
	dir := t.TempDir()
	// A well-framed journal whose payload decodes hostile (unknown tag).
	buf := header(kindEnroll)
	buf = append(buf, frameRecord([]byte{0xFF, 1, 2, 3})...)
	if err := os.WriteFile(filepath.Join(dir, "enroll.journal"), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("hostile enrollment payload accepted")
	}
}

func TestOversizeRecordRefused(t *testing.T) {
	st := mustOpen(t, t.TempDir(), Options{})
	defer st.Close()
	rec := testRecord(1, 1)
	rec.Helper = make([]byte, MaxRecord)
	if err := st.Enrollment().Put(rec); err == nil {
		t.Fatal("oversize enrollment record accepted")
	}
}

func TestParseSyncPolicy(t *testing.T) {
	if p, err := ParseSyncPolicy("always"); err != nil || p != SyncAlways {
		t.Fatalf("always: %v %v", p, err)
	}
	if p, err := ParseSyncPolicy("batch"); err != nil || p != SyncBatch {
		t.Fatalf("batch: %v %v", p, err)
	}
	if _, err := ParseSyncPolicy("sometimes"); err == nil {
		t.Fatal("bad policy accepted")
	}
	if SyncAlways.String() != "always" || SyncBatch.String() != "batch" {
		t.Fatal("String drifted from flag spelling")
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	st := mustOpen(t, t.TempDir(), Options{})
	st.Close()
	if err := st.Nonces().Spend(1); err == nil {
		t.Fatal("spend after Close succeeded")
	}
	if err := st.Enrollment().Put(testRecord(1, 1)); err == nil {
		t.Fatal("put after Close succeeded")
	}
}
