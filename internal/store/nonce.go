package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"sync"
	"time"
)

// kindNonce tags the nonce journal's files. Each record is one spent
// nonce plus its expiry instant (unix nanoseconds; 0 = never expires).
const kindNonce = 'N'

// ErrNonceReplayed is the check-and-set failure: the nonce is already
// journaled and unexpired. The sweep path wraps it in a
// fleet.NonceReplayError naming the device.
var ErrNonceReplayed = errors.New("store: nonce already spent")

// NonceJournal is the anti-replay ledger the sweep path consults before
// a nonce is issued and records when it is spent: Spend is an atomic
// check-and-set with expiration. After a crash the reopened journal
// rejects every nonce spent before it — the property the crash-recovery
// e2e pins down.
//
// Expiry bounds journal growth without reopening the replay window it
// appears to: a spent nonce only becomes issuable again after NonceTTL,
// and the deployment contract (DESIGN.md §15) is that NonceTTL is at
// least the key-rotation cadence — so any transcript an adversary
// recorded under the expired nonce was MAC'd under a key generation
// (and golden image) that has since rotated away, and replaying it
// fails the verdict regardless of the nonce match.
type NonceJournal struct {
	lg    *log
	ttl   time.Duration
	now   func() time.Time
	mu    sync.Mutex
	spent map[uint64]int64 // nonce → expiry unix-nanos (0 = never)
}

func openNonceJournal(dir string, o Options) (*NonceJournal, error) {
	lg, records, err := openLog(dir, "nonce", kindNonce, o)
	if err != nil {
		return nil, err
	}
	n := &NonceJournal{lg: lg, ttl: o.NonceTTL, now: o.Now, spent: make(map[uint64]int64)}
	for _, rec := range records {
		if err := n.apply(rec); err != nil {
			lg.Close()
			return nil, fmt.Errorf("store: nonce replay: %w", err)
		}
	}
	return n, nil
}

// apply folds one decoded record in. Last write wins per nonce, so a
// re-spend after expiry (a fresh record with a later expiry) replays
// correctly regardless of where a snapshot split the stream.
func (n *NonceJournal) apply(payload []byte) error {
	if len(payload) != 16 {
		return fmt.Errorf("nonce record is %d bytes, want 16", len(payload))
	}
	nonce := binary.LittleEndian.Uint64(payload[0:8])
	exp := int64(binary.LittleEndian.Uint64(payload[8:16]))
	n.spent[nonce] = exp
	return nil
}

func encodeNonce(nonce uint64, exp int64) []byte {
	buf := make([]byte, 16)
	binary.LittleEndian.PutUint64(buf[0:8], nonce)
	binary.LittleEndian.PutUint64(buf[8:16], uint64(exp))
	return buf
}

// Spend atomically checks and records one nonce: if it is journaled and
// unexpired the spend fails with ErrNonceReplayed and nothing is
// written; otherwise the nonce is journaled (durably, under SyncAlways)
// before Spend returns. This is the fleet.NonceSpender contract.
func (n *NonceJournal) Spend(nonce uint64) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.unexpiredLocked(nonce) {
		return fmt.Errorf("%w: %#016x", ErrNonceReplayed, nonce)
	}
	var exp int64
	if n.ttl > 0 {
		exp = n.now().Add(n.ttl).UnixNano()
	}
	if err := n.lg.Append(encodeNonce(nonce, exp)); err != nil {
		return err
	}
	n.spent[nonce] = exp
	return n.lg.MaybeCompact(n.stateLocked)
}

// Spent reports whether a nonce is currently unspendable (journaled and
// unexpired) — the read-only probe the recovery tests use.
func (n *NonceJournal) Spent(nonce uint64) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.unexpiredLocked(nonce)
}

// Len returns the number of journaled (unexpired or not) entries.
func (n *NonceJournal) Len() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return len(n.spent)
}

func (n *NonceJournal) unexpiredLocked(nonce uint64) bool {
	exp, ok := n.spent[nonce]
	if !ok {
		return false
	}
	return exp == 0 || n.now().UnixNano() < exp
}

// stateLocked renders the compaction state, dropping expired entries —
// the only place the journal forgets, and exactly the entries Spend
// would allow through anyway.
func (n *NonceJournal) stateLocked() [][]byte {
	now := n.now().UnixNano()
	out := make([][]byte, 0, len(n.spent))
	for nonce, exp := range n.spent {
		if exp != 0 && now >= exp {
			delete(n.spent, nonce)
			continue
		}
		out = append(out, encodeNonce(nonce, exp))
	}
	return out
}
