package store

import (
	"errors"
	"os"
	"path/filepath"
	"testing"
)

// realRunBytes builds a journal the way a real fleet run would — an
// enrollment per device, a rotation, trust marks, spent nonces — and
// returns the two journal files' raw bytes as fuzz seed corpus.
func realRunBytes(f *testing.F) (enroll, nonce []byte) {
	dir := f.TempDir()
	st, err := Open(dir, Options{Sync: SyncBatch})
	if err != nil {
		f.Fatal(err)
	}
	for id := uint64(1); id <= 4; id++ {
		if err := st.Enrollment().Put(testRecordF(id, 1)); err != nil {
			f.Fatal(err)
		}
	}
	if err := st.Enrollment().Put(testRecordF(2, 2)); err != nil {
		f.Fatal(err)
	}
	st.Enrollment().PutTrust(1, "c", true)
	st.Enrollment().PutTrust(1, "c", false)
	for _, n := range []uint64{3, 0x9E3779B97F4A7C15, ^uint64(0)} {
		if err := st.Nonces().Spend(n); err != nil {
			f.Fatal(err)
		}
	}
	if err := st.Close(); err != nil {
		f.Fatal(err)
	}
	enroll, err = os.ReadFile(filepath.Join(dir, "enroll.journal"))
	if err != nil {
		f.Fatal(err)
	}
	nonce, err = os.ReadFile(filepath.Join(dir, "nonce.journal"))
	if err != nil {
		f.Fatal(err)
	}
	return enroll, nonce
}

func testRecordF(id, gen uint64) EnrollmentRecord {
	rec := EnrollmentRecord{DeviceID: id, Generation: gen,
		Helper: []byte{9, 8, 7}, Class: "fuzz-class"}
	rec.Key[0] = byte(id)
	rec.Golden[0] = byte(gen)
	return rec
}

// FuzzStoreDecode throws hostile bytes at every decode surface: the
// bare record-stream decoder, the journal open path (which must degrade
// to truncation or an error) and the snapshot open path (which must
// reject, never panic or over-allocate). The bound it holds: decoded
// payload bytes never exceed input bytes — no allocation amplification.
func FuzzStoreDecode(f *testing.F) {
	enroll, nonce := realRunBytes(f)
	f.Add(enroll)
	f.Add(nonce)
	f.Add([]byte(magic + "E"))
	f.Add([]byte(magic + "N\xff\xff\xff\xff\x00\x00\x00\x00"))
	f.Add(append(header(kindNonce), frameRecord(encodeNonce(7, 0))...))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if recs, err := DecodeRecords(data); err == nil {
			total := 0
			for _, r := range recs {
				total += len(r)
			}
			if total > len(data) {
				t.Fatalf("decoded %d payload bytes from %d input bytes", total, len(data))
			}
		}

		// The same bytes as both journals: Open either tolerates (torn
		// tail) or rejects (hostile payload) — and a successful open must
		// yield a usable, reopenable store.
		dir := t.TempDir()
		os.WriteFile(filepath.Join(dir, "enroll.journal"), data, 0o644)
		os.WriteFile(filepath.Join(dir, "nonce.journal"), data, 0o644)
		if st, err := Open(dir, Options{Sync: SyncBatch}); err == nil {
			st.Enrollment().Lookup(1)
			if err := st.Nonces().Spend(0x5EED); err != nil && !errors.Is(err, ErrNonceReplayed) {
				t.Fatalf("spend on survivor store: %v", err)
			}
			if err := st.Close(); err != nil {
				t.Fatalf("close survivor store: %v", err)
			}
			if st2, err := Open(dir, Options{Sync: SyncBatch}); err != nil {
				t.Fatalf("reopen of a store we successfully wrote: %v", err)
			} else {
				st2.Close()
			}
		}

		// The same bytes as a snapshot: strictly validated, error not panic.
		dir2 := t.TempDir()
		os.WriteFile(filepath.Join(dir2, "enroll.snap"), data, 0o644)
		if st, err := Open(dir2, Options{Sync: SyncBatch}); err == nil {
			st.Close()
		}
	})
}

// FuzzNonceJournal drives the journal through byte-programmed spend /
// crash / reopen sequences against a pure in-memory model: replay must
// be idempotent and path-independent — wherever the crashes land and
// whether or not Close ran, the reopened journal's verdicts equal the
// model's.
func FuzzNonceJournal(f *testing.F) {
	_, nonce := realRunBytes(f)
	f.Add(nonce)
	f.Add([]byte{0, 1, 0, 1, 2, 0, 0, 1})
	f.Add([]byte{0, 5, 2, 1, 0, 5, 2, 0, 0, 5})
	f.Add([]byte{1, 1, 1, 2, 1, 3, 2, 2, 1, 1})
	f.Fuzz(func(t *testing.T, program []byte) {
		if len(program) > 256 {
			program = program[:256]
		}
		dir := t.TempDir()
		// CompactEvery 3 forces snapshot/journal splits at many program
		// points — the path-independence half of the contract.
		o := Options{Sync: SyncBatch, CompactEvery: 3}
		st, err := Open(dir, o)
		if err != nil {
			t.Fatalf("open: %v", err)
		}
		model := make(map[uint64]bool)
		for i := 0; i+1 < len(program); i += 2 {
			op, arg := program[i], program[i+1]
			switch op % 3 {
			case 0, 1:
				// A small nonce space forces replay collisions constantly.
				n := uint64(arg % 16)
				err := st.Nonces().Spend(n)
				if model[n] {
					if !errors.Is(err, ErrNonceReplayed) {
						t.Fatalf("spent nonce %d re-spent (err=%v)", n, err)
					}
				} else {
					if err != nil {
						t.Fatalf("fresh nonce %d refused: %v", n, err)
					}
					model[n] = true
				}
			case 2:
				// Crash (odd arg: no Close — the SIGKILL shape) or clean
				// restart (even arg), then reopen.
				if arg%2 == 0 {
					if err := st.Close(); err != nil {
						t.Fatalf("close: %v", err)
					}
				}
				st2, err := Open(dir, o)
				if err != nil {
					t.Fatalf("reopen: %v", err)
				}
				if arg%2 != 0 {
					st.Close() // release the abandoned handles
				}
				st = st2
			}
		}
		for n := uint64(0); n < 16; n++ {
			if st.Nonces().Spent(n) != model[n] {
				t.Fatalf("nonce %d: journal=%t model=%t", n, st.Nonces().Spent(n), model[n])
			}
		}
		st.Close()
	})
}
