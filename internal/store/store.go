// Package store is the durable state layer of the fleet stack: a
// stdlib-only, file-backed persistence substrate behind the two
// contracts the SACHa security argument needs to survive a verifier
// restart (DESIGN.md §15) —
//
//   - an enrollment store (device ID → class, PUF key generation, key
//     material, golden digest) that backs registry.Durable, so the key
//     renewal state of §5.2.1 is not session ephemera, and
//   - a nonce journal (check-and-set with expiration) the sweep path
//     consults before a nonce is issued and records when it is spent,
//     so a crashed daemon does not silently reopen the replay window.
//
// Both contracts share one on-disk mechanism: an append-only journal of
// CRC'd, length-prefixed records plus a periodically compacted snapshot,
// written with the same hostile-input discipline as
// compress.DecodeBounded — every declared length is bounded and checked
// against the remaining input before any allocation, so a corrupt or
// adversarial state directory degrades to an error (or, for a torn
// journal tail, a truncation to the last good record), never a panic or
// an allocation amplification.
//
// Durability contract: the journal is written straight to the file
// descriptor (no user-space buffering), so a process crash — SIGKILL
// included — loses nothing that Append returned for, regardless of the
// sync policy; the OS page cache holds the bytes. The SyncPolicy only
// decides what a *power* failure can lose: SyncAlways fsyncs every
// append, SyncBatch defers to Flush/Close. Snapshots are written to a
// temporary file, fsynced and renamed, so a crash at any point leaves
// either the old or the new snapshot — never a torn one.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// magic identifies every store file (journal and snapshot); the byte
// after it names the record kind the file carries.
const magic = "SACHAST1"

// MaxRecord bounds one record's payload. Every real record (an
// enrollment with helper data, a trust mark, a spent nonce) is far
// smaller; the bound exists so a hostile length prefix cannot demand an
// allocation — the DecodeBounded discipline.
const MaxRecord = 4096

const headerSize = len(magic) + 1

// recHeaderSize is the per-record framing: uint32 payload length plus
// uint32 CRC-32 (IEEE) of the payload.
const recHeaderSize = 8

// SyncPolicy selects when the journal is fsynced. See the package
// comment for what each policy can lose and when.
type SyncPolicy int

const (
	// SyncAlways fsyncs the journal after every appended record: a spent
	// nonce or a bumped key generation survives even a power failure the
	// moment the append returns. This is the default and the policy the
	// rotate-key durability ordering ("generation durable before the new
	// key is used") assumes against power loss.
	SyncAlways SyncPolicy = iota
	// SyncBatch defers fsync to Flush/Close (the fleetd drain path): a
	// process crash still loses nothing (writes go straight to the OS),
	// but a power failure may lose records appended since the last flush.
	SyncBatch
)

func (p SyncPolicy) String() string {
	switch p {
	case SyncAlways:
		return "always"
	case SyncBatch:
		return "batch"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// ParseSyncPolicy parses the -fsync flag spelling.
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	switch s {
	case "always":
		return SyncAlways, nil
	case "batch":
		return SyncBatch, nil
	}
	return 0, fmt.Errorf("store: unknown sync policy %q (want always or batch)", s)
}

// DefaultCompactEvery is how many journal appends accumulate before the
// store folds them into a fresh snapshot and truncates the journal.
const DefaultCompactEvery = 1024

// Options shape a Store.
type Options struct {
	// Sync is the journal fsync policy; the zero value is SyncAlways.
	Sync SyncPolicy
	// NonceTTL is how long a spent nonce stays unspendable. Zero means
	// entries never expire. See DESIGN.md §15 for why expiry does not
	// reopen the replay window it seems to.
	NonceTTL time.Duration
	// CompactEvery is the journal-records-per-compaction threshold;
	// values < 1 default to DefaultCompactEvery.
	CompactEvery int
	// Now is the nonce-expiry clock; nil means time.Now. A test hook.
	Now func() time.Time
}

// Store is one state directory: the enrollment store and the nonce
// journal, opened together and flushed/closed together.
type Store struct {
	dir    string
	enroll *EnrollmentStore
	nonces *NonceJournal
}

// Open loads (or initializes) the state directory. Torn journal tails —
// the residue of a crash mid-append — are truncated to the last good
// record; corrupt snapshots and records that decode hostile are errors.
func Open(dir string, o Options) (*Store, error) {
	if o.CompactEvery < 1 {
		o.CompactEvery = DefaultCompactEvery
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	enroll, err := openEnrollment(dir, o)
	if err != nil {
		return nil, err
	}
	nonces, err := openNonceJournal(dir, o)
	if err != nil {
		enroll.lg.Close()
		return nil, err
	}
	return &Store{dir: dir, enroll: enroll, nonces: nonces}, nil
}

// Dir returns the state directory path.
func (s *Store) Dir() string { return s.dir }

// Enrollment returns the device enrollment store.
func (s *Store) Enrollment() *EnrollmentStore { return s.enroll }

// Nonces returns the anti-replay nonce journal.
func (s *Store) Nonces() *NonceJournal { return s.nonces }

// Flush fsyncs both journals — the SyncBatch checkpoint.
func (s *Store) Flush() error {
	if err := s.enroll.lg.Flush(); err != nil {
		return err
	}
	return s.nonces.lg.Flush()
}

// Close flushes and closes both journals. The graceful-drain path of
// sacha-fleetd calls this after the last sweep is joined.
func (s *Store) Close() error {
	err := s.enroll.lg.Close()
	if err2 := s.nonces.lg.Close(); err == nil {
		err = err2
	}
	return err
}

// log is the shared on-disk mechanism: one append-only journal file
// plus one atomically replaced snapshot, both carrying the same framed
// record stream behind a kind-tagged header.
type log struct {
	mu       sync.Mutex
	path     string // dir/name, extensions added per file
	kind     byte
	pol      SyncPolicy
	every    int
	f        *os.File
	appended int // records since the last compaction
	closed   bool
}

// openLog opens name's snapshot+journal pair under dir and returns the
// replayed records: snapshot records first (the compacted base state),
// then journal records (the appends since), in write order.
func openLog(dir, name string, kind byte, o Options) (*log, [][]byte, error) {
	lg := &log{path: filepath.Join(dir, name), kind: kind, pol: o.Sync, every: o.CompactEvery}

	var records [][]byte
	snap, err := os.ReadFile(lg.snapPath())
	switch {
	case err == nil:
		// A snapshot exists only via the atomic tmp+rename path, so any
		// decode failure here is corruption or hostility, not a torn write.
		recs, err := decodeStream(snap, kind, true)
		if err != nil {
			return nil, nil, fmt.Errorf("store: snapshot %s: %w", lg.snapPath(), err)
		}
		records = recs
	case os.IsNotExist(err):
	default:
		return nil, nil, fmt.Errorf("store: %w", err)
	}

	f, err := os.OpenFile(lg.journalPath(), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	lg.f = f
	data, err := os.ReadFile(lg.journalPath())
	if err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	if len(data) < headerSize {
		// Fresh (or torn-before-header) journal: write the header anew.
		if err := lg.writeHeader(); err != nil {
			f.Close()
			return nil, nil, err
		}
		return lg, records, nil
	}
	if err := checkHeader(data, kind); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: journal %s: %w", lg.journalPath(), err)
	}
	// The journal tolerates a torn tail — the residue of a crash mid-
	// append. Everything before the first malformed byte is replayed;
	// the tail is truncated so the next append lands on a clean frame.
	recs, good := decodeTolerant(data[headerSize:])
	records = append(records, recs...)
	if keep := int64(headerSize + good); keep < int64(len(data)) {
		if err := f.Truncate(keep); err != nil {
			f.Close()
			return nil, nil, fmt.Errorf("store: truncating torn journal tail: %w", err)
		}
	}
	if _, err := f.Seek(0, 2); err != nil {
		f.Close()
		return nil, nil, fmt.Errorf("store: %w", err)
	}
	lg.appended = len(recs)
	return lg, records, nil
}

func (lg *log) journalPath() string { return lg.path + ".journal" }
func (lg *log) snapPath() string    { return lg.path + ".snap" }

func (lg *log) writeHeader() error {
	if err := lg.f.Truncate(0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := lg.f.WriteAt(header(lg.kind), 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := lg.f.Seek(int64(headerSize), 0); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Append frames and writes one record, fsyncing under SyncAlways. The
// caller (EnrollmentStore / NonceJournal) holds its own mutex and owns
// the decision to compact via MaybeCompact.
func (lg *log) Append(payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("store: record payload %d bytes exceeds the %d-byte bound", len(payload), MaxRecord)
	}
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if lg.closed {
		return fmt.Errorf("store: closed")
	}
	if _, err := lg.f.Write(frameRecord(payload)); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if lg.pol == SyncAlways {
		if err := lg.f.Sync(); err != nil {
			return fmt.Errorf("store: %w", err)
		}
	}
	lg.appended++
	return nil
}

// MaybeCompact folds the current state (rendered by the owner as a
// record list) into a fresh snapshot once enough appends accumulated:
// tmp + fsync + rename (atomic), then the journal is truncated back to
// its header. A crash between rename and truncate leaves duplicate
// records, which the replay maps absorb idempotently.
func (lg *log) MaybeCompact(state func() [][]byte) error {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if lg.closed || lg.appended < lg.every {
		return nil
	}
	return lg.compactLocked(state())
}

func (lg *log) compactLocked(state [][]byte) error {
	tmp := lg.snapPath() + ".tmp"
	buf := header(lg.kind)
	for _, rec := range state {
		buf = append(buf, frameRecord(rec)...)
	}
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	if err := os.Rename(tmp, lg.snapPath()); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	syncDir(filepath.Dir(lg.path))
	if err := lg.writeHeader(); err != nil {
		return err
	}
	if err := lg.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	lg.appended = 0
	return nil
}

// Flush fsyncs the journal — the SyncBatch checkpoint.
func (lg *log) Flush() error {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if lg.closed {
		return nil
	}
	if err := lg.f.Sync(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// Close flushes and closes the journal; further appends fail.
func (lg *log) Close() error {
	lg.mu.Lock()
	defer lg.mu.Unlock()
	if lg.closed {
		return nil
	}
	lg.closed = true
	if err := lg.f.Sync(); err != nil {
		lg.f.Close()
		return fmt.Errorf("store: %w", err)
	}
	if err := lg.f.Close(); err != nil {
		return fmt.Errorf("store: %w", err)
	}
	return nil
}

// syncDir best-effort fsyncs a directory so a rename is durable; some
// filesystems do not support it, which only widens the power-failure
// window, never the crash one.
func syncDir(dir string) {
	if d, err := os.Open(dir); err == nil {
		d.Sync()
		d.Close()
	}
}

func header(kind byte) []byte {
	return append([]byte(magic), kind)
}

func checkHeader(data []byte, kind byte) error {
	if len(data) < headerSize {
		return fmt.Errorf("short header (%d bytes)", len(data))
	}
	if string(data[:len(magic)]) != magic {
		return fmt.Errorf("bad magic %q", data[:len(magic)])
	}
	if data[len(magic)] != kind {
		return fmt.Errorf("record kind %q, want %q", data[len(magic)], kind)
	}
	return nil
}

// frameRecord frames one payload: uint32 length, uint32 CRC-32 (IEEE),
// payload.
func frameRecord(payload []byte) []byte {
	buf := make([]byte, recHeaderSize+len(payload))
	binary.LittleEndian.PutUint32(buf[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(buf[4:8], crc32.ChecksumIEEE(payload))
	copy(buf[recHeaderSize:], payload)
	return buf
}

// DecodeRecords decodes a bare framed-record stream (no file header)
// strictly: any malformed frame — oversize or truncated declared
// length, CRC mismatch — is an error. Allocation is bounded by the
// input: every payload copy is at most MaxRecord bytes and at most the
// remaining input, checked BEFORE the copy (the DecodeBounded
// discipline), so hostile bytes cannot amplify.
func DecodeRecords(data []byte) ([][]byte, error) {
	recs, good := decodeTolerant(data)
	if good != len(data) {
		return nil, fmt.Errorf("store: malformed record at offset %d", good)
	}
	return recs, nil
}

// decodeStream decodes a full store file: header plus records. strict
// rejects any trailing malformation (the snapshot path); tolerant use
// goes through decodeTolerant directly (the journal path).
func decodeStream(data []byte, kind byte, strict bool) ([][]byte, error) {
	if err := checkHeader(data, kind); err != nil {
		return nil, err
	}
	recs, good := decodeTolerant(data[headerSize:])
	if strict && headerSize+good != len(data) {
		return nil, fmt.Errorf("malformed record at offset %d", headerSize+good)
	}
	return recs, nil
}

// decodeTolerant parses records until the first malformed frame,
// returning the good records and the offset of the first byte not part
// of one — the journal truncation point.
func decodeTolerant(data []byte) ([][]byte, int) {
	var recs [][]byte
	off := 0
	for {
		rest := data[off:]
		if len(rest) < recHeaderSize {
			return recs, off
		}
		n := int(binary.LittleEndian.Uint32(rest[0:4]))
		if n > MaxRecord || n > len(rest)-recHeaderSize {
			// Oversize (hostile) or truncated (torn tail) — either way the
			// stream ends here, and no allocation has happened for it.
			return recs, off
		}
		payload := rest[recHeaderSize : recHeaderSize+n]
		if crc32.ChecksumIEEE(payload) != binary.LittleEndian.Uint32(rest[4:8]) {
			return recs, off
		}
		rec := make([]byte, n)
		copy(rec, payload)
		recs = append(recs, rec)
		off += recHeaderSize + n
	}
}
