package store

import (
	"encoding/binary"
	"fmt"
	"sort"
	"sync"
)

// kindEnroll tags the enrollment store's files; its record stream
// carries two payload tags: device enrollments and trust-ledger marks.
const kindEnroll = 'E'

const (
	tagEnrollment = 1
	tagTrust      = 2
)

// EnrollmentRecord is the durable provisioning state of one device: the
// identity → key-generation binding of §5.2.1, plus the class key and
// the nonce-free golden digest that let a reopening registry verify the
// state directory actually describes the fleet it is booting.
type EnrollmentRecord struct {
	DeviceID uint64
	// Generation is the PUF circuit generation (core.System.KeyGeneration);
	// RotateKey bumps it and persists the bump before the new key serves.
	Generation uint64
	// Key is the enrolled CMAC key of this generation. It is stored
	// verbatim because PUF enrollment draws from the device's rng stream:
	// the key is NOT a pure function of (device, generation) and cannot
	// be re-derived after a restart.
	Key [16]byte
	// Helper is the fuzzy-extractor helper data the prover needs to
	// re-extract the key from its noisy PUF.
	Helper []byte
	// Class is the device's plan-sharing class key at this generation.
	Class string
	// Golden is the nonce-free digest of the device's golden image —
	// the cross-check that detects a state directory from a different
	// build, application or geometry at boot.
	Golden [32]byte
}

// trustEntry is one device's persisted delta-admissibility warmth.
type trustEntry struct {
	class string
	warm  bool
}

// EnrollmentStore is the durable device table behind registry.Durable.
// All methods are safe for concurrent use.
type EnrollmentStore struct {
	lg      *log
	mu      sync.Mutex
	devices map[uint64]EnrollmentRecord
	trust   map[uint64]trustEntry
}

func openEnrollment(dir string, o Options) (*EnrollmentStore, error) {
	lg, records, err := openLog(dir, "enroll", kindEnroll, o)
	if err != nil {
		return nil, err
	}
	e := &EnrollmentStore{
		lg:      lg,
		devices: make(map[uint64]EnrollmentRecord),
		trust:   make(map[uint64]trustEntry),
	}
	for _, rec := range records {
		if err := e.apply(rec); err != nil {
			lg.Close()
			return nil, fmt.Errorf("store: enrollment replay: %w", err)
		}
	}
	return e, nil
}

// apply folds one decoded record into the in-memory state. Replay is
// idempotent and last-write-wins per device, which is what makes the
// snapshot/journal split (and a crash between compaction's rename and
// truncate) safe.
func (e *EnrollmentStore) apply(payload []byte) error {
	c := cursor{data: payload}
	tag, err := c.u8()
	if err != nil {
		return err
	}
	switch tag {
	case tagEnrollment:
		var rec EnrollmentRecord
		if rec.DeviceID, err = c.u64(); err != nil {
			return err
		}
		if rec.Generation, err = c.u64(); err != nil {
			return err
		}
		key, err := c.bytes(16)
		if err != nil {
			return err
		}
		copy(rec.Key[:], key)
		golden, err := c.bytes(32)
		if err != nil {
			return err
		}
		copy(rec.Golden[:], golden)
		if rec.Helper, err = c.lenBytes(); err != nil {
			return err
		}
		class, err := c.lenBytes()
		if err != nil {
			return err
		}
		rec.Class = string(class)
		if err := c.done(); err != nil {
			return err
		}
		e.devices[rec.DeviceID] = rec
	case tagTrust:
		id, err := c.u64()
		if err != nil {
			return err
		}
		warm, err := c.u8()
		if err != nil {
			return err
		}
		class, err := c.lenBytes()
		if err != nil {
			return err
		}
		if err := c.done(); err != nil {
			return err
		}
		if warm != 0 {
			e.trust[id] = trustEntry{class: string(class), warm: true}
		} else {
			delete(e.trust, id)
		}
	default:
		return fmt.Errorf("unknown record tag %d", tag)
	}
	return nil
}

func encodeEnrollment(rec EnrollmentRecord) []byte {
	buf := make([]byte, 0, 1+8+8+16+32+2+len(rec.Helper)+2+len(rec.Class))
	buf = append(buf, tagEnrollment)
	buf = binary.LittleEndian.AppendUint64(buf, rec.DeviceID)
	buf = binary.LittleEndian.AppendUint64(buf, rec.Generation)
	buf = append(buf, rec.Key[:]...)
	buf = append(buf, rec.Golden[:]...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rec.Helper)))
	buf = append(buf, rec.Helper...)
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rec.Class)))
	buf = append(buf, rec.Class...)
	return buf
}

func encodeTrust(id uint64, class string, warm bool) []byte {
	buf := make([]byte, 0, 1+8+1+2+len(class))
	buf = append(buf, tagTrust)
	buf = binary.LittleEndian.AppendUint64(buf, id)
	if warm {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(class)))
	buf = append(buf, class...)
	return buf
}

// Lookup returns the stored record of one device.
func (e *EnrollmentStore) Lookup(deviceID uint64) (EnrollmentRecord, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	rec, ok := e.devices[deviceID]
	return rec, ok
}

// Devices returns the stored device IDs, ascending.
func (e *EnrollmentStore) Devices() []uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make([]uint64, 0, len(e.devices))
	for id := range e.devices {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Put journals one device's enrollment state — called at first
// provisioning and, crucially, from RotateKey before the new key serves
// any attestation, so the generation bump is durable first.
func (e *EnrollmentStore) Put(rec EnrollmentRecord) error {
	if len(rec.Helper) > MaxRecord/2 || len(rec.Class) > MaxRecord/2 {
		return fmt.Errorf("store: enrollment record for device %d too large", rec.DeviceID)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.lg.Append(encodeEnrollment(rec)); err != nil {
		return err
	}
	e.devices[rec.DeviceID] = rec
	return e.lg.MaybeCompact(e.stateLocked)
}

// PutTrust journals one device's delta-admissibility warmth (warm for
// exactly this class) or its demotion to cold.
func (e *EnrollmentStore) PutTrust(deviceID uint64, class string, warm bool) error {
	if len(class) > MaxRecord/2 {
		return fmt.Errorf("store: trust class for device %d too large", deviceID)
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if err := e.lg.Append(encodeTrust(deviceID, class, warm)); err != nil {
		return err
	}
	if warm {
		e.trust[deviceID] = trustEntry{class: class, warm: true}
	} else {
		delete(e.trust, deviceID)
	}
	return e.lg.MaybeCompact(e.stateLocked)
}

// TrustSnapshot returns the persisted warmth map (device → class of its
// last full-trust attestation) — the registry.TrustLedger boot state.
func (e *EnrollmentStore) TrustSnapshot() map[uint64]string {
	e.mu.Lock()
	defer e.mu.Unlock()
	out := make(map[uint64]string, len(e.trust))
	for id, t := range e.trust {
		out[id] = t.class
	}
	return out
}

// stateLocked renders the current state as the compacted record list.
func (e *EnrollmentStore) stateLocked() [][]byte {
	ids := make([]uint64, 0, len(e.devices))
	for id := range e.devices {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	out := make([][]byte, 0, len(ids)+len(e.trust))
	for _, id := range ids {
		out = append(out, encodeEnrollment(e.devices[id]))
	}
	tids := make([]uint64, 0, len(e.trust))
	for id := range e.trust {
		tids = append(tids, id)
	}
	sort.Slice(tids, func(i, j int) bool { return tids[i] < tids[j] })
	for _, id := range tids {
		t := e.trust[id]
		out = append(out, encodeTrust(id, t.class, true))
	}
	return out
}

// cursor is the bounded payload reader: every read checks the remaining
// input first, so a hostile payload yields an error, never a panic or
// an out-of-bounds allocation.
type cursor struct {
	data []byte
	off  int
}

func (c *cursor) u8() (byte, error) {
	if c.off+1 > len(c.data) {
		return 0, fmt.Errorf("truncated payload at offset %d", c.off)
	}
	v := c.data[c.off]
	c.off++
	return v, nil
}

func (c *cursor) u64() (uint64, error) {
	if c.off+8 > len(c.data) {
		return 0, fmt.Errorf("truncated payload at offset %d", c.off)
	}
	v := binary.LittleEndian.Uint64(c.data[c.off:])
	c.off += 8
	return v, nil
}

func (c *cursor) u16() (uint16, error) {
	if c.off+2 > len(c.data) {
		return 0, fmt.Errorf("truncated payload at offset %d", c.off)
	}
	v := binary.LittleEndian.Uint16(c.data[c.off:])
	c.off += 2
	return v, nil
}

// bytes copies exactly n bytes.
func (c *cursor) bytes(n int) ([]byte, error) {
	if c.off+n > len(c.data) {
		return nil, fmt.Errorf("truncated payload at offset %d", c.off)
	}
	out := make([]byte, n)
	copy(out, c.data[c.off:])
	c.off += n
	return out, nil
}

// lenBytes reads a uint16 length prefix and that many bytes. The length
// is validated against the remaining input before allocating.
func (c *cursor) lenBytes() ([]byte, error) {
	n, err := c.u16()
	if err != nil {
		return nil, err
	}
	return c.bytes(int(n))
}

// done rejects trailing garbage behind a well-formed payload.
func (c *cursor) done() error {
	if c.off != len(c.data) {
		return fmt.Errorf("%d trailing bytes", len(c.data)-c.off)
	}
	return nil
}
