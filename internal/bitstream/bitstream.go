// Package bitstream provides the on-disk container for configuration
// bitstreams, golden references and Msk mask files.
//
// A Partial is an ordered list of (frame index, frame words) records —
// the unit the verifier sends frame-by-frame during the SACHa protocol.
// The format is a simple length-prefixed binary layout with a trailing
// CRC-32 so corrupted files are rejected.
package bitstream

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"

	"sacha/internal/device"
	"sacha/internal/fabric"
)

// Magic identifies SACHa bitstream files.
const Magic = "SBIT"

// FormatVersion is the current container version.
const FormatVersion = 1

// FrameRecord is one addressed configuration frame.
type FrameRecord struct {
	Index int
	Words []uint32
}

// Partial is an ordered collection of configuration frames for one device.
type Partial struct {
	Device string
	Frames []FrameRecord
}

// FromImage extracts the given frames (in the given order) from an image.
func FromImage(im *fabric.Image, frames []int) *Partial {
	p := &Partial{Device: im.Geo.Name}
	for _, idx := range frames {
		words := make([]uint32, device.FrameWords)
		copy(words, im.Frame(idx))
		p.Frames = append(p.Frames, FrameRecord{Index: idx, Words: words})
	}
	return p
}

// FullImage extracts every frame of the image in linear order.
func FullImage(im *fabric.Image) *Partial {
	frames := make([]int, im.NumFrames())
	for i := range frames {
		frames[i] = i
	}
	return FromImage(im, frames)
}

// ApplyTo writes the partial's frames into an image.
func (p *Partial) ApplyTo(im *fabric.Image) error {
	if im.Geo.Name != p.Device {
		return fmt.Errorf("bitstream: built for %q, image is %q", p.Device, im.Geo.Name)
	}
	for _, fr := range p.Frames {
		if fr.Index < 0 || fr.Index >= im.NumFrames() {
			return fmt.Errorf("bitstream: frame %d out of range", fr.Index)
		}
		im.SetFrame(fr.Index, fr.Words)
	}
	return nil
}

// SizeBytes returns the payload size: frames × 324 bytes, the quantity the
// paper's bounded-memory argument relies on.
func (p *Partial) SizeBytes() int { return len(p.Frames) * device.FrameBytes }

// WriteTo serialises the partial. It implements io.WriterTo.
func (p *Partial) WriteTo(w io.Writer) (int64, error) {
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(w, crc)
	var n int64
	put := func(data any) error {
		if err := binary.Write(mw, binary.BigEndian, data); err != nil {
			return err
		}
		n += int64(binary.Size(data))
		return nil
	}
	if _, err := mw.Write([]byte(Magic)); err != nil {
		return n, err
	}
	n += 4
	if err := put(uint16(FormatVersion)); err != nil {
		return n, err
	}
	name := []byte(p.Device)
	if err := put(uint16(len(name))); err != nil {
		return n, err
	}
	if _, err := mw.Write(name); err != nil {
		return n, err
	}
	n += int64(len(name))
	if err := put(uint32(len(p.Frames))); err != nil {
		return n, err
	}
	for _, fr := range p.Frames {
		if len(fr.Words) != device.FrameWords {
			return n, fmt.Errorf("bitstream: frame %d has %d words", fr.Index, len(fr.Words))
		}
		if err := put(uint32(fr.Index)); err != nil {
			return n, err
		}
		if err := put(fr.Words); err != nil {
			return n, err
		}
	}
	// CRC over everything written so far, appended raw.
	if err := binary.Write(w, binary.BigEndian, crc.Sum32()); err != nil {
		return n, err
	}
	return n + 4, nil
}

// Read deserialises a partial written by WriteTo.
func Read(r io.Reader) (*Partial, error) {
	crc := crc32.NewIEEE()
	tr := io.TeeReader(r, crc)
	magic := make([]byte, 4)
	if _, err := io.ReadFull(tr, magic); err != nil {
		return nil, fmt.Errorf("bitstream: %w", err)
	}
	if string(magic) != Magic {
		return nil, fmt.Errorf("bitstream: bad magic %q", magic)
	}
	var version uint16
	if err := binary.Read(tr, binary.BigEndian, &version); err != nil {
		return nil, err
	}
	if version != FormatVersion {
		return nil, fmt.Errorf("bitstream: unsupported version %d", version)
	}
	var nameLen uint16
	if err := binary.Read(tr, binary.BigEndian, &nameLen); err != nil {
		return nil, err
	}
	if nameLen > 256 {
		return nil, fmt.Errorf("bitstream: device name too long (%d)", nameLen)
	}
	name := make([]byte, nameLen)
	if _, err := io.ReadFull(tr, name); err != nil {
		return nil, err
	}
	var count uint32
	if err := binary.Read(tr, binary.BigEndian, &count); err != nil {
		return nil, err
	}
	if count > 1<<24 {
		return nil, fmt.Errorf("bitstream: implausible frame count %d", count)
	}
	p := &Partial{Device: string(name), Frames: make([]FrameRecord, 0, count)}
	for i := uint32(0); i < count; i++ {
		var idx uint32
		if err := binary.Read(tr, binary.BigEndian, &idx); err != nil {
			return nil, err
		}
		words := make([]uint32, device.FrameWords)
		if err := binary.Read(tr, binary.BigEndian, words); err != nil {
			return nil, err
		}
		p.Frames = append(p.Frames, FrameRecord{Index: int(idx), Words: words})
	}
	sum := crc.Sum32()
	var stored uint32
	if err := binary.Read(r, binary.BigEndian, &stored); err != nil {
		return nil, err
	}
	if stored != sum {
		return nil, fmt.Errorf("bitstream: CRC mismatch (file %#08x, computed %#08x)", stored, sum)
	}
	return p, nil
}
