package bitstream

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"

	"sacha/internal/device"
	"sacha/internal/fabric"
)

func randomImage(seed int64, geo *device.Geometry) *fabric.Image {
	rng := rand.New(rand.NewSource(seed))
	im := fabric.NewImage(geo)
	for i := 0; i < im.NumFrames(); i++ {
		f := im.Frame(i)
		for w := range f {
			f[w] = rng.Uint32()
		}
	}
	return im
}

func TestRoundTrip(t *testing.T) {
	geo := device.SmallLX()
	im := randomImage(1, geo)
	frames := []int{0, 9, 100, geo.NumFrames() - 1}
	p := FromImage(im, frames)

	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Device != geo.Name || len(back.Frames) != len(frames) {
		t.Fatalf("device %q frames %d", back.Device, len(back.Frames))
	}
	for i, fr := range back.Frames {
		if fr.Index != frames[i] {
			t.Fatalf("frame %d index %d, want %d", i, fr.Index, frames[i])
		}
		for w, v := range fr.Words {
			if v != im.Frame(frames[i])[w] {
				t.Fatalf("frame %d word %d mismatch", i, w)
			}
		}
	}
}

func TestApplyTo(t *testing.T) {
	geo := device.SmallLX()
	im := randomImage(2, geo)
	p := FullImage(im)
	dst := fabric.NewImage(geo)
	if err := p.ApplyTo(dst); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(im) {
		t.Fatal("ApplyTo did not reproduce the image")
	}
	// Wrong device.
	other := fabric.NewImage(device.BigLX())
	if err := p.ApplyTo(other); err == nil {
		t.Fatal("cross-device apply accepted")
	}
	// Out-of-range frame.
	p.Device = "BigLX"
	p.Frames[0].Index = 1 << 29
	bigIm := fabric.NewImage(device.BigLX())
	if err := p.ApplyTo(bigIm); err == nil {
		t.Fatal("out-of-range frame accepted")
	}
}

func TestSizeBytes(t *testing.T) {
	geo := device.XC6VLX240T()
	im := fabric.NewImage(geo)
	dyn := fabric.DynRegion(geo).Frames()
	p := FromImage(im, dyn)
	// 26,400 frames × 324 bytes ≈ 8.6 MB — too large for the modelled
	// BRAM (the bounded-memory premise, paper §5.2).
	if got := p.SizeBytes(); got != 26400*324 {
		t.Fatalf("SizeBytes = %d", got)
	}
}

func TestCorruptionDetected(t *testing.T) {
	geo := device.SmallLX()
	p := FromImage(randomImage(3, geo), []int{1, 2, 3})
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)/2] ^= 0x40
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("corrupted payload accepted")
	}
}

func TestBadHeader(t *testing.T) {
	if _, err := Read(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := Read(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
	// Version tamper: rebuild a valid file and bump the version byte.
	geo := device.SmallLX()
	p := FromImage(randomImage(4, geo), []int{0})
	var buf bytes.Buffer
	p.WriteTo(&buf)
	data := buf.Bytes()
	data[5] = 9 // version low byte
	if _, err := Read(bytes.NewReader(data)); err == nil {
		t.Fatal("bad version accepted")
	}
}

func TestTruncation(t *testing.T) {
	geo := device.SmallLX()
	p := FromImage(randomImage(5, geo), []int{0, 1})
	var buf bytes.Buffer
	p.WriteTo(&buf)
	data := buf.Bytes()
	for _, cut := range []int{4, 10, len(data) / 2, len(data) - 2} {
		if _, err := Read(bytes.NewReader(data[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestWriteRejectsMalformedFrame(t *testing.T) {
	p := &Partial{Device: "X", Frames: []FrameRecord{{Index: 0, Words: make([]uint32, 3)}}}
	var buf bytes.Buffer
	if _, err := p.WriteTo(&buf); err == nil {
		t.Fatal("malformed frame accepted")
	}
}

func TestFileWorkflow(t *testing.T) {
	// The bitgen → verifier file workflow: write golden + mask to disk,
	// load them back, apply to an image.
	geo := device.SmallLX()
	im := randomImage(9, geo)
	path := filepath.Join(t.TempDir(), "golden.sbit")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := FullImage(im).WriteTo(f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	g, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	back, err := Read(g)
	if err != nil {
		t.Fatal(err)
	}
	restored := fabric.NewImage(geo)
	if err := back.ApplyTo(restored); err != nil {
		t.Fatal(err)
	}
	if !restored.Equal(im) {
		t.Fatal("file round-trip lost data")
	}
}

// Property: serialise/deserialise round-trips arbitrary frame subsets.
func TestQuickRoundTrip(t *testing.T) {
	geo := device.SmallLX()
	im := randomImage(6, geo)
	f := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n8%20) + 1
		frames := make([]int, n)
		for i := range frames {
			frames[i] = rng.Intn(geo.NumFrames())
		}
		p := FromImage(im, frames)
		var buf bytes.Buffer
		if _, err := p.WriteTo(&buf); err != nil {
			return false
		}
		back, err := Read(&buf)
		if err != nil {
			return false
		}
		if len(back.Frames) != n {
			return false
		}
		for i := range frames {
			if back.Frames[i].Index != frames[i] {
				return false
			}
			for w := range back.Frames[i].Words {
				if back.Frames[i].Words[w] != im.Frame(frames[i])[w] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
