package obs

import (
	"log/slog"
	"os"
	"strings"
	"sync"
)

// Log-level environment knobs. SACHA_LOG selects the level
// (debug|info|warn|error, default warn — libraries stay quiet unless
// asked); SACHA_LOG_FORMAT selects text (default) or json.
const (
	LogLevelEnv  = "SACHA_LOG"
	LogFormatEnv = "SACHA_LOG_FORMAT"
)

var (
	logOnce   sync.Once
	logger    *slog.Logger
	logLevel  = new(slog.LevelVar)
	logOutput = os.Stderr
)

// Logger returns the process-wide structured logger. It is built once,
// from the SACHA_LOG / SACHA_LOG_FORMAT environment: a text or JSON
// slog handler on stderr. Instrumented packages log through it at
// debug/info; the default level (warn) keeps tests and library callers
// quiet until the operator opts in.
func Logger() *slog.Logger {
	logOnce.Do(func() {
		logLevel.Set(ParseLevel(os.Getenv(LogLevelEnv)))
		opts := &slog.HandlerOptions{Level: logLevel}
		var h slog.Handler
		if strings.EqualFold(os.Getenv(LogFormatEnv), "json") {
			h = slog.NewJSONHandler(logOutput, opts)
		} else {
			h = slog.NewTextHandler(logOutput, opts)
		}
		logger = slog.New(h)
	})
	return logger
}

// SetLogLevel overrides the level of the process logger at runtime —
// the CLI hook for a -v style flag taking precedence over the
// environment.
func SetLogLevel(l slog.Level) {
	Logger() // ensure the handler exists and shares logLevel
	logLevel.Set(l)
}

// ParseLevel maps a level name to a slog.Level; unknown or empty names
// mean warn.
func ParseLevel(s string) slog.Level {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "debug":
		return slog.LevelDebug
	case "info":
		return slog.LevelInfo
	case "error":
		return slog.LevelError
	default:
		return slog.LevelWarn
	}
}
