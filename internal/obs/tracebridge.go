package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"sacha/internal/trace"
)

// TraceSink bridges internal/trace into the metrics registry: attached
// as a trace.Log's Sink, it aggregates every recorded protocol event
// into a per-Kind histogram family (virtual durations, in seconds) plus
// exact per-Kind count/total aggregates — enough to print a paper-style
// Table 3 ("where does attestation time go, per action class") from any
// instrumented run, live, without retaining the event stream.
type TraceSink struct {
	hist *HistogramVec

	mu   sync.Mutex
	aggs map[trace.Kind]*kindAgg
}

type kindAgg struct {
	count int
	total time.Duration
	max   time.Duration
}

// NewTraceSink returns a sink registering its histogram family
// ("sacha_trace_step_seconds", labelled by kind) into reg; nil means
// the Default registry.
func NewTraceSink(reg *Registry) *TraceSink {
	if reg == nil {
		reg = Default()
	}
	return &TraceSink{
		hist: reg.HistogramVec("sacha_trace_step_seconds",
			"Virtual duration of recorded protocol steps by action kind.", nil, "kind"),
		aggs: make(map[trace.Kind]*kindAgg),
	}
}

// Observe implements trace.Sink.
func (s *TraceSink) Observe(kind trace.Kind, frame int, d time.Duration, note string) {
	s.hist.With(string(kind)).ObserveDuration(d)
	s.mu.Lock()
	a := s.aggs[kind]
	if a == nil {
		a = &kindAgg{}
		s.aggs[kind] = a
	}
	a.count++
	a.total += d
	if d > a.max {
		a.max = d
	}
	s.mu.Unlock()
}

// Table writes the per-kind aggregation as a Table 3-style report:
// count, total, mean and max virtual duration per action kind, sorted
// by descending total — the actions that dominate attestation time
// first.
func (s *TraceSink) Table(w io.Writer) error {
	s.mu.Lock()
	kinds := make([]trace.Kind, 0, len(s.aggs))
	for k := range s.aggs {
		kinds = append(kinds, k)
	}
	rows := make(map[trace.Kind]kindAgg, len(kinds))
	for k, a := range s.aggs {
		rows[k] = *a
	}
	s.mu.Unlock()
	sort.Slice(kinds, func(i, j int) bool {
		if rows[kinds[i]].total != rows[kinds[j]].total {
			return rows[kinds[i]].total > rows[kinds[j]].total
		}
		return kinds[i] < kinds[j]
	})
	if _, err := fmt.Fprintf(w, "%-16s %8s %14s %14s %14s\n", "Action", "Count", "Total", "Mean", "Max"); err != nil {
		return err
	}
	var grand time.Duration
	for _, k := range kinds {
		a := rows[k]
		mean := time.Duration(0)
		if a.count > 0 {
			mean = a.total / time.Duration(a.count)
		}
		grand += a.total
		if _, err := fmt.Fprintf(w, "%-16s %8d %14v %14v %14v\n", k, a.count, a.total, mean, a.max); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "%-16s %8s %14v\n", "total", "", grand)
	return err
}
