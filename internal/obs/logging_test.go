package obs

import (
	"log/slog"
	"testing"
)

func TestParseLevel(t *testing.T) {
	cases := []struct {
		in   string
		want slog.Level
	}{
		{"debug", slog.LevelDebug},
		{"INFO", slog.LevelInfo},
		{"Warn", slog.LevelWarn},
		{"warning", slog.LevelWarn},
		{"error", slog.LevelError},
		{"", slog.LevelWarn},      // default keeps library output quiet
		{"bogus", slog.LevelWarn}, // unknown values fall back, never panic
		{" debug ", slog.LevelDebug} /* whitespace-tolerant */}
	for _, c := range cases {
		if got := ParseLevel(c.in); got != c.want {
			t.Errorf("ParseLevel(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestLoggerLevelSwitch(t *testing.T) {
	l := Logger()
	if l == nil {
		t.Fatal("Logger() returned nil")
	}
	SetLogLevel(slog.LevelDebug)
	if !l.Enabled(nil, slog.LevelDebug) {
		t.Error("debug not enabled after SetLogLevel(debug)")
	}
	SetLogLevel(slog.LevelWarn)
	if l.Enabled(nil, slog.LevelInfo) {
		t.Error("info still enabled after SetLogLevel(warn)")
	}
}
