package obs

import (
	"encoding/json"
	"testing"
	"time"
)

// TestSweepSnapshotGoldenJSON pins the exact JSON the /debug/sweep
// endpoint emits — field names, field ORDER (encoding/json emits
// struct fields in declaration order, so reordering TargetSnapshot or
// SweepSnapshot is a breaking change this test catches), the -1
// shard/worker sentinel on pending and running rows, and the dispatch
// attribution on done rows. Time-dependent fields (StartedAt,
// snapshot ElapsedNS) are zeroed after Snapshot; per-target elapsed
// comes from the outcomes the test controls, so it stays in the golden.
func TestSweepSnapshotGoldenJSON(t *testing.T) {
	tr := NewSweepTracker()
	tr.Begin([]SweepTarget{
		{Name: "device-1", Class: "tiny"},
		{Name: "device-2", Class: "tiny"},
		{Name: "device-3", Class: "small"},
		{Name: "device-4", Class: "small"},
	})
	tr.Start("device-1")
	tr.Done("device-1", SweepOutcome{
		Verdict: VerdictHealthy, Retries: 2, TransportFaults: 1,
		Elapsed: 5 * time.Millisecond, Shard: 0, Worker: 1,
		DeltaApplied: true, FramesRewritten: 3,
	})
	tr.Start("device-2")
	tr.Done("device-2", SweepOutcome{
		Verdict: VerdictUnreachable, Elapsed: 7 * time.Millisecond,
		Err: "sweep: device 2: context deadline exceeded", Shard: 1, Worker: 0,
		DeltaFallback: "cold",
	})
	tr.Start("device-3") // still running at snapshot time

	snap := tr.Snapshot()
	snap.StartedAt = time.Time{}
	snap.ElapsedNS = 0

	blob, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	const golden = `{
  "started_at": "0001-01-01T00:00:00Z",
  "elapsed_ns": 0,
  "total": 4,
  "in_flight": 1,
  "completed": 2,
  "verdicts": {
    "healthy": 1,
    "unreachable": 1
  },
  "per_class": {
    "tiny": {
      "healthy": 1,
      "unreachable": 1
    }
  },
  "retries": 2,
  "transport_faults": 1,
  "targets": [
    {
      "target": "device-1",
      "class": "tiny",
      "state": "done",
      "shard": 0,
      "worker": 1,
      "verdict": "healthy",
      "retries": 2,
      "transport_faults": 1,
      "elapsed_ns": 5000000,
      "delta_applied": true,
      "frames_rewritten": 3
    },
    {
      "target": "device-2",
      "class": "tiny",
      "state": "done",
      "shard": 1,
      "worker": 0,
      "verdict": "unreachable",
      "elapsed_ns": 7000000,
      "err": "sweep: device 2: context deadline exceeded",
      "delta_fallback": "cold"
    },
    {
      "target": "device-3",
      "class": "small",
      "state": "running",
      "shard": -1,
      "worker": -1
    },
    {
      "target": "device-4",
      "class": "small",
      "state": "pending",
      "shard": -1,
      "worker": -1
    }
  ]
}`
	if string(blob) != golden {
		t.Fatalf("snapshot JSON diverged from golden:\n--- got ---\n%s\n--- want ---\n%s", blob, golden)
	}
}
