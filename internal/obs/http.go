package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Route mounts one extra handler on the observability mux — the hook
// sacha-fleetd uses to hang its /fleet/* control API off the same
// endpoint that already serves /metrics and /debug/sweep.
type Route struct {
	Pattern string
	Handler http.Handler
}

// Handler builds the observability endpoint: Prometheus-text /metrics
// for reg (nil = Default), a JSON /debug/sweep snapshot of sweep (404
// when nil), the net/http/pprof suite under /debug/pprof/, and any
// extra routes — wired explicitly so the handler composes with any mux
// instead of leaking into http.DefaultServeMux.
func Handler(reg *Registry, sweep *SweepTracker, extra ...Route) http.Handler {
	if reg == nil {
		reg = Default()
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		reg.WritePrometheus(w)
	})
	mux.HandleFunc("/debug/sweep", func(w http.ResponseWriter, r *http.Request) {
		if sweep == nil {
			http.Error(w, "no sweep tracker attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(sweep.Snapshot())
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, r := range extra {
		mux.Handle(r.Pattern, r.Handler)
	}
	return mux
}

// Serve listens on addr and serves Handler(reg, sweep) in a background
// goroutine. It returns the bound address (useful with ":0") and the
// server, which the caller shuts down when done. Listen errors are
// returned synchronously so a mistyped -obs-addr fails fast.
func Serve(addr string, reg *Registry, sweep *SweepTracker, extra ...Route) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, err
	}
	srv := &http.Server{
		Handler:           Handler(reg, sweep, extra...),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go srv.Serve(ln)
	return srv, ln.Addr(), nil
}
