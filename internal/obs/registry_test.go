package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestWritePrometheusGolden pins the exposition format end to end:
// HELP/TYPE headers, lexicographic family and child order, label
// escaping, and the cumulative histogram lines with _sum/_count.
func TestWritePrometheusGolden(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total", "A plain counter.").Add(3)
	v := reg.CounterVec("a_total", "A labelled counter.", "kind")
	v.With("x").Add(2)
	v.With(`quote"and\slash`).Inc()
	reg.Gauge("c_gauge", "A gauge.").Set(-7)
	h := reg.Histogram("d_seconds", "A histogram.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	want := `# HELP a_total A labelled counter.
# TYPE a_total counter
a_total{kind="quote\"and\\slash"} 1
a_total{kind="x"} 2
# HELP b_total A plain counter.
# TYPE b_total counter
b_total 3
# HELP c_gauge A gauge.
# TYPE c_gauge gauge
c_gauge -7
# HELP d_seconds A histogram.
# TYPE d_seconds histogram
d_seconds_bucket{le="0.1"} 2
d_seconds_bucket{le="1"} 3
d_seconds_bucket{le="+Inf"} 4
d_seconds_sum 5.6
d_seconds_count 4
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistrationIdempotent checks that re-registering the same family
// returns the same underlying metric (package-level vars and tests
// compose), while schema conflicts panic.
func TestRegistrationIdempotent(t *testing.T) {
	reg := NewRegistry()
	c1 := reg.Counter("x_total", "help")
	c2 := reg.Counter("x_total", "help")
	if c1 != c2 {
		t.Error("same-family Counter registration returned distinct counters")
	}
	c1.Inc()
	if c2.Value() != 1 {
		t.Errorf("re-registered counter sees %d, want 1", c2.Value())
	}

	defer func() {
		if recover() == nil {
			t.Error("conflicting re-registration (counter as gauge) did not panic")
		}
	}()
	reg.Gauge("x_total", "help")
}

func TestRegistrationLabelConflictPanics(t *testing.T) {
	reg := NewRegistry()
	reg.CounterVec("y_total", "help", "kind")
	defer func() {
		if recover() == nil {
			t.Error("conflicting label schema did not panic")
		}
	}()
	reg.CounterVec("y_total", "help", "other")
}

// TestConcurrentUpdates hammers every metric kind from many goroutines;
// run under -race this is the data-race proof for the lock-free paths,
// and the totals prove no update is lost.
func TestConcurrentUpdates(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("hits_total", "h")
	g := reg.Gauge("level", "h")
	cv := reg.CounterVec("kinds_total", "h", "kind")
	hv := reg.HistogramVec("lat_seconds", "h", []float64{0.001, 0.01, 0.1}, "phase")

	const workers, perWorker = 16, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			kind := []string{"a", "b"}[w%2]
			phase := []string{"config", "readback"}[w%2]
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Inc()
				g.Dec()
				cv.With(kind).Inc()
				hv.With(phase).Observe(float64(i%100) / 1000)
			}
		}()
	}
	// A concurrent scrape must not race with the writers either.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			var b strings.Builder
			if err := reg.WritePrometheus(&b); err != nil {
				t.Errorf("concurrent WritePrometheus: %v", err)
				return
			}
		}
	}()
	wg.Wait()

	if got := c.Value(); got != workers*perWorker {
		t.Errorf("counter lost updates: %d, want %d", got, workers*perWorker)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge should settle at 0, got %d", got)
	}
	if a, b := cv.With("a").Value(), cv.With("b").Value(); a+b != workers*perWorker {
		t.Errorf("labelled counters lost updates: %d+%d, want %d", a, b, workers*perWorker)
	}
	total := hv.With("config").Count() + hv.With("readback").Count()
	if total != workers*perWorker {
		t.Errorf("histograms lost observations: %d, want %d", total, workers*perWorker)
	}
}

func TestHistogramSemantics(t *testing.T) {
	h := newHistogram([]float64{1, 2, 4})
	for _, v := range []float64{0.5, 1, 1.5, 3, 8} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("Count = %d, want 5", h.Count())
	}
	if h.Sum() != 14 {
		t.Errorf("Sum = %g, want 14", h.Sum())
	}
	// Bucket occupancy: le=1 → {0.5, 1}, le=2 → {1.5}, le=4 → {3}, +Inf → {8}.
	for i, want := range []uint64{2, 1, 1, 1} {
		if got := h.counts[i].Load(); got != want {
			t.Errorf("bucket %d holds %d, want %d", i, got, want)
		}
	}
	if q := h.Quantile(0.5); q < 0.5 || q > 2 {
		t.Errorf("median estimate %g outside [0.5, 2]", q)
	}
	if q := h.Quantile(1); q != 4 {
		t.Errorf("q=1 estimate %g, want the largest finite bound 4", q)
	}
	empty := newHistogram([]float64{1})
	if q := empty.Quantile(0.9); q != 0 {
		t.Errorf("empty histogram quantile = %g, want 0", q)
	}
}
