package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestHandlerMetrics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("demo_total", "Demo counter.").Add(42)
	srv := httptest.NewServer(Handler(reg, nil))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want Prometheus text 0.0.4", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "demo_total 42") {
		t.Errorf("/metrics missing sample:\n%s", body)
	}
}

func TestHandlerSweep(t *testing.T) {
	tr := NewSweepTracker()
	tr.Begin([]SweepTarget{{Name: "device-1", Class: "SmallLX"}})
	tr.Start("device-1")
	tr.Done("device-1", SweepOutcome{Verdict: VerdictHealthy, Retries: 3})
	srv := httptest.NewServer(Handler(NewRegistry(), tr))
	defer srv.Close()

	resp, err := http.Get(srv.URL + "/debug/sweep")
	if err != nil {
		t.Fatalf("GET /debug/sweep: %v", err)
	}
	defer resp.Body.Close()
	var snap SweepSnapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		t.Fatalf("decoding snapshot: %v", err)
	}
	if snap.Total != 1 || snap.Completed != 1 || snap.Verdicts[VerdictHealthy] != 1 || snap.Retries != 3 {
		t.Errorf("snapshot = %+v", snap)
	}
}

func TestHandlerSweepWithoutTracker(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/sweep")
	if err != nil {
		t.Fatalf("GET /debug/sweep: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("status = %d, want 404 without a tracker", resp.StatusCode)
	}
}

func TestHandlerPprof(t *testing.T) {
	srv := httptest.NewServer(Handler(NewRegistry(), nil))
	defer srv.Close()
	resp, err := http.Get(srv.URL + "/debug/pprof/cmdline")
	if err != nil {
		t.Fatalf("GET /debug/pprof/cmdline: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("pprof status = %d, want 200", resp.StatusCode)
	}
}

func TestServe(t *testing.T) {
	srv, addr, err := Serve("127.0.0.1:0", NewRegistry(), nil)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + addr.String() + "/metrics")
	if err != nil {
		t.Fatalf("GET bound addr: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("status = %d, want 200", resp.StatusCode)
	}
	// A second listener on the same port must fail fast, synchronously.
	if _, _, err := Serve(addr.String(), nil, nil); err == nil {
		t.Error("Serve on an occupied port returned no error")
	}
}
