package obs

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing counter. The zero value is
// ready to use; all methods are safe for concurrent use and lock-free.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(b *strings.Builder, name, labelStr string) {
	writeSample(b, name, labelStr, strconv.FormatUint(c.Value(), 10))
}

// Gauge is an integer-valued gauge. The zero value is ready to use; all
// methods are safe for concurrent use and lock-free.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add adds delta (negative deltas decrease the gauge).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Inc adds one.
func (g *Gauge) Inc() { g.v.Add(1) }

// Dec subtracts one.
func (g *Gauge) Dec() { g.v.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

func (g *Gauge) write(b *strings.Builder, name, labelStr string) {
	writeSample(b, name, labelStr, strconv.FormatInt(g.Value(), 10))
}

// DefBuckets are the default histogram buckets, in seconds: exponential
// from 10 µs to ~40 s, sized for attestation phases that range from a
// sub-millisecond TinyLX readback to a full-device sweep.
var DefBuckets = []float64{
	1e-5, 2.5e-5, 1e-4, 2.5e-4, 1e-3, 2.5e-3, 1e-2, 2.5e-2,
	0.1, 0.25, 1, 2.5, 10, 40,
}

// Histogram is a fixed-bucket histogram of float64 observations
// (seconds, by convention). Observations are lock-free: each lands in
// one atomic bucket counter plus an atomic CAS on the running sum.
type Histogram struct {
	buckets []float64       // ascending upper bounds
	counts  []atomic.Uint64 // len(buckets)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // math.Float64bits of the sum
}

func newHistogram(buckets []float64) *Histogram {
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("obs: histogram buckets not ascending: %v", buckets))
		}
	}
	return &Histogram{
		buckets: buckets,
		counts:  make([]atomic.Uint64, len(buckets)+1),
	}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.buckets) && v > h.buckets[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, new) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation inside the owning bucket — the usual Prometheus
// histogram_quantile estimate. It returns 0 with no observations; an
// estimate landing in the +Inf bucket returns the largest finite bound.
func (h *Histogram) Quantile(q float64) float64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		if float64(seen+c) >= rank && c > 0 {
			if i >= len(h.buckets) {
				return h.buckets[len(h.buckets)-1]
			}
			lower := 0.0
			if i > 0 {
				lower = h.buckets[i-1]
			}
			frac := (rank - float64(seen)) / float64(c)
			return lower + (h.buckets[i]-lower)*frac
		}
		seen += c
	}
	return h.buckets[len(h.buckets)-1]
}

func (h *Histogram) write(b *strings.Builder, name, labelStr string) {
	var cum uint64
	for i, bound := range h.buckets {
		cum += h.counts[i].Load()
		writeSample(b, name+"_bucket", joinLabels(labelStr, fmt.Sprintf("le=%q", formatFloat(bound))),
			strconv.FormatUint(cum, 10))
	}
	cum += h.counts[len(h.buckets)].Load()
	writeSample(b, name+"_bucket", joinLabels(labelStr, `le="+Inf"`), strconv.FormatUint(cum, 10))
	writeSample(b, name+"_sum", labelStr, formatFloat(h.Sum()))
	writeSample(b, name+"_count", labelStr, strconv.FormatUint(h.Count(), 10))
}

// formatFloat renders a float the way Prometheus clients do: shortest
// representation that round-trips.
func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// joinLabels merges a rendered label fragment with an extra pair.
func joinLabels(labelStr, extra string) string {
	if labelStr == "" {
		return extra
	}
	return labelStr + "," + extra
}

// writeSample appends one exposition line.
func writeSample(b *strings.Builder, name, labelStr, value string) {
	b.WriteString(name)
	if labelStr != "" {
		b.WriteByte('{')
		b.WriteString(labelStr)
		b.WriteByte('}')
	}
	b.WriteByte(' ')
	b.WriteString(value)
	b.WriteByte('\n')
}
