package obs

import (
	"sync"
	"time"
)

// Sweep verdict names, shared by the tracker, the swarm report
// aggregation and the /debug/sweep JSON snapshot.
const (
	VerdictHealthy     = "healthy"
	VerdictCompromised = "compromised"
	VerdictUnreachable = "unreachable"
	VerdictFailed      = "failed"
)

// Target states of a tracked sweep.
const (
	StatePending = "pending"
	StateRunning = "running"
	StateDone    = "done"
)

// SweepTarget names one sweep member at Begin time. Class groups
// targets for the per-class tallies of the snapshot (empty = untracked).
type SweepTarget struct {
	Name  string
	Class string
}

// SweepOutcome is the terminal record of one target.
type SweepOutcome struct {
	Verdict         string // VerdictHealthy, ... (empty = failed)
	Retries         int
	TransportFaults int
	Elapsed         time.Duration
	Err             string
	// Shard is the dispatcher shard whose plan served the target and
	// Worker the pool worker that ran the session — the attribution the
	// /debug/sweep snapshot exposes per device. Single-engine sweeps
	// report shard 0.
	Shard  int
	Worker int
	// Delta outcome of the session, filled when the sweep ran in delta
	// mode: DeltaApplied reports the rewrite-only path ran,
	// DeltaFallback names the reason it did not ("cold", "mismatch",
	// "threshold", ...), FramesRewritten counts the frames the applied
	// delta actually rewrote.
	DeltaApplied    bool
	DeltaFallback   string
	FramesRewritten int
}

// SweepTracker tracks one fleet sweep live: which targets are pending,
// running and done, with per-target verdicts and transport pressure.
// The verifier CLI serves its Snapshot as the /debug/sweep endpoint;
// swarm.Sweep feeds it when SweepConfig.Tracker is set. Begin resets
// the tracker, so one tracker follows consecutive sweeps.
type SweepTracker struct {
	mu        sync.Mutex
	startedAt time.Time
	order     []string
	targets   map[string]*targetState
}

type targetState struct {
	class   string
	state   string
	outcome SweepOutcome
}

// NewSweepTracker returns an empty tracker.
func NewSweepTracker() *SweepTracker {
	return &SweepTracker{targets: make(map[string]*targetState)}
}

// Begin resets the tracker for a new sweep over the given targets.
func (t *SweepTracker) Begin(targets []SweepTarget) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.startedAt = time.Now()
	t.order = t.order[:0]
	t.targets = make(map[string]*targetState, len(targets))
	for _, tg := range targets {
		t.order = append(t.order, tg.Name)
		t.targets[tg.Name] = &targetState{class: tg.Class, state: StatePending}
	}
}

// Start marks a target as running.
func (t *SweepTracker) Start(name string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if s, ok := t.targets[name]; ok {
		s.state = StateRunning
	}
}

// Done records a target's terminal outcome.
func (t *SweepTracker) Done(name string, out SweepOutcome) {
	t.mu.Lock()
	defer t.mu.Unlock()
	s, ok := t.targets[name]
	if !ok {
		return
	}
	if out.Verdict == "" {
		out.Verdict = VerdictFailed
	}
	s.state = StateDone
	s.outcome = out
}

// TargetSnapshot is one target's row in a SweepSnapshot. The field
// order is part of the endpoint's contract (asserted by a golden test):
// encoding/json emits struct fields in declaration order, so appending
// is safe and reordering is a breaking change. Shard and Worker carry
// the dispatch attribution of done targets; both are -1 while the
// target is pending or running.
type TargetSnapshot struct {
	Target          string `json:"target"`
	Class           string `json:"class,omitempty"`
	State           string `json:"state"`
	Shard           int    `json:"shard"`
	Worker          int    `json:"worker"`
	Verdict         string `json:"verdict,omitempty"`
	Retries         int    `json:"retries,omitempty"`
	TransportFaults int    `json:"transport_faults,omitempty"`
	ElapsedNS       int64  `json:"elapsed_ns,omitempty"`
	Err             string `json:"err,omitempty"`
	DeltaApplied    bool   `json:"delta_applied,omitempty"`
	DeltaFallback   string `json:"delta_fallback,omitempty"`
	FramesRewritten int    `json:"frames_rewritten,omitempty"`
}

// SweepSnapshot is the JSON shape of /debug/sweep: live progress
// (in-flight / completed), fleet verdict tallies, per-class health and
// the transport-pressure rollup, plus the per-target rows.
type SweepSnapshot struct {
	StartedAt       time.Time                 `json:"started_at"`
	ElapsedNS       int64                     `json:"elapsed_ns"`
	Total           int                       `json:"total"`
	InFlight        int                       `json:"in_flight"`
	Completed       int                       `json:"completed"`
	Verdicts        map[string]int            `json:"verdicts"`
	PerClass        map[string]map[string]int `json:"per_class,omitempty"`
	Retries         int                       `json:"retries"`
	TransportFaults int                       `json:"transport_faults"`
	Targets         []TargetSnapshot          `json:"targets"`
}

// Snapshot returns a consistent copy of the sweep state.
func (t *SweepTracker) Snapshot() SweepSnapshot {
	t.mu.Lock()
	defer t.mu.Unlock()
	snap := SweepSnapshot{
		StartedAt: t.startedAt,
		Total:     len(t.order),
		Verdicts:  make(map[string]int),
		Targets:   make([]TargetSnapshot, 0, len(t.order)),
	}
	if !t.startedAt.IsZero() {
		snap.ElapsedNS = time.Since(t.startedAt).Nanoseconds()
	}
	for _, name := range t.order {
		s := t.targets[name]
		row := TargetSnapshot{Target: name, Class: s.class, State: s.state, Shard: -1, Worker: -1}
		switch s.state {
		case StateRunning:
			snap.InFlight++
		case StateDone:
			snap.Completed++
			row.Shard = s.outcome.Shard
			row.Worker = s.outcome.Worker
			row.Verdict = s.outcome.Verdict
			row.Retries = s.outcome.Retries
			row.TransportFaults = s.outcome.TransportFaults
			row.ElapsedNS = s.outcome.Elapsed.Nanoseconds()
			row.Err = s.outcome.Err
			row.DeltaApplied = s.outcome.DeltaApplied
			row.DeltaFallback = s.outcome.DeltaFallback
			row.FramesRewritten = s.outcome.FramesRewritten
			snap.Verdicts[s.outcome.Verdict]++
			snap.Retries += s.outcome.Retries
			snap.TransportFaults += s.outcome.TransportFaults
			if s.class != "" {
				if snap.PerClass == nil {
					snap.PerClass = make(map[string]map[string]int)
				}
				if snap.PerClass[s.class] == nil {
					snap.PerClass[s.class] = make(map[string]int)
				}
				snap.PerClass[s.class][s.outcome.Verdict]++
			}
		}
		snap.Targets = append(snap.Targets, row)
	}
	return snap
}
