package obs

import (
	"strings"
	"testing"
	"time"

	"sacha/internal/trace"
)

func TestTraceSinkAggregates(t *testing.T) {
	reg := NewRegistry()
	sink := NewTraceSink(reg)
	// Retention cap 1: the sink must still see every event, because the
	// bridge aggregates live instead of replaying the retained log.
	log := trace.NewLog(1)
	log.SetSink(sink)
	log.Add(trace.KindReadback, 0, 3*time.Microsecond, "")
	log.Add(trace.KindReadback, 1, 5*time.Microsecond, "")
	log.Add(trace.KindConfig, 0, 2*time.Microsecond, "")

	var b strings.Builder
	if err := sink.Table(&b); err != nil {
		t.Fatalf("Table: %v", err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header, two kinds, grand total.
	if len(lines) != 4 {
		t.Fatalf("table has %d lines, want 4:\n%s", len(lines), out)
	}
	// Readback dominates (8 µs > 2 µs) so it must sort first.
	if !strings.HasPrefix(lines[1], string(trace.KindReadback)) {
		t.Errorf("first data row should be %s:\n%s", trace.KindReadback, out)
	}
	if !strings.Contains(lines[1], "8µs") || !strings.Contains(lines[1], "4µs") || !strings.Contains(lines[1], "5µs") {
		t.Errorf("readback row missing total/mean/max:\n%s", out)
	}
	if !strings.Contains(lines[3], "10µs") {
		t.Errorf("grand total row should show 10µs:\n%s", out)
	}

	// And the histogram family is registered and populated.
	var exp strings.Builder
	if err := reg.WritePrometheus(&exp); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	if !strings.Contains(exp.String(), `sacha_trace_step_seconds_count{kind="ICAP_readback"} 2`) {
		t.Errorf("exposition missing trace histogram:\n%s", exp.String())
	}
}
