// Package obs is the observability substrate of the SACHa stack: a
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket histograms, with optional label families), a Prometheus
// text exposition of everything registered, a structured-logging setup
// on log/slog, and a live sweep tracker the verifier CLI serves as a
// JSON debug snapshot.
//
// The paper's evaluation (Table 3, Fig. 9) is an accounting of where
// attestation time goes; this package makes the same accounting
// available from a live system. Instrumented packages register their
// metric families once, at init time, against the process-wide Default
// registry — the Prometheus client idiom, without the dependency:
//
//	var mRuns = obs.Default().CounterVec(
//		"sacha_attest_runs_total", "Attestation runs by verdict.", "verdict")
//	...
//	mRuns.With("accepted").Inc()
//
// Every metric operation on the hot path is a single atomic update, so
// instrumentation stays well under the perf budget of the windowed
// readback pipeline.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// MetricType enumerates the supported Prometheus metric types.
type MetricType string

// Metric types, matching the Prometheus exposition TYPE values.
const (
	TypeCounter   MetricType = "counter"
	TypeGauge     MetricType = "gauge"
	TypeHistogram MetricType = "histogram"
)

// Registry holds metric families. All methods are safe for concurrent
// use; registration of an already-registered family returns the
// existing one (so package-level vars and tests compose), while a
// name collision across types or label schemas panics — that is a
// programming error, not a runtime condition.
type Registry struct {
	mu       sync.RWMutex
	families map[string]*Family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*Family)}
}

var defaultRegistry = NewRegistry()

// Default returns the process-wide registry the instrumented packages
// register into and the CLIs expose over /metrics.
func Default() *Registry { return defaultRegistry }

// Family is one named metric family: a type, a help string, a label
// schema and the children keyed by their label values. An unlabelled
// metric is a family with one child under the empty key.
type Family struct {
	name    string
	help    string
	typ     MetricType
	labels  []string
	buckets []float64 // histogram families only

	mu       sync.RWMutex
	children map[string]metric
}

// metric is the common face of Counter, Gauge and Histogram for the
// exposition writer.
type metric interface {
	// write appends the exposition lines for this child. labelStr is the
	// pre-rendered {k="v",...} fragment without braces ("" when
	// unlabelled).
	write(b *strings.Builder, name, labelStr string)
}

// family registers (or fetches) a family, enforcing schema consistency.
func (r *Registry) family(name, help string, typ MetricType, labels []string, buckets []float64) *Family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.families[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic(fmt.Sprintf("obs: conflicting registration of %q (%s%v vs %s%v)",
				name, f.typ, f.labels, typ, labels))
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic(fmt.Sprintf("obs: conflicting labels for %q: %v vs %v", name, f.labels, labels))
			}
		}
		return f
	}
	f := &Family{
		name:     name,
		help:     help,
		typ:      typ,
		labels:   append([]string(nil), labels...),
		buckets:  buckets,
		children: make(map[string]metric),
	}
	r.families[name] = f
	return f
}

// child fetches or creates the family member for the label values.
func (f *Family) child(values []string, make func() metric) metric {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("obs: %q expects %d label value(s), got %d", f.name, len(f.labels), len(values)))
	}
	key := labelKey(values)
	f.mu.RLock()
	m, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return m
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if m, ok := f.children[key]; ok {
		return m
	}
	m = make()
	f.children[key] = m
	return m
}

// labelKey joins label values with an unlikely separator so distinct
// tuples cannot collide.
func labelKey(values []string) string { return strings.Join(values, "\x1f") }

// labelString renders the {k="v",...} fragment (without braces) for a
// child's label values.
func (f *Family) labelString(key string) string {
	if len(f.labels) == 0 {
		return ""
	}
	values := strings.Split(key, "\x1f")
	parts := make([]string, len(f.labels))
	for i, name := range f.labels {
		// %q escapes backslash, double quote and newline — the three
		// characters the Prometheus text format requires escaped.
		parts[i] = fmt.Sprintf("%s=%q", name, values[i])
	}
	return strings.Join(parts, ",")
}

// Counter returns the unlabelled counter of the family, registering it
// on first use.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.family(name, help, TypeCounter, nil, nil)
	return f.child(nil, func() metric { return &Counter{} }).(*Counter)
}

// CounterVec registers (or fetches) a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	return &CounterVec{fam: r.family(name, help, TypeCounter, labels, nil)}
}

// Gauge returns the unlabelled gauge of the family, registering it on
// first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.family(name, help, TypeGauge, nil, nil)
	return f.child(nil, func() metric { return &Gauge{} }).(*Gauge)
}

// GaugeVec registers (or fetches) a labelled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	return &GaugeVec{fam: r.family(name, help, TypeGauge, labels, nil)}
}

// Histogram returns the unlabelled histogram of the family, registering
// it on first use. A nil buckets slice uses DefBuckets.
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	f := r.family(name, help, TypeHistogram, nil, buckets)
	return f.child(nil, func() metric { return newHistogram(f.buckets) }).(*Histogram)
}

// HistogramVec registers (or fetches) a labelled histogram family. A nil
// buckets slice uses DefBuckets.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	if buckets == nil {
		buckets = DefBuckets
	}
	return &HistogramVec{fam: r.family(name, help, TypeHistogram, labels, buckets)}
}

// CounterVec is a labelled counter family.
type CounterVec struct{ fam *Family }

// With returns the counter for the label values, creating it on first
// use.
func (v *CounterVec) With(values ...string) *Counter {
	return v.fam.child(values, func() metric { return &Counter{} }).(*Counter)
}

// GaugeVec is a labelled gauge family.
type GaugeVec struct{ fam *Family }

// With returns the gauge for the label values, creating it on first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.fam.child(values, func() metric { return &Gauge{} }).(*Gauge)
}

// HistogramVec is a labelled histogram family.
type HistogramVec struct{ fam *Family }

// With returns the histogram for the label values, creating it on first
// use.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.fam.child(values, func() metric { return newHistogram(v.fam.buckets) }).(*Histogram)
}

// Snapshot returns the current value of every registered sample, keyed
// by its exposition identity (`name` or `name{k="v",...}`): counters
// and gauges by value, histograms as name_count and name_sum entries.
// Two snapshots diff into a metrics delta — what the span flight
// recorder attaches to each artifact, so a post-mortem carries the
// counter movement around the failure, not just the span tree.
func (r *Registry) Snapshot() map[string]float64 {
	r.mu.RLock()
	fams := make([]*Family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.RUnlock()
	out := make(map[string]float64)
	for _, f := range fams {
		f.mu.RLock()
		children := make(map[string]metric, len(f.children))
		for k, m := range f.children {
			children[k] = m
		}
		f.mu.RUnlock()
		for k, m := range children {
			frag := ""
			if ls := f.labelString(k); ls != "" {
				frag = "{" + ls + "}"
			}
			switch v := m.(type) {
			case *Counter:
				out[f.name+frag] = float64(v.Value())
			case *Gauge:
				out[f.name+frag] = float64(v.Value())
			case *Histogram:
				out[f.name+"_count"+frag] = float64(v.Count())
				out[f.name+"_sum"+frag] = v.Sum()
			}
		}
	}
	return out
}

// WritePrometheus writes every registered family in the Prometheus text
// exposition format (families and children in lexicographic order, so
// the output is deterministic and golden-testable).
func (r *Registry) WritePrometheus(w interface{ Write([]byte) (int, error) }) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make(map[string]*Family, len(names))
	for name, f := range r.families {
		fams[name] = f
	}
	r.mu.RUnlock()
	sort.Strings(names)

	var b strings.Builder
	for _, name := range names {
		f := fams[name]
		f.mu.RLock()
		keys := make([]string, 0, len(f.children))
		for k := range f.children {
			keys = append(keys, k)
		}
		children := make(map[string]metric, len(keys))
		for k, m := range f.children {
			children[k] = m
		}
		f.mu.RUnlock()
		if len(keys) == 0 {
			continue
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.typ)
		for _, k := range keys {
			children[k].write(&b, f.name, f.labelString(k))
		}
	}
	_, err := w.Write([]byte(b.String()))
	return err
}
