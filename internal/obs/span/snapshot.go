package span

import (
	"sort"
	"time"
)

// EventSnapshot is the JSON shape of one span event.
type EventSnapshot struct {
	Kind      string `json:"kind"`
	Frame     int    `json:"frame"`
	VirtualNS int64  `json:"virtual_ns,omitempty"`
	OffsetNS  int64  `json:"offset_ns,omitempty"`
	Note      string `json:"note,omitempty"`
}

// SpanSnapshot is the JSON shape of one span, with its children nested
// — the tree the /debug/trace endpoint and the flight recorder emit.
// Tags serialize as a map, which encoding/json emits with sorted keys,
// so the rendering is deterministic.
type SpanSnapshot struct {
	Trace       string            `json:"trace"`
	ID          string            `json:"id"`
	Parent      string            `json:"parent,omitempty"`
	Name        string            `json:"name"`
	Device      uint64            `json:"device,omitempty"`
	StartUnixNS int64             `json:"start_unix_ns,omitempty"`
	DurationNS  int64             `json:"duration_ns"`
	Open        bool              `json:"open,omitempty"`
	Tags        map[string]string `json:"tags,omitempty"`
	Events      []EventSnapshot   `json:"events,omitempty"`
	Children    []SpanSnapshot    `json:"children,omitempty"`

	seq    int
	hasDev bool
}

// Filter selects spans out of a Snapshot. The zero value keeps
// everything. Trace restricts to one trace; the per-session criteria
// (Device, Verdict, MinDuration) select session spans — the
// device-attributed nodes — and keep each selected session's full
// subtree plus its ancestors, so a filtered answer still reads as a
// causal tree.
type Filter struct {
	// Trace keeps only the given trace (0 = all traces).
	Trace TraceID
	// Device keeps sessions of this device (0 = all devices).
	Device uint64
	// Verdict keeps sessions whose "verdict" tag equals it ("" = all).
	Verdict string
	// MinDuration keeps sessions at least this long — the slow-session
	// outlier filter (0 = all).
	MinDuration time.Duration
}

func (f Filter) constrained() bool {
	return f.Device != 0 || f.Verdict != "" || f.MinDuration > 0
}

func (f Filter) selects(n *SpanSnapshot) bool {
	if !n.hasDev {
		return false
	}
	if f.Device != 0 && n.Device != f.Device {
		return false
	}
	if f.Verdict != "" && n.Tags["verdict"] != f.Verdict {
		return false
	}
	if f.MinDuration > 0 && n.DurationNS < f.MinDuration.Nanoseconds() {
		return false
	}
	return true
}

// snapshotOne copies a span's current state (without children).
func snapshotOne(s *Span) SpanSnapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := SpanSnapshot{
		Trace:       s.trace.String(),
		ID:          s.id.String(),
		Name:        s.name,
		StartUnixNS: s.start.UnixNano(),
		DurationNS:  s.durNS,
		Open:        !s.done,
		seq:         s.seq,
		hasDev:      s.hasDev,
	}
	if s.parent != 0 {
		out.Parent = s.parent.String()
	}
	if s.hasDev {
		out.Device = s.device
	}
	if !s.done {
		out.DurationNS = time.Since(s.start).Nanoseconds()
	}
	if len(s.tags) > 0 {
		out.Tags = make(map[string]string, len(s.tags))
		for _, t := range s.tags {
			out.Tags[t.Key] = t.Value
		}
	}
	if len(s.events) > 0 {
		out.Events = make([]EventSnapshot, len(s.events))
		for i, e := range s.events {
			out.Events[i] = EventSnapshot{
				Kind: e.Kind, Frame: e.Frame, VirtualNS: e.VirtualNS,
				OffsetNS: e.OffsetNS, Note: e.Note,
			}
		}
	}
	return out
}

// Snapshot returns the retained spans as trees of root spans matching
// the filter, ordered deterministically: traces by ID, children by
// (device, creation index, span ID) — the order that makes a
// fixed-NonceSeed sweep's snapshot reproducible. Orphaned spans (their
// parent already evicted from the ring) surface as roots.
func (c *Collector) Snapshot(f Filter) []SpanSnapshot {
	if c == nil {
		return nil
	}
	spans := c.all()
	flat := make([]SpanSnapshot, 0, len(spans))
	for _, s := range spans {
		if f.Trace != 0 && s.trace != f.Trace {
			continue
		}
		flat = append(flat, snapshotOne(s))
	}
	byID := make(map[string]int, len(flat))
	for i := range flat {
		byID[flat[i].ID] = i
	}
	kids := make(map[string][]int, len(flat))
	var rootIdx []int
	for i := range flat {
		p := flat[i].Parent
		if p == "" {
			rootIdx = append(rootIdx, i)
			continue
		}
		if _, ok := byID[p]; !ok {
			rootIdx = append(rootIdx, i) // orphan: parent evicted
			continue
		}
		kids[p] = append(kids[p], i)
	}
	var build func(i int) SpanSnapshot
	build = func(i int) SpanSnapshot {
		n := flat[i]
		for _, k := range kids[n.ID] {
			n.Children = append(n.Children, build(k))
		}
		sortSpans(n.Children)
		return n
	}
	roots := make([]SpanSnapshot, 0, len(rootIdx))
	for _, i := range rootIdx {
		roots = append(roots, build(i))
	}
	sortSpans(roots)
	if !f.constrained() {
		return roots
	}
	out := roots[:0]
	for _, r := range roots {
		if pruned, keep := prune(r, f); keep {
			out = append(out, pruned)
		}
	}
	return out
}

// prune keeps n when the filter selects it (whole subtree retained) or
// when any descendant survives (n stays as the connecting ancestor,
// with only surviving children).
func prune(n SpanSnapshot, f Filter) (SpanSnapshot, bool) {
	if f.selects(&n) {
		return n, true
	}
	var kept []SpanSnapshot
	for _, c := range n.Children {
		if pc, keep := prune(c, f); keep {
			kept = append(kept, pc)
		}
	}
	if kept == nil {
		return n, false
	}
	n.Children = kept
	return n, true
}

// sortSpans orders siblings deterministically: device first (session
// spans of one sweep have distinct devices), then creation index
// (phase spans of one session are created in protocol order by one
// goroutine), then span ID as the tiebreak.
func sortSpans(ss []SpanSnapshot) {
	sort.SliceStable(ss, func(i, j int) bool {
		if ss[i].Trace != ss[j].Trace {
			return ss[i].Trace < ss[j].Trace
		}
		if ss[i].Device != ss[j].Device {
			return ss[i].Device < ss[j].Device
		}
		if ss[i].seq != ss[j].seq {
			return ss[i].seq < ss[j].seq
		}
		return ss[i].ID < ss[j].ID
	})
}

// SessionSpan finds the session span of device in a snapshot tree —
// the lookup flight-record consumers and tests use.
func SessionSpan(roots []SpanSnapshot, device uint64) *SpanSnapshot {
	for i := range roots {
		r := &roots[i]
		if device != 0 && r.Device == device {
			return r
		}
		if found := SessionSpan(r.Children, device); found != nil {
			return found
		}
	}
	return nil
}
