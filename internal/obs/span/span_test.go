package span

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"sacha/internal/obs"
	"sacha/internal/trace"
)

// TestDeterministicIDs pins the ID derivation: pure functions of their
// inputs, domain-separated from the per-device nonce derivation that
// shares the same base.
func TestDeterministicIDs(t *testing.T) {
	const base = 0xDEADBEEF12345678
	if NewTraceID(base) != NewTraceID(base) {
		t.Fatal("NewTraceID is not a pure function")
	}
	if NewTraceID(base) == NewTraceID(base+1) {
		t.Fatal("distinct bases collide")
	}
	tr := NewTraceID(base)
	if SessionSpanID(tr, 3) != SessionSpanID(tr, 3) {
		t.Fatal("SessionSpanID is not a pure function")
	}
	if SessionSpanID(tr, 3) == SessionSpanID(tr, 4) {
		t.Fatal("distinct devices collide")
	}
	// The salt domain-separates the trace ID from DeviceNonce(base, id):
	// both run the same mix, so without the salt NewTraceID(base) would
	// equal DeviceNonce(base, 0).
	deviceNonce0 := mix(base) // fleet.DeviceNonce(base, 0)
	if uint64(NewTraceID(base)) == deviceNonce0 {
		t.Fatal("trace ID collides with device nonce 0")
	}
	if childSpanID(SpanID(tr), 0) == childSpanID(SpanID(tr), 1) {
		t.Fatal("sibling children collide")
	}
}

// TestCollectorTreeAndFilters builds a small sweep-shaped trace and
// checks the snapshot tree, the deterministic ordering and each filter.
func TestCollectorTreeAndFilters(t *testing.T) {
	col := NewCollector(64)
	tr := NewTraceID(7)
	root := col.StartTrace(tr, "sweep")
	for dev := uint64(1); dev <= 3; dev++ {
		sp := root.DeviceChild(fmt.Sprintf("session device-%d", dev), dev)
		sp.SetTag("verdict", map[uint64]string{1: "healthy", 2: "compromised", 3: "healthy"}[dev])
		now := time.Now()
		sp.ChildSpanAt("phase:config", now.Add(-4*time.Millisecond), now.Add(-3*time.Millisecond))
		sp.ChildSpanAt("phase:readback", now.Add(-3*time.Millisecond), now)
		sp.Event("hello", -1, 0, "want=0x3 granted=0x3")
		sp.End()
	}
	root.End()

	roots := col.Snapshot(Filter{})
	if len(roots) != 1 {
		t.Fatalf("got %d roots, want 1", len(roots))
	}
	if got := len(roots[0].Children); got != 3 {
		t.Fatalf("root has %d sessions, want 3", got)
	}
	for i, c := range roots[0].Children {
		if c.Device != uint64(i)+1 {
			t.Fatalf("session %d has device %d; sessions not ordered by device", i, c.Device)
		}
		if len(c.Children) != 2 {
			t.Fatalf("session %d has %d phases, want 2", i, len(c.Children))
		}
		if c.Children[0].Name != "phase:config" || c.Children[1].Name != "phase:readback" {
			t.Fatalf("phases out of creation order: %s, %s", c.Children[0].Name, c.Children[1].Name)
		}
	}

	byDev := col.Snapshot(Filter{Device: 2})
	if len(byDev) != 1 || len(byDev[0].Children) != 1 || byDev[0].Children[0].Device != 2 {
		t.Fatalf("device filter kept the wrong sessions: %+v", byDev)
	}
	if len(byDev[0].Children[0].Children) != 2 {
		t.Fatal("device filter pruned the selected session's subtree")
	}

	byVerdict := col.Snapshot(Filter{Verdict: "compromised"})
	if len(byVerdict) != 1 || len(byVerdict[0].Children) != 1 || byVerdict[0].Children[0].Device != 2 {
		t.Fatalf("verdict filter kept the wrong sessions: %+v", byVerdict)
	}

	if got := col.Snapshot(Filter{Trace: NewTraceID(8)}); len(got) != 0 {
		t.Fatalf("foreign-trace filter returned %d roots, want 0", len(got))
	}
	if got := col.Snapshot(Filter{MinDuration: time.Hour}); len(got) != 0 {
		t.Fatalf("min-duration filter returned %d roots, want 0", len(got))
	}

	if s := SessionSpan(roots, 3); s == nil || s.Device != 3 {
		t.Fatalf("SessionSpan(3) = %+v", s)
	}
	if s := SessionSpan(roots, 9); s != nil {
		t.Fatalf("SessionSpan(9) found a phantom session: %+v", s)
	}
}

// TestCollectorRingEviction bounds the finished-span retention.
func TestCollectorRingEviction(t *testing.T) {
	col := NewCollector(4)
	tr := NewTraceID(1)
	root := col.StartTrace(tr, "sweep")
	for dev := uint64(1); dev <= 6; dev++ {
		sp := root.DeviceChild("session", dev)
		sp.End()
	}
	if got := col.Dropped(); got != 2 {
		t.Fatalf("Dropped() = %d, want 2", got)
	}
	// 4 retained sessions + the still-open root.
	var count func([]SpanSnapshot) int
	count = func(ss []SpanSnapshot) int {
		n := len(ss)
		for i := range ss {
			n += count(ss[i].Children)
		}
		return n
	}
	if got := count(col.Snapshot(Filter{})); got != 5 {
		t.Fatalf("snapshot holds %d spans, want 5 (4 retained + open root)", got)
	}
}

// TestOpenSpansVisible checks a mid-sweep snapshot shows the open root
// above finished sessions.
func TestOpenSpansVisible(t *testing.T) {
	col := NewCollector(16)
	root := col.StartTrace(NewTraceID(2), "sweep")
	sp := root.DeviceChild("session", 1)
	sp.End()
	roots := col.Snapshot(Filter{})
	if len(roots) != 1 || !roots[0].Open {
		t.Fatalf("open root missing from snapshot: %+v", roots)
	}
	if len(roots[0].Children) != 1 || roots[0].Children[0].Open {
		t.Fatalf("finished session wrong: %+v", roots[0].Children)
	}
}

// TestLogSinkBridge checks trace.Log events land on the span with the
// protocol kind and the modelled duration.
func TestLogSinkBridge(t *testing.T) {
	col := NewCollector(16)
	sp := col.StartTrace(NewTraceID(3), "session")
	log := trace.NewLog(16)
	remove := log.AddSink(LogSink(sp))
	log.Add(trace.KindConfig, 5, 3*time.Microsecond, "frame 5")
	remove()
	log.Add(trace.KindConfig, 6, 3*time.Microsecond, "after removal")
	sp.End()
	roots := col.Snapshot(Filter{})
	if len(roots) != 1 || len(roots[0].Events) != 1 {
		t.Fatalf("bridged events = %+v, want exactly one", roots)
	}
	ev := roots[0].Events[0]
	if ev.Kind != string(trace.KindConfig) || ev.Frame != 5 || ev.VirtualNS != 3000 {
		t.Fatalf("bridged event mismatch: %+v", ev)
	}
}

// TestNilSpanZeroAlloc pins the disabled-tracing contract: every span
// method on a nil receiver (the state every instrumented call site is in
// when no collector is configured) allocates nothing.
func TestNilSpanZeroAlloc(t *testing.T) {
	var sp *Span
	var col *Collector
	now := time.Now()
	if avg := testing.AllocsPerRun(200, func() {
		sp.SetTag("k", "v")
		sp.Event("kind", 1, time.Microsecond, "note")
		sp.ChildSpanAt("phase", now, now)
		_ = sp.Child("child")
		_ = sp.DeviceChild("session", 1)
		sp.End()
		_ = sp.Trace()
		_ = sp.ID()
		_ = col.StartTrace(1, "sweep")
		_ = col.Snapshot(Filter{})
		_ = col.Dropped()
	}); avg != 0 {
		t.Fatalf("nil-span operations allocate %.1f objects, want 0", avg)
	}
}

// TestPerfettoCanonicalDeterminism builds the same tree twice (distinct
// wall clocks) and requires byte-identical canonical exports.
func TestPerfettoCanonicalDeterminism(t *testing.T) {
	build := func() []SpanSnapshot {
		col := NewCollector(64)
		root := col.StartTrace(NewTraceID(42), "sweep")
		for dev := uint64(1); dev <= 2; dev++ {
			sp := root.DeviceChild(fmt.Sprintf("session device-%d", dev), dev)
			sp.SetTag("verdict", "healthy")
			now := time.Now()
			sp.ChildSpanAt("phase:config", now.Add(-time.Millisecond), now)
			sp.Event("hello", -1, 0, "want=0x3 granted=0x3")
			sp.End()
		}
		root.End()
		return col.Snapshot(Filter{})
	}
	var a, b bytes.Buffer
	if err := WritePerfetto(&a, build(), PerfettoOptions{Canonical: true}); err != nil {
		t.Fatal(err)
	}
	time.Sleep(2 * time.Millisecond) // shift the wall clock between builds
	if err := WritePerfetto(&b, build(), PerfettoOptions{Canonical: true}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatalf("canonical exports differ:\n--- a ---\n%s\n--- b ---\n%s", a.Bytes(), b.Bytes())
	}
	var f struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(a.Bytes(), &f); err != nil {
		t.Fatalf("canonical export is not valid JSON: %v", err)
	}
	if len(f.TraceEvents) == 0 {
		t.Fatal("canonical export is empty")
	}
}

// TestFlightRecorderBounding checks on-disk artifact eviction, the
// in-memory ring bound and the metrics delta.
func TestFlightRecorderBounding(t *testing.T) {
	dir := t.TempDir()
	reg := obs.NewRegistry()
	ctr := reg.Counter("flight_test_total", "test counter")
	rec, err := NewRecorder(dir, 2, reg)
	if err != nil {
		t.Fatal(err)
	}
	col := NewCollector(16)
	tr := NewTraceID(9)
	root := col.StartTrace(tr, "sweep")
	sp := root.DeviceChild("session", 4)
	sp.SetTag("verdict", "compromised")
	sp.End()
	root.End()

	for i := 0; i < 3; i++ {
		ctr.Inc()
		r := rec.RecordVerdict(col, tr, 4, "compromised", map[string]int{"i": i}, nil)
		if r.Seq != i+1 {
			t.Fatalf("record %d got seq %d", i, r.Seq)
		}
		if r.MetricsDelta["flight_test_total"] != 1 {
			t.Fatalf("record %d metrics delta = %v, want counter +1", i, r.MetricsDelta)
		}
		if len(r.Spans) == 0 || SessionSpan(r.Spans, 4) == nil {
			t.Fatalf("record %d carries no session span", i)
		}
	}
	got := rec.Records()
	if len(got) != 2 || got[0].Seq != 2 || got[1].Seq != 3 {
		t.Fatalf("retained records = %+v, want seqs 2,3", got)
	}
	files, err := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 2 {
		t.Fatalf("on-disk artifacts = %v, want 2 (oldest evicted)", files)
	}
	// Each artifact is a self-contained Record.
	blob, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var r Record
	if err := json.Unmarshal(blob, &r); err != nil {
		t.Fatalf("artifact is not a Record: %v", err)
	}
	if r.Kind != "verdict" || r.Device != 4 {
		t.Fatalf("artifact = %+v", r)
	}
}

// TestTraceEndpoints smoke-tests the HTTP handlers: filter parsing, the
// JSON shapes and the GET-only contract.
func TestTraceEndpoints(t *testing.T) {
	col := NewCollector(16)
	root := col.StartTrace(NewTraceID(11), "sweep")
	sp := root.DeviceChild("session device-2", 2)
	sp.SetTag("verdict", "healthy")
	sp.End()
	root.End()

	rr := httptest.NewRecorder()
	Handler(col).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace?device=2", nil))
	if rr.Code != 200 {
		t.Fatalf("/debug/trace status %d", rr.Code)
	}
	var out struct {
		Traces  []SpanSnapshot `json:"traces"`
		Dropped uint64         `json:"dropped"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Traces) != 1 || len(out.Traces[0].Children) != 1 {
		t.Fatalf("filtered trace = %+v", out.Traces)
	}

	rr = httptest.NewRecorder()
	Handler(col).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace?trace=zzz", nil))
	if rr.Code != 400 {
		t.Fatalf("bad trace filter status %d, want 400", rr.Code)
	}

	rr = httptest.NewRecorder()
	Handler(col).ServeHTTP(rr, httptest.NewRequest("POST", "/debug/trace", nil))
	if rr.Code != 405 {
		t.Fatalf("POST status %d, want 405", rr.Code)
	}

	rr = httptest.NewRecorder()
	PerfettoHandler(col).ServeHTTP(rr, httptest.NewRequest("GET", "/debug/trace/perfetto?canonical=1", nil))
	if rr.Code != 200 {
		t.Fatalf("/debug/trace/perfetto status %d", rr.Code)
	}
	var pf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &pf); err != nil {
		t.Fatal(err)
	}
	if len(pf.TraceEvents) == 0 {
		t.Fatal("perfetto export is empty")
	}

	rec, err := NewRecorder("", 4, obs.NewRegistry())
	if err != nil {
		t.Fatal(err)
	}
	rec.RecordVerdict(col, NewTraceID(11), 2, "compromised", nil, nil)
	rr = httptest.NewRecorder()
	FlightHandler(rec).ServeHTTP(rr, httptest.NewRequest("GET", "/fleet/flightrecords", nil))
	if rr.Code != 200 {
		t.Fatalf("/fleet/flightrecords status %d", rr.Code)
	}
	var fl struct {
		Records []Record `json:"records"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &fl); err != nil {
		t.Fatal(err)
	}
	if len(fl.Records) != 1 || fl.Records[0].Device != 2 {
		t.Fatalf("flight records = %+v", fl.Records)
	}
}
