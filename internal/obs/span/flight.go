package span

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"time"

	"sacha/internal/obs"
	"sacha/internal/trace"
)

// Record is one flight-recorder artifact: a self-contained post-mortem
// of a non-Healthy verdict or a campaign invariant violation. It
// carries the full causal span tree of the trace it fired in, the
// retained trace.Log protocol events of the failing session, the
// attestation Report (incl. Delta and Phases), and the metrics delta
// since the previous record — everything a post-mortem needs without
// the process that produced it.
type Record struct {
	Seq     int       `json:"seq"`
	Kind    string    `json:"kind"` // "verdict" or "invariant"
	At      time.Time `json:"at"`
	Trace   string    `json:"trace,omitempty"`
	Device  uint64    `json:"device,omitempty"`
	Verdict string    `json:"verdict,omitempty"`
	Detail  string    `json:"detail,omitempty"`
	// Report is the failing session's attestation report (typed any so
	// this package stays below internal/attestation in the import
	// graph; it marshals as the full Report JSON).
	Report any `json:"report,omitempty"`
	// Spans is the trace's full span tree at snapshot time — the sweep
	// root (still open mid-sweep), every session, phases and events.
	Spans []SpanSnapshot `json:"spans,omitempty"`
	// Events is the failing session's retained trace.Log stream.
	Events []trace.Event `json:"events,omitempty"`
	// MetricsDelta lists every registry sample that moved since the
	// recorder's previous record (or its creation, for the first one).
	MetricsDelta map[string]float64 `json:"metrics_delta,omitempty"`
	// File is the on-disk artifact path ("" when the recorder is
	// memory-only).
	File string `json:"file,omitempty"`
}

// Recorder snapshots flight records. In-memory retention is always on
// (bounded ring, served by the /fleet/flightrecords handler); on-disk
// artifacts are written when dir is non-empty, bounded to the same
// record count by evicting the oldest file.
type Recorder struct {
	dir string
	max int
	reg *obs.Registry

	mu       sync.Mutex
	seq      int
	baseline map[string]float64
	records  []Record
	files    []string
}

// DefaultMaxRecords bounds a recorder given a non-positive maximum.
const DefaultMaxRecords = 64

// NewRecorder returns a flight recorder keeping at most maxRecords
// records (<=0 = DefaultMaxRecords), writing artifacts into dir when it
// is non-empty (created if missing), diffing metrics against reg (nil =
// the obs Default registry).
func NewRecorder(dir string, maxRecords int, reg *obs.Registry) (*Recorder, error) {
	if maxRecords <= 0 {
		maxRecords = DefaultMaxRecords
	}
	if reg == nil {
		reg = obs.Default()
	}
	if dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("flight recorder: %w", err)
		}
	}
	return &Recorder{dir: dir, max: maxRecords, reg: reg, baseline: reg.Snapshot()}, nil
}

// RecordVerdict snapshots a non-Healthy session verdict: the trace's
// span tree out of col, the session's protocol events, the attestation
// report and the metrics movement. col may be nil (no span tree).
func (r *Recorder) RecordVerdict(col *Collector, tr TraceID, device uint64, verdict string, report any, events []trace.Event) Record {
	rec := Record{
		Kind: "verdict", At: time.Now(), Device: device, Verdict: verdict,
		Report: report, Events: events,
	}
	if tr != 0 {
		rec.Trace = tr.String()
	}
	rec.Spans = col.Snapshot(Filter{Trace: tr})
	return r.commit(rec)
}

// RecordInvariant snapshots a campaign invariant violation. device may
// be 0 for fleet-wide invariants.
func (r *Recorder) RecordInvariant(col *Collector, tr TraceID, device uint64, detail string) Record {
	rec := Record{Kind: "invariant", At: time.Now(), Device: device, Detail: detail}
	if tr != 0 {
		rec.Trace = tr.String()
	}
	rec.Spans = col.Snapshot(Filter{Trace: tr})
	return r.commit(rec)
}

// commit assigns the sequence number, diffs metrics, persists and
// retains the record.
func (r *Recorder) commit(rec Record) Record {
	if r == nil {
		return rec
	}
	now := r.reg.Snapshot()
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	rec.Seq = r.seq
	delta := make(map[string]float64)
	for k, v := range now {
		if v != r.baseline[k] {
			delta[k] = v - r.baseline[k]
		}
	}
	if len(delta) > 0 {
		rec.MetricsDelta = delta
	}
	r.baseline = now
	if r.dir != "" {
		name := fmt.Sprintf("flight-%06d-%s", rec.Seq, rec.Kind)
		if rec.Device != 0 {
			name += fmt.Sprintf("-device%d", rec.Device)
		}
		path := filepath.Join(r.dir, name+".json")
		if blob, err := json.MarshalIndent(rec, "", "  "); err == nil {
			if err := os.WriteFile(path, blob, 0o644); err == nil {
				rec.File = path
				r.files = append(r.files, path)
				for len(r.files) > r.max {
					os.Remove(r.files[0])
					r.files = r.files[1:]
				}
			} else {
				obs.Logger().Warn("flight record write failed", "path", path, "err", err)
			}
		}
	}
	r.records = append(r.records, rec)
	if len(r.records) > r.max {
		r.records = r.records[len(r.records)-r.max:]
	}
	obs.Logger().Info("flight record", "seq", rec.Seq, "kind", rec.Kind,
		"device", rec.Device, "verdict", rec.Verdict, "file", rec.File)
	return rec
}

// Records returns the retained records, oldest first.
func (r *Recorder) Records() []Record {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Record, len(r.records))
	copy(out, r.records)
	return out
}

// Dir returns the artifact directory ("" when memory-only).
func (r *Recorder) Dir() string {
	if r == nil {
		return ""
	}
	return r.dir
}
