package span

import (
	"encoding/json"
	"net/http"
	"strconv"
	"time"

	"sacha/internal/obs"
)

// parseFilter reads the shared query parameters of the trace
// endpoints: ?trace=<hex id>, ?device=<id>, ?verdict=<name>,
// ?min_dur=<Go duration> (slow-session outliers).
func parseFilter(r *http.Request) (Filter, error) {
	var f Filter
	q := r.URL.Query()
	if s := q.Get("trace"); s != "" {
		v, err := strconv.ParseUint(s, 16, 64)
		if err != nil {
			return f, err
		}
		f.Trace = TraceID(v)
	}
	if s := q.Get("device"); s != "" {
		v, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return f, err
		}
		f.Device = v
	}
	f.Verdict = q.Get("verdict")
	if s := q.Get("min_dur"); s != "" {
		d, err := time.ParseDuration(s)
		if err != nil {
			return f, err
		}
		f.MinDuration = d
	}
	return f, nil
}

// Handler serves the filterable JSON trace snapshot: the retained
// traces as nested span trees.
func Handler(c *Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		f, err := parseFilter(r)
		if err != nil {
			http.Error(w, "bad filter: "+err.Error(), http.StatusBadRequest)
			return
		}
		roots := c.Snapshot(f)
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{
			"traces":  roots,
			"dropped": c.Dropped(),
		})
	})
}

// PerfettoHandler serves the snapshot as Chrome trace_event JSON —
// `curl .../debug/trace/perfetto > trace.json`, then load the file in
// ui.perfetto.dev or chrome://tracing. It accepts the same filters as
// Handler plus ?canonical=1 for the deterministic time layout.
func PerfettoHandler(c *Collector) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		f, err := parseFilter(r)
		if err != nil {
			http.Error(w, "bad filter: "+err.Error(), http.StatusBadRequest)
			return
		}
		opts := PerfettoOptions{Canonical: r.URL.Query().Get("canonical") != ""}
		w.Header().Set("Content-Type", "application/json")
		WritePerfetto(w, c.Snapshot(f), opts)
	})
}

// Routes returns the two trace export endpoints, ready to mount via
// obs.Serve's extra routes (the hook sacha-verifier and sacha-fleetd
// already use for their own endpoints).
func Routes(c *Collector) []obs.Route {
	return []obs.Route{
		{Pattern: "/debug/trace", Handler: Handler(c)},
		{Pattern: "/debug/trace/perfetto", Handler: PerfettoHandler(c)},
	}
}

// FlightHandler serves a recorder's retained records as JSON, newest
// first; ?device=<id> filters. fleetd mounts it as /fleet/flightrecords.
func FlightHandler(rec *Recorder) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodGet {
			http.Error(w, "GET only", http.StatusMethodNotAllowed)
			return
		}
		var device uint64
		if s := r.URL.Query().Get("device"); s != "" {
			v, err := strconv.ParseUint(s, 10, 64)
			if err != nil {
				http.Error(w, "bad device: "+err.Error(), http.StatusBadRequest)
				return
			}
			device = v
		}
		all := rec.Records()
		out := make([]Record, 0, len(all))
		for i := len(all) - 1; i >= 0; i-- {
			if device != 0 && all[i].Device != device {
				continue
			}
			out = append(out, all[i])
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(map[string]any{"records": out, "dir": rec.Dir()})
	})
}
