package span

import (
	"encoding/json"
	"io"
	"strconv"
)

// perfettoEvent is one Chrome trace_event entry — the subset Perfetto
// and chrome://tracing load: complete ("X") duration events for spans,
// instant ("i") events for span events, metadata ("M") for process and
// thread names. Timestamps are microseconds.
type perfettoEvent struct {
	Name  string            `json:"name"`
	Ph    string            `json:"ph"`
	TS    int64             `json:"ts"`
	Dur   int64             `json:"dur,omitempty"`
	PID   int64             `json:"pid"`
	TID   int64             `json:"tid"`
	Scope string            `json:"s,omitempty"`
	Args  map[string]string `json:"args,omitempty"`
}

type perfettoFile struct {
	TraceEvents     []perfettoEvent `json:"traceEvents"`
	DisplayTimeUnit string          `json:"displayTimeUnit"`
}

// PerfettoOptions shape WritePerfetto.
type PerfettoOptions struct {
	// Canonical replaces wall-clock timestamps with a deterministic
	// layout computed from the tree structure alone (preorder slots of
	// 1000 µs per span, events spaced inside their span) — the mode the
	// byte-determinism golden test exports, since two runs of the same
	// fixed-NonceSeed sweep can never agree on wall time. The tree
	// still nests correctly in Perfetto; only the time axis is virtual.
	Canonical bool
}

// WritePerfetto renders snapshot trees (as returned by
// Collector.Snapshot) as Chrome trace_event JSON: one Perfetto
// "process" per trace, one "thread" per device (tid 0 carries the
// sweep root), span tags as args. Load the output via ui.perfetto.dev
// or chrome://tracing.
func WritePerfetto(w io.Writer, roots []SpanSnapshot, opts PerfettoOptions) error {
	f := perfettoFile{TraceEvents: []perfettoEvent{}, DisplayTimeUnit: "ms"}

	// pid must survive a float64 round-trip in JS viewers, so fold the
	// 64-bit trace ID to 31 bits; the full ID stays in args.
	pidOf := func(tr string) int64 {
		var h uint32 = 2166136261
		for i := 0; i < len(tr); i++ {
			h ^= uint32(tr[i])
			h *= 16777619
		}
		return int64(h & 0x7fffffff)
	}

	// epoch rebases wall timestamps per file so ts stays small.
	var epoch int64
	if !opts.Canonical {
		first := true
		var scan func(ns []SpanSnapshot)
		scan = func(ns []SpanSnapshot) {
			for i := range ns {
				if first || ns[i].StartUnixNS < epoch {
					epoch, first = ns[i].StartUnixNS, false
				}
				scan(ns[i].Children)
			}
		}
		scan(roots)
	}

	// subtreeSize counts a span plus its descendants — the canonical
	// slot width (in 1000 µs units) that keeps children nested.
	var subtreeSize func(n *SpanSnapshot) int64
	subtreeSize = func(n *SpanSnapshot) int64 {
		var sz int64 = 1
		for i := range n.Children {
			sz += subtreeSize(&n.Children[i])
		}
		return sz
	}

	seenPID := map[int64]bool{}
	seenTID := map[[2]int64]bool{}
	var emit func(n *SpanSnapshot, t0 int64)
	emit = func(n *SpanSnapshot, t0 int64) {
		pid := pidOf(n.Trace)
		tid := int64(n.Device)
		if !seenPID[pid] {
			seenPID[pid] = true
			f.TraceEvents = append(f.TraceEvents, perfettoEvent{
				Name: "process_name", Ph: "M", PID: pid,
				Args: map[string]string{"name": "trace " + n.Trace},
			})
		}
		tk := [2]int64{pid, tid}
		if !seenTID[tk] {
			seenTID[tk] = true
			name := "sweep"
			if tid != 0 {
				name = "device " + itoa(tid)
			}
			f.TraceEvents = append(f.TraceEvents, perfettoEvent{
				Name: "thread_name", Ph: "M", PID: pid, TID: tid,
				Args: map[string]string{"name": name},
			})
		}
		ts, dur := (n.StartUnixNS-epoch)/1000, n.DurationNS/1000
		if opts.Canonical {
			ts, dur = t0, subtreeSize(n)*1000
		}
		if dur < 1 {
			dur = 1
		}
		args := map[string]string{"trace": n.Trace, "span": n.ID}
		for k, v := range n.Tags {
			args[k] = v
		}
		if n.Open {
			args["open"] = "true"
		}
		f.TraceEvents = append(f.TraceEvents, perfettoEvent{
			Name: n.Name, Ph: "X", TS: ts, Dur: dur, PID: pid, TID: tid, Args: args,
		})
		for i, e := range n.Events {
			ets := ts + e.OffsetNS/1000
			if opts.Canonical {
				// Spread events deterministically inside the span's slot.
				ets = ts + 1 + int64(i)*(dur-2)/int64(max(1, len(n.Events)))
			}
			eargs := map[string]string{"span": n.ID}
			if e.Frame >= 0 {
				eargs["frame"] = itoa(int64(e.Frame))
			}
			if e.Note != "" {
				eargs["note"] = e.Note
			}
			if e.VirtualNS > 0 {
				eargs["virtual_ns"] = itoa(e.VirtualNS)
			}
			f.TraceEvents = append(f.TraceEvents, perfettoEvent{
				Name: e.Kind, Ph: "i", TS: ets, PID: pid, TID: tid, Scope: "t", Args: eargs,
			})
		}
		// Children occupy consecutive canonical slots after the parent's
		// own leading slot.
		ct0 := t0 + 1000
		for i := range n.Children {
			emit(&n.Children[i], ct0)
			ct0 += subtreeSize(&n.Children[i]) * 1000
		}
	}
	var t0 int64
	for i := range roots {
		emit(&roots[i], t0)
		t0 += subtreeSize(&roots[i]) * 1000
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

func itoa(v int64) string { return strconv.FormatInt(v, 10) }
