// Package span is the causal tracing layer of the fleet stack: a
// dependency-free distributed-tracing shape (trace → span tree with
// tags and events) sized for one process. Where internal/obs aggregates
// (counters, histograms), span keeps causality: one fleetd sweep is a
// trace whose root span fans out into per-device session spans (with
// the dispatcher's shard route and work-stealing attribution as tags),
// each session into the four protocol phase spans of attestation.Run,
// with Hello negotiation, delta scan probes, retries and the bridged
// trace.Log protocol events hanging off as span events.
//
// Identifiers are deterministic: the trace ID derives from the sweep's
// nonce base (pinned by fleet.SweepConfig.NonceSeed) and session span
// IDs from (trace, device) via the same splitmix64 mix the per-device
// nonce derivation uses — so a replayed campaign or soak run produces
// bit-identical trace trees, and the Perfetto export is golden-testable.
//
// Every mutating method is a no-op on a nil *Span or nil *Collector, so
// instrumented hot paths pay a nil check and nothing else when tracing
// is off — the zero-allocation contract TestNilSpanZeroAlloc pins.
package span

import (
	"fmt"
	"sync"
	"time"

	"sacha/internal/trace"
)

// TraceID identifies one sweep-level trace.
type TraceID uint64

// SpanID identifies one span within a trace.
type SpanID uint64

// String renders the ID as fixed-width hex — the spelling the JSON
// exports and the ?trace= filter use.
func (t TraceID) String() string { return fmt.Sprintf("%016x", uint64(t)) }

// String renders the ID as fixed-width hex.
func (s SpanID) String() string { return fmt.Sprintf("%016x", uint64(s)) }

// saltTrace domain-separates the trace-ID derivation from the nonce
// derivation sharing the same base: NewTraceID(base) must never equal
// any DeviceNonce(base, id).
const saltTrace = 0xA5EB5A17C0FFEE01

// mix is the splitmix64 finalizer — the same mix fleet.DeviceNonce
// uses, duplicated here because the dependency points the other way
// (fleet imports span).
func mix(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// NewTraceID derives a sweep's trace ID from its nonce base. Under a
// pinned fleet.SweepConfig.NonceSeed the base — and therefore the whole
// trace tree — is reproducible across runs.
func NewTraceID(nonceBase uint64) TraceID {
	return TraceID(mix(nonceBase ^ saltTrace))
}

// SessionSpanID derives the span ID of device's session under a trace —
// a pure function of (trace, device), independent of which shard,
// worker or wall-clock moment runs the session.
func SessionSpanID(t TraceID, device uint64) SpanID {
	return SpanID(mix(uint64(t) + device*0x9E3779B97F4A7C15))
}

// childSpanID derives the n-th child of a parent span.
func childSpanID(parent SpanID, n int) SpanID {
	return SpanID(mix(uint64(parent) + uint64(n)*0x9E3779B97F4A7C15 + 1))
}

// Event is one point-in-time annotation on a span: a protocol step
// bridged from trace.Log (kind = the Table 3 action), a Hello
// negotiation, a delta scan outcome or a transport summary.
type Event struct {
	// Kind classifies the event; bridged protocol events reuse the
	// trace.Kind spelling.
	Kind string
	// Frame is the frame index the event concerns, -1 when not
	// applicable.
	Frame int
	// VirtualNS is the event's modelled (virtual) duration — the
	// deterministic half of its timing.
	VirtualNS int64
	// OffsetNS is the wall-clock offset from the span's start when the
	// event was recorded (excluded from canonical exports).
	OffsetNS int64
	// Note is free-form detail.
	Note string
}

// Tag is one key/value annotation.
type Tag struct{ Key, Value string }

// Span is one node of a trace tree. A span is mutated by the goroutine
// that owns the unit of work it describes plus any Snapshot reader, so
// its fields are guarded by a small mutex; uncontended that costs tens
// of nanoseconds per operation, far inside the ≤3% tracing budget of
// the windowed readback benchmark.
//
// All methods are no-ops on a nil receiver.
type Span struct {
	col    *Collector
	trace  TraceID
	id     SpanID
	parent SpanID
	name   string
	device uint64
	hasDev bool
	seq    int // creation index among the parent's children
	start  time.Time

	mu       sync.Mutex
	childSeq int
	tags     []Tag
	events   []Event
	durNS    int64
	done     bool
}

// eventCap bounds the events one span retains; beyond it only the
// dropped counter grows. A TinyLX session bridges ~3 events per frame,
// so the default keeps whole small sessions and the head of large ones.
const eventCap = 4096

// Trace returns the span's trace ID (0 on nil).
func (s *Span) Trace() TraceID {
	if s == nil {
		return 0
	}
	return s.trace
}

// ID returns the span's ID (0 on nil).
func (s *Span) ID() SpanID {
	if s == nil {
		return 0
	}
	return s.id
}

// SetTag sets a key/value annotation, overwriting an existing key.
func (s *Span) SetTag(key, value string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	for i := range s.tags {
		if s.tags[i].Key == key {
			s.tags[i].Value = value
			return
		}
	}
	s.tags = append(s.tags, Tag{key, value})
}

// Event records a point-in-time annotation.
func (s *Span) Event(kind string, frame int, virtual time.Duration, note string) {
	if s == nil {
		return
	}
	off := time.Since(s.start).Nanoseconds()
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.events) >= eventCap {
		return
	}
	s.events = append(s.events, Event{
		Kind: kind, Frame: frame, VirtualNS: virtual.Nanoseconds(),
		OffsetNS: off, Note: note,
	})
}

// Child starts a child span. Its ID derives from the parent's ID and
// the child's creation index, so a single-goroutine owner (a session
// creating its phase spans in protocol order) produces deterministic
// child IDs. The child inherits the parent's device attribution.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	seq := s.childSeq
	s.childSeq++
	s.mu.Unlock()
	c := &Span{
		col: s.col, trace: s.trace, id: childSpanID(s.id, seq), parent: s.id,
		name: name, device: s.device, hasDev: s.hasDev, seq: seq, start: time.Now(),
	}
	s.col.addActive(c)
	return c
}

// DeviceChild starts a child span attributed to one device, with the
// deterministic (trace, device)-derived session span ID — the shape the
// dispatcher uses for per-device session spans.
func (s *Span) DeviceChild(name string, device uint64) *Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	seq := s.childSeq
	s.childSeq++
	s.mu.Unlock()
	c := &Span{
		col: s.col, trace: s.trace, id: SessionSpanID(s.trace, device), parent: s.id,
		name: name, device: device, hasDev: true, seq: seq, start: time.Now(),
	}
	s.col.addActive(c)
	return c
}

// ChildSpanAt records an already-completed child covering [start, end)
// — how attestation.Run turns its contiguous phase checkpoints into
// phase spans after the fact, without timing anything twice.
func (s *Span) ChildSpanAt(name string, start, end time.Time) {
	if s == nil {
		return
	}
	s.mu.Lock()
	seq := s.childSeq
	s.childSeq++
	s.mu.Unlock()
	c := &Span{
		col: s.col, trace: s.trace, id: childSpanID(s.id, seq), parent: s.id,
		name: name, device: s.device, hasDev: s.hasDev, seq: seq, start: start,
		durNS: end.Sub(start).Nanoseconds(), done: true,
	}
	s.col.retire(c)
}

// End finishes the span and retires it into the collector's ring.
// Ending twice is a no-op.
func (s *Span) End() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.done {
		s.mu.Unlock()
		return
	}
	s.done = true
	s.durNS = time.Since(s.start).Nanoseconds()
	s.mu.Unlock()
	s.col.retireActive(s)
}

// logBridge forwards trace.Log protocol events into a span — the
// trace.Log.Sink half of the causal layer. The sink interface is
// called outside the Log's lock, and Span.Event takes only the span's
// own mutex, so bridging composes with the metrics TraceSink.
type logBridge struct{ sp *Span }

// Observe implements trace.Sink.
func (b logBridge) Observe(kind trace.Kind, frame int, d time.Duration, note string) {
	b.sp.Event(string(kind), frame, d, note)
}

// LogSink returns a trace.Sink forwarding every protocol event into sp.
// Install it with trace.Log.AddSink at session start and remove it on
// return.
func LogSink(sp *Span) trace.Sink { return logBridge{sp} }

// Collector retains finished spans in a bounded ring plus the set of
// still-open spans, so a snapshot mid-sweep shows the open sweep root
// above its finished sessions. The zero concurrency cost is one short
// mutex hold per span start/retire — spans, not events, pay the lock.
type Collector struct {
	mu      sync.Mutex
	cap     int
	ring    []*Span // finished spans, oldest first once full
	next    int
	full    bool
	active  map[SpanID]*Span
	dropped uint64
}

// DefaultCap is the finished-span retention bound used when
// NewCollector is given a non-positive capacity.
const DefaultCap = 8192

// NewCollector returns a collector retaining at most capSpans finished
// spans (<=0 = DefaultCap).
func NewCollector(capSpans int) *Collector {
	if capSpans <= 0 {
		capSpans = DefaultCap
	}
	return &Collector{
		cap:    capSpans,
		ring:   make([]*Span, capSpans),
		active: make(map[SpanID]*Span),
	}
}

// StartTrace opens a trace's root span. Returns nil on a nil collector,
// so callers thread one pointer and never branch again.
func (c *Collector) StartTrace(t TraceID, name string) *Span {
	if c == nil {
		return nil
	}
	s := &Span{col: c, trace: t, id: childSpanID(SpanID(t), 0), name: name, start: time.Now()}
	c.addActive(s)
	return s
}

// Dropped returns how many finished spans the ring has evicted.
func (c *Collector) Dropped() uint64 {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dropped
}

func (c *Collector) addActive(s *Span) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.active[s.id] = s
	c.mu.Unlock()
}

func (c *Collector) retireActive(s *Span) {
	if c == nil {
		return
	}
	c.mu.Lock()
	delete(c.active, s.id)
	c.push(s)
	c.mu.Unlock()
}

// retire records a span that was never active (ChildSpanAt).
func (c *Collector) retire(s *Span) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.push(s)
	c.mu.Unlock()
}

// push appends into the ring; the caller holds c.mu.
func (c *Collector) push(s *Span) {
	if c.full {
		c.dropped++
	}
	c.ring[c.next] = s
	c.next++
	if c.next == c.cap {
		c.next = 0
		c.full = true
	}
}

// all returns every retained span (finished ring oldest-first, then
// open spans) — the raw material of Snapshot.
func (c *Collector) all() []*Span {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]*Span, 0, c.cap+len(c.active))
	if c.full {
		out = append(out, c.ring[c.next:]...)
		out = append(out, c.ring[:c.next]...)
	} else {
		out = append(out, c.ring[:c.next]...)
	}
	for _, s := range c.active {
		out = append(out, s)
	}
	return out
}
