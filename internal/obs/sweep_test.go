package obs

import (
	"sync"
	"testing"
	"time"
)

func TestSweepTrackerLifecycle(t *testing.T) {
	tr := NewSweepTracker()
	tr.Begin([]SweepTarget{
		{Name: "device-1", Class: "SmallLX"},
		{Name: "device-2", Class: "SmallLX"},
		{Name: "device-3", Class: "BigLX"},
	})

	snap := tr.Snapshot()
	if snap.Total != 3 || snap.InFlight != 0 || snap.Completed != 0 {
		t.Fatalf("fresh sweep: total=%d inflight=%d completed=%d, want 3/0/0",
			snap.Total, snap.InFlight, snap.Completed)
	}

	tr.Start("device-1")
	tr.Start("device-2")
	snap = tr.Snapshot()
	if snap.InFlight != 2 {
		t.Errorf("in_flight = %d, want 2", snap.InFlight)
	}

	tr.Done("device-1", SweepOutcome{Verdict: VerdictHealthy, Retries: 2, TransportFaults: 1, Elapsed: time.Millisecond})
	tr.Done("device-2", SweepOutcome{Verdict: VerdictCompromised})
	tr.Start("device-3")
	tr.Done("device-3", SweepOutcome{Err: "boom"}) // empty verdict → failed

	snap = tr.Snapshot()
	if snap.Completed != 3 || snap.InFlight != 0 {
		t.Errorf("completed=%d inflight=%d, want 3/0", snap.Completed, snap.InFlight)
	}
	if snap.Verdicts[VerdictHealthy] != 1 || snap.Verdicts[VerdictCompromised] != 1 || snap.Verdicts[VerdictFailed] != 1 {
		t.Errorf("verdict tallies = %v", snap.Verdicts)
	}
	if snap.Retries != 2 || snap.TransportFaults != 1 {
		t.Errorf("rollup retries=%d faults=%d, want 2/1", snap.Retries, snap.TransportFaults)
	}
	if got := snap.PerClass["SmallLX"]; got[VerdictHealthy] != 1 || got[VerdictCompromised] != 1 {
		t.Errorf("SmallLX per-class tallies = %v", got)
	}
	if got := snap.PerClass["BigLX"]; got[VerdictFailed] != 1 {
		t.Errorf("BigLX per-class tallies = %v", got)
	}
	if len(snap.Targets) != 3 || snap.Targets[0].Target != "device-1" || snap.Targets[0].Verdict != VerdictHealthy {
		t.Errorf("target rows = %+v", snap.Targets)
	}

	// Begin resets for the next sweep.
	tr.Begin([]SweepTarget{{Name: "device-9"}})
	snap = tr.Snapshot()
	if snap.Total != 1 || snap.Completed != 0 {
		t.Errorf("after reset: total=%d completed=%d, want 1/0", snap.Total, snap.Completed)
	}
}

// TestSweepTrackerConcurrent drives Start/Done/Snapshot from many
// goroutines — the tracker is shared between sweep workers and the HTTP
// handler, so this is its -race proof.
func TestSweepTrackerConcurrent(t *testing.T) {
	tr := NewSweepTracker()
	const n = 64
	targets := make([]SweepTarget, n)
	names := make([]string, n)
	for i := range targets {
		names[i] = string(rune('a'+i%26)) + string(rune('0'+i/26))
		targets[i] = SweepTarget{Name: names[i], Class: "c"}
	}
	tr.Begin(targets)

	var wg sync.WaitGroup
	for _, name := range names {
		name := name
		wg.Add(1)
		go func() {
			defer wg.Done()
			tr.Start(name)
			tr.Done(name, SweepOutcome{Verdict: VerdictHealthy})
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 100; i++ {
			tr.Snapshot()
		}
	}()
	wg.Wait()

	if snap := tr.Snapshot(); snap.Completed != n || snap.Verdicts[VerdictHealthy] != n {
		t.Errorf("completed=%d healthy=%d, want %d/%d", snap.Completed, snap.Verdicts[VerdictHealthy], n, n)
	}
}
