package timing

import (
	"testing"
	"time"

	"sacha/internal/device"
)

// TestTable3MatchesPaper pins the model to the published per-action
// timings (paper Table 3).
func TestTable3MatchesPaper(t *testing.T) {
	m := NewModel(device.XC6VLX240T())
	want := map[Action]time.Duration{
		A1:  8856 * time.Nanosecond,
		A2:  1834 * time.Nanosecond,
		A3:  13616 * time.Nanosecond,
		A4:  24044 * time.Nanosecond,
		A5:  120 * time.Nanosecond,
		A6:  128 * time.Nanosecond,
		A7:  136 * time.Nanosecond,
		A8:  2928 * time.Nanosecond,
		A9:  344 * time.Nanosecond,
		A10: 472 * time.Nanosecond,
	}
	for _, row := range m.Table3() {
		if got := row.Time; got != want[row.Action] {
			t.Errorf("%v = %v, want %v", row.Action, got, want[row.Action])
		}
	}
}

// TestTable4Counts pins the action counts (paper Table 4).
func TestTable4Counts(t *testing.T) {
	m := NewModel(device.XC6VLX240T())
	wantCounts := map[Action]int{
		A1: 26400, A2: 26400,
		A3: 28488, A4: 28488, A6: 28488, A8: 28488,
		A5: 1, A7: 1, A9: 1, A10: 1,
	}
	for a, want := range wantCounts {
		if got := m.Count(a); got != want {
			t.Errorf("Count(%v) = %d, want %d", a, got, want)
		}
	}
}

// TestTable4Totals checks the derived totals against the paper: the
// theoretical duration is 1.443 s and the measured duration 28.5 s.
func TestTable4Totals(t *testing.T) {
	m := NewModel(device.XC6VLX240T())
	tab := m.Table4()

	if tab.Theoretical < 1400*time.Millisecond || tab.Theoretical > 1490*time.Millisecond {
		t.Errorf("theoretical = %v, paper reports 1.443 s", tab.Theoretical)
	}
	if tab.Measured < 28*time.Second || tab.Measured > 29*time.Second {
		t.Errorf("measured = %v, paper reports 28.5 s", tab.Measured)
	}
	if tab.Commands != 26400+28488+1 {
		t.Errorf("commands = %d", tab.Commands)
	}

	// Spot-check the per-row totals the paper prints.
	rowTotals := map[Action]struct{ lo, hi time.Duration }{
		A1: {230 * time.Millisecond, 238 * time.Millisecond},   // 0.234 s
		A2: {46 * time.Millisecond, 52 * time.Millisecond},     // 0.050 s
		A3: {384 * time.Millisecond, 392 * time.Millisecond},   // 0.388 s
		A4: {680 * time.Millisecond, 690 * time.Millisecond},   // 0.685 s
		A6: {3500 * time.Microsecond, 3800 * time.Microsecond}, // 3.646 ms
		A8: {81 * time.Millisecond, 86 * time.Millisecond},     // 0.083 s
	}
	for _, row := range tab.Rows {
		if bounds, ok := rowTotals[row.Action]; ok {
			if row.Total < bounds.lo || row.Total > bounds.hi {
				t.Errorf("%v total = %v, outside paper range [%v, %v]",
					row.Action, row.Total, bounds.lo, bounds.hi)
			}
		}
	}
}

// TestJTAGReference checks the §6.1 reference: configuring the full
// device over JTAG takes around 28 s.
func TestJTAGReference(t *testing.T) {
	m := NewModel(device.XC6VLX240T())
	got := m.JTAGConfigTime()
	if got < 27*time.Second || got > 29*time.Second {
		t.Errorf("JTAG config time = %v, paper says around 28 s", got)
	}
}

// TestDeviceScaling: protocol time must grow with device size.
func TestDeviceScaling(t *testing.T) {
	small := NewModel(device.SmallLX()).Table4()
	mid := NewModel(device.XC6VLX240T()).Table4()
	big := NewModel(device.BigLX()).Table4()
	if !(small.Theoretical < mid.Theoretical && mid.Theoretical < big.Theoretical) {
		t.Errorf("theoretical not monotone: %v %v %v",
			small.Theoretical, mid.Theoretical, big.Theoretical)
	}
	if !(small.Measured < mid.Measured && mid.Measured < big.Measured) {
		t.Errorf("measured not monotone")
	}
}

// TestNetworkDominates: the paper's headline observation is that the
// measured duration is dominated by network delay, not by the protocol
// work itself.
func TestNetworkDominates(t *testing.T) {
	tab := NewModel(device.XC6VLX240T()).Table4()
	network := tab.Measured - tab.Theoretical
	if network < 10*tab.Theoretical {
		t.Errorf("network share %v not dominant over theoretical %v", network, tab.Theoretical)
	}
}

func TestDescriptionsAndPanics(t *testing.T) {
	for _, a := range Actions() {
		if a.Description() == "" {
			t.Errorf("action %d lacks a description", a)
		}
	}
	if Action(99).Description() == "" {
		t.Error("unknown action should stringify")
	}
	m := NewModel(device.SmallLX())
	mustPanic := func(f func()) {
		defer func() { _ = recover() }()
		f()
		t.Error("expected panic")
	}
	mustPanic(func() { m.ActionTime(Action(99)) })
	mustPanic(func() { m.Count(Action(99)) })
}
