// Package timing reproduces the SACHa performance evaluation: the
// per-action costs of Table 3, the protocol totals of Table 4, and the
// JTAG configuration reference of §6.1.
//
// Each action's cost is the sum of derived terms (Gigabit wire time from
// the actual message sizes, ICAP word counts from the actual packet
// streams, AES block counts from the MAC model) and a named calibration
// constant absorbing the residual software/FSM overhead the paper
// measured. The calibration constants are chosen once so that the model
// lands exactly on the published Table 3; Table 4 is then *derived* from
// the action counts, and the measured 28.5 s emerges from the same model
// plus the lab's per-command latency.
package timing

import (
	"fmt"
	"time"

	"sacha/internal/aescore"
	"sacha/internal/device"
	"sacha/internal/ethsim"
	"sacha/internal/fabric"
	"sacha/internal/icap"
	"sacha/internal/protocol"
)

// Action identifies one low-level protocol action (paper Table 3).
type Action int

// The ten actions of the SACHa protocol.
const (
	A1  Action = iota + 1 // Vrf sends ICAP_config
	A2                    // Prv performs ICAP_config
	A3                    // Vrf sends ICAP_readback
	A4                    // Prv performs ICAP_readback
	A5                    // Prv performs MAC init
	A6                    // Prv performs MAC update
	A7                    // Prv performs MAC finalize
	A8                    // Prv performs frame sendback
	A9                    // Vrf sends MAC_checksum
	A10                   // Prv performs MAC sendback
)

// Description returns the paper's wording for the action.
func (a Action) Description() string {
	switch a {
	case A1:
		return "Vrf sends ICAP_config"
	case A2:
		return "Prv performs ICAP_config"
	case A3:
		return "Vrf sends ICAP_readback"
	case A4:
		return "Prv performs ICAP_readback"
	case A5:
		return "Prv performs MAC init"
	case A6:
		return "Prv performs MAC update"
	case A7:
		return "Prv performs MAC finalize"
	case A8:
		return "Prv performs frame sendback"
	case A9:
		return "Vrf sends MAC checksum"
	case A10:
		return "Prv performs MAC sendback"
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// Clock periods of the three domains (Fig. 10).
const (
	icapNsPerCycle = 10 // 100 MHz
	txNsPerCycle   = 8  // 125 MHz
)

// Calibration constants: residual per-action overheads measured by the
// paper but not attributable to wire or word-transfer time. Values are in
// nanoseconds and documented with their derivation.
const (
	// calVrfConfig is the verifier-side software cost of assembling and
	// dispatching one ICAP_config packet: A1 (8,856 ns) minus the wire
	// time of a 329-byte command (367 bytes on the wire = 2,936 ns).
	calVrfConfig = 8856 - 2936
	// calPrvConfig is the static partition's FSM/clock-domain-crossing
	// overhead per frame write: A2 (1,834 ns) minus the ICAP stream time
	// (173 words — sync, RCRC, WCFG, FAR, FDRI header, frame, pad frame,
	// desync — × 10 ns = 1,730 ns).
	calPrvConfig = 1834 - 1730
	// calVrfReadback is the verifier-side cost of issuing a readback
	// command and filing the previous frame: A3 (13,616 ns) minus the
	// wire time of a 5-byte command (43 bytes = 344 ns).
	calVrfReadback = 13616 - 344
	// calPrvReadback is the capture/pipeline sequencing cost of a
	// single-frame readback: A4 (24,044 ns) minus the ICAP stream time
	// (7 command words + 162 FDRO words = 169 words × 10 ns = 1,690 ns).
	calPrvReadback = 24044 - 1690
	// macUpdateTailCycles is the non-overlapped tail of the pipelined
	// per-frame CMAC update in the TX domain: the AES core absorbs FDRO
	// words while they stream, leaving ~1.5 blocks of work after the
	// last word; 16 cycles × 8 ns = the paper's A6 (128 ns).
	macUpdateTailCycles = 16
	// macFinalizeCycles is the CMAC finalisation (last block + subkey
	// XOR): 17 cycles × 8 ns = A7 (136 ns).
	macFinalizeCycles = 17
)

// PrvBatchConfigTime is the device-side cost of a k-frame batched
// configuration write: one ICAP command preamble, k data frames plus the
// pad frame through FDRI, and the FSM handoff.
func PrvBatchConfigTime(k int) time.Duration {
	return time.Duration(((k+1)*device.FrameWords+11)*icapNsPerCycle+calPrvConfig) * time.Nanosecond
}

// VrfConfigOverhead is the verifier-side software cost per ICAP_config
// beyond wire time (the A1 calibration residual).
func VrfConfigOverhead() time.Duration { return calVrfConfig * time.Nanosecond }

// VrfReadbackOverhead is the verifier-side software cost per
// ICAP_readback beyond wire time (the A3 calibration residual).
func VrfReadbackOverhead() time.Duration { return calVrfReadback * time.Nanosecond }

// LabCommandLatency is the per-command software/switch latency of the
// paper's lab network: (28.5 s measured − 1.443 s theoretical) spread over
// the 54,889 verifier commands ≈ 493 µs each.
const LabCommandLatency = 493 * time.Microsecond

// JTAGBitRate is the configuration bit rate of the JTAG reference
// (§6.1): 9.23 MB of full bitstream in "around 28 s" → 2.64 Mbit/s.
const JTAGBitRate = 2_640_000

// Model computes protocol timing for one device geometry.
type Model struct {
	Geo *device.Geometry
	// LabLatency is the per-command network latency used for the
	// "measured" total; defaults to LabCommandLatency.
	LabLatency time.Duration

	dynFrames int
}

// NewModel returns a timing model with the paper's lab latency.
func NewModel(geo *device.Geometry) *Model {
	return &Model{
		Geo:        geo,
		LabLatency: LabCommandLatency,
		dynFrames:  len(fabric.DynRegion(geo).Frames()),
	}
}

// configStreamWords is the ICAP packet stream length for one frame write.
func configStreamWords(geo *device.Geometry) int {
	s, err := icap.ConfigFrameStream(geo, 0, make([]uint32, device.FrameWords))
	if err != nil {
		panic(err)
	}
	return len(s)
}

// readbackStreamWords is the command words plus FDRO words of a
// single-frame readback.
func readbackStreamWords(geo *device.Geometry) int {
	s, err := icap.ReadbackCmdStream(geo, 0)
	if err != nil {
		panic(err)
	}
	return len(s) + icap.ReadbackWords
}

// ActionTime returns the modelled duration of one action.
func (m *Model) ActionTime(a Action) time.Duration {
	ns := func(n int) time.Duration { return time.Duration(n) * time.Nanosecond }
	switch a {
	case A1:
		return ethsim.WireTime(protocol.SizeICAPConfig) + ns(calVrfConfig)
	case A2:
		return ns(configStreamWords(m.Geo)*icapNsPerCycle + calPrvConfig)
	case A3:
		return ethsim.WireTime(protocol.SizeICAPReadback) + ns(calVrfReadback)
	case A4:
		return ns(readbackStreamWords(m.Geo)*icapNsPerCycle + calPrvReadback)
	case A5:
		// AES subkey generation (one block) plus state init, in the ICAP
		// domain: 12 cycles × 10 ns = 120 ns.
		return ns((aescore.CyclesPerBlock + 1) * icapNsPerCycle)
	case A6:
		return ns(macUpdateTailCycles * txNsPerCycle)
	case A7:
		return ns(macFinalizeCycles * txNsPerCycle)
	case A8:
		return ethsim.WireTime(protocol.SizeFrameData)
	case A9:
		return ethsim.WireTime(protocol.SizeMACChecksum)
	case A10:
		return ethsim.WireTime(protocol.SizeMACValue)
	}
	panic(fmt.Sprintf("timing: unknown action %d", a))
}

// Count returns how many times an action executes in one full attestation
// (paper Table 4): configuration actions once per DynMem frame, readback
// actions once per device frame, bookkeeping actions once.
func (m *Model) Count(a Action) int {
	switch a {
	case A1, A2:
		return m.dynFrames
	case A3, A4, A6, A8:
		return m.Geo.NumFrames()
	case A5, A7, A9, A10:
		return 1
	}
	panic(fmt.Sprintf("timing: unknown action %d", a))
}

// Row is one Table 3/4 line.
type Row struct {
	Action Action
	Time   time.Duration
	Count  int
	Total  time.Duration
}

// Actions lists all ten actions in order.
func Actions() []Action {
	return []Action{A1, A2, A3, A4, A5, A6, A7, A8, A9, A10}
}

// Table3 returns the per-action timings.
func (m *Model) Table3() []Row {
	rows := make([]Row, 0, 10)
	for _, a := range Actions() {
		rows = append(rows, Row{Action: a, Time: m.ActionTime(a)})
	}
	return rows
}

// Table4 returns the per-action totals plus the theoretical and measured
// protocol durations.
type Table4 struct {
	Rows        []Row
	Theoretical time.Duration
	Commands    int // verifier-issued commands (A1 + A3 + A9 instances)
	Measured    time.Duration
}

// Table4 computes the full-protocol totals.
func (m *Model) Table4() Table4 {
	var t Table4
	for _, a := range Actions() {
		r := Row{Action: a, Time: m.ActionTime(a), Count: m.Count(a)}
		r.Total = r.Time * time.Duration(r.Count)
		t.Rows = append(t.Rows, r)
		t.Theoretical += r.Total
	}
	t.Commands = m.Count(A1) + m.Count(A3) + m.Count(A9)
	t.Measured = t.Theoretical + time.Duration(t.Commands)*m.LabLatency
	return t
}

// BatchPoint is one point of the §6.1 trade-off between the static
// partition's BRAM buffer size and the number of communication steps:
// sending k frames per ICAP_config packet needs a (k×324)-byte buffer and
// divides the configuration message count by k.
type BatchPoint struct {
	FramesPerPacket int
	BufferBytes     int
	Commands        int
	Theoretical     time.Duration
	Measured        time.Duration
}

// BatchSweep evaluates the trade-off for the given batch sizes. The
// buffer must stay far below the partial bitstream size or the
// bounded-memory argument collapses; callers should check BufferBytes
// against the DynMem size.
func (m *Model) BatchSweep(batchSizes []int) []BatchPoint {
	out := make([]BatchPoint, 0, len(batchSizes))
	for _, k := range batchSizes {
		if k < 1 {
			continue
		}
		cfgCmds := (m.dynFrames + k - 1) / k
		// A k-frame config packet: type byte + index + k frames of
		// payload on the wire, and k+1 frames (incl. pad) through the
		// ICAP.
		wireA1 := ethsim.WireTime(1+4+k*device.FrameBytes) + time.Duration(calVrfConfig)*time.Nanosecond
		icapA2 := time.Duration(((k+1)*device.FrameWords+11)*icapNsPerCycle+calPrvConfig) * time.Nanosecond
		theo := time.Duration(cfgCmds) * (wireA1 + icapA2)
		n := m.Geo.NumFrames()
		theo += time.Duration(n) * (m.ActionTime(A3) + m.ActionTime(A4) + m.ActionTime(A6) + m.ActionTime(A8))
		theo += m.ActionTime(A5) + m.ActionTime(A7) + m.ActionTime(A9) + m.ActionTime(A10)
		cmds := cfgCmds + n + 1
		out = append(out, BatchPoint{
			FramesPerPacket: k,
			BufferBytes:     k * device.FrameBytes,
			Commands:        cmds,
			Theoretical:     theo,
			Measured:        theo + time.Duration(cmds)*m.LabLatency,
		})
	}
	return out
}

// JTAGConfigTime returns the direct-JTAG full-configuration reference the
// paper cites ("around 28 s" for the XC6VLX240T).
func (m *Model) JTAGConfigTime() time.Duration {
	bits := int64(m.Geo.NumFrames()) * device.FrameBits
	return time.Duration(bits * int64(time.Second) / JTAGBitRate)
}
