package icap

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/sim"
)

func newPort(geo *device.Geometry) (*Port, *fabric.Fabric, *sim.Clock) {
	fab := fabric.New(geo)
	clk := sim.NewClock("icap", sim.ICAPClockHz)
	return New(fab, clk), fab, clk
}

func randFrame(rng *rand.Rand) []uint32 {
	f := make([]uint32, device.FrameWords)
	for i := range f {
		f[i] = rng.Uint32()
	}
	return f
}

func TestConfigSingleFrame(t *testing.T) {
	geo := device.SmallLX()
	p, fab, _ := newPort(geo)
	rng := rand.New(rand.NewSource(1))
	frame := randFrame(rng)
	const idx = 123
	stream, err := ConfigFrameStream(geo, idx, frame)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(stream); err != nil {
		t.Fatal(err)
	}
	got := fab.Mem.Frame(idx)
	for w := range frame {
		if got[w] != frame[w] {
			t.Fatalf("word %d: %#x != %#x", w, got[w], frame[w])
		}
	}
	if p.FramesWritten() != 1 {
		t.Fatalf("FramesWritten = %d", p.FramesWritten())
	}
}

func TestConfigThenReadbackRoundTrip(t *testing.T) {
	geo := device.SmallLX()
	p, _, _ := newPort(geo)
	rng := rand.New(rand.NewSource(2))
	// Write three frames at scattered addresses, read each back.
	idxs := []int{0, 57, geo.NumFrames() - 1}
	frames := make(map[int][]uint32)
	for _, idx := range idxs {
		f := randFrame(rng)
		frames[idx] = f
		stream, err := ConfigFrameStream(geo, idx, f)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(stream); err != nil {
			t.Fatal(err)
		}
	}
	for _, idx := range idxs {
		cmd, err := ReadbackCmdStream(geo, idx)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.Write(cmd); err != nil {
			t.Fatal(err)
		}
		data, err := p.Read(ReadbackWords)
		if err != nil {
			t.Fatal(err)
		}
		got := data[device.FrameWords:] // skip pad frame
		want := frames[idx]
		for w := range want {
			// Capture substitution may clear FF capture bits for frames in
			// CLB columns; compare modulo the mask.
			mask := fabric.GenerateMask(geo).Frame(idx)
			if got[w]&mask[w] != want[w]&mask[w] {
				t.Fatalf("frame %d word %d: %#x != %#x", idx, w, got[w], want[w])
			}
		}
	}
	if p.FramesRead() != int64(len(idxs)) {
		t.Fatalf("FramesRead = %d", p.FramesRead())
	}
}

func TestFARAutoIncrement(t *testing.T) {
	// A multi-frame FDRI write must land in consecutive frames.
	geo := device.SmallLX()
	p, fab, _ := newPort(geo)
	rng := rand.New(rand.NewSource(3))
	f0, f1 := randFrame(rng), randFrame(rng)
	far, _ := geo.FARForFrame(10)
	stream := []uint32{
		DummyWord, SyncWord,
		Type1(opWrite, RegCMD, 1), CmdWCFG,
		Type1(opWrite, RegFAR, 1), far.Encode(),
		Type2(opWrite, 3*device.FrameWords),
	}
	stream = append(stream, f0...)
	stream = append(stream, f1...)
	stream = append(stream, make([]uint32, device.FrameWords)...) // pad
	if err := p.Write(stream); err != nil {
		t.Fatal(err)
	}
	if fab.Mem.Frame(10)[0] != f0[0] || fab.Mem.Frame(11)[0] != f1[0] {
		t.Fatal("FAR auto-increment failed")
	}
	if p.FramesWritten() != 2 {
		t.Fatalf("FramesWritten = %d, want 2 (pad not committed)", p.FramesWritten())
	}
}

func TestCycleAccounting(t *testing.T) {
	geo := device.SmallLX()
	p, _, clk := newPort(geo)
	frame := make([]uint32, device.FrameWords)
	stream, _ := ConfigFrameStream(geo, 5, frame)
	if err := p.Write(stream); err != nil {
		t.Fatal(err)
	}
	// One cycle per word of the stream.
	if clk.Cycles() != int64(len(stream)) {
		t.Fatalf("cycles = %d, want %d", clk.Cycles(), len(stream))
	}
	// A single-frame config stream is frame+pad plus a handful of
	// command words — the paper's A2 is ~183 ICAP cycles.
	if len(stream) < 2*device.FrameWords || len(stream) > 2*device.FrameWords+30 {
		t.Fatalf("config stream length %d out of expected range", len(stream))
	}
}

func TestErrors(t *testing.T) {
	geo := device.SmallLX()
	p, _, _ := newPort(geo)
	if err := p.Write([]uint32{0x12345678}); err == nil {
		t.Error("word before sync accepted")
	}
	p, _, _ = newPort(geo)
	// FDRI without WCFG.
	if err := p.Write([]uint32{SyncWord, Type1(opWrite, RegFDRI, 1), 0}); err == nil {
		t.Error("FDRI without WCFG accepted")
	}
	p, _, _ = newPort(geo)
	// FDRO read without RCFG.
	if err := p.Write([]uint32{SyncWord, Type1(opRead, RegFDRO, 162)}); err == nil {
		t.Error("FDRO without RCFG accepted")
	}
	p, _, _ = newPort(geo)
	// Truncated packet.
	if err := p.Write([]uint32{SyncWord, Type1(opWrite, RegFAR, 1)}); err == nil {
		t.Error("truncated packet accepted")
	}
	p, _, _ = newPort(geo)
	// Unsupported register.
	if err := p.Write([]uint32{SyncWord, Type1(opWrite, 9, 1), 0}); err == nil {
		t.Error("unsupported register accepted")
	}
	// Read more than queued.
	if _, err := p.Read(1); err == nil {
		t.Error("overdrawn read accepted")
	}
	// Bad FAR.
	if _, err := ConfigFrameStream(geo, -1, make([]uint32, device.FrameWords)); err == nil {
		t.Error("bad frame index accepted")
	}
	if _, err := ConfigFrameStream(geo, 0, make([]uint32, 3)); err == nil {
		t.Error("short frame accepted")
	}
	if _, err := ReadbackCmdStream(geo, 1<<30); err == nil {
		t.Error("bad readback index accepted")
	}
}

func TestDesyncRequiresResync(t *testing.T) {
	geo := device.SmallLX()
	p, _, _ := newPort(geo)
	frame := make([]uint32, device.FrameWords)
	stream, _ := ConfigFrameStream(geo, 0, frame) // ends with DESYNC
	if err := p.Write(stream); err != nil {
		t.Fatal(err)
	}
	// After desync, a bare packet header must be rejected.
	if err := p.Write([]uint32{Type1(opWrite, RegFAR, 1), 0}); err == nil {
		t.Fatal("packet accepted after desync")
	}
}

func TestRCRCResetsCRC(t *testing.T) {
	geo := device.SmallLX()
	p, _, _ := newPort(geo)
	frame := make([]uint32, device.FrameWords)
	stream, _ := ConfigFrameStream(geo, 0, frame)
	if err := p.Write(stream); err != nil {
		t.Fatal(err)
	}
	if err := p.Write([]uint32{DummyWord, SyncWord, Type1(opWrite, RegCMD, 1), CmdRCRC}); err != nil {
		t.Fatal(err)
	}
	if p.CRC() != 0 {
		t.Fatalf("CRC = %#x after RCRC", p.CRC())
	}
}

// Property: any frame written through the packet protocol reads back
// identically (modulo capture mask) at any valid index.
func TestQuickConfigReadback(t *testing.T) {
	geo := device.SmallLX()
	p, _, _ := newPort(geo)
	mask := fabric.GenerateMask(geo)
	f := func(seed int64, idxRaw uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		idx := int(idxRaw) % geo.NumFrames()
		frame := randFrame(rng)
		stream, err := ConfigFrameStream(geo, idx, frame)
		if err != nil {
			return false
		}
		if err := p.Write(stream); err != nil {
			return false
		}
		cmd, err := ReadbackCmdStream(geo, idx)
		if err != nil {
			return false
		}
		if err := p.Write(cmd); err != nil {
			return false
		}
		data, err := p.Read(ReadbackWords)
		if err != nil {
			return false
		}
		got := data[device.FrameWords:]
		m := mask.Frame(idx)
		for w := range frame {
			if got[w]&m[w] != frame[w]&m[w] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFARWrapsAtDeviceEnd(t *testing.T) {
	// Writing the device's last frame auto-increments the FAR back to
	// frame 0; a follow-up FDRI write without a new FAR lands there.
	geo := device.SmallLX()
	p, fab, _ := newPort(geo)
	rng := rand.New(rand.NewSource(9))
	last := geo.NumFrames() - 1
	f0, f1 := randFrame(rng), randFrame(rng)
	far, _ := geo.FARForFrame(last)
	stream := []uint32{
		DummyWord, SyncWord,
		Type1(opWrite, RegCMD, 1), CmdWCFG,
		Type1(opWrite, RegFAR, 1), far.Encode(),
		Type2(opWrite, 3*device.FrameWords),
	}
	stream = append(stream, f0...)
	stream = append(stream, f1...)
	stream = append(stream, make([]uint32, device.FrameWords)...) // pad
	if err := p.Write(stream); err != nil {
		t.Fatal(err)
	}
	if fab.Mem.Frame(last)[0] != f0[0] {
		t.Fatal("last frame not written")
	}
	if fab.Mem.Frame(0)[0] != f1[0] {
		t.Fatal("FAR did not wrap to frame 0")
	}
}

func TestHeaderCodec(t *testing.T) {
	h := Type1(opWrite, RegCMD, 1)
	if headerType(h) != 1 || headerOp(h) != opWrite || headerReg(h) != RegCMD || h&0x7FF != 1 {
		t.Fatalf("type-1 header fields wrong: %#08x", h)
	}
	h2 := Type2(opWrite, 162)
	if headerType(h2) != 2 || headerOp(h2) != opWrite || h2&0x7FFFFFF != 162 {
		t.Fatalf("type-2 header fields wrong: %#08x", h2)
	}
}
