// Package icap models the Internal Configuration Access Port.
//
// The ICAP is the primitive through which the SACHa static partition
// writes partial bitstreams into the configuration memory and reads the
// entire configuration memory back (paper §2.1.2–2.1.3). The model speaks
// a Virtex-style packet protocol: a sync word, type-1/type-2 packets
// addressing the FAR/FDRI/FDRO/CMD registers, frame-granular writes with a
// trailing pad frame, and readback that returns a pad frame before the
// requested data — the details that give the paper its per-frame timing.
//
// One 32-bit word crosses the port per ICAP clock cycle; the port ticks
// the clock it is given, so callers obtain cycle-accurate costs.
package icap

import (
	"fmt"

	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/sim"
)

// Well-known configuration words.
const (
	DummyWord = 0xFFFFFFFF
	SyncWord  = 0xAA995566
)

// Configuration register addresses (type-1 packet register field).
const (
	RegCRC  = 0x0
	RegFAR  = 0x1
	RegFDRI = 0x2
	RegFDRO = 0x3
	RegCMD  = 0x4
)

// CMD register values.
const (
	CmdNull   = 0x0
	CmdWCFG   = 0x1 // write configuration
	CmdRCFG   = 0x4 // read configuration
	CmdRCRC   = 0x7 // reset CRC
	CmdDesync = 0xD
)

// Packet header construction (type-1: 001 op[2] reg[18] count[11];
// type-2: 010 op[2] count[27]).
const (
	opNop   = 0
	opRead  = 1
	opWrite = 2
)

// Type1 builds a type-1 packet header: [31:29]=001, [28:27]=op,
// [26:13]=register, [10:0]=word count.
func Type1(op, reg, count int) uint32 {
	return 1<<29 | uint32(op&3)<<27 | uint32(reg&0x3FFF)<<13 | uint32(count&0x7FF)
}

// Type2 builds a type-2 packet header (large word counts).
func Type2(op, count int) uint32 {
	return 2<<29 | uint32(op&3)<<27 | uint32(count&0x7FFFFFF)
}

func headerType(w uint32) int { return int(w >> 29) }
func headerOp(w uint32) int   { return int(w >> 27 & 3) }
func headerReg(w uint32) int  { return int(w >> 13 & 0x1F) }

// Port is one ICAP primitive bound to a fabric and a clock domain.
type Port struct {
	fab   *fabric.Fabric
	clock *sim.Clock

	synced  bool
	far     uint32
	cmd     uint32
	crc     uint32
	pending []uint32 // FDRI data buffer (one frame pipeline)
	rdQueue []uint32 // FDRO data waiting to be read

	framesWritten int64
	framesRead    int64
}

// New returns an ICAP port driving the given fabric. The clock is ticked
// once per transferred word; pass a fresh 100 MHz clock for the paper's
// timing.
func New(fab *fabric.Fabric, clock *sim.Clock) *Port {
	return &Port{fab: fab, clock: clock}
}

// FramesWritten returns the number of configuration frames committed.
func (p *Port) FramesWritten() int64 { return p.framesWritten }

// FramesRead returns the number of configuration frames read back.
func (p *Port) FramesRead() int64 { return p.framesRead }

// CRC returns the running CRC register value.
func (p *Port) CRC() uint32 { return p.crc }

// Write feeds a word stream into the port, as the SACHa RX path does with
// the command payload stored in its BRAM buffer.
func (p *Port) Write(words []uint32) error {
	i := 0
	for i < len(words) {
		w := words[i]
		p.clock.Tick(1)
		if w == DummyWord { // dummies pass through in either state
			i++
			continue
		}
		if !p.synced {
			if w == SyncWord {
				p.synced = true
				i++
				continue
			}
			return fmt.Errorf("icap: word %#08x before sync", w)
		}
		if w == SyncWord { // redundant sync while synced is a no-op
			i++
			continue
		}
		switch headerType(w) {
		case 1:
			count := int(w & 0x7FF)
			reg := headerReg(w)
			op := headerOp(w)
			i++
			if op == opNop {
				continue
			}
			if op == opRead {
				if reg != RegFDRO {
					return fmt.Errorf("icap: read of register %d unsupported", reg)
				}
				if err := p.startReadback(count); err != nil {
					return err
				}
				continue
			}
			if i+count > len(words) {
				return fmt.Errorf("icap: truncated type-1 packet (need %d words)", count)
			}
			data := words[i : i+count]
			i += count
			p.clock.Tick(int64(count))
			if err := p.writeReg(reg, data); err != nil {
				return err
			}
		case 2:
			count := int(w & 0x7FFFFFF)
			op := headerOp(w)
			i++
			if op == opRead {
				if err := p.startReadback(count); err != nil {
					return err
				}
				continue
			}
			// Type-2 packets always target the register of the previous
			// type-1 header; the model supports FDRI only.
			if i+count > len(words) {
				return fmt.Errorf("icap: truncated type-2 packet (need %d words)", count)
			}
			data := words[i : i+count]
			i += count
			p.clock.Tick(int64(count))
			if err := p.writeReg(RegFDRI, data); err != nil {
				return err
			}
		default:
			return fmt.Errorf("icap: bad packet header %#08x", w)
		}
	}
	return nil
}

func (p *Port) writeReg(reg int, data []uint32) error {
	switch reg {
	case RegFAR:
		if len(data) != 1 {
			return fmt.Errorf("icap: FAR write with %d words", len(data))
		}
		p.far = data[0]
	case RegCMD:
		if len(data) != 1 {
			return fmt.Errorf("icap: CMD write with %d words", len(data))
		}
		p.cmd = data[0]
		switch p.cmd {
		case CmdRCRC:
			p.crc = 0
			return nil // reset is not itself accumulated
		case CmdDesync:
			p.synced = false
		case CmdWCFG:
			p.pending = p.pending[:0]
		}
	case RegFDRI:
		if p.cmd != CmdWCFG {
			return fmt.Errorf("icap: FDRI write without WCFG command")
		}
		p.pending = append(p.pending, data...)
		return p.flushFrames()
	case RegCRC:
		if len(data) != 1 {
			return fmt.Errorf("icap: CRC write with %d words", len(data))
		}
		// A real device compares; the model just stores it.
		p.crc = data[0]
	default:
		return fmt.Errorf("icap: write to unsupported register %d", reg)
	}
	for _, w := range data {
		p.crc = crcStep(p.crc, w, reg)
	}
	return nil
}

// flushFrames commits whole frames from the FDRI pipeline. The final
// 81-word group of a write is the pad frame that flushes the pipeline and
// is not committed — callers therefore send frame+pad to write one frame.
func (p *Port) flushFrames() error {
	for len(p.pending) >= 2*device.FrameWords {
		frame := p.pending[:device.FrameWords]
		idx, err := p.frameIndex()
		if err != nil {
			return err
		}
		if err := p.fab.WriteFrame(idx, frame); err != nil {
			return err
		}
		p.framesWritten++
		p.advanceFAR(idx)
		p.pending = append(p.pending[:0], p.pending[device.FrameWords:]...)
	}
	return nil
}

func (p *Port) frameIndex() (int, error) {
	idx, err := p.fab.Geo.FrameForFAR(device.DecodeFAR(p.far))
	if err != nil {
		return 0, fmt.Errorf("icap: FAR %#08x: %w", p.far, err)
	}
	return idx, nil
}

func (p *Port) advanceFAR(current int) {
	next := current + 1
	if next >= p.fab.Geo.NumFrames() {
		next = 0
	}
	far, err := p.fab.Geo.FARForFrame(next)
	if err != nil {
		panic(err)
	}
	p.far = far.Encode()
}

// startReadback queues count words of FDRO data: one pad frame first,
// then configuration frames starting at the FAR (with capture bits
// carrying live flip-flop state).
func (p *Port) startReadback(count int) error {
	if p.cmd != CmdRCFG {
		return fmt.Errorf("icap: FDRO read without RCFG command")
	}
	queued := make([]uint32, device.FrameWords, count+device.FrameWords)
	for len(queued) < count {
		idx, err := p.frameIndex()
		if err != nil {
			return err
		}
		frame, err := p.fab.ReadbackFrame(idx)
		if err != nil {
			return err
		}
		queued = append(queued, frame...)
		p.framesRead++
		p.advanceFAR(idx)
	}
	p.rdQueue = append(p.rdQueue, queued[:count]...)
	return nil
}

// Read drains n words from the readback queue, one per ICAP cycle.
func (p *Port) Read(n int) ([]uint32, error) {
	if n > len(p.rdQueue) {
		return nil, fmt.Errorf("icap: read of %d words but only %d queued", n, len(p.rdQueue))
	}
	out := make([]uint32, n)
	copy(out, p.rdQueue[:n])
	p.rdQueue = append(p.rdQueue[:0], p.rdQueue[n:]...)
	p.clock.Tick(int64(n))
	return out, nil
}

// crcStep mixes one (register, word) pair into the running CRC, a simple
// model of the configuration logic's CRC accumulator.
func crcStep(crc, word uint32, reg int) uint32 {
	x := crc ^ word ^ uint32(reg)<<26
	for i := 0; i < 4; i++ {
		if x&1 != 0 {
			x = x>>1 ^ 0xEDB88320
		} else {
			x >>= 1
		}
	}
	return x
}

// --- High-level helpers used by the SACHa static partition ---

// ConfigFrameStream builds the packet stream that writes one frame at the
// given linear frame index: sync, WCFG, FAR, FDRI with frame + pad frame.
func ConfigFrameStream(geo *device.Geometry, frameIdx int, frame []uint32) ([]uint32, error) {
	if len(frame) != device.FrameWords {
		return nil, fmt.Errorf("icap: frame has %d words", len(frame))
	}
	far, err := geo.FARForFrame(frameIdx)
	if err != nil {
		return nil, err
	}
	stream := []uint32{
		DummyWord, SyncWord,
		Type1(opWrite, RegCMD, 1), CmdRCRC,
		Type1(opWrite, RegCMD, 1), CmdWCFG,
		Type1(opWrite, RegFAR, 1), far.Encode(),
		Type2(opWrite, 2*device.FrameWords),
	}
	stream = append(stream, frame...)
	stream = append(stream, make([]uint32, device.FrameWords)...) // pad frame
	stream = append(stream, Type1(opWrite, RegCMD, 1), CmdDesync)
	return stream, nil
}

// ReadbackCmdStream builds the packet stream that requests readback of one
// frame at the given linear index (pad frame + frame = 162 words of FDRO).
func ReadbackCmdStream(geo *device.Geometry, frameIdx int) ([]uint32, error) {
	far, err := geo.FARForFrame(frameIdx)
	if err != nil {
		return nil, err
	}
	return []uint32{
		DummyWord, SyncWord,
		Type1(opWrite, RegCMD, 1), CmdRCFG,
		Type1(opWrite, RegFAR, 1), far.Encode(),
		Type1(opRead, RegFDRO, ReadbackWords),
	}, nil
}

// ReadbackWords is the FDRO word count for a single-frame readback.
const ReadbackWords = 2 * device.FrameWords
