package core

import (
	"fmt"

	"sacha/internal/bitstream"
	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/netlist"
)

// BuildBootMem synthesises the static-partition boot flash content for a
// geometry and build ID — what the device is provisioned with before
// deployment. The prover and verifier tools share this so a TCP verifier
// can reconstruct the golden static content without access to the device.
func BuildBootMem(geo *device.Geometry, buildID uint64) *bitstream.Partial {
	statFrames := fabric.StatRegion(geo).Frames()
	im := fabric.NewImage(geo)
	fabric.FillStatic(im, statFrames, buildID)
	return bitstream.FromImage(im, statFrames)
}

// BuildGolden composes the full golden image for an intended application
// and nonce: synthesised static content, the placed application, and the
// placed nonce register. It returns the image and the dynamic frames in
// transmission order (application frames, then nonce frames).
func BuildGolden(geo *device.Geometry, app *netlist.Design, buildID, nonce uint64) (*fabric.Image, []int, error) {
	im := fabric.NewImage(geo)
	fabric.FillStatic(im, fabric.StatRegion(geo).Frames(), buildID)
	if _, err := fabric.PlaceDesign(im, fabric.AppRegion(geo), app); err != nil {
		return nil, nil, fmt.Errorf("core: placing application: %w", err)
	}
	if _, err := fabric.PlaceDesign(im, fabric.NonceRegion(geo), netlist.NonceRegister(NonceBits, nonce)); err != nil {
		return nil, nil, fmt.Errorf("core: placing nonce: %w", err)
	}

	nonceFrames, err := fabric.NonceColumnFrames(geo)
	if err != nil {
		return nil, nil, err
	}
	nonceCol := map[int]bool{}
	for _, idx := range nonceFrames {
		nonceCol[idx] = true
	}
	var dyn []int
	for _, idx := range fabric.DynRegion(geo).Frames() {
		if !nonceCol[idx] {
			dyn = append(dyn, idx)
		}
	}
	return im, append(dyn, nonceFrames...), nil
}
