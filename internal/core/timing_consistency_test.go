package core

import (
	"testing"
	"time"

	"sacha/internal/device"
	"sacha/internal/netlist"
	"sacha/internal/timing"
)

// TestVirtualTimeMatchesTable4Model is the closure between the executed
// protocol and the analytic reproduction: running a real attestation with
// the lab latency enabled must accumulate virtual time equal to the
// Table 4 model for the same device — the executed message sizes, ICAP
// streams and MAC steps ARE the model's inputs.
func TestVirtualTimeMatchesTable4Model(t *testing.T) {
	geo := device.SmallLX()
	sys, err := NewSystem(Config{
		Geo:  geo,
		App:  netlist.Blinker(8),
		Seed: 1,
		// LabLatency zero-value → the paper's default lab latency.
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Attest(AttestOptions{})
	if err != nil || !rep.Accepted {
		t.Fatalf("attestation failed: %v", err)
	}
	got := sys.VirtualDuration()
	want := timing.NewModel(geo).Table4().Measured

	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	// Allow 2% slack: the executed run includes a handful of bookkeeping
	// messages the analytic model folds into the calibration constants.
	if diff > want/50 {
		t.Fatalf("executed virtual time %v vs Table 4 model %v (diff %v)", got, want, diff)
	}
}

// TestVirtualTimeTheoreticalShare: with the lab latency disabled, the
// executed protocol's virtual time must land on the model's theoretical
// duration.
func TestVirtualTimeTheoreticalShare(t *testing.T) {
	geo := device.SmallLX()
	sys, err := NewSystem(Config{Geo: geo, App: netlist.Blinker(8), LabLatency: -1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Attest(AttestOptions{}); err != nil {
		t.Fatal(err)
	}
	got := sys.VirtualDuration()
	want := timing.NewModel(geo).Table4().Theoretical
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > want/50 {
		t.Fatalf("executed theoretical time %v vs model %v", got, want)
	}
	if lat := sys.ChannelTime.Tag("latency"); lat != 0 {
		t.Fatalf("latency charged despite being disabled: %v", lat)
	}
}

// TestVirtualTimeXC6VMatchesPaper runs the real protocol on the paper's
// device and checks the executed virtual duration against the published
// 28.5 s. Skipped under -short.
func TestVirtualTimeXC6VMatchesPaper(t *testing.T) {
	if testing.Short() {
		t.Skip("full-device run; use without -short")
	}
	sys, err := NewSystem(Config{Geo: device.XC6VLX240T(), App: netlist.Blinker(16), Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Attest(AttestOptions{})
	if err != nil || !rep.Accepted {
		t.Fatalf("attestation failed: %v", err)
	}
	got := sys.VirtualDuration()
	if got < 28*time.Second || got > 29*time.Second {
		t.Fatalf("executed XC6VLX240T protocol virtual time %v, paper measured 28.5 s", got)
	}
}
