package core

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/netlist"
	"sacha/internal/prover"
	"sacha/internal/timing"
	"sacha/internal/trace"
	"sacha/internal/verifier"
)

// smallSystem builds a system on the small device for fast tests.
func smallSystem(t testing.TB, mutate func(*Config)) *System {
	t.Helper()
	cfg := Config{
		Geo:        device.SmallLX(),
		App:        netlist.Blinker(8),
		LabLatency: -1, // zero network latency in tests
		Seed:       1,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	sys, err := NewSystem(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestHonestAttestationAccepted(t *testing.T) {
	sys := smallSystem(t, nil)
	rep, err := sys.Attest(AttestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.MACOK {
		t.Error("MAC rejected for honest device")
	}
	if !rep.ConfigOK {
		t.Errorf("config rejected for honest device: %d mismatching frames %v",
			len(rep.Mismatches), head(rep.Mismatches, 5))
	}
	if !rep.Accepted {
		t.Error("honest device not accepted")
	}
	if rep.FramesConfigured != len(sys.DynFrames()) {
		t.Errorf("configured %d frames, want %d", rep.FramesConfigured, len(sys.DynFrames()))
	}
	if rep.FramesRead != sys.Geo.NumFrames() {
		t.Errorf("read %d frames, want %d", rep.FramesRead, sys.Geo.NumFrames())
	}
}

func head(xs []int, n int) []int {
	if len(xs) < n {
		return xs
	}
	return xs[:n]
}

func TestAttestationWithPUFKeys(t *testing.T) {
	for _, mode := range []KeyMode{KeyStatPUF, KeyDynPUF} {
		sys := smallSystem(t, func(c *Config) {
			c.KeyMode = mode
			c.DeviceID = 42
		})
		rep, err := sys.Attest(AttestOptions{})
		if err != nil {
			t.Fatalf("mode %d: %v", mode, err)
		}
		if !rep.Accepted {
			t.Errorf("mode %d: honest device rejected", mode)
		}
		if sys.DB.Len() != 1 {
			t.Errorf("mode %d: enrollment database has %d entries", mode, sys.DB.Len())
		}
	}
}

func TestKeyRotation(t *testing.T) {
	// The DynPart-PUF option (§5.2.1): the verifier ships a new PUF
	// circuit and both sides switch keys.
	sys := smallSystem(t, func(c *Config) {
		c.KeyMode = KeyDynPUF
		c.DeviceID = 77
	})
	rep, err := sys.Attest(AttestOptions{})
	if err != nil || !rep.Accepted {
		t.Fatalf("initial circuit: %v", err)
	}
	oldKey := sys.Verifier.Key
	g1, _ := sys.Golden(5)

	if err := sys.RotateKey(); err != nil {
		t.Fatal(err)
	}
	if sys.DB.Len() != 2 {
		t.Fatalf("enrollment DB has %d circuits, want 2", sys.DB.Len())
	}
	rep, err = sys.Attest(AttestOptions{})
	if err != nil || !rep.Accepted {
		t.Fatalf("rotated circuit: %v", err)
	}
	// The golden bitstream changed: the new circuit's configuration is
	// attested.
	g2, _ := sys.Golden(5)
	if g1.Equal(g2) {
		t.Fatal("rotation did not change the golden bitstream")
	}
	// A verifier still holding the old key must reject the device.
	sys.Verifier.Key = oldKey
	rep, err = sys.Attest(AttestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MACOK || rep.Accepted {
		t.Fatal("stale key accepted after rotation")
	}
}

func TestRotateKeyRequiresDynPUF(t *testing.T) {
	sys := smallSystem(t, nil) // KeyRegister
	if err := sys.RotateKey(); err == nil {
		t.Fatal("rotation accepted outside DynPUF mode")
	}
}

func TestTamperedFrameDetected(t *testing.T) {
	// Flip one configuration bit after configuration, before readback:
	// the masked comparison must flag exactly that frame and the overall
	// verdict must be reject (the MAC itself stays valid — the device is
	// honest about its tampered content).
	sys := smallSystem(t, nil)
	dyn := sys.DynFrames()
	target := dyn[len(dyn)/2]
	rep, err := sys.Attest(AttestOptions{
		TamperDevice: func(d *prover.Device) {
			d.Fabric.Mem.Frame(target)[40] ^= 1 << 7
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("tampered device accepted")
	}
	if !rep.MACOK {
		t.Error("MAC should still verify (frames authentic, content wrong)")
	}
	if rep.ConfigOK {
		t.Error("masked comparison missed the tampered frame")
	}
	found := false
	for _, idx := range rep.Mismatches {
		if idx == target {
			found = true
		}
	}
	if !found {
		t.Errorf("mismatch list %v does not contain tampered frame %d", head(rep.Mismatches, 5), target)
	}
}

func TestConfiguredAppRunsOnDevice(t *testing.T) {
	sys := smallSystem(t, func(c *Config) { c.App = netlist.Counter(4) })
	if _, err := sys.Attest(AttestOptions{}); err != nil {
		t.Fatal(err)
	}
	// After attestation the device runs the intended application: drive
	// its enable pin and clock it.
	live, err := sys.Device.App()
	if err != nil {
		t.Fatal(err)
	}
	if err := live.InputPin(sys.AppPlacement, "en", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := live.Step(); err != nil {
			t.Fatal(err)
		}
	}
	v, err := live.OutputPin(sys.AppPlacement, "q0")
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 { // 5 = 0b101
		t.Errorf("q0 = %d after 5 steps, want 1", v)
	}
	v2, _ := live.OutputPin(sys.AppPlacement, "q2")
	if v2 != 1 {
		t.Errorf("q2 = %d after 5 steps, want 1", v2)
	}
}

func TestNonceChangesMAC(t *testing.T) {
	// Two attestations with different nonces must produce different MACs
	// — freshness (the replay protection of §7.2).
	sys := smallSystem(t, nil)
	n1, n2 := uint64(111), uint64(222)
	g1, err := sys.Golden(n1)
	if err != nil {
		t.Fatal(err)
	}
	g2, err := sys.Golden(n2)
	if err != nil {
		t.Fatal(err)
	}
	if g1.Equal(g2) {
		t.Fatal("different nonces produced identical golden images")
	}
	// And the same nonce must be reproducible.
	g1b, _ := sys.Golden(n1)
	if !g1.Equal(g1b) {
		t.Fatal("golden image not deterministic for a fixed nonce")
	}
}

func TestReadbackOffsetAndPermutation(t *testing.T) {
	sys := smallSystem(t, nil)
	// Offset order.
	rep, err := sys.Attest(AttestOptions{Opts: verifier.Options{Offset: 1000}})
	if err != nil || !rep.Accepted {
		t.Fatalf("offset order: %v accepted=%v", err, rep != nil && rep.Accepted)
	}
	// Random permutation.
	n := sys.Geo.NumFrames()
	perm := rand.New(rand.NewSource(3)).Perm(n)
	rep, err = sys.Attest(AttestOptions{Opts: verifier.Options{Permutation: perm}})
	if err != nil || !rep.Accepted {
		t.Fatalf("permuted order: %v", err)
	}
}

func TestBatchedConfiguration(t *testing.T) {
	// §6.1 trade-off end to end: batching frames reduces the message
	// count while the verdict stays identical.
	sys := smallSystem(t, nil)
	rep, err := sys.Attest(AttestOptions{Opts: verifier.Options{ConfigBatch: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatal("batched configuration rejected")
	}
	if rep.FramesConfigured != len(sys.DynFrames()) {
		t.Fatalf("configured %d frames", rep.FramesConfigured)
	}
	// Requesting more than the MTU allows is clamped, not an error.
	rep, err = sys.Attest(AttestOptions{Opts: verifier.Options{ConfigBatch: 99}})
	if err != nil || !rep.Accepted {
		t.Fatalf("clamped batch failed: %v", err)
	}
	// Tampering is still caught under batching.
	target := sys.DynFrames()[33]
	rep, err = sys.Attest(AttestOptions{
		Opts: verifier.Options{ConfigBatch: 4},
		TamperDevice: func(d *prover.Device) {
			d.Fabric.Mem.Frame(target)[7] ^= 1
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("tamper missed under batched configuration")
	}
}

func TestSignatureMode(t *testing.T) {
	sys := smallSystem(t, func(c *Config) { c.EnableSignature = true })
	rep, err := sys.Attest(AttestOptions{Opts: verifier.Options{SignatureMode: true}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Error("signature-mode attestation rejected for honest device")
	}
}

func TestSignatureModeUnprovisioned(t *testing.T) {
	sys := smallSystem(t, nil) // no signer
	_, err := sys.Attest(AttestOptions{Opts: verifier.Options{SignatureMode: true}})
	if err == nil {
		t.Fatal("signature mode without enrollment should fail")
	}
}

func TestCaptureExtension(t *testing.T) {
	sys := smallSystem(t, func(c *Config) { c.App = netlist.LFSR(8, []int{0, 2, 3, 4}) })
	rep, err := sys.Attest(AttestOptions{Opts: verifier.Options{AppSteps: 37}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Errorf("CAPTURE attestation rejected: MACOK=%v ConfigOK=%v mismatches=%v",
			rep.MACOK, rep.ConfigOK, head(rep.Mismatches, 5))
	}
}

func TestTraceOutput(t *testing.T) {
	sys := smallSystem(t, nil)
	var buf bytes.Buffer
	rep, err := sys.Attest(AttestOptions{Opts: verifier.Options{Trace: &buf}})
	if err != nil || !rep.Accepted {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"ICAP_config", "ICAP_readback", "MAC_checksum", "B_Prv == B_Vrf"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace lacks %q:\n%s", want, out)
		}
	}
}

func TestEventLogRecordsProtocol(t *testing.T) {
	sys := smallSystem(t, nil)
	log := trace.NewLog(50)
	rep, err := sys.Attest(AttestOptions{Opts: verifier.Options{Events: log}})
	if err != nil || !rep.Accepted {
		t.Fatal(err)
	}
	if got := log.Count(trace.KindConfig); got != len(sys.DynFrames()) {
		t.Errorf("config events %d, want %d", got, len(sys.DynFrames()))
	}
	if got := log.Count(trace.KindReadback); got != sys.Geo.NumFrames() {
		t.Errorf("readback events %d, want %d", got, sys.Geo.NumFrames())
	}
	if log.Count(trace.KindChecksum) != 1 || log.Count(trace.KindMACValue) != 1 {
		t.Error("checksum exchange not recorded")
	}
	if len(log.Events()) != 50 {
		t.Errorf("retention cap not applied: %d", len(log.Events()))
	}
	// The per-event durations sum to the Table 4 theoretical total for
	// this geometry (A5 init is folded into the first readback's margin).
	model := timing.NewModel(sys.Geo)
	want := model.Table4().Theoretical
	got := log.Elapsed()
	diff := got - want
	if diff < 0 {
		diff = -diff
	}
	if diff > want/50 {
		t.Errorf("event log elapsed %v vs Table 4 theoretical %v", got, want)
	}
}

func TestVirtualDurationAccounted(t *testing.T) {
	sys := smallSystem(t, nil)
	if _, err := sys.Attest(AttestOptions{}); err != nil {
		t.Fatal(err)
	}
	if sys.VirtualDuration() == 0 {
		t.Fatal("no virtual time accumulated")
	}
	if sys.ChannelTime.Tag("wire") == 0 {
		t.Fatal("no wire time accumulated")
	}
	sys.ResetTimelines()
	if sys.VirtualDuration() != 0 {
		t.Fatal("ResetTimelines did not clear")
	}
}

func TestRepeatedAttestations(t *testing.T) {
	sys := smallSystem(t, nil)
	for i := 0; i < 3; i++ {
		rep, err := sys.Attest(AttestOptions{})
		if err != nil || !rep.Accepted {
			t.Fatalf("attestation %d failed: %v", i, err)
		}
	}
}

func TestDynFramesPartition(t *testing.T) {
	sys := smallSystem(t, nil)
	dyn := sys.DynFrames()
	seen := map[int]bool{}
	for _, f := range dyn {
		if seen[f] {
			t.Fatalf("frame %d sent twice during configuration", f)
		}
		seen[f] = true
	}
	if fmt.Sprint(len(dyn)) == "0" {
		t.Fatal("no dynamic frames")
	}
}

func TestCaptureAttestsSoftCoreState(t *testing.T) {
	// The paper's §8 vision, end to end: a soft-core processor lives in
	// the dynamic partition; CAPTURE attestation verifies the FPGA
	// configuration *and* the processor's live state (ACC, PC) against a
	// verifier-side prediction.
	prog := netlist.SC4Program{
		{Op: netlist.SC4Addi, Imm: 3},
		{Op: netlist.SC4Xori, Imm: 0x55},
		{Op: netlist.SC4Jmp, Imm: 0},
	}
	sys := smallSystem(t, func(c *Config) { c.App = netlist.SoftCore(prog) })
	const steps = 23
	rep, err := sys.Attest(AttestOptions{Opts: verifier.Options{AppSteps: steps}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("soft-core CAPTURE attestation rejected: MACOK=%v ConfigOK=%v mismatches=%d",
			rep.MACOK, rep.ConfigOK, len(rep.Mismatches))
	}
	// The device's soft core really is in the predicted state.
	live, err := sys.Device.App()
	if err != nil {
		t.Fatal(err)
	}
	var acc uint8
	for i := 0; i < 8; i++ {
		v, err := live.OutputPin(sys.AppPlacement, fmt.Sprintf("acc%d", i))
		if err != nil {
			t.Fatal(err)
		}
		acc |= v << uint(i)
	}
	wantAcc, _ := netlist.SC4Reference(prog, steps)
	if acc != wantAcc {
		t.Fatalf("soft core ACC=%#x, reference %#x", acc, wantAcc)
	}

	// A processor in the WRONG state (one extra cycle) must be rejected
	// by CAPTURE attestation even though the configuration is pristine.
	rep, err = sys.Attest(AttestOptions{
		Opts: verifier.Options{AppSteps: steps},
		TamperDevice: func(d *prover.Device) {
			// The adversary pre-clocks the core once before the verifier's
			// AppStep command, desynchronising the state.
			l, err := d.App()
			if err == nil {
				l.Step()
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("desynchronised soft-core state accepted by CAPTURE attestation")
	}
	if !rep.MACOK {
		t.Error("MAC should verify — only the captured state is wrong")
	}
}

func TestROMEmbeddedAndAttested(t *testing.T) {
	rom := []byte("firmware image for the soft core, embedded in BRAM content columns")
	sys := smallSystem(t, func(c *Config) { c.ROM = rom })
	rep, err := sys.Attest(AttestOptions{})
	if err != nil || !rep.Accepted {
		t.Fatalf("ROM-bearing system rejected: %v", err)
	}
	// The ROM is readable from the configured device.
	got, err := sys.ReadDeviceROM()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(rom) {
		t.Fatalf("device ROM = %q", got)
	}
	// Tampering with the ROM content is caught like any config tamper.
	rep, err = sys.Attest(AttestOptions{TamperDevice: func(d *prover.Device) {
		region := fabric.AppRegion(sys.Geo)
		data, err := fabric.ReadBRAMContent(d.Fabric.Mem, region.BRAMCnt[0][0], region.BRAMCnt[0][1], 0)
		if err != nil {
			t.Error(err)
			return
		}
		data[5] ^= 0x01
		if err := fabric.WriteBRAMContent(d.Fabric.Mem, region.BRAMCnt[0][0], region.BRAMCnt[0][1], 0, data); err != nil {
			t.Error(err)
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("ROM tamper accepted")
	}
}

func TestBadConfig(t *testing.T) {
	if _, err := NewSystem(Config{Geo: device.SmallLX(), KeyMode: KeyMode(99), LabLatency: -1}); err == nil {
		t.Fatal("unknown key mode accepted")
	}
}
