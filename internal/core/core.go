// Package core is the public entry point of the SACHa library: it
// assembles the paper's full system — a prover FPGA with a minimal static
// partition, an enrolled key (register or PUF), a golden bitstream for an
// intended application plus a nonce partition, and a verifier — and runs
// the self-attestation protocol end to end.
//
// Typical use:
//
//	sys, _ := core.NewSystem(core.Config{App: netlist.Blinker(16)})
//	report, _ := sys.Attest(core.AttestOptions{})
//	// report.Accepted == true for an untampered device
package core

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"fmt"
	"math/rand"
	"time"

	"sacha/internal/attestation"
	"sacha/internal/bitstream"
	"sacha/internal/channel"
	"sacha/internal/device"
	"sacha/internal/ethsim"
	"sacha/internal/fabric"
	"sacha/internal/netlist"
	"sacha/internal/protocol"
	"sacha/internal/prover"
	"sacha/internal/puf"
	"sacha/internal/signature"
	"sacha/internal/sim"
	"sacha/internal/timing"
	"sacha/internal/verifier"
)

// KeyMode selects how the MAC key is provisioned (paper §5.2.1).
type KeyMode int

const (
	// KeyRegister stores the key in a static-partition register (the
	// proof-of-concept configuration).
	KeyRegister KeyMode = iota
	// KeyStatPUF derives the key from a PUF in the static partition.
	KeyStatPUF
	// KeyDynPUF derives the key from a PUF circuit the verifier ships in
	// the dynamic partition (allows key rotation).
	KeyDynPUF
)

// NonceBits is the nonce register width (paper §6.1: 64 bits).
const NonceBits = 64

// Config assembles a System.
type Config struct {
	// Geo is the device geometry; defaults to the XC6VLX240T.
	Geo *device.Geometry
	// App is the intended application for the dynamic partition;
	// defaults to a 16-bit blinker.
	App *netlist.Design
	// KeyMode selects the key source.
	KeyMode KeyMode
	// DeviceID identifies the physical device (PUF identity, enrollment
	// database key).
	DeviceID uint64
	// PUFNoise is the raw PUF bit-error probability in 1/10000 units;
	// defaults to 300 (3%).
	PUFNoise int
	// BuildID seeds the synthesised static-partition image.
	BuildID uint64
	// ROM, if non-empty, is data embedded into the dynamic partition's
	// BRAM content columns (lookup tables, firmware for a soft core).
	// It is covered by the MAC and the golden comparison like any other
	// configuration.
	ROM []byte
	// EnableSignature provisions the ECDSA extension.
	EnableSignature bool
	// LabLatency is the per-message network latency of the simulated
	// channel; defaults to the paper's lab value. Set negative for zero.
	LabLatency time.Duration
	// Seed drives all randomness (enrollment, keys) for reproducibility.
	Seed int64
}

// System is a deployed prover plus its enrolled verifier.
type System struct {
	Geo      *device.Geometry
	Device   *prover.Device
	Verifier *verifier.Verifier
	// DB is the verifier-side PUF enrollment database.
	DB *puf.Database
	// ChannelTime accumulates wire and latency virtual time of the
	// simulated link.
	ChannelTime *sim.Timeline

	cfg         Config
	app         *netlist.Design
	base        *fabric.Image // static golden content
	appRegion   *fabric.Region
	nonceRegion *fabric.Region
	appFrames   []int // DynMem minus the nonce column, transmission order
	nonceFrames []int // the nonce column
	rng         *rand.Rand
	circuitID   uint64        // current DynPUF circuit (0 = StatPart PUF / register)
	helper      []byte        // current PUF helper data (nil in KeyRegister mode)
	patchGolden *fabric.Image // memoized nonce-0 golden for PatchableSpec; nil until first use, cleared by RotateKey

	// AppPlacement maps the application's pins for examples/tests; it is
	// identical across attestations (deterministic placement).
	AppPlacement *fabric.Placement
}

// NewSystem provisions a device and enrolls it with a verifier.
func NewSystem(cfg Config) (*System, error) {
	if cfg.Geo == nil {
		cfg.Geo = device.XC6VLX240T()
	}
	if cfg.App == nil {
		cfg.App = netlist.Blinker(16)
	}
	if cfg.PUFNoise == 0 {
		cfg.PUFNoise = 300
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	s := &System{
		Geo:         cfg.Geo,
		DB:          puf.NewDatabase(),
		ChannelTime: sim.NewTimeline(),
		cfg:         cfg,
		app:         cfg.App,
		appRegion:   fabric.AppRegion(cfg.Geo),
		nonceRegion: fabric.NonceRegion(cfg.Geo),
		rng:         rng,
	}

	// Build the static golden content and the boot flash.
	statFrames := fabric.StatRegion(cfg.Geo).Frames()
	s.base = fabric.NewImage(cfg.Geo)
	fabric.FillStatic(s.base, statFrames, cfg.BuildID)
	bootMem := bitstream.FromImage(s.base, statFrames)

	// Frame split: the application phase covers every dynamic frame that
	// is not the nonce column; the nonce phase covers the nonce column.
	nonceFrames, err := fabric.NonceColumnFrames(cfg.Geo)
	if err != nil {
		return nil, err
	}
	s.nonceFrames = nonceFrames
	nonceCol := map[int]bool{}
	for _, idx := range nonceFrames {
		nonceCol[idx] = true
	}
	for _, idx := range fabric.DynRegion(cfg.Geo).Frames() {
		if !nonceCol[idx] {
			s.appFrames = append(s.appFrames, idx)
		}
	}

	// Key provisioning and enrollment.
	var keySrc prover.KeySource
	var key [16]byte
	switch cfg.KeyMode {
	case KeyRegister:
		rng.Read(key[:])
		keySrc = prover.RegisterKey(key)
	case KeyStatPUF, KeyDynPUF:
		if cfg.KeyMode == KeyDynPUF {
			s.circuitID = 1
		}
		phys := &puf.Physical{DeviceID: cfg.DeviceID, CircuitID: s.circuitID, NoiseProb: cfg.PUFNoise}
		enr := puf.Enroll(phys, rng)
		key = enr.Key
		s.DB.Store(cfg.DeviceID, s.circuitID, enr.Key)
		s.helper = enr.Helper.Offset
		keySrc = &prover.PUFKey{Phys: phys, Helper: enr.Helper, Rng: rng}
	default:
		return nil, fmt.Errorf("core: unknown key mode %d", cfg.KeyMode)
	}

	var signer *signature.Signer
	if cfg.EnableSignature {
		var err error
		signer, err = signature.Generate(rng)
		if err != nil {
			return nil, err
		}
	}

	dev, err := prover.New(prover.Config{
		Geo:     cfg.Geo,
		BootMem: bootMem,
		Key:     keySrc,
		Signer:  signer,
	})
	if err != nil {
		return nil, err
	}
	if err := dev.PowerOn(); err != nil {
		return nil, err
	}
	s.Device = dev

	s.Verifier = verifier.New(cfg.Geo, key)
	if signer != nil {
		sv, err := signature.NewVerifier(signer.PublicKey())
		if err != nil {
			return nil, err
		}
		s.Verifier.SigVerifier = sv
	}

	// Pre-place the application once to expose its pin map (placement is
	// deterministic, so this matches every golden image built later).
	probe := fabric.NewImage(cfg.Geo)
	s.AppPlacement, err = fabric.PlaceDesign(probe, s.appRegion, s.app)
	if err != nil {
		return nil, fmt.Errorf("core: placing application: %w", err)
	}
	return s, nil
}

// StaticImage returns a copy of the golden static-partition content — the
// knowledge a strong local adversary (who has eavesdropped on earlier
// attestations) is assumed to possess.
func (s *System) StaticImage() *fabric.Image { return s.base.Clone() }

// Golden builds the full golden image for a nonce: static content plus
// the placed application (and, in DynPUF mode, the shipped PUF circuit's
// marker) plus the placed nonce register.
func (s *System) Golden(nonce uint64) (*fabric.Image, error) {
	im := s.base.Clone()
	pl := fabric.NewPlacer(im, s.appRegion)
	if _, err := pl.Place(s.app); err != nil {
		return nil, err
	}
	if s.cfg.KeyMode == KeyDynPUF {
		// The shipped PUF circuit occupies fabric alongside the
		// application; its configuration identifies the circuit, so the
		// verifier attests which key generation is loaded.
		if _, err := pl.Place(netlist.NonceRegister(16, s.circuitID)); err != nil {
			return nil, err
		}
	}
	if _, err := fabric.PlaceDesign(im, s.nonceRegion, netlist.NonceRegister(NonceBits, nonce)); err != nil {
		return nil, err
	}
	if len(s.cfg.ROM) > 0 {
		if err := fabric.PlaceROM(im, s.appRegion, s.cfg.ROM); err != nil {
			return nil, err
		}
	}
	return im, nil
}

// ReadDeviceROM reads the embedded ROM back from the device's live
// configuration memory.
func (s *System) ReadDeviceROM() ([]byte, error) {
	return fabric.ReadROM(s.Device.Fabric.Mem, s.appRegion, len(s.cfg.ROM))
}

// DynFrames returns the dynamic-configuration transmission order:
// application frames first, nonce frames last (the two configuration
// steps of Fig. 8).
func (s *System) DynFrames() []int {
	out := make([]int, 0, len(s.appFrames)+len(s.nonceFrames))
	out = append(out, s.appFrames...)
	out = append(out, s.nonceFrames...)
	return out
}

// RotateKey ships a fresh PUF circuit (paper §5.2.1, second option): the
// verifier enrolls the next circuit of the device's PUF, the golden
// bitstream gains the new circuit's configuration, and both sides switch
// to the new key. Only valid in KeyDynPUF mode.
func (s *System) RotateKey() error {
	if s.cfg.KeyMode != KeyDynPUF {
		return fmt.Errorf("core: key rotation requires the DynPart-PUF key mode")
	}
	s.circuitID++
	phys := &puf.Physical{DeviceID: s.cfg.DeviceID, CircuitID: s.circuitID, NoiseProb: s.cfg.PUFNoise}
	enr := puf.Enroll(phys, s.rng)
	s.DB.Store(s.cfg.DeviceID, s.circuitID, enr.Key)
	s.helper = enr.Helper.Offset
	s.Device.SetKeySource(&prover.PUFKey{Phys: phys, Helper: enr.Helper, Rng: s.rng})
	s.Verifier.Key = enr.Key
	// The shipped circuit's marker changes the golden image, so the
	// memoized patchable golden (and, via ClassKey, any cached plans of
	// the old generation) is stale.
	s.patchGolden = nil
	return nil
}

// KeyGeneration is the current key generation: the DynPUF circuit ID,
// which starts at 1 in KeyDynPUF mode and advances with every
// RotateKey. Register- and static-PUF-keyed systems report 0 (their
// key never rotates).
func (s *System) KeyGeneration() uint64 { return s.circuitID }

// Enrollment is the persistable key-provisioning state of a system —
// what registry.Durable journals so a verifier restart resumes from
// the same generation AND the same key. The key bytes are included
// because PUF enrollment draws from the device's rng stream: the key
// is not a pure function of (device, generation) and cannot be
// re-derived after a restart.
type Enrollment struct {
	Generation uint64
	Key        [16]byte
	Helper     []byte
}

// Enrollment snapshots the system's current key-provisioning state.
// The helper slice is a copy.
func (s *System) Enrollment() Enrollment {
	return Enrollment{
		Generation: s.circuitID,
		Key:        s.Verifier.Key,
		Helper:     append([]byte(nil), s.helper...),
	}
}

// RestoreEnrollment rewinds a freshly provisioned system to a persisted
// key generation: both sides switch to the stored key and helper data,
// exactly as if the intervening RotateKey calls had happened in this
// process. Only valid in KeyDynPUF mode — the one mode whose
// generations advance — and only forward (a store can never be behind a
// fresh provisioning, whose generation is 1).
func (s *System) RestoreEnrollment(e Enrollment) error {
	if s.cfg.KeyMode != KeyDynPUF {
		return fmt.Errorf("core: restoring an enrollment requires the DynPart-PUF key mode")
	}
	if e.Generation < 1 {
		return fmt.Errorf("core: cannot restore key generation %d (DynPUF generations start at 1)", e.Generation)
	}
	if len(e.Helper) != len(s.helper) {
		return fmt.Errorf("core: stored helper data is %d bytes, this device's PUF needs %d", len(e.Helper), len(s.helper))
	}
	if e.Generation == s.circuitID && e.Key == s.Verifier.Key {
		return nil
	}
	helper := append([]byte(nil), e.Helper...)
	s.circuitID = e.Generation
	s.DB.Store(s.cfg.DeviceID, s.circuitID, e.Key)
	phys := &puf.Physical{DeviceID: s.cfg.DeviceID, CircuitID: s.circuitID, NoiseProb: s.cfg.PUFNoise}
	s.Device.SetKeySource(&prover.PUFKey{Phys: phys, Helper: puf.HelperData{Offset: helper}, Rng: s.rng})
	s.Verifier.Key = e.Key
	s.helper = helper
	s.patchGolden = nil
	return nil
}

// GoldenDigest is the nonce-independent digest of the system's current
// golden image — the cross-check a durable registry stores at
// enrollment and verifies at boot, so a state directory from a
// different build, application or geometry is refused instead of
// silently producing Compromised verdicts fleet-wide. The nonce-0
// golden is memoized (shared with PatchableSpec) and cleared by
// RotateKey, so the digest always tracks the current generation.
func (s *System) GoldenDigest() ([32]byte, error) {
	if s.patchGolden == nil {
		golden, err := s.Golden(0)
		if err != nil {
			return [32]byte{}, err
		}
		s.patchGolden = golden
	}
	return fabric.NonceFreeDigest(s.patchGolden, NonceBits)
}

// KeyMode returns the system's key provisioning mode.
func (s *System) KeyMode() KeyMode { return s.cfg.KeyMode }

// AttestOptions tune one attestation.
type AttestOptions struct {
	// Nonce fixes the nonce; nil draws a fresh one.
	Nonce *uint64
	// Offset, Permutation, AppSteps, SignatureMode, Trace: see
	// verifier.Options.
	Opts verifier.Options
	// TamperDevice, if non-nil, runs after configuration completes and
	// before readback — the adversary's window.
	TamperDevice func(*prover.Device)
	// WrapVerifierChannel, if non-nil, wraps the verifier-side endpoint
	// before the protocol runs — the hook fault-tolerance experiments use
	// to put a channel.FaultEndpoint between verifier and device.
	WrapVerifierChannel func(channel.Endpoint) channel.Endpoint
}

// Plan builds the fleet-shared half of this system's attestation for a
// nonce: the golden image for the nonce, precompiled into an immutable
// attestation.Plan (pre-encoded configuration/readback messages, masked
// golden comparison frames, CAPTURE prediction). Every device of the
// same class (see ClassKey) can be attested with the same plan, each
// with its own per-session Run and enrolled key.
func (s *System) Plan(nonce uint64, opts verifier.Options) (*attestation.Plan, error) {
	golden, err := s.Golden(nonce)
	if err != nil {
		return nil, err
	}
	return s.Verifier.Plan(golden, s.DynFrames(), opts)
}

// PlanSpec builds the golden image for a nonce and returns the
// attestation.Spec describing this system's plan — the cache key input of
// attestation.PlanCache. Systems with equal ClassKey produce equal specs
// for a common nonce, so their plans dedupe in the cache.
func (s *System) PlanSpec(nonce uint64, opts verifier.Options) (attestation.Spec, error) {
	golden, err := s.Golden(nonce)
	if err != nil {
		return attestation.Spec{}, err
	}
	return s.Verifier.PlanSpec(golden, s.DynFrames(), opts), nil
}

// PatchableSpec is PlanSpec with the nonce demoted to a per-session
// input: the golden image is built once at nonce 0 (memoized until a
// key rotation changes the class) and the spec is marked
// Spec.PatchableNonce, so attestation.SpecKey ignores the nonce value
// and one cached plan serves every nonce of this system's class. Use
// Plan.WithNonce to re-nonce the built plan per session.
func (s *System) PatchableSpec(opts verifier.Options) (attestation.Spec, error) {
	if s.patchGolden == nil {
		golden, err := s.Golden(0)
		if err != nil {
			return attestation.Spec{}, err
		}
		s.patchGolden = golden
	}
	spec := s.Verifier.PlanSpec(s.patchGolden, s.DynFrames(), opts)
	spec.PatchableNonce = true
	spec.NonceBits = NonceBits
	return spec, nil
}

// PatchablePlan builds a nonce-patchable plan for this system's class:
// derive the per-session plan with WithNonce instead of rebuilding.
func (s *System) PatchablePlan(opts verifier.Options) (*attestation.Plan, error) {
	spec, err := s.PatchableSpec(opts)
	if err != nil {
		return nil, err
	}
	return attestation.NewPlan(spec)
}

// AttestPlanAgainst runs a precomputed plan against an arbitrary
// prover-side implementation — the adversary-experiment counterpart of
// AttestWithPlan, used to replay captured transcripts against patched
// (re-nonced) plans.
func (s *System) AttestPlanAgainst(plan *attestation.Plan, serve func(channel.Endpoint) error, opts AttestOptions) (*verifier.Report, error) {
	return s.runPlan(plan, serve, opts)
}

// ClassKey identifies the fleet-invariant attestation inputs of this
// system: two systems with equal class keys produce identical golden
// images for any common nonce, so one attestation.Plan serves both. The
// key covers geometry, application (by its netlist name — the built-in
// app registry names are unique), build ID, key mode, the current DynPUF
// circuit generation and the embedded ROM. Per-device identity (device
// ID, PUF enrollment, MAC key) is deliberately excluded: it is per-Run.
func (s *System) ClassKey() string {
	h := sha256.New()
	fmt.Fprintf(h, "%s|%s|%d|%d|%d|", s.Geo.Name, s.app.Name, s.cfg.BuildID, s.cfg.KeyMode, s.circuitID)
	h.Write(s.cfg.ROM)
	return hex.EncodeToString(h.Sum(nil)[:16])
}

// serveFunc returns the prover-side handler for one attestation,
// wrapping the device's Serve loop with the adversary hook if requested.
func (s *System) serveFunc(opts AttestOptions) func(channel.Endpoint) error {
	if opts.TamperDevice == nil {
		return s.Device.Serve
	}
	// The adversary's window is after configuration and before
	// readback: the hook fires on the prover side when the device is
	// about to process the first ICAP_readback command. Under the
	// reliable transport the command rides inside a sequence envelope
	// (type + seq + crc before the inner message), so the tap peeks at
	// both spellings.
	isReadback := func(m []byte) bool {
		if len(m) > 0 && m[0] == byte(protocol.MsgICAPReadback) {
			return true
		}
		const envHdr = 9 // MsgSeqReq type byte + uint32 seq + uint32 crc
		return len(m) > envHdr && m[0] == byte(protocol.MsgSeqReq) &&
			m[envHdr] == byte(protocol.MsgICAPReadback)
	}
	return func(ep channel.Endpoint) error {
		armed := false
		tapped := &channel.Tap{Inner: ep, OnRecv: func(m []byte) []byte {
			if !armed && isReadback(m) {
				armed = true
				opts.TamperDevice(s.Device)
			}
			return m
		}}
		return s.Device.Serve(tapped)
	}
}

// Attest runs one full attestation over a simulated lab channel and
// returns the verifier's report.
func (s *System) Attest(opts AttestOptions) (*verifier.Report, error) {
	return s.AttestAgainst(s.serveFunc(opts), opts)
}

// AttestWithPlan runs one attestation using a precomputed shared plan —
// the per-device path of a fleet sweep. The plan fixes the nonce (baked
// into its golden image) and the plan-shaping options; opts contributes
// only the per-run knobs (Retry, Trace, Events, adversary and channel
// hooks).
func (s *System) AttestWithPlan(plan *attestation.Plan, opts AttestOptions) (*verifier.Report, error) {
	return s.runPlan(plan, s.serveFunc(opts), opts)
}

// AttestAgainst runs the verifier against an arbitrary prover-side
// implementation — the hook the adversary experiments use to substitute
// impersonators, proxies and replayers for the genuine device.
func (s *System) AttestAgainst(serve func(channel.Endpoint) error, opts AttestOptions) (*verifier.Report, error) {
	nonce := s.rng.Uint64()
	if opts.Nonce != nil {
		nonce = *opts.Nonce
	}
	plan, err := s.Plan(nonce, opts.Opts)
	if err != nil {
		return nil, err
	}
	return s.runPlan(plan, serve, opts)
}

// runPlan wires one per-session Run over the simulated lab link.
func (s *System) runPlan(plan *attestation.Plan, serve func(channel.Endpoint) error, opts AttestOptions) (*verifier.Report, error) {
	lat := s.cfg.LabLatency
	if lat == 0 {
		lat = timing.LabCommandLatency
	} else if lat < 0 {
		lat = 0
	}
	// The simulated lab link carries real Ethernet frames: the verifier
	// is a lab host, the prover the SACHa ETH core (Fig. 10).
	var prvMAC ethsim.MAC
	prvMAC[0] = 0x02 // locally administered
	binary.BigEndian.PutUint32(prvMAC[2:6], uint32(s.cfg.DeviceID))
	vrfEP, prvEP := channel.SimPair(channel.SimConfig{
		Timeline:       s.ChannelTime,
		MessageLatency: lat,
		Ethernet:       true,
		AddrA:          ethsim.MAC{0x02, 0xFF, 0, 0, 0, 1}, // verifier host
		AddrB:          prvMAC,
	})

	serveErr := make(chan error, 1)
	go func() {
		serveErr <- serve(prvEP)
	}()

	var vep channel.Endpoint = vrfEP
	if opts.WrapVerifierChannel != nil {
		vep = opts.WrapVerifierChannel(vep)
	}
	rep, err := s.Verifier.RunPlan(vep, plan, opts.Opts)
	vep.Close()
	vrfEP.Close()
	if sErr := <-serveErr; sErr != nil && err == nil {
		return rep, fmt.Errorf("core: prover: %w", sErr)
	}
	return rep, err
}

// VirtualDuration sums the virtual time of channel, prover and verifier —
// the end-to-end protocol duration in the simulated lab.
func (s *System) VirtualDuration() time.Duration {
	return s.ChannelTime.Total() + s.Device.Timeline.Total() + s.Verifier.Timeline.Total()
}

// ResetTimelines clears all virtual-time accounting.
func (s *System) ResetTimelines() {
	s.ChannelTime.Reset()
	s.Device.Timeline.Reset()
	s.Verifier.Timeline.Reset()
}
