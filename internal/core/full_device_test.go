package core

import (
	"testing"

	"sacha/internal/device"
	"sacha/internal/netlist"
	"sacha/internal/prover"
)

// TestFullXC6VLX240TAttestation runs the complete protocol on the paper's
// actual device: 26,400 ICAP_config commands, 28,488 readbacks, one MAC —
// the exact message counts of Table 4. Skipped under -short.
func TestFullXC6VLX240TAttestation(t *testing.T) {
	if testing.Short() {
		t.Skip("full-device attestation is slow; run without -short")
	}
	sys, err := NewSystem(Config{
		Geo:        device.XC6VLX240T(),
		App:        netlist.Blinker(16),
		KeyMode:    KeyStatPUF,
		DeviceID:   1,
		LabLatency: -1,
		Seed:       1,
	})
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Attest(AttestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("honest XC6VLX240T rejected: MACOK=%v ConfigOK=%v mismatches=%d",
			rep.MACOK, rep.ConfigOK, len(rep.Mismatches))
	}
	if rep.FramesConfigured != 26400 {
		t.Errorf("configured %d frames, want 26400 (paper Table 4 A1)", rep.FramesConfigured)
	}
	if rep.FramesRead != 28488 {
		t.Errorf("read %d frames, want 28488 (paper Table 4 A3)", rep.FramesRead)
	}
	// The device-side ICAP moved one pad frame per write and one per
	// readback; the port counters reflect the committed/streamed frames.
	if sys.Device.Port.FramesWritten() != 26400 {
		t.Errorf("ICAP committed %d frames", sys.Device.Port.FramesWritten())
	}
	if sys.Device.Port.FramesRead() != 28488 {
		t.Errorf("ICAP read %d frames", sys.Device.Port.FramesRead())
	}

	// Tamper and re-attest: still detected at full scale.
	target := sys.DynFrames()[12345]
	rep, err = sys.Attest(AttestOptions{TamperDevice: func(d *prover.Device) {
		d.Fabric.Mem.Frame(target)[40] ^= 1
	}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("tampered XC6VLX240T accepted")
	}
}

func TestBuildGoldenDeterministic(t *testing.T) {
	geo := device.SmallLX()
	app := netlist.Counter(8)
	a, dynA, err := BuildGolden(geo, app, 5, 77)
	if err != nil {
		t.Fatal(err)
	}
	b, dynB, err := BuildGolden(geo, app, 5, 77)
	if err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("BuildGolden not deterministic")
	}
	if len(dynA) != len(dynB) {
		t.Fatal("dynamic frame lists differ")
	}
	for i := range dynA {
		if dynA[i] != dynB[i] {
			t.Fatal("dynamic frame order differs")
		}
	}
	// A different build ID must change only static frames; a different
	// nonce only nonce-column frames.
	c, _, err := BuildGolden(geo, app, 6, 77)
	if err != nil {
		t.Fatal(err)
	}
	if a.Equal(c) {
		t.Fatal("build ID ignored")
	}
	d, _, err := BuildGolden(geo, app, 5, 78)
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for i := 0; i < geo.NumFrames(); i++ {
		fa, fd := a.Frame(i), d.Frame(i)
		for w := range fa {
			if fa[w] != fd[w] {
				diff++
				break
			}
		}
	}
	if diff == 0 || diff > 42 {
		t.Fatalf("nonce change touched %d frames, want 1..42 (one CLB column)", diff)
	}
}

func TestBuildBootMemMatchesSystem(t *testing.T) {
	geo := device.SmallLX()
	boot := BuildBootMem(geo, 9)
	sys, err := NewSystem(Config{Geo: geo, BuildID: 9, LabLatency: -1})
	if err != nil {
		t.Fatal(err)
	}
	for _, fr := range boot.Frames {
		got := sys.Device.Fabric.Mem.Frame(fr.Index)
		for w := range fr.Words {
			if got[w] != fr.Words[w] {
				t.Fatalf("BootMem frame %d differs from system provisioning", fr.Index)
			}
		}
	}
}
