package attack

import (
	"strings"
	"testing"

	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
	"sacha/internal/obs"
)

func newSmallSystem() (*core.System, error) {
	return core.NewSystem(core.Config{
		Geo:        device.SmallLX(),
		App:        netlist.Blinker(8),
		KeyMode:    core.KeyStatPUF,
		DeviceID:   7,
		LabLatency: -1,
		Seed:       11,
	})
}

func mustSystem(t *testing.T) *core.System {
	t.Helper()
	sys, err := newSmallSystem()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestDynPartModuleDetected(t *testing.T) {
	r := DynPartModule(mustSystem(t))
	if !r.Detected {
		t.Fatalf("not detected: %+v", r)
	}
	if !strings.Contains(r.Mechanism, "bitstream") {
		t.Errorf("expected bitstream mismatch, got %q", r.Mechanism)
	}
}

func TestStatPartModuleDetected(t *testing.T) {
	r := StatPartModule(mustSystem(t))
	if !r.Detected {
		t.Fatalf("not detected: %+v", r)
	}
}

func TestImpersonationDetected(t *testing.T) {
	r := Impersonation(mustSystem(t))
	if !r.Detected {
		t.Fatalf("not detected: %+v", r)
	}
	// The impersonator's content is perfect; only the MAC can catch it.
	if r.Mechanism != "MAC mismatch" {
		t.Errorf("expected pure MAC mismatch, got %q (err=%v)", r.Mechanism, r.Err)
	}
}

func TestExternalProxyDetected(t *testing.T) {
	r := ExternalProxy(mustSystem(t))
	if !r.Detected {
		t.Fatalf("not detected: %+v", r)
	}
	if !strings.Contains(r.Mechanism, "bitstream") {
		t.Errorf("expected bitstream mismatch (pin table is configuration), got %q", r.Mechanism)
	}
}

func TestReplayDetected(t *testing.T) {
	r := Replay(mustSystem(t))
	if r.Err != nil && strings.Contains(r.Err.Error(), "recording run failed") {
		t.Fatalf("setup failed: %v", r.Err)
	}
	if !r.Detected {
		t.Fatalf("not detected: %+v", r)
	}
	// The paper's argument: the MAC of the old transcript is still valid,
	// the *nonce* is what makes the replay visible.
	if !strings.Contains(r.Mechanism, "nonce") && !strings.Contains(r.Mechanism, "bitstream") {
		t.Errorf("unexpected mechanism %q", r.Mechanism)
	}
}

func TestNonceReuseDetected(t *testing.T) {
	// The rotated session's frames are honest — only the substituted
	// stale H_Dev is wrong — so detection must come from the MAC alone,
	// and each WithNonce rotation must show up in the patch counter.
	patches := obs.Default().Counter("sacha_plan_patches_total",
		"Nonce patches applied to existing plans (Plan.WithNonce).")
	before := patches.Value()
	r := NonceReuse(mustSystem(t))
	if r.Err != nil {
		t.Fatalf("setup failed: %v", r.Err)
	}
	if !r.Detected {
		t.Fatalf("not detected: %+v", r)
	}
	if r.Mechanism != "MAC mismatch" {
		t.Errorf("expected pure MAC mismatch (frames were honest), got %q", r.Mechanism)
	}
	if got := patches.Value() - before; got < 2 {
		t.Errorf("plan-patch counter advanced by %d, want >= 2 (two nonce rotations)", got)
	}
}

func TestStaleNonceReplayDetected(t *testing.T) {
	r := StaleNonceReplay(mustSystem(t))
	if r.Err != nil && strings.Contains(r.Err.Error(), "recording run failed") {
		t.Fatalf("setup failed: %v", r.Err)
	}
	if !r.Detected {
		t.Fatalf("not detected: %+v", r)
	}
	// The replayed transcript is self-consistent, so the MAC verifies;
	// the rotated nonce in the patched comparison frames is the only
	// tell. A MAC-mismatch verdict here would mean WithNonce rotated the
	// configuration but not H_Vrf's expected frames.
	if !strings.Contains(r.Mechanism, "nonce") {
		t.Errorf("expected stale-nonce mechanism with valid MAC, got %q (err=%v)", r.Mechanism, r.Err)
	}
}

func TestRemoteUpdateTamperDetected(t *testing.T) {
	r := RemoteUpdateTamper(mustSystem(t))
	if !r.Detected {
		t.Fatalf("not detected: %+v", r)
	}
	if r.Class != "remote" {
		t.Errorf("class %q, want remote (§3 taxonomy)", r.Class)
	}
}

// The MITM's corruption cadence must scale with the geometry: a fixed
// every-500th-frame period exceeded TinyLX's whole dynamic partition,
// so the attack silently became an honest run there (caught by the
// campaign soak, which round-robins every adversary over a mixed
// fleet).
func TestRemoteUpdateTamperDetectedOnTiny(t *testing.T) {
	sys, err := core.NewSystem(core.Config{
		Geo:        device.TinyLX(),
		App:        netlist.Blinker(8),
		KeyMode:    core.KeyStatPUF,
		DeviceID:   7,
		LabLatency: -1,
		Seed:       11,
	})
	if err != nil {
		t.Fatal(err)
	}
	r := RemoteUpdateTamper(sys)
	if !r.Detected {
		t.Fatalf("not detected on TinyLX: %+v", r)
	}
	if r.Err != nil {
		t.Fatalf("want verdict, got transport error: %v", r.Err)
	}
}

func TestAllAdversariesDetected(t *testing.T) {
	results, err := All(newSmallSystem)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("expected 8 adversaries (paper §7.2, §3 remote, freshness rotation), got %d", len(results))
	}
	for _, r := range results {
		if !r.Detected {
			t.Errorf("%s: NOT detected (%s)", r.Name, r.Mechanism)
		}
		if r.Class == "" || r.Description == "" {
			t.Errorf("%s: incomplete metadata", r.Name)
		}
	}
}

// TestHonestBaselineStillAccepted guards against the attacks package
// breaking honest runs (e.g. via shared state).
func TestHonestBaselineStillAccepted(t *testing.T) {
	sys := mustSystem(t)
	rep, err := sys.Attest(core.AttestOptions{})
	if err != nil || !rep.Accepted {
		t.Fatalf("honest run rejected: %v", err)
	}
}
