package attack

import (
	"strings"
	"testing"

	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
)

func newSmallSystem() (*core.System, error) {
	return core.NewSystem(core.Config{
		Geo:        device.SmallLX(),
		App:        netlist.Blinker(8),
		KeyMode:    core.KeyStatPUF,
		DeviceID:   7,
		LabLatency: -1,
		Seed:       11,
	})
}

func mustSystem(t *testing.T) *core.System {
	t.Helper()
	sys, err := newSmallSystem()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestDynPartModuleDetected(t *testing.T) {
	r := DynPartModule(mustSystem(t))
	if !r.Detected {
		t.Fatalf("not detected: %+v", r)
	}
	if !strings.Contains(r.Mechanism, "bitstream") {
		t.Errorf("expected bitstream mismatch, got %q", r.Mechanism)
	}
}

func TestStatPartModuleDetected(t *testing.T) {
	r := StatPartModule(mustSystem(t))
	if !r.Detected {
		t.Fatalf("not detected: %+v", r)
	}
}

func TestImpersonationDetected(t *testing.T) {
	r := Impersonation(mustSystem(t))
	if !r.Detected {
		t.Fatalf("not detected: %+v", r)
	}
	// The impersonator's content is perfect; only the MAC can catch it.
	if r.Mechanism != "MAC mismatch" {
		t.Errorf("expected pure MAC mismatch, got %q (err=%v)", r.Mechanism, r.Err)
	}
}

func TestExternalProxyDetected(t *testing.T) {
	r := ExternalProxy(mustSystem(t))
	if !r.Detected {
		t.Fatalf("not detected: %+v", r)
	}
	if !strings.Contains(r.Mechanism, "bitstream") {
		t.Errorf("expected bitstream mismatch (pin table is configuration), got %q", r.Mechanism)
	}
}

func TestReplayDetected(t *testing.T) {
	r := Replay(mustSystem(t))
	if r.Err != nil && strings.Contains(r.Err.Error(), "recording run failed") {
		t.Fatalf("setup failed: %v", r.Err)
	}
	if !r.Detected {
		t.Fatalf("not detected: %+v", r)
	}
	// The paper's argument: the MAC of the old transcript is still valid,
	// the *nonce* is what makes the replay visible.
	if !strings.Contains(r.Mechanism, "nonce") && !strings.Contains(r.Mechanism, "bitstream") {
		t.Errorf("unexpected mechanism %q", r.Mechanism)
	}
}

func TestRemoteUpdateTamperDetected(t *testing.T) {
	r := RemoteUpdateTamper(mustSystem(t))
	if !r.Detected {
		t.Fatalf("not detected: %+v", r)
	}
	if r.Class != "remote" {
		t.Errorf("class %q, want remote (§3 taxonomy)", r.Class)
	}
}

func TestAllAdversariesDetected(t *testing.T) {
	results, err := All(newSmallSystem)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 6 {
		t.Fatalf("expected 6 adversaries (paper §7.2 + §3 remote), got %d", len(results))
	}
	for _, r := range results {
		if !r.Detected {
			t.Errorf("%s: NOT detected (%s)", r.Name, r.Mechanism)
		}
		if r.Class == "" || r.Description == "" {
			t.Errorf("%s: incomplete metadata", r.Name)
		}
	}
}

// TestHonestBaselineStillAccepted guards against the attacks package
// breaking honest runs (e.g. via shared state).
func TestHonestBaselineStillAccepted(t *testing.T) {
	sys := mustSystem(t)
	rep, err := sys.Attest(core.AttestOptions{})
	if err != nil || !rep.Accepted {
		t.Fatalf("honest run rejected: %v", err)
	}
}
