// Package attack implements the adversaries of the paper's security
// evaluation (§7.2) as executable experiments. Each attack runs a full
// attestation against a compromised device, an impersonator or a
// man-in-the-middle, and reports whether SACHa detected it and through
// which mechanism (MAC failure or masked-bitstream mismatch).
package attack

import (
	"fmt"
	"io"
	"math/rand"

	"sacha/internal/channel"
	"sacha/internal/cmac"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/protocol"
	"sacha/internal/prover"
	"sacha/internal/verifier"
)

// Result is the outcome of one adversary experiment.
type Result struct {
	// Name and Class identify the threat (paper §3 taxonomy: remote or
	// local adversary).
	Name  string
	Class string
	// Description summarises the attack.
	Description string
	// Detected reports whether the verifier rejected the run.
	Detected bool
	// Mechanism names what caught it.
	Mechanism string
	// Err is a protocol-level failure (also a detection, e.g. a replayer
	// returning frames in the wrong order).
	Err error
}

func verdict(rep *verifier.Report, err error) (bool, string) {
	if err != nil {
		return true, "protocol failure"
	}
	switch {
	case !rep.MACOK && !rep.ConfigOK:
		return true, "MAC mismatch + bitstream mismatch"
	case !rep.MACOK:
		return true, "MAC mismatch"
	case !rep.ConfigOK:
		return true, "masked bitstream mismatch"
	}
	return false, "not detected"
}

// DynPartModule is the first §7.2 threat: a local adversary adds a
// malicious hardware module to the dynamic partition after the verifier's
// configuration pass. The bounded configuration memory forces the module
// to live in DynMem, where readback exposes it.
func DynPartModule(sys *core.System) Result {
	r := Result{
		Name:        "malicious module in DynPart",
		Class:       "local",
		Description: "adversary splices a LUT ring into spare DynPart slots after configuration",
	}
	rep, err := sys.Attest(core.AttestOptions{TamperDevice: func(d *prover.Device) {
		// Use a high CLB column of the last row — guaranteed free of the
		// small demo application, i.e. genuinely "hidden" space.
		geo := d.Geo
		site := fabric.Site{Row: geo.Rows - 1, CLBCol: geo.ColumnsOf(device.ColCLB) - 2, CLBInCol: 3}
		var sels [6]uint64
		sels[0] = fabric.SelConst1
		if err := fabric.WriteLUT(d.Fabric.Mem, site, 5, true, 0x1, sels); err != nil {
			panic(err)
		}
	}})
	r.Err = err
	r.Detected, r.Mechanism = verdict(rep, err)
	return r
}

// StatPartModule is the second §7.2 threat: tampering with the static
// partition itself. The StatPart is minimal, so any addition displaces
// configuration bits that the full-memory readback covers.
func StatPartModule(sys *core.System) Result {
	r := Result{
		Name:        "malicious module in StatPart",
		Class:       "local",
		Description: "adversary rewrites static-partition configuration bits",
	}
	rep, err := sys.Attest(core.AttestOptions{TamperDevice: func(d *prover.Device) {
		statFrames := fabric.StatRegion(d.Geo).Frames()
		target := statFrames[len(statFrames)/3]
		d.Fabric.Mem.Frame(target)[17] ^= 0x00400000
	}})
	r.Err = err
	r.Detected, r.Mechanism = verdict(rep, err)
	return r
}

// Impersonation is the third §7.2 threat: another device mimics the
// prover. The impersonator is given maximal knowledge — the full static
// golden content and every configured frame — but not the PUF-backed key.
func Impersonation(sys *core.System) Result {
	r := Result{
		Name:        "prover impersonation",
		Class:       "local",
		Description: "key-less device with full bitstream knowledge answers the protocol",
	}
	static := sys.StaticImage()
	var guessedKey [16]byte
	rand.New(rand.NewSource(0xBAD)).Read(guessedKey[:])

	rep, err := sys.AttestAgainst(func(ep channel.Endpoint) error {
		return serveImpersonator(ep, static, guessedKey)
	}, core.AttestOptions{})
	r.Err = err
	r.Detected, r.Mechanism = verdict(rep, err)
	return r
}

// serveImpersonator answers the protocol from stored frames using a
// guessed key.
func serveImpersonator(ep channel.Endpoint, content *fabric.Image, key [16]byte) error {
	mac, err := cmac.New(key[:])
	if err != nil {
		return err
	}
	started := false
	for {
		raw, err := ep.Recv()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		m, err := protocol.Decode(raw)
		if err != nil {
			return err
		}
		switch m.Type {
		case protocol.MsgICAPConfig:
			content.SetFrame(int(m.FrameIndex), m.Words)
		case protocol.MsgICAPReadback:
			if !started {
				started = true
			}
			words := content.Frame(int(m.FrameIndex))
			mac.Update(wordsToBytes(words))
			resp, _ := (&protocol.Message{Type: protocol.MsgFrameData, FrameIndex: m.FrameIndex, Words: words}).Encode()
			if err := ep.Send(resp); err != nil {
				return err
			}
		case protocol.MsgMACChecksum:
			tag := mac.Sum()
			resp, _ := (&protocol.Message{Type: protocol.MsgMACValue, MAC: tag}).Encode()
			if err := ep.Send(resp); err != nil {
				return err
			}
		default:
			resp, _ := protocol.Errorf("impersonator: unsupported %v", m.Type).Encode()
			if err := ep.Send(resp); err != nil {
				return err
			}
		}
	}
}

func wordsToBytes(words []uint32) []byte {
	out := make([]byte, 0, len(words)*4)
	for _, w := range words {
		out = append(out, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
	}
	return out
}

// ExternalProxy is the fourth §7.2 threat: the adversary wires internal
// signals to the pins so an external computer can take over work while
// the FPGA runs malicious logic. The pin table lives in configuration
// memory, so the extra connection is visible to the verifier.
func ExternalProxy(sys *core.System) Result {
	r := Result{
		Name:        "external computing device",
		Class:       "local",
		Description: "adversary routes an internal net to an unused pad for an external helper",
	}
	rep, err := sys.Attest(core.AttestOptions{TamperDevice: func(d *prover.Device) {
		// Route some net to the last pin of the device (unused by the
		// golden design).
		pin := fabric.NumPins(d.Geo) - 1
		if err := fabric.WriteIOBPin(d.Fabric.Mem, pin, true, fabric.SelConst1); err != nil {
			panic(err)
		}
	}})
	r.Err = err
	r.Detected, r.Mechanism = verdict(rep, err)
	return r
}

// Replay is the fifth §7.2 threat: the adversary records an honest
// attestation and replays its responses while the device runs malicious
// logic. The fresh nonce in the new challenge makes the recorded
// transcript stale.
func Replay(sys *core.System) Result {
	r := Result{
		Name:        "replay attack",
		Class:       "local",
		Description: "adversary replays a recorded transcript against a fresh challenge",
	}

	// Step 1: record an honest attestation's responses.
	var recorded [][]byte
	recErr := make(chan error, 1)
	honest := func(ep channel.Endpoint) error {
		tap := &channel.Tap{Inner: ep, OnSend: func(m []byte) []byte {
			cp := make([]byte, len(m))
			copy(cp, m)
			recorded = append(recorded, cp)
			return m
		}}
		err := sys.Device.Serve(tap)
		recErr <- err
		return err
	}
	n1 := uint64(0x1111)
	if rep, err := sys.AttestAgainst(honest, core.AttestOptions{Nonce: &n1}); err != nil || !rep.Accepted {
		r.Err = fmt.Errorf("attack: honest recording run failed: %v", err)
		return r
	}
	<-recErr

	// Step 2: replay against a fresh nonce.
	n2 := uint64(0x2222)
	rep, err := sys.AttestAgainst(func(ep channel.Endpoint) error {
		i := 0
		for {
			raw, err := ep.Recv()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			m, err := protocol.Decode(raw)
			if err != nil {
				return err
			}
			switch m.Type {
			case protocol.MsgICAPConfig:
				// Dropped: the adversary does not apply the new challenge.
			case protocol.MsgICAPReadback, protocol.MsgMACChecksum:
				if i >= len(recorded) {
					return fmt.Errorf("attack: replay transcript exhausted")
				}
				if err := ep.Send(recorded[i]); err != nil {
					return err
				}
				i++
			default:
				resp, _ := protocol.Errorf("replayer: unsupported %v", m.Type).Encode()
				if err := ep.Send(resp); err != nil {
					return err
				}
			}
		}
	}, core.AttestOptions{Nonce: &n2})
	r.Err = err
	r.Detected, r.Mechanism = verdict(rep, err)
	if r.Detected && err == nil && rep.MACOK {
		r.Mechanism = "stale nonce in masked bitstream (MAC of old transcript still valid)"
	}
	return r
}

// NonceReuse targets the freshness policy engine's patched-plan path: an
// adversary records the MAC value (H_Dev) of an honest session run under
// one nonce of a patchable plan and substitutes it for the checksum
// answer of a later session whose plan was rotated to a fresh nonce with
// Plan.WithNonce. If the patch failed to rotate the verifier's H_Vrf —
// i.e. the patched expected frames still described the old nonce — the
// stale MAC would verify and the device could skip attesting. The MAC
// must mismatch.
func NonceReuse(sys *core.System) Result {
	r := Result{
		Name:        "H_Dev reuse across nonce rotation",
		Class:       "local",
		Description: "adversary answers a rotated-nonce challenge with the previous session's recorded MAC",
	}
	plan, err := sys.PatchablePlan(verifier.Options{})
	if err != nil {
		r.Err = fmt.Errorf("attack: building patchable plan: %w", err)
		return r
	}

	// Session 1: honest run at nonce A; record the device's MAC response.
	planA, err := plan.WithNonce(0xA11CE)
	if err != nil {
		r.Err = err
		return r
	}
	var staleMAC []byte
	honest := func(ep channel.Endpoint) error {
		tap := &channel.Tap{Inner: ep, OnSend: func(m []byte) []byte {
			if len(m) > 0 && m[0] == byte(protocol.MsgMACValue) {
				staleMAC = append([]byte(nil), m...)
			}
			return m
		}}
		return sys.Device.Serve(tap)
	}
	if rep, err := sys.AttestPlanAgainst(planA, honest, core.AttestOptions{}); err != nil || !rep.Accepted {
		r.Err = fmt.Errorf("attack: honest recording run failed: %v", err)
		return r
	}
	if staleMAC == nil {
		r.Err = fmt.Errorf("attack: recording run produced no MAC message")
		return r
	}

	// Session 2: the plan rotates to nonce B; the device cooperates fully
	// but swaps in the stale H_Dev at checksum time.
	planB, err := plan.WithNonce(0xB0B)
	if err != nil {
		r.Err = err
		return r
	}
	rep, err := sys.AttestPlanAgainst(planB, func(ep channel.Endpoint) error {
		tap := &channel.Tap{Inner: ep, OnSend: func(m []byte) []byte {
			if len(m) > 0 && m[0] == byte(protocol.MsgMACValue) {
				return staleMAC
			}
			return m
		}}
		return sys.Device.Serve(tap)
	}, core.AttestOptions{})
	r.Err = err
	r.Detected, r.Mechanism = verdict(rep, err)
	return r
}

// StaleNonceReplay is the cross-session variant: the adversary replays a
// complete transcript (frames and MAC) recorded under one nonce of a
// patchable plan against a session whose plan was patched to a fresh
// nonce. The replayed transcript is self-consistent — its MAC verifies —
// so only the nonce bits in the masked bitstream comparison can expose
// it. This is the adversarial proof that WithNonce really rotates the
// expected comparison frames, not just the configuration packets.
func StaleNonceReplay(sys *core.System) Result {
	r := Result{
		Name:        "stale-nonce transcript replay",
		Class:       "local",
		Description: "adversary replays a recorded patchable-plan transcript against a rotated nonce",
	}
	plan, err := sys.PatchablePlan(verifier.Options{})
	if err != nil {
		r.Err = fmt.Errorf("attack: building patchable plan: %w", err)
		return r
	}

	planA, err := plan.WithNonce(0x1111)
	if err != nil {
		r.Err = err
		return r
	}
	var recorded [][]byte
	honest := func(ep channel.Endpoint) error {
		tap := &channel.Tap{Inner: ep, OnSend: func(m []byte) []byte {
			recorded = append(recorded, append([]byte(nil), m...))
			return m
		}}
		return sys.Device.Serve(tap)
	}
	if rep, err := sys.AttestPlanAgainst(planA, honest, core.AttestOptions{}); err != nil || !rep.Accepted {
		r.Err = fmt.Errorf("attack: honest recording run failed: %v", err)
		return r
	}

	planB, err := plan.WithNonce(0x2222)
	if err != nil {
		r.Err = err
		return r
	}
	rep, err := sys.AttestPlanAgainst(planB, func(ep channel.Endpoint) error {
		i := 0
		for {
			raw, err := ep.Recv()
			if err == io.EOF {
				return nil
			}
			if err != nil {
				return err
			}
			m, err := protocol.Decode(raw)
			if err != nil {
				return err
			}
			switch m.Type {
			case protocol.MsgICAPConfig, protocol.MsgICAPConfigBatch:
				// Dropped: the adversary ignores the rotated challenge.
			case protocol.MsgICAPReadback, protocol.MsgMACChecksum:
				if i >= len(recorded) {
					return fmt.Errorf("attack: replay transcript exhausted")
				}
				if err := ep.Send(recorded[i]); err != nil {
					return err
				}
				i++
			default:
				resp, _ := protocol.Errorf("replayer: unsupported %v", m.Type).Encode()
				if err := ep.Send(resp); err != nil {
					return err
				}
			}
		}
	}, core.AttestOptions{})
	r.Err = err
	r.Detected, r.Mechanism = verdict(rep, err)
	if r.Detected && err == nil && rep.MACOK {
		r.Mechanism = "stale nonce in masked bitstream (MAC of old transcript still valid)"
	}
	return r
}

// RemoteUpdateTamper is the "remote adversary" of the paper's §3
// taxonomy (the Stuxnet-style threat): a man-in-the-middle alters
// configuration frames in flight, attempting a malicious remote update.
// The device faithfully configures what it receives, so the readback
// exposes the altered content against the verifier's golden image.
func RemoteUpdateTamper(sys *core.System) Result {
	r := Result{
		Name:        "malicious remote update (MITM)",
		Class:       "remote",
		Description: "adversary rewrites ICAP_config frames between verifier and device",
	}
	// Corrupt a handful of frames spread across the update. The cadence
	// must scale with the geometry: a fixed period larger than the
	// dynamic partition's frame count would never fire on small devices
	// and the "attack" would silently degenerate into an honest run.
	period := len(fabric.DynRegion(sys.Geo).Frames()) / 8
	if period < 1 {
		period = 1
	}
	tampered := 0
	rep, err := sys.AttestAgainst(func(ep channel.Endpoint) error {
		mitm := &channel.Tap{Inner: ep, OnRecv: func(m []byte) []byte {
			if len(m) > 0 && m[0] == byte(protocol.MsgICAPConfig) {
				tampered++
				if tampered%period == 0 {
					cp := make([]byte, len(m))
					copy(cp, m)
					cp[len(cp)/2] ^= 0x20
					return cp
				}
			}
			return m
		}}
		return sys.Device.Serve(mitm)
	}, core.AttestOptions{})
	r.Err = err
	r.Detected, r.Mechanism = verdict(rep, err)
	return r
}

// Named is one registered adversary: a stable key for schedulers and
// reports, plus the experiment function.
type Named struct {
	Key string
	Fn  func(*core.System) Result
}

// Registry lists every implemented adversary in a stable order — the
// single source All and the campaign scheduler draw from, so a new
// adversary added here is automatically replayed one-shot (All) and
// soaked long-horizon (internal/campaign).
func Registry() []Named {
	return []Named{
		{Key: "dynpart-module", Fn: DynPartModule},
		{Key: "statpart-module", Fn: StatPartModule},
		{Key: "impersonation", Fn: Impersonation},
		{Key: "external-proxy", Fn: ExternalProxy},
		{Key: "replay", Fn: Replay},
		{Key: "nonce-reuse", Fn: NonceReuse},
		{Key: "stale-nonce-replay", Fn: StaleNonceReplay},
		{Key: "remote-update-tamper", Fn: RemoteUpdateTamper},
	}
}

// All runs every §7.2 adversary plus the §3 remote adversary, each
// against a freshly provisioned system from newSys.
func All(newSys func() (*core.System, error)) ([]Result, error) {
	reg := Registry()
	out := make([]Result, 0, len(reg))
	for _, atk := range reg {
		sys, err := newSys()
		if err != nil {
			return nil, err
		}
		out = append(out, atk.Fn(sys))
	}
	return out, nil
}
