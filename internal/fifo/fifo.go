// Package fifo models the dual-clock FIFOs of the SACHa static partition
// (Fig. 10: the readback FIFO between the ICAP and TX domains, and the
// header FIFO feeding the ETH core).
//
// A hardware dual-clock FIFO synchronises its read and write pointers
// across clock domains as Gray codes, so that a pointer sampled mid-change
// is off by at most one position and never tears. The model implements
// exactly that structure: binary pointers internally, Gray-coded snapshots
// exchanged between the two sides, and full/empty derived from the
// synchronised (hence possibly stale, always conservative) remote pointer.
package fifo

import "fmt"

// DualClock is a dual-clock FIFO of 32-bit words with a power-of-two
// capacity.
type DualClock struct {
	mem  []uint32
	mask uint32

	wptr, rptr uint32 // binary pointers, one extra wrap bit
	// wptrGraySync and rptrGraySync are the pointers as visible in the
	// other clock domain after the two-flop synchroniser: updated only
	// when Sync ticks the corresponding domain.
	wptrGraySync, rptrGraySync uint32
	// one-stage synchroniser pipelines.
	wptrGrayPipe, rptrGrayPipe uint32
}

// New returns a FIFO with the given capacity (a power of two ≥ 2).
func New(capacity int) (*DualClock, error) {
	if capacity < 2 || capacity&(capacity-1) != 0 {
		return nil, fmt.Errorf("fifo: capacity %d is not a power of two ≥ 2", capacity)
	}
	return &DualClock{mem: make([]uint32, capacity), mask: uint32(capacity - 1)}, nil
}

// Cap returns the capacity in words.
func (f *DualClock) Cap() int { return len(f.mem) }

func gray(b uint32) uint32 { return b ^ b>>1 }

// pgray returns the pointer's Gray code in its native (N+1)-bit width —
// one wrap bit above the address bits, exactly as the hardware registers
// it. Without the width reduction, carries past the wrap bit would break
// the full/empty identities.
func (f *DualClock) pgray(p uint32) uint32 {
	return gray(p & (2*uint32(len(f.mem)) - 1))
}

// Full reports whether the write side sees the FIFO as full. It compares
// the local write pointer with the *synchronised* read pointer, so it may
// be pessimistic (report full when space just freed) but never optimistic.
func (f *DualClock) Full() bool {
	// Full when the Gray-coded pointers differ only in the top two bits.
	depth := uint32(len(f.mem))
	return f.pgray(f.wptr) == (f.rptrGraySync ^ depth ^ depth>>1)
}

// Empty reports whether the read side sees the FIFO as empty, against the
// synchronised write pointer.
func (f *DualClock) Empty() bool {
	return f.pgray(f.rptr) == f.wptrGraySync
}

// Push writes one word in the write clock domain. It fails when the FIFO
// is full from the writer's view.
func (f *DualClock) Push(v uint32) error {
	if f.Full() {
		return fmt.Errorf("fifo: full")
	}
	f.mem[f.wptr&f.mask] = v
	f.wptr++
	return nil
}

// Pop reads one word in the read clock domain. It fails when the FIFO is
// empty from the reader's view.
func (f *DualClock) Pop() (uint32, error) {
	if f.Empty() {
		return 0, fmt.Errorf("fifo: empty")
	}
	v := f.mem[f.rptr&f.mask]
	f.rptr++
	return v, nil
}

// SyncWriteDomain ticks the write clock's pointer synchroniser: the read
// pointer's Gray code advances one stage toward the write side.
func (f *DualClock) SyncWriteDomain() {
	f.rptrGraySync = f.rptrGrayPipe
	f.rptrGrayPipe = f.pgray(f.rptr)
}

// SyncReadDomain ticks the read clock's pointer synchroniser: the write
// pointer's Gray code advances one stage toward the read side.
func (f *DualClock) SyncReadDomain() {
	f.wptrGraySync = f.wptrGrayPipe
	f.wptrGrayPipe = f.pgray(f.wptr)
}

// Len returns the exact occupancy (an oracle a real design does not have;
// tests use it to check the conservative flags).
func (f *DualClock) Len() int { return int(f.wptr - f.rptr) }
