package fifo

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// sync brings both domains fully up to date (two ticks flush the
// two-stage synchroniser).
func syncBoth(f *DualClock) {
	f.SyncWriteDomain()
	f.SyncWriteDomain()
	f.SyncReadDomain()
	f.SyncReadDomain()
}

func TestNewValidation(t *testing.T) {
	for _, bad := range []int{0, 1, 3, 12, -8} {
		if _, err := New(bad); err == nil {
			t.Errorf("capacity %d accepted", bad)
		}
	}
	f, err := New(8)
	if err != nil || f.Cap() != 8 {
		t.Fatalf("New(8): %v", err)
	}
}

func TestFIFOOrder(t *testing.T) {
	f, _ := New(4)
	for i := uint32(0); i < 4; i++ {
		if err := f.Push(i * 10); err != nil {
			t.Fatal(err)
		}
	}
	syncBoth(f)
	for i := uint32(0); i < 4; i++ {
		v, err := f.Pop()
		if err != nil {
			t.Fatal(err)
		}
		if v != i*10 {
			t.Fatalf("pop %d = %d", i, v)
		}
	}
	if !f.Empty() {
		t.Fatal("not empty after draining")
	}
}

func TestFullAndEmptyFlags(t *testing.T) {
	f, _ := New(4)
	syncBoth(f)
	if !f.Empty() || f.Full() {
		t.Fatal("fresh FIFO flags wrong")
	}
	for i := 0; i < 4; i++ {
		if err := f.Push(1); err != nil {
			t.Fatalf("push %d: %v", i, err)
		}
	}
	if !f.Full() {
		t.Fatal("full flag not set at capacity")
	}
	if err := f.Push(9); err == nil {
		t.Fatal("push beyond capacity accepted")
	}
	// Reader hasn't synchronised yet: still sees empty.
	if !f.Empty() {
		t.Fatal("reader saw writes before synchronisation")
	}
	syncBoth(f)
	if f.Empty() {
		t.Fatal("reader still empty after sync")
	}
}

func TestConservativeNotOptimistic(t *testing.T) {
	// After the reader drains, the writer must not see space until its
	// synchroniser catches up — stale flags are allowed to be pessimistic
	// only.
	f, _ := New(2)
	f.Push(1)
	f.Push(2)
	syncBoth(f)
	f.Pop()
	f.Pop()
	// Writer has not re-synced: must still report full.
	if !f.Full() {
		t.Fatal("writer optimistically saw freed space")
	}
	syncBoth(f)
	if f.Full() {
		t.Fatal("writer never saw freed space")
	}
}

func TestWrapAround(t *testing.T) {
	f, _ := New(4)
	for round := 0; round < 13; round++ {
		for i := 0; i < 3; i++ {
			if err := f.Push(uint32(round*3 + i)); err != nil {
				t.Fatalf("round %d push %d: %v", round, i, err)
			}
		}
		syncBoth(f)
		for i := 0; i < 3; i++ {
			v, err := f.Pop()
			if err != nil {
				t.Fatalf("round %d pop %d: %v", round, i, err)
			}
			if v != uint32(round*3+i) {
				t.Fatalf("round %d: got %d", round, v)
			}
		}
		syncBoth(f)
	}
}

func TestGrayCodeAdjacency(t *testing.T) {
	// Successive Gray codes differ in exactly one bit — the property that
	// makes cross-domain pointer sampling safe.
	for b := uint32(0); b < 1024; b++ {
		x := gray(b) ^ gray(b+1)
		if x == 0 || x&(x-1) != 0 {
			t.Fatalf("gray(%d) and gray(%d) differ in more than one bit", b, b+1)
		}
	}
}

// Property: under a random interleaving of pushes, pops and domain
// syncs, the FIFO never reorders, drops or duplicates data, and the
// flags never lie optimistically (no overwrite of unread data, no read
// of unwritten data).
func TestQuickRandomInterleaving(t *testing.T) {
	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		f, _ := New(8)
		var pushed, popped uint32
		for step := 0; step < 3000; step++ {
			switch rng.Intn(4) {
			case 0:
				if f.Push(pushed) == nil {
					if f.Len() > f.Cap() {
						return false // overwrote unread data
					}
					pushed++
				}
			case 1:
				if v, err := f.Pop(); err == nil {
					if v != popped {
						return false // reorder/duplicate/drop
					}
					popped++
				}
			case 2:
				f.SyncWriteDomain()
			case 3:
				f.SyncReadDomain()
			}
		}
		return popped <= pushed
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: everything pushed is eventually popped in order once both
// domains keep syncing.
func TestQuickEventualDelivery(t *testing.T) {
	fn := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		f, _ := New(16)
		n := int(n8)%200 + 1
		var got []uint32
		next := uint32(0)
		for len(got) < n {
			if next < uint32(n) && rng.Intn(2) == 0 {
				if f.Push(next) == nil {
					next++
				}
			}
			if v, err := f.Pop(); err == nil {
				got = append(got, v)
			}
			f.SyncWriteDomain()
			f.SyncReadDomain()
		}
		for i, v := range got {
			if v != uint32(i) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
