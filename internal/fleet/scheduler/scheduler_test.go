package scheduler

import (
	"context"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestPerClassCadence: a fast class must fire strictly more often than
// a slow one over the same window, every class serializes its own
// rounds (monotonic Round numbers), and cancellation stops all loops.
func TestPerClassCadence(t *testing.T) {
	var mu sync.Mutex
	fires := map[string][]int{}
	cfg := Config{
		Default: Cadence{Every: 5 * time.Millisecond},
		PerClass: map[string]Cadence{
			"slow": {Every: 40 * time.Millisecond},
			"off":  {},
		},
		Seed: 1,
	}
	s := New(cfg, []string{"fast", "slow", "off"}, func(_ context.Context, tr Trigger) {
		mu.Lock()
		fires[tr.Class] = append(fires[tr.Class], tr.Round)
		mu.Unlock()
	})
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	s.Run(ctx) // returns when ctx expires

	mu.Lock()
	defer mu.Unlock()
	if len(fires["off"]) != 0 {
		t.Fatalf("disabled class fired %d times", len(fires["off"]))
	}
	if len(fires["fast"]) == 0 || len(fires["slow"]) == 0 {
		t.Fatalf("loops did not fire: %v", fires)
	}
	if len(fires["fast"]) <= len(fires["slow"]) {
		t.Fatalf("fast class fired %d ≤ slow class %d", len(fires["fast"]), len(fires["slow"]))
	}
	for class, rounds := range fires {
		for i, r := range rounds {
			if r != i+1 {
				t.Fatalf("class %s rounds not serialized: %v", class, rounds)
			}
		}
	}
}

// TestJitterSeededDeterministic: the jitter draw is a pure function of
// the seed — equal seeds must produce equal interval sequences, and
// jitter must stay inside [Every, Every+Jitter).
func TestJitterSeededDeterministic(t *testing.T) {
	cad := Cadence{Every: 10 * time.Millisecond, Jitter: 7 * time.Millisecond}
	a := rand.New(rand.NewSource(42))
	b := rand.New(rand.NewSource(42))
	for i := 0; i < 100; i++ {
		da, db := interval(cad, a), interval(cad, b)
		if da != db {
			t.Fatalf("draw %d diverged: %v vs %v", i, da, db)
		}
		if da < cad.Every || da >= cad.Every+cad.Jitter {
			t.Fatalf("draw %d out of range: %v", i, da)
		}
	}
	if interval(Cadence{Every: time.Second}, a) != time.Second {
		t.Fatal("zero jitter must not perturb the interval")
	}
}
