// Package scheduler is the cadence layer of the fleet stack: it turns
// the one-shot sweep engine into continuous re-attestation — the
// security model the remote-reconfiguration literature assumes (a
// verifier that re-attests on a schedule, not when an operator
// remembers to). Each device class gets its own loop with a cadence
// and seeded jitter, so a million-device fleet's sweeps de-synchronize
// instead of thundering in phase, and a hot class (new build, active
// incident) can be re-attested faster than the long tail.
package scheduler

import (
	"context"
	"math/rand"
	"sync"
	"time"
)

// Cadence is one class's re-attestation rhythm.
type Cadence struct {
	// Every is the base interval between sweep triggers. Zero or
	// negative disables the loop for that class.
	Every time.Duration
	// Jitter widens each interval by a uniformly drawn [0, Jitter)
	// extra — drawn from the scheduler's seeded source, so a test (or a
	// replayed incident) sees the same trigger pattern for the same
	// seed.
	Jitter time.Duration
}

// enabled reports whether the cadence schedules anything at all.
func (c Cadence) enabled() bool { return c.Every > 0 }

// Config shapes a Scheduler.
type Config struct {
	// Default is the cadence of every class without a PerClass override.
	Default Cadence
	// PerClass overrides the default for specific class keys.
	PerClass map[string]Cadence
	// Seed drives the jitter source. Equal seeds draw equal jitter
	// sequences per class.
	Seed int64
}

// Trigger names one scheduled sweep: the class to re-attest and which
// firing of that class's loop this is (1-based).
type Trigger struct {
	Class string
	Round int
}

// SweepFunc executes one scheduled sweep over a class. The scheduler
// serializes calls per class but lets different classes overlap —
// whether that is safe is the executor's business (the dispatcher
// bounds global concurrency; fleetd additionally serializes sweeps).
type SweepFunc func(ctx context.Context, tr Trigger)

// Scheduler runs one cadence loop per class until its context ends.
type Scheduler struct {
	cfg     Config
	classes []string
	run     SweepFunc
}

// New builds a scheduler over the given classes.
func New(cfg Config, classes []string, run SweepFunc) *Scheduler {
	return &Scheduler{cfg: cfg, classes: classes, run: run}
}

// cadenceOf resolves a class's cadence.
func (s *Scheduler) cadenceOf(class string) Cadence {
	if c, ok := s.cfg.PerClass[class]; ok {
		return c
	}
	return s.cfg.Default
}

// Run blocks until ctx is done, firing each class's loop on its
// cadence. Classes whose cadence is disabled never fire. The first
// firing of each class waits one full (jittered) interval — a daemon
// that wants an immediate baseline sweep runs one before starting the
// scheduler.
func (s *Scheduler) Run(ctx context.Context) {
	var wg sync.WaitGroup
	for i, class := range s.classes {
		cad := s.cadenceOf(class)
		if !cad.enabled() {
			continue
		}
		wg.Add(1)
		// Per-class jitter sources: seeded from (scheduler seed, class
		// index), so loops stay deterministic independently of how the
		// goroutines interleave.
		rng := rand.New(rand.NewSource(s.cfg.Seed + int64(i)*0x9E3779B9))
		go func(class string, cad Cadence, rng *rand.Rand) {
			defer wg.Done()
			timer := time.NewTimer(interval(cad, rng))
			defer timer.Stop()
			for round := 1; ; round++ {
				select {
				case <-ctx.Done():
					return
				case <-timer.C:
				}
				s.run(ctx, Trigger{Class: class, Round: round})
				timer.Reset(interval(cad, rng))
			}
		}(class, cad, rng)
	}
	wg.Wait()
}

// interval draws one jittered interval.
func interval(c Cadence, rng *rand.Rand) time.Duration {
	d := c.Every
	if c.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(c.Jitter)))
	}
	return d
}
