package registry

import (
	"strings"
	"testing"

	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
	"sacha/internal/store"
)

func testStore(t *testing.T) *store.Store {
	t.Helper()
	st, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncBatch})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

// seededFactory is mixedFactory with a controllable provisioning seed —
// the knob the boot-time reconciliation must detect drifting.
func seededFactory(seed int64) func(uint64) (*core.System, error) {
	return func(id uint64) (*core.System, error) {
		geo := device.TinyLX()
		if id%2 == 0 {
			geo = device.SmallLX()
		}
		return core.NewSystem(core.Config{
			Geo:        geo,
			App:        netlist.Blinker(8),
			KeyMode:    core.KeyDynPUF,
			DeviceID:   id,
			LabLatency: -1,
			Seed:       seed + int64(id),
		})
	}
}

// TestDurableResumesGenerations: rotations journaled by one registry
// are the generations the next registry on the same store boots at.
func TestDurableResumesGenerations(t *testing.T) {
	st := testStore(t)
	r1, err := NewDurable(4, seededFactory(0), st.Enrollment())
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.RotateKey(2); err != nil {
		t.Fatal(err)
	}
	if err := r1.RotateKey(2); err != nil {
		t.Fatal(err)
	}
	if err := r1.RotateKey(3); err != nil {
		t.Fatal(err)
	}
	if err := r1.RotateKey(42); err == nil {
		t.Fatal("rotated a phantom member")
	}

	r2, err := NewDurable(4, seededFactory(0), st.Enrollment())
	if err != nil {
		t.Fatal(err)
	}
	want := map[uint64]uint64{1: 1, 2: 3, 3: 2, 4: 1}
	for id, gen := range want {
		sys, ok := r2.System(id)
		if !ok {
			t.Fatalf("member %d missing after reboot", id)
		}
		if got := sys.KeyGeneration(); got != gen {
			t.Fatalf("device %d rebooted at generation %d, want %d", id, got, gen)
		}
		// The restored class must agree with the live system's — the
		// rotation's class advance survived the reboot too.
		first, _ := r1.ClassOf(id)
		second, _ := r2.ClassOf(id)
		if first != second {
			t.Fatalf("device %d class drifted across reboot: %q vs %q", id, first, second)
		}
	}
}

// TestDurableRefusesForeignStateDir: a state directory written under a
// different provisioning seed describes different physical devices;
// booting against it must fail loudly, not journal nonsense.
func TestDurableRefusesForeignStateDir(t *testing.T) {
	st := testStore(t)
	if _, err := NewDurable(4, seededFactory(0), st.Enrollment()); err != nil {
		t.Fatal(err)
	}
	_, err := NewDurable(4, seededFactory(7777), st.Enrollment())
	if err == nil || !strings.Contains(err.Error(), "different -seed") {
		t.Fatalf("foreign state dir accepted (err=%v)", err)
	}
}

// TestDurableRefusesGeometryDrift: same seed, different fleet layout —
// the stored class key catches it.
func TestDurableRefusesGeometryDrift(t *testing.T) {
	st := testStore(t)
	if _, err := NewDurable(2, seededFactory(0), st.Enrollment()); err != nil {
		t.Fatal(err)
	}
	allTiny := func(id uint64) (*core.System, error) {
		return core.NewSystem(core.Config{
			Geo:        device.TinyLX(),
			App:        netlist.Blinker(8),
			KeyMode:    core.KeyDynPUF,
			DeviceID:   id,
			LabLatency: -1,
			Seed:       int64(id),
		})
	}
	_, err := NewDurable(2, allTiny, st.Enrollment())
	if err == nil || !strings.Contains(err.Error(), "class") {
		t.Fatalf("geometry drift accepted (err=%v)", err)
	}
}

// TestDurableLedgerPersistsWarmth: warmth recorded through the durable
// ledger is the warmth the next boot's ledger restores — and cold
// demotions persist the same way.
func TestDurableLedgerPersistsWarmth(t *testing.T) {
	st := testStore(t)
	r1, err := NewDurable(3, seededFactory(0), st.Enrollment())
	if err != nil {
		t.Fatal(err)
	}
	class1, _ := r1.ClassOf(1)
	class2, _ := r1.ClassOf(2)
	led := r1.Ledger()
	led.Record(1, class1, true)
	led.Record(2, class2, true)
	led.Record(2, class2, false) // demotion must persist too

	r2, err := NewDurable(3, seededFactory(0), st.Enrollment())
	if err != nil {
		t.Fatal(err)
	}
	led2 := r2.Ledger()
	if !led2.Warm(1, class1) {
		t.Fatal("device 1 warmth lost across reboot")
	}
	if led2.Warm(2, class2) {
		t.Fatal("device 2 demotion lost across reboot")
	}
	if led2.Warm(3, class1) {
		t.Fatal("device 3 never attested but rebooted warm")
	}

	led2.MarkCold(1)
	r3, err := NewDurable(3, seededFactory(0), st.Enrollment())
	if err != nil {
		t.Fatal(err)
	}
	if r3.Ledger().Warm(1, class1) {
		t.Fatal("MarkCold was not journaled")
	}
}
