package registry

import "sync"

// TrustLedger tracks, per device, whether the delta-attestation
// admissibility precondition holds: the device's immediately preceding
// full-trust attestation succeeded under its current plan-sharing class
// (which encodes the key generation and golden build — see
// core.System.ClassKey). DESIGN.md §13 states the rule; this ledger is
// its fleet-side bookkeeping.
//
// The ledger is deliberately conservative. Warmth is recorded only for
// attestations the caller marks full-trust (Healthy verdict with no
// unexpected drift observed); anything else — rejection, transport
// failure, a healthy run whose delta scan saw drift — demotes the
// device to cold, forcing the next session back to the full overwrite.
// A key rotation or golden change advances the class string, so stale
// warmth from a previous generation never matches.
type TrustLedger struct {
	mu      sync.Mutex
	warm    map[uint64]string // device ID -> class key of the last full-trust attestation
	journal func(deviceID uint64, class string, warm bool)
}

// NewTrustLedger returns an empty ledger: every device is cold.
func NewTrustLedger() *TrustLedger {
	return &TrustLedger{warm: make(map[uint64]string)}
}

// Warm reports whether the device's last recorded full-trust
// attestation ran under exactly this class key.
func (l *TrustLedger) Warm(deviceID uint64, class string) bool {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.warm[deviceID] == class
}

// Record stores the outcome of one attestation: fullTrust warms the
// device for its class, anything else demotes it to cold.
func (l *TrustLedger) Record(deviceID uint64, class string, fullTrust bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if fullTrust {
		l.warm[deviceID] = class
	} else {
		delete(l.warm, deviceID)
	}
	if l.journal != nil {
		l.journal(deviceID, class, fullTrust)
	}
}

// MarkCold demotes one device unconditionally (e.g. on an out-of-band
// compromise signal or before maintenance).
func (l *TrustLedger) MarkCold(deviceID uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	delete(l.warm, deviceID)
	if l.journal != nil {
		l.journal(deviceID, "", false)
	}
}

// Restore seeds the ledger with persisted warmth (device → class of
// its last full-trust attestation) — the durable registry's boot path.
func (l *TrustLedger) Restore(warm map[uint64]string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for id, class := range warm {
		l.warm[id] = class
	}
}

// SetJournal installs a hook invoked (under the ledger lock) on every
// warmth change, so a durable registry can persist the ledger. The hook
// must not call back into the ledger.
func (l *TrustLedger) SetJournal(journal func(deviceID uint64, class string, warm bool)) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.journal = journal
}
