package registry

import (
	"testing"

	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
)

// mixedFactory provisions odd IDs on TinyLX, even on SmallLX — two
// distinct plan-sharing classes — in the rotatable DynPart-PUF mode.
func mixedFactory(id uint64) (*core.System, error) {
	geo := device.TinyLX()
	if id%2 == 0 {
		geo = device.SmallLX()
	}
	return core.NewSystem(core.Config{
		Geo:        geo,
		App:        netlist.Blinker(8),
		KeyMode:    core.KeyDynPUF,
		DeviceID:   id,
		LabLatency: -1,
		Seed:       int64(id),
	})
}

func TestStaticMembership(t *testing.T) {
	r, err := New(4, mixedFactory)
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 4 || len(r.IDs()) != 4 {
		t.Fatalf("size=%d ids=%v", r.Size(), r.IDs())
	}
	for i, id := range r.IDs() {
		if id != uint64(i+1) {
			t.Fatalf("enrollment order broken: %v", r.IDs())
		}
		if _, ok := r.System(id); !ok {
			t.Fatalf("member %d missing", id)
		}
	}
	if _, ok := r.System(99); ok {
		t.Fatal("phantom member 99")
	}
	if classes := Classes(r); len(classes) != 2 {
		t.Fatalf("mixed fleet should index 2 classes, got %v", classes)
	}
}

// TestRotateKeyAdvancesClass: a key rotation ships a new PUF circuit,
// which changes the golden image — so the class key must move to the
// new generation, splitting the rotated member off its old class.
func TestRotateKeyAdvancesClass(t *testing.T) {
	r, err := New(3, mixedFactory)
	if err != nil {
		t.Fatal(err)
	}
	before, _ := r.ClassOf(1)
	if err := r.RotateKey(1); err != nil {
		t.Fatal(err)
	}
	after, _ := r.ClassOf(1)
	if before == after {
		t.Fatal("class key did not advance with the key generation")
	}
	peer, _ := r.ClassOf(3) // same geometry, not rotated
	if peer != before {
		t.Fatalf("unrotated peer moved class: %s vs %s", peer, before)
	}
	if err := r.RotateKey(42); err == nil {
		t.Fatal("rotating an unknown device must fail")
	}
}

func TestSubsetScoping(t *testing.T) {
	r, err := New(6, mixedFactory)
	if err != nil {
		t.Fatal(err)
	}
	tiny, _ := r.ClassOf(1)
	sub := ByClass(r, tiny)
	if got := sub.IDs(); len(got) != 3 || got[0] != 1 || got[1] != 3 || got[2] != 5 {
		t.Fatalf("TinyLX subset = %v", got)
	}
	if _, ok := sub.System(2); ok {
		t.Fatal("subset leaked an out-of-class member")
	}
	if c, ok := sub.ClassOf(3); !ok || c != tiny {
		t.Fatalf("subset class lookup: %q %v", c, ok)
	}
	if err := sub.RotateKey(2); err == nil {
		t.Fatal("subset must refuse to rotate a non-member")
	}
	empty := Select(r, func(uint64, string) bool { return false })
	if len(empty.IDs()) != 0 {
		t.Fatalf("empty selection has members: %v", empty.IDs())
	}
}
