// Package registry is the membership layer of the fleet stack: which
// devices exist, in what enrollment order, which plan-sharing class
// each belongs to, and the key-generation state (PUF re-enrollment)
// behind one interface — so the scheduler and dispatcher above never
// reach into provisioning details, and a future durable (on-disk)
// registry can slot in without touching either.
package registry

import (
	"fmt"
	"sort"
	"sync"

	"sacha/internal/core"
)

// Registry is the read/rotate view of fleet membership the upper
// layers (scheduler, dispatch, fleetd) consume.
type Registry interface {
	// IDs returns the device IDs in enrollment order. The slice is
	// shared; callers must not mutate it.
	IDs() []uint64
	// System returns one member for attestation or direct (e.g.
	// adversarial) access.
	System(deviceID uint64) (*core.System, bool)
	// ClassOf returns the device's current plan-sharing class key
	// (core.System.ClassKey, which advances with the key generation).
	ClassOf(deviceID uint64) (string, bool)
	// RotateKey re-enrolls the device's PUF key (paper §5.2.1),
	// advancing its class to the new key generation.
	RotateKey(deviceID uint64) error
}

// Static is the in-memory Registry: a fixed membership provisioned at
// construction. It is safe for concurrent readers; RotateKey is the
// only mutator and follows the sweep discipline (rotations happen
// before any session starts).
type Static struct {
	mu      sync.RWMutex
	systems map[uint64]*core.System
	order   []uint64
}

// New provisions n devices with the factory, which receives the device
// ID and returns a configured system. IDs are 1..n in enrollment order.
func New(n int, factory func(deviceID uint64) (*core.System, error)) (*Static, error) {
	if n < 1 {
		return nil, fmt.Errorf("registry: fleet size %d", n)
	}
	r := &Static{systems: make(map[uint64]*core.System, n)}
	for i := 0; i < n; i++ {
		id := uint64(i + 1)
		sys, err := factory(id)
		if err != nil {
			return nil, fmt.Errorf("registry: provisioning device %d: %w", id, err)
		}
		r.systems[id] = sys
		r.order = append(r.order, id)
	}
	return r, nil
}

// Size returns the number of members.
func (r *Static) Size() int { return len(r.order) }

// IDs returns the device IDs in enrollment order.
func (r *Static) IDs() []uint64 { return r.order }

// System returns one member.
func (r *Static) System(deviceID uint64) (*core.System, bool) {
	s, ok := r.systems[deviceID]
	return s, ok
}

// ClassOf returns the device's current class key.
func (r *Static) ClassOf(deviceID uint64) (string, bool) {
	s, ok := r.systems[deviceID]
	if !ok {
		return "", false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return s.ClassKey(), true
}

// RotateKey re-enrolls one device's PUF key.
func (r *Static) RotateKey(deviceID uint64) error {
	s, ok := r.systems[deviceID]
	if !ok {
		return fmt.Errorf("registry: unknown device %d", deviceID)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return s.RotateKey()
}

// Classes returns the distinct class keys of the membership, sorted —
// the index the scheduler's per-class cadences and the dispatcher's
// affinity routing are built over.
func Classes(r Registry) []string {
	seen := make(map[string]bool)
	var out []string
	for _, id := range r.IDs() {
		c, ok := r.ClassOf(id)
		if !ok || seen[c] {
			continue
		}
		seen[c] = true
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Subset is a class- or ID-scoped view over a parent registry — the
// form scheduler-triggered per-class sweeps hand to the dispatcher.
// It shares the parent's systems; only membership narrows.
type Subset struct {
	parent Registry
	ids    []uint64
}

// Select returns the view of r containing the members keep admits,
// preserving enrollment order. An empty selection is legal (the
// dispatcher reports an empty sweep).
func Select(r Registry, keep func(deviceID uint64, class string) bool) *Subset {
	s := &Subset{parent: r}
	for _, id := range r.IDs() {
		class, ok := r.ClassOf(id)
		if !ok {
			continue
		}
		if keep(id, class) {
			s.ids = append(s.ids, id)
		}
	}
	return s
}

// ByClass returns the view of r holding exactly the members of class.
func ByClass(r Registry, class string) *Subset {
	return Select(r, func(_ uint64, c string) bool { return c == class })
}

func (s *Subset) IDs() []uint64 { return s.ids }

func (s *Subset) System(deviceID uint64) (*core.System, bool) {
	if !s.member(deviceID) {
		return nil, false
	}
	return s.parent.System(deviceID)
}

func (s *Subset) ClassOf(deviceID uint64) (string, bool) {
	if !s.member(deviceID) {
		return "", false
	}
	return s.parent.ClassOf(deviceID)
}

func (s *Subset) RotateKey(deviceID uint64) error {
	if !s.member(deviceID) {
		return fmt.Errorf("registry: device %d is outside this subset", deviceID)
	}
	return s.parent.RotateKey(deviceID)
}

func (s *Subset) member(deviceID uint64) bool {
	for _, id := range s.ids {
		if id == deviceID {
			return true
		}
	}
	return false
}
