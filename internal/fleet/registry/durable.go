package registry

import (
	"fmt"
	"sync"

	"sacha/internal/core"
	"sacha/internal/store"
)

// Durable is the on-disk Registry: membership is provisioned by the
// same factory as Static, but every device's key-generation state is
// reconciled against a store.EnrollmentStore at construction and every
// RotateKey journals the new generation BEFORE the rotated key serves
// an attestation. A verifier that crashes and reboots therefore resumes
// from exactly the generations its fleet is actually running — the
// §5.2.1 identity→key binding survives the process.
//
// Reconciliation at boot is strict in both directions:
//
//   - A stored record whose generation is ahead of the fresh
//     provisioning is restored into the system (both sides rewind to
//     the stored key + helper data).
//   - A stored record whose class or golden digest disagrees with the
//     recomputed state is refused: the state directory describes a
//     different fleet (other -seed, geometry, application or build),
//     and booting against it would silently journal nonsense.
type Durable struct {
	mu      sync.RWMutex
	systems map[uint64]*core.System
	order   []uint64
	es      *store.EnrollmentStore
}

// NewDurable provisions n devices with the factory and reconciles each
// against the enrollment store: unseen devices are journaled, seen
// devices are restored to their stored generation and cross-checked.
func NewDurable(n int, factory func(deviceID uint64) (*core.System, error), es *store.EnrollmentStore) (*Durable, error) {
	if n < 1 {
		return nil, fmt.Errorf("registry: fleet size %d", n)
	}
	if es == nil {
		return nil, fmt.Errorf("registry: durable registry needs an enrollment store")
	}
	r := &Durable{systems: make(map[uint64]*core.System, n), es: es}
	for i := 0; i < n; i++ {
		id := uint64(i + 1)
		sys, err := factory(id)
		if err != nil {
			return nil, fmt.Errorf("registry: provisioning device %d: %w", id, err)
		}
		stored, ok := es.Lookup(id)
		if !ok {
			rec, err := enrollmentRecord(id, sys)
			if err != nil {
				return nil, fmt.Errorf("registry: enrolling device %d: %w", id, err)
			}
			if err := es.Put(rec); err != nil {
				return nil, fmt.Errorf("registry: journaling device %d: %w", id, err)
			}
		} else {
			fresh := sys.Enrollment()
			if stored.Generation == fresh.Generation && stored.Key != fresh.Key {
				return nil, fmt.Errorf("registry: device %d: stored key at generation %d differs from this provisioning (state dir from a different -seed?)", id, stored.Generation)
			}
			if err := sys.RestoreEnrollment(core.Enrollment{
				Generation: stored.Generation,
				Key:        stored.Key,
				Helper:     stored.Helper,
			}); err != nil {
				return nil, fmt.Errorf("registry: restoring device %d: %w", id, err)
			}
			rec, err := enrollmentRecord(id, sys)
			if err != nil {
				return nil, fmt.Errorf("registry: cross-checking device %d: %w", id, err)
			}
			if rec.Class != stored.Class {
				return nil, fmt.Errorf("registry: device %d: restored class %q does not match stored %q (state dir from a different fleet?)", id, rec.Class, stored.Class)
			}
			if rec.Golden != stored.Golden {
				return nil, fmt.Errorf("registry: device %d: restored golden digest does not match the stored one (state dir from a different build?)", id)
			}
		}
		r.systems[id] = sys
		r.order = append(r.order, id)
	}
	return r, nil
}

// enrollmentRecord snapshots one system into its durable form.
func enrollmentRecord(id uint64, sys *core.System) (store.EnrollmentRecord, error) {
	golden, err := sys.GoldenDigest()
	if err != nil {
		return store.EnrollmentRecord{}, err
	}
	e := sys.Enrollment()
	return store.EnrollmentRecord{
		DeviceID:   id,
		Generation: e.Generation,
		Key:        e.Key,
		Helper:     e.Helper,
		Class:      sys.ClassKey(),
		Golden:     golden,
	}, nil
}

// Size returns the number of members.
func (r *Durable) Size() int { return len(r.order) }

// IDs returns the device IDs in enrollment order.
func (r *Durable) IDs() []uint64 { return r.order }

// System returns one member.
func (r *Durable) System(deviceID uint64) (*core.System, bool) {
	s, ok := r.systems[deviceID]
	return s, ok
}

// ClassOf returns the device's current class key.
func (r *Durable) ClassOf(deviceID uint64) (string, bool) {
	s, ok := r.systems[deviceID]
	if !ok {
		return "", false
	}
	r.mu.RLock()
	defer r.mu.RUnlock()
	return s.ClassKey(), true
}

// RotateKey re-enrolls one device's PUF key and journals the new
// generation before returning — so the bump is durable before the
// rotated key can serve an attestation, and a crash immediately after
// RotateKey resumes at the new generation, never the old.
func (r *Durable) RotateKey(deviceID uint64) error {
	s, ok := r.systems[deviceID]
	if !ok {
		return fmt.Errorf("registry: unknown device %d", deviceID)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := s.RotateKey(); err != nil {
		return err
	}
	rec, err := enrollmentRecord(deviceID, s)
	if err != nil {
		return fmt.Errorf("registry: journaling rotation of device %d: %w", deviceID, err)
	}
	if err := r.es.Put(rec); err != nil {
		return fmt.Errorf("registry: journaling rotation of device %d: %w", deviceID, err)
	}
	return nil
}

// Ledger builds the registry's trust ledger: warmth is restored from
// the store and every subsequent Record/MarkCold is journaled back, so
// delta-admissibility survives a restart. Journal write errors are
// deliberately dropped by the hook — lost warmth only forces the next
// delta session back to a cold full overwrite, which is always sound.
func (r *Durable) Ledger() *TrustLedger {
	l := NewTrustLedger()
	l.Restore(r.es.TrustSnapshot())
	l.SetJournal(func(deviceID uint64, class string, warm bool) {
		_ = r.es.PutTrust(deviceID, class, warm)
	})
	return l
}
