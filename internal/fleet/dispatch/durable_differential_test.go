package dispatch_test

import (
	"context"
	"testing"

	"sacha/internal/attestation"
	"sacha/internal/fleet"
	"sacha/internal/fleet/dispatch"
	"sacha/internal/fleet/registry"
	"sacha/internal/store"
)

// TestDurableRegistryEqualsStatic is the persistence-transparency
// contract: a sweep over the store-backed Durable registry must produce
// verdicts AND per-device H_Vrf bit-identical to the same sweep over an
// in-memory Static registry built from the same factory — under all
// three freshness policies, tampered members included. Durability must
// be invisible to the attestation protocol: the enrollment store only
// changes where key material lives between processes, never what the
// verifier computes. The RotateKey leg additionally proves the journal
// write on the rotation path (Durable.RotateKey persists the new
// generation before it serves) does not perturb the sweep, and that a
// second registry booted from the same store resumes the rotated
// generations exactly.
func TestDurableRegistryEqualsStatic(t *testing.T) {
	const size = 32
	tampered := map[uint64]bool{7: true, 20: true}
	policies := []attestation.FreshnessPolicy{
		attestation.PerSweep, attestation.PerDevice, attestation.RotateKey,
	}
	for _, policy := range policies {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			st, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncBatch})
			if err != nil {
				t.Fatal(err)
			}
			defer st.Close()

			static, err := registry.New(size, diffFactory)
			if err != nil {
				t.Fatal(err)
			}
			durable, err := registry.NewDurable(size, diffFactory, st.Enrollment())
			if err != nil {
				t.Fatal(err)
			}

			cfg := fleet.SweepConfig{
				Concurrency: 8,
				SharePlans:  true,
				Freshness:   policy,
			}
			if policy == attestation.PerSweep {
				nonce := uint64(0xD1FF_FEED)
				cfg.Nonce = &nonce
			} else {
				seed := uint64(0xABBA_CAFE)
				cfg.NonceSeed = &seed
			}

			want, err := dispatch.New(dispatch.Config{Shards: 4}).Sweep(
				context.Background(), static, cfg, tamperOpts(static.System, tampered))
			if err != nil {
				t.Fatalf("static sweep: %v", err)
			}
			got, err := dispatch.New(dispatch.Config{Shards: 4}).Sweep(
				context.Background(), durable, cfg, tamperOpts(durable.System, tampered))
			if err != nil {
				t.Fatalf("durable sweep: %v", err)
			}

			if len(want.Results) != size || len(got.Results) != size {
				t.Fatalf("result counts: static=%d durable=%d", len(want.Results), len(got.Results))
			}
			for i := range want.Results {
				s, d := want.Results[i], got.Results[i]
				if s.DeviceID != d.DeviceID {
					t.Fatalf("result order diverged at %d: %d vs %d", i, s.DeviceID, d.DeviceID)
				}
				if s.Verdict() != d.Verdict() {
					t.Fatalf("device %d verdict diverged: static=%s durable=%s (errs %v / %v)",
						s.DeviceID, s.Verdict(), d.Verdict(), s.Err, d.Err)
				}
				if s.Nonce != d.Nonce {
					t.Fatalf("device %d nonce diverged: %#x vs %#x", s.DeviceID, s.Nonce, d.Nonce)
				}
				if (s.Report == nil) != (d.Report == nil) {
					t.Fatalf("device %d report presence diverged", s.DeviceID)
				}
				if s.Report != nil && s.Report.HVrf != d.Report.HVrf {
					t.Fatalf("device %d H_Vrf diverged:\n  static:  %x\n  durable: %x",
						s.DeviceID, s.Report.HVrf, d.Report.HVrf)
				}
				if gotCompromised := d.Compromised(); gotCompromised != tampered[d.DeviceID] {
					t.Fatalf("device %d: compromised=%v, tampered=%v",
						d.DeviceID, gotCompromised, tampered[d.DeviceID])
				}
			}
			if want.KeysRotated != got.KeysRotated {
				t.Fatalf("key rotations diverged: %d vs %d", want.KeysRotated, got.KeysRotated)
			}

			if policy != attestation.RotateKey {
				return
			}
			// The rotation was journaled; a fresh registry on the same store
			// must resume every device at the post-rotation generation with
			// the identical key (provable indirectly: generations match and
			// NewDurable itself verifies stored-vs-restored key agreement).
			resumed, err := registry.NewDurable(size, diffFactory, st.Enrollment())
			if err != nil {
				t.Fatalf("rebooting registry from store: %v", err)
			}
			for _, id := range resumed.IDs() {
				before, _ := durable.System(id)
				after, _ := resumed.System(id)
				if bg, ag := before.KeyGeneration(), after.KeyGeneration(); bg != ag || ag != 2 {
					t.Fatalf("device %d generation: pre-reboot %d, post-reboot %d (want 2)", id, bg, ag)
				}
			}
		})
	}
}
