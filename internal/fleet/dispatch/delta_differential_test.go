package dispatch_test

import (
	"context"
	"testing"
	"time"

	"sacha/internal/attestation"
	"sacha/internal/channel"
	"sacha/internal/core"
	"sacha/internal/fleet"
	"sacha/internal/fleet/dispatch"
	"sacha/internal/fleet/registry"
	"sacha/internal/prover"
	"sacha/internal/verifier"
)

// deltaDiffOpts builds the per-device options of the delta differential:
// the designated tampered members get the deterministic configuration
// flip (armed between configuration and readback), and the designated
// faulted members speak over a seeded lossy link with the reliable
// transport on. Both fleets get the same seeds, so the two sides see
// the same adversity.
func deltaDiffOpts(lookup func(uint64) (*core.System, bool), tampered, faulted map[uint64]bool) func(uint64) core.AttestOptions {
	return func(id uint64) core.AttestOptions {
		var o core.AttestOptions
		if faulted[id] {
			o.Opts.Retry = attestation.RetryPolicy{Timeout: 50 * time.Millisecond, MaxRetries: 8}
			o.WrapVerifierChannel = func(ep channel.Endpoint) channel.Endpoint {
				return channel.NewFault(ep, channel.FaultConfig{Seed: int64(id)*131 + 7, DropProb: 0.03})
			}
		}
		if tampered[id] {
			sys, _ := lookup(id)
			o.TamperDevice = func(d *prover.Device) {
				d.Fabric.Mem.Frame(sys.DynFrames()[3])[5] ^= 2
			}
		}
		return o
	}
}

// TestDeltaDifferentialMatchesFullOverwrite is the tentpole equivalence
// at fleet scale: over a mixed-geometry fleet, a delta+compress sweep
// pair (cold then warm) must produce verdicts, nonces AND per-device
// H_Vrf bit-identical to plain full-overwrite sweeps on a twin fleet —
// under all three freshness policies, with a tampered member, lossy
// links on two members, and an SEU injected between the sweeps. The
// delta accounting is pinned alongside: sweep 1 is all cold fallbacks,
// sweep 2 applies delta everywhere except the demoted tampered device
// and the drifted device (which is flagged, repaired, and never
// silently skipped) — and a RotateKey sweep 2 applies none, because the
// rotation advanced every class out from under the recorded warmth.
func TestDeltaDifferentialMatchesFullOverwrite(t *testing.T) {
	const size = 16
	tampered := map[uint64]bool{7: true}
	faulted := map[uint64]bool{3: true, 9: true}
	const seuDevice = uint64(5)

	policies := []attestation.FreshnessPolicy{
		attestation.PerSweep, attestation.PerDevice, attestation.RotateKey,
	}
	for _, policy := range policies {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			regDelta, err := registry.New(size, diffFactory)
			if err != nil {
				t.Fatal(err)
			}
			regPlain, err := registry.New(size, diffFactory)
			if err != nil {
				t.Fatal(err)
			}
			cfgDelta := fleet.SweepConfig{
				Concurrency: 8,
				SharePlans:  true,
				Freshness:   policy,
				Delta:       true,
				Compress:    true,
				Trust:       registry.NewTrustLedger(),
			}
			cfgPlain := fleet.SweepConfig{
				Concurrency: 8,
				SharePlans:  true,
				Freshness:   policy,
			}
			pin := func(cfgs []*fleet.SweepConfig, v uint64) {
				for _, c := range cfgs {
					if policy == attestation.PerSweep {
						n := v
						c.Nonce, c.NonceSeed = &n, nil
					} else {
						s := v
						c.Nonce, c.NonceSeed = nil, &s
					}
				}
			}
			both := []*fleet.SweepConfig{&cfgDelta, &cfgPlain}
			dDelta := dispatch.New(dispatch.Config{Shards: 2})
			dPlain := dispatch.New(dispatch.Config{Shards: 2})
			optsDelta := deltaDiffOpts(regDelta.System, tampered, faulted)
			optsPlain := deltaDiffOpts(regPlain.System, tampered, faulted)

			compare := func(label string, delta, plain *fleet.Report) {
				t.Helper()
				if len(delta.Results) != size || len(plain.Results) != size {
					t.Fatalf("%s: result counts %d / %d", label, len(delta.Results), len(plain.Results))
				}
				for i := range plain.Results {
					p, d := plain.Results[i], delta.Results[i]
					if p.DeviceID != d.DeviceID {
						t.Fatalf("%s: result order diverged at %d", label, i)
					}
					if p.Verdict() != d.Verdict() {
						t.Fatalf("%s: device %d verdict diverged: plain=%s delta=%s (errs %v / %v)",
							label, p.DeviceID, p.Verdict(), d.Verdict(), p.Err, d.Err)
					}
					if p.Nonce != d.Nonce {
						t.Fatalf("%s: device %d nonce diverged: %#x vs %#x", label, p.DeviceID, p.Nonce, d.Nonce)
					}
					if (p.Report == nil) != (d.Report == nil) {
						t.Fatalf("%s: device %d report presence diverged", label, p.DeviceID)
					}
					if p.Report != nil && p.Report.HVrf != d.Report.HVrf {
						t.Fatalf("%s: device %d H_Vrf diverged:\n  plain: %x\n  delta: %x",
							label, p.DeviceID, p.Report.HVrf, d.Report.HVrf)
					}
				}
				if plain.DeltaApplied != 0 || plain.DeltaFallbacks != 0 || len(plain.DeltaUnexpected) != 0 {
					t.Fatalf("%s: plain sweep reported delta activity: %+v", label, plain)
				}
			}

			// Sweep 1: every delta session is cold (empty ledger) and must
			// fall back to the full overwrite — never skip.
			pin(both, 0x5EED_0001)
			rep1d, err := dDelta.Sweep(context.Background(), regDelta, cfgDelta, optsDelta)
			if err != nil {
				t.Fatalf("delta sweep 1: %v", err)
			}
			rep1p, err := dPlain.Sweep(context.Background(), regPlain, cfgPlain, optsPlain)
			if err != nil {
				t.Fatalf("plain sweep 1: %v", err)
			}
			compare("sweep1", rep1d, rep1p)
			if rep1d.DeltaApplied != 0 || rep1d.DeltaFallbacks != size {
				t.Fatalf("cold sweep: applied=%d fallbacks=%d, want 0/%d", rep1d.DeltaApplied, rep1d.DeltaFallbacks, size)
			}

			// Between sweeps: the same SEU on both twins — one bit in a
			// dynamic frame OUTSIDE the nonce rewrite set of the victim.
			sysD, _ := regDelta.System(seuDevice)
			sysP, _ := regPlain.System(seuDevice)
			dp, err := sysD.PatchablePlan(verifier.Options{Delta: true})
			if err != nil {
				t.Fatal(err)
			}
			nonceFrames := map[int]bool{}
			for _, f := range dp.DeltaRewriteFrames() {
				nonceFrames[f] = true
			}
			target := -1
			for _, f := range sysD.DynFrames() {
				if !nonceFrames[f] {
					target = f
					break
				}
			}
			if target < 0 {
				t.Fatal("no non-nonce dynamic frame")
			}
			sysD.Device.Fabric.Mem.Frame(target)[2] ^= 1 << 9
			sysP.Device.Fabric.Mem.Frame(target)[2] ^= 1 << 9

			// Sweep 2: warm. PerSweep/PerDevice apply delta fleet-wide
			// except the demoted tampered member (cold) and the SEU victim
			// (scan flags the drift, falls back, repairs). RotateKey rotates
			// again first, advancing every class: all cold, no scans.
			pin(both, 0x5EED_0002)
			rep2d, err := dDelta.Sweep(context.Background(), regDelta, cfgDelta, optsDelta)
			if err != nil {
				t.Fatalf("delta sweep 2: %v", err)
			}
			rep2p, err := dPlain.Sweep(context.Background(), regPlain, cfgPlain, optsPlain)
			if err != nil {
				t.Fatalf("plain sweep 2: %v", err)
			}
			compare("sweep2", rep2d, rep2p)

			resultFor := func(rep *fleet.Report, id uint64) fleet.DeviceResult {
				for _, r := range rep.Results {
					if r.DeviceID == id {
						return r
					}
				}
				t.Fatalf("device %d missing from results", id)
				return fleet.DeviceResult{}
			}
			seu := resultFor(rep2d, seuDevice)
			if !seu.Healthy() {
				t.Fatalf("SEU victim not repaired: %v / %+v", seu.Err, seu.Report)
			}
			if policy == attestation.RotateKey {
				if rep2d.DeltaApplied != 0 || rep2d.DeltaFallbacks != size {
					t.Fatalf("rotated sweep: applied=%d fallbacks=%d, want 0/%d — rotation must cold every class",
						rep2d.DeltaApplied, rep2d.DeltaFallbacks, size)
				}
				if len(rep2d.DeltaUnexpected) != 0 {
					t.Fatalf("rotated sweep ran scans: unexpected=%v", rep2d.DeltaUnexpected)
				}
				return
			}
			if want := size - 2; rep2d.DeltaApplied != want || rep2d.DeltaFallbacks != 2 {
				t.Fatalf("warm sweep: applied=%d fallbacks=%d, want %d/2", rep2d.DeltaApplied, rep2d.DeltaFallbacks, want)
			}
			if len(rep2d.DeltaUnexpected) != 1 || rep2d.DeltaUnexpected[0] != seuDevice {
				t.Fatalf("DeltaUnexpected=%v, want exactly the SEU victim %d", rep2d.DeltaUnexpected, seuDevice)
			}
			if seu.Report.Delta.Fallback != "mismatch" {
				t.Fatalf("SEU victim fallback %q, want \"mismatch\"", seu.Report.Delta.Fallback)
			}
			tamperedRes := resultFor(rep2d, 7)
			if tamperedRes.Report == nil || tamperedRes.Report.Delta.Fallback != "cold" {
				t.Fatalf("tampered device not demoted to cold: %+v", tamperedRes.Report)
			}
			// Spot-check one applied device: the rewrite set stayed small.
			applied := resultFor(rep2d, 3)
			if !applied.Report.Delta.Applied {
				t.Fatalf("faulted-but-healthy device did not apply delta: %+v", applied.Report.Delta)
			}
			if applied.Report.Delta.FramesRewritten == 0 ||
				applied.Report.Delta.FramesRewritten >= applied.Report.Delta.FramesScanned {
				t.Fatalf("rewrite set not small: %+v", applied.Report.Delta)
			}
		})
	}
}
