package dispatch

import (
	"context"
	"sync"
	"testing"

	"sacha/internal/attestation"
	"sacha/internal/channel"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/fleet"
	"sacha/internal/fleet/registry"
	"sacha/internal/netlist"
)

// mixedFactory provisions odd IDs on TinyLX, even on SmallLX — two
// plan-sharing classes, the shape affinity routing splits one-per-shard
// on a two-shard dispatcher.
func mixedFactory(id uint64) (*core.System, error) {
	geo := device.TinyLX()
	if id%2 == 0 {
		geo = device.SmallLX()
	}
	return core.NewSystem(core.Config{
		Geo:        geo,
		App:        netlist.Blinker(8),
		KeyMode:    core.KeyDynPUF,
		DeviceID:   id,
		LabLatency: -1,
		Seed:       int64(id),
	})
}

func mustRegistry(t testing.TB, n int, factory func(uint64) (*core.System, error)) *registry.Static {
	t.Helper()
	reg, err := registry.New(n, factory)
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func mustSweep(t testing.TB, d *Dispatcher, reg registry.Registry, cfg fleet.SweepConfig, opts func(uint64) core.AttestOptions) *fleet.Report {
	t.Helper()
	rep, err := d.Sweep(context.Background(), reg, cfg, opts)
	if err != nil {
		t.Fatalf("Sweep: %v", err)
	}
	return rep
}

// TestClassAffinityRouting: a two-class fleet on a two-shard dispatcher
// must land one class per shard, every device routed to its class's
// shard, and results attributed accordingly.
func TestClassAffinityRouting(t *testing.T) {
	reg := mustRegistry(t, 8, mixedFactory)
	d := New(Config{Shards: 2})
	rep := mustSweep(t, d, reg, fleet.SweepConfig{Concurrency: 4, SharePlans: true}, nil)
	if len(rep.Healthy) != 8 {
		t.Fatalf("healthy=%v failed=%v unreachable=%v", rep.Healthy, rep.Failed, rep.Unreachable)
	}
	if len(rep.PerShard) != 2 {
		t.Fatalf("PerShard = %+v", rep.PerShard)
	}
	for s, st := range rep.PerShard {
		if st.Shard != s || st.Routed != 4 || st.Classes != 1 {
			t.Fatalf("shard %d stats %+v — want 4 devices of 1 class each", s, st)
		}
		if st.PlansBuilt != 1 {
			t.Fatalf("shard %d built %d plans, want exactly its class's 1", s, st.PlansBuilt)
		}
	}
	// Affinity: all members of one class share one shard.
	shardOf := map[string]int{}
	for _, r := range rep.Results {
		if prev, ok := shardOf[r.Class]; ok && prev != r.Shard {
			t.Fatalf("class %s split across shards %d and %d", r.Class, prev, r.Shard)
		}
		shardOf[r.Class] = r.Shard
	}
	if len(shardOf) != 2 {
		t.Fatalf("expected 2 classes, saw %d", len(shardOf))
	}
}

// TestWarmShardCachesBuildZeroPlans: a long-lived dispatcher with
// per-shard caches must stop building plans after the first sweep —
// each shard's second sweep is served entirely from its own cache (the
// per-shard PlanCacheHits the issue asks asserted), with the per-device
// nonce rotation riding the patch path instead of rebuilds.
func TestWarmShardCachesBuildZeroPlans(t *testing.T) {
	reg := mustRegistry(t, 8, mixedFactory)
	d := New(Config{Shards: 2, PlanCacheSize: 4})
	cfg := fleet.SweepConfig{
		Concurrency: 4,
		SharePlans:  true,
		Freshness:   attestation.PerDevice,
	}
	first := mustSweep(t, d, reg, cfg, nil)
	if len(first.Healthy) != 8 {
		t.Fatalf("first sweep: healthy=%v", first.Healthy)
	}
	for s, st := range first.PerShard {
		if st.PlansBuilt != 1 || st.PlanCacheHits != 0 {
			t.Fatalf("cold shard %d: built=%d hits=%d, want 1/0", s, st.PlansBuilt, st.PlanCacheHits)
		}
	}
	second := mustSweep(t, d, reg, cfg, nil)
	if len(second.Healthy) != 8 {
		t.Fatalf("second sweep: healthy=%v", second.Healthy)
	}
	for s, st := range second.PerShard {
		if st.PlansBuilt != 0 {
			t.Fatalf("warm shard %d still built %d plans", s, st.PlansBuilt)
		}
		if st.PlanCacheHits != 1 {
			t.Fatalf("warm shard %d: cache hits=%d, want 1", s, st.PlanCacheHits)
		}
	}
	if second.PlansBuilt != 0 || second.PlanCacheHits != 2 {
		t.Fatalf("warm rollup: built=%d hits=%d, want 0/2", second.PlansBuilt, second.PlanCacheHits)
	}
	if second.PlanPatches != 8 {
		t.Fatalf("per-device freshness patched %d of 8", second.PlanPatches)
	}
}

// gatedEndpoint blocks the first Send until release closes, and
// signals started exactly once. It is how the steal test removes all
// wall-clock timing from the schedule: stragglers are held on
// channels, not slowed by sleeps.
type gatedEndpoint struct {
	channel.Endpoint
	start   sync.Once
	started chan<- struct{}
	release <-chan struct{}
}

func (g *gatedEndpoint) Send(m []byte) error {
	g.start.Do(func() {
		if g.started != nil {
			close(g.started)
		}
		if g.release != nil {
			<-g.release
		}
	})
	return g.Endpoint.Send(m)
}

// TestWorkStealingDeterministic: seeded straggler injection with a
// fully synchronized schedule must show an exact steal count. Fleet of
// five: devices 1..4 are TinyLX (routed to shard 0 — the bigger class
// goes first), device 5 SmallLX on shard 1. Concurrency 2 → worker 0
// homes on shard 0, worker 1 on shard 1. Device 1 is the straggler: it
// blocks until everything else finished. Worker 1 is gated until the
// straggler is definitely in flight on worker 0, then drains its own
// single device and must steal devices 4, 3, 2 — exactly three steals,
// every run, because worker 0 is pinned the whole time.
func TestWorkStealingDeterministic(t *testing.T) {
	reg := mustRegistry(t, 5, func(id uint64) (*core.System, error) {
		geo := device.TinyLX()
		if id == 5 {
			geo = device.SmallLX()
		}
		return core.NewSystem(core.Config{
			Geo:        geo,
			App:        netlist.Blinker(8),
			KeyMode:    core.KeyDynPUF,
			DeviceID:   id,
			LabLatency: -1,
			Seed:       int64(id),
		})
	})
	stragglerStarted := make(chan struct{})
	releaseStraggler := make(chan struct{})
	var others sync.WaitGroup // devices 2..5
	others.Add(4)
	go func() {
		others.Wait()
		close(releaseStraggler)
	}()
	d := New(Config{Shards: 2})
	opts := func(id uint64) core.AttestOptions {
		return core.AttestOptions{
			WrapVerifierChannel: func(ep channel.Endpoint) channel.Endpoint {
				switch id {
				case 1:
					// The straggler: in flight immediately, done last.
					return &gatedEndpoint{Endpoint: ep, started: stragglerStarted, release: releaseStraggler}
				case 5:
					// Worker 1's own device: held until the straggler is
					// pinned on worker 0, so worker 1 can never grab it.
					return &notifyClose{Endpoint: &gatedEndpoint{Endpoint: ep, release: stragglerStarted}, done: others.Done}
				default:
					return &notifyClose{Endpoint: ep, done: others.Done}
				}
			},
		}
	}
	rep := mustSweep(t, d, reg, fleet.SweepConfig{Concurrency: 2, SharePlans: true}, opts)
	if len(rep.Healthy) != 5 {
		t.Fatalf("healthy=%v unreachable=%v failed=%v", rep.Healthy, rep.Unreachable, rep.Failed)
	}
	if rep.Steals != 3 {
		t.Fatalf("steals=%d, want exactly 3", rep.Steals)
	}
	if rep.PerShard[1].Stolen != 3 || rep.PerShard[0].Stolen != 0 {
		t.Fatalf("per-shard steals %+v", rep.PerShard)
	}
	// Attribution: stolen devices keep their class's (victim) shard but
	// name the thief worker; device 1 stays with worker 0.
	for _, r := range rep.Results {
		switch r.DeviceID {
		case 1:
			if r.Shard != 0 || r.Worker != 0 {
				t.Fatalf("straggler attribution: %+v", r)
			}
		case 2, 3, 4:
			if r.Shard != 0 || r.Worker != 1 {
				t.Fatalf("stolen device %d attribution: shard=%d worker=%d", r.DeviceID, r.Shard, r.Worker)
			}
		case 5:
			if r.Shard != 1 || r.Worker != 1 {
				t.Fatalf("home device 5 attribution: %+v", r)
			}
		}
	}
}

// notifyClose signals session completion: runPlan closes the wrapped
// verifier endpoint exactly once, after the report is in hand.
type notifyClose struct {
	channel.Endpoint
	once sync.Once
	done func()
}

func (n *notifyClose) Close() error {
	n.once.Do(n.done)
	return n.Endpoint.Close()
}
