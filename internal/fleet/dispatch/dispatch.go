// Package dispatch is the execution layer of the fleet stack: it runs
// one sweep over a registry through N verifier shards. Each shard owns
// the attestation plans (and, in a long-lived Dispatcher, the
// PlanCache) of the device classes routed to it — class-affinity
// routing keeps a class's plan and nonce-patch path hot on one shard
// instead of smearing it across all of them. Workers drain their home
// shard's queue first and then steal from other shards' tails, so a
// shard full of stragglers cannot idle the rest of the pool.
//
// The dispatcher preserves the single-engine sweep semantics exactly:
// one bounded worker pool of SweepConfig.Concurrency sessions across
// ALL shards, per-device deadlines, and the same verdict taxonomy —
// which is what lets swarm.Fleet.Sweep collapse to a one-shard call of
// this engine, and what the differential test (sharded ≡ single-engine,
// verdicts and H_Vrf bit-identical) pins down.
package dispatch

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"time"

	"sacha/internal/attestation"
	"sacha/internal/core"
	"sacha/internal/fleet"
	"sacha/internal/fleet/registry"
	"sacha/internal/obs"
	"sacha/internal/obs/span"
	"sacha/internal/trace"
)

// Fleet-sweep metric families: live progress (in-flight and completed
// device attestations) and the per-class health partition of the most
// recent sweep. The class gauges are overwritten sweep by sweep — they
// answer "how healthy is each device class right now", while the
// counters accumulate across sweeps. The families keep their historic
// names (the engine moved here from internal/swarm; dashboards and the
// campaign metric audit did not move).
var (
	mSweepInflight = obs.Default().Gauge("sacha_sweep_inflight",
		"Device attestations currently running in fleet sweeps.")
	mSweepCompleted = obs.Default().CounterVec("sacha_sweep_completed_total",
		"Device attestations completed in fleet sweeps, by verdict.", "verdict")
	mSweeps = obs.Default().Counter("sacha_sweeps_total",
		"Fleet sweeps run.")
	mClassState = obs.Default().GaugeVec("sacha_sweep_class_state",
		"Per-class health partition of the most recent fleet sweep.", "class", "state")
	mKeysRotated = obs.Default().Counter("sacha_sweep_keys_rotated_total",
		"Per-device PUF key rotations performed by RotateKey-policy sweeps.")
	mNonceReplays = obs.Default().Counter("sacha_sweep_nonce_replays_total",
		"Nonces the durable anti-replay journal refused to issue.")

	// Per-shard accounting of the sharded dispatcher.
	mRouted = obs.Default().CounterVec("sacha_dispatch_routed_total",
		"Devices class-affinity-routed to a dispatcher shard.", "shard")
	mSteals = obs.Default().CounterVec("sacha_dispatch_steals_total",
		"Devices a shard's workers stole from other shards' queues.", "shard")
	mShardPlansBuilt = obs.Default().CounterVec("sacha_dispatch_plans_built_total",
		"Attestation plans built by a dispatcher shard.", "shard")
	mShardCacheHits = obs.Default().CounterVec("sacha_dispatch_plan_cache_hits_total",
		"Plan cache hits served to a dispatcher shard.", "shard")
)

// Config shapes a Dispatcher.
type Config struct {
	// Shards is the number of verifier shards; values < 1 mean 1 (the
	// single-engine layout the swarm facade uses).
	Shards int
	// PlanCacheSize, when > 0, gives every shard its own PlanCache of
	// that capacity, persisting across sweeps — the warm path of a
	// long-lived dispatcher (sacha-fleetd): after the first sweep every
	// shard serves its classes from its own cache and builds zero
	// plans. A SweepConfig.PlanCache, when set, overrides these and is
	// shared by all shards (the campaign harness's layout).
	PlanCacheSize int
}

// Dispatcher executes sweeps over N shards. It is safe for sequential
// reuse across sweeps (that is what keeps the per-shard caches warm);
// concurrent Sweep calls are legal but share the per-shard caches.
type Dispatcher struct {
	shards int
	caches []*attestation.PlanCache
}

// New builds a dispatcher.
func New(cfg Config) *Dispatcher {
	n := cfg.Shards
	if n < 1 {
		n = 1
	}
	d := &Dispatcher{shards: n, caches: make([]*attestation.PlanCache, n)}
	if cfg.PlanCacheSize > 0 {
		for i := range d.caches {
			d.caches[i] = attestation.NewPlanCache(cfg.PlanCacheSize)
		}
	}
	return d
}

// Shards returns the shard count.
func (d *Dispatcher) Shards() int { return d.shards }

// planEntry is the outcome of one per-class plan build. patch marks the
// plan as a nonce-patchable base: each device derives its own nonce via
// Plan.WithNonce instead of running the plan as built.
type planEntry struct {
	plan  *attestation.Plan
	patch bool
	err   error
}

// sweepState is the per-sweep immutable context the workers share.
type sweepState struct {
	cfg       fleet.SweepConfig
	reg       registry.Registry
	order     []uint64
	systems   []*core.System
	classes   []string // aligned with order
	plans      map[string]planEntry
	sweepNonce uint64
	nonceBase  uint64
	trace     span.TraceID
	root      *span.Span
	queues    []*queue
	results   []fleet.DeviceResult
	stats     []fleet.ShardStats
	statsMu   sync.Mutex
}

// queue is one shard's device backlog: indices into order. The home
// worker pops the head (preserving enrollment order, the cache-friendly
// end); thieves pop the tail, classic work-stealing, so victim and
// thief never contend on the same element.
type queue struct {
	mu    sync.Mutex
	items []int
}

func (q *queue) popHead() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return 0, false
	}
	i := q.items[0]
	q.items = q.items[1:]
	return i, true
}

func (q *queue) popTail() (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if len(q.items) == 0 {
		return 0, false
	}
	i := q.items[len(q.items)-1]
	q.items = q.items[:len(q.items)-1]
	return i, true
}

// validate rejects contradictory sweep configurations before any
// network or fabric work starts.
func validate(st *sweepState) error {
	cfg := st.cfg
	if !cfg.Freshness.Valid() {
		return fmt.Errorf("sweep: unknown freshness policy %d", int(cfg.Freshness))
	}
	if cfg.Nonce != nil && cfg.Freshness != attestation.PerSweep {
		return &fleet.NoncePolicyError{Policy: cfg.Freshness}
	}
	if cfg.Freshness == attestation.RotateKey {
		for i, sys := range st.systems {
			if mode := sys.KeyMode(); mode != core.KeyDynPUF {
				return &fleet.KeyModeError{DeviceID: st.order[i], Mode: mode}
			}
		}
	}
	if cfg.Delta {
		// The delta artifacts (scan steps, expected raw frames, the
		// pre-encoded nonce-frame rewrite) live in the shared per-class
		// plan, and the admissibility precondition is per-device state only
		// the ledger carries — neither half works without its config.
		if !cfg.SharePlans {
			return fmt.Errorf("sweep: Delta requires SharePlans (delta artifacts live in the shared per-class plan)")
		}
		if cfg.Trust == nil {
			return fmt.Errorf("sweep: Delta requires a Trust ledger (every session would fall back cold without recorded warmth)")
		}
	}
	if cfg.Nonces != nil && !cfg.SharePlans {
		// The legacy per-device-plan path draws its nonces deep inside
		// core.System.Attest, where no journal can intercept them — a
		// Nonces config there would silently journal nothing.
		return fmt.Errorf("sweep: Nonces (anti-replay journal) requires SharePlans — only the shared-plan path issues its nonces where the sweep can spend them")
	}
	return nil
}

// route assigns every device class to a shard, balancing by device
// count: classes are placed biggest-first onto the currently lightest
// shard (ties break on class key, then shard index), so a two-class
// fleet on a two-shard dispatcher always splits one class per shard.
// The assignment is a pure function of the membership — the property
// that keeps a class's plans landing on the same shard sweep after
// sweep, which is what makes the per-shard caches worth owning.
func route(st *sweepState, shards int) map[string]int {
	return routeClasses(st.classes, shards)
}

// RouteClasses computes the class→shard assignment the dispatcher
// would use for the registry's current membership — the same pure
// function Sweep routes with, so fleetd's /fleet/devices listing can
// report shard placement without running a sweep.
func RouteClasses(reg registry.Registry, shards int) map[string]int {
	if shards < 1 {
		shards = 1
	}
	classes := make([]string, 0, len(reg.IDs()))
	for _, id := range reg.IDs() {
		c, _ := reg.ClassOf(id)
		classes = append(classes, c)
	}
	return routeClasses(classes, shards)
}

// routeClasses is the shared assignment: one entry per device (not per
// class), so class weights fall out of the multiplicity.
func routeClasses(classes []string, shards int) map[string]int {
	count := make(map[string]int)
	for _, c := range classes {
		count[c]++
	}
	keys := make([]string, 0, len(count))
	for c := range count {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool {
		if count[keys[i]] != count[keys[j]] {
			return count[keys[i]] > count[keys[j]]
		}
		return keys[i] < keys[j]
	})
	load := make([]int, shards)
	assign := make(map[string]int, len(keys))
	for _, c := range keys {
		best := 0
		for s := 1; s < shards; s++ {
			if load[s] < load[best] {
				best = s
			}
		}
		assign[c] = best
		load[best] += count[c]
	}
	return assign
}

// buildPlans constructs (or fetches from a cache) one shared plan per
// device class, attributing build/hit counts to the class's shard.
// Under PerSweep the plan bakes in the sweep nonce; under
// PerDevice/RotateKey it is a nonce-patchable base (built from
// PatchableSpec, cache-keyed nonce-free) that attestOne re-nonces per
// device. A class whose plan fails to build carries the error to every
// member (reported Failed, not Unreachable — nothing was transported).
func (d *Dispatcher) buildPlans(st *sweepState, classShard map[string]int) {
	cfg := st.cfg
	patchable := cfg.Freshness != attestation.PerSweep
	nonce := st.sweepNonce
	st.plans = make(map[string]planEntry)
	for i, sys := range st.systems {
		key := st.classes[i]
		if _, ok := st.plans[key]; ok {
			continue
		}
		shard := classShard[key]
		var spec attestation.Spec
		var err error
		if patchable {
			spec, err = sys.PatchableSpec(cfg.PlanOpts)
		} else {
			spec, err = sys.PlanSpec(nonce, cfg.PlanOpts)
		}
		if err != nil {
			st.plans[key] = planEntry{err: err}
			continue
		}
		cache := cfg.PlanCache
		if cache == nil {
			cache = d.caches[shard]
		}
		if cache != nil {
			p, didBuild, err := cache.GetOrBuild(spec)
			st.plans[key] = planEntry{plan: p, patch: patchable, err: err}
			if err == nil {
				if didBuild {
					st.stats[shard].PlansBuilt++
				} else {
					st.stats[shard].PlanCacheHits++
				}
			}
			continue
		}
		p, err := attestation.NewPlan(spec)
		st.plans[key] = planEntry{plan: p, patch: patchable, err: err}
		st.stats[shard].PlansBuilt++
	}
}

// Sweep attests every registry member through the sharded worker pool.
// The context cancels the whole sweep: devices not yet started when ctx
// is done are reported Unreachable with ctx's error. A contradictory
// configuration (pinned nonce under a per-device freshness policy,
// RotateKey over a non-rotatable key mode) is rejected with a typed
// error before any device is touched.
func (d *Dispatcher) Sweep(ctx context.Context, reg registry.Registry, cfg fleet.SweepConfig, opts func(deviceID uint64) core.AttestOptions) (*fleet.Report, error) {
	if opts == nil {
		opts = func(uint64) core.AttestOptions { return core.AttestOptions{} }
	}
	order := reg.IDs()
	st := &sweepState{
		cfg:     cfg,
		reg:     reg,
		order:   order,
		systems: make([]*core.System, len(order)),
		classes: make([]string, len(order)),
		results: make([]fleet.DeviceResult, len(order)),
		stats:   make([]fleet.ShardStats, d.shards),
	}
	for i := range st.stats {
		st.stats[i].Shard = i
	}
	for i, id := range order {
		sys, ok := reg.System(id)
		if !ok {
			return nil, fmt.Errorf("sweep: registry lists device %d but cannot resolve it", id)
		}
		st.systems[i] = sys
		st.classes[i], _ = reg.ClassOf(id)
	}
	if err := validate(st); err != nil {
		return nil, err
	}
	// Sweep-level Compress/Delta are plan-shaping: fold them into the
	// options every shard builds (and cache-keys) its class plans with.
	// Per-device sessions still opt in individually in attestOne — the
	// plan merely carries the pre-encoded artifacts.
	if cfg.Compress {
		st.cfg.PlanOpts.Compress = true
	}
	if cfg.Delta {
		st.cfg.PlanOpts.Delta = true
	}
	workers := cfg.Concurrency
	if workers < 1 {
		workers = fleet.DefaultConcurrency
	}
	if workers > len(order) {
		workers = len(order)
	}
	start := time.Now()
	mSweeps.Inc()
	keysRotated := 0
	if cfg.Freshness == attestation.RotateKey {
		// Rotate every key before routing and plan building: the shipped
		// PUF circuit changes each class's golden image AND its class key,
		// so membership is re-read below and the per-class plans are built
		// for the new generation.
		for _, id := range order {
			if err := reg.RotateKey(id); err != nil {
				return nil, fmt.Errorf("sweep: rotating key of device %d: %w", id, err)
			}
			keysRotated++
		}
		mKeysRotated.Add(uint64(keysRotated))
		for i, id := range order {
			st.classes[i], _ = reg.ClassOf(id)
		}
	}
	if cfg.SharePlans && cfg.Freshness == attestation.PerSweep {
		// The single sweep nonce is drawn here (not in buildPlans) so the
		// anti-replay journal can spend it before any plan or session
		// exists: a replayed sweep nonce aborts the sweep with no device
		// ever configured under it.
		st.sweepNonce = rand.Uint64()
		if cfg.Nonce != nil {
			st.sweepNonce = *cfg.Nonce
		}
		if cfg.Nonces != nil {
			if err := cfg.Nonces.Spend(st.sweepNonce); err != nil {
				mNonceReplays.Inc()
				return nil, &fleet.NonceReplayError{Nonce: st.sweepNonce, Err: err}
			}
		}
	}
	st.nonceBase = rand.Uint64()
	if cfg.NonceSeed != nil {
		st.nonceBase = *cfg.NonceSeed
	}
	// The trace ID derives from the nonce base — the same seed that
	// already pins every per-device nonce — so a pinned NonceSeed pins
	// the whole span ID space and two runs of the same sweep export
	// identical causal trees.
	st.trace = span.NewTraceID(st.nonceBase)
	if cfg.Spans != nil {
		st.root = cfg.Spans.StartTrace(st.trace, "sweep")
		st.root.SetTag("devices", strconv.Itoa(len(order)))
		st.root.SetTag("shards", strconv.Itoa(d.shards))
		st.root.SetTag("freshness", cfg.Freshness.String())
	}
	classShard := route(st, d.shards)
	st.queues = make([]*queue, d.shards)
	for s := range st.queues {
		st.queues[s] = &queue{}
	}
	for i := range order {
		s := classShard[st.classes[i]]
		st.queues[s].items = append(st.queues[s].items, i)
		st.stats[s].Routed++
	}
	for s := range st.stats {
		seen := 0
		for c, sh := range classShard {
			if sh == s && c != "" {
				seen++
			}
		}
		st.stats[s].Classes = seen
		mRouted.With(strconv.Itoa(s)).Add(uint64(st.stats[s].Routed))
	}
	if cfg.SharePlans {
		d.buildPlans(st, classShard)
		for s := range st.stats {
			mShardPlansBuilt.With(strconv.Itoa(s)).Add(uint64(st.stats[s].PlansBuilt))
			mShardCacheHits.With(strconv.Itoa(s)).Add(uint64(st.stats[s].PlanCacheHits))
		}
	}
	var plansBuilt, planCacheHits int
	for s := range st.stats {
		plansBuilt += st.stats[s].PlansBuilt
		planCacheHits += st.stats[s].PlanCacheHits
	}
	if cfg.Tracker != nil {
		targets := make([]obs.SweepTarget, 0, len(order))
		for i, id := range order {
			targets = append(targets, obs.SweepTarget{
				Name:  fmt.Sprintf("device-%d", id),
				Class: st.classes[i],
			})
		}
		cfg.Tracker.Begin(targets)
	}
	obs.Logger().Info("sweep start", "devices", len(order), "workers", workers,
		"shards", d.shards, "share_plans", cfg.SharePlans, "freshness", cfg.Freshness.String(),
		"plans_built", plansBuilt, "plan_cache_hits", planCacheHits, "keys_rotated", keysRotated)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			d.runWorker(ctx, st, worker, opts)
		}(w)
	}
	wg.Wait()

	out := &fleet.Report{
		Results:       st.results,
		Elapsed:       time.Since(start),
		PlansBuilt:    plansBuilt,
		PlanCacheHits: planCacheHits,
		KeysRotated:   keysRotated,
		PerShard:      st.stats,
		PerClass:      make(map[string]fleet.ClassHealth),
	}
	for s := range st.stats {
		out.Steals += st.stats[s].Stolen
	}
	for _, r := range st.results {
		if r.PlanPatched {
			out.PlanPatches++
		}
		ch := out.PerClass[r.Class]
		switch {
		case r.Healthy():
			out.Healthy = append(out.Healthy, r.DeviceID)
			ch.Healthy++
		case r.Compromised():
			out.Compromised = append(out.Compromised, r.DeviceID)
			ch.Compromised++
		case r.Unreachable():
			out.Unreachable = append(out.Unreachable, r.DeviceID)
			ch.Unreachable++
		default:
			out.Failed = append(out.Failed, r.DeviceID)
			ch.Failed++
		}
		out.PerClass[r.Class] = ch
		var nre *fleet.NonceReplayError
		if errors.As(r.Err, &nre) {
			out.NonceReplays = append(out.NonceReplays, r.DeviceID)
		}
		if r.Report != nil {
			out.Retries += r.Report.Retries
			out.TransportFaults += r.Report.TransportFaults
			if r.Report.Delta.Enabled {
				if r.Report.Delta.Applied {
					out.DeltaApplied++
				} else {
					out.DeltaFallbacks++
				}
				if len(r.Report.Delta.Unexpected) > 0 {
					out.DeltaUnexpected = append(out.DeltaUnexpected, r.DeviceID)
				}
			}
		}
	}
	if st.root != nil {
		st.root.SetTag("healthy", strconv.Itoa(len(out.Healthy)))
		st.root.SetTag("compromised", strconv.Itoa(len(out.Compromised)))
		st.root.SetTag("unreachable", strconv.Itoa(len(out.Unreachable)))
		st.root.SetTag("failed", strconv.Itoa(len(out.Failed)))
		st.root.SetTag("steals", strconv.Itoa(out.Steals))
		st.root.End()
	}
	for class, ch := range out.PerClass {
		mClassState.With(class, obs.VerdictHealthy).Set(int64(ch.Healthy))
		mClassState.With(class, obs.VerdictCompromised).Set(int64(ch.Compromised))
		mClassState.With(class, obs.VerdictUnreachable).Set(int64(ch.Unreachable))
		mClassState.With(class, obs.VerdictFailed).Set(int64(ch.Failed))
	}
	obs.Logger().Info("sweep done", "elapsed", out.Elapsed,
		"healthy", len(out.Healthy), "compromised", len(out.Compromised),
		"unreachable", len(out.Unreachable), "failed", len(out.Failed),
		"retries", out.Retries, "transport_faults", out.TransportFaults,
		"plan_patches", out.PlanPatches, "keys_rotated", out.KeysRotated,
		"steals", out.Steals,
		"delta_applied", out.DeltaApplied, "delta_fallbacks", out.DeltaFallbacks)
	return out, nil
}

// runWorker drains the worker's home shard queue head-first, then
// steals from the other shards' tails (scanning from the next shard
// up, a fixed order) until every queue is dry. No queue grows during a
// sweep, so a full empty scan is a correct exit condition.
func (d *Dispatcher) runWorker(ctx context.Context, st *sweepState, worker int, opts func(uint64) core.AttestOptions) {
	home := worker % d.shards
	for {
		if i, ok := st.queues[home].popHead(); ok {
			st.results[i] = d.attestOne(ctx, st, i, home, worker, opts(st.order[i]))
			continue
		}
		stole := false
		for off := 1; off < d.shards; off++ {
			victim := (home + off) % d.shards
			if i, ok := st.queues[victim].popTail(); ok {
				st.statsMu.Lock()
				st.stats[home].Stolen++
				st.statsMu.Unlock()
				mSteals.With(strconv.Itoa(home)).Inc()
				// The stolen device still attests through the victim
				// shard's plan — affinity follows the class, not the
				// thief — so Shard names the victim and Worker the thief.
				st.results[i] = d.attestOne(ctx, st, i, victim, worker, opts(st.order[i]))
				stole = true
				break
			}
		}
		if !stole {
			return
		}
	}
}

// sessionEventCap bounds the per-session protocol event log a traced
// sweep creates when the caller did not supply one — enough for the
// full Fig. 9 exchange of a mid-size device, and the retained stream a
// flight record embeds.
const sessionEventCap = 512

// attestOne runs a single device attestation under the sweep's deadline
// discipline, through the class's shared plan when the sweep built one.
func (d *Dispatcher) attestOne(ctx context.Context, st *sweepState, i, shard, worker int, o core.AttestOptions) (res fleet.DeviceResult) {
	cfg := st.cfg
	t0 := time.Now()
	id := st.order[i]
	sys := st.systems[i]
	class := st.classes[i]
	name := fmt.Sprintf("device-%d", id)
	if cfg.Tracker != nil {
		cfg.Tracker.Start(name)
	}
	var sp *span.Span
	var sessionLog *trace.Log
	if cfg.Spans != nil {
		// The session span's ID derives from (trace, device) only, so it
		// is stable across shard placement and steal order; which worker
		// actually ran the device is attribution, recorded as tags.
		sp = st.root.DeviceChild(name, id)
		sp.SetTag("class", class)
		sp.SetTag("shard", strconv.Itoa(shard))
		sp.SetTag("worker", strconv.Itoa(worker))
		if home := worker % d.shards; home != shard {
			sp.SetTag("stolen_from_shard", strconv.Itoa(shard))
			sp.SetTag("thief_home_shard", strconv.Itoa(home))
		}
		if o.Opts.Events == nil {
			sessionLog = trace.NewLog(sessionEventCap)
			o.Opts.Events = sessionLog
		}
		o.Opts.Span = sp
	}
	mSweepInflight.Inc()
	defer func() {
		res.Class = class
		res.Shard = shard
		res.Worker = worker
		if sp != nil {
			sp.SetTag("verdict", res.Verdict())
			if res.Err != nil {
				sp.SetTag("err", res.Err.Error())
			}
			if res.Nonce != 0 {
				sp.SetTag("nonce", fmt.Sprintf("%016x", res.Nonce))
			}
			sp.End()
		}
		if cfg.Flight != nil && res.Verdict() != obs.VerdictHealthy {
			var events []trace.Event
			if sessionLog != nil {
				events = sessionLog.Events()
			}
			var rep any
			if res.Report != nil {
				rep = res.Report
			}
			cfg.Flight.RecordVerdict(cfg.Spans, st.trace, id, res.Verdict(), rep, events)
		}
		if cfg.Trust != nil {
			// Full trust — the delta admissibility precondition for the
			// NEXT session — is a Healthy verdict whose delta scan (if one
			// ran) saw no drift outside the nonce frames. Everything else,
			// including transport failures and plan errors, demotes to cold.
			fullTrust := res.Healthy() && len(res.Report.Delta.Unexpected) == 0
			cfg.Trust.Record(id, class, fullTrust)
		}
		mSweepInflight.Dec()
		mSweepCompleted.With(res.Verdict()).Inc()
		if cfg.Tracker != nil {
			out := obs.SweepOutcome{Verdict: res.Verdict(), Elapsed: res.Elapsed,
				Shard: shard, Worker: worker}
			if res.Report != nil {
				out.Retries = res.Report.Retries
				out.TransportFaults = res.Report.TransportFaults
				if res.Report.Delta.Enabled {
					out.DeltaApplied = res.Report.Delta.Applied
					out.DeltaFallback = res.Report.Delta.Fallback
					out.FramesRewritten = res.Report.Delta.FramesRewritten
				}
			}
			if res.Err != nil {
				out.Err = res.Err.Error()
			}
			cfg.Tracker.Done(name, out)
		}
		obs.Logger().Debug("device attested", "device", id, "class", class,
			"shard", shard, "worker", worker,
			"verdict", res.Verdict(), "elapsed", res.Elapsed)
	}()
	if err := ctx.Err(); err != nil {
		return fleet.DeviceResult{DeviceID: id, Err: err}
	}
	if cfg.Compress {
		o.Opts.Compress = true
	}
	if cfg.Delta {
		// The session runs delta only when the ledger warrants it: the
		// device's immediately preceding full-trust attestation succeeded
		// under exactly this class (key generation + golden build). A
		// RotateKey sweep advanced the class above, so every first session
		// after a rotation is cold by construction.
		o.Opts.Delta = true
		o.Opts.DeltaWarm = cfg.Trust.Warm(id, class)
		if o.Opts.DeltaMaxRewrite == 0 {
			o.Opts.DeltaMaxRewrite = cfg.PlanOpts.DeltaMaxRewrite
		}
	}
	attest := sys.Attest
	var patched bool
	var deviceNonce uint64
	if st.plans != nil {
		entry := st.plans[class]
		if entry.err != nil {
			return fleet.DeviceResult{DeviceID: id, Err: fmt.Errorf("sweep: plan for device %d: %w", id, entry.err), Elapsed: time.Since(t0)}
		}
		plan := entry.plan
		if entry.patch {
			// Per-device freshness: re-nonce the class's shared plan for
			// this device. The patch is O(nonce column) and never mutates
			// the base, so concurrent workers patch the same plan freely.
			// The nonce derives from the sweep base — a pure function of
			// (base, device), identical no matter which shard or worker
			// runs the device.
			deviceNonce = fleet.DeviceNonce(st.nonceBase, id)
			if cfg.Nonces != nil {
				// Spend the derived nonce before it configures anything: a
				// replay (e.g. the same NonceSeed re-submitted after a
				// restart) fails this device, it is never attested under the
				// journaled nonce.
				if err := cfg.Nonces.Spend(deviceNonce); err != nil {
					mNonceReplays.Inc()
					return fleet.DeviceResult{DeviceID: id, Err: &fleet.NonceReplayError{DeviceID: id, Nonce: deviceNonce, Err: err}, Elapsed: time.Since(t0), Nonce: deviceNonce}
				}
			}
			pp, err := plan.WithNonce(deviceNonce)
			if err != nil {
				return fleet.DeviceResult{DeviceID: id, Err: fmt.Errorf("sweep: patching nonce for device %d: %w", id, err), Elapsed: time.Since(t0)}
			}
			plan, patched = pp, true
		}
		attest = func(o core.AttestOptions) (*attestation.Report, error) {
			return sys.AttestWithPlan(plan, o)
		}
	}
	dctx := ctx
	if cfg.PerDeviceTimeout > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(ctx, cfg.PerDeviceTimeout)
		defer cancel()
	}
	type outcome struct {
		rep *attestation.Report
		err error
	}
	done := make(chan outcome, 1)
	if cfg.Sessions != nil {
		cfg.Sessions.Add(1)
	}
	go func() {
		if cfg.Sessions != nil {
			defer cfg.Sessions.Done()
		}
		rep, err := attest(o)
		done <- outcome{rep, err}
	}()
	select {
	case oc := <-done:
		return fleet.DeviceResult{DeviceID: id, Report: oc.rep, Err: oc.err, Elapsed: time.Since(t0), PlanPatched: patched, Nonce: deviceNonce}
	case <-dctx.Done():
		// The attestation goroutine finishes on its own (the simulated
		// protocol always terminates; a TCP one hits its own timeouts)
		// and its result is discarded — the deadline verdict stands.
		return fleet.DeviceResult{DeviceID: id, Err: fmt.Errorf("sweep: device %d: %w", id, dctx.Err()), Elapsed: time.Since(t0), PlanPatched: patched, Nonce: deviceNonce}
	}
}
