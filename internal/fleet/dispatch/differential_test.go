package dispatch_test

import (
	"context"
	"testing"

	"sacha/internal/attestation"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/fleet"
	"sacha/internal/fleet/dispatch"
	"sacha/internal/fleet/registry"
	"sacha/internal/netlist"
	"sacha/internal/prover"
	"sacha/internal/swarm"
)

// diffFactory provisions the differential fleet: 32 devices, mixed
// TinyLX/SmallLX geometries, DynPart-PUF keys (so RotateKey is legal),
// seeded per device — two registries built from it are bit-identical
// twins, which is what lets the test attribute any output difference
// to the engines rather than the fleets.
func diffFactory(id uint64) (*core.System, error) {
	geo := device.TinyLX()
	if id%2 == 0 {
		geo = device.SmallLX()
	}
	return core.NewSystem(core.Config{
		Geo:        geo,
		App:        netlist.Blinker(8),
		KeyMode:    core.KeyDynPUF,
		DeviceID:   id,
		BuildID:    0xD1FF,
		LabLatency: -1,
		Seed:       int64(id) * 7,
	})
}

// tamperOpts flips one dynamic-partition bit on the chosen members of
// either fleet — the same deterministic corruption on both sides, so
// the Compromised partition (and its H_Vrf values) must also match
// bit for bit.
func tamperOpts(lookup func(uint64) (*core.System, bool), tampered map[uint64]bool) func(uint64) core.AttestOptions {
	return func(id uint64) core.AttestOptions {
		if !tampered[id] {
			return core.AttestOptions{}
		}
		sys, _ := lookup(id)
		return core.AttestOptions{TamperDevice: func(d *prover.Device) {
			d.Fabric.Mem.Frame(sys.DynFrames()[3])[5] ^= 2
		}}
	}
}

// TestDifferentialShardedEqualsSingleEngine is the facade contract of
// the layered refactor: over a 32-device mixed-geometry fleet, a
// 4-shard dispatch sweep must produce verdicts AND per-device H_Vrf
// bit-identical to the single-engine swarm.Sweep baseline, under all
// three freshness policies, tampered members included. Per-device
// nonces are pinned through SweepConfig (Nonce for PerSweep, NonceSeed
// for the patch policies), so every difference that could appear here
// would be an engine divergence, not noise.
func TestDifferentialShardedEqualsSingleEngine(t *testing.T) {
	const size = 32
	tampered := map[uint64]bool{7: true, 20: true}
	policies := []attestation.FreshnessPolicy{
		attestation.PerSweep, attestation.PerDevice, attestation.RotateKey,
	}
	for _, policy := range policies {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			baseline, err := swarm.NewFleet(size, diffFactory)
			if err != nil {
				t.Fatal(err)
			}
			reg, err := registry.New(size, diffFactory)
			if err != nil {
				t.Fatal(err)
			}
			cfg := fleet.SweepConfig{
				Concurrency: 8,
				SharePlans:  true,
				Freshness:   policy,
			}
			if policy == attestation.PerSweep {
				nonce := uint64(0xD1FF_FEED)
				cfg.Nonce = &nonce
			} else {
				seed := uint64(0xABBA_CAFE)
				cfg.NonceSeed = &seed
			}

			single, err := baseline.Sweep(context.Background(), cfg,
				tamperOpts(baseline.System, tampered))
			if err != nil {
				t.Fatalf("single-engine sweep: %v", err)
			}
			sharded, err := dispatch.New(dispatch.Config{Shards: 4}).Sweep(
				context.Background(), reg, cfg, tamperOpts(reg.System, tampered))
			if err != nil {
				t.Fatalf("sharded sweep: %v", err)
			}

			if len(single.Results) != size || len(sharded.Results) != size {
				t.Fatalf("result counts: single=%d sharded=%d", len(single.Results), len(sharded.Results))
			}
			if len(sharded.PerShard) != 4 {
				t.Fatalf("sharded dispatch ran %d shards", len(sharded.PerShard))
			}
			routed := 0
			for _, st := range sharded.PerShard {
				routed += st.Routed
			}
			if routed != size {
				t.Fatalf("affinity routing covered %d of %d devices", routed, size)
			}
			for i := range single.Results {
				s, h := single.Results[i], sharded.Results[i]
				if s.DeviceID != h.DeviceID {
					t.Fatalf("result order diverged at %d: %d vs %d", i, s.DeviceID, h.DeviceID)
				}
				if s.Verdict() != h.Verdict() {
					t.Fatalf("device %d verdict diverged: single=%s sharded=%s (errs %v / %v)",
						s.DeviceID, s.Verdict(), h.Verdict(), s.Err, h.Err)
				}
				if s.Nonce != h.Nonce {
					t.Fatalf("device %d nonce diverged: %#x vs %#x", s.DeviceID, s.Nonce, h.Nonce)
				}
				if (s.Report == nil) != (h.Report == nil) {
					t.Fatalf("device %d report presence diverged", s.DeviceID)
				}
				if s.Report != nil && s.Report.HVrf != h.Report.HVrf {
					t.Fatalf("device %d H_Vrf diverged:\n  single:  %x\n  sharded: %x",
						s.DeviceID, s.Report.HVrf, h.Report.HVrf)
				}
				wantCompromised := tampered[s.DeviceID]
				if gotCompromised := s.Compromised(); gotCompromised != wantCompromised {
					t.Fatalf("device %d: compromised=%v, tampered=%v", s.DeviceID, gotCompromised, wantCompromised)
				}
			}
			if got, want := len(single.Compromised), len(tampered); got != want {
				t.Fatalf("baseline isolated %d compromised members, want %d", got, want)
			}
			if single.KeysRotated != sharded.KeysRotated {
				t.Fatalf("key rotations diverged: %d vs %d", single.KeysRotated, sharded.KeysRotated)
			}
		})
	}
}
