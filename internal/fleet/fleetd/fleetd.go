// Package fleetd is the coordination layer of the fleet stack: a
// long-running daemon that owns a registry, a sharded dispatcher and
// (optionally) a scheduler, and exposes the fleet over a JSON control
// API mounted on the observability mux:
//
//	GET  /fleet/devices — membership with class and shard assignment
//	GET  /fleet/sweeps  — history of completed sweeps, newest first
//	POST /fleet/sweep   — trigger a sweep (optionally class-scoped)
//	GET  /fleet/status  — daemon state: active sweep, totals, drain
//
// With tracing configured (Template.Spans / Template.Flight) the trace
// exports /debug/trace and /debug/trace/perfetto and the post-mortem
// listing /fleet/flightrecords mount alongside.
//
// Sweeps are serialized: API triggers and scheduler firings queue on
// one mutex, so the fleet is never mid-two-sweeps (the dispatcher
// bounds concurrency within a sweep; fleetd bounds sweeps to one).
// Shutdown is a graceful drain — new sweeps are refused with 503, the
// in-flight sweep finishes, and every attestation session is joined
// through the Sessions wait group before Run returns, so no straggler
// goroutine outlives the daemon.
package fleetd

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"sacha/internal/attestation"
	"sacha/internal/core"
	"sacha/internal/fleet"
	"sacha/internal/fleet/dispatch"
	"sacha/internal/fleet/registry"
	"sacha/internal/fleet/scheduler"
	"sacha/internal/obs"
	"sacha/internal/obs/span"
)

// Config shapes a Daemon.
type Config struct {
	// Registry is the fleet membership the daemon coordinates.
	Registry registry.Registry
	// Dispatcher executes the sweeps. Nil builds a single-shard one.
	Dispatcher *dispatch.Dispatcher
	// Template is the base sweep configuration every triggered sweep
	// starts from. The daemon owns Tracker and Sessions; values set here
	// are overwritten. Template.Spans and Template.Flight, when set,
	// also back the daemon's /debug/trace, /debug/trace/perfetto and
	// /fleet/flightrecords endpoints (Routes mounts them).
	Template fleet.SweepConfig
	// Scheduler, when it has an enabled Default or PerClass cadence,
	// re-attests each class on its own loop. The zero value disables
	// scheduled sweeps: the daemon then only sweeps on POST /fleet/sweep.
	Scheduler scheduler.Config
	// Opts, when non-nil, supplies each device's per-run attestation
	// options (adversary hooks, transport knobs) — the seam the smoke
	// tests tamper fleets through. Nil attests clean.
	Opts func(deviceID uint64) core.AttestOptions
	// History bounds the retained sweep records; older records are
	// dropped. Values < 1 default to 64.
	History int
	// DrainGrace bounds the drain: when the in-flight sweep has not
	// finished within it, the sweep's context is cancelled (unstarted
	// devices report Unreachable) and the drain then joins the sessions
	// that did launch. Zero waits indefinitely.
	DrainGrace time.Duration
}

// SweepRecord is one completed sweep in the /fleet/sweeps history — a
// JSON-ready summary of the dispatcher's Report.
type SweepRecord struct {
	ID        int       `json:"id"`
	Trigger   string    `json:"trigger"` // "api" or "scheduled"
	Class     string    `json:"class,omitempty"`
	Freshness string    `json:"freshness"`
	StartedAt time.Time `json:"started_at"`
	ElapsedNS int64     `json:"elapsed_ns"`

	Devices        int      `json:"devices"`
	Healthy        int      `json:"healthy"`
	Compromised    int      `json:"compromised"`
	Unreachable    int      `json:"unreachable"`
	Failed         int      `json:"failed"`
	CompromisedIDs []uint64 `json:"compromised_ids,omitempty"`

	PlansBuilt    int `json:"plans_built"`
	PlanCacheHits int `json:"plan_cache_hits"`
	PlanPatches   int `json:"plan_patches"`
	KeysRotated   int `json:"keys_rotated"`
	Steals        int `json:"steals"`

	// Delta-mode rollups (zero unless the sweep template enables Delta):
	// how many sessions took the scan-and-rewrite path, how many fell
	// back to a full overwrite, and which devices drifted from golden.
	DeltaApplied    int      `json:"delta_applied,omitempty"`
	DeltaFallbacks  int      `json:"delta_fallbacks,omitempty"`
	DeltaUnexpected []uint64 `json:"delta_unexpected,omitempty"`

	// NonceReplays lists devices whose derived nonce the anti-replay
	// journal refused (state-dir daemons only) — they are counted under
	// Failed, never attested under the replayed nonce.
	NonceReplays []uint64 `json:"nonce_replays,omitempty"`

	PerShard []ShardRecord `json:"per_shard"`

	Err string `json:"err,omitempty"`
}

// ShardRecord is the JSON shape of one shard's fleet.ShardStats.
type ShardRecord struct {
	Shard         int `json:"shard"`
	Routed        int `json:"routed"`
	Stolen        int `json:"stolen"`
	Classes       int `json:"classes"`
	PlansBuilt    int `json:"plans_built"`
	PlanCacheHits int `json:"plan_cache_hits"`
}

// Daemon coordinates a fleet: it serializes sweeps from the control
// API and the scheduler over one dispatcher and keeps their history.
type Daemon struct {
	cfg     Config
	disp    *dispatch.Dispatcher
	tracker *obs.SweepTracker

	sessions sync.WaitGroup // every attestation session ever launched
	sweeps   sync.WaitGroup // in-flight sweep goroutines
	sweepMu  sync.Mutex     // serializes sweep execution

	mu       sync.Mutex
	draining bool
	nextID   int
	active   *SweepRecord // header of the in-flight sweep, nil when idle
	records  []SweepRecord
	cancels  map[int]context.CancelFunc
}

// New builds a daemon. It does not start anything; Run does.
func New(cfg Config) *Daemon {
	if cfg.History < 1 {
		cfg.History = 64
	}
	d := &Daemon{
		cfg:     cfg,
		disp:    cfg.Dispatcher,
		tracker: obs.NewSweepTracker(),
		cancels: make(map[int]context.CancelFunc),
	}
	if d.disp == nil {
		d.disp = dispatch.New(dispatch.Config{})
	}
	return d
}

// Tracker is the daemon's live sweep tracker — hand it to obs.Serve so
// /debug/sweep shows the in-flight sweep's per-device progress.
func (d *Daemon) Tracker() *obs.SweepTracker { return d.tracker }

// Run blocks until ctx ends, firing scheduled sweeps in the meantime,
// then drains: the control API refuses new sweeps with 503, the
// in-flight sweep finishes (bounded by DrainGrace), and every
// attestation session is joined before Run returns.
func (d *Daemon) Run(ctx context.Context) {
	sch := scheduler.New(d.cfg.Scheduler, registry.Classes(d.cfg.Registry),
		func(ctx context.Context, tr scheduler.Trigger) {
			d.Sweep(ctx, "scheduled", tr.Class)
		})
	sch.Run(ctx) // returns immediately when no cadence is enabled
	<-ctx.Done()
	d.drain()
}

// drain refuses new sweeps, bounds the in-flight one by DrainGrace and
// joins every launched session.
func (d *Daemon) drain() {
	d.mu.Lock()
	d.draining = true
	grace := d.cfg.DrainGrace
	d.mu.Unlock()
	obs.Logger().Info("fleetd draining", "grace", grace)

	done := make(chan struct{})
	go func() {
		d.sweeps.Wait()
		close(done)
	}()
	if grace > 0 {
		select {
		case <-done:
		case <-time.After(grace):
			d.mu.Lock()
			for _, cancel := range d.cancels {
				cancel()
			}
			d.mu.Unlock()
			<-done
		}
	} else {
		<-done
	}
	// Sessions a per-device deadline or a cancelled sweep abandoned keep
	// running after their sweep returns; joining them here is what makes
	// the shutdown clean rather than merely quiet.
	d.sessions.Wait()
	obs.Logger().Info("fleetd drained")
}

// Sweep runs one serialized sweep over the fleet (or one class of it)
// and records the outcome. It is the entry point shared by the control
// API and the scheduler; callers block until the sweep completes. A
// draining daemon refuses with an error.
func (d *Daemon) Sweep(ctx context.Context, trigger, class string) (SweepRecord, error) {
	return d.sweep(ctx, trigger, class, sweepSpec{}, nil)
}

// sweepSpec carries one trigger's overrides of the sweep template —
// the control-API knobs (freshness policy, pinned nonce material) the
// crash-recovery rigs drive replays through. Nil fields inherit the
// template.
type sweepSpec struct {
	freshness *attestation.FreshnessPolicy
	nonce     *uint64
	nonceSeed *uint64
}

// sweep is Sweep with an optional admission channel: accepted receives
// the allocated sweep ID as soon as the sweep is admitted (before it
// queues on the serialization mutex), or 0 when the daemon refused it —
// what lets the async POST handler answer 202 while the sweep runs.
func (d *Daemon) sweep(ctx context.Context, trigger, class string, spec sweepSpec, accepted chan<- int) (SweepRecord, error) {
	d.mu.Lock()
	if d.draining {
		d.mu.Unlock()
		if accepted != nil {
			accepted <- 0
		}
		return SweepRecord{}, fmt.Errorf("fleetd: draining, not accepting sweeps")
	}
	d.nextID++
	id := d.nextID
	sctx, cancel := context.WithCancel(ctx)
	d.cancels[id] = cancel
	d.sweeps.Add(1)
	d.mu.Unlock()
	if accepted != nil {
		accepted <- id
	}

	defer func() {
		cancel()
		d.mu.Lock()
		delete(d.cancels, id)
		d.mu.Unlock()
		d.sweeps.Done()
	}()

	reg := d.cfg.Registry
	if class != "" {
		reg = registry.ByClass(reg, class)
	}

	// One sweep at a time: scheduler firings of different classes and
	// concurrent API triggers queue here instead of interleaving.
	d.sweepMu.Lock()
	defer d.sweepMu.Unlock()

	cfg := d.cfg.Template
	cfg.Tracker = d.tracker
	cfg.Sessions = &d.sessions
	if spec.freshness != nil {
		cfg.Freshness = *spec.freshness
	}
	if spec.nonce != nil {
		cfg.Nonce = spec.nonce
	}
	if spec.nonceSeed != nil {
		cfg.NonceSeed = spec.nonceSeed
	}

	rec := SweepRecord{
		ID:        id,
		Trigger:   trigger,
		Class:     class,
		Freshness: cfg.Freshness.String(),
		StartedAt: time.Now(),
	}
	// Publish a copy of the header: the sweep below keeps mutating rec,
	// and /fleet/status reads active concurrently.
	hdr := rec
	d.mu.Lock()
	d.active = &hdr
	d.mu.Unlock()

	rep, err := d.disp.Sweep(sctx, reg, cfg, d.cfg.Opts)
	rec.ElapsedNS = time.Since(rec.StartedAt).Nanoseconds()
	if err != nil {
		rec.Err = err.Error()
	} else {
		rec.Devices = len(rep.Results)
		rec.Healthy = len(rep.Healthy)
		rec.Compromised = len(rep.Compromised)
		rec.Unreachable = len(rep.Unreachable)
		rec.Failed = len(rep.Failed)
		rec.CompromisedIDs = rep.Compromised
		rec.PlansBuilt = rep.PlansBuilt
		rec.PlanCacheHits = rep.PlanCacheHits
		rec.PlanPatches = rep.PlanPatches
		rec.KeysRotated = rep.KeysRotated
		rec.Steals = rep.Steals
		rec.DeltaApplied = rep.DeltaApplied
		rec.DeltaFallbacks = rep.DeltaFallbacks
		rec.DeltaUnexpected = rep.DeltaUnexpected
		rec.NonceReplays = rep.NonceReplays
		for _, st := range rep.PerShard {
			rec.PerShard = append(rec.PerShard, ShardRecord(st))
		}
	}

	d.mu.Lock()
	d.active = nil
	d.records = append(d.records, rec)
	if len(d.records) > d.cfg.History {
		d.records = d.records[len(d.records)-d.cfg.History:]
	}
	d.mu.Unlock()
	if err != nil {
		return rec, err
	}
	return rec, nil
}

// deviceRow is one member in the /fleet/devices listing. Generation is
// the device's current key generation (core.System.KeyGeneration) —
// what the crash-recovery rig compares across a daemon restart.
type deviceRow struct {
	ID         uint64 `json:"id"`
	Class      string `json:"class"`
	Shard      int    `json:"shard"`
	Generation uint64 `json:"generation"`
}

// statusView is the /fleet/status JSON shape.
type statusView struct {
	Devices   int            `json:"devices"`
	Classes   int            `json:"classes"`
	Shards    int            `json:"shards"`
	SweepsRun int            `json:"sweeps_run"`
	Active    *SweepRecord   `json:"active"` // nil when idle
	Draining  bool           `json:"draining"`
	Last      *SweepRecord   `json:"last,omitempty"`
	Verdicts  map[string]int `json:"last_verdicts,omitempty"`
}

// Routes returns the /fleet/* control API, ready to mount on the obs
// mux via obs.Serve's extra routes. When the sweep template traces
// (Template.Spans) the trace export endpoints ride along, and when it
// flight-records (Template.Flight) so does /fleet/flightrecords.
func (d *Daemon) Routes() []obs.Route {
	routes := []obs.Route{
		{Pattern: "/fleet/devices", Handler: http.HandlerFunc(d.handleDevices)},
		{Pattern: "/fleet/sweeps", Handler: http.HandlerFunc(d.handleSweeps)},
		{Pattern: "/fleet/sweep", Handler: http.HandlerFunc(d.handleSweep)},
		{Pattern: "/fleet/status", Handler: http.HandlerFunc(d.handleStatus)},
	}
	if col := d.cfg.Template.Spans; col != nil {
		routes = append(routes, span.Routes(col)...)
	}
	if rec := d.cfg.Template.Flight; rec != nil {
		routes = append(routes, obs.Route{
			Pattern: "/fleet/flightrecords", Handler: span.FlightHandler(rec),
		})
	}
	return routes
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// handleDevices lists the membership with each device's class and the
// shard class-affinity routing would place it on — the routing is a
// pure function of the membership, so the listing can compute it
// without running a sweep.
func (d *Daemon) handleDevices(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	reg := d.cfg.Registry
	shardOf := dispatch.RouteClasses(reg, d.disp.Shards())
	rows := make([]deviceRow, 0, len(reg.IDs()))
	for _, id := range reg.IDs() {
		class, _ := reg.ClassOf(id)
		row := deviceRow{ID: id, Class: class, Shard: shardOf[class]}
		if sys, ok := reg.System(id); ok {
			row.Generation = sys.KeyGeneration()
		}
		rows = append(rows, row)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"devices": rows,
		"classes": registry.Classes(reg),
	})
}

// handleSweeps returns the sweep history, newest first.
func (d *Daemon) handleSweeps(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	d.mu.Lock()
	out := make([]SweepRecord, 0, len(d.records))
	for i := len(d.records) - 1; i >= 0; i-- {
		out = append(out, d.records[i])
	}
	d.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"sweeps": out})
}

// sweepRequest is the optional POST /fleet/sweep body.
type sweepRequest struct {
	// Class scopes the sweep to one device class (empty = whole fleet).
	Class string `json:"class"`
	// Wait makes the POST synchronous: the response is the completed
	// SweepRecord instead of an accepted-and-running header.
	Wait bool `json:"wait"`
	// Freshness overrides the template's freshness policy for this sweep
	// ("per-sweep", "per-device" or "rotate-key"; empty inherits).
	Freshness string `json:"freshness"`
	// Nonce pins the sweep nonce (PerSweep under SharePlans) and
	// NonceSeed the per-device derivation base (PerDevice/RotateKey) —
	// the reproducibility knobs the crash-recovery rig replays sweeps
	// through. Nil inherits the template (usually: draw fresh).
	Nonce     *uint64 `json:"nonce"`
	NonceSeed *uint64 `json:"nonce_seed"`
}

// handleSweep triggers a sweep. By default it returns 202 immediately
// with the sweep's ID ({"id": N, "status": "started"}) and the caller
// polls /fleet/status; {"wait": true} blocks and returns the record.
func (d *Daemon) handleSweep(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	var req sweepRequest
	if r.Body != nil {
		// An empty body is a legal whole-fleet trigger.
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			http.Error(w, "bad request body: "+err.Error(), http.StatusBadRequest)
			return
		}
	}
	var spec sweepSpec
	if req.Freshness != "" {
		pol, err := attestation.ParseFreshnessPolicy(req.Freshness)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		spec.freshness = &pol
	}
	spec.nonce = req.Nonce
	spec.nonceSeed = req.NonceSeed
	d.mu.Lock()
	draining := d.draining
	d.mu.Unlock()
	if draining {
		http.Error(w, "draining, not accepting sweeps", http.StatusServiceUnavailable)
		return
	}
	if req.Wait {
		rec, err := d.sweep(r.Context(), "api", req.Class, spec, nil)
		if err != nil && rec.ID == 0 {
			http.Error(w, err.Error(), http.StatusServiceUnavailable)
			return
		}
		writeJSON(w, http.StatusOK, rec)
		return
	}
	// Async trigger: the sweep outlives the request, so it runs under
	// the daemon's lifetime, not the request context.
	started := make(chan int, 1)
	go func() {
		if _, err := d.sweep(context.Background(), "api", req.Class, spec, started); err != nil {
			obs.Logger().Warn("api sweep failed", "err", err)
		}
	}()
	// The ID is allocated before the sweep queues on the serialization
	// mutex, so the response can name it without waiting for the sweep.
	id := <-started
	if id == 0 {
		http.Error(w, "draining, not accepting sweeps", http.StatusServiceUnavailable)
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]any{"id": id, "status": "started"})
}

// handleStatus reports the daemon's state: membership size, shard
// count, the in-flight sweep (if any) and the last completed record.
func (d *Daemon) handleStatus(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "GET only", http.StatusMethodNotAllowed)
		return
	}
	reg := d.cfg.Registry
	d.mu.Lock()
	view := statusView{
		Devices:   len(reg.IDs()),
		Classes:   len(registry.Classes(reg)),
		Shards:    d.disp.Shards(),
		SweepsRun: len(d.records),
		Active:    d.active,
		Draining:  d.draining,
	}
	if n := len(d.records); n > 0 {
		last := d.records[n-1]
		view.Last = &last
		view.Verdicts = map[string]int{
			obs.VerdictHealthy:     last.Healthy,
			obs.VerdictCompromised: last.Compromised,
			obs.VerdictUnreachable: last.Unreachable,
			obs.VerdictFailed:      last.Failed,
		}
	}
	d.mu.Unlock()
	writeJSON(w, http.StatusOK, view)
}
