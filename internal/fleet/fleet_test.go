package fleet

import "testing"

// TestDeviceNonceDistinct: the derivation must keep per-device nonces
// distinct (pairwise, over a realistic fleet span) and reproducible —
// the two properties the differential sharding proof leans on.
func TestDeviceNonceDistinct(t *testing.T) {
	const base = 0xFEEDFACE
	seen := make(map[uint64]uint64)
	for id := uint64(1); id <= 4096; id++ {
		n := DeviceNonce(base, id)
		if prev, dup := seen[n]; dup {
			t.Fatalf("nonce collision: devices %d and %d both derive %#x", prev, id, n)
		}
		seen[n] = id
		if again := DeviceNonce(base, id); again != n {
			t.Fatalf("derivation not pure: device %d got %#x then %#x", id, n, again)
		}
	}
}

// TestDeviceNonceBaseSensitivity: different sweep bases must decorrelate
// the whole fleet's nonces, or a repeated PerDevice sweep would re-use
// challenges.
func TestDeviceNonceBaseSensitivity(t *testing.T) {
	for id := uint64(1); id <= 64; id++ {
		if DeviceNonce(1, id) == DeviceNonce(2, id) {
			t.Fatalf("device %d derives the same nonce under bases 1 and 2", id)
		}
	}
}
