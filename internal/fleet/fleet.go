// Package fleet holds the shared vocabulary of the layered fleet
// stack: the sweep configuration, the per-device and per-sweep result
// types, and the typed configuration errors. The layers compose as
//
//	registry  — device membership, class index, key-generation state
//	scheduler — scheduled/continuous sweep loops (per-class cadence)
//	dispatch  — N verifier shards, class-affinity routing, work stealing
//
// with swarm.Fleet surviving as a thin single-shard facade so existing
// callers (the verifier CLI, the campaign harness, the e2e rigs) keep
// working unchanged. The types live here, below all three layers, so
// the facade can alias them without an import cycle.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"sacha/internal/attestation"
	"sacha/internal/core"
	"sacha/internal/fleet/registry"
	"sacha/internal/obs"
	"sacha/internal/obs/span"
	"sacha/internal/verifier"
)

// NoncePolicyError reports a SweepConfig whose pinned Nonce contradicts
// its freshness policy: a pinned nonce fixes one nonce for the whole
// sweep, while PerDevice and RotateKey exist to draw fresh per-device
// nonces. The two requests are silently resolvable either way, so the
// sweep refuses to guess.
type NoncePolicyError struct {
	Policy attestation.FreshnessPolicy
}

func (e *NoncePolicyError) Error() string {
	return fmt.Sprintf("swarm: SweepConfig pins a nonce but selects the %s freshness policy — a pinned nonce implies per-sweep freshness; drop the pin or the policy", e.Policy)
}

// NonceSpender is the anti-replay journal the sweep consults before a
// nonce serves an attestation: Spend is an atomic check-and-set that
// fails (store.ErrNonceReplayed) if the nonce was already spent and is
// still inside its replay window. store.NonceJournal implements it; the
// interface lives here so the dispatch layer depends on the contract,
// not the persistence.
type NonceSpender interface {
	Spend(nonce uint64) error
}

// NonceReplayError reports a nonce the anti-replay journal refused —
// either the sweep nonce itself (PerSweep, before any session starts)
// or one device's derived nonce (PerDevice/RotateKey, reported as that
// device's Failed result). DeviceID is 0 for the sweep-level case.
type NonceReplayError struct {
	DeviceID uint64
	Nonce    uint64
	Err      error
}

func (e *NonceReplayError) Error() string {
	if e.DeviceID == 0 {
		return fmt.Sprintf("fleet: sweep nonce %#016x refused by the anti-replay journal: %v", e.Nonce, e.Err)
	}
	return fmt.Sprintf("fleet: device %d nonce %#016x refused by the anti-replay journal: %v", e.DeviceID, e.Nonce, e.Err)
}

func (e *NonceReplayError) Unwrap() error { return e.Err }

// KeyModeError reports a RotateKey-policy sweep over a fleet member
// whose key provisioning cannot rotate (only the DynPart-PUF mode ships
// replaceable key circuits).
type KeyModeError struct {
	DeviceID uint64
	Mode     core.KeyMode
}

func (e *KeyModeError) Error() string {
	return fmt.Sprintf("swarm: freshness policy rotate-key requires the DynPart-PUF key mode on every member, but device %d uses key mode %d", e.DeviceID, e.Mode)
}

// DeviceResult is the outcome for one fleet member.
type DeviceResult struct {
	DeviceID uint64
	// Class is the device's core.System.ClassKey — the plan-sharing
	// group the per-class health tallies aggregate over.
	Class   string
	Report  *verifier.Report
	Err     error
	Elapsed time.Duration
	// PlanPatched reports that this device was attested through a
	// WithNonce patch of its class's shared plan (PerDevice or RotateKey
	// freshness under SharePlans); Nonce is then the per-device nonce
	// the patch encoded.
	PlanPatched bool
	Nonce       uint64
	// Shard is the dispatcher shard whose plan served this device and
	// Worker the pool worker that ran the session. Stolen devices keep
	// the victim's Shard (the plan they attested through) while Worker
	// names the thief. Single-engine sweeps report shard 0.
	Shard, Worker int
}

// Healthy reports whether the device attested successfully.
func (r DeviceResult) Healthy() bool {
	return r.Err == nil && r.Report != nil && r.Report.Accepted
}

// Unreachable reports whether the sweep could not complete the protocol
// with the device for transport reasons: retry budget exhausted, link
// reset, or the per-device deadline expired. An unreachable device has
// no verdict — it is neither healthy nor compromised.
func (r DeviceResult) Unreachable() bool {
	return r.Err != nil && (verifier.IsTransport(r.Err) ||
		errors.Is(r.Err, context.DeadlineExceeded) || errors.Is(r.Err, context.Canceled))
}

// Compromised reports whether the protocol completed and the verifier
// rejected the device (MAC or bitstream mismatch).
func (r DeviceResult) Compromised() bool {
	return r.Err == nil && r.Report != nil && !r.Report.Accepted
}

// Verdict names the health partition this result falls into: one of
// obs.VerdictHealthy, VerdictCompromised, VerdictUnreachable or
// VerdictFailed.
func (r DeviceResult) Verdict() string {
	switch {
	case r.Healthy():
		return obs.VerdictHealthy
	case r.Compromised():
		return obs.VerdictCompromised
	case r.Unreachable():
		return obs.VerdictUnreachable
	default:
		return obs.VerdictFailed
	}
}

// ClassHealth partitions one device class's sweep outcomes.
type ClassHealth struct {
	Healthy, Compromised, Unreachable, Failed int
}

// ShardStats is one dispatcher shard's share of a sweep. Routed counts
// the devices class-affinity routing assigned to the shard; Stolen the
// devices its workers took from other shards' queues after draining
// their own. Plan accounting is per shard because each shard owns the
// plans (and, in a long-lived dispatcher, the PlanCache) of its
// classes — the hot path class-affinity routing exists to protect.
type ShardStats struct {
	Shard         int
	Routed        int
	Stolen        int
	Classes       int
	PlansBuilt    int
	PlanCacheHits int
}

// Report aggregates a fleet sweep.
type Report struct {
	Results []DeviceResult
	// Healthy, Compromised, Unreachable and Failed partition the fleet:
	// accepted verdicts, rejected verdicts, transport failures, and
	// non-transport errors (e.g. a local golden-image build failure).
	Healthy, Compromised, Unreachable, Failed []uint64
	// PerClass partitions the same outcomes by device class
	// (core.System.ClassKey) — the multi-geometry fleet view: a class
	// whose members all land Unreachable points at a transport or
	// plan problem, one with Compromised members at an attack.
	PerClass map[string]ClassHealth
	// PerShard is the dispatcher's shard-by-shard accounting, indexed by
	// shard. Single-engine sweeps report exactly one entry.
	PerShard []ShardStats
	// Retries and TransportFaults aggregate the per-run transport
	// counters across the fleet, so sweep-level fault pressure is
	// visible without scraping individual reports.
	Retries, TransportFaults int
	// Elapsed is the wall time of the sweep.
	Elapsed time.Duration
	// PlansBuilt counts the attestation plans actually constructed for the
	// sweep: one per device class under SharePlans, fewer (down to zero)
	// when a PlanCache serves classes it has seen before.
	PlansBuilt int
	// PlanCacheHits counts device classes whose plan came out of the
	// sweep's PlanCache instead of being built.
	PlanCacheHits int
	// PlanPatches counts devices attested through a WithNonce patch of
	// their class's shared plan — the per-device freshness rotations that
	// did NOT cost a plan rebuild.
	PlanPatches int
	// KeysRotated counts the per-device PUF key rotations a RotateKey
	// sweep performed before attesting.
	KeysRotated int
	// Steals counts devices attested by a worker whose home shard had
	// drained — the work-stealing rollup of PerShard[i].Stolen.
	Steals int
	// DeltaApplied counts devices whose configuration phase ran the
	// rewrite-only delta path; DeltaFallbacks counts delta-enabled
	// sessions that fell back to the full overwrite (cold trust,
	// capability, threshold or observed drift — the per-device reports
	// carry the reason).
	DeltaApplied, DeltaFallbacks int
	// DeltaUnexpected lists devices whose delta scan observed drift
	// outside the nonce frames — configuration that changed under a
	// supposedly warm device. They were attested via the full-overwrite
	// fallback and demoted in the trust ledger, never silently skipped.
	DeltaUnexpected []uint64
	// NonceReplays lists devices whose derived nonce the anti-replay
	// journal refused (SweepConfig.Nonces). They are reported Failed with
	// a NonceReplayError, never attested under the replayed nonce.
	NonceReplays []uint64
}

// SweepConfig bounds a fleet sweep.
type SweepConfig struct {
	// Concurrency is the worker-pool size; at most Concurrency devices
	// are attested at any moment — across ALL shards of a sharded
	// dispatch, which splits the same budget instead of multiplying it.
	// Values < 1 default to min(8, fleet).
	Concurrency int
	// PerDeviceTimeout bounds each device's attestation; expired devices
	// are reported Unreachable. Zero means no per-device deadline.
	PerDeviceTimeout time.Duration
	// SharePlans, when set, builds one attestation.Plan per device class
	// (same geometry, application, build, key mode, ROM — see
	// core.System.ClassKey) before the worker pool starts, and shares it
	// read-only across all concurrent per-device Runs. The whole sweep
	// then uses one nonce and one set of plan-shaping options (PlanOpts);
	// per-device AttestOptions contribute only their per-run knobs
	// (Retry, Trace, adversary and channel hooks). This converts the
	// golden-image work from O(fleet × fabric) to O(classes × fabric).
	SharePlans bool
	// Nonce fixes the sweep nonce under SharePlans; nil draws a fresh
	// one. Ignored when SharePlans is unset (each device then draws its
	// own nonce as before). A pinned Nonce is only meaningful under the
	// PerSweep freshness policy; combining it with PerDevice or
	// RotateKey is a NoncePolicyError.
	Nonce *uint64
	// NonceSeed pins the base of the per-device nonce derivation under
	// the PerDevice and RotateKey policies: device d's nonce is then
	// DeviceNonce(*NonceSeed, d) — still distinct per device, but
	// reproducible, which is what lets a sharded dispatch be proven
	// bit-identical (verdicts AND H_Vrf) to a single-engine sweep. Nil
	// draws a random base per sweep. Ignored under PerSweep, where
	// Nonce already pins the single sweep nonce.
	NonceSeed *uint64
	// Freshness selects the sweep's freshness unit: PerSweep (the zero
	// value and status quo — one nonce shared by the whole sweep),
	// PerDevice (a fresh nonce per device, served as WithNonce patches
	// of each class's shared plan so the plan cache keeps hitting), or
	// RotateKey (PerDevice plus a PUF re-keying of every device before
	// the sweep, which rebuilds each class's plan once). RotateKey
	// requires every member to use core.KeyDynPUF.
	Freshness attestation.FreshnessPolicy
	// PlanOpts are the fleet-wide plan-shaping options under SharePlans
	// (Offset, Permutation, AppSteps, SignatureMode, ConfigBatch).
	PlanOpts verifier.Options
	// PlanCache, if non-nil under SharePlans, caches built plans across
	// sweeps keyed by (golden-image digest, geometry, options hash). A
	// repeated sweep with a pinned Nonce then builds zero plans — the
	// cache returns the previous sweep's plans, and Report.PlansBuilt /
	// PlanCacheHits make the split observable. When set it is shared by
	// every shard; when nil, a dispatcher created with a per-shard cache
	// size serves each shard from its own cache instead.
	PlanCache *attestation.PlanCache
	// Tracker, if non-nil, follows the sweep live: per-device
	// pending/running/done states with verdicts, served by the verifier
	// CLI and sacha-fleetd as the /debug/sweep snapshot.
	Tracker *obs.SweepTracker
	// Sessions, if non-nil, is Add(1)-ed for every attestation session
	// the sweep actually launches and Done-ed when that session's
	// goroutine finishes — including sessions a per-device deadline or a
	// sweep cancellation abandoned, which otherwise keep running (and
	// mutating their device) after Sweep returns. Campaign soaks, the
	// fleetd drain path and leak tests Wait on it to quarantine
	// consecutive sweeps from each other's stragglers.
	Sessions *sync.WaitGroup
	// Compress opts every session of the sweep into the compressed wire
	// encodings (plan-level Spec.Compress plus per-session negotiation).
	// Verdicts and H_Vrf are unchanged; only wire bytes shrink.
	Compress bool
	// Delta opts the sweep into delta configuration: devices the Trust
	// ledger marks warm for their current class are scanned and get only
	// their nonce frames rewritten; everything else (cold devices, drift,
	// missing capability) falls back to the full overwrite. Requires
	// SharePlans (the delta artifacts live in the shared plan).
	Delta bool
	// Trust is the fleet's delta-admissibility ledger. Required when
	// Delta is set: without recorded warmth every session would fall back
	// cold. The sweep consults it per device before the session and
	// records the outcome after — full trust only for a Healthy verdict
	// whose delta scan (if any) saw no unexpected drift.
	Trust *registry.TrustLedger
	// Spans, if non-nil, collects the sweep's causal span tree: one root
	// span per sweep (trace ID derived from the nonce base, so a pinned
	// NonceSeed pins the whole ID space), one session span per device
	// with shard/worker/steal attribution, and per-phase children plus
	// protocol events below each session. Nil disables tracing at zero
	// hot-path cost.
	Spans *span.Collector
	// Flight, if non-nil, snapshots a flight record for every session
	// that ends in a non-Healthy verdict: the trace's span tree, the
	// session's retained protocol events, the report and the metrics
	// movement since the previous record.
	Flight *span.Recorder
	// Nonces, if non-nil, is the durable anti-replay journal: every nonce
	// is spent (atomic check-and-set) immediately before it serves an
	// attestation. Under PerSweep the single sweep nonce is spent before
	// any session starts and a replay aborts the whole sweep; under
	// PerDevice/RotateKey each device's derived nonce is spent by its
	// worker and a replay fails only that device. Requires SharePlans —
	// the legacy per-device-plan path draws nonces deep inside
	// core.System where no journal can intercept them.
	Nonces NonceSpender
}

// DefaultConcurrency is the worker-pool size used when SweepConfig does
// not specify one.
const DefaultConcurrency = 8

// DeviceNonce derives device id's attestation nonce from a sweep-level
// base — a splitmix64 mix, so consecutive device IDs land on
// uncorrelated nonces while the mapping stays a pure function. Both the
// single-engine facade and the sharded dispatcher derive per-device
// nonces through this one function; that shared derivation (not luck)
// is why a sharded sweep's H_Vrf values are bit-identical to the
// single-engine baseline under a pinned NonceSeed.
func DeviceNonce(base, id uint64) uint64 {
	z := base + id*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
