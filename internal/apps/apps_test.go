package apps

import (
	"testing"

	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/netlist"
)

func TestEveryRegisteredAppBuildsSimulatesAndPlaces(t *testing.T) {
	geo := device.SmallLX()
	region := fabric.AppRegion(geo)
	for _, name := range Names() {
		d, err := ByName(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if d.Name == "" {
			t.Errorf("%s: unnamed design", name)
		}
		if _, err := netlist.NewSimulator(d); err != nil {
			t.Errorf("%s: does not simulate: %v", name, err)
		}
		im := fabric.NewImage(geo)
		if _, err := fabric.PlaceDesign(im, region, d); err != nil {
			t.Errorf("%s: does not place: %v", name, err)
		}
	}
}

func TestUnknownApp(t *testing.T) {
	if _, err := ByName("nonexistent"); err == nil {
		t.Fatal("unknown application accepted")
	}
}

func TestNamesSortedAndStable(t *testing.T) {
	names := Names()
	if len(names) < 8 {
		t.Fatalf("registry shrank: %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted: %v", names)
		}
	}
}
