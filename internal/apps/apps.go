// Package apps is the registry of demo applications for the dynamic
// partition, shared by the command-line tools.
package apps

import (
	"fmt"
	"sort"

	"sacha/internal/netlist"
)

// builders maps application names to constructors.
var builders = map[string]func() *netlist.Design{
	"blinker8":  func() *netlist.Design { return netlist.Blinker(8) },
	"blinker16": func() *netlist.Design { return netlist.Blinker(16) },
	"counter8":  func() *netlist.Design { return netlist.Counter(8) },
	"counter16": func() *netlist.Design { return netlist.Counter(16) },
	"lfsr16":    func() *netlist.Design { return netlist.LFSR(16, []int{0, 2, 3, 5}) },
	"adder8":    func() *netlist.Design { return netlist.RippleAdder(8) },
	"maj3":      netlist.Majority,
	"gray8":     func() *netlist.Design { return netlist.GrayCounter(8) },
	"shift16":   func() *netlist.Design { return netlist.ShiftRegister(16) },
	"ring12":    func() *netlist.Design { return netlist.OneHotRing(12) },
	"sc4": func() *netlist.Design {
		return netlist.SoftCore(netlist.SC4Program{
			{Op: netlist.SC4Addi, Imm: 3},
			{Op: netlist.SC4Xori, Imm: 0x55},
			{Op: netlist.SC4Jmp, Imm: 0},
		})
	},
}

// ByName builds the named application.
func ByName(name string) (*netlist.Design, error) {
	b, ok := builders[name]
	if !ok {
		return nil, fmt.Errorf("apps: unknown application %q (available: %v)", name, Names())
	}
	return b(), nil
}

// Names lists the available applications.
func Names() []string {
	out := make([]string, 0, len(builders))
	for n := range builders {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}
