package campaign

import (
	"context"
	"errors"
	"fmt"
	"math/bits"
	"math/rand"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"sacha/internal/attack"
	"sacha/internal/attestation"
	"sacha/internal/channel"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/fleet"
	"sacha/internal/fleet/dispatch"
	"sacha/internal/fleet/registry"
	"sacha/internal/netlist"
	"sacha/internal/obs"
	"sacha/internal/obs/span"
	"sacha/internal/prover"
	"sacha/internal/scrub"
	"sacha/internal/store"
	"sacha/internal/verifier"
)

// Handles on the swarm's sweep metric families (registration is
// idempotent), used to audit the live metrics against the campaign
// ledger — invariant 3.
var (
	cmSweeps = obs.Default().Counter("sacha_sweeps_total",
		"Fleet sweeps run.")
	cmSweepCompleted = obs.Default().CounterVec("sacha_sweep_completed_total",
		"Device attestations completed in fleet sweeps, by verdict.", "verdict")
	cmSweepInflight = obs.Default().Gauge("sacha_sweep_inflight",
		"Device attestations currently running in fleet sweeps.")
	mCampaignEvents = obs.Default().CounterVec("sacha_campaign_events_total",
		"Campaign events executed, by kind.", "kind")
	mCampaignViolations = obs.Default().Counter("sacha_campaign_violations_total",
		"Campaign invariant violations detected.")
)

// auditVerdicts are the sweep verdict partitions the metric audit
// reconciles against the ledger.
var auditVerdicts = []string{
	obs.VerdictHealthy, obs.VerdictCompromised, obs.VerdictUnreachable, obs.VerdictFailed,
}

// Engine executes one campaign over one provisioned fleet. An Engine is
// single-use: provision with New, drive with Run.
type Engine struct {
	sc      Scenario
	reg     registry.Registry
	disp    *dispatch.Dispatcher
	sched   *Scheduler
	cache   *attestation.PlanCache
	led     *ledger
	factory func(deviceID uint64) (*core.System, error)
	// Durable-state harness (non-nil only when the scenario weights crash
	// events): the store behind the registry, its directory (a temp dir
	// removed when Run ends) and the options every reopen uses.
	st        *store.Store
	stateDir  string
	storeOpts store.Options
	// spentSweepNonces are the PerSweep nonces the journal spent, in
	// order — the reconciliation witness runCrash replays against the
	// reopened journal.
	spentSweepNonces []uint64
	// sessions joins every attestation session a sweep launched —
	// including sessions a cancellation abandoned — so consecutive
	// events never overlap on a device.
	sessions sync.WaitGroup
	advByKey map[string]func(*core.System) attack.Result
	// Per-geometry artifacts, keyed by geometry name.
	tamperTargets map[string]tamperTarget
	masks         map[string]*fabric.Image
	baseline      metricBaseline
	spans         *span.Collector
	ran           bool
}

// AttachFlight arms the campaign with causal tracing and a flight
// recorder: every sweep collects its span tree into col, and every
// invariant violation snapshots a flight record into rec at the moment
// it is detected — while col still holds the surrounding sweep's tree.
// Tampered→Compromised is the EXPECTED campaign outcome, so the
// recorder fires on violations only, not on every non-Healthy verdict.
// Call before Run.
func (e *Engine) AttachFlight(col *span.Collector, rec *span.Recorder) {
	e.spans = col
	e.led.onViolate = func(v Violation) {
		detail := fmt.Sprintf("event %d [%s]: %s", v.Event, v.Kind, v.Detail)
		rec.RecordInvariant(col, 0, v.Device, detail)
	}
}

// tamperTarget is the unmasked static-partition configuration bit the
// tamper hook flips. It must live in the static region: the hook fires
// when the prover sees the first readback command, and with pipelined
// windows the configuration stream is still in flight at that point —
// a dynamic-region flip would be healed by the config frames still
// arriving behind it. Static frames are never rewritten by the
// protocol, so the flip deterministically survives into readback
// (the engine scrub-repairs tampered devices after the sweep).
type tamperTarget struct {
	frame, word, bit int
}

type metricBaseline struct {
	sweeps    uint64
	completed map[string]uint64
}

// FleetFactory returns the mixed-geometry campaign fleet factory:
// odd device IDs are TinyLX, even are SmallLX, all in the DynPart-PUF
// key mode (the only provisioning RotateKey sweeps accept), seeded from
// the scenario seed so equal scenarios provision equal fleets.
func FleetFactory(scenarioSeed int64) func(id uint64) (*core.System, error) {
	return func(id uint64) (*core.System, error) {
		geo := device.TinyLX()
		if id%2 == 0 {
			geo = device.SmallLX()
		}
		return core.NewSystem(core.Config{
			Geo:        geo,
			App:        netlist.Blinker(8),
			KeyMode:    core.KeyDynPUF,
			DeviceID:   id,
			BuildID:    0x50AC,
			LabLatency: -1,
			Seed:       scenarioSeed*0x1000193 + int64(id),
		})
	}
}

// New validates the scenario and provisions the campaign fleet. A
// scenario that weights crash events boots through the durable
// registry: enrollments and nonces live in a temp state directory the
// crash events close and reopen (and Run removes at the end).
func New(sc Scenario) (*Engine, error) {
	if err := sc.Validate(); err != nil {
		return nil, err
	}
	sc = sc.Normalized()
	factory := FleetFactory(sc.Seed)
	adv := make(map[string]func(*core.System) attack.Result)
	for _, a := range attack.Registry() {
		adv[a.Key] = a.Fn
	}
	e := &Engine{
		sc:            sc,
		disp:          dispatch.New(dispatch.Config{Shards: 1}),
		sched:         NewScheduler(sc),
		cache:         attestation.NewPlanCache(sc.PlanCacheSize),
		led:           newLedger(),
		factory:       factory,
		advByKey:      adv,
		tamperTargets: make(map[string]tamperTarget),
		masks:         make(map[string]*fabric.Image),
	}
	if sc.Weights.Crash > 0 {
		dir, err := os.MkdirTemp("", "sacha-campaign-state-*")
		if err != nil {
			return nil, fmt.Errorf("campaign: state dir: %w", err)
		}
		e.stateDir = dir
		e.storeOpts = store.Options{Sync: store.SyncBatch}
		st, err := store.Open(dir, e.storeOpts)
		if err != nil {
			os.RemoveAll(dir)
			return nil, fmt.Errorf("campaign: opening state store: %w", err)
		}
		dreg, err := registry.NewDurable(sc.Fleet, factory, st.Enrollment())
		if err != nil {
			st.Close()
			os.RemoveAll(dir)
			return nil, err
		}
		e.st, e.reg = st, dreg
	} else {
		reg, err := registry.New(sc.Fleet, factory)
		if err != nil {
			return nil, err
		}
		e.reg = reg
	}
	// Precompute the per-geometry mask and tamper target for every
	// geometry in the fleet: the tamper hook reads them from concurrent
	// sweep workers, so the maps must be frozen before the first event.
	for id := uint64(1); id <= uint64(sc.Fleet); id++ {
		sys, ok := e.reg.System(id)
		if !ok {
			return nil, fmt.Errorf("campaign: fleet has no device %d", id)
		}
		if _, ok := e.masks[sys.Geo.Name]; ok {
			continue
		}
		e.masks[sys.Geo.Name] = fabric.GenerateMask(sys.Geo)
		if _, err := e.findTamperTarget(sys); err != nil {
			return nil, err
		}
	}
	return e, nil
}

// Run executes the campaign until its bound (events, duration or ctx)
// trips, then audits the live metrics against the ledger and returns
// the report. The returned error covers harness failures (a plan that
// cannot build, a key that cannot rotate); invariant breaches are
// Report.Violations, not errors.
func (e *Engine) Run(ctx context.Context) (*Report, error) {
	if e.ran {
		return nil, fmt.Errorf("campaign: engine is single-use")
	}
	e.ran = true
	defer func() {
		if e.st != nil {
			e.st.Close()
			os.RemoveAll(e.stateDir)
		}
	}()
	e.captureBaseline()
	start := time.Now()
	var deadline time.Time
	if e.sc.Duration > 0 {
		deadline = start.Add(e.sc.Duration)
	}
	obs.Logger().Info("campaign start", "seed", e.sc.Seed, "fleet", e.sc.Fleet,
		"events", e.sc.MaxEvents, "duration", e.sc.Duration)
	for i := 0; ; i++ {
		if ctx.Err() != nil {
			break
		}
		if e.sc.MaxEvents > 0 && i >= e.sc.MaxEvents {
			break
		}
		if !deadline.IsZero() && !time.Now().Before(deadline) {
			break
		}
		ev := e.sched.Next(i)
		e.led.logEvent(ev)
		mCampaignEvents.With(ev.Kind.String()).Inc()
		var err error
		switch ev.Kind {
		case EventSweep, EventStorm, EventKill:
			err = e.runSweep(ctx, ev)
		case EventAttack:
			err = e.runAttack(ev)
		case EventSEU:
			err = e.runSEU(ev)
		case EventCrash:
			err = e.runCrash(ev)
		}
		if err != nil {
			return nil, fmt.Errorf("campaign: event %d (%s): %w", i, ev.Kind, err)
		}
		e.sampleHeap(ev)
	}
	e.auditMetrics()
	rep := e.led.report(e.sc, time.Since(start))
	mCampaignViolations.Add(uint64(len(rep.Violations)))
	obs.Logger().Info("campaign done", "events", rep.Events, "sweeps", rep.Sweeps,
		"violations", len(rep.Violations), "heap_peak_mb", rep.HeapPeakBytes>>20)
	return rep, nil
}

func (e *Engine) captureBaseline() {
	e.baseline = metricBaseline{
		sweeps:    cmSweeps.Value(),
		completed: make(map[string]uint64, len(auditVerdicts)),
	}
	for _, v := range auditVerdicts {
		e.baseline.completed[v] = cmSweepCompleted.With(v).Value()
	}
}

// stormRates are the per-message fault probabilities of a storm tier.
// Stall-class faults (drop, corrupt, reorder — each costs a retry
// timeout) are kept rare enough that a SmallLX protocol run stays fast
// and retry budgets are effectively never exhausted by the lottery
// alone; scripted resets are the deterministic Unreachable generator.
func stormRates(heavy bool) channel.FaultConfig {
	cfg := channel.FaultConfig{
		DropProb:    0.0010,
		DupProb:     0.0100,
		CorruptProb: 0.0010,
		ReorderProb: 0.0005,
		DelayProb:   0.0200,
		Delay:       time.Millisecond,
		// The injected no-op clock exercises the delay path without
		// wall-clock races deciding whether a delayed message beats a
		// retry timer — the determinism contract of the campaign.
		Sleep: func(time.Duration) {},
	}
	if heavy {
		cfg.DropProb *= 2
		cfg.DupProb *= 2
		cfg.CorruptProb *= 2
		cfg.ReorderProb *= 2
		cfg.DelayProb *= 2
	}
	return cfg
}

// retryPolicy is the sweep transport discipline. The timeout is
// deliberately generous for an in-process link: a busy box (8 SmallLX
// sessions, concurrent plan builds, -race, other race-instrumented
// test packages sharing the machine) can stall a scheduler for
// hundreds of milliseconds, and a CPU-starvation timeout must only
// cost a duplicate-tolerated resend, never a verdict. The budget is
// one no storm lottery or load spike plausibly exhausts — Unreachable
// verdicts come from scripted resets, which kill the connection
// outright regardless of timing, so the generosity costs nothing
// there.
func retryPolicy(ev Event, id uint64) verifier.RetryPolicy {
	return verifier.RetryPolicy{
		Timeout:    250 * time.Millisecond,
		MaxRetries: 12,
		Backoff:    2 * time.Millisecond,
		MaxBackoff: 10 * time.Millisecond,
		Seed:       ev.RetrySeed + int64(id),
		Window:     ev.Window,
	}
}

// runSweep executes the three sweep-family events: plain sweeps with
// tampered subsets, fault storms, and mid-flight kills.
func (e *Engine) runSweep(ctx context.Context, ev Event) error {
	tampered := make(map[uint64]bool, len(ev.Tampered))
	for _, id := range ev.Tampered {
		tampered[id] = true
	}
	faulted := make(map[uint64]DeviceFault, len(ev.Faults))
	for _, f := range ev.Faults {
		faulted[f.Device] = f
	}
	cfg := fleet.SweepConfig{
		Concurrency: e.sc.Concurrency,
		SharePlans:  true,
		Freshness:   ev.Freshness,
		PlanCache:   e.cache,
		Sessions:    &e.sessions,
		Spans:       e.spans,
	}
	if e.st != nil {
		cfg.Nonces = e.st.Nonces()
	}
	if ev.Freshness == attestation.PerSweep {
		nonce := ev.Nonce
		cfg.Nonce = &nonce
		if e.st != nil {
			// The scheduler's seeded stream never repeats a 64-bit nonce in
			// campaign-length runs, so the journal accepts every pinned
			// sweep nonce — and runCrash later replays this list against the
			// reopened journal as the durability witness.
			e.spentSweepNonces = append(e.spentSweepNonces, nonce)
		}
	}
	sctx := ctx
	var cancel context.CancelFunc
	var started atomic.Int64
	if ev.Kind == EventKill {
		sctx, cancel = context.WithCancel(ctx)
		defer cancel()
	}
	opts := func(id uint64) core.AttestOptions {
		if ev.Kind == EventKill && started.Add(1) == int64(ev.KillAfter)+1 {
			cancel()
		}
		o := core.AttestOptions{}
		o.Opts.Retry = retryPolicy(ev, id)
		if f, ok := faulted[id]; ok {
			fc := stormRates(f.Heavy)
			fc.Seed = f.Seed
			if f.ResetAt >= 0 {
				fc.Script = []channel.FaultOp{{Dir: channel.DirRecv, Index: f.ResetAt, Kind: channel.FaultReset}}
			}
			o.WrapVerifierChannel = func(ep channel.Endpoint) channel.Endpoint {
				return channel.NewFault(ep, fc)
			}
		}
		if tampered[id] {
			sys, _ := e.reg.System(id)
			tgt, err := e.tamperTargetFor(sys)
			if err == nil {
				o.TamperDevice = func(d *prover.Device) {
					d.Fabric.Mem.Frame(tgt.frame)[tgt.word] ^= 1 << uint(tgt.bit)
				}
			}
		}
		return o
	}
	rep, err := e.disp.Sweep(sctx, e.reg, cfg, opts)
	// Join stragglers before the next event: a session abandoned by the
	// kill must not still be driving its device when the next event
	// touches it.
	e.sessions.Wait()
	if err != nil {
		return err
	}
	e.led.sweeps++
	e.led.retries += rep.Retries
	e.led.faults += rep.TransportFaults
	e.led.keysRotated += rep.KeysRotated
	e.led.plansBuilt += rep.PlansBuilt
	e.led.planCacheHits += rep.PlanCacheHits

	for _, res := range rep.Results {
		verdict := res.Verdict()
		e.led.sweepVerdicts[verdict]++
		if ev.Kind == EventKill {
			// Any member of a killed sweep may have finished or been cut
			// off — both are fine; a cancellation manufacturing a verdict
			// is not. Fold the allowed outcomes into one matrix cell so
			// the matrix is identical across reruns regardless of which
			// sessions were in flight at cancel time.
			if verdict == obs.VerdictHealthy || verdict == obs.VerdictUnreachable {
				e.led.count(ExpectInterrupted, VerdictInterruptedOK)
			} else {
				e.led.count(ExpectInterrupted, verdict)
				e.led.violate(ev, res.DeviceID, "cancelled sweep produced %s (err=%v)", verdict, res.Err)
			}
			continue
		}
		expectation, ok := e.classify(tampered[res.DeviceID], faulted, res)
		e.led.count(expectation, verdict)
		if !ok {
			e.led.violate(ev, res.DeviceID, "%s device reported %s (err=%v)", expectation, verdict, res.Err)
		}
	}
	if v := cmSweepInflight.Value(); v != 0 {
		e.led.violate(ev, 0, "in-flight gauge stuck at %d after sweep", v)
	}
	// Un-tamper: the static-partition flip survives the sweep by design,
	// so scrub the tampered members back to golden before the next event
	// builds its expectations.
	for _, id := range ev.Tampered {
		sys, ok := e.reg.System(id)
		if !ok {
			continue
		}
		if err := e.repairDevice(sys); err != nil {
			return fmt.Errorf("repairing tampered device %d: %w", id, err)
		}
	}
	return nil
}

// classify names the expectation row for one non-kill sweep result and
// reports whether the verdict is allowed — the zero-false-verdicts
// invariant:
//
//	clean            → Healthy only
//	tampered         → Compromised only
//	faulted          → Healthy or Unreachable (never Compromised)
//	tampered-faulted → Compromised or Unreachable (never Healthy)
func (e *Engine) classify(tampered bool, faulted map[uint64]DeviceFault, res fleet.DeviceResult) (string, bool) {
	_, isFaulted := faulted[res.DeviceID]
	switch {
	case tampered && isFaulted:
		return ExpectTamperedFaulted, res.Compromised() || res.Unreachable()
	case tampered:
		return ExpectTampered, res.Compromised()
	case isFaulted:
		return ExpectFaulted, res.Healthy() || res.Unreachable()
	default:
		return ExpectClean, res.Healthy()
	}
}

// runAttack replays one registered adversary against one fleet member.
// The verifier must reject the run with a verdict — MAC or masked
// bitstream mismatch — and not through transport-looking noise, which
// is exactly the regression that would let a future adversary hide in
// the Unreachable partition. The device is scrub-repaired afterwards so
// attacks that damage persistent (static-partition) state do not leak
// into later events' expectations.
func (e *Engine) runAttack(ev Event) error {
	sys, ok := e.reg.System(ev.Device)
	if !ok {
		return fmt.Errorf("unknown device %d", ev.Device)
	}
	fn := e.advByKey[ev.Adversary]
	if fn == nil {
		return fmt.Errorf("unknown adversary %q", ev.Adversary)
	}
	res := fn(sys)
	tally := e.led.adversary(ev.Adversary)
	tally.Runs++
	if res.Detected {
		tally.Detected++
		tally.Mechanisms[res.Mechanism]++
	}
	switch {
	case !res.Detected:
		e.led.violate(ev, ev.Device, "adversary %s NOT detected (err=%v)", ev.Adversary, res.Err)
	case res.Err != nil:
		// Detected, but through a protocol/transport failure rather than
		// a verdict: in a fleet sweep this device would have been filed
		// Unreachable or Failed, not Compromised — the bleed the
		// exhaustiveness invariant forbids.
		e.led.violate(ev, ev.Device, "adversary %s detected only via protocol failure: %v", ev.Adversary, res.Err)
	}
	return e.repairDevice(sys)
}

// runSEU is one radiation cycle: normalize the device to its golden
// state, inject seeded upsets, scan — every unmasked injected flip must
// be found — repair, and verify a clean re-scan.
func (e *Engine) runSEU(ev Event) error {
	sys, ok := e.reg.System(ev.Device)
	if !ok {
		return fmt.Errorf("unknown device %d", ev.Device)
	}
	golden, err := sys.Golden(0)
	if err != nil {
		return fmt.Errorf("golden for device %d: %w", ev.Device, err)
	}
	// Normalize first: the device still holds its last sweep's nonce
	// column (and capture bits), so the injected-flip accounting below
	// starts from a known masked-equal state.
	norm := scrub.New(sys.Device.Fabric, golden)
	if _, err := norm.ScrubOnce(); err != nil {
		return fmt.Errorf("normalizing device %d: %w", ev.Device, err)
	}

	rng := rand.New(rand.NewSource(ev.SEUSeed))
	flips := scrub.InjectSEUs(sys.Device.Fabric, rng, ev.Flips)

	// An injected flip is detectable iff its bit survives with odd
	// parity (a position hit twice reverts) and is not a masked capture
	// bit (a real particle does not care, the scrubber cannot see it).
	mask := e.maskFor(sys.Geo)
	parity := make(map[scrub.Flip]bool, len(flips))
	for _, f := range flips {
		parity[f] = !parity[f]
	}
	expected := make(map[scrub.Flip]bool)
	for f, odd := range parity {
		if odd && mask.Frame(f.Frame)[f.Word]&(1<<uint(f.Bit)) != 0 {
			expected[f] = true
		}
	}

	scr := scrub.New(sys.Device.Fabric, golden)
	found, err := scr.Scan()
	if err != nil {
		return fmt.Errorf("scanning device %d: %w", ev.Device, err)
	}
	foundSet := make(map[scrub.Flip]bool, len(found))
	for _, f := range found {
		foundSet[f] = true
	}
	for f := range expected {
		if !foundSet[f] {
			e.led.violate(ev, ev.Device, "scrub missed injected flip frame=%d word=%d bit=%d", f.Frame, f.Word, f.Bit)
		}
	}
	for f := range foundSet {
		if !expected[f] {
			e.led.violate(ev, ev.Device, "scrub found phantom flip frame=%d word=%d bit=%d", f.Frame, f.Word, f.Bit)
		}
	}
	if err := scr.Repair(found); err != nil {
		return fmt.Errorf("repairing device %d: %w", ev.Device, err)
	}
	post, err := scr.Scan()
	if err != nil {
		return fmt.Errorf("re-scanning device %d: %w", ev.Device, err)
	}
	if len(post) != 0 {
		e.led.violate(ev, ev.Device, "%d flips survived repair", len(post))
	}
	e.led.seu.Cycles++
	e.led.seu.Injected += len(flips)
	e.led.seu.Detected += len(found)
	e.led.seu.Repaired += scr.FramesRepaired
	return nil
}

// runCrash simulates a verifier restart: the durable store is closed
// (cleanly, or by abandoning the handles — the SIGKILL shape) and
// reopened, and the registry is rebuilt from the persisted enrollments.
// The ledger-reconciliation invariant: every device resumes at exactly
// its pre-crash key generation and class, and every nonce the journal
// spent before the crash is still refused after it.
func (e *Engine) runCrash(ev Event) error {
	if e.st == nil {
		return fmt.Errorf("crash event without a durable store (crash weight requires state)")
	}
	type devState struct {
		gen   uint64
		class string
	}
	pre := make(map[uint64]devState, e.sc.Fleet)
	for _, id := range e.reg.IDs() {
		sys, _ := e.reg.System(id)
		class, _ := e.reg.ClassOf(id)
		pre[id] = devState{gen: sys.KeyGeneration(), class: class}
	}

	old := e.st
	if ev.CleanClose {
		if err := old.Close(); err != nil {
			return fmt.Errorf("closing state store: %w", err)
		}
	}
	st, err := store.Open(e.stateDir, e.storeOpts)
	if err != nil {
		return fmt.Errorf("reopening state store: %w", err)
	}
	if !ev.CleanClose {
		// The crashed process's handles are abandoned; close them now only
		// to release the file descriptors — everything it appended is
		// already on disk (appends are unbuffered), which is the point.
		old.Close()
	}
	dreg, err := registry.NewDurable(e.sc.Fleet, e.factory, st.Enrollment())
	if err != nil {
		st.Close()
		return fmt.Errorf("rebuilding registry after crash: %w", err)
	}
	e.st, e.reg = st, dreg

	for _, id := range e.reg.IDs() {
		sys, _ := e.reg.System(id)
		class, _ := e.reg.ClassOf(id)
		want := pre[id]
		if got := sys.KeyGeneration(); got != want.gen {
			e.led.violate(ev, id, "restart drifted key generation %d -> %d", want.gen, got)
		}
		if class != want.class {
			e.led.violate(ev, id, "restart drifted class %q -> %q", want.class, class)
		}
	}
	for _, nonce := range e.spentSweepNonces {
		if !e.st.Nonces().Spent(nonce) {
			e.led.violate(ev, 0, "restart lost spent nonce %#016x", nonce)
			continue
		}
		if err := e.st.Nonces().Spend(nonce); !errors.Is(err, store.ErrNonceReplayed) {
			e.led.violate(ev, 0, "restart re-issued spent nonce %#016x (err=%v)", nonce, err)
		}
	}
	e.led.restarts++
	return nil
}

// repairDevice scrub-repairs a device back to its golden content —
// static partition included, which the sweeps' configuration phase
// never rewrites.
func (e *Engine) repairDevice(sys *core.System) error {
	golden, err := sys.Golden(0)
	if err != nil {
		return err
	}
	_, err = scrub.New(sys.Device.Fabric, golden).ScrubOnce()
	return err
}

// findTamperTarget locates (once per geometry, during New) the first
// unmasked configuration bit in the device's static region — see
// tamperTarget for why the flip must not land in the dynamic partition.
func (e *Engine) findTamperTarget(sys *core.System) (tamperTarget, error) {
	if t, ok := e.tamperTargets[sys.Geo.Name]; ok {
		return t, nil
	}
	mask := e.maskFor(sys.Geo)
	for _, f := range fabric.StatRegion(sys.Geo).Frames() {
		mw := mask.Frame(f)
		for w := 0; w < device.FrameWords; w++ {
			if mw[w] != 0 {
				t := tamperTarget{frame: f, word: w, bit: bits.TrailingZeros32(mw[w])}
				e.tamperTargets[sys.Geo.Name] = t
				return t, nil
			}
		}
	}
	return tamperTarget{}, fmt.Errorf("campaign: geometry %s has no unmasked static bit", sys.Geo.Name)
}

// tamperTargetFor is the read-only lookup the concurrent tamper hooks
// use; every geometry's target was precomputed in New, so this never
// mutates the engine.
func (e *Engine) tamperTargetFor(sys *core.System) (tamperTarget, error) {
	if t, ok := e.tamperTargets[sys.Geo.Name]; ok {
		return t, nil
	}
	return tamperTarget{}, fmt.Errorf("campaign: no tamper target for geometry %s", sys.Geo.Name)
}

// maskFor returns the precomputed readback mask of a geometry. Only New
// may call it for a geometry not yet in the map.
func (e *Engine) maskFor(geo *device.Geometry) *fabric.Image {
	if m, ok := e.masks[geo.Name]; ok {
		return m
	}
	m := fabric.GenerateMask(geo)
	e.masks[geo.Name] = m
	return m
}

// sampleHeap enforces the bounded-memory invariant between events.
func (e *Engine) sampleHeap(ev Event) {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	if ms.HeapAlloc > e.led.heapPeak {
		e.led.heapPeak = ms.HeapAlloc
	}
	ceiling := uint64(e.sc.HeapCeilingMB) << 20
	if ms.HeapAlloc > ceiling {
		e.led.violate(ev, 0, "heap %d bytes exceeds the %d MiB ceiling", ms.HeapAlloc, e.sc.HeapCeilingMB)
	}
}

// auditMetrics reconciles the live obs sweep counters against the
// campaign ledger — invariant 3. Any drift means the telemetry the
// fleet operator watches no longer describes what the fleet did.
func (e *Engine) auditMetrics() {
	audit := Event{Index: -1}
	if got, want := cmSweeps.Value()-e.baseline.sweeps, uint64(e.led.sweeps); got != want {
		e.led.violate(audit, 0, "metrics audit: sweeps_total advanced by %d, ledger has %d", got, want)
	}
	for _, v := range auditVerdicts {
		got := cmSweepCompleted.With(v).Value() - e.baseline.completed[v]
		if want := uint64(e.led.sweepVerdicts[v]); got != want {
			e.led.violate(audit, 0, "metrics audit: completed{%s} advanced by %d, ledger has %d", v, got, want)
		}
	}
	if v := cmSweepInflight.Value(); v != 0 {
		e.led.violate(audit, 0, "metrics audit: in-flight gauge ends at %d", v)
	}
}
