package campaign

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"sacha/internal/attack"
	"sacha/internal/attestation"
)

// EventKind enumerates the campaign event types.
type EventKind int

const (
	// EventSweep is a fleet sweep under the current freshness policy;
	// a scheduler-chosen subset of devices is tampered mid-protocol and
	// must come back Compromised, everyone else Healthy.
	EventSweep EventKind = iota
	// EventStorm is a sweep with seeded transport fault injection on a
	// subset of devices. Faulted-but-untampered devices may come back
	// Healthy or Unreachable — never Compromised; tampered ones may come
	// back Compromised or Unreachable — never Healthy.
	EventStorm
	// EventAttack replays one registered adversary against one device;
	// the verifier must reject the run with a verdict (MAC or bitstream
	// mismatch), not transport noise.
	EventAttack
	// EventSEU injects seeded single-event upsets into one device and
	// runs a scrub scan/repair cycle: every unmasked injected flip must
	// be found, and a post-repair scan must come back clean.
	EventSEU
	// EventKill is a sweep cancelled mid-flight after KillAfter devices
	// started. Every member must land Healthy or Unreachable — a
	// cancellation must never manufacture a Compromised or Failed
	// verdict.
	EventKill
	// EventCrash closes the campaign's durable store — cleanly or by
	// abandoning the handles (the SIGKILL shape) — and reopens it,
	// rebuilding the registry from the persisted enrollments. Every
	// device's key generation and class must reconcile exactly across the
	// restart, and every nonce spent before the crash must still be
	// journaled after.
	EventCrash
)

func (k EventKind) String() string {
	switch k {
	case EventSweep:
		return "sweep"
	case EventStorm:
		return "storm"
	case EventAttack:
		return "attack"
	case EventSEU:
		return "seu"
	case EventKill:
		return "kill"
	case EventCrash:
		return "crash"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// DeviceFault is one device's transport affliction in a storm event.
type DeviceFault struct {
	Device uint64
	// Seed drives the device's fault lottery.
	Seed int64
	// Heavy doubles the fault rates.
	Heavy bool
	// ResetAt, when ≥ 0, scripts a connection reset at that receive
	// index — the deterministic Unreachable generator.
	ResetAt int
}

// Event is one scheduled campaign step. All fields are drawn from the
// scheduler's seeded stream, so the sequence is a pure function of the
// scenario seed.
type Event struct {
	Index int
	Kind  EventKind

	// Sweep-family fields (Sweep, Storm, Kill).
	Freshness attestation.FreshnessPolicy
	// Nonce pins the sweep nonce under PerSweep (per-device policies
	// draw their own).
	Nonce uint64
	// Window is the per-run readback pipeline depth.
	Window int
	// RetrySeed drives the reliable transport's backoff jitter.
	RetrySeed int64
	// Tampered lists devices tamper-hooked mid-protocol (ascending).
	Tampered []uint64
	// Faults lists the storm's per-device fault plans (ascending by
	// device).
	Faults []DeviceFault
	// KillAfter is how many devices may start before the sweep context
	// is cancelled (Kill only).
	KillAfter int

	// Attack / SEU fields.
	Device    uint64
	Adversary string
	Flips     int
	SEUSeed   int64

	// CleanClose selects the crash shape (Crash only): true closes the
	// store before reopening (a graceful restart), false abandons the
	// handles (the SIGKILL shape). Both must replay identically.
	CleanClose bool
}

// Desc renders the canonical one-line descriptor recorded in the
// campaign event log — the determinism witness: two runs of one seed
// must produce byte-identical descriptor sequences.
func (e Event) Desc() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%d %s", e.Index, e.Kind)
	switch e.Kind {
	case EventSweep, EventStorm, EventKill:
		fmt.Fprintf(&b, " policy=%s win=%d", e.Freshness, e.Window)
		if e.Freshness == attestation.PerSweep {
			fmt.Fprintf(&b, " nonce=%#x", e.Nonce)
		}
		if len(e.Tampered) > 0 {
			fmt.Fprintf(&b, " tampered=%v", e.Tampered)
		}
		for _, f := range e.Faults {
			fmt.Fprintf(&b, " fault=%d:%d:heavy=%t:reset=%d", f.Device, f.Seed, f.Heavy, f.ResetAt)
		}
		if e.Kind == EventKill {
			fmt.Fprintf(&b, " kill-after=%d", e.KillAfter)
		}
	case EventAttack:
		fmt.Fprintf(&b, " device=%d adversary=%s", e.Device, e.Adversary)
	case EventSEU:
		fmt.Fprintf(&b, " device=%d flips=%d seed=%d", e.Device, e.Flips, e.SEUSeed)
	case EventCrash:
		fmt.Fprintf(&b, " clean=%t", e.CleanClose)
	}
	return b.String()
}

// policyChurnPeriod is how many sweep-family events run under one
// freshness policy before the scheduler advances PerSweep → PerDevice →
// RotateKey → PerSweep — the mid-campaign churn the issue demands.
const policyChurnPeriod = 2

// Scheduler derives the deterministic event stream of one scenario.
// Next must be called with consecutive indices starting at 0; the
// stream is a pure function of the scenario seed.
type Scheduler struct {
	sc           Scenario
	rng          *rand.Rand
	adversaries  []attack.Named
	sweepEvents  int // sweep-family events drawn so far (drives churn)
	attackEvents int // attack events drawn so far (drives rotation)
}

// NewScheduler returns the event stream of sc (normalized first).
func NewScheduler(sc Scenario) *Scheduler {
	sc = sc.Normalized()
	return &Scheduler{
		sc:          sc,
		rng:         rand.New(rand.NewSource(sc.Seed)),
		adversaries: attack.Registry(),
	}
}

// Next draws the i-th event.
func (s *Scheduler) Next(i int) Event {
	ev := Event{Index: i, Kind: s.drawKind()}
	switch ev.Kind {
	case EventSweep, EventStorm, EventKill:
		ev.Freshness = s.churnPolicy()
		ev.Nonce = s.rng.Uint64()
		ev.RetrySeed = s.rng.Int63()
		if ev.Kind == EventSweep {
			// Clean sweeps also exercise the pipelined readback path;
			// storms and kills stay lockstep so fault recovery and
			// cancellation hit the simplest, fully deterministic engine.
			ev.Window = []int{1, 8, 16}[s.rng.Intn(3)]
		} else {
			ev.Window = 1
		}
		switch ev.Kind {
		case EventSweep:
			ev.Tampered = s.drawSubset(0.15)
		case EventStorm:
			ev.Tampered = s.drawSubset(0.10)
			ev.Faults = s.drawFaults()
		case EventKill:
			// No tampers or faults: every verdict of a killed sweep must
			// be explainable by the cancellation alone.
			ev.KillAfter = s.rng.Intn(s.sc.Fleet)
		}
	case EventAttack:
		ev.Device = s.drawDevice()
		// Rotate through the registry instead of sampling it: every
		// adversary is exercised once per len(Registry()) attack events,
		// so even a short campaign covers the full threat catalogue
		// (uniform draws would need ~3× as many events — coupon
		// collector — to touch all eight).
		ev.Adversary = s.adversaries[s.attackEvents%len(s.adversaries)].Key
		s.attackEvents++
	case EventSEU:
		ev.Device = s.drawDevice()
		ev.Flips = 1 + s.rng.Intn(8)
		ev.SEUSeed = s.rng.Int63()
	case EventCrash:
		ev.CleanClose = s.rng.Intn(2) == 0
	}
	return ev
}

// drawKind picks the event kind by the scenario's weighted lottery.
func (s *Scheduler) drawKind() EventKind {
	w := s.sc.Weights
	draw := s.rng.Intn(w.sum())
	switch {
	case draw < w.Sweep:
		return EventSweep
	case draw < w.Sweep+w.Storm:
		return EventStorm
	case draw < w.Sweep+w.Storm+w.Attack:
		return EventAttack
	case draw < w.Sweep+w.Storm+w.Attack+w.SEU:
		return EventSEU
	case draw < w.Sweep+w.Storm+w.Attack+w.SEU+w.Kill:
		return EventKill
	}
	return EventCrash
}

// churnPolicy advances the freshness policy every policyChurnPeriod
// sweep-family events.
func (s *Scheduler) churnPolicy() attestation.FreshnessPolicy {
	policies := []attestation.FreshnessPolicy{
		attestation.PerSweep, attestation.PerDevice, attestation.RotateKey,
	}
	p := policies[(s.sweepEvents/policyChurnPeriod)%len(policies)]
	s.sweepEvents++
	return p
}

// drawDevice picks one fleet member (IDs are 1-based, swarm.NewFleet's
// convention).
func (s *Scheduler) drawDevice() uint64 {
	return uint64(1 + s.rng.Intn(s.sc.Fleet))
}

// drawSubset selects each device independently with probability p,
// ascending. One rng draw per device keeps the stream aligned
// regardless of the outcome.
func (s *Scheduler) drawSubset(p float64) []uint64 {
	var out []uint64
	for id := uint64(1); id <= uint64(s.sc.Fleet); id++ {
		if s.rng.Float64() < p {
			out = append(out, id)
		}
	}
	return out
}

// drawFaults storms roughly a third of the fleet: per afflicted device
// a fault seed, a severity tier, and (for a quarter of them) a scripted
// reset that deterministically severs the session.
func (s *Scheduler) drawFaults() []DeviceFault {
	var out []DeviceFault
	for id := uint64(1); id <= uint64(s.sc.Fleet); id++ {
		if s.rng.Float64() >= 1.0/3 {
			continue
		}
		f := DeviceFault{
			Device:  id,
			Seed:    s.rng.Int63(),
			Heavy:   s.rng.Float64() < 0.5,
			ResetAt: -1,
		}
		if s.rng.Float64() < 0.25 {
			// Early enough that even the smallest geometry's protocol has
			// that many messages in flight.
			f.ResetAt = s.rng.Intn(64)
		}
		out = append(out, f)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Device < out[j].Device })
	return out
}
