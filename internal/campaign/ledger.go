package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"time"
)

// Expectation names the ledger's view of what a device was allowed to
// report in one event — the rows of the verdict matrix.
const (
	// ExpectClean: untampered, unfaulted, uncancelled — must be Healthy.
	ExpectClean = "clean"
	// ExpectTampered: tampered on a clean link — must be Compromised.
	ExpectTampered = "tampered"
	// ExpectFaulted: faulted but untampered — Healthy or Unreachable.
	ExpectFaulted = "faulted"
	// ExpectTamperedFaulted: both — Compromised or Unreachable.
	ExpectTamperedFaulted = "tampered-faulted"
	// ExpectInterrupted: member of a cancelled sweep — Healthy or
	// Unreachable. The matrix folds both into VerdictInterruptedOK so
	// the matrix stays identical across reruns even though the exact
	// split depends on which sessions were in flight at cancel time.
	ExpectInterrupted = "interrupted"
)

// VerdictInterruptedOK is the folded matrix column for allowed verdicts
// of interrupted devices.
const VerdictInterruptedOK = "interrupted-ok"

// Violation is one invariant breach.
type Violation struct {
	Event  int    `json:"event"`
	Kind   string `json:"kind"`
	Device uint64 `json:"device,omitempty"`
	Detail string `json:"detail"`
}

// AdversaryTally aggregates one adversary's campaign outcomes.
type AdversaryTally struct {
	Runs       int            `json:"runs"`
	Detected   int            `json:"detected"`
	Mechanisms map[string]int `json:"mechanisms"`
}

// SEUTally aggregates the SEU/scrub cycles.
type SEUTally struct {
	Cycles   int `json:"cycles"`
	Injected int `json:"injected"`
	Detected int `json:"detected"`
	Repaired int `json:"repaired"`
}

// Report is the machine-readable campaign outcome cmd/sacha-soak emits.
type Report struct {
	Scenario Scenario `json:"scenario"`
	// Events is how many events executed; re-running the same seed with
	// MaxEvents=Events reproduces this report's EventHash and Matrix.
	Events   int      `json:"events"`
	EventLog []string `json:"event_log"`
	// EventHash is sha256 over the newline-joined event log — the
	// compact determinism witness.
	EventHash string `json:"event_hash"`
	Sweeps    int    `json:"sweeps"`
	// Matrix counts device outcomes by expectation row and verdict
	// column.
	Matrix      map[string]map[string]int  `json:"matrix"`
	Adversaries map[string]*AdversaryTally `json:"adversaries"`
	SEU         SEUTally                   `json:"seu"`
	// HeapPeakBytes is the largest HeapAlloc sampled between events.
	HeapPeakBytes uint64 `json:"heap_peak_bytes"`
	// Retries and TransportFaults aggregate sweep transport pressure.
	Retries         int `json:"retries"`
	TransportFaults int `json:"transport_faults"`
	// KeysRotated counts PUF re-enrollments by RotateKey sweeps.
	KeysRotated int `json:"keys_rotated"`
	// Restarts counts crash events that reconciled cleanly — store
	// reopened, registry rebuilt, generations/classes/nonces all intact.
	Restarts int `json:"restarts"`
	// PlansBuilt and PlanCacheHits show the plan cache under churn.
	PlansBuilt    int `json:"plans_built"`
	PlanCacheHits int `json:"plan_cache_hits"`
	// Violations is empty on a passing campaign.
	Violations []Violation   `json:"violations"`
	Elapsed    time.Duration `json:"elapsed_ns"`
}

// OK reports whether the campaign held all three invariants.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Summary renders the human-readable digest the soak CLI prints.
func (r *Report) Summary() string {
	s := fmt.Sprintf("campaign: %d events (%d sweeps) in %v, seed %d, fleet %d\n",
		r.Events, r.Sweeps, r.Elapsed.Round(time.Millisecond), r.Scenario.Seed, r.Scenario.Fleet)
	s += fmt.Sprintf("  event hash %s\n", r.EventHash)
	for _, exp := range []string{ExpectClean, ExpectTampered, ExpectFaulted, ExpectTamperedFaulted, ExpectInterrupted} {
		if row := r.Matrix[exp]; len(row) > 0 {
			s += fmt.Sprintf("  %-17s %v\n", exp, row)
		}
	}
	for name, t := range r.Adversaries {
		s += fmt.Sprintf("  adversary %-21s %d/%d detected %v\n", name, t.Detected, t.Runs, t.Mechanisms)
	}
	if r.SEU.Cycles > 0 {
		s += fmt.Sprintf("  seu: %d cycles, %d injected, %d detected, %d repaired\n",
			r.SEU.Cycles, r.SEU.Injected, r.SEU.Detected, r.SEU.Repaired)
	}
	s += fmt.Sprintf("  transport: %d retries, %d faults seen; plans built %d, cache hits %d, keys rotated %d\n",
		r.Retries, r.TransportFaults, r.PlansBuilt, r.PlanCacheHits, r.KeysRotated)
	if r.Restarts > 0 {
		s += fmt.Sprintf("  restarts: %d (generations, classes and spent nonces reconciled)\n", r.Restarts)
	}
	s += fmt.Sprintf("  heap peak %.1f MiB (ceiling %d MiB)\n",
		float64(r.HeapPeakBytes)/(1<<20), r.Scenario.HeapCeilingMB)
	if r.OK() {
		s += "  invariants: OK\n"
	} else {
		s += fmt.Sprintf("  INVARIANT VIOLATIONS: %d\n", len(r.Violations))
		for _, v := range r.Violations {
			s += fmt.Sprintf("    event %d [%s] device %d: %s\n", v.Event, v.Kind, v.Device, v.Detail)
		}
	}
	return s
}

// ledger accumulates the campaign ground truth the obs metrics are
// audited against.
type ledger struct {
	eventLog    []string
	matrix      map[string]map[string]int
	adversaries map[string]*AdversaryTally
	seu         SEUTally
	violations  []Violation
	sweeps      int
	// sweepVerdicts counts every per-device sweep outcome by verdict —
	// the exact amount the obs sweep counters must have advanced by.
	sweepVerdicts   map[string]int
	heapPeak        uint64
	restarts        int
	retries, faults int
	keysRotated     int
	plansBuilt      int
	planCacheHits   int
	// onViolate, when set, observes every recorded violation as it
	// happens — the hook Engine.AttachFlight uses to snapshot a flight
	// record at the moment an invariant breaks, while the span collector
	// still holds the surrounding sweep's tree.
	onViolate func(Violation)
}

func newLedger() *ledger {
	return &ledger{
		matrix:        make(map[string]map[string]int),
		adversaries:   make(map[string]*AdversaryTally),
		sweepVerdicts: make(map[string]int),
	}
}

func (l *ledger) logEvent(ev Event) { l.eventLog = append(l.eventLog, ev.Desc()) }

func (l *ledger) count(expectation, verdict string) {
	row := l.matrix[expectation]
	if row == nil {
		row = make(map[string]int)
		l.matrix[expectation] = row
	}
	row[verdict]++
}

func (l *ledger) violate(ev Event, device uint64, format string, args ...any) {
	v := Violation{
		Event:  ev.Index,
		Kind:   ev.Kind.String(),
		Device: device,
		Detail: fmt.Sprintf(format, args...),
	}
	l.violations = append(l.violations, v)
	if l.onViolate != nil {
		l.onViolate(v)
	}
}

func (l *ledger) adversary(key string) *AdversaryTally {
	t := l.adversaries[key]
	if t == nil {
		t = &AdversaryTally{Mechanisms: make(map[string]int)}
		l.adversaries[key] = t
	}
	return t
}

func (l *ledger) report(sc Scenario, elapsed time.Duration) *Report {
	sum := sha256.Sum256([]byte(joinLines(l.eventLog)))
	return &Report{
		Scenario:        sc,
		Events:          len(l.eventLog),
		EventLog:        l.eventLog,
		EventHash:       hex.EncodeToString(sum[:]),
		Sweeps:          l.sweeps,
		Matrix:          l.matrix,
		Adversaries:     l.adversaries,
		SEU:             l.seu,
		HeapPeakBytes:   l.heapPeak,
		Retries:         l.retries,
		TransportFaults: l.faults,
		KeysRotated:     l.keysRotated,
		Restarts:        l.restarts,
		PlansBuilt:      l.plansBuilt,
		PlanCacheHits:   l.planCacheHits,
		Violations:      append([]Violation{}, l.violations...),
		Elapsed:         elapsed,
	}
}

func joinLines(lines []string) string {
	out := ""
	for _, l := range lines {
		out += l + "\n"
	}
	return out
}
