package campaign

import (
	"testing"

	"sacha/internal/attack"
	"sacha/internal/attestation"
)

// drawStream renders the first n event descriptors of a scenario.
func drawStream(sc Scenario, n int) []string {
	s := NewScheduler(sc)
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = s.Next(i).Desc()
	}
	return out
}

func TestSchedulerDeterministic(t *testing.T) {
	sc := Scenario{Seed: 99, Fleet: 32, MaxEvents: 200}
	a := drawStream(sc, 200)
	b := drawStream(sc, 200)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d diverged:\n  %s\n  %s", i, a[i], b[i])
		}
	}
	if c := drawStream(Scenario{Seed: 100, Fleet: 32, MaxEvents: 200}, 200); a[0] == c[0] && a[1] == c[1] && a[2] == c[2] {
		t.Fatalf("different seeds produced an identical stream prefix")
	}
}

func TestSchedulerCoversAllKindsAndPolicies(t *testing.T) {
	sc := Scenario{Seed: 5, Fleet: 16, MaxEvents: 100}
	s := NewScheduler(sc)
	kinds := make(map[EventKind]int)
	policies := make(map[attestation.FreshnessPolicy]int)
	adversaries := make(map[string]bool)
	for i := 0; i < 100; i++ {
		ev := s.Next(i)
		kinds[ev.Kind]++
		switch ev.Kind {
		case EventSweep, EventStorm, EventKill:
			policies[ev.Freshness]++
		case EventAttack:
			adversaries[ev.Adversary] = true
		}
	}
	for _, k := range []EventKind{EventSweep, EventStorm, EventAttack, EventSEU, EventKill} {
		if kinds[k] == 0 {
			t.Errorf("100 events never drew kind %s", k)
		}
	}
	for _, p := range []attestation.FreshnessPolicy{attestation.PerSweep, attestation.PerDevice, attestation.RotateKey} {
		if policies[p] == 0 {
			t.Errorf("policy churn never reached %s", p)
		}
	}
	if len(adversaries) < 4 {
		t.Errorf("attack draws covered only %d adversaries", len(adversaries))
	}
}

func TestSchedulerEventShape(t *testing.T) {
	sc := Scenario{Seed: 11, Fleet: 8, MaxEvents: 300}
	s := NewScheduler(sc)
	valid := make(map[string]bool)
	for _, a := range attack.Registry() {
		valid[a.Key] = true
	}
	for i := 0; i < 300; i++ {
		ev := s.Next(i)
		switch ev.Kind {
		case EventSweep, EventStorm:
			for _, id := range ev.Tampered {
				if id < 1 || id > 8 {
					t.Fatalf("event %d: tampered device %d out of range", i, id)
				}
			}
			for _, f := range ev.Faults {
				if f.Device < 1 || f.Device > 8 {
					t.Fatalf("event %d: faulted device %d out of range", i, f.Device)
				}
				if f.ResetAt < -1 {
					t.Fatalf("event %d: reset index %d", i, f.ResetAt)
				}
			}
			if ev.Kind == EventSweep && ev.Window != 1 && ev.Window != 8 && ev.Window != 16 {
				t.Fatalf("event %d: window %d", i, ev.Window)
			}
			if ev.Kind == EventStorm && ev.Window != 1 {
				t.Fatalf("event %d: storm must be lockstep, got window %d", i, ev.Window)
			}
		case EventKill:
			// A killed sweep's verdicts must be explainable by the
			// cancellation alone — the scheduler must not mix in tampers
			// or faults.
			if len(ev.Tampered) != 0 || len(ev.Faults) != 0 {
				t.Fatalf("event %d: kill with tampers/faults: %+v", i, ev)
			}
			if ev.KillAfter < 0 || ev.KillAfter >= 8 {
				t.Fatalf("event %d: kill-after %d out of [0,8)", i, ev.KillAfter)
			}
		case EventAttack:
			if !valid[ev.Adversary] {
				t.Fatalf("event %d: unknown adversary %q", i, ev.Adversary)
			}
			if ev.Device < 1 || ev.Device > 8 {
				t.Fatalf("event %d: attack device %d out of range", i, ev.Device)
			}
		case EventSEU:
			if ev.Flips < 1 || ev.Flips > 8 {
				t.Fatalf("event %d: %d flips", i, ev.Flips)
			}
			if ev.Device < 1 || ev.Device > 8 {
				t.Fatalf("event %d: SEU device %d out of range", i, ev.Device)
			}
		}
	}
}

func TestSchedulerPolicyChurnOrder(t *testing.T) {
	sc := Scenario{Seed: 2, Fleet: 8, MaxEvents: 400}
	s := NewScheduler(sc)
	var seq []attestation.FreshnessPolicy
	for i := 0; len(seq) < 3*policyChurnPeriod && i < 400; i++ {
		ev := s.Next(i)
		switch ev.Kind {
		case EventSweep, EventStorm, EventKill:
			seq = append(seq, ev.Freshness)
		}
	}
	if len(seq) < 3*policyChurnPeriod {
		t.Fatalf("only %d sweep-family events in 400 draws", len(seq))
	}
	want := []attestation.FreshnessPolicy{
		attestation.PerSweep, attestation.PerDevice, attestation.RotateKey,
	}
	for i, p := range seq[:3*policyChurnPeriod] {
		if p != want[i/policyChurnPeriod] {
			t.Fatalf("sweep-family event %d ran under %s, want %s (churn seq %v)",
				i, p, want[i/policyChurnPeriod], seq)
		}
	}
}
