package campaign

import (
	"strings"
	"testing"
	"time"
)

func TestScenarioDefaults(t *testing.T) {
	sc := Scenario{Seed: 3, MaxEvents: 5}.Normalized()
	if sc.Fleet != DefaultFleet || sc.Concurrency != DefaultConcurrency {
		t.Fatalf("fleet/concurrency defaults: %+v", sc)
	}
	if sc.HeapCeilingMB != DefaultHeapMB || sc.PlanCacheSize != DefaultPlanCache {
		t.Fatalf("heap/cache defaults: %+v", sc)
	}
	if sc.Weights != DefaultWeights {
		t.Fatalf("weights default: %+v", sc.Weights)
	}
	if err := sc.Validate(); err != nil {
		t.Fatalf("normalized default scenario invalid: %v", err)
	}
}

func TestScenarioValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
		want string
	}{
		{"unbounded", Scenario{Seed: 1}, "unbounded"},
		{"one-device", Scenario{Fleet: 1, MaxEvents: 3}, "mixed-geometry"},
		{"huge-fleet", Scenario{Fleet: 1 << 20, MaxEvents: 3}, "bound"},
		{"negative-events", Scenario{MaxEvents: -1}, "negative"},
		{"negative-duration", Scenario{Duration: -time.Second}, "negative"},
		{"negative-weight", Scenario{MaxEvents: 3, Weights: Weights{Sweep: -1, Storm: 2}}, "negative event weight"},
		{"zero-weights", Scenario{MaxEvents: 3, Weights: Weights{}}, ""}, // zero value → defaults, valid
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sc.Validate()
			if tc.want == "" {
				if err != nil {
					t.Fatalf("unexpected error: %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

func TestParseScenarioRoundTrip(t *testing.T) {
	in := "seed=7,fleet=32,events=40,duration=60s,conc=8,heap-mb=512,cache=4," +
		"weights=sweep:4;storm:2;attack:3;seu:2;kill:1"
	sc, err := ParseScenario(in)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if sc.Seed != 7 || sc.Fleet != 32 || sc.MaxEvents != 40 || sc.Duration != time.Minute ||
		sc.Concurrency != 8 || sc.HeapCeilingMB != 512 || sc.PlanCacheSize != 4 {
		t.Fatalf("parsed fields wrong: %+v", sc)
	}
	if sc.Weights != (Weights{Sweep: 4, Storm: 2, Attack: 3, SEU: 2, Kill: 1}) {
		t.Fatalf("weights: %+v", sc.Weights)
	}
	again, err := ParseScenario(sc.String())
	if err != nil {
		t.Fatalf("re-parse of String(): %v", err)
	}
	if again != sc {
		t.Fatalf("round trip drifted:\n  %+v\n  %+v", sc, again)
	}
}

func TestParseScenarioRejects(t *testing.T) {
	for _, bad := range []string{
		"",                       // no bound
		"bogus=1,events=3",       // unknown key
		"seed",                   // not key=value
		"events=notanumber",      // malformed value
		"events=3,weights=zap:1", // unknown event kind
		"events=3,weights=sweep", // malformed weight
		"fleet=1,events=3",       // invalid combination
	} {
		if _, err := ParseScenario(bad); err == nil {
			t.Errorf("ParseScenario(%q) accepted", bad)
		}
	}
}

func TestParseScenarioPartialWeights(t *testing.T) {
	sc, err := ParseScenario("events=5,weights=sweep:1")
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if sc.Weights != (Weights{Sweep: 1}) {
		t.Fatalf("partial weights: %+v", sc.Weights)
	}
}
