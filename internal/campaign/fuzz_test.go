package campaign

import (
	"testing"
)

// FuzzCampaignScenario mutates the compact scenario spelling and holds
// the parser and the scheduler to their contracts: whatever parses must
// validate, round-trip through String(), and drive a deterministic
// scheduler — the same parsed scenario must always produce the same
// event sequence.
func FuzzCampaignScenario(f *testing.F) {
	f.Add("seed=7,fleet=32,events=40")
	f.Add("seed=-1,fleet=2,duration=60s,conc=1,heap-mb=1,cache=1")
	f.Add("events=5,weights=sweep:4;storm:2;attack:3;seu:2;kill:1")
	f.Add("events=3,weights=kill:1")
	f.Add("seed=0x7fffffffffffffff,fleet=65536,events=1")
	f.Add("duration=1ns,weights=seu:1")
	f.Add(" seed = 9 , events = 2 , weights = sweep:1 ; attack:1 ")
	f.Add("events=9999999,heap-mb=2147483647")
	f.Fuzz(func(t *testing.T, s string) {
		sc, err := ParseScenario(s)
		if err != nil {
			return
		}
		// Whatever the parser accepted must be a runnable scenario.
		if verr := sc.Validate(); verr != nil {
			t.Fatalf("ParseScenario(%q) accepted an invalid scenario: %v", s, verr)
		}
		// ... and survive the round trip through its canonical spelling.
		again, err := ParseScenario(sc.String())
		if err != nil {
			t.Fatalf("String() of parsed %q does not re-parse: %v", s, err)
		}
		if again != sc {
			t.Fatalf("round trip drifted for %q:\n  %+v\n  %+v", s, sc, again)
		}
		// Scheduler determinism: same scenario, same stream. Cap the fleet
		// so per-event subset draws stay cheap under the fuzzer.
		if sc.Fleet > 256 {
			sc.Fleet = 256
		}
		a, b := NewScheduler(sc), NewScheduler(sc)
		for i := 0; i < 12; i++ {
			ea, eb := a.Next(i), b.Next(i)
			if ea.Desc() != eb.Desc() {
				t.Fatalf("scenario %q: event %d diverged:\n  %s\n  %s", s, i, ea.Desc(), eb.Desc())
			}
			if ea.Index != i {
				t.Fatalf("event index %d != %d", ea.Index, i)
			}
		}
	})
}
