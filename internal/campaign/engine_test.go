package campaign

import (
	"context"
	"fmt"
	"testing"

	"sacha/internal/swarm"
	"sacha/internal/verifier"
)

// runCampaign executes one event-bounded campaign and returns its report.
func runCampaign(t *testing.T, sc Scenario) *Report {
	t.Helper()
	eng, err := New(sc)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	rep, err := eng.Run(context.Background())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return rep
}

// TestCampaignInvariantsHold is the package's main end-to-end assertion:
// a seeded mixed-geometry campaign that draws every event kind completes
// with zero invariant violations, and its verdict matrix contains no
// forbidden cell.
func TestCampaignInvariantsHold(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-sweep campaign in -short mode")
	}
	rep := runCampaign(t, Scenario{Seed: 7, Fleet: 8, MaxEvents: 12})
	if !rep.OK() {
		t.Fatalf("invariant violations:\n%s", rep.Summary())
	}
	if rep.Events != 12 {
		t.Fatalf("events = %d, want 12", rep.Events)
	}
	if rep.Sweeps == 0 {
		t.Fatalf("campaign never swept: %s", rep.Summary())
	}
	// No forbidden matrix cells, independent of the violation ledger.
	forbidden := []struct{ exp, verdict string }{
		{ExpectClean, "compromised"},
		{ExpectClean, "unreachable"},
		{ExpectClean, "failed"},
		{ExpectTampered, "healthy"},
		{ExpectTampered, "unreachable"},
		{ExpectFaulted, "compromised"},
		{ExpectTamperedFaulted, "healthy"},
		{ExpectInterrupted, "compromised"},
		{ExpectInterrupted, "failed"},
	}
	for _, f := range forbidden {
		if n := rep.Matrix[f.exp][f.verdict]; n != 0 {
			t.Errorf("matrix[%s][%s] = %d, want 0", f.exp, f.verdict, n)
		}
	}
	for name, tally := range rep.Adversaries {
		if tally.Detected != tally.Runs {
			t.Errorf("adversary %s: %d/%d detected", name, tally.Detected, tally.Runs)
		}
	}
	if rep.HeapPeakBytes == 0 {
		t.Error("heap was never sampled")
	}
	if rep.EventHash == "" || len(rep.EventLog) != rep.Events {
		t.Errorf("event log incomplete: %d lines, hash %q", len(rep.EventLog), rep.EventHash)
	}
}

// TestCampaignReproducible reruns one seed and requires the identical
// event sequence and verdict matrix — the acceptance bar of the soak
// harness.
func TestCampaignReproducible(t *testing.T) {
	if testing.Short() {
		t.Skip("double campaign in -short mode")
	}
	sc := Scenario{Seed: 21, Fleet: 6, MaxEvents: 8}
	a := runCampaign(t, sc)
	b := runCampaign(t, sc)
	if a.EventHash != b.EventHash {
		t.Fatalf("event sequences diverged:\n%v\n%v", a.EventLog, b.EventLog)
	}
	if fmt.Sprint(a.Matrix) != fmt.Sprint(b.Matrix) {
		t.Fatalf("verdict matrices diverged:\n%v\n%v", a.Matrix, b.Matrix)
	}
	if fmt.Sprint(a.SEU) != fmt.Sprint(b.SEU) {
		t.Fatalf("SEU tallies diverged: %+v vs %+v", a.SEU, b.SEU)
	}
	if len(a.Violations) != 0 || len(b.Violations) != 0 {
		t.Fatalf("violations: %v / %v", a.Violations, b.Violations)
	}
}

// TestCampaignDetectsHeapViolation drives the bounded-memory invariant
// through the real sampling path with an impossible ceiling: the
// campaign must complete (a violation is a finding, not a crash) and
// report it.
func TestCampaignDetectsHeapViolation(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign in -short mode")
	}
	rep := runCampaign(t, Scenario{Seed: 3, Fleet: 2, MaxEvents: 2, HeapCeilingMB: 1})
	if rep.OK() {
		t.Fatalf("1 MiB ceiling not reported as violated:\n%s", rep.Summary())
	}
	found := false
	for _, v := range rep.Violations {
		if v.Detail != "" && v.Event >= 0 {
			found = true
		}
	}
	if !found {
		t.Fatalf("no attributable violation recorded: %+v", rep.Violations)
	}
}

func TestEngineSingleUse(t *testing.T) {
	eng, err := New(Scenario{Seed: 1, Fleet: 2, MaxEvents: 1, Weights: Weights{SEU: 1}})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if _, err := eng.Run(context.Background()); err != nil {
		t.Fatalf("first Run: %v", err)
	}
	if _, err := eng.Run(context.Background()); err == nil {
		t.Fatal("second Run accepted")
	}
}

func TestNewRejectsInvalidScenario(t *testing.T) {
	if _, err := New(Scenario{}); err == nil {
		t.Fatal("unbounded scenario accepted")
	}
}

// TestClassify pins the zero-false-verdicts expectation table.
func TestClassify(t *testing.T) {
	var e Engine
	healthy := swarm.DeviceResult{DeviceID: 1, Report: &verifier.Report{Accepted: true}}
	compromised := swarm.DeviceResult{DeviceID: 1, Report: &verifier.Report{}}
	unreachable := swarm.DeviceResult{DeviceID: 1, Err: &verifier.TransportError{Op: "x", Attempts: 1, Err: context.DeadlineExceeded}}
	faulted := map[uint64]DeviceFault{1: {Device: 1}}
	none := map[uint64]DeviceFault{}

	cases := []struct {
		name     string
		tampered bool
		faults   map[uint64]DeviceFault
		res      swarm.DeviceResult
		wantExp  string
		wantOK   bool
	}{
		{"clean-healthy", false, none, healthy, ExpectClean, true},
		{"clean-compromised", false, none, compromised, ExpectClean, false},
		{"clean-unreachable", false, none, unreachable, ExpectClean, false},
		{"tampered-compromised", true, none, compromised, ExpectTampered, true},
		{"tampered-healthy", true, none, healthy, ExpectTampered, false},
		{"tampered-unreachable", true, none, unreachable, ExpectTampered, false},
		{"faulted-healthy", false, faulted, healthy, ExpectFaulted, true},
		{"faulted-unreachable", false, faulted, unreachable, ExpectFaulted, true},
		{"faulted-compromised", false, faulted, compromised, ExpectFaulted, false},
		{"both-compromised", true, faulted, compromised, ExpectTamperedFaulted, true},
		{"both-unreachable", true, faulted, unreachable, ExpectTamperedFaulted, true},
		{"both-healthy", true, faulted, healthy, ExpectTamperedFaulted, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			exp, ok := e.classify(tc.tampered, tc.faults, tc.res)
			if exp != tc.wantExp || ok != tc.wantOK {
				t.Fatalf("classify = (%s, %t), want (%s, %t)", exp, ok, tc.wantExp, tc.wantOK)
			}
		})
	}
}
