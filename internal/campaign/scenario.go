// Package campaign is the adversarial soak harness of the SACHa stack:
// a seeded, deterministic scenario engine that drives long randomized
// campaigns over large mixed-geometry fleets, interleaving every
// implemented adversary (internal/attack), transport fault storms
// (channel.FaultEndpoint), SEU injection plus scrub repair cycles
// (internal/scrub), freshness-policy churn (PerSweep → PerDevice →
// RotateKey) and mid-sweep cancellations — while continuously asserting
// three invariants:
//
//  1. Zero false verdicts: a healthy device never reports Compromised,
//     a tampered device never reports Healthy, and transport trouble
//     never bleeds into the Compromised partition (or vice versa).
//  2. Bounded memory: the heap ceiling, sampled between events, is
//     never exceeded — plan caches and session buffers must not grow
//     with campaign length.
//  3. Live metrics stay consistent with the campaign ledger: the obs
//     sweep counters advance by exactly the verdicts the ledger
//     recorded, and the in-flight gauge returns to zero between events.
//
// The paper's security evaluation (§7.2) replays each adversary once;
// JustSTART (PAPERS.md) found a real config-interface authentication
// bypass on UltraScale(+) only by applying sustained randomized
// pressure of exactly this kind. This package is that pressure for the
// SACHa reproduction, exposed as cmd/sacha-soak.
package campaign

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Defaults for the scenario knobs a caller leaves at zero.
const (
	DefaultFleet       = 32
	DefaultConcurrency = 8
	DefaultHeapMB      = 768
	DefaultPlanCache   = 8
)

// Weights is the relative event mix of the scheduler's lottery. Zero
// weight disables the event kind; the zero value of the whole struct
// selects DefaultWeights.
type Weights struct {
	// Sweep is a plain fleet sweep under the churning freshness policy,
	// with a scheduler-chosen subset of devices tampered mid-protocol.
	Sweep int `json:"sweep"`
	// Storm is a sweep with seeded transport fault injection (drops,
	// duplicates, reorders, corruptions, delays, scripted resets) on a
	// subset of devices, over the reliable transport.
	Storm int `json:"storm"`
	// Attack replays one registered adversary (attack.Registry) against
	// one fleet member.
	Attack int `json:"attack"`
	// SEU injects seeded single-event upsets into one device and runs a
	// full scrub scan/repair cycle against the golden image.
	SEU int `json:"seu"`
	// Kill is a sweep whose context is cancelled mid-flight after a
	// scheduler-chosen number of devices started.
	Kill int `json:"kill"`
	// Crash closes (cleanly or abandoned, alternating by seed) and
	// reopens the campaign's durable store between events, rebuilding the
	// registry from the persisted enrollments — the verifier-restart
	// event. Key generations, classes and spent nonces must reconcile
	// exactly across the restart.
	Crash int `json:"crash"`
}

// DefaultWeights is the standard campaign mix.
var DefaultWeights = Weights{Sweep: 4, Storm: 2, Attack: 3, SEU: 2, Kill: 1, Crash: 1}

func (w Weights) sum() int { return w.Sweep + w.Storm + w.Attack + w.SEU + w.Kill + w.Crash }

func (w Weights) String() string {
	return fmt.Sprintf("sweep:%d;storm:%d;attack:%d;seu:%d;kill:%d;crash:%d",
		w.Sweep, w.Storm, w.Attack, w.SEU, w.Kill, w.Crash)
}

// Scenario bounds one campaign. Exactly one of MaxEvents and Duration
// may be zero; with both set, whichever trips first ends the campaign.
// Every random decision of the campaign — the event sequence, tamper
// subsets, fault seeds, SEU positions — derives from Seed, so equal
// scenarios reproduce the identical event sequence (and, with
// MaxEvents bounding instead of wall time, the identical report).
type Scenario struct {
	Seed  int64 `json:"seed"`
	Fleet int   `json:"fleet"`
	// Concurrency is the sweep worker-pool size.
	Concurrency int `json:"concurrency"`
	// MaxEvents bounds the campaign by event count — the reproducible
	// bound: same seed and MaxEvents give the identical report.
	MaxEvents int `json:"max_events,omitempty"`
	// Duration bounds the campaign by wall time. A duration-bounded run
	// reports how many events it executed; re-running with that count
	// as MaxEvents reproduces it exactly.
	Duration time.Duration `json:"duration_ns,omitempty"`
	// HeapCeilingMB is the bounded-memory invariant: HeapAlloc sampled
	// between events must stay under this many MiB.
	HeapCeilingMB int `json:"heap_ceiling_mb"`
	// PlanCacheSize caps the shared attestation.PlanCache — deliberately
	// small so the campaign proves memory stays bounded under cache
	// churn rather than under an effectively unbounded cache.
	PlanCacheSize int     `json:"plan_cache_size"`
	Weights       Weights `json:"weights"`
}

// Normalized returns the scenario with defaults filled in.
func (sc Scenario) Normalized() Scenario {
	if sc.Fleet == 0 {
		sc.Fleet = DefaultFleet
	}
	if sc.Concurrency == 0 {
		sc.Concurrency = DefaultConcurrency
	}
	if sc.HeapCeilingMB == 0 {
		sc.HeapCeilingMB = DefaultHeapMB
	}
	if sc.PlanCacheSize == 0 {
		sc.PlanCacheSize = DefaultPlanCache
	}
	if sc.Weights == (Weights{}) {
		sc.Weights = DefaultWeights
	}
	return sc
}

// Validate rejects unrunnable scenarios.
func (sc Scenario) Validate() error {
	n := sc.Normalized()
	if n.Fleet < 2 {
		return fmt.Errorf("campaign: fleet %d (need ≥ 2 for a mixed-geometry fleet)", n.Fleet)
	}
	if n.Fleet > 1<<16 {
		return fmt.Errorf("campaign: fleet %d exceeds the %d-device bound", n.Fleet, 1<<16)
	}
	if n.Concurrency < 1 {
		return fmt.Errorf("campaign: concurrency %d", n.Concurrency)
	}
	if n.MaxEvents < 0 || n.Duration < 0 {
		return fmt.Errorf("campaign: negative bound (events=%d duration=%v)", n.MaxEvents, n.Duration)
	}
	if n.MaxEvents == 0 && n.Duration == 0 {
		return fmt.Errorf("campaign: unbounded scenario — set MaxEvents and/or Duration")
	}
	if n.HeapCeilingMB < 1 {
		return fmt.Errorf("campaign: heap ceiling %d MiB", n.HeapCeilingMB)
	}
	if n.PlanCacheSize < 1 {
		return fmt.Errorf("campaign: plan cache size %d", n.PlanCacheSize)
	}
	w := n.Weights
	if w.Sweep < 0 || w.Storm < 0 || w.Attack < 0 || w.SEU < 0 || w.Kill < 0 || w.Crash < 0 {
		return fmt.Errorf("campaign: negative event weight in %s", w)
	}
	if w.sum() <= 0 {
		return fmt.Errorf("campaign: event weights sum to zero")
	}
	return nil
}

// String renders the scenario in the compact form ParseScenario accepts.
func (sc Scenario) String() string {
	n := sc.Normalized()
	parts := []string{
		fmt.Sprintf("seed=%d", n.Seed),
		fmt.Sprintf("fleet=%d", n.Fleet),
		fmt.Sprintf("conc=%d", n.Concurrency),
	}
	if n.MaxEvents > 0 {
		parts = append(parts, fmt.Sprintf("events=%d", n.MaxEvents))
	}
	if n.Duration > 0 {
		parts = append(parts, fmt.Sprintf("duration=%s", n.Duration))
	}
	parts = append(parts,
		fmt.Sprintf("heap-mb=%d", n.HeapCeilingMB),
		fmt.Sprintf("cache=%d", n.PlanCacheSize),
		fmt.Sprintf("weights=%s", n.Weights))
	return strings.Join(parts, ",")
}

// ParseScenario parses the compact scenario spelling:
//
//	seed=7,fleet=32,events=40,duration=60s,conc=8,heap-mb=768,cache=8,
//	weights=sweep:4;storm:2;attack:3;seu:2;kill:1
//
// Unknown keys, malformed values and unrunnable combinations are
// rejected; omitted keys take the package defaults. The empty string is
// not a scenario (a campaign needs at least one bound).
func ParseScenario(s string) (Scenario, error) {
	var sc Scenario
	for _, field := range strings.Split(s, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return Scenario{}, fmt.Errorf("campaign: field %q is not key=value", field)
		}
		key = strings.TrimSpace(key)
		val = strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			sc.Seed, err = strconv.ParseInt(val, 0, 64)
		case "fleet":
			sc.Fleet, err = atoi(val)
		case "conc", "concurrency":
			sc.Concurrency, err = atoi(val)
		case "events":
			sc.MaxEvents, err = atoi(val)
		case "duration":
			sc.Duration, err = time.ParseDuration(val)
		case "heap-mb":
			sc.HeapCeilingMB, err = atoi(val)
		case "cache":
			sc.PlanCacheSize, err = atoi(val)
		case "weights":
			sc.Weights, err = parseWeights(val)
		default:
			return Scenario{}, fmt.Errorf("campaign: unknown scenario key %q", key)
		}
		if err != nil {
			return Scenario{}, fmt.Errorf("campaign: %s=%q: %v", key, val, err)
		}
	}
	if err := sc.Validate(); err != nil {
		return Scenario{}, err
	}
	return sc.Normalized(), nil
}

func atoi(s string) (int, error) {
	v, err := strconv.ParseInt(s, 0, 32)
	return int(v), err
}

// parseWeights parses "sweep:4;storm:2;attack:3;seu:2;kill:1" (any
// subset of the keys; omitted kinds get weight 0).
func parseWeights(s string) (Weights, error) {
	var w Weights
	for _, field := range strings.Split(s, ";") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, ":")
		if !ok {
			return Weights{}, fmt.Errorf("weight %q is not kind:weight", field)
		}
		n, err := atoi(strings.TrimSpace(val))
		if err != nil {
			return Weights{}, fmt.Errorf("weight %q: %v", field, err)
		}
		switch strings.TrimSpace(key) {
		case "sweep":
			w.Sweep = n
		case "storm":
			w.Storm = n
		case "attack":
			w.Attack = n
		case "seu":
			w.SEU = n
		case "kill":
			w.Kill = n
		case "crash":
			w.Crash = n
		default:
			return Weights{}, fmt.Errorf("unknown event kind %q", key)
		}
	}
	return w, nil
}
