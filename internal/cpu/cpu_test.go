package cpu

import (
	"testing"
	"testing/quick"
)

func run(t *testing.T, src string, maxCycles int64) *Machine {
	t.Helper()
	img, err := Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m, err := New(256)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Load(img); err != nil {
		t.Fatal(err)
	}
	if err := m.Run(maxCycles); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func TestArithmetic(t *testing.T) {
	m := run(t, `
		LDI  r0, 40
		LDI  r1, 2
		ADD  r0, r1      ; r0 = 42
		OUT  r0, 0
		SUB  r0, r1      ; r0 = 40
		OUT  r0, 1
		XOR  r0, r0      ; r0 = 0
		OUT  r0, 2
		HALT
	`, 100)
	if m.Out(0) != 42 || m.Out(1) != 40 || m.Out(2) != 0 {
		t.Fatalf("outs: %d %d %d", m.Out(0), m.Out(1), m.Out(2))
	}
}

func TestWideConstantsAndShift(t *testing.T) {
	m := run(t, `
		LDI  r0, 0xAB
		LDHI r0, 0xCD    ; r0 = 0xABCD
		OUT  r0, 0
		SHR  r0
		OUT  r0, 1
		HALT
	`, 100)
	if m.Out(0) != 0xABCD {
		t.Fatalf("LDHI: %#x", m.Out(0))
	}
	if m.Out(1) != 0x55E6 {
		t.Fatalf("SHR: %#x", m.Out(1))
	}
}

func TestLoopSum(t *testing.T) {
	// Sum 1..10 = 55 with a JNZ loop.
	m := run(t, `
		LDI  r0, 0       ; acc
		LDI  r1, 10      ; counter
		LDI  r2, 1
	loop:
		ADD  r0, r1
		SUB  r1, r2
		JNZ  r1, loop
		OUT  r0, 0
		HALT
	`, 1000)
	if m.Out(0) != 55 {
		t.Fatalf("sum = %d, want 55", m.Out(0))
	}
}

func TestMemoryLoadStore(t *testing.T) {
	m := run(t, `
		LDI  r0, 99
		LDI  r1, 100     ; address
		ST   r0, r1
		LD   r2, r1
		OUT  r2, 0
		HALT
	`, 100)
	if m.Out(0) != 99 {
		t.Fatalf("load/store: %d", m.Out(0))
	}
	if m.Mem[100] != 99 {
		t.Fatalf("mem[100] = %d", m.Mem[100])
	}
}

func TestInputPorts(t *testing.T) {
	img, err := Assemble(`
		IN   r0, 5
		OUT  r0, 0
		HALT
	`)
	if err != nil {
		t.Fatal(err)
	}
	m, _ := New(64)
	m.Load(img)
	m.SetIn(5, 1234)
	if err := m.Run(10); err != nil {
		t.Fatal(err)
	}
	if m.Out(0) != 1234 {
		t.Fatalf("port in: %d", m.Out(0))
	}
}

func TestJMPAbsolute(t *testing.T) {
	m := run(t, `
		LDI  r0, 0
		JMP  end
		LDI  r0, 1       ; skipped
	end:
		OUT  r0, 0
		HALT
	`, 100)
	if m.Out(0) != 0 {
		t.Fatal("JMP did not skip")
	}
}

func TestHaltAndStepAfterHalt(t *testing.T) {
	m := run(t, "HALT", 10)
	if !m.Halted() {
		t.Fatal("not halted")
	}
	if err := m.Step(); err == nil {
		t.Fatal("step after halt accepted")
	}
}

func TestRunBudget(t *testing.T) {
	img, _ := Assemble(`
	spin:
		JMP spin
	`)
	m, _ := New(64)
	m.Load(img)
	if err := m.Run(100); err == nil {
		t.Fatal("infinite loop not caught by budget")
	}
}

func TestMemoryFaults(t *testing.T) {
	// LD from an out-of-range address faults.
	img, _ := Assemble(`
		LDI  r1, 0xFF
		LDHI r1, 0xFF   ; r1 = 0xFFFF, beyond a 256-word memory
		LD   r0, r1
	`)
	m, _ := New(256)
	m.Load(img)
	if err := m.Run(10); err == nil {
		t.Fatal("out-of-range load accepted")
	}
	// ST likewise.
	img, _ = Assemble(`
		LDI  r1, 0xFF
		LDHI r1, 0xFF
		ST   r0, r1
	`)
	m.Load(img)
	if err := m.Run(10); err == nil {
		t.Fatal("out-of-range store accepted")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Fatal("tiny memory accepted")
	}
	if _, err := New(1 << 20); err == nil {
		t.Fatal("oversized memory accepted")
	}
	m, _ := New(64)
	if err := m.Load(make([]uint16, 65)); err == nil {
		t.Fatal("oversized image accepted")
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []string{
		"FROB r0",      // unknown mnemonic
		"LDI r9, 1",    // bad register
		"LDI r0, 999",  // immediate out of range
		"JMP nowhere",  // undefined label
		"JNZ r0",       // missing label
		"x:\nx:\nHALT", // duplicate label
		"LD r0",        // missing second register
		".word 99999",  // word out of range
	}
	for _, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("assembled invalid source %q", src)
		}
	}
}

func TestMemBytes(t *testing.T) {
	m, _ := New(16)
	m.Mem[0] = 0xABCD
	b := m.MemBytes()
	if len(b) != 32 || b[0] != 0xAB || b[1] != 0xCD {
		t.Fatalf("MemBytes: len=%d b0=%#x b1=%#x", len(b), b[0], b[1])
	}
}

// Property: ADD then SUB of the same register pair restores the original
// value (mod 2^16).
func TestQuickAddSubInverse(t *testing.T) {
	f := func(a, b uint16) bool {
		m, _ := New(64)
		img, _ := Assemble(`
			IN  r0, 0
			IN  r1, 1
			ADD r0, r1
			SUB r0, r1
			OUT r0, 0
			HALT
		`)
		m.Load(img)
		m.SetIn(0, a)
		m.SetIn(1, b)
		if err := m.Run(10); err != nil {
			return false
		}
		return m.Out(0) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
