// Package cpu models the embedded microprocessor of the paper's system
// model (Fig. 1): a small bounded-memory device. It serves two roles:
//
//   - the substrate for the Perito–Tsudik proofs-of-secure-erasure
//     baseline (internal/pose), which SACHa transplants to FPGAs: the
//     machine has a unified, bounded RAM that a verifier can fill
//     completely, plus an immutable ROM monitor (modelled natively);
//   - the attestation target of the combined hardware/software scenario
//     (internal/hwattest), where the FPGA acts as the trusted module.
//
// The ISA is a minimal 16-bit load/store design: 4 registers, unified
// code/data memory, and a handful of ALU/branch operations — enough to
// run real little programs whose memory image is worth attesting.
package cpu

import "fmt"

// Opcodes. Instructions are one 16-bit word: op[15:12] ra[11:10] rb[9:8]
// imm8[7:0] (immediate forms use ra + imm8).
const (
	OpNOP  = 0x0
	OpLDI  = 0x1 // ra <- imm8
	OpLDHI = 0x2 // ra <- ra<<8 | imm8 (build 16-bit constants)
	OpLD   = 0x3 // ra <- mem[rb]
	OpST   = 0x4 // mem[rb] <- ra
	OpADD  = 0x5 // ra <- ra + rb
	OpSUB  = 0x6 // ra <- ra - rb
	OpXOR  = 0x7 // ra <- ra ^ rb
	OpAND  = 0x8 // ra <- ra & rb
	OpSHR  = 0x9 // ra <- ra >> 1
	OpMOV  = 0xA // ra <- rb
	OpJMP  = 0xB // pc <- imm8 | ra<<8 (absolute)
	OpJNZ  = 0xC // if rb != 0: pc <- imm8 (page-local absolute low byte)
	OpOUT  = 0xD // output port imm8 <- ra
	OpIN   = 0xE // ra <- input port imm8
	OpHALT = 0xF
)

// NumRegs is the register count.
const NumRegs = 4

// Machine is one bounded-memory embedded CPU.
type Machine struct {
	// Mem is the unified code/data memory — the bounded memory of the
	// Perito–Tsudik model. Its size is fixed at construction.
	Mem []uint16
	// Regs and PC are the architectural state.
	Regs [NumRegs]uint16
	PC   uint16

	halted bool
	cycles int64
	// ports hold the last OUT values and pending IN values.
	outPorts map[uint8]uint16
	inPorts  map[uint8]uint16
}

// New returns a machine with the given memory size in 16-bit words.
func New(memWords int) (*Machine, error) {
	if memWords < 16 || memWords > 1<<16 {
		return nil, fmt.Errorf("cpu: memory size %d words out of range [16, 65536]", memWords)
	}
	return &Machine{
		Mem:      make([]uint16, memWords),
		outPorts: make(map[uint8]uint16),
		inPorts:  make(map[uint8]uint16),
	}, nil
}

// Reset clears the architectural state but not the memory.
func (m *Machine) Reset() {
	m.Regs = [NumRegs]uint16{}
	m.PC = 0
	m.halted = false
	m.cycles = 0
}

// Load copies a program image to memory address 0 and resets.
func (m *Machine) Load(image []uint16) error {
	if len(image) > len(m.Mem) {
		return fmt.Errorf("cpu: image of %d words exceeds memory (%d)", len(image), len(m.Mem))
	}
	for i := range m.Mem {
		m.Mem[i] = 0
	}
	copy(m.Mem, image)
	m.Reset()
	return nil
}

// Halted reports whether the machine has executed HALT.
func (m *Machine) Halted() bool { return m.halted }

// Cycles returns the executed instruction count.
func (m *Machine) Cycles() int64 { return m.cycles }

// SetIn provides a value on an input port.
func (m *Machine) SetIn(port uint8, v uint16) { m.inPorts[port] = v }

// Out returns the last value written to an output port.
func (m *Machine) Out(port uint8) uint16 { return m.outPorts[port] }

// Encode assembles one instruction word.
func Encode(op, ra, rb int, imm uint8) uint16 {
	return uint16(op&0xF)<<12 | uint16(ra&3)<<10 | uint16(rb&3)<<8 | uint16(imm)
}

// Step executes one instruction. Stepping a halted machine is an error.
func (m *Machine) Step() error {
	if m.halted {
		return fmt.Errorf("cpu: machine is halted")
	}
	if int(m.PC) >= len(m.Mem) {
		return fmt.Errorf("cpu: PC %d outside memory", m.PC)
	}
	inst := m.Mem[m.PC]
	op := inst >> 12
	ra := inst >> 10 & 3
	rb := inst >> 8 & 3
	imm := uint8(inst)
	next := m.PC + 1
	switch op {
	case OpNOP:
	case OpLDI:
		m.Regs[ra] = uint16(imm)
	case OpLDHI:
		m.Regs[ra] = m.Regs[ra]<<8 | uint16(imm)
	case OpLD:
		addr := m.Regs[rb]
		if int(addr) >= len(m.Mem) {
			return fmt.Errorf("cpu: load from %d outside memory", addr)
		}
		m.Regs[ra] = m.Mem[addr]
	case OpST:
		addr := m.Regs[rb]
		if int(addr) >= len(m.Mem) {
			return fmt.Errorf("cpu: store to %d outside memory", addr)
		}
		m.Mem[addr] = m.Regs[ra]
	case OpADD:
		m.Regs[ra] += m.Regs[rb]
	case OpSUB:
		m.Regs[ra] -= m.Regs[rb]
	case OpXOR:
		m.Regs[ra] ^= m.Regs[rb]
	case OpAND:
		m.Regs[ra] &= m.Regs[rb]
	case OpSHR:
		m.Regs[ra] >>= 1
	case OpMOV:
		m.Regs[ra] = m.Regs[rb]
	case OpJMP:
		next = m.Regs[ra]<<8 | uint16(imm)
	case OpJNZ:
		if m.Regs[rb] != 0 {
			next = uint16(imm)
		}
	case OpOUT:
		m.outPorts[imm] = m.Regs[ra]
	case OpIN:
		m.Regs[ra] = m.inPorts[imm]
	case OpHALT:
		m.halted = true
	default:
		return fmt.Errorf("cpu: illegal opcode %#x at %d", op, m.PC)
	}
	if !m.halted {
		m.PC = next
	}
	m.cycles++
	return nil
}

// Run executes until HALT or the cycle budget is exhausted.
func (m *Machine) Run(maxCycles int64) error {
	for !m.halted {
		if m.cycles >= maxCycles {
			return fmt.Errorf("cpu: cycle budget %d exhausted at PC %d", maxCycles, m.PC)
		}
		if err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// MemBytes serialises the memory big-endian — the attestation input.
func (m *Machine) MemBytes() []byte {
	out := make([]byte, 0, len(m.Mem)*2)
	for _, w := range m.Mem {
		out = append(out, byte(w>>8), byte(w))
	}
	return out
}
