package cpu

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates a tiny assembly dialect into a program image.
//
// Syntax, one instruction per line ("; comment" allowed):
//
//	label:            define a label at the current address
//	NOP / HALT
//	LDI  rA, imm      LDHI rA, imm
//	LD   rA, rB       ST   rA, rB
//	ADD/SUB/XOR/AND/MOV rA, rB
//	SHR  rA
//	JMP  label        JNZ  rB, label   (targets must be < 256)
//	OUT  rA, port     IN   rA, port
//	.word imm         emit a literal data word
func Assemble(src string) ([]uint16, error) {
	type pending struct {
		addr int
		op   int
		ra   int
		rb   int
		name string
	}
	var image []uint16
	labels := map[string]int{}
	var fixups []pending

	for lineNo, line := range strings.Split(src, "\n") {
		if i := strings.Index(line, ";"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, ":") {
			name := strings.TrimSuffix(line, ":")
			if _, dup := labels[name]; dup {
				return nil, fmt.Errorf("cpu: line %d: duplicate label %q", lineNo+1, name)
			}
			labels[name] = len(image)
			continue
		}
		fields := strings.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
		mnem := strings.ToUpper(fields[0])
		args := fields[1:]

		reg := func(i int) (int, error) {
			if i >= len(args) {
				return 0, fmt.Errorf("cpu: line %d: missing register", lineNo+1)
			}
			a := strings.ToUpper(args[i])
			if len(a) != 2 || a[0] != 'R' || a[1] < '0' || a[1] > '3' {
				return 0, fmt.Errorf("cpu: line %d: bad register %q", lineNo+1, args[i])
			}
			return int(a[1] - '0'), nil
		}
		num := func(i int, max int64) (int64, error) {
			if i >= len(args) {
				return 0, fmt.Errorf("cpu: line %d: missing operand", lineNo+1)
			}
			v, err := strconv.ParseInt(args[i], 0, 32)
			if err != nil || v < 0 || v > max {
				return 0, fmt.Errorf("cpu: line %d: bad operand %q", lineNo+1, args[i])
			}
			return v, nil
		}

		emit := func(op, ra, rb int, imm uint8) { image = append(image, Encode(op, ra, rb, imm)) }
		var err error
		switch mnem {
		case "NOP":
			emit(OpNOP, 0, 0, 0)
		case "HALT":
			emit(OpHALT, 0, 0, 0)
		case "SHR":
			var ra int
			if ra, err = reg(0); err == nil {
				emit(OpSHR, ra, 0, 0)
			}
		case "LDI", "LDHI":
			var ra int
			var v int64
			if ra, err = reg(0); err == nil {
				if v, err = num(1, 255); err == nil {
					op := OpLDI
					if mnem == "LDHI" {
						op = OpLDHI
					}
					emit(op, ra, 0, uint8(v))
				}
			}
		case "LD", "ST", "ADD", "SUB", "XOR", "AND", "MOV":
			var ra, rb int
			if ra, err = reg(0); err == nil {
				if rb, err = reg(1); err == nil {
					ops := map[string]int{"LD": OpLD, "ST": OpST, "ADD": OpADD, "SUB": OpSUB,
						"XOR": OpXOR, "AND": OpAND, "MOV": OpMOV}
					emit(ops[mnem], ra, rb, 0)
				}
			}
		case "JMP":
			if len(args) != 1 {
				err = fmt.Errorf("cpu: line %d: JMP needs a label", lineNo+1)
				break
			}
			fixups = append(fixups, pending{addr: len(image), op: OpJMP, name: args[0]})
			emit(OpJMP, 0, 0, 0)
		case "JNZ":
			var rb int
			if rb, err = reg(0); err == nil {
				if len(args) != 2 {
					err = fmt.Errorf("cpu: line %d: JNZ needs register and label", lineNo+1)
					break
				}
				fixups = append(fixups, pending{addr: len(image), op: OpJNZ, rb: rb, name: args[1]})
				emit(OpJNZ, 0, rb, 0)
			}
		case "OUT", "IN":
			var ra int
			var v int64
			if ra, err = reg(0); err == nil {
				if v, err = num(1, 255); err == nil {
					op := OpOUT
					if mnem == "IN" {
						op = OpIN
					}
					emit(op, ra, 0, uint8(v))
				}
			}
		case ".WORD":
			var v int64
			if v, err = num(0, 0xFFFF); err == nil {
				image = append(image, uint16(v))
			}
		default:
			err = fmt.Errorf("cpu: line %d: unknown mnemonic %q", lineNo+1, mnem)
		}
		if err != nil {
			return nil, err
		}
	}

	for _, f := range fixups {
		target, ok := labels[f.name]
		if !ok {
			return nil, fmt.Errorf("cpu: undefined label %q", f.name)
		}
		if target > 255 {
			return nil, fmt.Errorf("cpu: label %q at %d beyond 8-bit branch range", f.name, target)
		}
		image[f.addr] = Encode(f.op, 0, f.rb, uint8(target))
	}
	return image, nil
}
