// Package hwattest realises the paper's motivating scenario (Fig. 1,
// right): an embedded system pairing a microprocessor with an FPGA, where
// the FPGA serves as the trusted hardware module for hardware-based
// attestation of the processor's software — but, being configurable, must
// first prove its *own* state with SACHa.
//
// A combined attestation therefore has two stages:
//
//  1. SACHa self-attestation of the FPGA (internal/core);
//  2. the now-trusted FPGA module reads the processor's program memory
//     over the local bus and MACs it together with a verifier nonce.
//
// Only if both stages pass is the hardware/software system accepted.
package hwattest

import (
	"encoding/binary"
	"fmt"

	"sacha/internal/cmac"
	"sacha/internal/core"
	"sacha/internal/cpu"
	"sacha/internal/verifier"
)

// Module is the attestation core inside the FPGA's dynamic partition:
// it has bus access to the processor's memory and shares a key with the
// verifier. It must only be trusted after SACHa accepted the FPGA.
type Module struct {
	key [16]byte
	bus *cpu.Machine
}

// NewModule attaches the module to a processor.
func NewModule(key [16]byte, target *cpu.Machine) *Module {
	return &Module{key: key, bus: target}
}

// AttestSoftware MACs the first progWords of the processor's memory (the
// program region) with a nonce.
func (m *Module) AttestSoftware(nonce uint64, progWords int) ([16]byte, error) {
	if progWords <= 0 || progWords > len(m.bus.Mem) {
		return [16]byte{}, fmt.Errorf("hwattest: program region of %d words invalid", progWords)
	}
	mac, err := cmac.New(m.key[:])
	if err != nil {
		return [16]byte{}, err
	}
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], nonce)
	mac.Update(nb[:])
	mac.Update(m.bus.MemBytes()[:progWords*2])
	return mac.Sum(), nil
}

// SoftwareVerifier holds the golden program image.
type SoftwareVerifier struct {
	Key    [16]byte
	Golden []uint16
}

// Expected computes the golden tag for a nonce.
func (v *SoftwareVerifier) Expected(nonce uint64) ([16]byte, error) {
	mac, err := cmac.New(v.Key[:])
	if err != nil {
		return [16]byte{}, err
	}
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], nonce)
	mac.Update(nb[:])
	buf := make([]byte, 0, len(v.Golden)*2)
	for _, w := range v.Golden {
		buf = append(buf, byte(w>>8), byte(w))
	}
	mac.Update(buf)
	return mac.Sum(), nil
}

// Report is the outcome of a combined hardware/software attestation.
type Report struct {
	// FPGA is the SACHa self-attestation report (nil if skipped because
	// the FPGA stage already failed to run).
	FPGA *verifier.Report
	// FPGATrusted is the stage-1 verdict.
	FPGATrusted bool
	// SoftwareOK is the stage-2 verdict.
	SoftwareOK bool
	// Accepted requires both.
	Accepted bool
}

// System is the combined embedded system plus its verifier-side state.
type System struct {
	FPGA    *core.System
	CPU     *cpu.Machine
	Module  *Module
	SwVrf   *SoftwareVerifier
	program []uint16
	nonces  uint64
}

// New builds the combined system: a SACHa FPGA plus a processor loaded
// with the given program.
func New(fpgaCfg core.Config, program []uint16, memWords int) (*System, error) {
	fpga, err := core.NewSystem(fpgaCfg)
	if err != nil {
		return nil, err
	}
	m, err := cpu.New(memWords)
	if err != nil {
		return nil, err
	}
	if err := m.Load(program); err != nil {
		return nil, err
	}
	// The module key is provisioned alongside the SACHa enrollment; it is
	// independent of the FPGA's own attestation key.
	var key [16]byte
	copy(key[:], "sw-attest-key-01")
	return &System{
		FPGA:    fpga,
		CPU:     m,
		Module:  NewModule(key, m),
		SwVrf:   &SoftwareVerifier{Key: key, Golden: append([]uint16(nil), program...)},
		program: program,
	}, nil
}

// Attest runs both stages.
func (s *System) Attest(opts core.AttestOptions) (*Report, error) {
	rep := &Report{}
	fpgaRep, err := s.FPGA.Attest(opts)
	if err != nil {
		return nil, fmt.Errorf("hwattest: FPGA stage: %w", err)
	}
	rep.FPGA = fpgaRep
	rep.FPGATrusted = fpgaRep.Accepted
	if !rep.FPGATrusted {
		// An untrusted FPGA's software attestation is meaningless; the
		// paper's whole point is that stage 2 must not run on it.
		return rep, nil
	}
	s.nonces++
	nonce := s.nonces
	tag, err := s.Module.AttestSoftware(nonce, len(s.program))
	if err != nil {
		return nil, err
	}
	want, err := s.SwVrf.Expected(nonce)
	if err != nil {
		return nil, err
	}
	rep.SoftwareOK = cmac.Equal(tag, want)
	rep.Accepted = rep.FPGATrusted && rep.SoftwareOK
	return rep, nil
}
