package hwattest

import (
	"testing"

	"sacha/internal/core"
	"sacha/internal/cpu"
	"sacha/internal/device"
	"sacha/internal/netlist"
	"sacha/internal/prover"
)

func demoProgram(t *testing.T) []uint16 {
	t.Helper()
	img, err := cpu.Assemble(`
		LDI r0, 0
		LDI r1, 10
		LDI r2, 1
	loop:
		ADD r0, r1
		SUB r1, r2
		JNZ r1, loop
		OUT r0, 0
		HALT
	`)
	if err != nil {
		t.Fatal(err)
	}
	return img
}

func newCombined(t *testing.T) *System {
	t.Helper()
	sys, err := New(core.Config{
		Geo:        device.SmallLX(),
		App:        netlist.Blinker(8),
		LabLatency: -1,
		Seed:       5,
	}, demoProgram(t), 256)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestCombinedHonestAccepted(t *testing.T) {
	sys := newCombined(t)
	rep, err := sys.Attest(core.AttestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FPGATrusted || !rep.SoftwareOK || !rep.Accepted {
		t.Fatalf("honest combined system rejected: %+v", rep)
	}
	// The attested program still runs correctly.
	if err := sys.CPU.Run(1000); err != nil {
		t.Fatal(err)
	}
	if sys.CPU.Out(0) != 55 {
		t.Fatalf("program output %d", sys.CPU.Out(0))
	}
}

func TestMaliciousSoftwareDetected(t *testing.T) {
	sys := newCombined(t)
	// The adversary patches one instruction in the processor's code.
	sys.CPU.Mem[3] = cpu.Encode(cpu.OpNOP, 0, 0, 0)
	rep, err := sys.Attest(core.AttestOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.FPGATrusted {
		t.Fatal("FPGA stage should pass — only the software was tampered")
	}
	if rep.SoftwareOK || rep.Accepted {
		t.Fatal("tampered software accepted")
	}
}

func TestUntrustedFPGASkipsSoftwareStage(t *testing.T) {
	sys := newCombined(t)
	rep, err := sys.Attest(core.AttestOptions{
		TamperDevice: func(d *prover.Device) {
			// Tamper with the FPGA configuration: stage 1 must fail and
			// stage 2 must not run.
			frames := sys.FPGA.DynFrames()
			d.Fabric.Mem.Frame(frames[0])[0] ^= 4
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.FPGATrusted {
		t.Fatal("tampered FPGA trusted")
	}
	if rep.SoftwareOK || rep.Accepted {
		t.Fatal("software stage ran on an untrusted FPGA")
	}
}

func TestSoftwareNonceFreshness(t *testing.T) {
	sys := newCombined(t)
	t1, err := sys.Module.AttestSoftware(1, len(sys.program))
	if err != nil {
		t.Fatal(err)
	}
	t2, err := sys.Module.AttestSoftware(2, len(sys.program))
	if err != nil {
		t.Fatal(err)
	}
	if t1 == t2 {
		t.Fatal("software attestation tag independent of nonce")
	}
}

func TestAttestSoftwareValidation(t *testing.T) {
	sys := newCombined(t)
	if _, err := sys.Module.AttestSoftware(1, 0); err == nil {
		t.Error("empty program region accepted")
	}
	if _, err := sys.Module.AttestSoftware(1, 1<<20); err == nil {
		t.Error("oversized program region accepted")
	}
}
