// Package cmac implements AES-CMAC (RFC 4493) on top of the aescore
// hardware model.
//
// The SACHa prover computes the MAC incrementally: Init once, one Update
// per configuration frame read back through the ICAP (28,488 updates on
// the XC6VLX240T), then Finalize (paper Fig. 9). The streaming interface
// mirrors that structure and additionally tracks the AES block count so
// the timing model can charge MAC cycles.
package cmac

import (
	"fmt"

	"sacha/internal/aescore"
)

// Size is the MAC length in bytes (full-width AES-CMAC tag).
const Size = 16

// MAC is a streaming AES-CMAC computation.
type MAC struct {
	core   *aescore.Core
	k1, k2 [16]byte
	x      [16]byte // running CBC state
	buf    [16]byte // pending partial block
	bufLen int
	blocks int64 // AES invocations so far (for the cycle model)
	done   bool
}

// New returns a MAC keyed with the 16-byte key.
func New(key []byte) (*MAC, error) {
	core, err := aescore.New(key)
	if err != nil {
		return nil, fmt.Errorf("cmac: %w", err)
	}
	m := &MAC{core: core}
	// Subkey generation (RFC 4493 §2.3): L = AES-128(K, 0^128),
	// K1 = L<<1 (xor Rb on carry), K2 = K1<<1 (xor Rb on carry).
	var l [16]byte
	core.Encrypt(l[:], l[:])
	m.blocks++
	shiftLeft(&m.k1, &l)
	shiftLeft(&m.k2, &m.k1)
	return m, nil
}

const rb = 0x87

// shiftLeft sets dst = src << 1, xoring Rb into the last byte if the
// shifted-out bit was set.
func shiftLeft(dst, src *[16]byte) {
	var carry byte
	for i := 15; i >= 0; i-- {
		b := src[i]
		dst[i] = b<<1 | carry
		carry = b >> 7
	}
	if carry != 0 {
		dst[15] ^= rb
	}
}

// Reset restarts the computation under the same key (new Init step).
func (m *MAC) Reset() {
	m.x = [16]byte{}
	m.buf = [16]byte{}
	m.bufLen = 0
	m.done = false
}

// Update absorbs data. It may be called any number of times before Sum.
func (m *MAC) Update(data []byte) {
	if m.done {
		panic("cmac: Update after Sum; call Reset first")
	}
	for len(data) > 0 {
		// Keep at least one byte pending so the final block can be
		// treated specially in Sum.
		if m.bufLen == 16 {
			m.cipherBlock(m.buf[:], nil)
			m.bufLen = 0
		}
		n := copy(m.buf[m.bufLen:], data)
		m.bufLen += n
		data = data[n:]
	}
}

// cipherBlock runs X = AES(K, X xor block xor finalKey), where finalKey is
// nil for intermediate blocks.
func (m *MAC) cipherBlock(block, finalKey []byte) {
	for i := 0; i < 16; i++ {
		m.x[i] ^= block[i]
		if finalKey != nil {
			m.x[i] ^= finalKey[i]
		}
	}
	m.core.Encrypt(m.x[:], m.x[:])
	m.blocks++
}

// Sum finalizes the MAC and returns the 16-byte tag. The computation must
// be Reset before reuse.
func (m *MAC) Sum() [Size]byte {
	if m.done {
		panic("cmac: Sum called twice; call Reset first")
	}
	m.done = true
	var last [16]byte
	if m.bufLen == 16 {
		copy(last[:], m.buf[:])
		m.cipherBlock(last[:], m.k1[:])
	} else {
		// Pad 10* and use K2.
		copy(last[:], m.buf[:m.bufLen])
		last[m.bufLen] = 0x80
		m.cipherBlock(last[:], m.k2[:])
	}
	return m.x
}

// Blocks returns the number of AES block operations performed, including
// subkey generation. The SACHa timing model charges
// aescore.CyclesPerBlock cycles per block.
func (m *MAC) Blocks() int64 { return m.blocks }

// Compute is a one-shot convenience: AES-CMAC(key, data).
func Compute(key, data []byte) ([Size]byte, error) {
	m, err := New(key)
	if err != nil {
		return [Size]byte{}, err
	}
	m.Update(data)
	return m.Sum(), nil
}

// Equal compares two tags in constant time.
func Equal(a, b [Size]byte) bool {
	var v byte
	for i := 0; i < Size; i++ {
		v |= a[i] ^ b[i]
	}
	return v == 0
}
