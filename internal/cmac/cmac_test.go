package cmac

import (
	"bytes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex: %v", err)
	}
	return b
}

var rfcKey = "2b7e151628aed2a6abf7158809cf4f3c"

// RFC 4493 §4 test vectors.
func TestRFC4493Vectors(t *testing.T) {
	msg := unhex(t, "6bc1bee22e409f96e93d7e117393172a"+
		"ae2d8a571e03ac9c9eb76fac45af8e51"+
		"30c81c46a35ce411e5fbc1191a0a52ef"+
		"f69f2445df4f9b17ad2b417be66c3710")
	cases := []struct {
		n    int
		want string
	}{
		{0, "bb1d6929e95937287fa37d129b756746"},
		{16, "070a16b46b4d4144f79bdd9dd04a287c"},
		{40, "dfa66747de9ae63030ca32611497c827"},
		{64, "51f0bebf7e3b9d92fc49741779363cfe"},
	}
	key := unhex(t, rfcKey)
	for _, c := range cases {
		got, err := Compute(key, msg[:c.n])
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got[:], unhex(t, c.want)) {
			t.Errorf("len %d: got %x, want %s", c.n, got, c.want)
		}
	}
}

// RFC 4493 §2.3 subkey vectors.
func TestSubkeys(t *testing.T) {
	m, err := New(unhex(t, rfcKey))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.k1[:], unhex(t, "fbeed618357133667c85e08f7236a8de")) {
		t.Errorf("K1 = %x", m.k1)
	}
	if !bytes.Equal(m.k2[:], unhex(t, "f7ddac306ae266ccf90bc11ee46d513b")) {
		t.Errorf("K2 = %x", m.k2)
	}
}

func TestBadKey(t *testing.T) {
	if _, err := New(make([]byte, 8)); err == nil {
		t.Error("short key accepted")
	}
	if _, err := Compute(make([]byte, 8), nil); err == nil {
		t.Error("Compute with short key accepted")
	}
}

// Property: streaming over arbitrary chunk boundaries equals one-shot.
func TestQuickStreamingEqualsOneShot(t *testing.T) {
	key := unhex(t, rfcKey)
	f := func(seed int64, n16 uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n16 % 700)
		data := make([]byte, n)
		rng.Read(data)
		want, _ := Compute(key, data)
		m, _ := New(key)
		for off := 0; off < n; {
			chunk := 1 + rng.Intn(90)
			if off+chunk > n {
				chunk = n - off
			}
			m.Update(data[off : off+chunk])
			off += chunk
		}
		return Equal(m.Sum(), want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// The paper's per-frame update pattern: 28 frames of 324 bytes streamed
// frame-by-frame must equal the one-shot MAC over the concatenation.
func TestPerFrameUpdatePattern(t *testing.T) {
	key := unhex(t, rfcKey)
	rng := rand.New(rand.NewSource(7))
	frames := make([][]byte, 28)
	var all []byte
	for i := range frames {
		frames[i] = make([]byte, 324)
		rng.Read(frames[i])
		all = append(all, frames[i]...)
	}
	m, _ := New(key) // Init MAC_K
	for _, f := range frames {
		m.Update(f) // Update MAC_K step i
	}
	got := m.Sum() // finalize MAC_K
	want, _ := Compute(key, all)
	if !Equal(got, want) {
		t.Fatal("per-frame streaming differs from one-shot")
	}
}

func TestResetReuse(t *testing.T) {
	key := unhex(t, rfcKey)
	m, _ := New(key)
	m.Update([]byte("hello"))
	first := m.Sum()
	m.Reset()
	m.Update([]byte("hello"))
	second := m.Sum()
	if !Equal(first, second) {
		t.Fatal("Reset does not restore initial state")
	}
	m.Reset()
	m.Update([]byte("world"))
	third := m.Sum()
	if Equal(first, third) {
		t.Fatal("different messages produced equal MACs")
	}
}

func TestSumTwicePanics(t *testing.T) {
	m, _ := New(make([]byte, 16))
	m.Sum()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on double Sum")
		}
	}()
	m.Sum()
}

func TestUpdateAfterSumPanics(t *testing.T) {
	m, _ := New(make([]byte, 16))
	m.Sum()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on Update after Sum")
		}
	}()
	m.Update([]byte{1})
}

func TestBlocksAccounting(t *testing.T) {
	m, _ := New(make([]byte, 16))
	if m.Blocks() != 1 { // subkey generation
		t.Fatalf("Blocks after New = %d", m.Blocks())
	}
	m.Update(make([]byte, 48)) // 3 blocks, last held back
	m.Sum()
	// 1 subkey + 2 intermediate + 1 final = 4
	if m.Blocks() != 4 {
		t.Fatalf("Blocks = %d, want 4", m.Blocks())
	}
}

// Property: MACs differ when a single message bit flips (no trivial
// collisions across our frame sizes).
func TestQuickBitFlipChangesMAC(t *testing.T) {
	key := unhex(t, rfcKey)
	f := func(seed int64, pos uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 324)
		rng.Read(data)
		a, _ := Compute(key, data)
		i := int(pos) % (324 * 8)
		data[i/8] ^= 1 << (uint(i) % 8)
		b, _ := Compute(key, data)
		return !Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualConstantTimeSemantics(t *testing.T) {
	a := [Size]byte{1}
	b := [Size]byte{1}
	if !Equal(a, b) {
		t.Fatal("equal tags compare unequal")
	}
	b[15] ^= 0x80
	if Equal(a, b) {
		t.Fatal("unequal tags compare equal")
	}
}
