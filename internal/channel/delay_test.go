package channel

import (
	"io"
	"testing"
	"time"
)

// TestDelayEndpointPipelinesConcurrently is the property that makes
// DelayEndpoint an honest model for pipelining benchmarks: n messages
// sent back-to-back age concurrently, so a windowed exchange completes in
// roughly one round trip — not n of them. (FaultDelay would serialise.)
func TestDelayEndpointPipelinesConcurrently(t *testing.T) {
	a, b := SimPair(SimConfig{})
	const oneWay = 30 * time.Millisecond
	d := NewDelayEndpoint(a, oneWay)
	defer d.Close()

	const n = 8
	// Echo peer: answers every request immediately.
	go func() {
		for {
			msg, err := b.Recv()
			if err != nil {
				return
			}
			if b.Send(msg) != nil {
				return
			}
		}
	}()

	start := time.Now()
	for i := 0; i < n; i++ {
		if err := d.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < n; i++ {
		msg, err := d.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if len(msg) != 1 || msg[0] != byte(i) {
			t.Fatalf("echo %d came back as %v (ordering broken)", i, msg)
		}
	}
	elapsed := time.Since(start)

	if elapsed < 2*oneWay {
		t.Fatalf("pipelined burst finished in %v, faster than one round trip %v", elapsed, 2*oneWay)
	}
	// A serialising implementation would need n round trips; allow ample
	// scheduler slack while still catching serialisation.
	if limit := time.Duration(n) * oneWay; elapsed > limit {
		t.Fatalf("pipelined burst of %d took %v — messages are not aging concurrently (serial would be %v)",
			n, elapsed, 2*time.Duration(n)*oneWay)
	}
}

// TestDelayEndpointLockstepPaysRoundTrips: the complementary bound — a
// lockstep caller pays the full round trip per exchange, which is exactly
// the cost the windowed session is designed to hide.
func TestDelayEndpointLockstepPaysRoundTrips(t *testing.T) {
	a, b := SimPair(SimConfig{})
	const oneWay = 10 * time.Millisecond
	d := NewDelayEndpoint(a, oneWay)
	defer d.Close()

	go func() {
		for {
			msg, err := b.Recv()
			if err != nil {
				return
			}
			if b.Send(msg) != nil {
				return
			}
		}
	}()

	const n = 4
	start := time.Now()
	for i := 0; i < n; i++ {
		if err := d.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
		if _, err := d.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	if elapsed, min := time.Since(start), time.Duration(n)*2*oneWay; elapsed < min {
		t.Fatalf("%d lockstep exchanges took %v, under the %v latency floor", n, elapsed, min)
	}
}

// TestDelayEndpointClose: a closed wrapper delivers EOF to receivers and
// rejects senders, and the peer sees the underlying close.
func TestDelayEndpointClose(t *testing.T) {
	a, b := SimPair(SimConfig{})
	d := NewDelayEndpoint(a, time.Millisecond)
	done := make(chan error, 1)
	go func() {
		_, err := d.Recv()
		done <- err
	}()
	time.Sleep(5 * time.Millisecond)
	d.Close()
	select {
	case err := <-done:
		if err != io.EOF {
			t.Fatalf("Recv after close: %v, want EOF", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not return after close")
	}
	if err := d.Send([]byte{1}); err == nil {
		t.Fatal("Send after close succeeded")
	}
	if _, err := b.Recv(); err != io.EOF {
		t.Fatalf("peer Recv after close: %v, want EOF", err)
	}
}

// TestDelayEndpointDeliversError: an inner receive error (peer closed)
// propagates through the delay queue.
func TestDelayEndpointDeliversError(t *testing.T) {
	a, b := SimPair(SimConfig{})
	d := NewDelayEndpoint(a, time.Millisecond)
	defer d.Close()
	if err := b.Send([]byte{42}); err != nil {
		t.Fatal(err)
	}
	b.Close()
	msg, err := d.Recv()
	if err != nil || len(msg) != 1 {
		t.Fatalf("first Recv: %v %v", msg, err)
	}
	if _, err := d.Recv(); err == nil {
		t.Fatal("peer-close did not surface")
	}
}
