package channel

import (
	"errors"
	"net"
	"testing"
	"time"
)

// tcpPair connects two TCPEndpoints over loopback.
func tcpPair(t *testing.T) (client, server *TCPEndpoint) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			close(accepted)
			return
		}
		accepted <- conn
	}()
	client, err = Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	conn, ok := <-accepted
	if !ok {
		t.Fatal("accept failed")
	}
	server = NewTCP(conn)
	t.Cleanup(func() { client.Close(); server.Close() })
	return client, server
}

func TestTCPRejectsZeroLengthHeader(t *testing.T) {
	client, server := tcpPair(t)
	// A desynchronised peer writes an all-zero length header.
	if _, err := server.conn.Write([]byte{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	if _, err := client.Recv(); !errors.Is(err, ErrZeroLength) {
		t.Fatalf("got %v, want ErrZeroLength", err)
	}
}

func TestTCPRejectsEmptySend(t *testing.T) {
	client, _ := tcpPair(t)
	if err := client.Send(nil); !errors.Is(err, ErrZeroLength) {
		t.Fatalf("got %v, want ErrZeroLength", err)
	}
}

func TestTCPErrClosedAfterClose(t *testing.T) {
	client, server := tcpPair(t)
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := client.Send([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: %v, want ErrClosed", err)
	}
	if _, err := client.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after close: %v, want ErrClosed", err)
	}
	// The peer's blocked Recv observes the remote close as EOF, not
	// ErrClosed (it did not close locally).
	if _, err := server.Recv(); errors.Is(err, ErrClosed) {
		t.Fatalf("peer saw local-close error: %v", err)
	}
}

func TestTCPCloseUnblocksRecv(t *testing.T) {
	client, _ := tcpPair(t)
	errc := make(chan error, 1)
	go func() {
		_, err := client.Recv()
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond) // let Recv block on the socket
	client.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("got %v, want ErrClosed", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Close did not unblock Recv")
	}
}

func TestDeadlineEndpointRecvTimeout(t *testing.T) {
	client, _ := tcpPair(t)
	dep := NewDeadline(client, 0, 30*time.Millisecond)
	start := time.Now()
	_, err := dep.Recv()
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	if d := time.Since(start); d > time.Second {
		t.Fatalf("timeout fired after %v", d)
	}
}

func TestDeadlineEndpointRecoversAfterTimeout(t *testing.T) {
	client, server := tcpPair(t)
	dep := NewDeadline(client, 100*time.Millisecond, 30*time.Millisecond)
	if _, err := dep.Recv(); !errors.Is(err, ErrTimeout) {
		t.Fatalf("got %v, want ErrTimeout", err)
	}
	// The connection stays usable: a late message still arrives.
	if err := server.Send([]byte("late")); err != nil {
		t.Fatal(err)
	}
	got, err := dep.Recv()
	if err != nil || string(got) != "late" {
		t.Fatalf("post-timeout recv: %q %v", got, err)
	}
	if err := dep.Send([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if got, err := server.Recv(); err != nil || string(got) != "ok" {
		t.Fatalf("post-timeout send: %q %v", got, err)
	}
}

func TestFaultOverTCP(t *testing.T) {
	client, server := tcpPair(t)
	f := NewFault(client, FaultConfig{Script: []FaultOp{
		{Dir: DirSend, Index: 0, Kind: FaultDrop},
		{Dir: DirSend, Index: 2, Kind: FaultDuplicate},
	}})
	for _, m := range []string{"a", "b", "c"} {
		if err := f.Send([]byte(m)); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"b", "c", "c"}
	for i, w := range want {
		got, err := server.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if string(got) != w {
			t.Fatalf("message %d = %q, want %q", i, got, w)
		}
	}
}

func TestFaultResetOverTCP(t *testing.T) {
	client, server := tcpPair(t)
	f := NewFault(client, FaultConfig{Script: []FaultOp{{Dir: DirSend, Index: 1, Kind: FaultReset}}})
	if err := f.Send([]byte("fine")); err != nil {
		t.Fatal(err)
	}
	if err := f.Send([]byte("boom")); !errors.Is(err, ErrReset) {
		t.Fatalf("got %v, want ErrReset", err)
	}
	// The peer sees the torn-down connection after draining.
	if got, err := server.Recv(); err != nil || string(got) != "fine" {
		t.Fatalf("pre-reset message lost: %q %v", got, err)
	}
	if _, err := server.Recv(); err == nil {
		t.Fatal("peer did not observe connection teardown")
	}
}
