package channel

import (
	"math/rand"
	"testing"
	"time"
)

// TestFaultDelayInjectedClock proves FaultDelay goes through the
// injected clock instead of time.Sleep: every scheduled delay is
// observed by the fake clock and the call returns without wall-time
// cost, so a campaign can storm delays without wall-clock races.
func TestFaultDelayInjectedClock(t *testing.T) {
	a, b := SimPair(SimConfig{})
	defer a.Close()
	defer b.Close()

	var slept []time.Duration
	fe := NewFault(a, FaultConfig{
		Delay: 250 * time.Millisecond,
		Sleep: func(d time.Duration) { slept = append(slept, d) },
		Script: []FaultOp{
			{Dir: DirSend, Index: 0, Kind: FaultDelay},
			{Dir: DirRecv, Index: 0, Kind: FaultDelay},
		},
	})

	start := time.Now()
	if err := fe.Send([]byte{1}); err != nil {
		t.Fatalf("Send: %v", err)
	}
	if _, err := b.Recv(); err != nil {
		t.Fatalf("peer Recv: %v", err)
	}
	if err := b.Send([]byte{2}); err != nil {
		t.Fatalf("peer Send: %v", err)
	}
	if _, err := fe.Recv(); err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if wall := time.Since(start); wall > 100*time.Millisecond {
		t.Fatalf("injected clock still cost %v of wall time", wall)
	}
	if len(slept) != 2 {
		t.Fatalf("fake clock saw %d sleeps, want 2 (send + recv)", len(slept))
	}
	for i, d := range slept {
		if d != 250*time.Millisecond {
			t.Fatalf("sleep %d = %v, want 250ms", i, d)
		}
	}
	st := fe.Stats()
	if st.Delayed != 2 {
		t.Fatalf("Delayed = %d, want 2", st.Delayed)
	}
}

// TestFaultInjectedSource proves a caller-owned rand.Source replaces the
// Seed-derived one and reproduces the identical fault sequence — the
// campaign scheduler's reproducibility contract.
func TestFaultInjectedSource(t *testing.T) {
	run := func(src rand.Source) FaultStats {
		a, b := SimPair(SimConfig{})
		defer a.Close()
		defer b.Close()
		fe := NewFault(a, FaultConfig{
			Source:      src,
			DropProb:    0.3,
			CorruptProb: 0.3,
			// Seed deliberately clashes with the source to prove it is
			// ignored when Source is set.
			Seed: 0x5EED,
		})
		go func() {
			for {
				if _, err := b.Recv(); err != nil {
					return
				}
			}
		}()
		for i := 0; i < 64; i++ {
			if err := fe.Send([]byte{byte(i), 0xAB}); err != nil {
				t.Errorf("Send %d: %v", i, err)
				return FaultStats{}
			}
		}
		return fe.Stats()
	}

	s1 := run(rand.NewSource(42))
	s2 := run(rand.NewSource(42))
	if s1 != s2 {
		t.Fatalf("same injected source diverged: %+v vs %+v", s1, s2)
	}
	if s1.Dropped == 0 && s1.Corrupted == 0 {
		t.Fatalf("lottery never fired: %+v", s1)
	}
	s3 := run(rand.NewSource(7))
	if s3 == s1 {
		t.Fatalf("different sources produced identical stats %+v — Source likely ignored", s1)
	}
}
