package channel

import (
	"io"
	"sync"
	"time"
)

// DelayEndpoint wraps an endpoint with a constant one-way latency in each
// direction, modelling a long link honestly for pipelined protocols:
// every message is stamped with a due time when it enters the wrapper and
// delivered when that time passes, so messages in flight age
// *concurrently*. (FaultDelay sleeps inline inside Send/Recv, which
// serialises back-to-back messages and would make any pipelining
// benchmark meaningless.) A lockstep exchange over a DelayEndpoint pays
// the full round trip per command; a windowed exchange pays it roughly
// once per window.
type DelayEndpoint struct {
	inner   Endpoint
	latency time.Duration
	out, in *delayQueue

	mu      sync.Mutex
	sendErr error
}

type delayItem struct {
	msg []byte
	due time.Time
	err error
}

// delayQueue is an unbounded FIFO of stamped messages; delivery-time
// sleeping is the consumer's job, so queued messages keep aging while
// earlier ones are drained.
type delayQueue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  []delayItem
	closed bool
}

func newDelayQueue() *delayQueue {
	q := &delayQueue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *delayQueue) push(it delayItem) bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return false
	}
	q.items = append(q.items, it)
	q.cond.Signal()
	return true
}

func (q *delayQueue) pop() (delayItem, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return delayItem{}, false
	}
	it := q.items[0]
	q.items = q.items[1:]
	return it, true
}

func (q *delayQueue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// NewDelayEndpoint wraps inner with the given one-way latency per
// direction (a send and its response therefore pay 2×latency round trip).
func NewDelayEndpoint(inner Endpoint, latency time.Duration) *DelayEndpoint {
	d := &DelayEndpoint{inner: inner, latency: latency, out: newDelayQueue(), in: newDelayQueue()}
	go d.sendPump()
	go d.recvPump()
	return d
}

func (d *DelayEndpoint) sendPump() {
	for {
		it, ok := d.out.pop()
		if !ok {
			return
		}
		sleepUntil(it.due)
		if err := d.inner.Send(it.msg); err != nil {
			d.mu.Lock()
			if d.sendErr == nil {
				d.sendErr = err
			}
			d.mu.Unlock()
		}
	}
}

func (d *DelayEndpoint) recvPump() {
	for {
		msg, err := d.inner.Recv()
		if !d.in.push(delayItem{msg: msg, due: time.Now().Add(d.latency), err: err}) {
			return
		}
		if err != nil {
			return
		}
	}
}

func sleepUntil(due time.Time) {
	if w := time.Until(due); w > 0 {
		time.Sleep(w)
	}
}

// Send stamps the message and returns immediately; the wire sees it one
// latency later. An inner send failure surfaces on a later Send (the
// caller's retry layer treats it like a lost message either way).
func (d *DelayEndpoint) Send(msg []byte) error {
	d.mu.Lock()
	err := d.sendErr
	d.mu.Unlock()
	if err != nil {
		return err
	}
	cp := make([]byte, len(msg))
	copy(cp, msg)
	if !d.out.push(delayItem{msg: cp, due: time.Now().Add(d.latency)}) {
		return ErrClosed
	}
	return nil
}

// Recv returns the next message once its one-way latency has elapsed.
func (d *DelayEndpoint) Recv() ([]byte, error) {
	it, ok := d.in.pop()
	if !ok {
		return nil, io.EOF
	}
	sleepUntil(it.due)
	return it.msg, it.err
}

// Close shuts the wrapper and the wrapped endpoint down.
func (d *DelayEndpoint) Close() error {
	d.out.close()
	d.in.close()
	return d.inner.Close()
}
