package channel

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
)

// maxTCPMessage bounds a single message on the TCP transport (a frame
// message is ~330 bytes; 1 MiB leaves room for any extension).
const maxTCPMessage = 1 << 20

// TCPEndpoint adapts a net.Conn into an Endpoint with length-prefixed
// messages (big-endian uint32 length + payload).
type TCPEndpoint struct {
	conn net.Conn
	r    *bufio.Reader
	w    *bufio.Writer
}

// NewTCP wraps an established connection.
func NewTCP(conn net.Conn) *TCPEndpoint {
	return &TCPEndpoint{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 64<<10),
		w:    bufio.NewWriterSize(conn, 64<<10),
	}
}

// Dial connects to a prover at addr.
func Dial(addr string) (*TCPEndpoint, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("channel: %w", err)
	}
	return NewTCP(conn), nil
}

// Send writes one length-prefixed message and flushes it.
func (e *TCPEndpoint) Send(msg []byte) error {
	if len(msg) > maxTCPMessage {
		return fmt.Errorf("channel: message of %d bytes exceeds limit", len(msg))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := e.w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := e.w.Write(msg); err != nil {
		return err
	}
	return e.w.Flush()
}

// Recv reads one length-prefixed message.
func (e *TCPEndpoint) Recv() ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(e.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxTCPMessage {
		return nil, fmt.Errorf("channel: message of %d bytes exceeds limit", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(e.r, msg); err != nil {
		return nil, err
	}
	return msg, nil
}

// Close closes the connection.
func (e *TCPEndpoint) Close() error { return e.conn.Close() }
