package channel

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync/atomic"
	"time"
)

// maxTCPMessage bounds a single message on the TCP transport (a frame
// message is ~330 bytes; 1 MiB leaves room for any extension).
const maxTCPMessage = 1 << 20

// TCPEndpoint adapts a net.Conn into an Endpoint with length-prefixed
// messages (big-endian uint32 length + payload).
type TCPEndpoint struct {
	conn   net.Conn
	r      *bufio.Reader
	w      *bufio.Writer
	closed atomic.Bool
}

// NewTCP wraps an established connection.
func NewTCP(conn net.Conn) *TCPEndpoint {
	return &TCPEndpoint{
		conn: conn,
		r:    bufio.NewReaderSize(conn, 64<<10),
		w:    bufio.NewWriterSize(conn, 64<<10),
	}
}

// Dial connects to a prover at addr.
func Dial(addr string) (*TCPEndpoint, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("channel: %w", err)
	}
	return NewTCP(conn), nil
}

// mapNetErr translates net-level failures into the package's typed
// errors: local close becomes ErrClosed, expired deadlines ErrTimeout.
func (e *TCPEndpoint) mapNetErr(err error) error {
	if err == nil {
		return nil
	}
	if e.closed.Load() || errors.Is(err, net.ErrClosed) {
		return fmt.Errorf("%w: %v", ErrClosed, err)
	}
	var ne net.Error
	if errors.As(err, &ne) && ne.Timeout() {
		return fmt.Errorf("%w: %v", ErrTimeout, err)
	}
	return err
}

// Send writes one length-prefixed message and flushes it.
func (e *TCPEndpoint) Send(msg []byte) error {
	if e.closed.Load() {
		return ErrClosed
	}
	if len(msg) > maxTCPMessage {
		return fmt.Errorf("channel: message of %d bytes exceeds limit", len(msg))
	}
	if len(msg) == 0 {
		return ErrZeroLength
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(msg)))
	if _, err := e.w.Write(hdr[:]); err != nil {
		return e.mapNetErr(err)
	}
	if _, err := e.w.Write(msg); err != nil {
		return e.mapNetErr(err)
	}
	return e.mapNetErr(e.w.Flush())
}

// Recv reads one length-prefixed message.
func (e *TCPEndpoint) Recv() ([]byte, error) {
	if e.closed.Load() {
		return nil, ErrClosed
	}
	var hdr [4]byte
	if _, err := io.ReadFull(e.r, hdr[:]); err != nil {
		if err == io.ErrUnexpectedEOF {
			err = io.EOF
		}
		return nil, e.mapNetErr(err)
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 {
		// No protocol message is empty (every message carries at least a
		// type byte); an all-zero header means a desynchronised or
		// malicious peer.
		return nil, ErrZeroLength
	}
	if n > maxTCPMessage {
		return nil, fmt.Errorf("channel: message of %d bytes exceeds limit", n)
	}
	msg := make([]byte, n)
	if _, err := io.ReadFull(e.r, msg); err != nil {
		return nil, e.mapNetErr(err)
	}
	return msg, nil
}

// Close closes the connection. Later Send/Recv calls return ErrClosed.
func (e *TCPEndpoint) Close() error {
	e.closed.Store(true)
	return e.conn.Close()
}

// DeadlineEndpoint enforces per-message send and receive timeouts on a
// TCPEndpoint by arming the connection deadlines around each operation.
// Expired deadlines surface as ErrTimeout. A zero timeout leaves that
// direction unbounded.
type DeadlineEndpoint struct {
	Inner                    *TCPEndpoint
	SendTimeout, RecvTimeout time.Duration
}

// NewDeadline wraps ep with per-message timeouts.
func NewDeadline(ep *TCPEndpoint, sendTimeout, recvTimeout time.Duration) *DeadlineEndpoint {
	return &DeadlineEndpoint{Inner: ep, SendTimeout: sendTimeout, RecvTimeout: recvTimeout}
}

// Send transmits one message, bounded by SendTimeout.
func (e *DeadlineEndpoint) Send(msg []byte) error {
	if e.SendTimeout > 0 {
		if err := e.Inner.conn.SetWriteDeadline(time.Now().Add(e.SendTimeout)); err != nil {
			return e.Inner.mapNetErr(err)
		}
		defer e.Inner.conn.SetWriteDeadline(time.Time{})
	}
	return e.Inner.Send(msg)
}

// Recv returns one message, bounded by RecvTimeout.
func (e *DeadlineEndpoint) Recv() ([]byte, error) {
	if e.RecvTimeout > 0 {
		if err := e.Inner.conn.SetReadDeadline(time.Now().Add(e.RecvTimeout)); err != nil {
			return nil, e.Inner.mapNetErr(err)
		}
		defer e.Inner.conn.SetReadDeadline(time.Time{})
	}
	return e.Inner.Recv()
}

// Close closes the wrapped endpoint.
func (e *DeadlineEndpoint) Close() error { return e.Inner.Close() }
