package channel

import (
	"errors"
	"math/rand"
	"sync"
	"time"

	"sacha/internal/obs"
)

// Typed transport errors. Wrappers and the TCP endpoint return these so
// callers can distinguish transport faults from protocol-level failures
// (errors.Is works through any wrapping).
var (
	// ErrClosed is returned by Send/Recv after the endpoint was closed
	// locally.
	ErrClosed = errors.New("channel: endpoint closed")
	// ErrTimeout is returned when a per-message deadline expires.
	ErrTimeout = errors.New("channel: i/o timeout")
	// ErrReset is returned after a fault-injected connection reset.
	ErrReset = errors.New("channel: connection reset")
	// ErrZeroLength is returned by TCPEndpoint.Recv for a zero-length
	// message header, which the protocol never produces (every message
	// carries at least a type byte).
	ErrZeroLength = errors.New("channel: zero-length message")
)

// FaultKind enumerates the injectable transport faults.
type FaultKind int

const (
	// FaultNone passes the message through unchanged.
	FaultNone FaultKind = iota
	// FaultDrop silently discards the message.
	FaultDrop
	// FaultDuplicate delivers the message twice.
	FaultDuplicate
	// FaultReorder holds the message back for ReorderWindow later
	// messages before delivering it.
	FaultReorder
	// FaultCorrupt flips one random bit of the message.
	FaultCorrupt
	// FaultDelay delivers the message after sleeping Delay.
	FaultDelay
	// FaultReset closes the underlying endpoint; every later operation
	// returns ErrReset.
	FaultReset
)

func (k FaultKind) String() string {
	switch k {
	case FaultNone:
		return "none"
	case FaultDrop:
		return "drop"
	case FaultDuplicate:
		return "duplicate"
	case FaultReorder:
		return "reorder"
	case FaultCorrupt:
		return "corrupt"
	case FaultDelay:
		return "delay"
	case FaultReset:
		return "reset"
	}
	return "unknown"
}

// Direction distinguishes the two message flows through a FaultEndpoint.
type Direction int

const (
	// DirSend faults messages passed to Send.
	DirSend Direction = iota
	// DirRecv faults messages returned by Recv.
	DirRecv
)

// FaultOp is one scripted fault: the Index-th message (0-based, counted
// per direction) suffers Kind. Scripted faults take precedence over the
// probabilistic draws, making single-fault experiments deterministic.
type FaultOp struct {
	Dir   Direction
	Index int
	Kind  FaultKind
}

// FaultConfig parameterises a FaultEndpoint. All probabilities are per
// message and per direction; the zero value injects nothing.
type FaultConfig struct {
	// Seed drives the fault lottery and the corruption bit choice; equal
	// seeds reproduce identical fault sequences.
	Seed int64
	// Source, if non-nil, replaces the rand source derived from Seed —
	// the hook a campaign scheduler uses to hand the injector a stream
	// it controls end to end. Seed is ignored when Source is set.
	Source rand.Source
	// Sleep, if non-nil, replaces time.Sleep for FaultDelay injection.
	// Soak campaigns substitute a virtual clock here so delay storms
	// exercise the delay code path without wall-clock races deciding
	// whether a delayed message beats a retry timer.
	Sleep func(time.Duration)
	// DropProb, DupProb, CorruptProb, ReorderProb, DelayProb select the
	// per-message fault, drawn in that order.
	DropProb, DupProb, CorruptProb, ReorderProb, DelayProb float64
	// ReorderWindow is how many subsequent messages overtake a reordered
	// one (default 1).
	ReorderWindow int
	// Delay is the latency injected by FaultDelay.
	Delay time.Duration
	// Script lists deterministic faults, matched before any random draw.
	Script []FaultOp
}

// FaultStats counts the faults a FaultEndpoint injected.
type FaultStats struct {
	Sent, Received                                             int
	Dropped, Duplicated, Reordered, Corrupted, Delayed, Resets int
}

// mFaultsInjected counts every fault the injector layer introduces, by
// kind — the ground truth the transport-level retry/fault counters are
// judged against in fault experiments.
var mFaultsInjected = obs.Default().CounterVec("sacha_channel_faults_injected_total",
	"Transport faults injected by FaultEndpoint wrappers, by kind.", "kind")

// held is a reordered message waiting for its release point.
type held struct {
	msg     []byte
	release int // deliver once the direction counter reaches this
}

// FaultEndpoint wraps an Endpoint and injects deterministic, seeded
// transport faults in both directions. It models an unreliable network
// around any transport (the simulated lab link or TCP) without touching
// the wrapped implementation.
//
// Send may be called concurrently with Recv; each direction itself is
// single-caller (the usual endpoint discipline).
type FaultEndpoint struct {
	inner Endpoint
	cfg   FaultConfig
	sleep func(time.Duration)

	mu    sync.Mutex // guards rng, stats, reset
	rng   *rand.Rand
	stats FaultStats
	reset bool

	sendMu   sync.Mutex
	sendIdx  int
	sendHeld []held

	recvMu   sync.Mutex
	recvIdx  int
	recvHeld []held
	pending  [][]byte // ready-to-deliver (duplicates, released reorders)
}

// NewFault wraps inner with the fault injector.
func NewFault(inner Endpoint, cfg FaultConfig) *FaultEndpoint {
	if cfg.ReorderWindow < 1 {
		cfg.ReorderWindow = 1
	}
	src := cfg.Source
	if src == nil {
		src = rand.NewSource(cfg.Seed)
	}
	sleep := cfg.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	return &FaultEndpoint{
		inner: inner,
		cfg:   cfg,
		sleep: sleep,
		rng:   rand.New(src),
	}
}

// Stats returns a snapshot of the injected-fault counters.
func (f *FaultEndpoint) Stats() FaultStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// pick decides the fault for one message. It consults the script first,
// then the seeded lottery.
func (f *FaultEndpoint) pick(dir Direction, idx int) FaultKind {
	for _, op := range f.cfg.Script {
		if op.Dir == dir && op.Index == idx {
			return op.Kind
		}
	}
	draw := f.rng.Float64()
	switch {
	case draw < f.cfg.DropProb:
		return FaultDrop
	case draw < f.cfg.DropProb+f.cfg.DupProb:
		return FaultDuplicate
	case draw < f.cfg.DropProb+f.cfg.DupProb+f.cfg.CorruptProb:
		return FaultCorrupt
	case draw < f.cfg.DropProb+f.cfg.DupProb+f.cfg.CorruptProb+f.cfg.ReorderProb:
		return FaultReorder
	case draw < f.cfg.DropProb+f.cfg.DupProb+f.cfg.CorruptProb+f.cfg.ReorderProb+f.cfg.DelayProb:
		return FaultDelay
	}
	return FaultNone
}

// corrupt returns a copy of msg with one random bit flipped.
func (f *FaultEndpoint) corrupt(msg []byte) []byte {
	cp := append([]byte(nil), msg...)
	if len(cp) > 0 {
		bit := f.rng.Intn(len(cp) * 8)
		cp[bit/8] ^= 1 << (bit % 8)
	}
	return cp
}

func (f *FaultEndpoint) isReset() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.reset
}

func (f *FaultEndpoint) doReset() {
	f.mu.Lock()
	f.reset = true
	f.stats.Resets++
	f.mu.Unlock()
	mFaultsInjected.With(FaultReset.String()).Inc()
	f.inner.Close()
}

// Send passes the message through the fault injector towards the peer.
func (f *FaultEndpoint) Send(msg []byte) error {
	if f.isReset() {
		return ErrReset
	}
	f.sendMu.Lock()
	defer f.sendMu.Unlock()

	idx := f.sendIdx
	f.sendIdx++

	f.mu.Lock()
	kind := f.pick(DirSend, idx)
	f.stats.Sent++
	var corrupted []byte
	if kind == FaultCorrupt {
		corrupted = f.corrupt(msg)
	}
	switch kind {
	case FaultDrop:
		f.stats.Dropped++
	case FaultDuplicate:
		f.stats.Duplicated++
	case FaultReorder:
		f.stats.Reordered++
	case FaultCorrupt:
		f.stats.Corrupted++
	case FaultDelay:
		f.stats.Delayed++
	}
	f.mu.Unlock()
	if kind != FaultNone {
		mFaultsInjected.With(kind.String()).Inc()
	}

	var err error
	switch kind {
	case FaultDrop:
		// vanished on the wire
	case FaultDuplicate:
		if err = f.inner.Send(msg); err == nil {
			err = f.inner.Send(msg)
		}
	case FaultReorder:
		cp := append([]byte(nil), msg...)
		f.sendHeld = append(f.sendHeld, held{msg: cp, release: idx + f.cfg.ReorderWindow})
	case FaultCorrupt:
		err = f.inner.Send(corrupted)
	case FaultDelay:
		f.sleep(f.cfg.Delay)
		err = f.inner.Send(msg)
	case FaultReset:
		f.doReset()
		return ErrReset
	default:
		err = f.inner.Send(msg)
	}
	if err != nil {
		return err
	}
	// Release reordered messages whose window has passed (sendIdx is one
	// past the current message's index, so strict < means "a message after
	// the release point went out").
	rest := f.sendHeld[:0]
	for _, h := range f.sendHeld {
		if h.release < f.sendIdx {
			if sendErr := f.inner.Send(h.msg); sendErr != nil && err == nil {
				err = sendErr
			}
		} else {
			rest = append(rest, h)
		}
	}
	f.sendHeld = rest
	return err
}

// Recv returns the next message from the peer, after the fault injector
// had its way with it.
func (f *FaultEndpoint) Recv() ([]byte, error) {
	f.recvMu.Lock()
	defer f.recvMu.Unlock()
	for {
		if f.isReset() {
			return nil, ErrReset
		}
		if len(f.pending) > 0 {
			msg := f.pending[0]
			f.pending = f.pending[1:]
			return msg, nil
		}
		raw, err := f.inner.Recv()
		if err != nil {
			return nil, err
		}
		idx := f.recvIdx
		f.recvIdx++

		f.mu.Lock()
		kind := f.pick(DirRecv, idx)
		f.stats.Received++
		var corrupted []byte
		if kind == FaultCorrupt {
			corrupted = f.corrupt(raw)
		}
		switch kind {
		case FaultDrop:
			f.stats.Dropped++
		case FaultDuplicate:
			f.stats.Duplicated++
		case FaultReorder:
			f.stats.Reordered++
		case FaultCorrupt:
			f.stats.Corrupted++
		case FaultDelay:
			f.stats.Delayed++
		}
		f.mu.Unlock()
		if kind != FaultNone {
			mFaultsInjected.With(kind.String()).Inc()
		}

		// Release held messages whose window has passed before deciding
		// this message's fate, so reordered traffic eventually drains.
		rest := f.recvHeld[:0]
		for _, h := range f.recvHeld {
			if h.release <= f.recvIdx {
				f.pending = append(f.pending, h.msg)
			} else {
				rest = append(rest, h)
			}
		}
		f.recvHeld = rest

		switch kind {
		case FaultDrop:
			continue
		case FaultDuplicate:
			f.pending = append(f.pending, append([]byte(nil), raw...))
			return raw, nil
		case FaultReorder:
			f.recvHeld = append(f.recvHeld, held{msg: raw, release: idx + f.cfg.ReorderWindow})
			continue
		case FaultCorrupt:
			return corrupted, nil
		case FaultDelay:
			f.sleep(f.cfg.Delay)
			return raw, nil
		case FaultReset:
			f.doReset()
			return nil, ErrReset
		default:
			return raw, nil
		}
	}
}

// Close closes the wrapped endpoint.
func (f *FaultEndpoint) Close() error { return f.inner.Close() }
