package channel

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"
)

// collect receives n messages from ep or fails the test.
func collect(t *testing.T, ep Endpoint, n int) [][]byte {
	t.Helper()
	out := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		msg, err := ep.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		out = append(out, msg)
	}
	return out
}

func TestFaultScriptDrop(t *testing.T) {
	a, b := SimPair(SimConfig{})
	f := NewFault(a, FaultConfig{Script: []FaultOp{{Dir: DirSend, Index: 1, Kind: FaultDrop}}})
	for i := 0; i < 3; i++ {
		if err := f.Send([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	got := collect(t, b, 2)
	if got[0][0] != 0 || got[1][0] != 2 {
		t.Fatalf("got %v, want messages 0 and 2", got)
	}
	if st := f.Stats(); st.Dropped != 1 || st.Sent != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFaultScriptDuplicate(t *testing.T) {
	a, b := SimPair(SimConfig{})
	f := NewFault(a, FaultConfig{Script: []FaultOp{{Dir: DirSend, Index: 0, Kind: FaultDuplicate}}})
	if err := f.Send([]byte("dup")); err != nil {
		t.Fatal(err)
	}
	got := collect(t, b, 2)
	if !bytes.Equal(got[0], got[1]) || string(got[0]) != "dup" {
		t.Fatalf("got %q %q", got[0], got[1])
	}
	if st := f.Stats(); st.Duplicated != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFaultScriptReorder(t *testing.T) {
	a, b := SimPair(SimConfig{})
	f := NewFault(a, FaultConfig{Script: []FaultOp{{Dir: DirSend, Index: 0, Kind: FaultReorder}}})
	f.Send([]byte("first"))
	f.Send([]byte("second"))
	got := collect(t, b, 2)
	if string(got[0]) != "second" || string(got[1]) != "first" {
		t.Fatalf("got %q %q, want reorder", got[0], got[1])
	}
	if st := f.Stats(); st.Reordered != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFaultScriptCorrupt(t *testing.T) {
	a, b := SimPair(SimConfig{})
	f := NewFault(a, FaultConfig{Script: []FaultOp{{Dir: DirSend, Index: 0, Kind: FaultCorrupt}}})
	orig := []byte("payload")
	f.Send(orig)
	got := collect(t, b, 1)[0]
	if bytes.Equal(got, orig) {
		t.Fatal("corruption did not change the message")
	}
	// Exactly one bit flipped.
	diff := 0
	for i := range got {
		for x := got[i] ^ orig[i]; x != 0; x &= x - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits flipped, want 1", diff)
	}
}

func TestFaultScriptResetOnSend(t *testing.T) {
	a, b := SimPair(SimConfig{})
	f := NewFault(a, FaultConfig{Script: []FaultOp{{Dir: DirSend, Index: 1, Kind: FaultReset}}})
	if err := f.Send([]byte("ok")); err != nil {
		t.Fatal(err)
	}
	if err := f.Send([]byte("boom")); !errors.Is(err, ErrReset) {
		t.Fatalf("got %v, want ErrReset", err)
	}
	// Every later operation keeps failing with ErrReset.
	if err := f.Send([]byte("later")); !errors.Is(err, ErrReset) {
		t.Fatalf("post-reset send: %v", err)
	}
	if _, err := f.Recv(); !errors.Is(err, ErrReset) {
		t.Fatalf("post-reset recv: %v", err)
	}
	// The peer sees the closed link.
	collect(t, b, 1)
	if _, err := b.Recv(); err == nil {
		t.Fatal("peer did not observe the reset")
	}
}

func TestFaultRecvSideFaults(t *testing.T) {
	a, b := SimPair(SimConfig{})
	f := NewFault(b, FaultConfig{Script: []FaultOp{
		{Dir: DirRecv, Index: 0, Kind: FaultDrop},
		{Dir: DirRecv, Index: 2, Kind: FaultDuplicate},
	}})
	for i := 0; i < 3; i++ {
		a.Send([]byte{byte(i)})
	}
	got := collect(t, f, 3)
	want := []byte{1, 2, 2} // 0 dropped, 2 duplicated
	for i := range want {
		if got[i][0] != want[i] {
			t.Fatalf("message %d = %d, want %d", i, got[i][0], want[i])
		}
	}
	if st := f.Stats(); st.Dropped != 1 || st.Duplicated != 1 || st.Received != 3 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFaultRecvReorderReleases(t *testing.T) {
	a, b := SimPair(SimConfig{})
	f := NewFault(b, FaultConfig{Script: []FaultOp{{Dir: DirRecv, Index: 0, Kind: FaultReorder}}})
	a.Send([]byte("held"))
	a.Send([]byte("pass"))
	got := collect(t, f, 2)
	if string(got[0]) != "pass" || string(got[1]) != "held" {
		t.Fatalf("got %q %q", got[0], got[1])
	}
}

func TestFaultDelayInjectsLatency(t *testing.T) {
	a, b := SimPair(SimConfig{})
	f := NewFault(a, FaultConfig{
		Delay:  20 * time.Millisecond,
		Script: []FaultOp{{Dir: DirSend, Index: 0, Kind: FaultDelay}},
	})
	start := time.Now()
	f.Send([]byte("slow"))
	if d := time.Since(start); d < 15*time.Millisecond {
		t.Fatalf("send returned after %v, want >= 20ms delay", d)
	}
	collect(t, b, 1)
	if st := f.Stats(); st.Delayed != 1 {
		t.Fatalf("stats %+v", st)
	}
}

func TestFaultSeededLotteryDeterministic(t *testing.T) {
	run := func() (FaultStats, []string) {
		a, b := SimPair(SimConfig{})
		f := NewFault(a, FaultConfig{Seed: 7, DropProb: 0.3, DupProb: 0.2})
		delivered := 0
		for i := 0; i < 100; i++ {
			if err := f.Send([]byte(fmt.Sprintf("m%02d", i))); err != nil {
				t.Fatal(err)
			}
		}
		st := f.Stats()
		delivered = st.Sent - st.Dropped + st.Duplicated
		var msgs []string
		for i := 0; i < delivered; i++ {
			m, err := b.Recv()
			if err != nil {
				t.Fatal(err)
			}
			msgs = append(msgs, string(m))
		}
		return st, msgs
	}
	st1, msgs1 := run()
	st2, msgs2 := run()
	if st1 != st2 {
		t.Fatalf("stats differ across equal seeds: %+v vs %+v", st1, st2)
	}
	if st1.Dropped == 0 || st1.Duplicated == 0 {
		t.Fatalf("lottery injected nothing: %+v", st1)
	}
	if len(msgs1) != len(msgs2) {
		t.Fatalf("deliveries differ: %d vs %d", len(msgs1), len(msgs2))
	}
	for i := range msgs1 {
		if msgs1[i] != msgs2[i] {
			t.Fatalf("delivery %d differs: %q vs %q", i, msgs1[i], msgs2[i])
		}
	}
}

func TestFaultPassThroughUnchanged(t *testing.T) {
	// A zero config must behave like the bare endpoint.
	a, b := SimPair(SimConfig{})
	f := NewFault(a, FaultConfig{})
	f.Send([]byte("clean"))
	if got := collect(t, b, 1); string(got[0]) != "clean" {
		t.Fatalf("got %q", got[0])
	}
	b.Send([]byte("back"))
	if got := collect(t, f, 1); string(got[0]) != "back" {
		t.Fatalf("got %q", got[0])
	}
	if st := f.Stats(); st.Dropped+st.Duplicated+st.Corrupted+st.Reordered+st.Delayed+st.Resets != 0 {
		t.Fatalf("zero config injected faults: %+v", st)
	}
}
