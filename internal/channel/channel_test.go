package channel

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"sacha/internal/ethsim"
	"sacha/internal/sim"
)

func TestSimPairDelivery(t *testing.T) {
	a, b := SimPair(SimConfig{})
	msgs := [][]byte{[]byte("one"), []byte("two"), []byte("three")}
	for _, m := range msgs {
		if err := a.Send(m); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range msgs {
		got, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("got %q want %q", got, want)
		}
	}
	// Reverse direction.
	if err := b.Send([]byte("pong")); err != nil {
		t.Fatal(err)
	}
	if got, _ := a.Recv(); string(got) != "pong" {
		t.Fatal("reverse direction broken")
	}
}

func TestSimPairCloseEOF(t *testing.T) {
	a, b := SimPair(SimConfig{})
	a.Send([]byte("last"))
	a.Close()
	if got, err := b.Recv(); err != nil || string(got) != "last" {
		t.Fatalf("pending message lost: %q %v", got, err)
	}
	if _, err := b.Recv(); err != io.EOF {
		t.Fatalf("want EOF, got %v", err)
	}
	if err := b.Send([]byte("x")); err == nil {
		t.Fatal("send on closed channel accepted")
	}
}

func TestSimPairNoAliasing(t *testing.T) {
	a, b := SimPair(SimConfig{})
	buf := []byte("mutate-me")
	a.Send(buf)
	buf[0] = 'X'
	got, _ := b.Recv()
	if string(got) != "mutate-me" {
		t.Fatal("Send aliases caller buffer")
	}
}

func TestSimPairTimelineAccounting(t *testing.T) {
	tl := sim.NewTimeline()
	a, b := SimPair(SimConfig{Timeline: tl, MessageLatency: 100 * time.Microsecond})
	a.Send(make([]byte, 328))
	b.Send(make([]byte, 17))
	// wire: WireBytes(328)=366, WireBytes(17)=55 → (366+55)*8 ns.
	wantWire := time.Duration((366+55)*8) * time.Nanosecond
	if got := tl.Tag("wire"); got != wantWire {
		t.Fatalf("wire = %v, want %v", got, wantWire)
	}
	// Latency is per command: only the initiator (a) charges it.
	if got := tl.Tag("latency"); got != 100*time.Microsecond {
		t.Fatalf("latency = %v", got)
	}
}

func TestSimPairConcurrent(t *testing.T) {
	tl := sim.NewTimeline()
	a, b := SimPair(SimConfig{Timeline: tl, MessageLatency: time.Microsecond})
	const n = 500
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			msg, err := b.Recv()
			if err != nil {
				t.Errorf("recv: %v", err)
				return
			}
			b.Send(msg) // echo
		}
	}()
	for i := 0; i < n; i++ {
		want := []byte(fmt.Sprintf("msg-%d", i))
		if err := a.Send(want); err != nil {
			t.Fatal(err)
		}
		got, err := a.Recv()
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("echo %d: %q %v", i, got, err)
		}
	}
	wg.Wait()
	if tl.Total() == 0 {
		t.Fatal("timeline not charged")
	}
}

func TestTapRewriteAndDrop(t *testing.T) {
	a, b := SimPair(SimConfig{})
	tap := &Tap{
		Inner: a,
		OnSend: func(m []byte) []byte {
			if string(m) == "drop" {
				return nil
			}
			return append([]byte("mitm:"), m...)
		},
	}
	tap.Send([]byte("drop"))
	tap.Send([]byte("hello"))
	got, _ := b.Recv()
	if string(got) != "mitm:hello" {
		t.Fatalf("got %q", got)
	}

	// OnRecv dropping skips to the next message.
	recvTap := &Tap{
		Inner: b,
		OnRecv: func(m []byte) []byte {
			if string(m) == "skip" {
				return nil
			}
			return m
		},
	}
	a.Send([]byte("skip"))
	a.Send([]byte("keep"))
	got, err := recvTap.Recv()
	if err != nil || string(got) != "keep" {
		t.Fatalf("got %q %v", got, err)
	}
	recvTap.Close()
}

func TestEthernetFraming(t *testing.T) {
	cfg := SimConfig{
		Ethernet: true,
		AddrA:    [6]byte{2, 0, 0, 0, 0, 0xA},
		AddrB:    [6]byte{2, 0, 0, 0, 0, 0xB},
	}
	a, b := SimPair(cfg)
	if err := a.Send([]byte("framed payload")); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "framed payload" {
		t.Fatalf("payload %q", got)
	}
	// Reverse direction too.
	b.Send([]byte("pong"))
	if got, _ := a.Recv(); string(got) != "pong" {
		t.Fatal("reverse framing broken")
	}
}

func TestEthernetFCSDetectsCorruption(t *testing.T) {
	cfg := SimConfig{Ethernet: true, AddrA: [6]byte{1}, AddrB: [6]byte{2}}
	a, b := SimPair(cfg)
	// A bit flips on the wire: build the frame exactly as the endpoint
	// does, corrupt it, and inject it into the raw queue.
	frame := &ethsim.Frame{Dst: a.dst, Src: a.src, EtherType: ethsim.EtherTypeSACHa, Payload: []byte("hello")}
	wire, err := frame.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	wire[len(wire)/2] ^= 0x01
	if err := a.out.push(wire); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Recv(); err == nil {
		t.Fatal("corrupted frame passed the FCS check")
	}
}

func TestEthernetRejectsForeignFrames(t *testing.T) {
	cfg := SimConfig{Ethernet: true, AddrA: [6]byte{1}, AddrB: [6]byte{2}}
	a, b := SimPair(cfg)
	// Wrong ethertype.
	f := &ethsim.Frame{Dst: b.src, Src: a.src, EtherType: 0x0800, Payload: []byte("ip?")}
	wire, _ := f.Marshal()
	a.out.push(wire)
	if _, err := b.Recv(); err == nil {
		t.Fatal("foreign ethertype accepted")
	}
	// Wrong destination.
	f = &ethsim.Frame{Dst: [6]byte{9, 9, 9, 9, 9, 9}, Src: a.src, EtherType: ethsim.EtherTypeSACHa}
	wire, _ = f.Marshal()
	a.out.push(wire)
	if _, err := b.Recv(); err == nil {
		t.Fatal("misaddressed frame accepted")
	}
}

func TestTCPRoundTrip(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	done := make(chan error, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			done <- err
			return
		}
		ep := NewTCP(conn)
		defer ep.Close()
		for {
			msg, err := ep.Recv()
			if err == io.EOF {
				done <- nil
				return
			}
			if err != nil {
				done <- err
				return
			}
			if err := ep.Send(append([]byte("echo:"), msg...)); err != nil {
				done <- err
				return
			}
		}
	}()

	ep, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		want := bytes.Repeat([]byte{byte(i)}, i*100+1)
		if err := ep.Send(want); err != nil {
			t.Fatal(err)
		}
		got, err := ep.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, append([]byte("echo:"), want...)) {
			t.Fatalf("echo %d mismatch", i)
		}
	}
	ep.Close()
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}

func TestTCPMessageLimit(t *testing.T) {
	ln, _ := net.Listen("tcp", "127.0.0.1:0")
	defer ln.Close()
	go func() {
		conn, err := ln.Accept()
		if err == nil {
			NewTCP(conn).Recv() // just hold it open briefly
			conn.Close()
		}
	}()
	ep, err := Dial(ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer ep.Close()
	if err := ep.Send(make([]byte, maxTCPMessage+1)); err == nil {
		t.Fatal("oversized message accepted")
	}
}

func TestDialError(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}
