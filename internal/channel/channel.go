// Package channel provides the message transports between verifier and
// prover: an in-process simulated link with virtual-time accounting (the
// lab network of the paper's measurements) and a TCP transport for real
// deployments, plus a tap for adversary-in-the-middle experiments.
package channel

import (
	"fmt"
	"io"
	"sync"
	"time"

	"sacha/internal/ethsim"
	"sacha/internal/sim"
)

// Endpoint is one end of a duplex message channel.
type Endpoint interface {
	// Send transmits one message to the peer.
	Send(msg []byte) error
	// Recv blocks until a message arrives; it returns io.EOF after the
	// peer closes.
	Recv() ([]byte, error)
	Close() error
}

// SimConfig parameterises the simulated link.
type SimConfig struct {
	// Timeline, if non-nil, accumulates virtual time: "wire" for Gigabit
	// line time and "latency" for the per-message stack/switch latency.
	Timeline *sim.Timeline
	// MessageLatency is charged per message sent by the A endpoint (the
	// command initiator — the verifier); it models the per-command
	// software and switch overhead that makes the paper's measured
	// 28.5 s so much larger than the theoretical 1.443 s.
	MessageLatency time.Duration
	// Ethernet, when true, carries every message inside an Ethernet II
	// frame with a real FCS: senders marshal, receivers verify the CRC
	// and strip the header — the ETH-core path of Fig. 10.
	Ethernet bool
	// AddrA and AddrB are the endpoint MAC addresses in Ethernet mode
	// (A is the first endpoint returned by SimPair).
	AddrA, AddrB ethsim.MAC
}

// queue is an unbounded FIFO usable across goroutines.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	items  [][]byte
	closed bool
}

func newQueue() *queue {
	q := &queue{}
	q.cond = sync.NewCond(&q.mu)
	return q
}

func (q *queue) push(m []byte) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return fmt.Errorf("channel: send on closed channel: %w", ErrClosed)
	}
	q.items = append(q.items, m)
	q.cond.Signal()
	return nil
}

func (q *queue) pop() ([]byte, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for len(q.items) == 0 && !q.closed {
		q.cond.Wait()
	}
	if len(q.items) == 0 {
		return nil, io.EOF
	}
	m := q.items[0]
	q.items = q.items[1:]
	return m, nil
}

func (q *queue) close() {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.closed = true
	q.cond.Broadcast()
}

// SimEndpoint is one end of an in-process simulated link.
type SimEndpoint struct {
	out, in   *queue
	cfg       SimConfig
	mu        *sync.Mutex // guards cfg.Timeline, shared by the pair
	src, dst  ethsim.MAC  // Ethernet-mode addressing
	initiator bool        // charges the per-command latency
}

// SimPair returns two connected endpoints. The first endpoint is the
// command initiator and carries the per-command latency.
func SimPair(cfg SimConfig) (a, b *SimEndpoint) {
	q1, q2 := newQueue(), newQueue()
	mu := &sync.Mutex{}
	a = &SimEndpoint{out: q1, in: q2, cfg: cfg, mu: mu, src: cfg.AddrA, dst: cfg.AddrB, initiator: true}
	b = &SimEndpoint{out: q2, in: q1, cfg: cfg, mu: mu, src: cfg.AddrB, dst: cfg.AddrA}
	return a, b
}

// Send transmits a message, charging wire time and message latency to the
// timeline. In Ethernet mode the payload travels inside a framed packet
// with a real FCS.
func (e *SimEndpoint) Send(msg []byte) error {
	if e.cfg.Timeline != nil {
		e.mu.Lock()
		e.cfg.Timeline.Add("wire", ethsim.WireTime(len(msg)))
		if e.cfg.MessageLatency > 0 && e.initiator {
			e.cfg.Timeline.Add("latency", e.cfg.MessageLatency)
		}
		e.mu.Unlock()
	}
	if e.cfg.Ethernet {
		frame := &ethsim.Frame{Dst: e.dst, Src: e.src, EtherType: ethsim.EtherTypeSACHa, Payload: msg}
		wire, err := frame.Marshal()
		if err != nil {
			return fmt.Errorf("channel: %w", err)
		}
		return e.out.push(wire)
	}
	cp := make([]byte, len(msg))
	copy(cp, msg)
	return e.out.push(cp)
}

// Recv returns the next message from the peer. In Ethernet mode the FCS
// is verified and frames for other destinations or ethertypes rejected.
func (e *SimEndpoint) Recv() ([]byte, error) {
	raw, err := e.in.pop()
	if err != nil {
		return nil, err
	}
	if !e.cfg.Ethernet {
		return raw, nil
	}
	frame, err := ethsim.Unmarshal(raw)
	if err != nil {
		return nil, fmt.Errorf("channel: %w", err)
	}
	if frame.EtherType != ethsim.EtherTypeSACHa {
		return nil, fmt.Errorf("channel: unexpected ethertype %#04x", frame.EtherType)
	}
	if frame.Dst != e.src {
		return nil, fmt.Errorf("channel: frame for %v delivered to %v", frame.Dst, e.src)
	}
	return frame.Payload, nil
}

// Close shuts down both directions.
func (e *SimEndpoint) Close() error {
	e.out.close()
	e.in.close()
	return nil
}

// Tap wraps an endpoint and lets an adversary observe or rewrite traffic.
// A nil hook passes messages through unchanged; returning nil from OnSend
// drops the message.
type Tap struct {
	Inner  Endpoint
	OnSend func([]byte) []byte
	OnRecv func([]byte) []byte
}

// Send passes the message through the OnSend hook.
func (t *Tap) Send(msg []byte) error {
	if t.OnSend != nil {
		msg = t.OnSend(msg)
		if msg == nil {
			return nil // dropped by the adversary
		}
	}
	return t.Inner.Send(msg)
}

// Recv passes the received message through the OnRecv hook. Messages the
// hook drops (nil) are skipped.
func (t *Tap) Recv() ([]byte, error) {
	for {
		msg, err := t.Inner.Recv()
		if err != nil {
			return nil, err
		}
		if t.OnRecv != nil {
			msg = t.OnRecv(msg)
			if msg == nil {
				continue
			}
		}
		return msg, nil
	}
}

// Close closes the wrapped endpoint.
func (t *Tap) Close() error { return t.Inner.Close() }
