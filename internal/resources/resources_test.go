package resources

import (
	"strings"
	"testing"

	"sacha/internal/device"
)

// TestTable2MatchesPaper pins the four rows to the published values.
func TestTable2MatchesPaper(t *testing.T) {
	rows := Table2(device.XC6VLX240T())
	want := []Usage{
		{Name: "Entire FPGA", CLB: 18840, BRAM: 832, ICAP: 1, DCM: 12},
		{Name: "StatPart", CLB: 1400, BRAM: 72, ICAP: 1, DCM: 1},
		{Name: "MAC (+ FIFO)", CLB: 283, BRAM: 8, ICAP: 0, DCM: 0},
		{Name: "DynPart", CLB: 17440, BRAM: 760, ICAP: 0, DCM: 11},
	}
	if len(rows) != len(want) {
		t.Fatalf("got %d rows", len(rows))
	}
	for i, w := range want {
		if rows[i] != w {
			t.Errorf("row %d = %+v, want %+v", i, rows[i], w)
		}
	}
}

// TestStatPartUnder9Percent checks the paper's headline resource claim.
func TestStatPartUnder9Percent(t *testing.T) {
	frac := StatPartFraction(device.XC6VLX240T())
	if frac >= 0.09 {
		t.Errorf("StatPart occupies %.1f%% of the device, paper claims < 9%%", frac*100)
	}
	if frac < 0.02 {
		t.Errorf("StatPart fraction %.3f implausibly small — inventory broken", frac)
	}
}

// TestComponentsSumToStatPart guards the inventory against drift.
func TestComponentsSumToStatPart(t *testing.T) {
	sum := Usage{}
	for _, c := range StatPartComponents() {
		sum = sum.Add(c)
	}
	if sum.CLB != 1400 || sum.BRAM != 72 || sum.ICAP != 1 || sum.DCM != 1 {
		t.Errorf("component sum = %d CLB, %d BRAM, %d ICAP, %d DCM; want 1400/72/1/1",
			sum.CLB, sum.BRAM, sum.ICAP, sum.DCM)
	}
}

// TestDynPartIsComplement: DynPart + StatPart = entire FPGA.
func TestDynPartIsComplement(t *testing.T) {
	for _, geo := range []*device.Geometry{device.XC6VLX240T(), device.SmallLX(), device.BigLX()} {
		rows := Table2(geo)
		entire, stat, dyn := rows[0], rows[1], rows[3]
		if stat.CLB+dyn.CLB != entire.CLB || stat.BRAM+dyn.BRAM != entire.BRAM ||
			stat.ICAP+dyn.ICAP != entire.ICAP || stat.DCM+dyn.DCM != entire.DCM {
			t.Errorf("%s: StatPart + DynPart != entire FPGA", geo.Name)
		}
	}
}

// TestMajorityForApplication: the paper's point that "the majority of the
// configurable fabric" remains for the intended application.
func TestMajorityForApplication(t *testing.T) {
	rows := Table2(device.XC6VLX240T())
	stat, dyn := rows[1], rows[3]
	if dyn.CLB < 10*stat.CLB {
		t.Errorf("DynPart (%d CLBs) not an order of magnitude above StatPart (%d)", dyn.CLB, stat.CLB)
	}
}

func TestFormat(t *testing.T) {
	out := Format(Table2(device.XC6VLX240T()))
	for _, want := range []string{"Entire FPGA", "StatPart", "MAC", "DynPart", "18840", "1400", "283"} {
		if !strings.Contains(out, want) {
			t.Errorf("formatted table lacks %q", want)
		}
	}
}
