// Package resources reproduces Table 2 of the paper: the FPGA resource
// occupancy of the SACHa architecture on the XC6VLX240T.
//
// Device capacities come from the geometry database; the static
// partition's occupancy is an inventory of the proof-of-concept cores
// (Fig. 10), calibrated so the component sums match the published
// StatPart and MAC rows exactly. The DynPart row is derived: whatever the
// static partition does not occupy remains for the intended application.
package resources

import (
	"fmt"
	"strings"

	"sacha/internal/device"
)

// Usage is one resource row: CLBs, 18-kbit BRAMs, ICAPs and DCMs.
type Usage struct {
	Name string
	CLB  int
	BRAM int
	ICAP int
	DCM  int
}

// Add returns the component-wise sum.
func (u Usage) Add(v Usage) Usage {
	return Usage{Name: u.Name, CLB: u.CLB + v.CLB, BRAM: u.BRAM + v.BRAM, ICAP: u.ICAP + v.ICAP, DCM: u.DCM + v.DCM}
}

// StatPartComponents returns the inventory of the static partition's
// cores. The component budgets reflect the proof-of-concept
// implementation: a Gigabit ETH core, the RX FSM with its packet BRAM,
// the single-frame buffer, the ICAP controller, the header and readback
// FIFOs, the low-area AES-CMAC (283 CLBs + 8 BRAMs, the paper's MAC row),
// the TX FSM, DCM glue and the key register/PUF.
func StatPartComponents() []Usage {
	return []Usage{
		{Name: "ETH core", CLB: 420, BRAM: 6},
		{Name: "RX FSM + packet BRAM", CLB: 160, BRAM: 16},
		{Name: "frame buffer (1 frame)", CLB: 24, BRAM: 2},
		{Name: "ICAP controller", CLB: 230, BRAM: 4, ICAP: 1},
		{Name: "header FIFO", CLB: 40, BRAM: 8},
		{Name: "readback FIFO", CLB: 48, BRAM: 16},
		{Name: "AES-CMAC (+ FIFO)", CLB: 283, BRAM: 8},
		{Name: "TX FSM", CLB: 120, BRAM: 12},
		{Name: "DCM + clock glue", CLB: 35, DCM: 1},
		{Name: "key register / PUF", CLB: 40},
	}
}

// MACRow returns the AES-CMAC row of Table 2.
func MACRow() Usage {
	for _, c := range StatPartComponents() {
		if strings.HasPrefix(c.Name, "AES-CMAC") {
			c.Name = "MAC (+ FIFO)"
			return c
		}
	}
	panic("resources: AES-CMAC component missing")
}

// Table2 returns the four rows of the paper's Table 2 for a geometry:
// entire FPGA, StatPart, MAC, DynPart.
func Table2(geo *device.Geometry) []Usage {
	entire := Usage{
		Name: "Entire FPGA",
		CLB:  geo.CLBs(),
		BRAM: geo.BRAM18s(),
		ICAP: geo.ICAPs,
		DCM:  geo.DCMs,
	}
	stat := Usage{Name: "StatPart"}
	for _, c := range StatPartComponents() {
		stat = stat.Add(c)
	}
	stat.Name = "StatPart"
	dyn := Usage{
		Name: "DynPart",
		CLB:  entire.CLB - stat.CLB,
		BRAM: entire.BRAM - stat.BRAM,
		ICAP: entire.ICAP - stat.ICAP,
		DCM:  entire.DCM - stat.DCM,
	}
	return []Usage{entire, stat, MACRow(), dyn}
}

// StatPartFraction returns the fraction of the device the static
// partition occupies, counting both CLBs and BRAMs — the paper's
// "less than 9%" claim.
func StatPartFraction(geo *device.Geometry) float64 {
	rows := Table2(geo)
	entire, stat := rows[0], rows[1]
	return float64(stat.CLB+stat.BRAM) / float64(entire.CLB+entire.BRAM)
}

// Format renders rows as an aligned table.
func Format(rows []Usage) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %8s %8s %6s %5s\n", "Component", "CLB", "BRAM", "ICAP", "DCM")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-24s %8d %8d %6d %5d\n", r.Name, r.CLB, r.BRAM, r.ICAP, r.DCM)
	}
	return b.String()
}
