// Package fabric models the configurable fabric of the SACHa FPGA.
//
// The configuration memory is an array of frames (device.FrameWords words
// each). Frames belonging to CLB columns carry a *semantic* bit layout:
// LUT truth tables, routing selectors and flip-flop configuration are
// decoded from the bits and functionally evaluated, so that tampering with
// the configuration genuinely changes behaviour. BRAM and CFG columns
// carry content and IOB routing respectively.
//
// Layout of one CLB within its column's flat bit vector (CLBBits bits per
// CLB, allocated sequentially along the column):
//
//	8 LUT slots × 192 bits: used(1) | truth(64) | 6 × selector(20)
//	8 FF  slots ×  24 bits: used(1) | init(1) | capture(1) | selector(20)
//
// A selector value of 0 means unconnected (reads 0), 1 means constant one,
// and n+2 addresses net n. Net numbering: LUT outputs first, then FF
// outputs, then IOB input pads (see netBase). The capture bit is where
// configuration readback exposes the live flip-flop state — the reason the
// paper's verifier must apply the Msk before comparing bitstreams.
//
// IOB pins live in the CFG column of each row: 256 pins/row × 32 bits:
// used(1) | dir(1, 1=output) | selector(20).
package fabric

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"sacha/internal/cmac"
	"sacha/internal/device"
)

// Per-CLB slot layout constants.
const (
	LUTSlotsPerCLB = 8
	FFSlotsPerCLB  = 8
	CLBBits        = 3628 // bit budget per CLB within its column vector

	lutSlotBits = 192
	lutUsedOff  = 0
	lutTruthOff = 1
	lutSelOff   = 65 // six selectors follow

	ffBase       = LUTSlotsPerCLB * lutSlotBits // 1536
	ffSlotBits   = 24
	ffUsedOff    = 0
	ffInitOff    = 1
	ffCaptureOff = 2
	ffSelOff     = 3

	selWidth       = 20
	SelUnconnected = 0
	SelConst1      = 1
	selNetBase     = 2
)

// IOB table layout within a CFG column.
const (
	IOBPinsPerRow = 256
	iobEntryBits  = 32
	iobUsedOff    = 0
	iobDirOff     = 1 // 1 = output pad
	iobSelOff     = 2
)

// Image is a full-device configuration image: the golden bitstream on the
// verifier side, or the live configuration memory inside the Fabric.
type Image struct {
	Geo    *device.Geometry
	frames [][]uint32
}

// NewImage returns an all-zero configuration image for the geometry.
func NewImage(geo *device.Geometry) *Image {
	n := geo.NumFrames()
	backing := make([]uint32, n*device.FrameWords)
	frames := make([][]uint32, n)
	for i := range frames {
		frames[i] = backing[i*device.FrameWords : (i+1)*device.FrameWords]
	}
	return &Image{Geo: geo, frames: frames}
}

// Clone deep-copies the image.
func (im *Image) Clone() *Image {
	c := NewImage(im.Geo)
	for i, f := range im.frames {
		copy(c.frames[i], f)
	}
	return c
}

// NumFrames returns the frame count.
func (im *Image) NumFrames() int { return len(im.frames) }

// Frame returns frame i's words. The slice aliases the image.
func (im *Image) Frame(i int) []uint32 {
	if i < 0 || i >= len(im.frames) {
		panic(fmt.Sprintf("fabric: frame %d out of range", i))
	}
	return im.frames[i]
}

// SetFrame copies 81 words into frame i.
func (im *Image) SetFrame(i int, words []uint32) {
	if len(words) != device.FrameWords {
		panic(fmt.Sprintf("fabric: frame data has %d words, want %d", len(words), device.FrameWords))
	}
	copy(im.Frame(i), words)
}

// Digest returns a SHA-256 over the image's geometry name and every
// frame word (big-endian, frames in order). Two images with equal
// digests configure identically; the attestation plan cache keys on it.
func (im *Image) Digest() [32]byte {
	return im.digestWith(nil)
}

// digestWith hashes the image, passing every frame through the optional
// normalisation first (NonceFreeDigest zeroes nonce bits this way).
func (im *Image) digestWith(norm func(idx int, words []uint32) []uint32) [32]byte {
	h := sha256.New()
	h.Write([]byte(im.Geo.Name))
	buf := make([]byte, device.FrameWords*4)
	for idx, f := range im.frames {
		if norm != nil {
			f = norm(idx, f)
		}
		for i, w := range f {
			binary.BigEndian.PutUint32(buf[i*4:], w)
		}
		h.Write(buf)
	}
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// Equal reports whether two images hold identical bits.
func (im *Image) Equal(other *Image) bool {
	if im.Geo.NumFrames() != other.Geo.NumFrames() {
		return false
	}
	for i, f := range im.frames {
		for w, v := range f {
			if other.frames[i][w] != v {
				return false
			}
		}
	}
	return true
}

// colView addresses the flat bit vector of one column.
type colView struct {
	im        *Image
	baseFrame int
	bits      int
}

// columnView returns a bit-addressable view of a column.
func (im *Image) columnView(row int, kind device.ColumnKind, ordinal int) (colView, error) {
	base, frames, err := im.Geo.ColumnBase(row, kind, ordinal)
	if err != nil {
		return colView{}, err
	}
	return colView{im: im, baseFrame: base, bits: frames * device.FrameBits}, nil
}

func (cv colView) bit(i int) uint32 {
	if i < 0 || i >= cv.bits {
		panic(fmt.Sprintf("fabric: column bit %d out of range [0,%d)", i, cv.bits))
	}
	frame := cv.im.frames[cv.baseFrame+i/device.FrameBits]
	off := i % device.FrameBits
	return frame[off/32] >> (uint(off) % 32) & 1
}

func (cv colView) setBit(i int, v uint32) {
	if i < 0 || i >= cv.bits {
		panic(fmt.Sprintf("fabric: column bit %d out of range [0,%d)", i, cv.bits))
	}
	frame := cv.im.frames[cv.baseFrame+i/device.FrameBits]
	off := i % device.FrameBits
	w, s := off/32, uint(off)%32
	frame[w] = frame[w]&^(1<<s) | v&1<<s
}

func (cv colView) uint(off, width int) uint64 {
	var out uint64
	for i := 0; i < width; i++ {
		out |= uint64(cv.bit(off+i)) << uint(i)
	}
	return out
}

func (cv colView) setUint(off, width int, val uint64) {
	for i := 0; i < width; i++ {
		cv.setBit(off+i, uint32(val>>uint(i))&1)
	}
}

// Net numbering helpers. Net IDs are global across the device:
//
//	[0, nSites*8)            LUT output nets
//	[nSites*8, 2*nSites*8)   FF output nets
//	[2*nSites*8, +nPins)     IOB input pad nets
func netCounts(geo *device.Geometry) (nSites, lutNets, pinBase int) {
	nSites = geo.CLBs()
	lutNets = nSites * LUTSlotsPerCLB
	pinBase = 2 * lutNets
	return
}

// SiteIndex computes the global CLB site index for (row, clbCol, clbInCol).
func SiteIndex(geo *device.Geometry, row, clbCol, clbInCol int) int {
	cols := geo.ColumnsOf(device.ColCLB)
	sites := geo.SitesPerColumn(device.ColCLB)
	return (row*cols+clbCol)*sites + clbInCol
}

// LUTNet returns the net ID of LUT slot `slot` at the given site.
func LUTNet(geo *device.Geometry, site, slot int) int {
	return site*LUTSlotsPerCLB + slot
}

// FFNet returns the net ID of FF slot `slot` at the given site.
func FFNet(geo *device.Geometry, site, slot int) int {
	_, lutNets, _ := netCounts(geo)
	return lutNets + site*FFSlotsPerCLB + slot
}

// PinNet returns the net ID of IOB input pad `pin`.
func PinNet(geo *device.Geometry, pin int) int {
	_, _, pinBase := netCounts(geo)
	return pinBase + pin
}

// NumPins returns the IOB pin count of the device.
func NumPins(geo *device.Geometry) int { return geo.Rows * IOBPinsPerRow }

// FillStatic fills the given frames of the image with a deterministic
// pseudo-random pattern derived from buildID, modelling the synthesised
// static-partition bitstream (ETH core, FSMs, ICAP controller, AES-CMAC —
// whose *behaviour* is modelled natively by internal/prover). The pattern
// keeps the MAC over StatMem meaningful: any tampering with static frames
// changes the checksum.
func FillStatic(im *Image, frames []int, buildID uint64) {
	var key [16]byte
	copy(key[:], "SACHa-static-img")
	var msg [16]byte
	for _, fi := range frames {
		f := im.Frame(fi)
		for w := 0; w < device.FrameWords; w += 4 {
			binary.BigEndian.PutUint64(msg[0:8], buildID)
			binary.BigEndian.PutUint32(msg[8:12], uint32(fi))
			binary.BigEndian.PutUint32(msg[12:16], uint32(w))
			tag, err := cmac.Compute(key[:], msg[:])
			if err != nil {
				panic(err)
			}
			for k := 0; k < 4 && w+k < device.FrameWords; k++ {
				f[w+k] = binary.BigEndian.Uint32(tag[4*k : 4*k+4])
			}
		}
	}
}
