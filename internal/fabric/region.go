package fabric

import (
	"fmt"
	"sort"

	"sacha/internal/device"
)

// Site identifies one CLB site.
type Site struct {
	Row      int
	CLBCol   int // ordinal among the CLB columns of the row
	CLBInCol int
}

// Region is a logical partition of the fabric: a set of columns with an
// associated IOB pin range. StatRegion and DynRegion partition the whole
// device; AppRegion and NonceRegion are placement sub-views of the dynamic
// partition.
type Region struct {
	Name string
	geo  *device.Geometry

	CLBCols  [][2]int // (row, clbCol ordinal)
	BRAMInt  [][2]int // (row, ordinal)
	BRAMCnt  [][2]int // (row, ordinal)
	CFGRows  []int    // rows whose CFG column belongs to this region
	PinBase  int      // first IOB pin owned by the region
	PinCount int
}

// Frames returns the sorted linear frame indices of the region.
func (r *Region) Frames() []int {
	var out []int
	add := func(kind device.ColumnKind, cols [][2]int) {
		for _, rc := range cols {
			base, n, err := r.geo.ColumnBase(rc[0], kind, rc[1])
			if err != nil {
				panic(fmt.Sprintf("fabric: region %s: %v", r.Name, err))
			}
			for i := 0; i < n; i++ {
				out = append(out, base+i)
			}
		}
	}
	add(device.ColCLB, r.CLBCols)
	add(device.ColBRAMInterconnect, r.BRAMInt)
	add(device.ColBRAMContent, r.BRAMCnt)
	for _, row := range r.CFGRows {
		base, n, err := r.geo.ColumnBase(row, device.ColCFG, 0)
		if err != nil {
			panic(fmt.Sprintf("fabric: region %s: %v", r.Name, err))
		}
		for i := 0; i < n; i++ {
			out = append(out, base+i)
		}
	}
	sort.Ints(out)
	return out
}

// Sites returns the CLB sites of the region in placement order.
func (r *Region) Sites() []Site {
	sitesPerCol := r.geo.SitesPerColumn(device.ColCLB)
	out := make([]Site, 0, len(r.CLBCols)*sitesPerCol)
	for _, rc := range r.CLBCols {
		for s := 0; s < sitesPerCol; s++ {
			out = append(out, Site{Row: rc[0], CLBCol: rc[1], CLBInCol: s})
		}
	}
	return out
}

// CLBCapacity returns the number of CLBs in the region.
func (r *Region) CLBCapacity() int {
	return len(r.CLBCols) * r.geo.SitesPerColumn(device.ColCLB)
}

// statCLBCols returns how many CLB columns of row 0 the static partition
// occupies. For the XC6VLX240T it is 46, which together with one BRAM
// column pair and row 0's CFG column yields a StatMem of exactly 2,088
// frames and therefore the paper's DynMem of 26,400 frames. Other
// geometries use a quarter of a row.
func statCLBCols(geo *device.Geometry) int {
	if geo.Name == "XC6VLX240T" {
		return 46
	}
	n := geo.ColumnsOf(device.ColCLB) / 4
	if n < 1 {
		n = 1
	}
	return n
}

// StatRegion returns the static partition: the first CLB columns of row 0,
// the first BRAM column pair of row 0, and row 0's CFG column (clocking and
// the static design's pins).
func StatRegion(geo *device.Geometry) *Region {
	n := statCLBCols(geo)
	r := &Region{Name: "StatPart", geo: geo, PinBase: 0, PinCount: IOBPinsPerRow}
	for c := 0; c < n; c++ {
		r.CLBCols = append(r.CLBCols, [2]int{0, c})
	}
	r.BRAMInt = append(r.BRAMInt, [2]int{0, 0})
	r.BRAMCnt = append(r.BRAMCnt, [2]int{0, 0})
	r.CFGRows = []int{0}
	return r
}

// DynRegion returns the dynamic partition: everything that is not in the
// static partition.
func DynRegion(geo *device.Geometry) *Region {
	n := statCLBCols(geo)
	clbCols := geo.ColumnsOf(device.ColCLB)
	bramCols := geo.ColumnsOf(device.ColBRAMInterconnect)
	r := &Region{
		Name:     "DynPart",
		geo:      geo,
		PinBase:  IOBPinsPerRow,
		PinCount: (geo.Rows - 1) * IOBPinsPerRow,
	}
	for row := 0; row < geo.Rows; row++ {
		for c := 0; c < clbCols; c++ {
			if row == 0 && c < n {
				continue
			}
			r.CLBCols = append(r.CLBCols, [2]int{row, c})
		}
		for b := 0; b < bramCols; b++ {
			if row == 0 && b == 0 {
				continue
			}
			r.BRAMInt = append(r.BRAMInt, [2]int{row, b})
		}
		for b := 0; b < geo.ColumnsOf(device.ColBRAMContent); b++ {
			if row == 0 && b == 0 {
				continue
			}
			r.BRAMCnt = append(r.BRAMCnt, [2]int{row, b})
		}
		if row != 0 {
			r.CFGRows = append(r.CFGRows, row)
		}
	}
	return r
}

// NonceRegion returns the dedicated nonce partition inside the dynamic
// partition: the last CLB column of the last row, with the top pins of the
// last row. Reconfiguring only this region updates the nonce without
// touching the intended application (paper §5.2.2).
func NonceRegion(geo *device.Geometry) *Region {
	lastRow := geo.Rows - 1
	lastCol := geo.ColumnsOf(device.ColCLB) - 1
	return &Region{
		Name:     "NoncePart",
		geo:      geo,
		CLBCols:  [][2]int{{lastRow, lastCol}},
		CFGRows:  []int{lastRow},
		PinBase:  geo.Rows*IOBPinsPerRow - 64,
		PinCount: 64,
	}
}

// AppRegion returns the application sub-view of the dynamic partition:
// the dynamic partition minus the nonce column and minus the nonce's pins.
func AppRegion(geo *device.Geometry) *Region {
	r := DynRegion(geo)
	r.Name = "AppPart"
	nonce := NonceRegion(geo)
	keep := r.CLBCols[:0]
	for _, rc := range r.CLBCols {
		if rc != nonce.CLBCols[0] {
			keep = append(keep, rc)
		}
	}
	r.CLBCols = keep
	r.PinCount -= nonce.PinCount
	return r
}
