package fabric

import (
	"fmt"

	"sacha/internal/device"
)

// BRAM36ContentBytes is the modelled content window per BRAM36 site.
// (The real primitive holds 36 kbit; the model stores a 9 kbit window per
// site so that a content column's sites fit its 96 frames — documented in
// DESIGN.md as a substitution.)
const BRAM36ContentBytes = 1152

// bramSiteBits is the per-site bit budget inside a content column.
const bramSiteBits = BRAM36ContentBytes * 8

// WriteBRAMContent stores data into one BRAM36 site's content bits. The
// bits live in configuration frames, so they are covered by readback,
// the MAC and the golden comparison exactly like logic configuration.
func WriteBRAMContent(im *Image, row, col, site int, data []byte) error {
	cv, err := im.columnView(row, device.ColBRAMContent, col)
	if err != nil {
		return err
	}
	if site < 0 || site >= im.Geo.SitesPerColumn(device.ColBRAMContent) {
		return fmt.Errorf("fabric: BRAM site %d out of range", site)
	}
	if len(data) > BRAM36ContentBytes {
		return fmt.Errorf("fabric: %d bytes exceed the %d-byte BRAM window", len(data), BRAM36ContentBytes)
	}
	base := site * bramSiteBits
	for i, b := range data {
		cv.setUint(base+i*8, 8, uint64(b))
	}
	return nil
}

// ReadBRAMContent reads one BRAM36 site's content window.
func ReadBRAMContent(im *Image, row, col, site int) ([]byte, error) {
	cv, err := im.columnView(row, device.ColBRAMContent, col)
	if err != nil {
		return nil, err
	}
	if site < 0 || site >= im.Geo.SitesPerColumn(device.ColBRAMContent) {
		return nil, fmt.Errorf("fabric: BRAM site %d out of range", site)
	}
	base := site * bramSiteBits
	out := make([]byte, BRAM36ContentBytes)
	for i := range out {
		out[i] = byte(cv.uint(base+i*8, 8))
	}
	return out, nil
}

// PlaceROM spreads data across the region's BRAM content columns, filling
// sites sequentially. It returns an error if the region's BRAM capacity
// is exceeded.
func PlaceROM(im *Image, region *Region, data []byte) error {
	sites := im.Geo.SitesPerColumn(device.ColBRAMContent)
	capacity := len(region.BRAMCnt) * sites * BRAM36ContentBytes
	if len(data) > capacity {
		return fmt.Errorf("fabric: ROM of %d bytes exceeds region capacity %d", len(data), capacity)
	}
	off := 0
	for _, rc := range region.BRAMCnt {
		for site := 0; site < sites && off < len(data); site++ {
			end := off + BRAM36ContentBytes
			if end > len(data) {
				end = len(data)
			}
			if err := WriteBRAMContent(im, rc[0], rc[1], site, data[off:end]); err != nil {
				return err
			}
			off = end
		}
	}
	return nil
}

// ReadROM reads back n bytes previously placed with PlaceROM.
func ReadROM(im *Image, region *Region, n int) ([]byte, error) {
	sites := im.Geo.SitesPerColumn(device.ColBRAMContent)
	out := make([]byte, 0, n)
	for _, rc := range region.BRAMCnt {
		for site := 0; site < sites && len(out) < n; site++ {
			chunk, err := ReadBRAMContent(im, rc[0], rc[1], site)
			if err != nil {
				return nil, err
			}
			need := n - len(out)
			if need < len(chunk) {
				chunk = chunk[:need]
			}
			out = append(out, chunk...)
		}
	}
	if len(out) < n {
		return nil, fmt.Errorf("fabric: region holds only %d of %d requested ROM bytes", len(out), n)
	}
	return out, nil
}
