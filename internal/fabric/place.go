package fabric

import (
	"fmt"

	"sacha/internal/device"
	"sacha/internal/netlist"
)

// SlotRef records where a netlist cell was placed.
type SlotRef struct {
	Site Site
	Slot int // LUT or FF slot within the CLB
}

// Placement is the result of placing a design into a region of an image.
type Placement struct {
	Design *netlist.Design
	Region *Region
	// LUTAt / FFAt map netlist cells to fabric slots.
	LUTAt map[netlist.CellID]SlotRef
	FFAt  map[netlist.CellID]SlotRef
	// InputPin / OutputPin map pin names to global IOB pins.
	InputPin  map[string]int
	OutputPin map[string]int
}

// Placer assigns successive designs to disjoint slots of one region, so
// several designs (an application, a shipped PUF circuit, diagnostics)
// can share a partition. Placement order determines slot assignment, so
// a fixed sequence of Place calls is deterministic.
type Placer struct {
	im     *Image
	region *Region
	sites  []Site

	nextLUT, nextFF, nextPin int
}

// NewPlacer returns a placer with its cursor at the region's first slot.
func NewPlacer(im *Image, region *Region) *Placer {
	return &Placer{
		im:      im,
		region:  region,
		sites:   region.Sites(),
		nextPin: region.PinBase,
	}
}

// PlaceDesign places d into the region of image im, writing the
// configuration bits (LUT truth tables, routing selectors, FF init bits
// and IOB entries). Cells are assigned to slots in deterministic order, so
// the same design always produces the same bits — a requirement for the
// verifier's golden reference.
func PlaceDesign(im *Image, region *Region, d *netlist.Design) (*Placement, error) {
	return NewPlacer(im, region).Place(d)
}

// Place places one design at the placer's cursor and advances it.
func (pl *Placer) Place(d *netlist.Design) (*Placement, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	im, region := pl.im, pl.region
	geo := im.Geo
	sites := pl.sites
	lutCap := len(sites) * LUTSlotsPerCLB
	ffCap := len(sites) * FFSlotsPerCLB

	p := &Placement{
		Design:    d,
		Region:    region,
		LUTAt:     make(map[netlist.CellID]SlotRef),
		FFAt:      make(map[netlist.CellID]SlotRef),
		InputPin:  make(map[string]int),
		OutputPin: make(map[string]int),
	}

	// Pass 1: assign slots and pins.
	nextLUT, nextFF, nextPin := pl.nextLUT, pl.nextFF, pl.nextPin
	pinLimit := region.PinBase + region.PinCount
	for i := 0; i < d.NumCells(); i++ {
		id := netlist.CellID(i)
		switch d.Cell(id).Kind {
		case netlist.KindLUT:
			if nextLUT >= lutCap {
				return nil, fmt.Errorf("fabric: region %s out of LUT slots (%d)", region.Name, lutCap)
			}
			p.LUTAt[id] = SlotRef{Site: sites[nextLUT/LUTSlotsPerCLB], Slot: nextLUT % LUTSlotsPerCLB}
			nextLUT++
		case netlist.KindDFF:
			if nextFF >= ffCap {
				return nil, fmt.Errorf("fabric: region %s out of FF slots (%d)", region.Name, ffCap)
			}
			p.FFAt[id] = SlotRef{Site: sites[nextFF/FFSlotsPerCLB], Slot: nextFF % FFSlotsPerCLB}
			nextFF++
		case netlist.KindInput:
			if nextPin >= pinLimit {
				return nil, fmt.Errorf("fabric: region %s out of IOB pins", region.Name)
			}
			p.InputPin[d.Cell(id).Name] = nextPin
			nextPin++
		}
	}
	for _, name := range sortedNames(d.OutputNames()) {
		if nextPin >= pinLimit {
			return nil, fmt.Errorf("fabric: region %s out of IOB pins for outputs", region.Name)
		}
		p.OutputPin[name] = nextPin
		nextPin++
	}

	// selector encodes the net driven by cell src.
	selector := func(src netlist.CellID) (uint64, error) {
		c := d.Cell(src)
		switch c.Kind {
		case netlist.KindConst:
			if c.Init == 0 {
				return SelUnconnected, nil
			}
			return SelConst1, nil
		case netlist.KindLUT:
			ref := p.LUTAt[src]
			site := SiteIndex(geo, ref.Site.Row, ref.Site.CLBCol, ref.Site.CLBInCol)
			return uint64(LUTNet(geo, site, ref.Slot) + selNetBase), nil
		case netlist.KindDFF:
			ref := p.FFAt[src]
			site := SiteIndex(geo, ref.Site.Row, ref.Site.CLBCol, ref.Site.CLBInCol)
			return uint64(FFNet(geo, site, ref.Slot) + selNetBase), nil
		case netlist.KindInput:
			pin := p.InputPin[c.Name]
			return uint64(PinNet(geo, pin) + selNetBase), nil
		}
		return 0, fmt.Errorf("fabric: cell %d has unroutable kind", src)
	}

	// Pass 2: write configuration bits.
	for id, ref := range p.LUTAt {
		cv, err := im.columnView(ref.Site.Row, device.ColCLB, ref.Site.CLBCol)
		if err != nil {
			return nil, err
		}
		base := ref.Site.CLBInCol*CLBBits + ref.Slot*lutSlotBits
		cell := d.Cell(id)
		cv.setBit(base+lutUsedOff, 1)
		cv.setUint(base+lutTruthOff, 64, cell.Truth)
		for k, in := range cell.Inputs {
			sel, err := selector(in)
			if err != nil {
				return nil, err
			}
			cv.setUint(base+lutSelOff+k*selWidth, selWidth, sel)
		}
	}
	for id, ref := range p.FFAt {
		cv, err := im.columnView(ref.Site.Row, device.ColCLB, ref.Site.CLBCol)
		if err != nil {
			return nil, err
		}
		base := ref.Site.CLBInCol*CLBBits + ffBase + ref.Slot*ffSlotBits
		cell := d.Cell(id)
		cv.setBit(base+ffUsedOff, 1)
		cv.setUint(base+ffInitOff, 1, uint64(cell.Init))
		sel, err := selector(cell.Inputs[0])
		if err != nil {
			return nil, err
		}
		cv.setUint(base+ffSelOff, selWidth, sel)
	}
	for name, pin := range p.InputPin {
		if err := writeIOB(im, pin, false, 0); err != nil {
			return nil, fmt.Errorf("fabric: input %q: %w", name, err)
		}
	}
	for name, pin := range p.OutputPin {
		src, _ := d.OutputSource(name)
		sel, err := selector(src)
		if err != nil {
			return nil, err
		}
		if err := writeIOB(im, pin, true, sel); err != nil {
			return nil, fmt.Errorf("fabric: output %q: %w", name, err)
		}
	}
	pl.nextLUT, pl.nextFF, pl.nextPin = nextLUT, nextFF, nextPin
	return p, nil
}

func sortedNames(names []string) []string {
	out := append([]string(nil), names...)
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// WriteLUT writes one LUT slot's configuration directly into an image —
// the primitive an adversary uses to splice a malicious module into the
// fabric outside the placer.
func WriteLUT(im *Image, s Site, slot int, used bool, truth uint64, sels [6]uint64) error {
	cv, err := im.columnView(s.Row, device.ColCLB, s.CLBCol)
	if err != nil {
		return err
	}
	if s.CLBInCol < 0 || s.CLBInCol >= im.Geo.SitesPerColumn(device.ColCLB) || slot < 0 || slot >= LUTSlotsPerCLB {
		return fmt.Errorf("fabric: LUT slot out of range")
	}
	base := s.CLBInCol*CLBBits + slot*lutSlotBits
	u := uint32(0)
	if used {
		u = 1
	}
	cv.setBit(base+lutUsedOff, u)
	cv.setUint(base+lutTruthOff, 64, truth)
	for k, sel := range sels {
		cv.setUint(base+lutSelOff+k*selWidth, selWidth, sel)
	}
	return nil
}

// WriteIOBPin writes one IOB pin entry — the primitive behind the
// "connect another computing device" adversary of §7.2: rerouting an
// internal net to a pad changes the CFG column bits and is therefore
// visible to attestation.
func WriteIOBPin(im *Image, pin int, output bool, sel uint64) error {
	return writeIOB(im, pin, output, sel)
}

// writeIOB writes one IOB pin entry into the CFG column of the pin's row.
func writeIOB(im *Image, pin int, output bool, sel uint64) error {
	row := pin / IOBPinsPerRow
	cv, err := im.columnView(row, device.ColCFG, 0)
	if err != nil {
		return err
	}
	base := (pin % IOBPinsPerRow) * iobEntryBits
	cv.setBit(base+iobUsedOff, 1)
	dir := uint32(0)
	if output {
		dir = 1
	}
	cv.setBit(base+iobDirOff, dir)
	cv.setUint(base+iobSelOff, selWidth, sel)
	return nil
}
