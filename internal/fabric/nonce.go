package fabric

import (
	"fmt"

	"sacha/internal/device"
)

// NonceBitRef locates one bit of the placed nonce register inside the
// full-device frame array: the FF init bit that carries the nonce value
// through configuration, and the FF capture bit where readback exposes
// the held register state in CAPTURE mode. Both positions are fixed by
// the geometry alone — the placer assigns nonce-register flip-flops
// deterministically, and nothing else about the nonce column (used
// flags, routing selectors, IOB entries) depends on the nonce value.
type NonceBitRef struct {
	InitFrame, InitWord int
	InitMask            uint32
	CapFrame, CapWord   int
	CapMask             uint32
}

// NonceTemplate computes, for each bit of an nBits-wide nonce register
// placed into NonceRegion(geo), the frame/word/mask of its init and
// capture bits. The template mirrors the placer's deterministic slot
// assignment (FF i goes to CLB i/FFSlotsPerCLB, slot i%FFSlotsPerCLB of
// the region's single CLB column), so it is valid for any golden image
// whose nonce partition holds netlist.NonceRegister(nBits, ·) as its
// first placed design — the layout every core.System golden build uses.
func NonceTemplate(geo *device.Geometry, nBits int) ([]NonceBitRef, error) {
	if geo == nil {
		return nil, fmt.Errorf("fabric: nonce template without a geometry")
	}
	if nBits < 1 || nBits > 64 {
		return nil, fmt.Errorf("fabric: nonce width %d out of range [1,64]", nBits)
	}
	region := NonceRegion(geo)
	rc := region.CLBCols[0]
	base, frames, err := geo.ColumnBase(rc[0], device.ColCLB, rc[1])
	if err != nil {
		return nil, err
	}
	if cap := geo.SitesPerColumn(device.ColCLB) * FFSlotsPerCLB; nBits > cap {
		return nil, fmt.Errorf("fabric: nonce width %d exceeds the %d FF slots of the nonce column", nBits, cap)
	}
	colBits := frames * device.FrameBits
	refs := make([]NonceBitRef, nBits)
	for i := range refs {
		slotBase := (i/FFSlotsPerCLB)*CLBBits + ffBase + (i%FFSlotsPerCLB)*ffSlotBits
		initOff := slotBase + ffInitOff
		capOff := slotBase + ffCaptureOff
		if capOff >= colBits {
			return nil, fmt.Errorf("fabric: nonce bit %d falls outside the nonce column", i)
		}
		refs[i] = NonceBitRef{
			InitFrame: base + initOff/device.FrameBits,
			InitWord:  (initOff % device.FrameBits) / 32,
			InitMask:  1 << (uint(initOff%device.FrameBits) % 32),
			CapFrame:  base + capOff/device.FrameBits,
			CapWord:   (capOff % device.FrameBits) / 32,
			CapMask:   1 << (uint(capOff%device.FrameBits) % 32),
		}
	}
	return refs, nil
}

// NonceColumnFrames returns the linear frame indices of the nonce
// column — the frames a nonce-only partial reconfiguration rewrites.
func NonceColumnFrames(geo *device.Geometry) ([]int, error) {
	region := NonceRegion(geo)
	rc := region.CLBCols[0]
	base, n, err := geo.ColumnBase(rc[0], device.ColCLB, rc[1])
	if err != nil {
		return nil, err
	}
	out := make([]int, n)
	for i := range out {
		out[i] = base + i
	}
	return out, nil
}

// ReadNonce recovers the nonce value encoded in an image's nonce
// register init bits, per the template.
func ReadNonce(im *Image, refs []NonceBitRef) (uint64, error) {
	var nonce uint64
	for i, ref := range refs {
		if ref.InitFrame < 0 || ref.InitFrame >= im.NumFrames() {
			return 0, fmt.Errorf("fabric: nonce bit %d frame %d out of range", i, ref.InitFrame)
		}
		if im.Frame(ref.InitFrame)[ref.InitWord]&ref.InitMask != 0 {
			nonce |= 1 << uint(i)
		}
	}
	return nonce, nil
}

// WriteNonce sets an image's nonce register init bits to nonce, per the
// template. It is the image-level counterpart of a plan-level WithNonce
// patch: rewriting exactly these bits turns the golden image for one
// nonce into the golden image for another.
func WriteNonce(im *Image, refs []NonceBitRef, nonce uint64) error {
	for i, ref := range refs {
		if ref.InitFrame < 0 || ref.InitFrame >= im.NumFrames() {
			return fmt.Errorf("fabric: nonce bit %d frame %d out of range", i, ref.InitFrame)
		}
		w := &im.Frame(ref.InitFrame)[ref.InitWord]
		if nonce>>uint(i)&1 == 1 {
			*w |= ref.InitMask
		} else {
			*w &^= ref.InitMask
		}
	}
	return nil
}

// NonceFreeDigest hashes the image exactly like Image.Digest but with
// the nonce register's init and capture bits zeroed, so two golden
// images that differ only in the placed nonce value digest identically.
// It is the cache-key primitive behind nonce-patchable plan sharing.
func NonceFreeDigest(im *Image, nBits int) ([32]byte, error) {
	refs, err := NonceTemplate(im.Geo, nBits)
	if err != nil {
		return [32]byte{}, err
	}
	clear := make(map[int][]uint32)
	for i, ref := range refs {
		if ref.InitFrame >= im.NumFrames() || ref.CapFrame >= im.NumFrames() {
			return [32]byte{}, fmt.Errorf("fabric: nonce bit %d outside the image", i)
		}
		for _, fw := range [][3]uint32{
			{uint32(ref.InitFrame), uint32(ref.InitWord), ref.InitMask},
			{uint32(ref.CapFrame), uint32(ref.CapWord), ref.CapMask},
		} {
			f := int(fw[0])
			if clear[f] == nil {
				clear[f] = make([]uint32, device.FrameWords)
			}
			clear[f][fw[1]] |= fw[2]
		}
	}
	return im.digestWith(func(idx int, words []uint32) []uint32 {
		m, ok := clear[idx]
		if !ok {
			return words
		}
		out := make([]uint32, len(words))
		for i, w := range words {
			out[i] = w &^ m[i]
		}
		return out
	}), nil
}
