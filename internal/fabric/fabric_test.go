package fabric

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"sacha/internal/device"
	"sacha/internal/netlist"
)

// configure writes the image's frames for the given indices into the
// fabric, as the ICAP would during (re)configuration.
func configure(t testing.TB, f *Fabric, im *Image, frames []int) {
	t.Helper()
	for _, idx := range frames {
		if err := f.WriteFrame(idx, im.Frame(idx)); err != nil {
			t.Fatalf("WriteFrame(%d): %v", idx, err)
		}
	}
}

func TestRegionFrameCounts(t *testing.T) {
	geo := device.XC6VLX240T()
	stat := StatRegion(geo)
	dyn := DynRegion(geo)
	if got := len(stat.Frames()); got != 2088 {
		t.Errorf("StatMem = %d frames, want 2088", got)
	}
	if got := len(dyn.Frames()); got != 26400 {
		t.Errorf("DynMem = %d frames, want 26400 (paper Table 4, action A1)", got)
	}
	if len(stat.Frames())+len(dyn.Frames()) != geo.NumFrames() {
		t.Error("Stat + Dyn do not partition the device")
	}
	// Disjointness.
	seen := make(map[int]bool)
	for _, fr := range stat.Frames() {
		seen[fr] = true
	}
	for _, fr := range dyn.Frames() {
		if seen[fr] {
			t.Fatalf("frame %d in both partitions", fr)
		}
	}
}

func TestRegionsOtherDevices(t *testing.T) {
	for _, geo := range []*device.Geometry{device.SmallLX(), device.BigLX()} {
		stat := StatRegion(geo)
		dyn := DynRegion(geo)
		if len(stat.Frames())+len(dyn.Frames()) != geo.NumFrames() {
			t.Errorf("%s: Stat+Dyn != device", geo.Name)
		}
		if len(stat.Frames()) >= len(dyn.Frames()) {
			t.Errorf("%s: StatPart (%d) not smaller than DynPart (%d)",
				geo.Name, len(stat.Frames()), len(dyn.Frames()))
		}
	}
}

func TestNonceAndAppSubviews(t *testing.T) {
	geo := device.XC6VLX240T()
	dyn := DynRegion(geo)
	app := AppRegion(geo)
	nonce := NonceRegion(geo)
	if len(app.CLBCols)+len(nonce.CLBCols) != len(dyn.CLBCols) {
		t.Error("app + nonce CLB columns != dyn CLB columns")
	}
	// Pin ranges must be disjoint and inside the dynamic range.
	if app.PinBase+app.PinCount > nonce.PinBase {
		t.Error("app pins overlap nonce pins")
	}
	if nonce.PinBase+nonce.PinCount > NumPins(geo) {
		t.Error("nonce pins exceed device pins")
	}
}

// placeAndLoad places a design into a region of a fresh golden image,
// configures a fabric with the region's frames, and returns the live view.
func placeAndLoad(t testing.TB, geo *device.Geometry, region *Region, d *netlist.Design) (*Fabric, *Placement, *Live) {
	t.Helper()
	im := NewImage(geo)
	p, err := PlaceDesign(im, region, d)
	if err != nil {
		t.Fatalf("PlaceDesign: %v", err)
	}
	f := New(geo)
	configure(t, f, im, region.Frames())
	l, err := f.Live(region)
	if err != nil {
		t.Fatalf("Live: %v", err)
	}
	return f, p, l
}

func TestPlacedCounterMatchesNetlistSim(t *testing.T) {
	geo := device.SmallLX()
	d := netlist.Counter(6)
	_, p, l := placeAndLoad(t, geo, AppRegion(geo), d)

	ref, err := netlist.NewSimulator(d)
	if err != nil {
		t.Fatal(err)
	}
	ref.SetInput("en", 1)
	if err := l.InputPin(p, "en", 1); err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 70; step++ {
		for i := 0; i < 6; i++ {
			name := fmt.Sprintf("q%d", i)
			want, _ := ref.Output(name)
			got, err := l.OutputPin(p, name)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("step %d, %s: fabric=%d netlist=%d", step, name, got, want)
			}
		}
		ref.Step()
		if err := l.Step(); err != nil {
			t.Fatal(err)
		}
	}
}

// Property: for random input schedules, the placed adder agrees with the
// netlist simulator (semantic fidelity of the configuration encoding).
func TestQuickPlacedAdderMatchesNetlistSim(t *testing.T) {
	geo := device.SmallLX()
	d := netlist.RippleAdder(4)
	_, p, l := placeAndLoad(t, geo, AppRegion(geo), d)
	ref, _ := netlist.NewSimulator(d)

	f := func(a, b uint8, cin bool) bool {
		ci := uint8(0)
		if cin {
			ci = 1
		}
		ref.SetInput("cin", ci)
		l.InputPin(p, "cin", ci)
		for i := 0; i < 4; i++ {
			ref.SetInput(fmt.Sprintf("a%d", i), a>>uint(i)&1)
			ref.SetInput(fmt.Sprintf("b%d", i), b>>uint(i)&1)
			l.InputPin(p, fmt.Sprintf("a%d", i), a>>uint(i)&1)
			l.InputPin(p, fmt.Sprintf("b%d", i), b>>uint(i)&1)
		}
		for i := 0; i < 4; i++ {
			want, _ := ref.Output(fmt.Sprintf("s%d", i))
			got, err := l.OutputPin(p, fmt.Sprintf("s%d", i))
			if err != nil || got != want {
				return false
			}
		}
		want, _ := ref.Output("cout")
		got, _ := l.OutputPin(p, "cout")
		return got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestNoncePlacementEmbedsValue(t *testing.T) {
	geo := device.SmallLX()
	const nonce = 0x0123456789ABCDEF
	d := netlist.NonceRegister(64, nonce)
	_, p, l := placeAndLoad(t, geo, NonceRegion(geo), d)
	var got uint64
	for i := 0; i < 64; i++ {
		v, err := l.OutputPin(p, fmt.Sprintf("n%d", i))
		if err != nil {
			t.Fatal(err)
		}
		got |= uint64(v) << uint(i)
	}
	if got != nonce {
		t.Fatalf("nonce read %#x, want %#x", got, uint64(nonce))
	}
	// The nonce must persist across clock steps (hold register).
	for i := 0; i < 3; i++ {
		if err := l.Step(); err != nil {
			t.Fatal(err)
		}
	}
	v, _ := l.OutputPin(p, "n0")
	if v != uint8(nonce&1) {
		t.Fatal("nonce bit 0 lost after stepping")
	}
}

func TestReconfigurationReplacesDesign(t *testing.T) {
	// Configure a counter, step it, then reconfigure the same region with
	// a fresh image: state must reset and the new design must run.
	geo := device.SmallLX()
	region := AppRegion(geo)
	d := netlist.Counter(4)
	f, p, l := placeAndLoad(t, geo, region, d)
	l.InputPin(p, "en", 1)
	for i := 0; i < 5; i++ {
		l.Step()
	}
	if v, _ := l.OutputPin(p, "q0"); v != 1 {
		t.Fatal("counter q0 should be 1 after 5 steps")
	}

	// Reconfigure with the same design; GSR must clear the count.
	im2 := NewImage(geo)
	p2, err := PlaceDesign(im2, region, d)
	if err != nil {
		t.Fatal(err)
	}
	configure(t, f, im2, region.Frames())
	l2, err := f.Live(region)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if v, _ := l2.OutputPin(p2, fmt.Sprintf("q%d", i)); v != 0 {
			t.Fatalf("q%d not reset after reconfiguration", i)
		}
	}
}

func TestReadbackCaptureShowsLiveState(t *testing.T) {
	geo := device.SmallLX()
	region := AppRegion(geo)
	d := netlist.Counter(4)
	f, p, l := placeAndLoad(t, geo, region, d)
	l.InputPin(p, "en", 1)

	// Raw config equals readback before any state change only where no
	// used FF sits (init = 0 = captured state). After stepping, the
	// capture bits must differ from the stored config somewhere.
	diffAfterSteps := func() int {
		diff := 0
		for _, idx := range region.Frames() {
			rb, err := f.ReadbackFrame(idx)
			if err != nil {
				t.Fatal(err)
			}
			mem := f.Mem.Frame(idx)
			for w := range rb {
				if rb[w] != mem[w] {
					diff++
				}
			}
		}
		return diff
	}
	if d := diffAfterSteps(); d != 0 {
		t.Fatalf("readback differs from config before stepping: %d words", d)
	}
	l.Step() // q0 becomes 1
	if d := diffAfterSteps(); d == 0 {
		t.Fatal("readback identical to config after stepping — capture not modelled")
	}
}

func TestMaskHidesRegisterState(t *testing.T) {
	geo := device.SmallLX()
	region := AppRegion(geo)
	d := netlist.Counter(4)
	f, p, l := placeAndLoad(t, geo, region, d)
	l.InputPin(p, "en", 1)
	for i := 0; i < 9; i++ {
		l.Step()
	}
	mask := GenerateMask(geo)
	for _, idx := range region.Frames() {
		rb, _ := f.ReadbackFrame(idx)
		maskedRb := ApplyMask(rb, mask.Frame(idx))
		maskedCfg := ApplyMask(f.Mem.Frame(idx), mask.Frame(idx))
		for w := range maskedRb {
			if maskedRb[w] != maskedCfg[w] {
				t.Fatalf("frame %d word %d: masked readback differs from masked config", idx, w)
			}
		}
	}
}

// Property: flipping any random configuration bit in the dynamic partition
// survives the mask (is attestable) unless it lands on a capture bit.
func TestQuickTamperVisibleThroughMask(t *testing.T) {
	geo := device.SmallLX()
	region := AppRegion(geo)
	d := netlist.Blinker(5)
	f, _, _ := placeAndLoad(t, geo, region, d)
	mask := GenerateMask(geo)
	frames := region.Frames()

	fn := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		idx := frames[rng.Intn(len(frames))]
		w := rng.Intn(device.FrameWords)
		bit := uint32(1) << uint(rng.Intn(32))
		masked := mask.Frame(idx)[w]&bit != 0

		orig := f.Mem.Frame(idx)[w]
		f.Mem.Frame(idx)[w] ^= bit
		rb, err := f.ReadbackFrame(idx)
		f.Mem.Frame(idx)[w] = orig
		if err != nil {
			return false
		}
		origRb, _ := f.ReadbackFrame(idx)
		tampered := ApplyMask(rb, mask.Frame(idx))
		clean := ApplyMask(origRb, mask.Frame(idx))
		visible := false
		for i := range tampered {
			if tampered[i] != clean[i] {
				visible = true
			}
		}
		// A flip on a masked (capture) bit is invisible by design; any
		// other flip must be visible.
		return visible == masked
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestFillStaticDeterministic(t *testing.T) {
	geo := device.SmallLX()
	stat := StatRegion(geo)
	a := NewImage(geo)
	b := NewImage(geo)
	FillStatic(a, stat.Frames(), 99)
	FillStatic(b, stat.Frames(), 99)
	if !a.Equal(b) {
		t.Fatal("FillStatic not deterministic")
	}
	c := NewImage(geo)
	FillStatic(c, stat.Frames(), 100)
	if a.Equal(c) {
		t.Fatal("different build IDs produced identical static images")
	}
	// Dynamic frames must remain zero.
	dyn := DynRegion(geo)
	for _, idx := range dyn.Frames() {
		for _, w := range a.Frame(idx) {
			if w != 0 {
				t.Fatal("FillStatic wrote outside the static region")
			}
		}
	}
}

func TestPlacementCapacityErrors(t *testing.T) {
	geo := device.SmallLX()
	nonce := NonceRegion(geo) // 1 CLB column: 30 CLBs, 240 LUTs/FFs, 64 pins
	big := netlist.Counter(64)
	// 64-bit counter has 64 DFFs (fits) but needs 64 q pins + en > 64 pins.
	im := NewImage(geo)
	if _, err := PlaceDesign(im, nonce, big); err == nil {
		t.Fatal("over-capacity placement accepted")
	}
}

func TestPlacementDeterminism(t *testing.T) {
	geo := device.SmallLX()
	region := AppRegion(geo)
	d := netlist.LFSR(16, []int{0, 2, 3, 5})
	a := NewImage(geo)
	b := NewImage(geo)
	if _, err := PlaceDesign(a, region, d); err != nil {
		t.Fatal(err)
	}
	if _, err := PlaceDesign(b, region, d); err != nil {
		t.Fatal(err)
	}
	if !a.Equal(b) {
		t.Fatal("placement is not deterministic")
	}
}

func TestPlacerCoPlacesDesigns(t *testing.T) {
	// Two designs share one region without colliding; both decode and run
	// against their reference simulators simultaneously.
	geo := device.SmallLX()
	region := AppRegion(geo)
	im := NewImage(geo)
	pl := NewPlacer(im, region)
	counter := netlist.Counter(4)
	ring := netlist.OneHotRing(3)
	pc, err := pl.Place(counter)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := pl.Place(ring)
	if err != nil {
		t.Fatal(err)
	}
	// Slot/pins disjoint.
	for name, pin := range pc.OutputPin {
		for name2, pin2 := range pr.OutputPin {
			if pin == pin2 {
				t.Fatalf("pin collision: %s and %s both on %d", name, name2, pin)
			}
		}
	}
	f := New(geo)
	configure(t, f, im, region.Frames())
	l, err := f.Live(region)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.InputPin(pc, "en", 1); err != nil {
		t.Fatal(err)
	}
	refC, _ := netlist.NewSimulator(counter)
	refC.SetInput("en", 1)
	refR, _ := netlist.NewSimulator(ring)
	for step := 0; step < 12; step++ {
		for i := 0; i < 4; i++ {
			name := fmt.Sprintf("q%d", i)
			want, _ := refC.Output(name)
			got, err := l.OutputPin(pc, name)
			if err != nil || got != want {
				t.Fatalf("step %d counter %s: got %d want %d (%v)", step, name, got, want, err)
			}
		}
		for i := 0; i < 3; i++ {
			name := fmt.Sprintf("q%d", i)
			want, _ := refR.Output(name)
			got, err := l.OutputPin(pr, name)
			if err != nil || got != want {
				t.Fatalf("step %d ring %s: got %d want %d (%v)", step, name, got, want, err)
			}
		}
		refC.Step()
		refR.Step()
		l.Step()
	}
}

func TestWriteFrameValidation(t *testing.T) {
	geo := device.SmallLX()
	f := New(geo)
	if err := f.WriteFrame(-1, make([]uint32, device.FrameWords)); err == nil {
		t.Error("negative frame accepted")
	}
	if err := f.WriteFrame(0, make([]uint32, 3)); err == nil {
		t.Error("short frame accepted")
	}
	if _, err := f.ReadbackFrame(geo.NumFrames()); err == nil {
		t.Error("out-of-range readback accepted")
	}
	if err := f.SetPin(-1, 1); err == nil {
		t.Error("negative pin accepted")
	}
}

func TestImageCloneAndEqual(t *testing.T) {
	geo := device.SmallLX()
	im := NewImage(geo)
	im.Frame(5)[3] = 0xABCD
	c := im.Clone()
	if !im.Equal(c) {
		t.Fatal("clone not equal")
	}
	c.Frame(5)[3] = 0
	if im.Equal(c) {
		t.Fatal("Equal missed a difference")
	}
}

func TestLFSROnFabric(t *testing.T) {
	geo := device.SmallLX()
	d := netlist.LFSR(8, []int{0, 2, 3, 4})
	_, p, l := placeAndLoad(t, geo, AppRegion(geo), d)
	ref, _ := netlist.NewSimulator(d)
	for i := 0; i < 100; i++ {
		want, _ := ref.Output("out")
		got, err := l.OutputPin(p, "out")
		if err != nil {
			t.Fatal(err)
		}
		if got != want {
			t.Fatalf("step %d: fabric=%d ref=%d", i, got, want)
		}
		ref.Step()
		l.Step()
	}
}
