package fabric

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"sacha/internal/device"
)

func TestBRAMContentRoundTrip(t *testing.T) {
	geo := device.SmallLX()
	im := NewImage(geo)
	data := make([]byte, BRAM36ContentBytes)
	for i := range data {
		data[i] = byte(i * 31)
	}
	if err := WriteBRAMContent(im, 0, 0, 5, data); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBRAMContent(im, 0, 0, 5)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("BRAM content round-trip failed")
	}
	// Neighbouring sites untouched.
	for _, site := range []int{4, 6} {
		n, err := ReadBRAMContent(im, 0, 0, site)
		if err != nil {
			t.Fatal(err)
		}
		for _, b := range n {
			if b != 0 {
				t.Fatalf("site %d disturbed", site)
			}
		}
	}
}

func TestBRAMContentValidation(t *testing.T) {
	geo := device.SmallLX()
	im := NewImage(geo)
	if err := WriteBRAMContent(im, 0, 0, -1, nil); err == nil {
		t.Error("negative site accepted")
	}
	if err := WriteBRAMContent(im, 0, 0, 999, nil); err == nil {
		t.Error("out-of-range site accepted")
	}
	if err := WriteBRAMContent(im, 0, 0, 0, make([]byte, BRAM36ContentBytes+1)); err == nil {
		t.Error("oversized content accepted")
	}
	if err := WriteBRAMContent(im, 9, 0, 0, nil); err == nil {
		t.Error("bad row accepted")
	}
	if _, err := ReadBRAMContent(im, 0, 0, 999); err == nil {
		t.Error("read of bad site accepted")
	}
}

func TestPlaceROMRoundTrip(t *testing.T) {
	geo := device.SmallLX()
	im := NewImage(geo)
	region := DynRegion(geo)
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 3*BRAM36ContentBytes+123) // spans several sites
	rng.Read(data)
	if err := PlaceROM(im, region, data); err != nil {
		t.Fatal(err)
	}
	got, err := ReadROM(im, region, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("ROM round-trip failed")
	}
}

func TestPlaceROMCapacity(t *testing.T) {
	geo := device.SmallLX()
	im := NewImage(geo)
	region := DynRegion(geo)
	sites := geo.SitesPerColumn(device.ColBRAMContent)
	capacity := len(region.BRAMCnt) * sites * BRAM36ContentBytes
	if err := PlaceROM(im, region, make([]byte, capacity+1)); err == nil {
		t.Fatal("over-capacity ROM accepted")
	}
	if err := PlaceROM(im, region, make([]byte, capacity)); err != nil {
		t.Fatalf("exact-capacity ROM rejected: %v", err)
	}
	// Reading more than the region holds must fail.
	if _, err := ReadROM(im, &Region{Name: "empty", geo: geo}, 10); err == nil {
		t.Fatal("read from BRAM-less region accepted")
	}
}

func TestBRAMTamperVisibleToReadback(t *testing.T) {
	// BRAM content lives in configuration frames: flipping a content bit
	// must show up in masked readback like any logic tamper.
	geo := device.SmallLX()
	fab := New(geo)
	region := DynRegion(geo)
	data := bytes.Repeat([]byte{0xA5}, BRAM36ContentBytes)
	golden := NewImage(geo)
	if err := PlaceROM(golden, region, data); err != nil {
		t.Fatal(err)
	}
	for _, idx := range region.Frames() {
		if err := fab.WriteFrame(idx, golden.Frame(idx)); err != nil {
			t.Fatal(err)
		}
	}
	// Tamper one content byte on the device.
	tampered, _ := ReadBRAMContent(fab.Mem, region.BRAMCnt[0][0], region.BRAMCnt[0][1], 0)
	tampered[100] ^= 0xFF
	if err := WriteBRAMContent(fab.Mem, region.BRAMCnt[0][0], region.BRAMCnt[0][1], 0, tampered); err != nil {
		t.Fatal(err)
	}
	mask := GenerateMask(geo)
	diff := false
	for _, idx := range region.Frames() {
		rb, err := fab.ReadbackFrame(idx)
		if err != nil {
			t.Fatal(err)
		}
		a := ApplyMask(rb, mask.Frame(idx))
		b := ApplyMask(golden.Frame(idx), mask.Frame(idx))
		for w := range a {
			if a[w] != b[w] {
				diff = true
			}
		}
	}
	if !diff {
		t.Fatal("BRAM content tamper invisible to masked readback")
	}
}

// Property: random (site, data) writes round-trip without crosstalk.
func TestQuickBRAMContent(t *testing.T) {
	geo := device.SmallLX()
	im := NewImage(geo)
	sites := geo.SitesPerColumn(device.ColBRAMContent)
	fn := func(seed int64, siteRaw uint8, n16 uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		site := int(siteRaw) % sites
		data := make([]byte, int(n16)%BRAM36ContentBytes+1)
		rng.Read(data)
		if err := WriteBRAMContent(im, 0, 0, site, data); err != nil {
			return false
		}
		got, err := ReadBRAMContent(im, 0, 0, site)
		if err != nil {
			return false
		}
		return bytes.Equal(got[:len(data)], data)
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
