package fabric

import (
	"fmt"

	"sacha/internal/device"
)

// Fabric is the live configurable fabric of one FPGA: the configuration
// memory plus the dynamic state the configuration does not capture — the
// flip-flop values and the input pad values.
type Fabric struct {
	Geo *device.Geometry
	Mem *Image

	ffState  map[int]uint8 // FF net ID -> current state
	pinState map[int]uint8 // input pad pin number -> driven value
	epoch    int64         // bumped on every configuration write
}

// Epoch returns a counter that increases on every configuration write;
// callers caching decoded Live views use it for invalidation.
func (f *Fabric) Epoch() int64 { return f.epoch }

// New returns a fabric with an all-zero configuration memory.
func New(geo *device.Geometry) *Fabric {
	return &Fabric{
		Geo:      geo,
		Mem:      NewImage(geo),
		ffState:  make(map[int]uint8),
		pinState: make(map[int]uint8),
	}
}

// WriteFrame stores one configuration frame, as the ICAP does during
// (re)configuration. If the frame belongs to a CLB column, the column's
// flip-flops are re-initialised from their init bits, modelling the global
// set/reset that follows a partial reconfiguration.
func (f *Fabric) WriteFrame(idx int, words []uint32) error {
	if idx < 0 || idx >= f.Mem.NumFrames() {
		return fmt.Errorf("fabric: frame %d out of range", idx)
	}
	if len(words) != device.FrameWords {
		return fmt.Errorf("fabric: frame data has %d words, want %d", len(words), device.FrameWords)
	}
	f.Mem.SetFrame(idx, words)
	f.epoch++
	kind, row, ord, _, err := f.Geo.ColumnOfFrame(idx)
	if err != nil {
		return err
	}
	if kind == device.ColCLB {
		f.resetColumnFFs(row, ord)
	}
	return nil
}

// resetColumnFFs applies the post-reconfiguration global set/reset to all
// flip-flops of one CLB column: used FFs load their init bit, unused FFs
// lose their state.
func (f *Fabric) resetColumnFFs(row, clbCol int) {
	cv, err := f.Mem.columnView(row, device.ColCLB, clbCol)
	if err != nil {
		panic(err) // column came from ColumnOfFrame, cannot be invalid
	}
	sites := f.Geo.SitesPerColumn(device.ColCLB)
	for clb := 0; clb < sites; clb++ {
		site := SiteIndex(f.Geo, row, clbCol, clb)
		for slot := 0; slot < FFSlotsPerCLB; slot++ {
			base := clb*CLBBits + ffBase + slot*ffSlotBits
			net := FFNet(f.Geo, site, slot)
			if cv.bit(base+ffUsedOff) == 1 {
				f.ffState[net] = uint8(cv.bit(base + ffInitOff))
			} else {
				delete(f.ffState, net)
			}
		}
	}
}

// ReadbackFrame returns the frame as the ICAP readback sees it: the stored
// configuration bits, with every used flip-flop's capture bit replaced by
// the live flip-flop state. This is the register content that the paper's
// verifier must mask out with Msk before comparing bitstreams.
func (f *Fabric) ReadbackFrame(idx int) ([]uint32, error) {
	out := make([]uint32, device.FrameWords)
	if err := f.ReadbackFrameInto(idx, out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReadbackFrameInto is ReadbackFrame into a caller-provided buffer of
// FrameWords words, for scan loops (scrubbing, delta attestation) that
// must not allocate per frame.
func (f *Fabric) ReadbackFrameInto(idx int, out []uint32) error {
	if idx < 0 || idx >= f.Mem.NumFrames() {
		return fmt.Errorf("fabric: frame %d out of range", idx)
	}
	if len(out) != device.FrameWords {
		return fmt.Errorf("fabric: readback buffer of %d words, want %d", len(out), device.FrameWords)
	}
	copy(out, f.Mem.Frame(idx))
	kind, row, ord, minor, err := f.Geo.ColumnOfFrame(idx)
	if err != nil {
		return err
	}
	if kind != device.ColCLB {
		return nil
	}
	cv, err := f.Mem.columnView(row, device.ColCLB, ord)
	if err != nil {
		return err
	}
	lo := minor * device.FrameBits
	hi := lo + device.FrameBits
	sites := f.Geo.SitesPerColumn(device.ColCLB)
	for clb := 0; clb < sites; clb++ {
		for slot := 0; slot < FFSlotsPerCLB; slot++ {
			base := clb*CLBBits + ffBase + slot*ffSlotBits
			cap := base + ffCaptureOff
			if cap < lo || cap >= hi {
				continue
			}
			if cv.bit(base+ffUsedOff) != 1 {
				continue
			}
			net := FFNet(f.Geo, SiteIndex(f.Geo, row, ord, clb), slot)
			off := cap - lo
			w, s := off/32, uint(off)%32
			out[w] = out[w]&^(1<<s) | uint32(f.ffState[net])&1<<s
		}
	}
	return nil
}

// SetPin drives an IOB input pad.
func (f *Fabric) SetPin(pin int, v uint8) error {
	if pin < 0 || pin >= NumPins(f.Geo) {
		return fmt.Errorf("fabric: pin %d out of range", pin)
	}
	f.pinState[pin] = v & 1
	return nil
}

// FFStateSize returns the number of flip-flops currently holding state
// (i.e. configured as used).
func (f *Fabric) FFStateSize() int { return len(f.ffState) }

// GenerateMask builds the Msk image for a geometry: every configuration
// bit is 1 (compare) except the flip-flop capture positions of all CLB
// columns, which are 0 (mask out). This is the mask the Xilinx tools emit
// alongside a bitstream, applied by the verifier in §6.1 of the paper.
func GenerateMask(geo *device.Geometry) *Image {
	m := NewImage(geo)
	for i := 0; i < m.NumFrames(); i++ {
		f := m.Frame(i)
		for w := range f {
			f[w] = 0xFFFFFFFF
		}
	}
	sites := geo.SitesPerColumn(device.ColCLB)
	for row := 0; row < geo.Rows; row++ {
		for col := 0; col < geo.ColumnsOf(device.ColCLB); col++ {
			cv, err := m.columnView(row, device.ColCLB, col)
			if err != nil {
				panic(err)
			}
			for clb := 0; clb < sites; clb++ {
				for slot := 0; slot < FFSlotsPerCLB; slot++ {
					cv.setBit(clb*CLBBits+ffBase+slot*ffSlotBits+ffCaptureOff, 0)
				}
			}
		}
	}
	return m
}

// ApplyMask ands the mask into a copy of the frame data.
func ApplyMask(frame, mask []uint32) []uint32 {
	if len(frame) != len(mask) {
		panic("fabric: frame/mask length mismatch")
	}
	out := make([]uint32, len(frame))
	for i := range frame {
		out[i] = frame[i] & mask[i]
	}
	return out
}
