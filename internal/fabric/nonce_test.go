package fabric

import (
	"testing"

	"sacha/internal/device"
	"sacha/internal/netlist"
)

// placeNonce builds a fresh image holding only a placed 64-bit nonce
// register, the way every golden build configures the nonce partition.
func placeNonce(t *testing.T, geo *device.Geometry, nonce uint64) *Image {
	t.Helper()
	im := NewImage(geo)
	if _, err := PlaceDesign(im, NonceRegion(geo), netlist.NonceRegister(64, nonce)); err != nil {
		t.Fatalf("placing nonce register: %v", err)
	}
	return im
}

// TestNonceTemplateMatchesPlacement is the ground truth behind plan
// patching: the template-predicted init-bit positions must be exactly
// the bits the placer changes between two nonce values, and rewriting
// them must reproduce the other placement bit for bit.
func TestNonceTemplateMatchesPlacement(t *testing.T) {
	for _, geo := range []*device.Geometry{device.TinyLX(), device.SmallLX()} {
		t.Run(geo.Name, func(t *testing.T) {
			const a, b uint64 = 0xDEADBEEF_00C0FFEE, 0x0123_4567_89AB_CDEF
			imA := placeNonce(t, geo, a)
			imB := placeNonce(t, geo, b)
			refs, err := NonceTemplate(geo, 64)
			if err != nil {
				t.Fatal(err)
			}
			if got, _ := ReadNonce(imA, refs); got != a {
				t.Fatalf("ReadNonce = %#x, want %#x", got, a)
			}
			if got, _ := ReadNonce(imB, refs); got != b {
				t.Fatalf("ReadNonce = %#x, want %#x", got, b)
			}
			// Rewriting the template bits of the nonce-a placement must
			// yield the nonce-b placement exactly — no other bit of the
			// image may depend on the nonce value.
			if err := WriteNonce(imA, refs, b); err != nil {
				t.Fatal(err)
			}
			if !imA.Equal(imB) {
				t.Fatal("WriteNonce(a→b) does not reproduce the nonce-b placement — the template misses nonce-dependent bits")
			}
			// The capture-bit positions must be the masked bits of the
			// nonce column: cleared in the mask, zero in the golden image.
			mask := GenerateMask(geo)
			for i, ref := range refs {
				if mask.Frame(ref.CapFrame)[ref.CapWord]&ref.CapMask != 0 {
					t.Errorf("bit %d: capture position not cleared by the mask", i)
				}
				if imB.Frame(ref.CapFrame)[ref.CapWord]&ref.CapMask != 0 {
					t.Errorf("bit %d: golden image has a set capture bit", i)
				}
			}
		})
	}
}

// TestNonceFreeDigestIgnoresNonce: two placements that differ only in
// the nonce must share a nonce-free digest, which must itself differ
// from the plain digest and react to any non-nonce tampering.
func TestNonceFreeDigestIgnoresNonce(t *testing.T) {
	geo := device.TinyLX()
	imA := placeNonce(t, geo, 1)
	imB := placeNonce(t, geo, ^uint64(0))
	if imA.Digest() == imB.Digest() {
		t.Fatal("plain digests collide across nonces — test premise broken")
	}
	dA, err := NonceFreeDigest(imA, 64)
	if err != nil {
		t.Fatal(err)
	}
	dB, err := NonceFreeDigest(imB, 64)
	if err != nil {
		t.Fatal(err)
	}
	if dA != dB {
		t.Fatal("nonce-free digests differ across nonce values")
	}
	// Any bit outside the nonce register must still be covered.
	imB.Frame(0)[0] ^= 1
	dT, err := NonceFreeDigest(imB, 64)
	if err != nil {
		t.Fatal(err)
	}
	if dT == dB {
		t.Fatal("nonce-free digest blind to non-nonce tampering")
	}
}

func TestNonceTemplateBounds(t *testing.T) {
	geo := device.TinyLX()
	if _, err := NonceTemplate(geo, 0); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := NonceTemplate(geo, 65); err == nil {
		t.Error("width 65 accepted")
	}
	if _, err := NonceTemplate(nil, 64); err == nil {
		t.Error("nil geometry accepted")
	}
	frames, err := NonceColumnFrames(geo)
	if err != nil || len(frames) == 0 {
		t.Fatalf("NonceColumnFrames: %v (%d frames)", err, len(frames))
	}
	refs, err := NonceTemplate(geo, 64)
	if err != nil {
		t.Fatal(err)
	}
	set := map[int]bool{}
	for _, f := range frames {
		set[f] = true
	}
	for i, ref := range refs {
		if !set[ref.InitFrame] || !set[ref.CapFrame] {
			t.Errorf("bit %d: template frames %d/%d outside the nonce column", i, ref.InitFrame, ref.CapFrame)
		}
	}
}
