package fabric

import (
	"fmt"

	"sacha/internal/device"
)

// liveLUT is a decoded, active look-up table.
type liveLUT struct {
	net   int
	truth uint64
	sels  [6]uint64
	nIn   int
}

// liveFF is a decoded, active flip-flop.
type liveFF struct {
	net int
	sel uint64
}

// liveIOB is a decoded, active IOB pin.
type liveIOB struct {
	pin    int
	output bool
	sel    uint64
}

// Live is the functional view of one region, decoded from the
// configuration bits currently in the fabric. It shares flip-flop and pin
// state with the fabric, so stepping a Live design changes what the ICAP
// readback captures.
type Live struct {
	fab    *Fabric
	luts   []liveLUT
	ffs    []liveFF
	iobs   []liveIOB
	values map[int]uint8 // LUT net -> settled value
}

// Live decodes the region's configuration bits into an executable design
// and settles its combinational logic. It returns an error if the decoded
// logic does not converge (combinational loop).
func (f *Fabric) Live(region *Region) (*Live, error) {
	l := &Live{fab: f, values: make(map[int]uint8)}
	sites := f.Geo.SitesPerColumn(device.ColCLB)
	for _, rc := range region.CLBCols {
		cv, err := f.Mem.columnView(rc[0], device.ColCLB, rc[1])
		if err != nil {
			return nil, err
		}
		for clb := 0; clb < sites; clb++ {
			site := SiteIndex(f.Geo, rc[0], rc[1], clb)
			for slot := 0; slot < LUTSlotsPerCLB; slot++ {
				base := clb*CLBBits + slot*lutSlotBits
				if cv.bit(base+lutUsedOff) != 1 {
					continue
				}
				lut := liveLUT{
					net:   LUTNet(f.Geo, site, slot),
					truth: cv.uint(base+lutTruthOff, 64),
					nIn:   6,
				}
				for k := 0; k < 6; k++ {
					lut.sels[k] = cv.uint(base+lutSelOff+k*selWidth, selWidth)
				}
				l.luts = append(l.luts, lut)
			}
			for slot := 0; slot < FFSlotsPerCLB; slot++ {
				base := clb*CLBBits + ffBase + slot*ffSlotBits
				if cv.bit(base+ffUsedOff) != 1 {
					continue
				}
				l.ffs = append(l.ffs, liveFF{
					net: FFNet(f.Geo, site, slot),
					sel: cv.uint(base+ffSelOff, selWidth),
				})
			}
		}
	}
	for _, row := range region.CFGRows {
		cv, err := f.Mem.columnView(row, device.ColCFG, 0)
		if err != nil {
			return nil, err
		}
		for p := 0; p < IOBPinsPerRow; p++ {
			pin := row*IOBPinsPerRow + p
			if pin < region.PinBase || pin >= region.PinBase+region.PinCount {
				continue
			}
			base := p * iobEntryBits
			if cv.bit(base+iobUsedOff) != 1 {
				continue
			}
			l.iobs = append(l.iobs, liveIOB{
				pin:    pin,
				output: cv.bit(base+iobDirOff) == 1,
				sel:    cv.uint(base+iobSelOff, selWidth),
			})
		}
	}
	if err := l.settle(); err != nil {
		return nil, err
	}
	return l, nil
}

// resolve returns the value carried by a routing selector.
func (l *Live) resolve(sel uint64) uint8 {
	switch sel {
	case SelUnconnected:
		return 0
	case SelConst1:
		return 1
	}
	net := int(sel) - selNetBase
	_, lutNets, pinBase := netCounts(l.fab.Geo)
	switch {
	case net < lutNets:
		return l.values[net]
	case net < pinBase:
		return l.fab.ffState[net]
	default:
		pin := net - pinBase
		return l.fab.pinState[pin]
	}
}

// settle iterates combinational evaluation to a fixpoint.
func (l *Live) settle() error {
	for pass := 0; pass <= len(l.luts)+1; pass++ {
		changed := false
		for i := range l.luts {
			lut := &l.luts[i]
			idx := 0
			for k := 0; k < lut.nIn; k++ {
				if l.resolve(lut.sels[k]) != 0 {
					idx |= 1 << uint(k)
				}
			}
			v := uint8(lut.truth >> uint(idx) & 1)
			if l.values[lut.net] != v {
				l.values[lut.net] = v
				changed = true
			}
		}
		if !changed {
			return nil
		}
	}
	return fmt.Errorf("fabric: combinational logic did not converge (loop in configuration)")
}

// Step applies one clock edge to the region: all flip-flops latch
// simultaneously, then logic settles.
func (l *Live) Step() error {
	next := make([]uint8, len(l.ffs))
	for i, ff := range l.ffs {
		next[i] = l.resolve(ff.sel)
	}
	for i, ff := range l.ffs {
		l.fab.ffState[ff.net] = next[i]
	}
	return l.settle()
}

// SetPin drives an input pad and re-settles the logic.
func (l *Live) SetPin(pin int, v uint8) error {
	if err := l.fab.SetPin(pin, v); err != nil {
		return err
	}
	return l.settle()
}

// Pin returns the value observable on an IOB pad: for output pads the
// driven value, for input pads the externally applied value.
func (l *Live) Pin(pin int) (uint8, error) {
	for _, iob := range l.iobs {
		if iob.pin != pin {
			continue
		}
		if iob.output {
			return l.resolve(iob.sel), nil
		}
		return l.fab.pinState[pin], nil
	}
	return 0, fmt.Errorf("fabric: pin %d not configured in this region", pin)
}

// NumLUTs returns the number of active LUTs decoded from the region.
func (l *Live) NumLUTs() int { return len(l.luts) }

// NumFFs returns the number of active flip-flops decoded from the region.
func (l *Live) NumFFs() int { return len(l.ffs) }

// FFState returns the current state of the region's flip-flops in decode
// order (column order, then CLB, then slot).
func (l *Live) FFState() []uint8 {
	out := make([]uint8, len(l.ffs))
	for i, ff := range l.ffs {
		out[i] = l.fab.ffState[ff.net]
	}
	return out
}

// OutputPin resolves a placement's named output through the live fabric.
func (l *Live) OutputPin(p *Placement, name string) (uint8, error) {
	pin, ok := p.OutputPin[name]
	if !ok {
		return 0, fmt.Errorf("fabric: no output pin %q in placement", name)
	}
	return l.Pin(pin)
}

// InputPin drives a placement's named input through the live fabric.
func (l *Live) InputPin(p *Placement, name string, v uint8) error {
	pin, ok := p.InputPin[name]
	if !ok {
		return fmt.Errorf("fabric: no input pin %q in placement", name)
	}
	return l.SetPin(pin, v)
}
