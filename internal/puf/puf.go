// Package puf models the weak key-generating PUF of the SACHa scheme.
//
// SACHa derives the MAC key from a weak Physical(ly) Unclonable Function
// so that the key never leaves the device and cannot be extracted from the
// configuration bitstream (paper §5.2.1). The paper assumes an ideal
// key-generating PUF; this model goes one step further and includes the
// machinery a real deployment needs — a noisy SRAM-style fingerprint and a
// repetition-code fuzzy extractor — so that the enrollment step described
// in the paper is exercised end to end.
//
// Two placements are supported, matching the two options in the paper:
// a PUF fixed in the static partition at provisioning time, or a fresh PUF
// circuit shipped by the verifier inside the dynamic bitstream (which lets
// the verifier rotate keys). Both reduce to a (device, circuit) pair in the
// verifier's enrollment database.
package puf

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"

	"sacha/internal/cmac"
)

// KeyBits is the number of extracted key bits (AES-128 key).
const KeyBits = 128

// Repetition is the repetition-code length per key bit. With a raw
// bit-error probability of a few percent, 15-fold majority voting brings
// the per-bit failure rate below 1e-6.
const Repetition = 15

// RawBits is the number of raw PUF response bits consumed per key.
const RawBits = KeyBits * Repetition

// Physical is the physical fingerprint of one device's PUF cells. The
// reference response is a deterministic function of the device identity
// and the PUF circuit identity; every readout adds fresh noise.
type Physical struct {
	DeviceID  uint64
	CircuitID uint64 // 0 for the provisioned StatPart PUF
	// NoiseProb is the probability that a raw cell reads inverted,
	// in units of 1/10000 (e.g. 500 = 5%).
	NoiseProb int
}

// reference returns the noiseless raw response, derived by expanding the
// (device, circuit) identity with the AES-CMAC PRF in counter mode.
func (p *Physical) reference() []byte {
	var key [16]byte
	binary.BigEndian.PutUint64(key[0:8], p.DeviceID)
	binary.BigEndian.PutUint64(key[8:16], p.CircuitID)
	out := make([]byte, RawBits/8)
	var ctr [16]byte
	copy(ctr[:], "SACHa-PUF-cells!")
	for i := 0; i < len(out); i += cmac.Size {
		binary.BigEndian.PutUint32(ctr[12:16], uint32(i))
		tag, err := cmac.Compute(key[:], ctr[:])
		if err != nil {
			panic(err) // 16-byte key, cannot fail
		}
		copy(out[i:], tag[:])
	}
	return out
}

// Readout reads the raw PUF response with fresh noise drawn from rng.
func (p *Physical) Readout(rng *rand.Rand) []byte {
	r := p.reference()
	for i := 0; i < RawBits; i++ {
		if rng.Intn(10000) < p.NoiseProb {
			r[i/8] ^= 1 << (uint(i) % 8)
		}
	}
	return r
}

// HelperData is the public fuzzy-extractor helper produced at enrollment.
// It reveals nothing about the key without the PUF response.
type HelperData struct {
	Offset []byte // RawBits/8 bytes: reference XOR repetition-encoded seed
}

// Enrollment is the result of enrolling one PUF circuit.
type Enrollment struct {
	Helper HelperData
	Key    [16]byte // the extracted AES key, stored by the verifier
}

// Enroll runs the one-time enrollment (paper: "each PUF circuit ... needs
// to have gone through an enrollment phase before the deployment"). It
// draws a random seed, computes helper data from a noiseless reference
// readout, and returns the helper plus the derived key.
func Enroll(p *Physical, rng *rand.Rand) Enrollment {
	seed := make([]byte, KeyBits/8)
	rng.Read(seed)
	code := encodeRepetition(seed)
	ref := p.reference()
	offset := make([]byte, len(ref))
	for i := range ref {
		offset[i] = ref[i] ^ code[i]
	}
	return Enrollment{
		Helper: HelperData{Offset: offset},
		Key:    deriveKey(seed, p.DeviceID, p.CircuitID),
	}
}

// Extract reconstructs the key on the device from a noisy readout and the
// helper data. It fails only if some repetition block accumulated more
// than Repetition/2 bit errors.
func Extract(p *Physical, helper HelperData, rng *rand.Rand) ([16]byte, error) {
	if len(helper.Offset) != RawBits/8 {
		return [16]byte{}, fmt.Errorf("puf: helper data has %d bytes, want %d", len(helper.Offset), RawBits/8)
	}
	r := p.Readout(rng)
	noisy := make([]byte, len(r))
	for i := range r {
		noisy[i] = r[i] ^ helper.Offset[i]
	}
	seed := decodeRepetition(noisy)
	return deriveKey(seed, p.DeviceID, p.CircuitID), nil
}

// encodeRepetition expands each seed bit into Repetition code bits.
func encodeRepetition(seed []byte) []byte {
	out := make([]byte, RawBits/8)
	for i := 0; i < KeyBits; i++ {
		bit := seed[i/8] >> (uint(i) % 8) & 1
		for j := 0; j < Repetition; j++ {
			k := i*Repetition + j
			out[k/8] |= bit << (uint(k) % 8)
		}
	}
	return out
}

// decodeRepetition majority-decodes each Repetition-bit block.
func decodeRepetition(code []byte) []byte {
	out := make([]byte, KeyBits/8)
	for i := 0; i < KeyBits; i++ {
		ones := 0
		for j := 0; j < Repetition; j++ {
			k := i*Repetition + j
			ones += int(code[k/8] >> (uint(k) % 8) & 1)
		}
		if ones*2 > Repetition {
			out[i/8] |= 1 << (uint(i) % 8)
		}
	}
	return out
}

// deriveKey turns the extracted seed into the AES key with a CMAC-based
// KDF bound to the device and circuit identity.
func deriveKey(seed []byte, deviceID, circuitID uint64) [16]byte {
	var label [32]byte
	copy(label[:], "SACHa-KDF")
	binary.BigEndian.PutUint64(label[16:24], deviceID)
	binary.BigEndian.PutUint64(label[24:32], circuitID)
	tag, err := cmac.Compute(seed, label[:])
	if err != nil {
		panic(err)
	}
	return tag
}

// Database is the verifier-side enrollment database: it maps a
// (device, circuit) pair to the enrolled key (paper: "the Vrf needs to
// keep a database of PUF circuits and corresponding keys").
type Database struct {
	mu   sync.RWMutex
	keys map[[2]uint64][16]byte
}

// NewDatabase returns an empty enrollment database.
func NewDatabase() *Database {
	return &Database{keys: make(map[[2]uint64][16]byte)}
}

// Store records the key for a (device, circuit) pair.
func (db *Database) Store(deviceID, circuitID uint64, key [16]byte) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.keys[[2]uint64{deviceID, circuitID}] = key
}

// Lookup returns the enrolled key for a (device, circuit) pair.
func (db *Database) Lookup(deviceID, circuitID uint64) ([16]byte, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	k, ok := db.keys[[2]uint64{deviceID, circuitID}]
	return k, ok
}

// Len returns the number of enrolled circuits.
func (db *Database) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return len(db.keys)
}
