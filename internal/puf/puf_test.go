package puf

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEnrollExtractNoiseless(t *testing.T) {
	p := &Physical{DeviceID: 42, NoiseProb: 0}
	rng := rand.New(rand.NewSource(1))
	e := Enroll(p, rng)
	got, err := Extract(p, e.Helper, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got != e.Key {
		t.Fatal("noiseless extraction does not reproduce the enrolled key")
	}
}

func TestEnrollExtractWithNoise(t *testing.T) {
	// 5% raw bit error rate — the fuzzy extractor must still recover the
	// key across many readouts.
	p := &Physical{DeviceID: 7, NoiseProb: 500}
	rng := rand.New(rand.NewSource(2))
	e := Enroll(p, rng)
	for trial := 0; trial < 50; trial++ {
		got, err := Extract(p, e.Helper, rng)
		if err != nil {
			t.Fatal(err)
		}
		if got != e.Key {
			t.Fatalf("trial %d: key mismatch under 5%% noise", trial)
		}
	}
}

func TestDifferentDevicesDifferentKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := Enroll(&Physical{DeviceID: 1}, rng)
	b := Enroll(&Physical{DeviceID: 2}, rng)
	if a.Key == b.Key {
		t.Fatal("two devices enrolled to the same key")
	}
}

func TestCloneWithoutPUFFails(t *testing.T) {
	// An adversary that copies the helper data onto a different physical
	// device must not obtain the enrolled key (unclonability).
	rng := rand.New(rand.NewSource(4))
	victim := &Physical{DeviceID: 10, NoiseProb: 200}
	clone := &Physical{DeviceID: 11, NoiseProb: 200}
	e := Enroll(victim, rng)
	got, err := Extract(clone, e.Helper, rng)
	if err != nil {
		t.Fatal(err)
	}
	if got == e.Key {
		t.Fatal("clone device extracted the victim's key")
	}
}

func TestCircuitRotationChangesKey(t *testing.T) {
	// The DynPart-PUF option: the verifier ships a new PUF circuit, which
	// must yield a fresh key on the same device.
	rng := rand.New(rand.NewSource(5))
	c0 := Enroll(&Physical{DeviceID: 9, CircuitID: 0}, rng)
	c1 := Enroll(&Physical{DeviceID: 9, CircuitID: 1}, rng)
	if c0.Key == c1.Key {
		t.Fatal("rotating the PUF circuit did not change the key")
	}
}

func TestExtractBadHelper(t *testing.T) {
	p := &Physical{DeviceID: 1}
	if _, err := Extract(p, HelperData{Offset: make([]byte, 3)}, rand.New(rand.NewSource(1))); err == nil {
		t.Fatal("short helper data accepted")
	}
}

func TestHelperDataLeaksNothingTrivially(t *testing.T) {
	// The helper data must not equal the reference response or the code
	// (i.e. offset construction actually happened).
	p := &Physical{DeviceID: 12}
	rng := rand.New(rand.NewSource(6))
	e := Enroll(p, rng)
	ref := p.reference()
	same := 0
	for i := range ref {
		if ref[i] == e.Helper.Offset[i] {
			same++
		}
	}
	if same == len(ref) {
		t.Fatal("helper data equals raw reference — key would leak")
	}
}

func TestRepetitionCodec(t *testing.T) {
	seed := make([]byte, KeyBits/8)
	for i := range seed {
		seed[i] = byte(i*37 + 1)
	}
	code := encodeRepetition(seed)
	if len(code) != RawBits/8 {
		t.Fatalf("code length %d", len(code))
	}
	back := decodeRepetition(code)
	for i := range seed {
		if back[i] != seed[i] {
			t.Fatalf("repetition round-trip failed at byte %d", i)
		}
	}
}

// Property: the repetition code corrects up to (Repetition-1)/2 errors in
// every block.
func TestQuickRepetitionCorrectsErrors(t *testing.T) {
	f := func(seedVal int64) bool {
		rng := rand.New(rand.NewSource(seedVal))
		seed := make([]byte, KeyBits/8)
		rng.Read(seed)
		code := encodeRepetition(seed)
		// Flip exactly t = (Repetition-1)/2 random bits in each block.
		tErr := (Repetition - 1) / 2
		for b := 0; b < KeyBits; b++ {
			perm := rng.Perm(Repetition)[:tErr]
			for _, j := range perm {
				k := b*Repetition + j
				code[k/8] ^= 1 << (uint(k) % 8)
			}
		}
		back := decodeRepetition(code)
		for i := range seed {
			if back[i] != seed[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestReadoutIsNoisy(t *testing.T) {
	p := &Physical{DeviceID: 5, NoiseProb: 1000} // 10%
	rng := rand.New(rand.NewSource(8))
	ref := p.reference()
	r := p.Readout(rng)
	diff := 0
	for i := 0; i < RawBits; i++ {
		if (ref[i/8]^r[i/8])>>(uint(i)%8)&1 == 1 {
			diff++
		}
	}
	// Expect roughly 10% of RawBits flipped; allow generous bounds.
	if diff < RawBits/20 || diff > RawBits/4 {
		t.Fatalf("noise out of expected range: %d/%d flips", diff, RawBits)
	}
}

func TestDatabase(t *testing.T) {
	db := NewDatabase()
	if db.Len() != 0 {
		t.Fatal("new database not empty")
	}
	key := [16]byte{1, 2, 3}
	db.Store(1, 0, key)
	db.Store(1, 1, [16]byte{9})
	if db.Len() != 2 {
		t.Fatalf("Len = %d", db.Len())
	}
	got, ok := db.Lookup(1, 0)
	if !ok || got != key {
		t.Fatal("lookup failed")
	}
	if _, ok := db.Lookup(2, 0); ok {
		t.Fatal("lookup of unknown device succeeded")
	}
}

func TestReferenceDeterministic(t *testing.T) {
	p := &Physical{DeviceID: 77, CircuitID: 3}
	a := p.reference()
	b := p.reference()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("reference readout not deterministic")
		}
	}
}
