package trace

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

type countSink struct{ n atomic.Int64 }

func (s *countSink) Observe(Kind, int, time.Duration, string) { s.n.Add(1) }

// TestSinkInstallMidStreamIsRaceFree pins the satellite fix for the old
// "set Sink before the first Add; it is read without synchronisation"
// contract: sinks must now be installable and removable WHILE other
// goroutines Add — exactly what the span bridge does when a session
// installs its bridge at start against a caller-owned Log. Run under
// -race (CI does), this test is the race detector's probe of the
// publication path.
func TestSinkInstallMidStreamIsRaceFree(t *testing.T) {
	l := NewLog(0)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					l.Add(KindReadback, 1, time.Microsecond, "")
				}
			}
		}()
	}
	var sinks [8]countSink
	for i := range sinks {
		remove := l.AddSink(&sinks[i])
		l.Add(KindConfig, 0, time.Microsecond, "installed")
		remove()
	}
	l.SetSink(&sinks[0])
	l.Add(KindChecksum, -1, time.Microsecond, "")
	l.SetSink(nil)
	close(stop)
	wg.Wait()

	// Every installed sink saw at least the Add issued while it was in
	// place (the concurrent writers may add more).
	for i := range sinks {
		if sinks[i].n.Load() == 0 {
			t.Fatalf("sink %d installed mid-stream observed no events", i)
		}
	}
}

// TestAddSinkRemoveRestoresPriorSet checks the copy-on-write removal:
// removing one installation leaves the others observing.
func TestAddSinkRemoveRestoresPriorSet(t *testing.T) {
	l := NewLog(0)
	var a, b countSink
	removeA := l.AddSink(&a)
	removeB := l.AddSink(&b)
	l.Add(KindConfig, 0, time.Microsecond, "")
	if a.n.Load() != 1 || b.n.Load() != 1 {
		t.Fatalf("both sinks should observe: a=%d b=%d", a.n.Load(), b.n.Load())
	}
	removeA()
	l.Add(KindConfig, 1, time.Microsecond, "")
	if a.n.Load() != 1 {
		t.Fatalf("removed sink kept observing: %d", a.n.Load())
	}
	if b.n.Load() != 2 {
		t.Fatalf("surviving sink missed an event: %d", b.n.Load())
	}
	removeB()
	removeB() // double-remove is a no-op
	l.Add(KindConfig, 2, time.Microsecond, "")
	if b.n.Load() != 2 {
		t.Fatalf("sink observed after removal: %d", b.n.Load())
	}
}
