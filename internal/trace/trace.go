// Package trace records the protocol as a sequence of timestamped
// events — the executable form of the paper's Fig. 9 message diagram.
// Each event carries the action class (A1–A10 of Table 3), the frame it
// concerns and its virtual duration, so a recorded attestation can be
// rendered step by step or aggregated per action.
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Kind classifies an event by the paper's action taxonomy.
type Kind string

// Event kinds (the verifier-observable subset of Table 3's actions).
const (
	KindConfig    Kind = "ICAP_config"
	KindReadback  Kind = "ICAP_readback"
	KindFrameData Kind = "Frame_data"
	KindChecksum  Kind = "MAC_checksum"
	KindMACValue  Kind = "MAC_value"
	KindAppStep   Kind = "App_step"
	KindVerdict   Kind = "verdict"
)

// Event is one protocol step.
type Event struct {
	Seq      int
	At       time.Duration // virtual time when the step started
	Kind     Kind
	Frame    int // frame index, -1 when not applicable
	Duration time.Duration
	Note     string
}

// Sink receives every event a Log records, as it is recorded — the
// bridge from protocol traces into live metrics aggregation
// (internal/obs builds per-Kind histograms out of it). Implementations
// must be safe for concurrent use; the Log calls Observe outside its
// own lock.
type Sink interface {
	Observe(kind Kind, frame int, d time.Duration, note string)
}

// Log accumulates events. It is safe for concurrent use, including
// installing sinks while other goroutines Add.
type Log struct {
	mu     sync.Mutex
	events []Event
	now    time.Duration
	// Cap bounds the retained event count (0 = unbounded); when
	// exceeded, only the aggregate counters keep growing.
	Cap int

	// sinks is the installed sink set, published atomically so SetSink
	// and AddSink are safe mid-stream: Add loads the current set without
	// a lock, installers copy-on-write under sinkMu.
	sinks  atomic.Pointer[[]Sink]
	sinkMu sync.Mutex

	counts map[Kind]int
	totals map[Kind]time.Duration
}

// NewLog returns an empty log retaining at most capEvents events
// (0 = unbounded).
func NewLog(capEvents int) *Log {
	return &Log{
		Cap:    capEvents,
		counts: make(map[Kind]int),
		totals: make(map[Kind]time.Duration),
	}
}

// SetSink replaces the sink set with s (nil clears it). Unlike the
// pre-span field-assignment API, installation is safe at any time —
// even while other goroutines Add — because the sink set is published
// atomically.
func (l *Log) SetSink(s Sink) {
	l.sinkMu.Lock()
	defer l.sinkMu.Unlock()
	if s == nil {
		l.sinks.Store(nil)
		return
	}
	set := []Sink{s}
	l.sinks.Store(&set)
}

// AddSink appends s to the sink set and returns a function removing
// exactly that installation again — the shape the span bridge needs:
// a session installs its bridge at start and uninstalls on return, so
// a caller-owned Log can outlive the session without leaking events
// into a dead span. Both directions are safe mid-stream.
func (l *Log) AddSink(s Sink) (remove func()) {
	l.sinkMu.Lock()
	defer l.sinkMu.Unlock()
	var cur []Sink
	if p := l.sinks.Load(); p != nil {
		cur = *p
	}
	set := make([]Sink, 0, len(cur)+1)
	set = append(set, cur...)
	set = append(set, s)
	l.sinks.Store(&set)
	return func() {
		l.sinkMu.Lock()
		defer l.sinkMu.Unlock()
		var cur []Sink
		if p := l.sinks.Load(); p != nil {
			cur = *p
		}
		out := make([]Sink, 0, len(cur))
		removed := false
		for _, x := range cur {
			if !removed && x == s {
				removed = true
				continue
			}
			out = append(out, x)
		}
		if len(out) == 0 {
			l.sinks.Store(nil)
			return
		}
		l.sinks.Store(&out)
	}
}

// Add records an event of the given kind and advances virtual time.
func (l *Log) Add(kind Kind, frame int, d time.Duration, note string) {
	if p := l.sinks.Load(); p != nil {
		for _, s := range *p {
			s.Observe(kind, frame, d, note)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.Cap == 0 || len(l.events) < l.Cap {
		l.events = append(l.events, Event{
			Seq:      l.counts[kind] + 1,
			At:       l.now,
			Kind:     kind,
			Frame:    frame,
			Duration: d,
			Note:     note,
		})
	}
	l.counts[kind]++
	l.totals[kind] += d
	l.now += d
}

// Events returns a copy of the retained events.
func (l *Log) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, len(l.events))
	copy(out, l.events)
	return out
}

// Count returns how many events of a kind occurred (including ones beyond
// the retention cap).
func (l *Log) Count(kind Kind) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.counts[kind]
}

// Total returns the accumulated virtual duration of a kind.
func (l *Log) Total(kind Kind) time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.totals[kind]
}

// Elapsed returns the log's total virtual time.
func (l *Log) Elapsed() time.Duration {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.now
}

// Render writes the retained events plus a per-kind summary, Fig. 9
// style.
func (l *Log) Render(w io.Writer, headN int) error {
	events := l.Events()
	if headN > 0 && len(events) > headN {
		events = events[:headN]
	}
	for _, e := range events {
		frame := ""
		if e.Frame >= 0 {
			frame = fmt.Sprintf("(frame %d)", e.Frame)
		}
		if _, err := fmt.Fprintf(w, "%12v  %-14s %-14s %10v  %s\n",
			e.At, e.Kind, frame, e.Duration, e.Note); err != nil {
			return err
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	kinds := make([]Kind, 0, len(l.counts))
	for k := range l.counts {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	if _, err := fmt.Fprintf(w, "--- summary ---\n"); err != nil {
		return err
	}
	for _, k := range kinds {
		if _, err := fmt.Fprintf(w, "%-14s × %-6d total %v\n", k, l.counts[k], l.totals[k]); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintf(w, "elapsed (virtual): %v\n", l.now)
	return err
}
