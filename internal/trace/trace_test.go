package trace

import (
	"strings"
	"testing"
	"time"
)

func TestLogAccumulates(t *testing.T) {
	l := NewLog(0)
	l.Add(KindConfig, 10, 8856*time.Nanosecond, "")
	l.Add(KindConfig, 11, 8856*time.Nanosecond, "")
	l.Add(KindReadback, 10, 24044*time.Nanosecond, "")
	if l.Count(KindConfig) != 2 || l.Count(KindReadback) != 1 {
		t.Fatalf("counts: %d %d", l.Count(KindConfig), l.Count(KindReadback))
	}
	if l.Total(KindConfig) != 2*8856*time.Nanosecond {
		t.Fatalf("total: %v", l.Total(KindConfig))
	}
	if l.Elapsed() != (2*8856+24044)*time.Nanosecond {
		t.Fatalf("elapsed: %v", l.Elapsed())
	}
	events := l.Events()
	if len(events) != 3 {
		t.Fatalf("events: %d", len(events))
	}
	if events[1].At != 8856*time.Nanosecond {
		t.Fatalf("event 1 starts at %v", events[1].At)
	}
	if events[1].Seq != 2 {
		t.Fatalf("event 1 seq %d", events[1].Seq)
	}
}

func TestRetentionCap(t *testing.T) {
	l := NewLog(2)
	for i := 0; i < 10; i++ {
		l.Add(KindConfig, i, time.Microsecond, "")
	}
	if len(l.Events()) != 2 {
		t.Fatalf("retained %d events", len(l.Events()))
	}
	if l.Count(KindConfig) != 10 {
		t.Fatalf("count %d despite cap", l.Count(KindConfig))
	}
	if l.Elapsed() != 10*time.Microsecond {
		t.Fatalf("elapsed %v", l.Elapsed())
	}
}

func TestRender(t *testing.T) {
	l := NewLog(0)
	l.Add(KindConfig, 3, time.Microsecond, "")
	l.Add(KindChecksum, -1, 344*time.Nanosecond, "finalize")
	var sb strings.Builder
	if err := l.Render(&sb, 10); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"ICAP_config", "MAC_checksum", "frame 3", "summary", "elapsed"} {
		if !strings.Contains(out, want) {
			t.Errorf("render lacks %q:\n%s", want, out)
		}
	}
	// headN truncation.
	sb.Reset()
	l.Render(&sb, 1)
	if strings.Count(sb.String(), "\n") > 6 {
		t.Error("headN did not truncate")
	}
}
