// Package signature implements the paper's future-work extension: "add a
// signature mechanism to the system when it is not possible to exchange a
// secret key between the prover and the verifier before deployment"
// (paper §8).
//
// The device holds an ECDSA P-256 key pair whose private half is derived
// inside the device (in a real deployment, from the PUF); only the public
// key is enrolled with the verifier. The attestation transcript — every
// frame read back, in order — is hashed with SHA-256 and signed, replacing
// the AES-CMAC when no symmetric key could be pre-shared.
package signature

import (
	"crypto/ecdsa"
	"crypto/elliptic"
	"crypto/rand"
	"crypto/sha256"
	"fmt"
	"io"
)

// Signer holds the device-side private key.
type Signer struct {
	priv *ecdsa.PrivateKey
}

// Generate creates a fresh P-256 key pair. Pass nil to use crypto/rand.
func Generate(rng io.Reader) (*Signer, error) {
	if rng == nil {
		rng = rand.Reader
	}
	priv, err := ecdsa.GenerateKey(elliptic.P256(), rng)
	if err != nil {
		return nil, fmt.Errorf("signature: %w", err)
	}
	return &Signer{priv: priv}, nil
}

// PublicKey returns the uncompressed-point encoding of the public key,
// the blob the verifier stores at enrollment.
func (s *Signer) PublicKey() []byte {
	return elliptic.Marshal(elliptic.P256(), s.priv.PublicKey.X, s.priv.PublicKey.Y)
}

// Sign signs a transcript digest and returns an ASN.1 DER signature.
func (s *Signer) Sign(digest []byte) ([]byte, error) {
	if len(digest) != sha256.Size {
		return nil, fmt.Errorf("signature: digest must be %d bytes, got %d", sha256.Size, len(digest))
	}
	sig, err := ecdsa.SignASN1(rand.Reader, s.priv, digest)
	if err != nil {
		return nil, fmt.Errorf("signature: %w", err)
	}
	return sig, nil
}

// Verifier holds the verifier-side public key.
type Verifier struct {
	pub *ecdsa.PublicKey
}

// NewVerifier parses an enrolled public key blob.
func NewVerifier(pubKey []byte) (*Verifier, error) {
	x, y := elliptic.Unmarshal(elliptic.P256(), pubKey)
	if x == nil {
		return nil, fmt.Errorf("signature: invalid public key encoding")
	}
	return &Verifier{pub: &ecdsa.PublicKey{Curve: elliptic.P256(), X: x, Y: y}}, nil
}

// Verify checks an ASN.1 signature over a transcript digest.
func (v *Verifier) Verify(digest, sig []byte) bool {
	if len(digest) != sha256.Size {
		return false
	}
	return ecdsa.VerifyASN1(v.pub, digest, sig)
}

// Transcript accumulates the attestation transcript hash on either side.
type Transcript struct {
	h interface {
		io.Writer
		Sum([]byte) []byte
		Reset()
	}
}

// NewTranscript returns an empty transcript.
func NewTranscript() *Transcript {
	return &Transcript{h: sha256.New()}
}

// Absorb mixes data (a read-back frame, a nonce) into the transcript.
func (t *Transcript) Absorb(data []byte) {
	t.h.Write(data)
}

// Digest returns the current transcript digest.
func (t *Transcript) Digest() []byte {
	return t.h.Sum(nil)
}

// Reset clears the transcript for a fresh attestation.
func (t *Transcript) Reset() { t.h.Reset() }
