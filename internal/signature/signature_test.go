package signature

import (
	"crypto/sha256"
	"math/rand"
	"testing"
)

func TestSignVerify(t *testing.T) {
	s, err := Generate(nil)
	if err != nil {
		t.Fatal(err)
	}
	v, err := NewVerifier(s.PublicKey())
	if err != nil {
		t.Fatal(err)
	}
	digest := sha256.Sum256([]byte("attestation transcript"))
	sig, err := s.Sign(digest[:])
	if err != nil {
		t.Fatal(err)
	}
	if !v.Verify(digest[:], sig) {
		t.Fatal("valid signature rejected")
	}
	other := sha256.Sum256([]byte("tampered transcript"))
	if v.Verify(other[:], sig) {
		t.Fatal("signature accepted for wrong digest")
	}
	sig[len(sig)-1] ^= 1
	if v.Verify(digest[:], sig) {
		t.Fatal("mangled signature accepted")
	}
}

func TestWrongKeyRejected(t *testing.T) {
	a, _ := Generate(nil)
	b, _ := Generate(nil)
	v, _ := NewVerifier(b.PublicKey())
	digest := sha256.Sum256([]byte("x"))
	sig, _ := a.Sign(digest[:])
	if v.Verify(digest[:], sig) {
		t.Fatal("signature from another device accepted")
	}
}

func TestBadInputs(t *testing.T) {
	s, _ := Generate(nil)
	if _, err := s.Sign([]byte("short")); err == nil {
		t.Error("short digest accepted for signing")
	}
	if _, err := NewVerifier([]byte{1, 2, 3}); err == nil {
		t.Error("garbage public key accepted")
	}
	v, _ := NewVerifier(s.PublicKey())
	if v.Verify([]byte("short"), nil) {
		t.Error("short digest accepted for verification")
	}
}

func TestTranscript(t *testing.T) {
	a := NewTranscript()
	b := NewTranscript()
	chunks := [][]byte{[]byte("frame-0"), []byte("frame-1"), []byte("nonce")}
	for _, c := range chunks {
		a.Absorb(c)
	}
	b.Absorb([]byte("frame-0frame-1nonce"))
	if string(a.Digest()) != string(b.Digest()) {
		t.Fatal("transcript not chunk-invariant")
	}
	a.Reset()
	if string(a.Digest()) == string(b.Digest()) {
		t.Fatal("reset did not clear transcript")
	}
}

func TestDeterministicGenerate(t *testing.T) {
	// Generation from a deterministic reader must be reproducible — the
	// device re-derives its key at boot.
	a, err := Generate(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(rand.New(rand.NewSource(7)))
	if err != nil {
		t.Fatal(err)
	}
	if string(a.PublicKey()) != string(b.PublicKey()) {
		t.Skip("toolchain uses system entropy for ECDSA keygen; determinism not guaranteed")
	}
}
