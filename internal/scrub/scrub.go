// Package scrub implements configuration-memory scrubbing, the
// error-detection use of ICAP readback the paper describes in §2.1.3:
// radiation-induced Single Event Upsets flip configuration bits, and a
// scrubber periodically reads the configuration back, compares it against
// the golden image (through the register-capture mask) and rewrites
// corrupted frames.
//
// SACHa targets malicious changes rather than faults, but the machinery
// is the same readback path; this package makes the fault-detection
// variant available and provides the fault injector used by the
// failure-injection tests.
package scrub

import (
	"fmt"
	"math/bits"
	"math/rand"

	"sacha/internal/device"
	"sacha/internal/fabric"
)

// Flip identifies one upset configuration bit.
type Flip struct {
	Frame int
	Word  int
	Bit   int
}

// Scrubber repairs a fabric against a golden image.
type Scrubber struct {
	Fab    *fabric.Fabric
	Golden *fabric.Image
	Msk    *fabric.Image

	// Scans, FlipsFound and FramesRepaired count scrubber activity.
	Scans          int
	FlipsFound     int
	FramesRepaired int

	// rbScratch is the reused readback buffer: a periodic scrubber runs
	// for the lifetime of the device, so the clean-scan path (no upsets,
	// the overwhelmingly common case) must not allocate at all.
	rbScratch []uint32
}

// New returns a scrubber; the mask is derived from the geometry.
func New(fab *fabric.Fabric, golden *fabric.Image) *Scrubber {
	return &Scrubber{Fab: fab, Golden: golden, Msk: fabric.GenerateMask(fab.Geo)}
}

// scanFlipsHint pre-sizes the flips slice on the first upset found: an
// SEU event usually flips a handful of bits, so one allocation covers
// the realistic scan while the clean path stays allocation-free.
const scanFlipsHint = 64

// Scan reads back every frame and returns the upset bits (positions where
// the masked readback differs from the masked golden image). A clean scan
// allocates nothing.
func (s *Scrubber) Scan() ([]Flip, error) {
	if s.rbScratch == nil {
		s.rbScratch = make([]uint32, device.FrameWords)
	}
	var flips []Flip
	for idx := 0; idx < s.Fab.Geo.NumFrames(); idx++ {
		if err := s.Fab.ReadbackFrameInto(idx, s.rbScratch); err != nil {
			return nil, err
		}
		mask := s.Msk.Frame(idx)
		want := s.Golden.Frame(idx)
		for w := 0; w < device.FrameWords; w++ {
			diff := (s.rbScratch[w] ^ want[w]) & mask[w]
			for diff != 0 {
				bit := bits.TrailingZeros32(diff)
				if flips == nil {
					flips = make([]Flip, 0, scanFlipsHint)
				}
				flips = append(flips, Flip{Frame: idx, Word: w, Bit: bit})
				diff &= diff - 1 // clear the lowest set bit
			}
		}
	}
	s.Scans++
	s.FlipsFound += len(flips)
	return flips, nil
}

// Repair rewrites every frame that contains an upset with its golden
// content, as an ICAP-based scrubber does.
func (s *Scrubber) Repair(flips []Flip) error {
	done := map[int]bool{}
	for _, f := range flips {
		if done[f.Frame] {
			continue
		}
		done[f.Frame] = true
		if err := s.Fab.WriteFrame(f.Frame, s.Golden.Frame(f.Frame)); err != nil {
			return fmt.Errorf("scrub: repairing frame %d: %w", f.Frame, err)
		}
		s.FramesRepaired++
	}
	return nil
}

// ScrubOnce scans and repairs, returning what was found.
func (s *Scrubber) ScrubOnce() ([]Flip, error) {
	flips, err := s.Scan()
	if err != nil {
		return nil, err
	}
	return flips, s.Repair(flips)
}

// InjectSEUs flips n random configuration bits in the fabric, modelling
// single event upsets. It returns the injected positions (which may
// include masked capture-bit positions — a real particle does not care).
func InjectSEUs(fab *fabric.Fabric, rng *rand.Rand, n int) []Flip {
	flips := make([]Flip, 0, n)
	for i := 0; i < n; i++ {
		f := Flip{
			Frame: rng.Intn(fab.Geo.NumFrames()),
			Word:  rng.Intn(device.FrameWords),
			Bit:   rng.Intn(32),
		}
		fab.Mem.Frame(f.Frame)[f.Word] ^= 1 << uint(f.Bit)
		flips = append(flips, f)
	}
	return flips
}
