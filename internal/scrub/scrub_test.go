package scrub

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/netlist"
)

// loadedFabric builds a fabric configured with a golden image holding a
// placed design.
func loadedFabric(t testing.TB) (*fabric.Fabric, *fabric.Image, *fabric.Placement) {
	t.Helper()
	geo := device.SmallLX()
	golden := fabric.NewImage(geo)
	fabric.FillStatic(golden, fabric.StatRegion(geo).Frames(), 3)
	p, err := fabric.PlaceDesign(golden, fabric.AppRegion(geo), netlist.Counter(6))
	if err != nil {
		t.Fatal(err)
	}
	fab := fabric.New(geo)
	for i := 0; i < geo.NumFrames(); i++ {
		if err := fab.WriteFrame(i, golden.Frame(i)); err != nil {
			t.Fatal(err)
		}
	}
	return fab, golden, p
}

func TestCleanFabricScansClean(t *testing.T) {
	fab, golden, _ := loadedFabric(t)
	s := New(fab, golden)
	flips, err := s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(flips) != 0 {
		t.Fatalf("clean fabric reported %d upsets", len(flips))
	}
	if s.Scans != 1 {
		t.Fatalf("scan counter %d", s.Scans)
	}
}

func TestInjectedSEUsFoundAndRepaired(t *testing.T) {
	fab, golden, _ := loadedFabric(t)
	s := New(fab, golden)
	rng := rand.New(rand.NewSource(1))
	injected := InjectSEUs(fab, rng, 25)

	flips, err := s.ScrubOnce()
	if err != nil {
		t.Fatal(err)
	}
	// Every injected flip on an unmasked bit must be found.
	mask := fabric.GenerateMask(fab.Geo)
	for _, in := range injected {
		if mask.Frame(in.Frame)[in.Word]&(1<<uint(in.Bit)) == 0 {
			continue // capture bit: invisible to configuration scrubbing
		}
		found := false
		for _, f := range flips {
			if f == in {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("injected upset %+v not found", in)
		}
	}
	// After repair, a second scan is clean.
	flips, err = s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(flips) != 0 {
		t.Fatalf("%d upsets survive repair", len(flips))
	}
	if s.FramesRepaired == 0 {
		t.Fatal("no frames repaired")
	}
}

func TestRepairRestoresFunctionality(t *testing.T) {
	fab, golden, p := loadedFabric(t)
	region := fabric.AppRegion(fab.Geo)

	// Break the design: flip bits across its frames until the decoded
	// behaviour diverges, then scrub and verify behaviour is restored.
	rng := rand.New(rand.NewSource(2))
	appFrames := region.Frames()
	for i := 0; i < 200; i++ {
		idx := appFrames[rng.Intn(len(appFrames))]
		fab.Mem.Frame(idx)[rng.Intn(device.FrameWords)] ^= 1 << uint(rng.Intn(32))
	}
	s := New(fab, golden)
	if _, err := s.ScrubOnce(); err != nil {
		t.Fatal(err)
	}
	live, err := fab.Live(region)
	if err != nil {
		t.Fatalf("design not decodable after repair: %v", err)
	}
	if err := live.InputPin(p, "en", 1); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := live.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if v, _ := live.OutputPin(p, "q0"); v != 1 {
		t.Fatal("repaired design does not count (5 -> q0 should be 1)")
	}
}

func TestLiveStateDoesNotTriggerScrubbing(t *testing.T) {
	// Running the application changes flip-flop state, which appears in
	// readback; the mask must keep the scrubber quiet about it.
	fab, golden, p := loadedFabric(t)
	live, err := fab.Live(fabric.AppRegion(fab.Geo))
	if err != nil {
		t.Fatal(err)
	}
	live.InputPin(p, "en", 1)
	for i := 0; i < 9; i++ {
		live.Step()
	}
	s := New(fab, golden)
	flips, err := s.Scan()
	if err != nil {
		t.Fatal(err)
	}
	if len(flips) != 0 {
		t.Fatalf("running application reported as %d upsets", len(flips))
	}
}

// TestCleanScanZeroAlloc pins the satellite requirement: the clean-scan
// path — the steady state of a periodic scrubber — performs zero heap
// allocations once the scrubber's scratch buffer is warm.
func TestCleanScanZeroAlloc(t *testing.T) {
	fab, golden, _ := loadedFabric(t)
	s := New(fab, golden)
	if _, err := s.Scan(); err != nil { // warm the scratch buffer
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(5, func() {
		flips, err := s.Scan()
		if err != nil {
			t.Fatal(err)
		}
		if flips != nil {
			t.Fatalf("clean scan returned %d flips", len(flips))
		}
	})
	if allocs != 0 {
		t.Fatalf("clean scan allocates %.1f times per run, want 0", allocs)
	}
}

func BenchmarkCleanScan(b *testing.B) {
	fab, golden, _ := loadedFabric(b)
	s := New(fab, golden)
	if _, err := s.Scan(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Scan(); err != nil {
			b.Fatal(err)
		}
	}
}

// Property: scrubbing after n injected SEUs always converges to a clean
// scan in one round.
func TestQuickScrubConverges(t *testing.T) {
	fab, golden, _ := loadedFabric(t)
	s := New(fab, golden)
	fn := func(seed int64, n8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		InjectSEUs(fab, rng, int(n8%40)+1)
		if _, err := s.ScrubOnce(); err != nil {
			return false
		}
		flips, err := s.Scan()
		return err == nil && len(flips) == 0
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
