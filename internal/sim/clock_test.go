package sim

import (
	"strings"
	"testing"
	"time"
)

func TestClockElapsed(t *testing.T) {
	c := NewClock("icap", ICAPClockHz)
	c.Tick(100) // 100 cycles at 100 MHz = 1 µs
	if got := c.Elapsed(); got != time.Microsecond {
		t.Errorf("Elapsed = %v, want 1µs", got)
	}
	if c.Cycles() != 100 {
		t.Errorf("Cycles = %d", c.Cycles())
	}
	c.Reset()
	if c.Cycles() != 0 || c.Elapsed() != 0 {
		t.Error("Reset failed")
	}
}

func TestClockElapsedLarge(t *testing.T) {
	c := NewClock("rx", RXClockHz)
	c.Tick(125_000_000 * 3) // exactly 3 s
	if got := c.Elapsed(); got != 3*time.Second {
		t.Errorf("Elapsed = %v, want 3s", got)
	}
}

func TestClockPeriod(t *testing.T) {
	c := NewClock("tx", TXClockHz)
	if got := c.PeriodNs(); got != 8.0 {
		t.Errorf("PeriodNs = %v, want 8.0 (Gigabit byte clock)", got)
	}
	if NewClock("icap", ICAPClockHz).PeriodNs() != 10.0 {
		t.Error("ICAP period should be 10 ns")
	}
}

func TestClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for zero frequency")
		}
	}()
	NewClock("bad", 0)
}

func TestClockNegativeTickPanics(t *testing.T) {
	c := NewClock("x", 1000)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative tick")
		}
	}()
	c.Tick(-1)
}

func TestTimeline(t *testing.T) {
	tl := NewTimeline()
	tl.Add("wire", 5*time.Millisecond)
	tl.Add("icap", 2*time.Millisecond)
	tl.Add("wire", 3*time.Millisecond)
	if tl.Total() != 10*time.Millisecond {
		t.Errorf("Total = %v", tl.Total())
	}
	if tl.Tag("wire") != 8*time.Millisecond || tl.Tag("icap") != 2*time.Millisecond {
		t.Errorf("tags: wire=%v icap=%v", tl.Tag("wire"), tl.Tag("icap"))
	}
	tags := tl.Tags()
	if len(tags) != 2 || tags[0] != "icap" || tags[1] != "wire" {
		t.Errorf("Tags = %v", tags)
	}
	if s := tl.String(); !strings.Contains(s, "wire") || !strings.Contains(s, "total") {
		t.Errorf("String = %q", s)
	}
	tl.Reset()
	if tl.Total() != 0 || len(tl.Tags()) != 0 {
		t.Error("Reset failed")
	}
}

func TestTimelineNegativePanics(t *testing.T) {
	tl := NewTimeline()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	tl.Add("x", -time.Second)
}
