package prover

import (
	"bytes"
	"testing"

	"sacha/internal/protocol"
)

// sendSeqAll wraps m in a request envelope and pushes it through
// HandleBytesAll, returning every released wire response.
func sendSeqAll(t *testing.T, d *Device, seq uint32, m *protocol.Message) [][]byte {
	t.Helper()
	inner, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	wire, err := protocol.WrapReq(seq, inner).Encode()
	if err != nil {
		t.Fatal(err)
	}
	resps, err := d.HandleBytesAll(wire)
	if err != nil {
		t.Fatal(err)
	}
	return resps
}

// decodeSeqResp unwraps one wire response and checks its envelope seq.
func decodeSeqResp(t *testing.T, wire []byte, wantSeq uint32) *protocol.Message {
	t.Helper()
	env, err := protocol.Decode(wire)
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != protocol.MsgSeqResp || env.Seq != wantSeq {
		t.Fatalf("envelope %v seq %d, want Seq_resp seq %d", env.Type, env.Seq, wantSeq)
	}
	in, err := protocol.Decode(env.Inner)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

// TestSeqOutOfOrderBufferedAndDrained: future sequences are buffered
// without executing (no response), and filling the gap releases the whole
// run in order — the device-side half of the windowed pipeline.
func TestSeqOutOfOrderBufferedAndDrained(t *testing.T) {
	d := newDevice(t)
	if got := sendSeqAll(t, d, 1, protocol.Readback(0)); len(got) != 1 {
		t.Fatalf("base seq released %d responses, want 1", len(got))
	}
	// Deliver 3 and 4 before 2: both must be buffered silently.
	if got := sendSeqAll(t, d, 3, protocol.Readback(2)); len(got) != 0 {
		t.Fatalf("future seq 3 released %d responses, want 0", len(got))
	}
	if got := sendSeqAll(t, d, 4, protocol.Readback(3)); len(got) != 0 {
		t.Fatalf("future seq 4 released %d responses, want 0", len(got))
	}
	// Seq 2 fills the gap: 2, 3 and 4 come back together, in order.
	got := sendSeqAll(t, d, 2, protocol.Readback(1))
	if len(got) != 3 {
		t.Fatalf("gap fill released %d responses, want 3", len(got))
	}
	for i, wire := range got {
		in := decodeSeqResp(t, wire, uint32(2+i))
		if in.Type != protocol.MsgFrameData || in.FrameIndex != uint32(1+i) {
			t.Fatalf("release %d: %v frame %d", i, in.Type, in.FrameIndex)
		}
	}
}

// TestSeqOutOfOrderMACMatchesInOrder: an out-of-order arrival order must
// leave the MAC identical to a clean in-order run — the buffered
// execution happens in sequence order, never arrival order.
func TestSeqOutOfOrderMACMatchesInOrder(t *testing.T) {
	d1 := newDevice(t)
	sendSeqAll(t, d1, 1, protocol.Readback(0))
	sendSeqAll(t, d1, 3, protocol.Readback(2)) // buffered
	sendSeqAll(t, d1, 2, protocol.Readback(1)) // executes 2 then 3
	sum1 := decodeSeqResp(t, sendSeqAll(t, d1, 4, protocol.Checksum())[0], 4)

	d2 := newDevice(t)
	for i, m := range []*protocol.Message{protocol.Readback(0), protocol.Readback(1), protocol.Readback(2)} {
		sendSeqAll(t, d2, uint32(i+1), m)
	}
	sum2 := decodeSeqResp(t, sendSeqAll(t, d2, 4, protocol.Checksum())[0], 4)

	if sum1.Type != protocol.MsgMACValue || sum2.Type != protocol.MsgMACValue {
		t.Fatalf("checksums %v / %v", sum1.Type, sum2.Type)
	}
	if sum1.MAC != sum2.MAC {
		t.Fatal("out-of-order arrival changed the MAC — execution not in sequence order")
	}
}

// TestSeqCacheHoldsWindowOfResponses: with a full pipeline the verifier
// may re-send any outstanding sequence; every one of the last SeqWindow
// responses must replay byte-identically from cache.
func TestSeqCacheHoldsWindowOfResponses(t *testing.T) {
	d := newDevice(t)
	firsts := make(map[uint32][]byte)
	n := uint32(SeqWindow)
	for s := uint32(1); s <= n; s++ {
		got := sendSeqAll(t, d, s, protocol.Readback(int(s)%16))
		if len(got) != 1 {
			t.Fatalf("seq %d released %d responses", s, len(got))
		}
		firsts[s] = got[0]
	}
	for s := uint32(1); s <= n; s++ {
		got := sendSeqAll(t, d, s, protocol.Readback(int(s)%16))
		if len(got) != 1 || !bytes.Equal(got[0], firsts[s]) {
			t.Fatalf("seq %d replay differs from cached response", s)
		}
	}
}

// TestSeqCacheEviction: responses beyond SeqCacheEntries age out; an aged
// sequence is answered with a stale Error, and the retained recent ones
// still replay.
func TestSeqCacheEviction(t *testing.T) {
	d := newDevice(t)
	total := uint32(SeqCacheEntries + 8)
	for s := uint32(1); s <= total; s++ {
		sendSeqAll(t, d, s, protocol.Readback(0))
	}
	in := decodeSeqResp(t, sendSeqAll(t, d, 1, protocol.Readback(0))[0], 1)
	if in.Type != protocol.MsgError {
		t.Fatalf("evicted seq 1 answered %v, want Error", in.Type)
	}
	in = decodeSeqResp(t, sendSeqAll(t, d, total, protocol.Readback(0))[0], total)
	if in.Type != protocol.MsgFrameData {
		t.Fatalf("recent seq %d answered %v, want cached FrameData", total, in.Type)
	}
}

// TestSeqBeyondWindowRejected: a sequence further ahead than SeqWindow is
// answered with an Error instead of being buffered — the bound that keeps
// a hostile peer from growing the reorder buffer without limit.
func TestSeqBeyondWindowRejected(t *testing.T) {
	d := newDevice(t)
	sendSeqAll(t, d, 1, protocol.Readback(0))
	got := sendSeqAll(t, d, 1+SeqWindow+1, protocol.Readback(1))
	if len(got) != 1 {
		t.Fatalf("beyond-window seq released %d responses, want 1 error", len(got))
	}
	in := decodeSeqResp(t, got[0], 1+SeqWindow+1)
	if in.Type != protocol.MsgError {
		t.Fatalf("beyond-window seq answered %v, want Error", in.Type)
	}
	// The sequence space is unharmed: the next in-order seq executes.
	in = decodeSeqResp(t, sendSeqAll(t, d, 2, protocol.Readback(1))[0], 2)
	if in.Type != protocol.MsgFrameData {
		t.Fatalf("seq 2 after rejected future seq answered %v", in.Type)
	}
}

// TestSeqWindowCoversVerifierBound: the verifier clamps its pipeline to
// attestation.MaxWindow; the prover must buffer at least that far ahead
// and cache at least that many responses, or a full window wedges.
// (attestation imports prover nowhere, so the bound is pinned here by
// value rather than by symbol.)
func TestSeqWindowCoversVerifierBound(t *testing.T) {
	const verifierMaxWindow = 64 // attestation.MaxWindow
	if SeqWindow < verifierMaxWindow {
		t.Fatalf("SeqWindow %d < verifier MaxWindow %d", SeqWindow, verifierMaxWindow)
	}
	if SeqCacheEntries < verifierMaxWindow {
		t.Fatalf("SeqCacheEntries %d < verifier MaxWindow %d", SeqCacheEntries, verifierMaxWindow)
	}
}
