package prover

import (
	"math/rand"

	"sacha/internal/puf"
)

// PUFKey derives the MAC key from the device's PUF at every use — the
// key never exists outside the device and cannot be cloned (paper
// §5.2.1, first option: PUF in the static partition; with a non-zero
// CircuitID, the second option: a PUF circuit shipped in the dynamic
// partition).
type PUFKey struct {
	Phys   *puf.Physical
	Helper puf.HelperData
	// Rng drives the readout noise; defaults to a fixed-seed source.
	Rng *rand.Rand
}

// Key re-extracts the key from a fresh noisy PUF readout.
func (p *PUFKey) Key() ([16]byte, error) {
	rng := p.Rng
	if rng == nil {
		rng = rand.New(rand.NewSource(int64(p.Phys.DeviceID)))
	}
	return puf.Extract(p.Phys, p.Helper, rng)
}

// Describe names the source.
func (p *PUFKey) Describe() string {
	if p.Phys.CircuitID == 0 {
		return "StatPart PUF"
	}
	return "DynPart PUF"
}
