package prover

import (
	"testing"

	"sacha/internal/device"
)

// BenchmarkAppendFrameBytes pins the device-side half of the
// zero-allocation contract: serialising a read-back frame into the
// device's reused scratch buffer must not allocate (the MAC and the
// transcript copy what they absorb, so the reuse is safe).
func BenchmarkAppendFrameBytes(b *testing.B) {
	words := make([]uint32, device.FrameWords)
	for i := range words {
		words[i] = uint32(i * 40503)
	}
	scratch := make([]byte, 0, device.FrameWords*4)

	if avg := testing.AllocsPerRun(200, func() {
		scratch = appendFrameBytes(scratch[:0], words)
	}); avg != 0 {
		b.Fatalf("frame serialisation allocates %.1f objects per frame, want 0", avg)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scratch = appendFrameBytes(scratch[:0], words)
	}
}
