package prover

import (
	"math/rand"
	"testing"

	"sacha/internal/bitstream"
	"sacha/internal/channel"
	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/protocol"
	"sacha/internal/puf"
)

// testBootMem synthesises a static boot image without importing core
// (which depends on this package).
func testBootMem(geo *device.Geometry) *bitstream.Partial {
	statFrames := fabric.StatRegion(geo).Frames()
	im := fabric.NewImage(geo)
	fabric.FillStatic(im, statFrames, 1)
	return bitstream.FromImage(im, statFrames)
}

func newDevice(t testing.TB) *Device {
	t.Helper()
	geo := device.SmallLX()
	d, err := New(Config{
		Geo:     geo,
		BootMem: testBootMem(geo),
		Key:     RegisterKey{1, 2, 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PowerOn(); err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewValidation(t *testing.T) {
	geo := device.SmallLX()
	boot := testBootMem(geo)
	if _, err := New(Config{BootMem: boot, Key: RegisterKey{}}); err == nil {
		t.Error("missing geometry accepted")
	}
	if _, err := New(Config{Geo: geo, Key: RegisterKey{}}); err == nil {
		t.Error("missing BootMem accepted")
	}
	if _, err := New(Config{Geo: geo, BootMem: boot}); err == nil {
		t.Error("missing key source accepted")
	}
}

func TestBoundedBootMemEnforced(t *testing.T) {
	// A BootMem large enough to hold the partial bitstream violates the
	// §5.2.1 size argument and must be rejected.
	geo := device.SmallLX()
	im := fabric.NewImage(geo)
	all := make([]int, geo.NumFrames())
	for i := range all {
		all[i] = i
	}
	huge := bitstream.FromImage(im, all)
	if _, err := New(Config{Geo: geo, BootMem: huge, Key: RegisterKey{}}); err == nil {
		t.Fatal("oversized BootMem accepted")
	}
}

func TestCommandsBeforePowerOn(t *testing.T) {
	geo := device.SmallLX()
	d, err := New(Config{Geo: geo, BootMem: testBootMem(geo), Key: RegisterKey{}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.Handle(protocol.Readback(0)); err == nil {
		t.Fatal("command accepted before power-on")
	}
}

func TestPowerOnLoadsStatMem(t *testing.T) {
	d := newDevice(t)
	statFrames := fabric.StatRegion(d.Geo).Frames()
	boot := testBootMem(d.Geo)
	for i, idx := range statFrames {
		want := boot.Frames[i].Words
		got := d.Fabric.Mem.Frame(idx)
		for w := range want {
			if got[w] != want[w] {
				t.Fatalf("StatMem frame %d word %d not booted", idx, w)
			}
		}
	}
}

func TestChecksumBeforeReadbackRejected(t *testing.T) {
	d := newDevice(t)
	if _, err := d.Handle(protocol.Checksum()); err == nil {
		t.Fatal("MAC_checksum before readback accepted")
	}
}

func TestSigWithoutSignerRejected(t *testing.T) {
	d := newDevice(t)
	if _, err := d.Handle(&protocol.Message{Type: protocol.MsgSigChecksum}); err == nil {
		t.Fatal("Sig_checksum without provisioned signer accepted")
	}
}

func TestReadbackSequenceProducesStableMAC(t *testing.T) {
	// Reading the same frames in the same order twice (with checksum in
	// between, which resets the MAC) must give identical tags.
	d := newDevice(t)
	runOnce := func() [16]byte {
		for idx := 0; idx < 5; idx++ {
			resp, err := d.Handle(protocol.Readback(idx))
			if err != nil {
				t.Fatal(err)
			}
			if resp.Type != protocol.MsgFrameData || resp.FrameIndex != uint32(idx) {
				t.Fatalf("unexpected response %v", resp.Type)
			}
		}
		sum, err := d.Handle(protocol.Checksum())
		if err != nil {
			t.Fatal(err)
		}
		return sum.MAC
	}
	a := runOnce()
	b := runOnce()
	if a != b {
		t.Fatal("identical readback sequences produced different MACs")
	}
}

func TestConfigChangesMAC(t *testing.T) {
	d := newDevice(t)
	dyn := fabric.DynRegion(d.Geo).Frames()
	target := dyn[0]

	mac := func() [16]byte {
		resp, err := d.Handle(protocol.Readback(target))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp
		sum, err := d.Handle(protocol.Checksum())
		if err != nil {
			t.Fatal(err)
		}
		return sum.MAC
	}
	before := mac()
	words := make([]uint32, device.FrameWords)
	words[3] = 0xDEAD
	if _, err := d.Handle(protocol.Config(target, words)); err != nil {
		t.Fatal(err)
	}
	after := mac()
	if before == after {
		t.Fatal("configuration change did not change the MAC")
	}
}

func TestConfigBatch(t *testing.T) {
	d := newDevice(t)
	dyn := fabric.DynRegion(d.Geo).Frames()
	m := &protocol.Message{Type: protocol.MsgICAPConfigBatch}
	for k := 0; k < 4; k++ {
		words := make([]uint32, device.FrameWords)
		words[0] = uint32(k + 1)
		m.Batch = append(m.Batch, protocol.FrameRecord{Index: uint32(dyn[k]), Words: words})
	}
	if _, err := d.Handle(m); err != nil {
		t.Fatal(err)
	}
	for k := 0; k < 4; k++ {
		if d.Fabric.Mem.Frame(dyn[k])[0] != uint32(k+1) {
			t.Fatalf("batch frame %d not applied", k)
		}
	}
}

func TestConfigBatchBufferLimit(t *testing.T) {
	// A batch beyond the StatPart frame buffer violates the §6.1
	// constraint and must be rejected.
	d := newDevice(t)
	m := &protocol.Message{Type: protocol.MsgICAPConfigBatch}
	for k := 0; k <= FrameBufferFrames; k++ {
		m.Batch = append(m.Batch, protocol.FrameRecord{Index: uint32(k), Words: make([]uint32, device.FrameWords)})
	}
	if _, err := d.Handle(m); err == nil {
		t.Fatal("over-buffer batch accepted")
	}
}

func TestRestrictedControllerRejectsStaticWrites(t *testing.T) {
	// The Chaves et al. policy (paper §4.3): the ICAP controller only
	// accepts configuration into the dynamic partition.
	geo := device.SmallLX()
	d, err := New(Config{
		Geo:                 geo,
		BootMem:             testBootMem(geo),
		Key:                 RegisterKey{},
		RestrictConfigToDyn: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.PowerOn(); err != nil {
		t.Fatal(err)
	}
	statFrame := fabric.StatRegion(geo).Frames()[0]
	if _, err := d.Handle(protocol.Config(statFrame, make([]uint32, device.FrameWords))); err == nil {
		t.Fatal("restricted controller accepted a static-partition write")
	}
	dynFrame := fabric.DynRegion(geo).Frames()[0]
	if _, err := d.Handle(protocol.Config(dynFrame, make([]uint32, device.FrameWords))); err != nil {
		t.Fatalf("restricted controller rejected a dynamic write: %v", err)
	}
	// Batches are checked frame by frame.
	m := &protocol.Message{Type: protocol.MsgICAPConfigBatch, Batch: []protocol.FrameRecord{
		{Index: uint32(dynFrame), Words: make([]uint32, device.FrameWords)},
		{Index: uint32(statFrame), Words: make([]uint32, device.FrameWords)},
	}}
	if _, err := d.Handle(m); err == nil {
		t.Fatal("restricted controller accepted a mixed batch")
	}
}

func TestHandleBytesTurnsFailuresIntoErrors(t *testing.T) {
	d := newDevice(t)
	// Garbage input.
	resp, err := d.HandleBytes([]byte{0xFF, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := protocol.Decode(resp)
	if err != nil || m.Type != protocol.MsgError {
		t.Fatalf("garbage did not yield Error message: %v %v", m, err)
	}
	// Valid message, invalid semantics (readback out of range).
	raw, _ := protocol.Readback(1 << 30).Encode()
	resp, err = d.HandleBytes(raw)
	if err != nil {
		t.Fatal(err)
	}
	m, _ = protocol.Decode(resp)
	if m.Type != protocol.MsgError {
		t.Fatalf("out-of-range readback yielded %v", m.Type)
	}
}

func TestServeClosesCleanly(t *testing.T) {
	d := newDevice(t)
	a, b := channel.SimPair(channel.SimConfig{})
	done := make(chan error, 1)
	go func() { done <- d.Serve(b) }()
	raw, _ := protocol.Readback(0).Encode()
	if err := a.Send(raw); err != nil {
		t.Fatal(err)
	}
	if _, err := a.Recv(); err != nil {
		t.Fatal(err)
	}
	a.Close()
	if err := <-done; err != nil {
		t.Fatalf("serve returned %v on clean close", err)
	}
}

func TestPUFKeyDescribe(t *testing.T) {
	stat := &PUFKey{Phys: &puf.Physical{DeviceID: 1}}
	dyn := &PUFKey{Phys: &puf.Physical{DeviceID: 1, CircuitID: 2}}
	if stat.Describe() != "StatPart PUF" || dyn.Describe() != "DynPart PUF" {
		t.Errorf("descriptions: %q %q", stat.Describe(), dyn.Describe())
	}
	if RegisterKey.Describe(RegisterKey{}) == "" {
		t.Error("RegisterKey description empty")
	}
	// Default RNG path.
	phys := &puf.Physical{DeviceID: 9, NoiseProb: 100}
	enr := puf.Enroll(phys, rand.New(rand.NewSource(1)))
	k := &PUFKey{Phys: phys, Helper: enr.Helper}
	got, err := k.Key()
	if err != nil {
		t.Fatal(err)
	}
	if got != enr.Key {
		t.Fatal("PUF key extraction with default RNG failed")
	}
}

func TestAppStepWithoutAppIsHarmless(t *testing.T) {
	// An empty dynamic partition has no flip-flops; stepping it is a
	// no-op, not a crash.
	d := newDevice(t)
	resp, err := d.Handle(&protocol.Message{Type: protocol.MsgAppStep, Steps: 3})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Type != protocol.MsgAck {
		t.Fatalf("got %v", resp.Type)
	}
}
