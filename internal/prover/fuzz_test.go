package prover

import (
	"sync"
	"testing"

	"sacha/internal/device"
	"sacha/internal/protocol"
)

// The fuzzed device is shared across iterations (device construction and
// power-on dominate the per-exec cost otherwise). That makes the target
// stateful — deliberately so: sequences of inputs exercise the envelope
// cache and MAC state machine, which single-shot inputs cannot reach.
var (
	fuzzDevOnce sync.Once
	fuzzDev     *Device
	fuzzDevErr  error
)

func fuzzDevice() (*Device, error) {
	fuzzDevOnce.Do(func() {
		geo := device.SmallLX()
		d, err := New(Config{
			Geo:     geo,
			BootMem: testBootMem(geo),
			Key:     RegisterKey{1, 2, 3},
		})
		if err != nil {
			fuzzDevErr = err
			return
		}
		if err := d.PowerOn(); err != nil {
			fuzzDevErr = err
			return
		}
		fuzzDev = d
	})
	return fuzzDev, fuzzDevErr
}

// FuzzHandleBytes feeds arbitrary bytes to the device's wire entry point.
// A deployed device must never crash or hard-fail on hostile input: every
// response must be nil (fire-and-forget command) or a well-formed
// protocol message.
func FuzzHandleBytes(f *testing.F) {
	words := make([]uint32, device.FrameWords)
	for i := range words {
		words[i] = uint32(i)
	}
	seed := func(m *protocol.Message) {
		wire, err := m.Encode()
		if err != nil {
			f.Fatal(err)
		}
		f.Add(wire)
	}
	seed(protocol.Readback(0))
	seed(protocol.Readback(1 << 22))
	seed(protocol.Config(3700, words)) // out of range for SmallLX
	seed(protocol.Config(100, words))
	seed(protocol.Checksum())
	seed(&protocol.Message{Type: protocol.MsgAppStep, Steps: 2})
	seed(&protocol.Message{Type: protocol.MsgSigChecksum})
	seed(&protocol.Message{Type: protocol.MsgICAPConfigBatch,
		Batch: []protocol.FrameRecord{{Index: 100, Words: words}}})
	rb, err := protocol.Readback(0).Encode()
	if err != nil {
		f.Fatal(err)
	}
	seed(protocol.WrapReq(1, rb))
	seed(protocol.WrapReq(0xFFFFFFFF, rb))
	// Responses the device should never receive, and raw garbage.
	seed(&protocol.Message{Type: protocol.MsgMACValue})
	f.Add([]byte{})
	f.Add([]byte{0x00})
	f.Add([]byte{0xFF, 0x01, 0x02})
	f.Add([]byte{byte(protocol.MsgSeqReq), 0, 0, 0, 1, 0, 0, 0, 0, 9})

	f.Fuzz(func(t *testing.T, data []byte) {
		d, err := fuzzDevice()
		if err != nil {
			t.Fatal(err)
		}
		resp, err := d.HandleBytes(data)
		if err != nil {
			t.Fatalf("input %x: hard failure %v", data, err)
		}
		if resp == nil {
			return
		}
		if _, err := protocol.Decode(resp); err != nil {
			t.Fatalf("input %x: malformed response %x: %v", data, resp, err)
		}
	})
}
