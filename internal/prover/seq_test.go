package prover

import (
	"bytes"
	"testing"

	"sacha/internal/protocol"
)

// sendSeq wraps m in a request envelope with the given sequence number,
// pushes it through HandleBytes and returns the decoded inner response.
func sendSeq(t *testing.T, d *Device, seq uint32, m *protocol.Message) (*protocol.Message, []byte) {
	t.Helper()
	inner, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	wire, err := protocol.WrapReq(seq, inner).Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := d.HandleBytes(wire)
	if err != nil {
		t.Fatal(err)
	}
	env, err := protocol.Decode(resp)
	if err != nil {
		t.Fatal(err)
	}
	if env.Type != protocol.MsgSeqResp {
		t.Fatalf("response type %v, want Seq_resp", env.Type)
	}
	if env.Seq != seq {
		t.Fatalf("response seq %d, want %d", env.Seq, seq)
	}
	in, err := protocol.Decode(env.Inner)
	if err != nil {
		t.Fatal(err)
	}
	return in, resp
}

func TestSeqDuplicateReplaysCachedResponse(t *testing.T) {
	d := newDevice(t)
	first, wire1 := sendSeq(t, d, 1, protocol.Readback(0))
	if first.Type != protocol.MsgFrameData {
		t.Fatalf("got %v", first.Type)
	}
	// The duplicated request must return the byte-identical cached
	// response without re-executing the readback.
	dup, wire2 := sendSeq(t, d, 1, protocol.Readback(0))
	if dup.Type != protocol.MsgFrameData {
		t.Fatalf("duplicate got %v", dup.Type)
	}
	if !bytes.Equal(wire1, wire2) {
		t.Fatal("duplicate response differs from cached response")
	}
}

func TestSeqDuplicateStepsMACOnce(t *testing.T) {
	// The MAC after {readback(0), duplicate readback(0), checksum} must
	// equal a clean {readback(0), checksum} run: the duplicate is replayed
	// from cache, not MACed again.
	d1 := newDevice(t)
	sendSeq(t, d1, 1, protocol.Readback(0))
	sendSeq(t, d1, 1, protocol.Readback(0)) // wire-duplicated request
	sum1, _ := sendSeq(t, d1, 2, protocol.Checksum())
	if sum1.Type != protocol.MsgMACValue {
		t.Fatalf("got %v", sum1.Type)
	}

	d2 := newDevice(t)
	resp, err := d2.Handle(protocol.Readback(0))
	if err != nil || resp.Type != protocol.MsgFrameData {
		t.Fatal(err)
	}
	sum2, err := d2.Handle(protocol.Checksum())
	if err != nil {
		t.Fatal(err)
	}
	if sum1.MAC != sum2.MAC {
		t.Fatal("duplicated readback changed the MAC — request not idempotent")
	}
}

func TestSeqStaleSequenceRejected(t *testing.T) {
	d := newDevice(t)
	sendSeq(t, d, 5, protocol.Readback(0))
	stale, _ := sendSeq(t, d, 3, protocol.Readback(1))
	if stale.Type != protocol.MsgError {
		t.Fatalf("stale sequence answered with %v, want Error", stale.Type)
	}
	// The cache still holds sequence 5.
	again, _ := sendSeq(t, d, 5, protocol.Readback(0))
	if again.Type != protocol.MsgFrameData {
		t.Fatalf("cache clobbered by stale request: %v", again.Type)
	}
}

func TestSeqConfigAcked(t *testing.T) {
	// Plain ICAP_config has no response; enveloped it must be acked so
	// the retry layer can detect delivery.
	d := newDevice(t)
	dynStart := 100
	words := make([]uint32, 81)
	resp, _ := sendSeq(t, d, 1, protocol.Config(dynStart, words))
	if resp.Type != protocol.MsgAck {
		t.Fatalf("enveloped config answered with %v, want Ack", resp.Type)
	}
}

func TestSeqErrorsAreWrapped(t *testing.T) {
	// A semantic failure inside an envelope comes back as a wrapped Error,
	// so the verifier can tell "command failed" from "transport garbage".
	d := newDevice(t)
	resp, _ := sendSeq(t, d, 1, protocol.Readback(1<<30))
	if resp.Type != protocol.MsgError {
		t.Fatalf("got %v", resp.Type)
	}
}

func TestPowerOnResetsSeqCache(t *testing.T) {
	d := newDevice(t)
	sendSeq(t, d, 9, protocol.Readback(0))
	if err := d.PowerOn(); err != nil {
		t.Fatal(err)
	}
	// After a power cycle the device accepts a fresh sequence space.
	resp, _ := sendSeq(t, d, 1, protocol.Readback(0))
	if resp.Type != protocol.MsgFrameData {
		t.Fatalf("post-power-cycle seq 1 answered with %v", resp.Type)
	}
}
