// Package prover implements the SACHa device: the FPGA with its static
// partition logic (Fig. 10) and the external boot flash.
//
// The static partition's behaviour — RX FSM, frame BRAM buffer, ICAP
// program, readback FIFO, AES-CMAC, TX FSM — is modelled natively here,
// while its *configuration* occupies real StatMem frames (so the MAC and
// the golden comparison genuinely cover it). The dynamic partition is pure
// configuration: whatever the verifier configures there is decoded and
// executed by the fabric model.
package prover

import (
	"errors"
	"fmt"
	"io"

	"sacha/internal/bitstream"
	"sacha/internal/channel"
	"sacha/internal/cmac"
	"sacha/internal/compress"
	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/fifo"
	"sacha/internal/icap"
	"sacha/internal/obs"
	"sacha/internal/protocol"
	"sacha/internal/signature"
	"sacha/internal/sim"
	"sacha/internal/timing"
)

// KeySource produces the device's MAC key (paper §5.2.1: a key register
// in the proof of concept, a key-generating PUF in the full design).
type KeySource interface {
	// Key returns the 16-byte AES key.
	Key() ([16]byte, error)
	// Describe names the source for reports.
	Describe() string
}

// RegisterKey is the proof-of-concept key register in the static
// partition.
type RegisterKey [16]byte

// Key returns the register value.
func (k RegisterKey) Key() ([16]byte, error) { return k, nil }

// Describe names the source.
func (RegisterKey) Describe() string { return "StatPart key register" }

// Config assembles a Device.
type Config struct {
	Geo *device.Geometry
	// BootMem is the non-volatile boot flash content: the static
	// partition's frames. Its capacity is exactly the static bitstream —
	// deliberately too small to stash the dynamic partial bitstream
	// (paper §5.2.1).
	BootMem *bitstream.Partial
	// Key is the MAC key source.
	Key KeySource
	// Signer, if set, enables the signature-mode extension.
	Signer *signature.Signer
	// RestrictConfigToDyn makes the ICAP controller reject configuration
	// writes into the static partition, the policy of Chaves et al.
	// (paper §4.3: "partial configuration updates can only take place in
	// a predetermined restricted area"). SACHa does not need it — the
	// readback MAC catches everything — but the option allows a direct
	// comparison with that related work.
	RestrictConfigToDyn bool
}

// Device is one SACHa prover.
type Device struct {
	Geo    *device.Geometry
	Fabric *fabric.Fabric
	Port   *icap.Port

	// Clock domains of the static partition (Fig. 10).
	RXClock, ICAPClock, TXClock *sim.Clock
	// Timeline accumulates the device-side virtual time (ICAP and MAC
	// work; wire time is charged by the channel).
	Timeline *sim.Timeline

	bootMem *bitstream.Partial
	keySrc  KeySource
	signer  *signature.Signer
	model   *timing.Model

	mac        *cmac.MAC
	macActive  bool
	transcript *signature.Transcript
	rbFIFO     *fifo.DualClock // readback FIFO crossing ICAP → TX (Fig. 10)

	dynRegion *fabric.Region
	dynSet    map[int]bool // dynamic frame set for RestrictConfigToDyn
	restrict  bool
	appLive   *fabric.Live
	appEpoch  int64
	poweredOn bool

	// Reliable-transport state. The device executes envelope sequence
	// numbers strictly in order — the MAC is order-sensitive, so an
	// out-of-order execution would silently change H_Prv. Requests that
	// arrive ahead of the next expected sequence are buffered in seqPend
	// (bounded by SeqWindow) and executed once the gap fills; the encoded
	// responses of the last SeqCacheEntries executed sequences are kept in
	// seqResp so a duplicated or replayed request is answered from cache
	// instead of re-executing — in particular a duplicated ICAP_readback
	// must not step the MAC twice, or transport flakiness would masquerade
	// as a compromised device.
	seqSeen  bool
	seqLast  uint32
	seqResp  map[uint32][]byte
	seqOrder []uint32
	seqPend  map[uint32][]byte

	// frameScratch is the reused serialisation buffer of handleReadback;
	// MAC and transcript copy what they absorb, so one buffer serves every
	// frame of a session.
	frameScratch []byte

	// caps holds the capability bits negotiated for the current session
	// via Hello. Like the MAC and sequence state it never survives a
	// session or a power cycle: a verifier that does not negotiate gets
	// the paper's baseline protocol.
	caps uint32
}

// New builds a device. It enforces the bounded-BootMem invariant: the
// boot flash must not be able to hold the dynamic partial bitstream.
func New(cfg Config) (*Device, error) {
	if cfg.Geo == nil || cfg.BootMem == nil || cfg.Key == nil {
		return nil, fmt.Errorf("prover: geometry, BootMem and key source are required")
	}
	dyn := fabric.DynRegion(cfg.Geo)
	if cfg.BootMem.SizeBytes() >= len(dyn.Frames())*device.FrameBytes {
		return nil, fmt.Errorf("prover: BootMem of %d bytes could store the partial bitstream — violates the bounded-memory assumption", cfg.BootMem.SizeBytes())
	}
	fab := fabric.New(cfg.Geo)
	icapClk := sim.NewClock("icap", sim.ICAPClockHz)
	d := &Device{
		Geo:        cfg.Geo,
		Fabric:     fab,
		Port:       icap.New(fab, icapClk),
		RXClock:    sim.NewClock("rx", sim.RXClockHz),
		ICAPClock:  icapClk,
		TXClock:    sim.NewClock("tx", sim.TXClockHz),
		Timeline:   sim.NewTimeline(),
		bootMem:    cfg.BootMem,
		keySrc:     cfg.Key,
		signer:     cfg.Signer,
		model:      timing.NewModel(cfg.Geo),
		transcript: signature.NewTranscript(),
		dynRegion:  dyn,
		restrict:   cfg.RestrictConfigToDyn,
	}
	if d.restrict {
		d.dynSet = make(map[int]bool)
		for _, idx := range dyn.Frames() {
			d.dynSet[idx] = true
		}
	}
	rb, err := fifo.New(256) // BRAM-backed, deep enough for one frame burst
	if err != nil {
		return nil, err
	}
	d.rbFIFO = rb
	return d, nil
}

// crossDomains streams words through the readback FIFO, alternating
// ICAP-domain pushes with TX-domain pops as the two clocks tick — the
// clock-domain crossing between the ICAP program and the TX FSM.
func (d *Device) crossDomains(words []uint32) []uint32 {
	out := make([]uint32, 0, len(words))
	i := 0
	for len(out) < len(words) {
		if i < len(words) {
			if err := d.rbFIFO.Push(words[i]); err == nil {
				i++
				d.ICAPClock.Tick(1)
			}
		}
		d.rbFIFO.SyncWriteDomain()
		d.rbFIFO.SyncReadDomain()
		if v, err := d.rbFIFO.Pop(); err == nil {
			out = append(out, v)
			d.TXClock.Tick(1)
		}
	}
	return out
}

// SetKeySource swaps the device's key source — the device-side effect of
// the verifier shipping a fresh PUF circuit in the dynamic partition
// (paper §5.2.1, second option: key rotation).
func (d *Device) SetKeySource(src KeySource) {
	d.keySrc = src
	d.macActive = false
}

// PowerOn loads the static partition from BootMem into the volatile
// configuration memory, as the configuration controller does at startup.
func (d *Device) PowerOn() error {
	for _, fr := range d.bootMem.Frames {
		if err := d.Fabric.WriteFrame(fr.Index, fr.Words); err != nil {
			return fmt.Errorf("prover: boot: %w", err)
		}
	}
	d.poweredOn = true
	d.macActive = false
	d.caps = 0
	d.resetSeq()
	return nil
}

// resetSeq drops all reliable-transport state: the sequence base, the
// response cache and any buffered out-of-order requests.
func (d *Device) resetSeq() {
	d.seqSeen = false
	d.seqResp = nil
	d.seqOrder = nil
	d.seqPend = nil
}

// appendFrameBytes serialises frame words into dst for MAC/transcript
// absorption (big-endian, matching the verifier) and returns the extended
// slice, letting callers reuse one scratch buffer across frames.
func appendFrameBytes(dst []byte, words []uint32) []byte {
	for _, w := range words {
		dst = append(dst, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
	}
	return dst
}

// Handle processes one verifier command and returns the response message,
// or nil for commands without a response (ICAP_config).
func (d *Device) Handle(m *protocol.Message) (*protocol.Message, error) {
	if !d.poweredOn {
		return nil, fmt.Errorf("prover: device not powered on")
	}
	switch m.Type {
	case protocol.MsgICAPConfig:
		return nil, d.handleConfig(m)
	case protocol.MsgICAPConfigBatch:
		return nil, d.handleConfigBatch(m)
	case protocol.MsgICAPConfigBatchC:
		return nil, d.handleConfigBatchC(m)
	case protocol.MsgICAPReadback:
		return d.handleReadback(m)
	case protocol.MsgMACChecksum:
		return d.handleChecksum()
	case protocol.MsgSigChecksum:
		return d.handleSigChecksum()
	case protocol.MsgAppStep:
		return d.handleAppStep(m)
	case protocol.MsgHello:
		return d.handleHello(m)
	case protocol.MsgScan:
		return d.handleScan(m)
	default:
		return nil, fmt.Errorf("prover: unexpected message %v", m.Type)
	}
}

// DeviceCaps is the capability set this device implements. Hello
// negotiation intersects it with the verifier's offer.
const DeviceCaps = protocol.CapCompress | protocol.CapScan

func (d *Device) handleHello(m *protocol.Message) (*protocol.Message, error) {
	d.caps = m.Caps & DeviceCaps
	return &protocol.Message{Type: protocol.MsgHelloAck, Caps: d.caps}, nil
}

func (d *Device) handleConfig(m *protocol.Message) error {
	if d.restrict && !d.dynSet[int(m.FrameIndex)] {
		return fmt.Errorf("prover: frame %d outside the dynamic partition (restricted controller)", m.FrameIndex)
	}
	stream, err := icap.ConfigFrameStream(d.Geo, int(m.FrameIndex), m.Words)
	if err != nil {
		return err
	}
	if err := d.Port.Write(stream); err != nil {
		return err
	}
	d.Timeline.Add("icap-config", d.model.ActionTime(timing.A2))
	return nil
}

// FrameBufferFrames is the static partition's packet-buffer capacity in
// frames. The §6.1 trade-off allows batching configuration frames, but
// the buffer must stay far too small for the partial bitstream, or the
// bounded-memory argument collapses.
const FrameBufferFrames = 16

func (d *Device) handleConfigBatch(m *protocol.Message) error {
	if len(m.Batch) > FrameBufferFrames {
		return fmt.Errorf("prover: batch of %d frames exceeds the %d-frame buffer", len(m.Batch), FrameBufferFrames)
	}
	for _, fr := range m.Batch {
		if d.restrict && !d.dynSet[int(fr.Index)] {
			return fmt.Errorf("prover: frame %d outside the dynamic partition (restricted controller)", fr.Index)
		}
		stream, err := icap.ConfigFrameStream(d.Geo, int(fr.Index), fr.Words)
		if err != nil {
			return err
		}
		if err := d.Port.Write(stream); err != nil {
			return err
		}
	}
	// The batched ICAP program amortises the per-packet overhead across
	// the batch (one command preamble, k+1 frames through FDRI).
	d.Timeline.Add("icap-config", timing.PrvBatchConfigTime(len(m.Batch)))
	return nil
}

// handleConfigBatchC decodes a compressed configuration batch. The
// decoder bound is count×FrameWords: the frame count declares exactly
// how much buffer the packet may claim, and the count itself is capped
// at the frame-buffer capacity — a hostile compressed stream cannot
// allocate past the static partition's packet buffer however large its
// embedded run counts claim to be.
func (d *Device) handleConfigBatchC(m *protocol.Message) error {
	if d.caps&protocol.CapCompress == 0 {
		return fmt.Errorf("prover: compressed batch without negotiated capability")
	}
	if len(m.Frames) == 0 || len(m.Frames) > FrameBufferFrames {
		return fmt.Errorf("prover: compressed batch of %d frames exceeds the %d-frame buffer", len(m.Frames), FrameBufferFrames)
	}
	want := len(m.Frames) * device.FrameWords
	words, err := compress.DecodeBounded(m.Comp, want)
	if err != nil {
		return fmt.Errorf("prover: compressed batch: %w", err)
	}
	if len(words) != want {
		return fmt.Errorf("prover: compressed batch carries %d words, want %d", len(words), want)
	}
	for i, idx := range m.Frames {
		if d.restrict && !d.dynSet[int(idx)] {
			return fmt.Errorf("prover: frame %d outside the dynamic partition (restricted controller)", idx)
		}
		stream, err := icap.ConfigFrameStream(d.Geo, int(idx), words[i*device.FrameWords:(i+1)*device.FrameWords])
		if err != nil {
			return err
		}
		if err := d.Port.Write(stream); err != nil {
			return err
		}
	}
	d.Timeline.Add("icap-config", timing.PrvBatchConfigTime(len(m.Frames)))
	return nil
}

func (d *Device) handleReadback(m *protocol.Message) (*protocol.Message, error) {
	if !d.macActive {
		key, err := d.keySrc.Key()
		if err != nil {
			return nil, fmt.Errorf("prover: key source: %w", err)
		}
		mac, err := cmac.New(key[:])
		if err != nil {
			return nil, err
		}
		d.mac = mac
		d.macActive = true
		d.transcript.Reset()
		d.Timeline.Add("mac-init", d.model.ActionTime(timing.A5))
	}
	frame, err := d.readFrameRaw(int(m.FrameIndex))
	if err != nil {
		return nil, err
	}

	d.frameScratch = appendFrameBytes(d.frameScratch[:0], frame)
	d.mac.Update(d.frameScratch)
	d.transcript.Absorb(d.frameScratch)
	d.Timeline.Add("mac-update", d.model.ActionTime(timing.A6))

	if d.caps&protocol.CapCompress != 0 {
		return &protocol.Message{
			Type:       protocol.MsgFrameDataC,
			FrameIndex: m.FrameIndex,
			Comp:       compress.Encode(frame),
		}, nil
	}
	return &protocol.Message{
		Type:       protocol.MsgFrameData,
		FrameIndex: m.FrameIndex,
		Words:      frame,
	}, nil
}

// readFrameRaw runs one ICAP readback — command stream in, pad frame
// dropped, words crossed into the TX clock domain — without touching
// the attestation MAC or transcript.
func (d *Device) readFrameRaw(frameIndex int) ([]uint32, error) {
	cmd, err := icap.ReadbackCmdStream(d.Geo, frameIndex)
	if err != nil {
		return nil, err
	}
	if err := d.Port.Write(cmd); err != nil {
		return nil, err
	}
	data, err := d.Port.Read(icap.ReadbackWords)
	if err != nil {
		return nil, err
	}
	frame := d.crossDomains(data[device.FrameWords:]) // drop the pad frame, cross into the TX domain
	d.Timeline.Add("icap-readback", d.model.ActionTime(timing.A4))
	return frame, nil
}

// handleScan answers the delta-mode probe: a MAC-free batched readback.
// The frames stream through the same ICAP/FIFO path as ICAP_readback
// but are never absorbed into the MAC or transcript — a scan cannot
// perturb H_Prv, so probing before Phase 1 is always safe. The response
// is compressed; its decompressed size is bounded by the frame count,
// which the protocol caps at MaxScanFrames.
func (d *Device) handleScan(m *protocol.Message) (*protocol.Message, error) {
	if d.caps&protocol.CapScan == 0 {
		return nil, fmt.Errorf("prover: scan without negotiated capability")
	}
	if len(m.Frames) == 0 || len(m.Frames) > protocol.MaxScanFrames {
		return nil, fmt.Errorf("prover: scan of %d frames exceeds the %d-frame limit", len(m.Frames), protocol.MaxScanFrames)
	}
	words := make([]uint32, 0, len(m.Frames)*device.FrameWords)
	for _, idx := range m.Frames {
		frame, err := d.readFrameRaw(int(idx))
		if err != nil {
			return nil, err
		}
		words = append(words, frame...)
	}
	return &protocol.Message{
		Type:   protocol.MsgScanData,
		Frames: m.Frames,
		Comp:   compress.Encode(words),
	}, nil
}

func (d *Device) handleChecksum() (*protocol.Message, error) {
	if !d.macActive {
		return nil, fmt.Errorf("prover: MAC_checksum before any readback")
	}
	tag := d.mac.Sum()
	d.macActive = false
	d.Timeline.Add("mac-finalize", d.model.ActionTime(timing.A7))
	return &protocol.Message{Type: protocol.MsgMACValue, MAC: tag}, nil
}

func (d *Device) handleSigChecksum() (*protocol.Message, error) {
	if d.signer == nil {
		return nil, fmt.Errorf("prover: signature mode not provisioned")
	}
	if !d.macActive {
		return nil, fmt.Errorf("prover: Sig_checksum before any readback")
	}
	sig, err := d.signer.Sign(d.transcript.Digest())
	if err != nil {
		return nil, err
	}
	// The MAC state is consumed alongside the signature.
	d.mac.Sum()
	d.macActive = false
	return &protocol.Message{Type: protocol.MsgSigValue, Sig: sig}, nil
}

// MaxAppSteps bounds one App_step command. A command asking for more
// cycles is rejected rather than wedging the device in a multi-second
// clocking loop — the verifier splits longer runs into several commands.
const MaxAppSteps = 1 << 20

func (d *Device) handleAppStep(m *protocol.Message) (*protocol.Message, error) {
	if m.Steps > MaxAppSteps {
		return nil, fmt.Errorf("prover: App_step of %d cycles exceeds the %d-cycle limit", m.Steps, MaxAppSteps)
	}
	live, err := d.appView()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < m.Steps; i++ {
		if err := live.Step(); err != nil {
			return nil, err
		}
	}
	return &protocol.Message{Type: protocol.MsgAck}, nil
}

// appView returns the decoded dynamic partition, re-decoding after any
// reconfiguration.
func (d *Device) appView() (*fabric.Live, error) {
	if d.appLive == nil || d.appEpoch != d.Fabric.Epoch() {
		live, err := d.Fabric.Live(d.dynRegion)
		if err != nil {
			return nil, err
		}
		d.appLive = live
		d.appEpoch = d.Fabric.Epoch()
	}
	return d.appLive, nil
}

// App returns the live dynamic partition for local experimentation
// (examples drive the configured application through this).
func (d *Device) App() (*fabric.Live, error) { return d.appView() }

// SeqWindow bounds how far ahead of the next expected sequence number the
// device buffers out-of-order requests. It is the device-side half of the
// verifier's pipeline bound (attestation.MaxWindow must not exceed it): a
// windowed verifier never has more than MaxWindow sequences outstanding,
// so every legitimately reordered arrival lands within this window. The
// bound also keeps a hostile peer from growing the buffer without limit.
const SeqWindow = 64

// SeqCacheEntries bounds the response cache. It must hold at least
// SeqWindow entries: with a full pipeline the verifier may still re-send
// any of its outstanding sequences, and each must find its cached
// response — an evicted entry would look like a stale replay and wedge
// the retry loop.
const SeqCacheEntries = 128

// HandleBytes decodes, handles and encodes. Prover-side failures become
// Error messages rather than hard faults, as a deployed device must not
// crash on malformed input. For enveloped requests that fill a sequence
// gap the first of possibly several releasable responses is returned;
// transports that must ship all of them use HandleBytesAll.
func (d *Device) HandleBytes(req []byte) ([]byte, error) {
	resps, err := d.HandleBytesAll(req)
	if err != nil || len(resps) == 0 {
		return nil, err
	}
	return resps[0], nil
}

// HandleBytesAll is HandleBytes for pipelined transports: an enveloped
// request that arrives ahead of the next expected sequence is buffered
// and produces no response yet, while one that fills a gap releases its
// own response plus those of every buffered successor, in sequence order.
func (d *Device) HandleBytesAll(req []byte) ([][]byte, error) {
	m, err := protocol.Decode(req)
	if err != nil {
		enc, err := protocol.Errorf("decode: %v", err).Encode()
		if err != nil {
			return nil, err
		}
		return [][]byte{enc}, nil
	}
	if m.Type == protocol.MsgSeqReq {
		return d.handleSeqReqAll(m)
	}
	resp, err := d.Handle(m)
	if err != nil {
		enc, err := protocol.Errorf("%v", err).Encode()
		if err != nil {
			return nil, err
		}
		return [][]byte{enc}, nil
	}
	if resp == nil {
		return nil, nil
	}
	enc, err := resp.Encode()
	if err != nil {
		return nil, err
	}
	return [][]byte{enc}, nil
}

// handleSeqReqAll executes enveloped commands with at-most-once,
// in-order semantics: each sequence number is executed exactly once and
// strictly in order (the MAC is order-sensitive), duplicates of cached
// sequences replay their cached responses byte-identically, sequences at
// or below the last executed one that have aged out of the cache are
// answered with an Error the verifier discards, and sequences ahead of
// the next expected one are buffered (up to SeqWindow) until the gap
// fills — at which point every consecutive buffered request executes and
// its responses are all released.
func (d *Device) handleSeqReqAll(m *protocol.Message) ([][]byte, error) {
	if d.seqSeen {
		if cached, ok := d.seqResp[m.Seq]; ok {
			mSeqReplays.Inc()
			return [][]byte{cached}, nil
		}
		if m.Seq <= d.seqLast {
			mSeqStale.Inc()
			wire, err := protocol.WrapResp(m.Seq,
				mustEncode(protocol.Errorf("stale sequence %d (current %d)", m.Seq, d.seqLast))).Encode()
			if err != nil {
				return nil, err
			}
			return [][]byte{wire}, nil
		}
		if m.Seq != d.seqLast+1 {
			// A future sequence: buffer it until its predecessors arrive.
			if m.Seq-d.seqLast > SeqWindow {
				mSeqOverflow.Inc()
				wire, err := protocol.WrapResp(m.Seq,
					mustEncode(protocol.Errorf("sequence %d beyond the %d-entry window (current %d)", m.Seq, SeqWindow, d.seqLast))).Encode()
				if err != nil {
					return nil, err
				}
				return [][]byte{wire}, nil
			}
			if d.seqPend == nil {
				d.seqPend = make(map[uint32][]byte)
			}
			if _, buffered := d.seqPend[m.Seq]; !buffered {
				d.seqPend[m.Seq] = append([]byte(nil), m.Inner...)
				mSeqBuffered.Inc()
			}
			return nil, nil
		}
	}
	// m.Seq is executable: the first envelope of the session pins the
	// sequence base, afterwards only seqLast+1 reaches this point.
	var out [][]byte
	wire, err := d.execSeq(m.Seq, m.Inner)
	if err != nil {
		return nil, err
	}
	out = append(out, wire)
	// The gap just filled: drain every now-consecutive buffered request.
	for {
		inner, ok := d.seqPend[d.seqLast+1]
		if !ok {
			break
		}
		seq := d.seqLast + 1
		delete(d.seqPend, seq)
		wire, err := d.execSeq(seq, inner)
		if err != nil {
			return nil, err
		}
		out = append(out, wire)
	}
	return out, nil
}

// execSeq executes one enveloped command, caches the encoded response
// (evicting the oldest entry beyond SeqCacheEntries) and advances the
// sequence cursor.
func (d *Device) execSeq(seq uint32, innerEnc []byte) ([]byte, error) {
	var resp *protocol.Message
	inner, err := protocol.Decode(innerEnc)
	if err != nil {
		resp = protocol.Errorf("decode: %v", err)
	} else if r, err := d.Handle(inner); err != nil {
		resp = protocol.Errorf("%v", err)
	} else if r == nil {
		resp = &protocol.Message{Type: protocol.MsgAck}
	} else {
		resp = r
	}
	enc, err := resp.Encode()
	if err != nil {
		return nil, err
	}
	wire, err := protocol.WrapResp(seq, enc).Encode()
	if err != nil {
		return nil, err
	}
	if d.seqResp == nil {
		d.seqResp = make(map[uint32][]byte, SeqCacheEntries)
	}
	d.seqResp[seq] = wire
	d.seqOrder = append(d.seqOrder, seq)
	if len(d.seqOrder) > SeqCacheEntries {
		delete(d.seqResp, d.seqOrder[0])
		d.seqOrder = d.seqOrder[1:]
		mSeqEvictions.Inc()
	}
	d.seqSeen, d.seqLast = true, seq
	mSeqExecuted.Inc()
	return wire, nil
}

// Reliable-transport metric families of the device side: how often the
// at-most-once machinery actually engages. Replays are duplicate
// requests answered from the response cache (the transport saved a MAC
// double-step), stale and overflow requests are rejected envelopes,
// buffered counts out-of-order arrivals parked until their gap fills.
var (
	mSeqReplays = obs.Default().Counter("sacha_prover_seq_replays_total",
		"Duplicate sequence requests answered from the response cache.")
	mSeqStale = obs.Default().Counter("sacha_prover_seq_stale_total",
		"Sequence requests at or below the executed cursor that aged out of the cache.")
	mSeqBuffered = obs.Default().Counter("sacha_prover_seq_buffered_total",
		"Out-of-order sequence requests buffered until their gap filled.")
	mSeqOverflow = obs.Default().Counter("sacha_prover_seq_overflow_total",
		"Sequence requests rejected for landing beyond the reorder window.")
	mSeqExecuted = obs.Default().Counter("sacha_prover_seq_executed_total",
		"Enveloped commands executed (each sequence number at most once).")
	mSeqEvictions = obs.Default().Counter("sacha_prover_seq_cache_evictions_total",
		"Cached responses evicted by the response-cache bound.")
)

// mustEncode encodes messages whose construction cannot fail (Error
// strings are truncated to the wire limit by Errorf).
func mustEncode(m *protocol.Message) []byte {
	enc, err := m.Encode()
	if err != nil {
		panic(err)
	}
	return enc
}

// sessionOver classifies endpoint errors that mean the peer is gone —
// the clean end of a session, not a device fault.
func sessionOver(err error) bool {
	return err == io.EOF || errors.Is(err, channel.ErrClosed) || errors.Is(err, channel.ErrReset)
}

// Serve answers commands from the endpoint until it closes. A peer that
// disappears (EOF, closed or reset endpoint) ends the session cleanly:
// the device outlives any one verifier connection.
//
// Each session starts with fresh transport state: a half-accumulated MAC
// or a cached sequence envelope left behind by a torn-down connection
// would otherwise poison the next verifier's run (its first readback
// continuing the dead session's checksum). The configuration memory
// itself is untouched — only a power cycle reloads BootMem.
func (d *Device) Serve(ep channel.Endpoint) error {
	d.macActive = false
	d.caps = 0
	d.resetSeq()
	for {
		req, err := ep.Recv()
		if err != nil {
			if sessionOver(err) {
				return nil
			}
			return err
		}
		resps, err := d.HandleBytesAll(req)
		if err != nil {
			return err
		}
		for _, resp := range resps {
			if err := ep.Send(resp); err != nil {
				if sessionOver(err) {
					return nil
				}
				return err
			}
		}
	}
}
