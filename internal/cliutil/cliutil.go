// Package cliutil is the flag/observability wiring shared by the SACHa
// command-line entrypoints. sacha-verifier and sacha-fleetd (and any
// future daemon) register the same -obs-addr/-obs-linger surface and
// bring the endpoint up through one code path, so the two never drift
// in flag names, defaults, or the stderr/structured-log announcement.
// Logging itself is configured the existing way — SACHA_LOG and
// SACHA_LOG_FORMAT through obs.Logger() — which is environment-driven
// and therefore already identical across binaries.
package cliutil

import (
	"flag"
	"fmt"
	"net"
	"os"
	"time"

	"sacha/internal/obs"
)

// ObsFlags is the shared observability flag set.
type ObsFlags struct {
	// Addr is -obs-addr: where to serve Prometheus /metrics, the JSON
	// /debug/sweep snapshot and pprof. Empty disables the endpoint.
	Addr string
	// Linger is -obs-linger: how long a one-shot command keeps the
	// endpoint up after its work, so scrapers catch the final state.
	Linger time.Duration
}

// RegisterObs registers -obs-addr and -obs-linger on fs (use
// flag.CommandLine in main) and returns the destination struct, to be
// read after fs.Parse.
func RegisterObs(fs *flag.FlagSet, defaultAddr string) *ObsFlags {
	f := &ObsFlags{}
	fs.StringVar(&f.Addr, "obs-addr", defaultAddr,
		"serve Prometheus /metrics, JSON /debug/sweep and pprof on this address (e.g. 127.0.0.1:9090); empty disables")
	fs.DurationVar(&f.Linger, "obs-linger", 0,
		"keep the observability endpoint up this long after the work finishes (needs -obs-addr)")
	return f
}

// Enabled reports whether -obs-addr selects an endpoint.
func (f *ObsFlags) Enabled() bool { return f.Addr != "" }

// Start brings the observability endpoint up when enabled, announcing
// it on stderr and the structured log exactly like the historic
// verifier wiring. It returns the bound address (nil when disabled)
// and a stop func that is always safe to defer. Extra routes let a
// daemon mount its control API on the same mux.
func (f *ObsFlags) Start(name string, tracker *obs.SweepTracker, extra ...obs.Route) (net.Addr, func(), error) {
	if !f.Enabled() {
		return nil, func() {}, nil
	}
	srv, bound, err := obs.Serve(f.Addr, nil, tracker, extra...)
	if err != nil {
		return nil, nil, err
	}
	fmt.Fprintf(os.Stderr, "%s: observability endpoint on http://%s/ (metrics, debug/sweep, debug/pprof)\n", name, bound)
	obs.Logger().Info("observability endpoint up", "addr", bound.String())
	return bound, func() { srv.Close() }, nil
}

// LingerNow blocks for -obs-linger (if the endpoint is enabled),
// announcing the pause — the tail of every one-shot command that wants
// its final metrics scrapeable.
func (f *ObsFlags) LingerNow(name string) {
	if !f.Enabled() || f.Linger <= 0 {
		return
	}
	fmt.Fprintf(os.Stderr, "%s: lingering %v for metric scrapes\n", name, f.Linger)
	time.Sleep(f.Linger)
}
