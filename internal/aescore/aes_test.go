package aescore

import (
	"bytes"
	"crypto/aes"
	"encoding/hex"
	"math/rand"
	"testing"
	"testing/quick"
)

func unhex(t *testing.T, s string) []byte {
	t.Helper()
	b, err := hex.DecodeString(s)
	if err != nil {
		t.Fatalf("bad hex %q: %v", s, err)
	}
	return b
}

// FIPS-197 Appendix C.1 example vector.
func TestFIPS197Vector(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	pt := unhex(t, "00112233445566778899aabbccddeeff")
	want := unhex(t, "69c4e0d86a7b0430d8cdb78070b4c55a")
	c, err := New(key)
	if err != nil {
		t.Fatal(err)
	}
	ct := make([]byte, 16)
	c.Encrypt(ct, pt)
	if !bytes.Equal(ct, want) {
		t.Fatalf("encrypt = %x, want %x", ct, want)
	}
	back := make([]byte, 16)
	c.Decrypt(back, ct)
	if !bytes.Equal(back, pt) {
		t.Fatalf("decrypt = %x, want %x", back, pt)
	}
}

// FIPS-197 Appendix B example (different key/plaintext).
func TestFIPS197AppendixB(t *testing.T) {
	key := unhex(t, "2b7e151628aed2a6abf7158809cf4f3c")
	pt := unhex(t, "3243f6a8885a308d313198a2e0370734")
	want := unhex(t, "3925841d02dc09fbdc118597196a0b32")
	c, _ := New(key)
	ct := make([]byte, 16)
	c.Encrypt(ct, pt)
	if !bytes.Equal(ct, want) {
		t.Fatalf("encrypt = %x, want %x", ct, want)
	}
}

func TestKeySizeError(t *testing.T) {
	if _, err := New(make([]byte, 15)); err == nil {
		t.Error("15-byte key accepted")
	}
	if _, err := New(make([]byte, 32)); err == nil {
		t.Error("32-byte key accepted (core is AES-128 only)")
	}
}

func TestShortBlockPanics(t *testing.T) {
	c, _ := New(make([]byte, 16))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	c.Encrypt(make([]byte, 16), make([]byte, 15))
}

func TestSboxProperties(t *testing.T) {
	// S-box must be a permutation with the known fixed values.
	var seen [256]bool
	for i := 0; i < 256; i++ {
		if seen[sbox[i]] {
			t.Fatalf("sbox not a permutation at %d", i)
		}
		seen[sbox[i]] = true
		if invSbox[sbox[i]] != byte(i) {
			t.Fatalf("invSbox wrong at %d", i)
		}
	}
	if sbox[0x00] != 0x63 || sbox[0x01] != 0x7c || sbox[0x53] != 0xed {
		t.Fatalf("sbox spot values wrong: %x %x %x", sbox[0x00], sbox[0x01], sbox[0x53])
	}
}

// Property: our core agrees with crypto/aes on random keys and blocks.
func TestQuickAgainstStdlib(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		key := make([]byte, 16)
		pt := make([]byte, 16)
		rng.Read(key)
		rng.Read(pt)
		ours, err := New(key)
		if err != nil {
			return false
		}
		ref, err := aes.NewCipher(key)
		if err != nil {
			return false
		}
		a := make([]byte, 16)
		b := make([]byte, 16)
		ours.Encrypt(a, pt)
		ref.Encrypt(b, pt)
		return bytes.Equal(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Decrypt inverts Encrypt for random inputs.
func TestQuickEncryptDecrypt(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		key := make([]byte, 16)
		pt := make([]byte, 16)
		rng.Read(key)
		rng.Read(pt)
		c, _ := New(key)
		ct := make([]byte, 16)
		back := make([]byte, 16)
		c.Encrypt(ct, pt)
		c.Decrypt(back, ct)
		return bytes.Equal(back, pt) && !bytes.Equal(ct, pt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestEncryptInPlace(t *testing.T) {
	key := unhex(t, "000102030405060708090a0b0c0d0e0f")
	buf := unhex(t, "00112233445566778899aabbccddeeff")
	want := unhex(t, "69c4e0d86a7b0430d8cdb78070b4c55a")
	c, _ := New(key)
	c.Encrypt(buf, buf)
	if !bytes.Equal(buf, want) {
		t.Fatalf("in-place encrypt = %x, want %x", buf, want)
	}
}

func TestGmul(t *testing.T) {
	// Known products from FIPS-197 examples.
	if gmul(0x57, 0x13) != 0xfe {
		t.Errorf("gmul(0x57,0x13) = %#x, want 0xfe", gmul(0x57, 0x13))
	}
	if gmul(0x57, 0x02) != 0xae {
		t.Errorf("gmul(0x57,0x02) = %#x, want 0xae", gmul(0x57, 0x02))
	}
}

func BenchmarkEncrypt(b *testing.B) {
	c, _ := New(make([]byte, 16))
	buf := make([]byte, 16)
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(buf, buf)
	}
}
