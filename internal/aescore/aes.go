// Package aescore implements AES-128 from scratch as a model of the
// low-area AES hardware core in the SACHa static partition.
//
// The implementation follows FIPS-197 directly (byte-oriented state, S-box
// derived from the GF(2^8) inverse plus affine transform at package init)
// rather than using T-tables, mirroring an iterated one-round-per-cycle
// hardware datapath. CyclesPerBlock exposes the cost model used by the
// timing reproduction: 1 cycle for the initial key addition plus 10 round
// cycles.
package aescore

import "fmt"

// BlockSize is the AES block size in bytes.
const BlockSize = 16

// KeySize is the AES-128 key size in bytes.
const KeySize = 16

// CyclesPerBlock is the hardware-model cost of encrypting one block with
// an iterated round-per-cycle datapath (AddRoundKey + 10 rounds).
const CyclesPerBlock = 11

var sbox [256]byte
var invSbox [256]byte

// GF(2^8) multiplication tables for the MixColumns coefficients, built at
// init from gmul. A hardware datapath computes these products with a few
// XOR gates; the tables keep the software model fast without changing the
// from-first-principles construction.
var mul2, mul3, mul9, mul11, mul13, mul14 [256]byte

// gmul multiplies a and b in GF(2^8) modulo the AES polynomial x^8+x^4+x^3+x+1.
func gmul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		hi := a & 0x80
		a <<= 1
		if hi != 0 {
			a ^= 0x1B
		}
		b >>= 1
	}
	return p
}

func init() {
	// Build the S-box from the multiplicative inverse and the affine
	// transform, as in FIPS-197 §5.1.1.
	var inv [256]byte
	for x := 1; x < 256; x++ {
		for y := 1; y < 256; y++ {
			if gmul(byte(x), byte(y)) == 1 {
				inv[x] = byte(y)
				break
			}
		}
	}
	for x := 0; x < 256; x++ {
		b := inv[x]
		s := b ^ rotl8(b, 1) ^ rotl8(b, 2) ^ rotl8(b, 3) ^ rotl8(b, 4) ^ 0x63
		sbox[x] = s
		invSbox[s] = byte(x)
		mul2[x] = gmul(byte(x), 2)
		mul3[x] = gmul(byte(x), 3)
		mul9[x] = gmul(byte(x), 9)
		mul11[x] = gmul(byte(x), 11)
		mul13[x] = gmul(byte(x), 13)
		mul14[x] = gmul(byte(x), 14)
	}
}

func rotl8(b byte, n uint) byte { return b<<n | b>>(8-n) }

// Core is an AES-128 encryption/decryption core with an expanded key.
type Core struct {
	rk [44]uint32 // round keys, 4 words per round, 11 rounds
}

// New expands a 16-byte key and returns a Core.
func New(key []byte) (*Core, error) {
	if len(key) != KeySize {
		return nil, fmt.Errorf("aescore: key must be %d bytes, got %d", KeySize, len(key))
	}
	c := &Core{}
	for i := 0; i < 4; i++ {
		c.rk[i] = uint32(key[4*i])<<24 | uint32(key[4*i+1])<<16 | uint32(key[4*i+2])<<8 | uint32(key[4*i+3])
	}
	rcon := uint32(1)
	for i := 4; i < 44; i++ {
		t := c.rk[i-1]
		if i%4 == 0 {
			t = subWord(rotWord(t)) ^ rcon<<24
			rcon = uint32(gmul(byte(rcon), 2))
		}
		c.rk[i] = c.rk[i-4] ^ t
	}
	return c, nil
}

func rotWord(w uint32) uint32 { return w<<8 | w>>24 }

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xFF])<<16 |
		uint32(sbox[w>>8&0xFF])<<8 | uint32(sbox[w&0xFF])
}

// state is the AES state in column-major order: state[r][c].
type state [4][4]byte

func loadState(src []byte) state {
	var s state
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			s[r][c] = src[4*c+r]
		}
	}
	return s
}

func (s *state) store(dst []byte) {
	for c := 0; c < 4; c++ {
		for r := 0; r < 4; r++ {
			dst[4*c+r] = s[r][c]
		}
	}
}

func (s *state) addRoundKey(rk []uint32) {
	for c := 0; c < 4; c++ {
		w := rk[c]
		s[0][c] ^= byte(w >> 24)
		s[1][c] ^= byte(w >> 16)
		s[2][c] ^= byte(w >> 8)
		s[3][c] ^= byte(w)
	}
}

func (s *state) subBytes() {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r][c] = sbox[s[r][c]]
		}
	}
}

func (s *state) invSubBytes() {
	for r := 0; r < 4; r++ {
		for c := 0; c < 4; c++ {
			s[r][c] = invSbox[s[r][c]]
		}
	}
}

func (s *state) shiftRows() {
	for r := 1; r < 4; r++ {
		var tmp [4]byte
		for c := 0; c < 4; c++ {
			tmp[c] = s[r][(c+r)%4]
		}
		s[r] = tmp
	}
}

func (s *state) invShiftRows() {
	for r := 1; r < 4; r++ {
		var tmp [4]byte
		for c := 0; c < 4; c++ {
			tmp[(c+r)%4] = s[r][c]
		}
		s[r] = tmp
	}
}

func (s *state) mixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[0][c], s[1][c], s[2][c], s[3][c]
		s[0][c] = mul2[a0] ^ mul3[a1] ^ a2 ^ a3
		s[1][c] = a0 ^ mul2[a1] ^ mul3[a2] ^ a3
		s[2][c] = a0 ^ a1 ^ mul2[a2] ^ mul3[a3]
		s[3][c] = mul3[a0] ^ a1 ^ a2 ^ mul2[a3]
	}
}

func (s *state) invMixColumns() {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[0][c], s[1][c], s[2][c], s[3][c]
		s[0][c] = mul14[a0] ^ mul11[a1] ^ mul13[a2] ^ mul9[a3]
		s[1][c] = mul9[a0] ^ mul14[a1] ^ mul11[a2] ^ mul13[a3]
		s[2][c] = mul13[a0] ^ mul9[a1] ^ mul14[a2] ^ mul11[a3]
		s[3][c] = mul11[a0] ^ mul13[a1] ^ mul9[a2] ^ mul14[a3]
	}
}

// Encrypt encrypts one 16-byte block. dst and src may overlap.
func (c *Core) Encrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aescore: short block")
	}
	s := loadState(src)
	s.addRoundKey(c.rk[0:4])
	for round := 1; round < 10; round++ {
		s.subBytes()
		s.shiftRows()
		s.mixColumns()
		s.addRoundKey(c.rk[4*round : 4*round+4])
	}
	s.subBytes()
	s.shiftRows()
	s.addRoundKey(c.rk[40:44])
	s.store(dst)
}

// Decrypt decrypts one 16-byte block. dst and src may overlap.
func (c *Core) Decrypt(dst, src []byte) {
	if len(src) < BlockSize || len(dst) < BlockSize {
		panic("aescore: short block")
	}
	s := loadState(src)
	s.addRoundKey(c.rk[40:44])
	for round := 9; round >= 1; round-- {
		s.invShiftRows()
		s.invSubBytes()
		s.addRoundKey(c.rk[4*round : 4*round+4])
		s.invMixColumns()
	}
	s.invShiftRows()
	s.invSubBytes()
	s.addRoundKey(c.rk[0:4])
	s.store(dst)
}
