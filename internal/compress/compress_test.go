package compress

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
)

func roundTrip(t *testing.T, words []uint32) {
	t.Helper()
	enc := Encode(words)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec) != len(words) {
		t.Fatalf("length %d, want %d", len(dec), len(words))
	}
	for i := range words {
		if dec[i] != words[i] {
			t.Fatalf("word %d: %#x != %#x", i, dec[i], words[i])
		}
	}
}

func TestRoundTripBasic(t *testing.T) {
	roundTrip(t, nil)
	roundTrip(t, []uint32{1})
	roundTrip(t, []uint32{1, 1, 1, 1, 1})
	roundTrip(t, []uint32{1, 2, 3, 4, 5})
	roundTrip(t, []uint32{0, 0, 0, 7, 7, 7, 1, 2, 0, 0, 0, 0})
}

func TestZeroRunsCompressWell(t *testing.T) {
	words := make([]uint32, 10000)
	if r := Ratio(words); r > 0.01 {
		t.Fatalf("all-zero ratio %.4f, expected near zero", r)
	}
}

func TestRandomDataDoesNotExplode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	words := make([]uint32, 5000)
	for i := range words {
		words[i] = rng.Uint32()
	}
	roundTrip(t, words)
	if r := Ratio(words); r > 1.1 {
		t.Fatalf("incompressible data blew up to ratio %.3f", r)
	}
}

func TestGoldenBitstreamCompression(t *testing.T) {
	// A real golden partial bitstream is sparse: it must compress by an
	// order of magnitude, while remaining (decompressed) far larger than
	// the modelled BRAM capacity — the argument of [24] the bounded
	// memory model rests on.
	geo := device.SmallLX()
	golden, dynFrames, err := core.BuildGolden(geo, netlist.Blinker(16), 1, 0xABCD)
	if err != nil {
		t.Fatal(err)
	}
	var words []uint32
	for _, idx := range dynFrames {
		words = append(words, golden.Frame(idx)...)
	}
	r := Ratio(words)
	if r > 0.1 {
		t.Fatalf("golden partial bitstream ratio %.3f, expected < 0.1", r)
	}
	if compressedBytes := float64(len(words)*4) * r; compressedBytes < 1000 {
		t.Fatalf("compressed size %.0f implausibly small", compressedBytes)
	}
	roundTrip(t, words)
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		{0x00},                               // truncated count
		{0x00, 0x03},                         // truncated run word
		{0x01, 0x02, 0, 0, 0, 1},             // truncated literal run
		{0x07, 0x01, 0, 0, 0, 1},             // unknown token
		{0x00, 0x00},                         // zero count
		{0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, // implausible count
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
}

// Property: round-trip over random word streams with repeat structure.
func TestQuickRoundTrip(t *testing.T) {
	fn := func(seed int64, n16 uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n16 % 3000)
		words := make([]uint32, 0, n)
		for len(words) < n {
			switch rng.Intn(3) {
			case 0: // zero run
				run := rng.Intn(50) + 1
				for i := 0; i < run && len(words) < n; i++ {
					words = append(words, 0)
				}
			case 1: // repeated word
				w := rng.Uint32()
				run := rng.Intn(20) + 1
				for i := 0; i < run && len(words) < n; i++ {
					words = append(words, w)
				}
			default: // literals
				words = append(words, rng.Uint32())
			}
		}
		enc := Encode(words)
		dec, err := Decode(enc)
		if err != nil || len(dec) != len(words) {
			return false
		}
		for i := range words {
			if dec[i] != words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding never panics on arbitrary bytes.
func TestQuickDecodeRobust(t *testing.T) {
	fn := func(data []byte) bool {
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
