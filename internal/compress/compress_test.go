package compress

import (
	"math/rand"
	"testing"
	"testing/quick"

	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/netlist"
)

func roundTrip(t *testing.T, words []uint32) {
	t.Helper()
	enc := Encode(words)
	dec, err := Decode(enc)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(dec) != len(words) {
		t.Fatalf("length %d, want %d", len(dec), len(words))
	}
	for i := range words {
		if dec[i] != words[i] {
			t.Fatalf("word %d: %#x != %#x", i, dec[i], words[i])
		}
	}
}

func TestRoundTripBasic(t *testing.T) {
	roundTrip(t, nil)
	roundTrip(t, []uint32{1})
	roundTrip(t, []uint32{1, 1, 1, 1, 1})
	roundTrip(t, []uint32{1, 2, 3, 4, 5})
	roundTrip(t, []uint32{0, 0, 0, 7, 7, 7, 1, 2, 0, 0, 0, 0})
}

func TestZeroRunsCompressWell(t *testing.T) {
	words := make([]uint32, 10000)
	if r := Ratio(words); r > 0.01 {
		t.Fatalf("all-zero ratio %.4f, expected near zero", r)
	}
}

func TestRandomDataDoesNotExplode(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	words := make([]uint32, 5000)
	for i := range words {
		words[i] = rng.Uint32()
	}
	roundTrip(t, words)
	if r := Ratio(words); r > 1.1 {
		t.Fatalf("incompressible data blew up to ratio %.3f", r)
	}
}

func TestGoldenBitstreamCompression(t *testing.T) {
	// A real golden partial bitstream is sparse: it must compress by an
	// order of magnitude, while remaining (decompressed) far larger than
	// the modelled BRAM capacity — the argument of [24] the bounded
	// memory model rests on.
	geo := device.SmallLX()
	golden := fabric.NewImage(geo)
	fabric.FillStatic(golden, fabric.StatRegion(geo).Frames(), 3)
	if _, err := fabric.PlaceDesign(golden, fabric.AppRegion(geo), netlist.Blinker(16)); err != nil {
		t.Fatal(err)
	}
	var words []uint32
	for _, idx := range fabric.DynRegion(geo).Frames() {
		words = append(words, golden.Frame(idx)...)
	}
	r := Ratio(words)
	if r > 0.1 {
		t.Fatalf("golden partial bitstream ratio %.3f, expected < 0.1", r)
	}
	if compressedBytes := float64(len(words)*4) * r; compressedBytes < 500 {
		t.Fatalf("compressed size %.0f implausibly small", compressedBytes)
	}
	roundTrip(t, words)
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		{0x00},                               // truncated count
		{0x00, 0x03},                         // truncated run word
		{0x01, 0x02, 0, 0, 0, 1},             // truncated literal run
		{0x07, 0x01, 0, 0, 0, 1},             // unknown token
		{0x00, 0x00},                         // zero count
		{0x00, 0xFF, 0xFF, 0xFF, 0xFF, 0x7F}, // implausible count
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: malformed input accepted", i)
		}
	}
}

// Property: round-trip over random word streams with repeat structure.
func TestQuickRoundTrip(t *testing.T) {
	fn := func(seed int64, n16 uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(n16 % 3000)
		words := make([]uint32, 0, n)
		for len(words) < n {
			switch rng.Intn(3) {
			case 0: // zero run
				run := rng.Intn(50) + 1
				for i := 0; i < run && len(words) < n; i++ {
					words = append(words, 0)
				}
			case 1: // repeated word
				w := rng.Uint32()
				run := rng.Intn(20) + 1
				for i := 0; i < run && len(words) < n; i++ {
					words = append(words, w)
				}
			default: // literals
				words = append(words, rng.Uint32())
			}
		}
		enc := Encode(words)
		dec, err := Decode(enc)
		if err != nil || len(dec) != len(words) {
			return false
		}
		for i := range words {
			if dec[i] != words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: decoding never panics on arbitrary bytes.
func TestQuickDecodeRobust(t *testing.T) {
	fn := func(data []byte) bool {
		_, _ = Decode(data)
		return true
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDecodeBounded(t *testing.T) {
	words := []uint32{0, 0, 0, 0, 5, 6, 7, 9, 9, 9, 9, 9}
	enc := Encode(words)

	dec, err := DecodeBounded(enc, len(words))
	if err != nil {
		t.Fatalf("exact bound rejected: %v", err)
	}
	if len(dec) != len(words) || cap(dec) != len(words) {
		t.Fatalf("len=%d cap=%d, want exactly %d", len(dec), cap(dec), len(words))
	}
	for i := range words {
		if dec[i] != words[i] {
			t.Fatalf("word %d: %#x != %#x", i, dec[i], words[i])
		}
	}

	if _, err := DecodeBounded(enc, len(words)-1); err == nil {
		t.Fatal("over-bound stream accepted")
	}
	if _, err := DecodeBounded(enc, 0); err == nil {
		t.Fatal("zero bound accepted for non-empty stream")
	}
	if out, err := DecodeBounded(nil, 0); err != nil || out != nil {
		t.Fatalf("empty stream: out=%v err=%v", out, err)
	}
}

// TestDecodeExactAllocation pins the satellite requirement: Decode
// pre-sizes its output from the first-pass token count, so decoding
// costs exactly one output allocation (no append growth).
func TestDecodeExactAllocation(t *testing.T) {
	words := make([]uint32, 4096)
	for i := range words {
		if i%7 == 0 {
			words[i] = uint32(i)
		}
	}
	enc := Encode(words)
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := Decode(enc); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1 {
		t.Fatalf("Decode allocates %.0f times, want 1", allocs)
	}
}

// FuzzCompressRoundTrip checks two properties on arbitrary input:
// treating the bytes as a word stream, Encode∘Decode is the identity;
// and treating the bytes as a hostile compressed stream, DecodeBounded
// never yields (or reserves) more than the declared bound.
func FuzzCompressRoundTrip(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1})
	f.Add([]byte{0x00, 0x05, 1, 2, 3, 4})
	f.Add([]byte{0x01, 0x02, 0, 0, 0, 1, 0, 0, 0, 2})
	f.Fuzz(func(t *testing.T, data []byte) {
		// Identity: bytes → words → Encode → Decode.
		words := make([]uint32, len(data)/4)
		for i := range words {
			words[i] = uint32(data[4*i])<<24 | uint32(data[4*i+1])<<16 |
				uint32(data[4*i+2])<<8 | uint32(data[4*i+3])
		}
		dec, err := Decode(Encode(words))
		if err != nil {
			t.Fatalf("round trip decode: %v", err)
		}
		if len(dec) != len(words) {
			t.Fatalf("round trip length %d, want %d", len(dec), len(words))
		}
		for i := range words {
			if dec[i] != words[i] {
				t.Fatalf("round trip word %d: %#x != %#x", i, dec[i], words[i])
			}
		}
		// Hostile stream: the bound must hold whenever decoding succeeds,
		// including the backing array (no hidden over-reservation).
		for _, bound := range []int{0, 1, 81, 16 * 81} {
			out, err := DecodeBounded(data, bound)
			if err != nil {
				continue
			}
			if len(out) > bound || cap(out) > bound {
				t.Fatalf("bound %d exceeded: len=%d cap=%d", bound, len(out), cap(out))
			}
		}
		// Unbounded and bounded decodes of the same valid stream agree.
		if ub, err := Decode(data); err == nil {
			b, err := DecodeBounded(data, len(ub))
			if err != nil || len(b) != len(ub) {
				t.Fatalf("bounded re-decode: len=%d err=%v, want %d", len(b), err, len(ub))
			}
		}
	})
}
