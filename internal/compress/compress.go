// Package compress implements word-oriented bitstream compression, the
// mechanism of the authors' companion work on secure remote configuration
// with bitstream compression ([24] in the paper) that underpins the
// bounded-memory argument: a *compressed* partial bitstream still far
// exceeds the device's BRAM capacity.
//
// Configuration frames are dominated by zero words and short repeats, so
// the codec combines run-length encoding of repeated 32-bit words with
// literal runs:
//
//	token 0x00 | count(varint) | word      — `count` repeats of one word
//	token 0x01 | count(varint) | words...  — `count` literal words
//
// Counts are unsigned varints (7 bits per byte, high bit = continuation).
package compress

import (
	"encoding/binary"
	"fmt"
)

const (
	tokenRun     = 0x00
	tokenLiteral = 0x01
)

// maxCount caps a single token's word count (keeps decoder allocations
// bounded on hostile input).
const maxCount = 1 << 24

// appendUvarint encodes v as a varint.
func appendUvarint(dst []byte, v uint64) []byte {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	return append(dst, buf[:n]...)
}

// Encode compresses a word stream.
func Encode(words []uint32) []byte {
	out := make([]byte, 0, len(words)/4+16)
	i := 0
	for i < len(words) {
		// Measure the run starting at i.
		run := 1
		for i+run < len(words) && words[i+run] == words[i] && run < maxCount {
			run++
		}
		if run >= 3 {
			out = append(out, tokenRun)
			out = appendUvarint(out, uint64(run))
			out = binary.BigEndian.AppendUint32(out, words[i])
			i += run
			continue
		}
		// Collect a literal run up to the next ≥3 repeat.
		start := i
		for i < len(words) && i-start < maxCount {
			run = 1
			for i+run < len(words) && words[i+run] == words[i] {
				run++
			}
			if run >= 3 {
				break
			}
			i += run
		}
		out = append(out, tokenLiteral)
		out = appendUvarint(out, uint64(i-start))
		for _, w := range words[start:i] {
			out = binary.BigEndian.AppendUint32(out, w)
		}
	}
	return out
}

// Decode decompresses a word stream.
func Decode(data []byte) ([]uint32, error) {
	return DecodeBounded(data, -1)
}

// DecodeBounded decompresses a word stream with a hard output bound.
// A first pass walks the token structure and sums the declared counts
// without allocating; the output slice is then allocated exactly once
// at the summed size. If maxWords is non-negative and the declared
// total exceeds it, DecodeBounded fails *before* allocating — this is
// the hostile-input guarantee the prover relies on: a forged count can
// never make the decoder reserve more than the caller's stated bound.
func DecodeBounded(data []byte, maxWords int) ([]uint32, error) {
	total, err := scanTokens(data, maxWords)
	if err != nil {
		return nil, err
	}
	if total == 0 {
		return nil, nil
	}
	out := make([]uint32, 0, total)
	for len(data) > 0 {
		token := data[0]
		count, n := binary.Uvarint(data[1:])
		data = data[1+n:]
		switch token {
		case tokenRun:
			w := binary.BigEndian.Uint32(data)
			data = data[4:]
			for i := uint64(0); i < count; i++ {
				out = append(out, w)
			}
		case tokenLiteral:
			for i := uint64(0); i < count; i++ {
				out = append(out, binary.BigEndian.Uint32(data[4*i:]))
			}
			data = data[4*count:]
		}
	}
	return out, nil
}

// scanTokens validates the token structure of data and returns the
// total declared word count, failing early once the running total
// exceeds maxWords (when non-negative).
func scanTokens(data []byte, maxWords int) (int, error) {
	total := 0
	for len(data) > 0 {
		token := data[0]
		data = data[1:]
		count, n := binary.Uvarint(data)
		if n <= 0 {
			return 0, fmt.Errorf("compress: truncated count")
		}
		if count == 0 || count > maxCount {
			return 0, fmt.Errorf("compress: implausible count %d", count)
		}
		data = data[n:]
		switch token {
		case tokenRun:
			if len(data) < 4 {
				return 0, fmt.Errorf("compress: truncated run word")
			}
			data = data[4:]
		case tokenLiteral:
			if uint64(len(data)) < 4*count {
				return 0, fmt.Errorf("compress: truncated literal run")
			}
			data = data[4*count:]
		default:
			return 0, fmt.Errorf("compress: unknown token %#x", token)
		}
		total += int(count)
		if maxWords >= 0 && total > maxWords {
			return 0, fmt.Errorf("compress: declared %d words exceeds bound %d", total, maxWords)
		}
	}
	return total, nil
}

// Ratio returns compressed size over raw size for a word stream.
func Ratio(words []uint32) float64 {
	if len(words) == 0 {
		return 1
	}
	return float64(len(Encode(words))) / float64(len(words)*4)
}
