package pose

import (
	"math/rand"
	"testing"
	"time"

	"sacha/internal/cpu"
)

var key = [16]byte{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16}

func TestHonestSecureCodeUpdate(t *testing.T) {
	d, err := NewDevice(512, key)
	if err != nil {
		t.Fatal(err)
	}
	v := &Verifier{Key: key, MemWords: 512}
	code, err := cpu.Assemble(`
		LDI r0, 40
		LDI r1, 2
		ADD r0, r1
		OUT r0, 0
		HALT
	`)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := v.SecureCodeUpdate(d, code, rand.New(rand.NewSource(1)))
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatal("honest update rejected")
	}
	// The installed code must actually run.
	if err := d.Execute(100); err != nil {
		t.Fatal(err)
	}
	if d.M.Out(0) != 42 {
		t.Fatalf("installed code produced %d", d.M.Out(0))
	}
}

func TestResidentMalwareErased(t *testing.T) {
	d, _ := NewDevice(256, key)
	// Pre-infect: malware at the top of memory.
	for i := 200; i < 256; i++ {
		d.M.Mem[i] = 0xEEEE
	}
	v := &Verifier{Key: key, MemWords: 256}
	code, _ := cpu.Assemble("HALT")
	rep, err := v.SecureCodeUpdate(d, code, rand.New(rand.NewSource(2)))
	if err != nil || !rep.Accepted {
		t.Fatalf("update failed: %v", err)
	}
	for i := 200; i < 256; i++ {
		if d.M.Mem[i] == 0xEEEE {
			t.Fatalf("malware word survived at %d", i)
		}
	}
}

func TestCheatingDeviceDetected(t *testing.T) {
	// A device that preserves resident code cannot produce the right
	// checksum: the preserved range differs from the verifier's image.
	d, _ := NewDevice(256, key)
	for i := 100; i < 120; i++ {
		d.M.Mem[i] = 0xBAD0
	}
	d.Cheat(100, 120)
	v := &Verifier{Key: key, MemWords: 256}
	code, _ := cpu.Assemble("HALT")
	rep, err := v.SecureCodeUpdate(d, code, rand.New(rand.NewSource(3)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("cheating device passed the proof of secure erasure")
	}
}

func TestWrongKeyDetected(t *testing.T) {
	other := key
	other[0] ^= 1
	d, _ := NewDevice(128, other)
	v := &Verifier{Key: key, MemWords: 128}
	code, _ := cpu.Assemble("HALT")
	rep, err := v.SecureCodeUpdate(d, code, rand.New(rand.NewSource(4)))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Accepted {
		t.Fatal("device with wrong key accepted")
	}
}

func TestFillMustCoverMemory(t *testing.T) {
	d, _ := NewDevice(128, key)
	if err := d.ReceiveFill(make([]uint16, 64)); err == nil {
		t.Fatal("partial fill accepted — bounded memory argument broken")
	}
	v := &Verifier{Key: key, MemWords: 128}
	if _, err := v.SecureCodeUpdate(d, make([]uint16, 500), rand.New(rand.NewSource(5))); err == nil {
		t.Fatal("oversized code accepted")
	}
}

func TestNonceFreshness(t *testing.T) {
	// Two updates with the same image but different nonces must produce
	// different checksums.
	d, _ := NewDevice(128, key)
	image := make([]uint16, 128)
	d.ReceiveFill(image)
	c1, _ := d.Checksum(1)
	c2, _ := d.Checksum(2)
	if c1 == c2 {
		t.Fatal("checksum independent of nonce — replayable")
	}
}

func TestProtocolTime(t *testing.T) {
	// 4K words over 1 Mbit/s with a 1 MB/s MAC: 8192 bytes -> ~65.5 ms
	// transfer + ~8.2 ms MAC.
	got := ProtocolTime(4096, 1_000_000, 1_000_000)
	if got < 70*time.Millisecond || got > 80*time.Millisecond {
		t.Fatalf("ProtocolTime = %v", got)
	}
	// Larger memory must take longer.
	if ProtocolTime(8192, 1_000_000, 1_000_000) <= got {
		t.Fatal("protocol time not monotone in memory size")
	}
}
