// Package pose implements the Perito–Tsudik proofs-of-secure-erasure and
// secure code update protocol [ESORICS'10] on the bounded-memory embedded
// CPU — the mechanism that inspired SACHa (paper §2.2) and the baseline
// it is compared against.
//
// The verifier sends data filling the prover's *entire* memory; because
// the memory is bounded, any previously resident (possibly malicious)
// code is necessarily erased. The device then proves it by returning a
// MAC over the full memory content and a verifier nonce, computed by a
// small immutable ROM routine (modelled natively — the ROM is immutable
// by assumption, so native modelling is exact).
package pose

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"time"

	"sacha/internal/cmac"
	"sacha/internal/cpu"
)

// Device is a PoSE-capable embedded device: a bounded-memory CPU plus an
// immutable ROM holding the communication/MAC routine and the key.
type Device struct {
	M *cpu.Machine

	key [16]byte
	// skipRanges, when non-empty, models a *cheating* device that
	// pretends to overwrite but preserves resident code in the given
	// [start, end) word ranges — used by tests to show why the bounded
	// memory model catches it.
	skipRanges [][2]int
}

// NewDevice returns a device with the given memory size and ROM key.
func NewDevice(memWords int, key [16]byte) (*Device, error) {
	m, err := cpu.New(memWords)
	if err != nil {
		return nil, err
	}
	return &Device{M: m, key: key}, nil
}

// Cheat makes the device preserve the given word range across fills,
// modelling malware that refuses to be erased.
func (d *Device) Cheat(start, end int) {
	d.skipRanges = append(d.skipRanges, [2]int{start, end})
}

// ReceiveFill is the ROM's receive-and-write routine: the payload must
// cover the entire memory, or the bounded-memory argument does not hold.
func (d *Device) ReceiveFill(words []uint16) error {
	if len(words) != len(d.M.Mem) {
		return fmt.Errorf("pose: fill of %d words does not cover the %d-word memory", len(words), len(d.M.Mem))
	}
	for i, w := range words {
		preserved := false
		for _, r := range d.skipRanges {
			if i >= r[0] && i < r[1] {
				preserved = true
				break
			}
		}
		if !preserved {
			d.M.Mem[i] = w
		}
	}
	return nil
}

// Checksum is the ROM's attestation routine: MAC over nonce plus the
// entire memory content.
func (d *Device) Checksum(nonce uint64) ([16]byte, error) {
	mac, err := cmac.New(d.key[:])
	if err != nil {
		return [16]byte{}, err
	}
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], nonce)
	mac.Update(nb[:])
	mac.Update(d.M.MemBytes())
	return mac.Sum(), nil
}

// Execute resets the CPU and runs the freshly installed code.
func (d *Device) Execute(maxCycles int64) error {
	d.M.Reset()
	return d.M.Run(maxCycles)
}

// Verifier holds the shared key and the known memory size of the device
// (the protocol's central assumption).
type Verifier struct {
	Key      [16]byte
	MemWords int
}

// Report is the outcome of one secure code update.
type Report struct {
	Accepted bool
	// Image is the memory image that was installed (code + random fill).
	Image []uint16
}

// SecureCodeUpdate runs the full protocol: build an image that embeds the
// code and fills the rest of the memory with verifier randomness, install
// it, and check the returned proof of secure erasure.
func (v *Verifier) SecureCodeUpdate(d *Device, code []uint16, rng *rand.Rand) (*Report, error) {
	if len(code) > v.MemWords {
		return nil, fmt.Errorf("pose: code of %d words exceeds device memory (%d)", len(code), v.MemWords)
	}
	image := make([]uint16, v.MemWords)
	copy(image, code)
	for i := len(code); i < v.MemWords; i++ {
		image[i] = uint16(rng.Intn(1 << 16))
	}
	if err := d.ReceiveFill(image); err != nil {
		return nil, err
	}
	nonce := rng.Uint64()
	got, err := d.Checksum(nonce)
	if err != nil {
		return nil, err
	}

	mac, err := cmac.New(v.Key[:])
	if err != nil {
		return nil, err
	}
	var nb [8]byte
	binary.BigEndian.PutUint64(nb[:], nonce)
	mac.Update(nb[:])
	mac.Update(imageBytes(image))
	want := mac.Sum()
	return &Report{Accepted: cmac.Equal(got, want), Image: image}, nil
}

func imageBytes(words []uint16) []byte {
	out := make([]byte, 0, len(words)*2)
	for _, w := range words {
		out = append(out, byte(w>>8), byte(w))
	}
	return out
}

// ProtocolTime is the analytic duration of one PoSE round over a link of
// the given bit rate: transferring the full memory plus the MAC
// computation at the device's (modest) speed. Used by the baseline
// comparison bench.
func ProtocolTime(memWords int, linkBitsPerSec int64, macBytesPerSec int64) time.Duration {
	bytes := int64(memWords) * 2
	transfer := time.Duration(bytes * 8 * int64(time.Second) / linkBitsPerSec)
	macTime := time.Duration(bytes * int64(time.Second) / macBytesPerSec)
	return transfer + macTime
}
