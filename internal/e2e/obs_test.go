// End-to-end checks of the observability layer: the per-phase wall-time
// breakdown must account for the whole run, and a completed attestation
// must be visible in the process-wide metric families exactly as the
// /metrics endpoint would expose them.
package e2e

import (
	"strings"
	"testing"

	"sacha/internal/channel"
	"sacha/internal/obs"
	"sacha/internal/trace"
	"sacha/internal/verifier"
)

// TestPhaseBreakdownAccountsForElapsed runs full attestations (lockstep
// and windowed) and checks the contract documented on Report: the four
// phase durations are measured at contiguous checkpoints, so their sum
// equals Elapsed.
func TestPhaseBreakdownAccountsForElapsed(t *testing.T) {
	for _, window := range []int{1, 8} {
		r := newRig(t)
		ep := r.serveSim(t, channel.FaultConfig{})
		opts := verifier.Options{Retry: retryPolicy()}
		opts.Retry.Window = window
		rep, err := r.vrf.Attest(ep, r.golden, r.dyn, opts)
		if err != nil {
			t.Fatalf("window %d: attest: %v", window, err)
		}
		if !rep.Accepted {
			t.Fatalf("window %d: clean run rejected", window)
		}
		ph := rep.Phases
		if ph.Config <= 0 || ph.Readback <= 0 || ph.Checksum <= 0 || ph.Verdict < 0 {
			t.Errorf("window %d: non-positive phase in %+v", window, ph)
		}
		if rep.Elapsed <= 0 {
			t.Errorf("window %d: Elapsed = %v", window, rep.Elapsed)
		}
		if ph.Sum() != rep.Elapsed {
			t.Errorf("window %d: phases sum to %v, Elapsed is %v (contiguous checkpoints must telescope)",
				window, ph.Sum(), rep.Elapsed)
		}
	}
}

// TestRunPopulatesMetricFamilies scrapes the Default registry after a
// successful run and checks the core families a /metrics consumer
// depends on: per-phase histograms and the verdict counter.
func TestRunPopulatesMetricFamilies(t *testing.T) {
	r := newRig(t)
	ep := r.serveSim(t, channel.FaultConfig{})
	rep, err := r.vrf.Attest(ep, r.golden, r.dyn, verifier.Options{Retry: retryPolicy()})
	if err != nil {
		t.Fatalf("attest: %v", err)
	}
	if !rep.Accepted {
		t.Fatal("clean run rejected")
	}

	var b strings.Builder
	if err := obs.Default().WritePrometheus(&b); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		`sacha_attest_phase_seconds_count{phase="config"}`,
		`sacha_attest_phase_seconds_count{phase="readback"}`,
		`sacha_attest_phase_seconds_count{phase="checksum"}`,
		`sacha_attest_phase_seconds_count{phase="verdict"}`,
		`sacha_attest_runs_total{verdict="accepted"}`,
		"sacha_attest_frames_read_total",
		"sacha_attest_run_seconds_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestEventsSinkSeesWholeRun bridges the protocol trace of a run into
// an obs.TraceSink and checks the live aggregation covers every frame
// despite a tiny retention cap.
func TestEventsSinkSeesWholeRun(t *testing.T) {
	r := newRig(t)
	ep := r.serveSim(t, channel.FaultConfig{})
	sink := obs.NewTraceSink(obs.NewRegistry())
	events := trace.NewLog(2)
	events.SetSink(sink)
	rep, err := r.vrf.Attest(ep, r.golden, r.dyn, verifier.Options{Retry: retryPolicy(), Events: events})
	if err != nil {
		t.Fatalf("attest: %v", err)
	}
	var b strings.Builder
	if err := sink.Table(&b); err != nil {
		t.Fatalf("Table: %v", err)
	}
	if !strings.Contains(b.String(), string(trace.KindReadback)) {
		t.Errorf("live table missing %s rows:\n%s", trace.KindReadback, b.String())
	}
	if got := events.Count(trace.KindReadback); got != rep.FramesRead {
		t.Errorf("trace counted %d readbacks, report says %d", got, rep.FramesRead)
	}
}
