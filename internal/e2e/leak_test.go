package e2e

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
	"sacha/internal/obs"
	"sacha/internal/swarm"
	"sacha/internal/verifier"
)

// TestSweepCancellationLeaksNothing cancels a fleet sweep mid-flight
// and then requires a full cleanup: the Sessions join must release (no
// abandoned attestation or receive-pump goroutine still running), the
// process goroutine count must return to its pre-sweep baseline, and
// the in-flight gauges must read zero. This is the leak surface a soak
// campaign hammers thousands of times — one stuck session per kill
// would otherwise accumulate into an unbounded-memory failure.
func TestSweepCancellationLeaksNothing(t *testing.T) {
	fleet, err := swarm.NewFleet(8, func(id uint64) (*core.System, error) {
		return core.NewSystem(core.Config{
			Geo:        device.TinyLX(),
			App:        netlist.Blinker(8),
			KeyMode:    core.KeyStatPUF,
			DeviceID:   id,
			BuildID:    rigBuildID,
			LabLatency: -1,
			Seed:       int64(id),
		})
	})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}

	runtime.GC()
	baseline := runtime.NumGoroutine()

	var sessions sync.WaitGroup
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var started atomic.Int64
	_, err = fleet.Sweep(ctx, swarm.SweepConfig{
		Concurrency: 4,
		SharePlans:  true,
		Sessions:    &sessions,
	}, func(id uint64) core.AttestOptions {
		// Cut the sweep down after the third device starts, with workers
		// mid-protocol — the campaign's kill event.
		if started.Add(1) == 3 {
			cancel()
		}
		var o core.AttestOptions
		o.Opts.Retry = verifier.RetryPolicy{
			Timeout:    100 * time.Millisecond,
			MaxRetries: 4,
			Backoff:    2 * time.Millisecond,
			MaxBackoff: 10 * time.Millisecond,
			Seed:       int64(id),
			Window:     8,
		}
		return o
	})
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}

	// The join must release: every session the sweep launched — the
	// abandoned ones included — runs to completion on the in-process
	// link instead of leaking.
	joined := make(chan struct{})
	go func() { sessions.Wait(); close(joined) }()
	select {
	case <-joined:
	case <-time.After(30 * time.Second):
		t.Fatal("Sessions join did not release: abandoned attestation goroutines still running")
	}

	// Goroutine count settles back to the baseline (pumps, session
	// goroutines and sweep workers all gone).
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= baseline {
			break
		} else if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d > baseline %d\n%s", n, baseline,
				buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(20 * time.Millisecond)
	}

	// No stuck in-flight accounting: both gauges read zero once the
	// stragglers drained. (Registration is idempotent — these resolve to
	// the families swarm and attestation already registered.)
	sweepInflight := obs.Default().Gauge("sacha_sweep_inflight",
		"Device attestations currently running in fleet sweeps.")
	windowInflight := obs.Default().Gauge("sacha_attest_window_inflight",
		"Envelopes currently in flight in windowed sessions.")
	if v := sweepInflight.Value(); v != 0 {
		t.Errorf("sacha_sweep_inflight = %d after cancelled sweep, want 0", v)
	}
	if v := windowInflight.Value(); v != 0 {
		t.Errorf("sacha_attest_window_inflight = %d after cancelled sweep, want 0", v)
	}
}
