// Package e2e holds end-to-end attestation tests: a real prover device
// served over a transport (loopback TCP or the simulated pair), a real
// verifier driving the full Fig. 9 protocol, and the fault injector
// between them. The target is TinyLX — small enough that a full-device
// attestation runs in milliseconds, so faults can be swept per kind and
// per protocol phase.
package e2e

import (
	"net"
	"testing"
	"time"

	"sacha/internal/channel"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/netlist"
	"sacha/internal/prover"
	"sacha/internal/verifier"
)

const (
	rigBuildID = 0xD00D
	rigNonce   = 0xCAFEBABE
)

var rigKey = prover.RegisterKey{3, 1, 4, 1, 5}

// rig is one prover/verifier pairing over a tiny device: a powered-on
// device holding the booted static partition, the golden image the
// verifier expects, and the dynamic frame list to configure.
type rig struct {
	geo    *device.Geometry
	dev    *prover.Device
	vrf    *verifier.Verifier
	golden *fabric.Image
	dyn    []int
}

func newRig(t testing.TB) *rig {
	t.Helper()
	geo := device.TinyLX()
	golden, dyn, err := core.BuildGolden(geo, netlist.Blinker(8), rigBuildID, rigNonce)
	if err != nil {
		t.Fatalf("golden build: %v", err)
	}
	dev, err := prover.New(prover.Config{
		Geo:     geo,
		BootMem: core.BuildBootMem(geo, rigBuildID),
		Key:     rigKey,
	})
	if err != nil {
		t.Fatalf("prover: %v", err)
	}
	if err := dev.PowerOn(); err != nil {
		t.Fatalf("power-on: %v", err)
	}
	var key [16]byte = rigKey
	return &rig{geo: geo, dev: dev, vrf: verifier.New(geo, key), golden: golden, dyn: dyn}
}

// retryPolicy is the reliable-transport configuration used by the e2e
// runs: short timeouts tuned for loopback latency.
func retryPolicy() verifier.RetryPolicy {
	return verifier.RetryPolicy{
		Timeout:    30 * time.Millisecond,
		MaxRetries: 8,
		Backoff:    time.Millisecond,
		MaxBackoff: 8 * time.Millisecond,
		Seed:       1,
	}
}

// serveTCP exposes the rig's device on a loopback TCP listener and
// returns its address. Sessions are served sequentially, exactly like
// cmd/sacha-prover: after a connection ends (clean close or injected
// reset), the device accepts the next verifier.
func (r *rig) serveTCP(t testing.TB) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			ep := channel.NewTCP(conn)
			r.dev.Serve(ep)
			ep.Close()
		}
	}()
	return ln.Addr().String()
}

// dialFaulty connects to addr and wraps the connection in the fault
// injector.
func dialFaulty(t testing.TB, addr string, cfg channel.FaultConfig) *channel.FaultEndpoint {
	t.Helper()
	tep, err := channel.Dial(addr)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	ep := channel.NewFault(tep, cfg)
	t.Cleanup(func() { ep.Close() })
	return ep
}

// serveSim serves the rig's device on a simulated channel pair and
// returns the verifier side wrapped in the fault injector.
func (r *rig) serveSim(t testing.TB, cfg channel.FaultConfig) *channel.FaultEndpoint {
	t.Helper()
	vrfEP, prvEP := channel.SimPair(channel.SimConfig{})
	go r.dev.Serve(prvEP)
	ep := channel.NewFault(vrfEP, cfg)
	t.Cleanup(func() { ep.Close() })
	return ep
}
