// End-to-end smoke of the fleetd coordinator: the daemon is stood up
// in-process against a mixed TinyLX/SmallLX fleet with its control API
// served over real HTTP (the same obs mux the binary uses), a sweep is
// triggered through POST /fleet/sweep, /fleet/status is polled to
// completion, and the shutdown path is exercised: drain refuses new
// sweeps with 503 and Run returns with every session joined. CI runs
// this under -race; a second, binary-level smoke lives in the workflow
// (build sacha-fleetd, curl it, SIGTERM, assert exit 0).
package e2e

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"sacha/internal/attestation"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/fleet"
	"sacha/internal/fleet/dispatch"
	"sacha/internal/fleet/fleetd"
	"sacha/internal/fleet/registry"
	"sacha/internal/fleet/scheduler"
	"sacha/internal/netlist"
	"sacha/internal/obs"
	"sacha/internal/prover"
)

// fleetdFactory provisions the smoke fleet: mixed geometries, DynPart
// PUF keys, deterministic seeds.
func fleetdFactory(id uint64) (*core.System, error) {
	geo := device.TinyLX()
	if id%2 == 0 {
		geo = device.SmallLX()
	}
	return core.NewSystem(core.Config{
		Geo:        geo,
		App:        netlist.Blinker(8),
		KeyMode:    core.KeyDynPUF,
		DeviceID:   id,
		BuildID:    0xF1EE7,
		LabLatency: -1,
		Seed:       int64(id) * 31,
	})
}

func getJSON(t *testing.T, url string, into any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(into); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

// TestFleetdControlAPISmoke is the in-process version of the CI fleetd
// smoke: bring the daemon up, sweep over the API, poll to completion,
// assert verdicts (the tampered member must be isolated), then drain.
func TestFleetdControlAPISmoke(t *testing.T) {
	const size = 10
	reg, err := registry.New(size, fleetdFactory)
	if err != nil {
		t.Fatal(err)
	}
	// One compromised member: device 3's dynamic partition is corrupted
	// after every configuration, so the control-plane smoke proves
	// verdicts flow through the API, not just that requests return 200.
	tamper := func(id uint64) core.AttestOptions {
		if id != 3 {
			return core.AttestOptions{}
		}
		sys, _ := reg.System(id)
		return core.AttestOptions{TamperDevice: func(d *prover.Device) {
			d.Fabric.Mem.Frame(sys.DynFrames()[1])[2] ^= 4
		}}
	}

	daemon := fleetd.New(fleetd.Config{
		Registry:   reg,
		Dispatcher: dispatch.New(dispatch.Config{Shards: 4, PlanCacheSize: 4}),
		Template: fleet.SweepConfig{
			Concurrency: 4,
			SharePlans:  true,
			Freshness:   attestation.PerDevice,
		},
		Opts:       tamper,
		DrainGrace: 30 * time.Second,
	})
	srv, addr, err := obs.Serve("127.0.0.1:0", nil, daemon.Tracker(), daemon.Routes()...)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr.String()

	ctx, cancel := context.WithCancel(context.Background())
	ran := make(chan struct{})
	go func() {
		daemon.Run(ctx)
		close(ran)
	}()

	var devices struct {
		Devices []struct {
			ID    uint64 `json:"id"`
			Class string `json:"class"`
			Shard int    `json:"shard"`
		} `json:"devices"`
		Classes []string `json:"classes"`
	}
	getJSON(t, base+"/fleet/devices", &devices)
	if len(devices.Devices) != size || len(devices.Classes) != 2 {
		t.Fatalf("membership: %d devices, %d classes", len(devices.Devices), len(devices.Classes))
	}
	shardOf := map[string]int{}
	for _, d := range devices.Devices {
		if prev, ok := shardOf[d.Class]; ok && prev != d.Shard {
			t.Fatalf("class %s split across shards %d and %d", d.Class, prev, d.Shard)
		}
		shardOf[d.Class] = d.Shard
	}

	resp, err := http.Post(base+"/fleet/sweep", "application/json", bytes.NewBufferString("{}"))
	if err != nil {
		t.Fatal(err)
	}
	var started struct {
		ID     int    `json:"id"`
		Status string `json:"status"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&started); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted || started.ID == 0 || started.Status != "started" {
		t.Fatalf("POST /fleet/sweep: status %d, body %+v", resp.StatusCode, started)
	}

	var status struct {
		SweepsRun int                 `json:"sweeps_run"`
		Active    *fleetd.SweepRecord `json:"active"`
		Draining  bool                `json:"draining"`
		Last      *fleetd.SweepRecord `json:"last"`
		Verdicts  map[string]int      `json:"last_verdicts"`
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		getJSON(t, base+"/fleet/status", &status)
		if status.Last != nil && status.Last.ID >= started.ID && status.Active == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("sweep %d did not complete; status %+v", started.ID, status)
		}
		time.Sleep(50 * time.Millisecond)
	}
	last := status.Last
	if last.Devices != size || last.Healthy != size-1 || last.Compromised != 1 {
		t.Fatalf("sweep verdicts: %+v", last)
	}
	if len(last.CompromisedIDs) != 1 || last.CompromisedIDs[0] != 3 {
		t.Fatalf("compromised set %v, want [3]", last.CompromisedIDs)
	}
	if status.Verdicts[obs.VerdictHealthy] != size-1 || status.Verdicts[obs.VerdictCompromised] != 1 {
		t.Fatalf("status verdict tallies %v", status.Verdicts)
	}
	if len(last.PerShard) != 4 {
		t.Fatalf("per-shard stats: %d shards", len(last.PerShard))
	}
	if last.PlanPatches != size {
		t.Fatalf("per-device freshness patched %d plans, want %d", last.PlanPatches, size)
	}

	// A scoped sweep over one class, synchronously this time.
	body, _ := json.Marshal(map[string]any{"class": devices.Classes[0], "wait": true})
	resp, err = http.Post(base+"/fleet/sweep", "application/json", bytes.NewBuffer(body))
	if err != nil {
		t.Fatal(err)
	}
	var scoped fleetd.SweepRecord
	if err := json.NewDecoder(resp.Body).Decode(&scoped); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if scoped.Class != devices.Classes[0] || scoped.Devices == 0 || scoped.Devices == size {
		t.Fatalf("class-scoped sweep swept %d devices of class %q", scoped.Devices, scoped.Class)
	}

	var history struct {
		Sweeps []fleetd.SweepRecord `json:"sweeps"`
	}
	getJSON(t, base+"/fleet/sweeps", &history)
	if len(history.Sweeps) != 2 || history.Sweeps[0].ID != scoped.ID {
		t.Fatalf("history: %d records, newest %d", len(history.Sweeps), history.Sweeps[0].ID)
	}

	// Shutdown: drain must complete (sessions joined) and the API must
	// refuse sweeps while it does.
	cancel()
	select {
	case <-ran:
	case <-time.After(time.Minute):
		t.Fatal("daemon did not drain")
	}
	resp, err = http.Post(base+"/fleet/sweep", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining daemon answered POST /fleet/sweep with %d, want 503", resp.StatusCode)
	}
	getJSON(t, base+"/fleet/status", &status)
	if !status.Draining {
		t.Fatal("status does not report draining after shutdown")
	}
}

// TestFleetdScheduledSweeps checks the scheduler path: with a fast
// default cadence the daemon re-attests on its own, and the records
// carry the "scheduled" trigger.
func TestFleetdScheduledSweeps(t *testing.T) {
	reg, err := registry.New(4, fleetdFactory)
	if err != nil {
		t.Fatal(err)
	}
	daemon := fleetd.New(fleetd.Config{
		Registry: reg,
		Template: fleet.SweepConfig{Concurrency: 2, SharePlans: true},
		Scheduler: scheduler.Config{
			Default: scheduler.Cadence{Every: 30 * time.Millisecond, Jitter: 10 * time.Millisecond},
			Seed:    7,
		},
	})
	ctx, cancel := context.WithCancel(context.Background())
	ran := make(chan struct{})
	go func() {
		daemon.Run(ctx)
		close(ran)
	}()
	deadline := time.Now().Add(time.Minute)
	for {
		rec, ok := lastRecord(daemon)
		if ok && rec.Trigger == "scheduled" && rec.Class != "" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("no scheduled sweep completed")
		}
		time.Sleep(20 * time.Millisecond)
	}
	cancel()
	select {
	case <-ran:
	case <-time.After(time.Minute):
		t.Fatal("daemon did not drain")
	}
}

// lastRecord peeks the newest record through the status handler — the
// same surface the binary's pollers use, no private state touched.
func lastRecord(d *fleetd.Daemon) (fleetd.SweepRecord, bool) {
	rr := httptest.NewRecorder()
	for _, r := range d.Routes() {
		if r.Pattern == "/fleet/status" {
			r.Handler.ServeHTTP(rr, httptest.NewRequest(http.MethodGet, "/fleet/status", nil))
		}
	}
	var status struct {
		Last *fleetd.SweepRecord `json:"last"`
	}
	if err := json.Unmarshal(rr.Body.Bytes(), &status); err != nil || status.Last == nil {
		return fleetd.SweepRecord{}, false
	}
	return *status.Last, true
}
