package e2e

import (
	"fmt"
	"testing"
	"time"

	"sacha/internal/channel"
	"sacha/internal/verifier"
)

// windowedPolicy is matrixPolicy with an 8-deep pipeline.
func windowedPolicy() verifier.RetryPolicy {
	p := matrixPolicy()
	p.Window = 8
	return p
}

// TestFaultMatrixWindowed re-runs the scripted single-fault sweep with
// the pipelined session (Window = 8). The contract is strictly stronger
// than lockstep recovery: for every fault script the windowed run must
// produce the SAME verdict — and the same H_Vrf — as a clean lockstep
// attestation, because the window engine re-orders arrivals into plan
// order before the order-sensitive CMAC absorbs them. The reorder fault
// is the sharp case: with several envelopes legitimately in flight, the
// engine must tell transport reordering apart from frame misdelivery.
func TestFaultMatrixWindowed(t *testing.T) {
	r0 := newRig(t)
	c := len(r0.dyn)
	n := r0.geo.NumFrames()

	// Clean lockstep baseline: the verdict every faulted windowed run
	// must reproduce bit-for-bit.
	base := newRig(t)
	baseEP := base.serveSim(t, channel.FaultConfig{})
	baseRep, err := base.vrf.Attest(baseEP, base.golden, base.dyn, verifier.Options{Retry: matrixPolicy()})
	if err != nil {
		t.Fatalf("lockstep baseline: %v", err)
	}
	if !baseRep.Accepted {
		t.Fatalf("lockstep baseline rejected: %+v", baseRep)
	}

	phases := []struct {
		name  string
		index int
	}{
		{"config", c / 2},
		{"readback", c + n/2},
		{"checksum", c + n},
	}
	kinds := []channel.FaultKind{
		channel.FaultDrop,
		channel.FaultDuplicate,
		channel.FaultReorder,
		channel.FaultCorrupt,
		channel.FaultDelay,
	}
	dirs := []struct {
		name string
		dir  channel.Direction
	}{
		{"cmd", channel.DirSend},
		{"resp", channel.DirRecv},
	}

	seed := int64(1000)
	for _, ph := range phases {
		for _, k := range kinds {
			for _, d := range dirs {
				seed++
				name := fmt.Sprintf("%s/%s/%s", ph.name, k, d.name)
				cfg := channel.FaultConfig{
					Seed:   seed,
					Delay:  5 * time.Millisecond,
					Script: []channel.FaultOp{{Dir: d.dir, Index: ph.index, Kind: k}},
				}
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					r := newRig(t)
					ep := r.serveSim(t, cfg)
					rep, err := r.vrf.Attest(ep, r.golden, r.dyn, verifier.Options{Retry: windowedPolicy()})
					if err != nil {
						t.Fatalf("windowed run under single %v fault failed: %v", k, err)
					}
					if rep.Accepted != baseRep.Accepted || rep.MACOK != baseRep.MACOK || rep.ConfigOK != baseRep.ConfigOK {
						t.Fatalf("verdict diverged from lockstep: windowed (acc=%v mac=%v cfg=%v), lockstep (acc=%v mac=%v cfg=%v)",
							rep.Accepted, rep.MACOK, rep.ConfigOK,
							baseRep.Accepted, baseRep.MACOK, baseRep.ConfigOK)
					}
					if rep.HVrf != baseRep.HVrf {
						t.Fatalf("H_Vrf diverged from lockstep under %v: %x != %x", k, rep.HVrf, baseRep.HVrf)
					}
					if rep.FramesRead != n {
						t.Fatalf("read %d frames, want %d", rep.FramesRead, n)
					}
				})
			}
		}
	}
}

// TestWindowedTCP drives the pipelined session over a real loopback TCP
// connection — the transport a deployed verifier uses — rather than the
// in-process pair.
func TestWindowedTCP(t *testing.T) {
	r := newRig(t)
	addr := r.serveTCP(t)
	ep := dialFaulty(t, addr, channel.FaultConfig{})
	pol := retryPolicy()
	pol.Window = 16
	rep, err := r.vrf.Attest(ep, r.golden, r.dyn, verifier.Options{Retry: pol})
	if err != nil {
		t.Fatalf("windowed TCP attestation: %v", err)
	}
	if !rep.Accepted {
		t.Fatalf("windowed TCP attestation rejected: %+v", rep)
	}
	if rep.FramesRead != r.geo.NumFrames() {
		t.Fatalf("read %d frames, want %d", rep.FramesRead, r.geo.NumFrames())
	}
}
