package e2e

import (
	"fmt"
	"testing"
	"time"

	"sacha/internal/attestation"
	"sacha/internal/channel"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
	"sacha/internal/prover"
	"sacha/internal/swarm"
	"sacha/internal/verifier"
)

// freshnessFleet provisions a TinyLX fleet in the DynPart-PUF key mode,
// the only provisioning all three freshness policies (including
// RotateKey) can run against.
func freshnessFleet(t testing.TB, size int) *swarm.Fleet {
	t.Helper()
	f, err := swarm.NewFleet(size, func(id uint64) (*core.System, error) {
		return core.NewSystem(core.Config{
			Geo:        device.TinyLX(),
			App:        netlist.Blinker(8),
			KeyMode:    core.KeyDynPUF,
			DeviceID:   id,
			LabLatency: -1,
			Seed:       int64(id),
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func allPolicies() []attestation.FreshnessPolicy {
	return []attestation.FreshnessPolicy{
		attestation.PerSweep,
		attestation.PerDevice,
		attestation.RotateKey,
	}
}

// TestFreshnessPoliciesFaultMatrix sweeps every recoverable fault kind
// across the protocol phases under all three freshness policies: one
// scripted fault per member, each member hit in a different phase. A
// single in-budget fault must never change a verdict, no matter which
// freshness unit the sweep runs — the patched-plan and rotated-key paths
// inherit the reliable transport unchanged.
func TestFreshnessPoliciesFaultMatrix(t *testing.T) {
	// Send indexing (stop-and-wait, config batch 1): sends 0..C-1 are
	// ICAP_config, C..C+N-1 ICAP_readback, C+N the checksum.
	probe := freshnessFleet(t, 1)
	sys, _ := probe.System(1)
	c := len(sys.DynFrames())
	n := sys.Geo.NumFrames()
	phaseIndex := []int{c / 2, c + n/2, c + n} // config, readback, checksum

	kinds := []channel.FaultKind{
		channel.FaultDrop,
		channel.FaultDuplicate,
		channel.FaultReorder,
		channel.FaultCorrupt,
		channel.FaultDelay,
	}
	for _, pol := range allPolicies() {
		for _, k := range kinds {
			t.Run(fmt.Sprintf("%s/%s", pol, k), func(t *testing.T) {
				t.Parallel()
				f := freshnessFleet(t, len(phaseIndex))
				rep, err := f.Sweep(t.Context(), swarm.SweepConfig{
					Concurrency: len(phaseIndex),
					SharePlans:  true,
					Freshness:   pol,
				}, func(id uint64) core.AttestOptions {
					idx := phaseIndex[(id-1)%uint64(len(phaseIndex))]
					return core.AttestOptions{
						Opts: verifier.Options{Retry: matrixPolicy()},
						WrapVerifierChannel: func(ep channel.Endpoint) channel.Endpoint {
							return channel.NewFault(ep, channel.FaultConfig{
								Seed:   int64(id),
								Delay:  5 * time.Millisecond,
								Script: []channel.FaultOp{{Dir: channel.DirSend, Index: idx, Kind: k}},
							})
						},
					}
				})
				if err != nil {
					t.Fatal(err)
				}
				if len(rep.Healthy) != f.Size() {
					t.Fatalf("policy %s fault %v: healthy=%v compromised=%v unreachable=%v failed=%v",
						pol, k, rep.Healthy, rep.Compromised, rep.Unreachable, rep.Failed)
				}
			})
		}
	}
}

// TestFreshnessPoliciesIsolateTamper: under every policy a tampered
// member lands in Compromised and its classmates stay Healthy — nonce
// rotation and key rotation must not blunt (or over-trigger) detection.
func TestFreshnessPoliciesIsolateTamper(t *testing.T) {
	const size, bad = 4, 2
	for _, pol := range allPolicies() {
		t.Run(pol.String(), func(t *testing.T) {
			f := freshnessFleet(t, size)
			rep, err := f.Sweep(t.Context(), swarm.SweepConfig{
				Concurrency: size,
				SharePlans:  true,
				Freshness:   pol,
			}, func(id uint64) core.AttestOptions {
				if id != bad {
					return core.AttestOptions{}
				}
				sys, _ := f.System(id)
				return core.AttestOptions{TamperDevice: func(d *prover.Device) {
					d.Fabric.Mem.Frame(sys.DynFrames()[3])[5] ^= 2
				}}
			})
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Compromised) != 1 || rep.Compromised[0] != bad {
				t.Fatalf("policy %s: compromised = %v, want [%d]", pol, rep.Compromised, bad)
			}
			if len(rep.Healthy) != size-1 {
				t.Fatalf("policy %s: healthy = %v", pol, rep.Healthy)
			}
		})
	}
}

// TestPerSweepMatchesLockstepBaseline pins the PerSweep policy to the
// pre-policy behaviour: a sweep with a pinned nonce must produce, for
// every device, exactly the H_Vrf of a direct lockstep attestation at
// that nonce. The freshness engine being off (PerSweep is the zero
// value) may not perturb a single MAC bit.
func TestPerSweepMatchesLockstepBaseline(t *testing.T) {
	const size = 3
	f := freshnessFleet(t, size)
	nonce := uint64(0xCAFEBABE)

	baseline := make(map[uint64][16]byte, size)
	for id := uint64(1); id <= size; id++ {
		sys, _ := f.System(id)
		rep, err := sys.Attest(core.AttestOptions{Nonce: &nonce})
		if err != nil || !rep.Accepted {
			t.Fatalf("baseline attest of device %d: %v", id, err)
		}
		baseline[id] = rep.HVrf
	}

	rep, err := f.Sweep(t.Context(), swarm.SweepConfig{
		Concurrency: size,
		SharePlans:  true,
		Nonce:       &nonce,
		// Freshness deliberately unset: the zero value must be PerSweep.
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Healthy) != size {
		t.Fatalf("healthy = %v", rep.Healthy)
	}
	if rep.PlanPatches != 0 {
		t.Fatalf("PerSweep sweep patched %d plans, want 0", rep.PlanPatches)
	}
	for _, r := range rep.Results {
		if r.Report.HVrf != baseline[r.DeviceID] {
			t.Fatalf("device %d: sweep H_Vrf differs from lockstep baseline at the same nonce", r.DeviceID)
		}
	}
}

// TestPerDeviceMatchesDirectAttest is the end-to-end differential: each
// device of a PerDevice sweep was attested through a WithNonce patch of
// the shared plan; re-attesting it directly (cold golden build, cold
// plan) at the very nonce the sweep drew must reproduce the same H_Vrf.
func TestPerDeviceMatchesDirectAttest(t *testing.T) {
	const size = 3
	for _, pol := range []attestation.FreshnessPolicy{attestation.PerDevice, attestation.RotateKey} {
		t.Run(pol.String(), func(t *testing.T) {
			f := freshnessFleet(t, size)
			rep, err := f.Sweep(t.Context(), swarm.SweepConfig{
				Concurrency: size,
				SharePlans:  true,
				Freshness:   pol,
			}, nil)
			if err != nil {
				t.Fatal(err)
			}
			if len(rep.Healthy) != size {
				t.Fatalf("healthy=%v failed=%v", rep.Healthy, rep.Failed)
			}
			for _, r := range rep.Results {
				if !r.PlanPatched {
					t.Fatalf("device %d not patched under %s", r.DeviceID, pol)
				}
				sys, _ := f.System(r.DeviceID)
				direct, err := sys.Attest(core.AttestOptions{Nonce: &r.Nonce})
				if err != nil || !direct.Accepted {
					t.Fatalf("direct attest of device %d: %v", r.DeviceID, err)
				}
				if direct.HVrf != r.Report.HVrf {
					t.Fatalf("device %d: patched-plan H_Vrf differs from cold attest at nonce %#x", r.DeviceID, r.Nonce)
				}
			}
		})
	}
}
