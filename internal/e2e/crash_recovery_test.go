// Crash-recovery end-to-end: the verifier dies mid-sweep — in-process
// (a context cancelled between devices over an abandoned store handle)
// and for real (SIGKILL of the sacha-fleetd binary) — and the restarted
// verifier must (a) resume every device at its persisted key
// generation, (b) refuse every nonce the dead process journaled, and
// (c) produce sweeps bit-identical to an uninterrupted twin that never
// crashed. Durability is only real if the recovered state is
// indistinguishable from never having crashed.
package e2e

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os/exec"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"sacha/internal/attestation"
	"sacha/internal/core"
	"sacha/internal/fleet"
	"sacha/internal/fleet/dispatch"
	"sacha/internal/fleet/fleetd"
	"sacha/internal/fleet/registry"
	"sacha/internal/store"
)

// TestCrashRecoveryTwinEquivalence simulates the verifier crash at the
// dispatch layer: a durable fleet is swept once under RotateKey, then a
// second sweep is killed after exactly one device (concurrency 1, the
// context cancelled when the worker reaches for device two), the store
// handle is abandoned un-closed — the SIGKILL shape — and a fresh
// process image (new store handle, new registry) recovers. The
// recovered run's resumed sweep, unioned with the one pre-crash result,
// must equal an uninterrupted twin bit for bit.
func TestCrashRecoveryTwinEquivalence(t *testing.T) {
	const size = 6
	const (
		seedRotate = uint64(0x517E_ED01) // sweep A: RotateKey nonce base
		seedCrash  = uint64(0x517E_ED02) // sweep B: the crashed sweep's base
		nonceFinal = uint64(0xC0FF_EE03) // sweep C: per-sweep pinned nonce
	)
	dir := t.TempDir()

	st, err := store.Open(dir, store.Options{Sync: store.SyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	durable, err := registry.NewDurable(size, fleetdFactory, st.Enrollment())
	if err != nil {
		t.Fatal(err)
	}
	// The twin never crashes and never persists: same factory, so its
	// systems are bit-identical siblings of the durable fleet's.
	twin, err := registry.New(size, fleetdFactory)
	if err != nil {
		t.Fatal(err)
	}

	serial := dispatch.Config{Shards: 1}
	cfg := func(policy attestation.FreshnessPolicy, base uint64, journal fleet.NonceSpender) fleet.SweepConfig {
		c := fleet.SweepConfig{Concurrency: 1, SharePlans: true, Freshness: policy, Nonces: journal}
		if policy == attestation.PerSweep {
			c.Nonce = &base
		} else {
			c.NonceSeed = &base
		}
		return c
	}

	// Sweep A: RotateKey on both fleets — generations advance to 2, and
	// the durable side journals both the rotations and the derived
	// nonces it spends.
	seed := seedRotate
	if _, err := dispatch.New(serial).Sweep(context.Background(),
		durable, cfg(attestation.RotateKey, seed, st.Nonces()), nil); err != nil {
		t.Fatalf("durable rotate sweep: %v", err)
	}
	twinA, err := dispatch.New(serial).Sweep(context.Background(),
		twin, cfg(attestation.RotateKey, seed, nil), nil)
	if err != nil {
		t.Fatalf("twin rotate sweep: %v", err)
	}
	if twinA.KeysRotated != size {
		t.Fatalf("twin rotated %d keys, want %d", twinA.KeysRotated, size)
	}

	// Sweep B on the twin runs to completion; on the durable fleet it is
	// killed after exactly one device: with one serial worker, the opts
	// callback fires once per device immediately before its session, so
	// cancelling on the second call lands between device one's completed
	// attestation and device two's context check — device one's derived
	// nonce is journaled, nobody else's is.
	twinB, err := dispatch.New(serial).Sweep(context.Background(),
		twin, cfg(attestation.PerDevice, seedCrash, nil), nil)
	if err != nil {
		t.Fatalf("twin sweep B: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	calls := 0
	killOpts := func(uint64) core.AttestOptions {
		calls++
		if calls == 2 {
			cancel()
		}
		return core.AttestOptions{}
	}
	crashed, err := dispatch.New(serial).Sweep(ctx,
		durable, cfg(attestation.PerDevice, seedCrash, st.Nonces()), killOpts)
	if err != nil {
		t.Fatalf("crashed sweep: %v", err)
	}
	var survivor uint64
	completed := 0
	for _, r := range crashed.Results {
		if r.Healthy() {
			survivor = r.DeviceID
			completed++
		}
	}
	if completed != 1 {
		t.Fatalf("crash window: %d devices completed, want exactly 1", completed)
	}

	// The crash: the old handles are simply abandoned (appends are
	// unbuffered writes straight to the fd, so everything the dead
	// process journaled is already on disk), and a fresh process image
	// opens the same directory.
	st2, err := store.Open(dir, store.Options{Sync: store.SyncAlways})
	if err != nil {
		t.Fatalf("reopening store after crash: %v", err)
	}
	defer st2.Close()
	st.Close() // release the abandoned fds only; recovery already read the dir
	recovered, err := registry.NewDurable(size, fleetdFactory, st2.Enrollment())
	if err != nil {
		t.Fatalf("rebuilding registry after crash: %v", err)
	}

	// (a) Generations resumed: every device is at generation 2, same as
	// the twin that never crashed.
	for _, id := range recovered.IDs() {
		sys, _ := recovered.System(id)
		tw, _ := twin.System(id)
		if got, want := sys.KeyGeneration(), tw.KeyGeneration(); got != want || got != 2 {
			t.Fatalf("device %d generation after recovery: %d, twin %d (want 2)", id, got, want)
		}
	}

	// (b) Anti-replay held across the crash: the survivor's derived
	// nonce (and every sweep-A nonce) is still journaled and refused;
	// the interrupted devices' nonces were never spent.
	for _, id := range recovered.IDs() {
		if n := fleet.DeviceNonce(seedRotate, id); !st2.Nonces().Spent(n) {
			t.Fatalf("device %d: sweep-A nonce %#x lost across the crash", id, n)
		}
		n := fleet.DeviceNonce(seedCrash, id)
		if id == survivor {
			if !st2.Nonces().Spent(n) {
				t.Fatalf("survivor %d: spent nonce %#x lost across the crash", id, n)
			}
			if err := st2.Nonces().Spend(n); !errors.Is(err, store.ErrNonceReplayed) {
				t.Fatalf("survivor %d: replaying %#x returned %v, want ErrNonceReplayed", id, n, err)
			}
		} else if st2.Nonces().Spent(n) {
			t.Fatalf("interrupted device %d: nonce %#x spent without an attestation", id, n)
		}
	}

	// (c) Resume sweep B over everyone the crash interrupted, same
	// derivation base. Union with the pre-crash survivor result: the
	// composite must equal the twin's uninterrupted sweep B exactly.
	rest := registry.Select(recovered, func(id uint64, _ string) bool { return id != survivor })
	resumed, err := dispatch.New(serial).Sweep(context.Background(),
		rest, cfg(attestation.PerDevice, seedCrash, st2.Nonces()), nil)
	if err != nil {
		t.Fatalf("resumed sweep: %v", err)
	}
	union := map[uint64]fleet.DeviceResult{}
	for _, r := range crashed.Results {
		if r.DeviceID == survivor {
			union[r.DeviceID] = r
		}
	}
	for _, r := range resumed.Results {
		union[r.DeviceID] = r
	}
	if len(union) != size {
		t.Fatalf("union covers %d devices, want %d", len(union), size)
	}
	for _, want := range twinB.Results {
		got, ok := union[want.DeviceID]
		if !ok {
			t.Fatalf("device %d missing from the resumed union", want.DeviceID)
		}
		if got.Verdict() != want.Verdict() || got.Nonce != want.Nonce {
			t.Fatalf("device %d diverged from twin: verdict %s/%s nonce %#x/%#x",
				want.DeviceID, got.Verdict(), want.Verdict(), got.Nonce, want.Nonce)
		}
		if got.Report == nil || want.Report == nil || got.Report.HVrf != want.Report.HVrf {
			t.Fatalf("device %d H_Vrf diverged from twin after recovery", want.DeviceID)
		}
	}

	// A replayed resume — same derivation base a third time — must fail
	// every member without attesting anyone.
	replay, err := dispatch.New(serial).Sweep(context.Background(),
		recovered, cfg(attestation.PerDevice, seedCrash, st2.Nonces()), nil)
	if err != nil {
		t.Fatalf("replayed sweep: %v", err)
	}
	if len(replay.NonceReplays) != size || len(replay.Healthy) != 0 {
		t.Fatalf("replayed sweep: %d replays, %d healthy (want %d, 0)",
			len(replay.NonceReplays), len(replay.Healthy), size)
	}

	// Sweep C: life after recovery is bit-identical to the twin's.
	gotC, err := dispatch.New(serial).Sweep(context.Background(),
		recovered, cfg(attestation.PerSweep, nonceFinal, st2.Nonces()), nil)
	if err != nil {
		t.Fatalf("recovered sweep C: %v", err)
	}
	wantC, err := dispatch.New(serial).Sweep(context.Background(),
		twin, cfg(attestation.PerSweep, nonceFinal, nil), nil)
	if err != nil {
		t.Fatalf("twin sweep C: %v", err)
	}
	for i := range wantC.Results {
		w, g := wantC.Results[i], gotC.Results[i]
		if w.DeviceID != g.DeviceID || w.Verdict() != g.Verdict() || w.Report.HVrf != g.Report.HVrf {
			t.Fatalf("sweep C device %d diverged from twin", w.DeviceID)
		}
	}
	// And the spent per-sweep nonce is refused at the sweep level.
	var nre *fleet.NonceReplayError
	if _, err := dispatch.New(serial).Sweep(context.Background(),
		recovered, cfg(attestation.PerSweep, nonceFinal, st2.Nonces()), nil); !errors.As(err, &nre) {
		t.Fatalf("replayed per-sweep nonce: err %v, want NonceReplayError", err)
	}
}

// --- binary-level SIGKILL rig -----------------------------------------

// fleetdProc is one run of the sacha-fleetd binary against a state dir.
type fleetdProc struct {
	cmd  *exec.Cmd
	base string // control API base URL, parsed from stderr
	done chan error
}

// startFleetd launches the built binary and waits for its control API
// banner.
func startFleetd(t *testing.T, bin string, args ...string) *fleetdProc {
	t.Helper()
	cmd := exec.Command(bin, append([]string{"-obs-addr", "127.0.0.1:0"}, args...)...)
	stderr, err := cmd.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	baseCh := make(chan string, 1)
	go func() {
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			if i := strings.Index(line, "http://"); i >= 0 && strings.Contains(line, "fleet control API") {
				if j := strings.Index(line[i:], "/fleet"); j > 0 {
					select {
					case baseCh <- line[i : i+j]:
					default:
					}
				}
			}
		}
	}()
	p := &fleetdProc{cmd: cmd, done: make(chan error, 1)}
	go func() { p.done <- cmd.Wait() }()
	select {
	case p.base = <-baseCh:
	case err := <-p.done:
		t.Fatalf("fleetd exited before serving: %v", err)
	case <-time.After(time.Minute):
		cmd.Process.Kill()
		t.Fatal("fleetd did not announce its control API")
	}
	return p
}

func (p *fleetdProc) postSweep(t *testing.T, body map[string]any) fleetd.SweepRecord {
	t.Helper()
	b, _ := json.Marshal(body)
	resp, err := http.Post(p.base+"/fleet/sweep", "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var rec fleetd.SweepRecord
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatalf("POST /fleet/sweep: decode: %v", err)
	}
	return rec
}

func (p *fleetdProc) generations(t *testing.T) map[uint64]uint64 {
	t.Helper()
	var devices struct {
		Devices []struct {
			ID         uint64 `json:"id"`
			Generation uint64 `json:"generation"`
		} `json:"devices"`
	}
	getJSON(t, p.base+"/fleet/devices", &devices)
	out := map[uint64]uint64{}
	for _, d := range devices.Devices {
		out[d.ID] = d.Generation
	}
	return out
}

// TestFleetdCrashRecoverySIGKILL is the real thing: the daemon binary
// is SIGKILLed mid-sweep and restarted on the same -state-dir. The
// second process must boot at the rotated key generations, refuse the
// dead process's nonce derivation base, and attest cleanly under a
// fresh one. This is the CI kill-and-restart smoke in test form.
func TestFleetdCrashRecoverySIGKILL(t *testing.T) {
	if testing.Short() {
		t.Skip("binary crash rig skipped in -short")
	}
	const size = 4
	bin := filepath.Join(t.TempDir(), "sacha-fleetd")
	build := exec.Command("go", "build", "-o", bin, "./cmd/sacha-fleetd")
	build.Dir = "../.."
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building sacha-fleetd: %v\n%s", err, out)
	}
	stateDir := t.TempDir()
	common := []string{
		"-fleet", fmt.Sprint(size), "-seed", "11", "-shards", "1", "-concurrency", "1",
		"-state-dir", stateDir, "-fsync", "always",
	}

	// Run 1: rotate every key (generation 1 → 2, journaled), then start
	// an async sweep slowed by link latency and SIGKILL the daemon while
	// it is mid-fleet.
	p1 := startFleetd(t, bin, append(common, "-link-delay", "2ms")...)
	rec := p1.postSweep(t, map[string]any{"wait": true, "freshness": "rotate-key", "nonce_seed": 12345})
	if rec.Healthy != size || rec.KeysRotated != size {
		t.Fatalf("rotate sweep: %d healthy, %d rotated (want %d, %d)", rec.Healthy, rec.KeysRotated, size, size)
	}
	if gens := p1.generations(t); len(gens) != size {
		t.Fatalf("membership: %d devices", len(gens))
	} else {
		for id, g := range gens {
			if g != 2 {
				t.Fatalf("device %d at generation %d after rotation, want 2", id, g)
			}
		}
	}
	p1.postSweep(t, map[string]any{"freshness": "per-device", "nonce_seed": 67890})
	// Kill as soon as at least one device of the slow sweep has
	// completed — its derived nonce is then journaled while later
	// devices are still (or never) in flight. If the sweep outruns the
	// poller the test still holds: every nonce is then a journaled one.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		var snap struct {
			Completed int `json:"completed"`
		}
		getJSON(t, p1.base+"/debug/sweep", &snap)
		if snap.Completed >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("slow sweep never completed a device")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := p1.cmd.Process.Kill(); err != nil {
		t.Fatal(err)
	}
	if err := <-p1.done; err == nil {
		t.Fatal("SIGKILLed daemon reported clean exit")
	}

	// Run 2: same state dir. Boot must resume generation 2, refuse the
	// dead run's derivation base, and serve a fresh sweep normally.
	p2 := startFleetd(t, bin, common...)
	for id, g := range p2.generations(t) {
		if g != 2 {
			t.Fatalf("device %d rebooted at generation %d, want 2 (enrollment lost?)", id, g)
		}
	}
	rec = p2.postSweep(t, map[string]any{"wait": true, "freshness": "per-device", "nonce_seed": 67890})
	if len(rec.NonceReplays) == 0 {
		t.Fatalf("replayed derivation base journaled no replays: %+v", rec)
	}
	if rec.Healthy+len(rec.NonceReplays) != size || rec.Failed != len(rec.NonceReplays) {
		t.Fatalf("replay sweep split: %d healthy, %d failed, replays %v (fleet %d)",
			rec.Healthy, rec.Failed, rec.NonceReplays, size)
	}
	rec = p2.postSweep(t, map[string]any{"wait": true, "freshness": "per-device", "nonce_seed": 424242})
	if rec.Healthy != size || len(rec.NonceReplays) != 0 {
		t.Fatalf("fresh sweep after recovery: %d healthy, replays %v", rec.Healthy, rec.NonceReplays)
	}

	// Graceful shutdown this time: SIGTERM must drain and exit 0.
	if err := p2.cmd.Process.Signal(syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-p2.done:
		if err != nil {
			t.Fatalf("drained daemon exited non-zero: %v", err)
		}
	case <-time.After(time.Minute):
		p2.cmd.Process.Kill()
		t.Fatal("daemon did not drain after SIGTERM")
	}
}
