package e2e

import (
	"errors"
	"testing"

	"sacha/internal/channel"
	"sacha/internal/verifier"
)

// TestTCPCleanLink is the baseline: the bare paper protocol (no retry
// envelopes) over a real loopback TCP connection must accept the honest
// device without a single retry.
func TestTCPCleanLink(t *testing.T) {
	r := newRig(t)
	addr := r.serveTCP(t)
	ep := dialFaulty(t, addr, channel.FaultConfig{})
	rep, err := r.vrf.Attest(ep, r.golden, r.dyn, verifier.Options{})
	if err != nil {
		t.Fatalf("attest: %v", err)
	}
	if !rep.Accepted {
		t.Fatalf("honest device rejected: MACOK=%v ConfigOK=%v mismatches=%v",
			rep.MACOK, rep.ConfigOK, rep.Mismatches)
	}
	if rep.Retries != 0 || rep.TransportFaults != 0 {
		t.Fatalf("clean link counted retries=%d faults=%d", rep.Retries, rep.TransportFaults)
	}
}

// TestTCPLossyLinkAccepted is the acceptance scenario: 10% drop and 1%
// corruption on every message in both directions, over real TCP. The
// reliable transport must absorb all of it — the attestation completes,
// the device is accepted, and the retry counter proves the link was
// actually lossy.
func TestTCPLossyLinkAccepted(t *testing.T) {
	r := newRig(t)
	addr := r.serveTCP(t)
	ep := dialFaulty(t, addr, channel.FaultConfig{Seed: 11, DropProb: 0.10, CorruptProb: 0.01})
	rep, err := r.vrf.Attest(ep, r.golden, r.dyn, verifier.Options{Retry: retryPolicy()})
	if err != nil {
		t.Fatalf("attest over lossy link: %v", err)
	}
	if !rep.Accepted {
		t.Fatalf("transport faults leaked into the verdict: MACOK=%v ConfigOK=%v",
			rep.MACOK, rep.ConfigOK)
	}
	if rep.Retries == 0 {
		t.Fatal("lossy link needed zero retries — injector inactive?")
	}
	st := ep.Stats()
	if st.Dropped == 0 {
		t.Fatal("injector dropped nothing at 10% drop probability")
	}
}

// TestTCPLossyLinkRetriesDisabled reruns the same lossy link with the
// retry budget at zero: the run must fail with a typed transport error —
// not hang, and above all not report the device as compromised.
func TestTCPLossyLinkRetriesDisabled(t *testing.T) {
	r := newRig(t)
	addr := r.serveTCP(t)
	ep := dialFaulty(t, addr, channel.FaultConfig{Seed: 11, DropProb: 0.10, CorruptProb: 0.01})
	pol := retryPolicy()
	pol.MaxRetries = 0
	rep, err := r.vrf.Attest(ep, r.golden, r.dyn, verifier.Options{Retry: pol})
	if err == nil {
		t.Fatalf("lossy link with retries disabled produced a verdict: %+v", rep)
	}
	if !verifier.IsTransport(err) {
		t.Fatalf("got %v, want TransportError", err)
	}
}

// TestTCPMidProtocolReset injects a connection reset in the middle of
// the readback phase. The verifier must surface a typed transport error
// carrying ErrReset; the prover's serve loop must survive the teardown
// and accept a fresh session that attests clean.
func TestTCPMidProtocolReset(t *testing.T) {
	r := newRig(t)
	addr := r.serveTCP(t)
	resetAt := len(r.dyn) + r.geo.NumFrames()/2 // middle of the readbacks
	ep := dialFaulty(t, addr, channel.FaultConfig{Script: []channel.FaultOp{
		{Dir: channel.DirSend, Index: resetAt, Kind: channel.FaultReset},
	}})
	rep, err := r.vrf.Attest(ep, r.golden, r.dyn, verifier.Options{Retry: retryPolicy()})
	if err == nil {
		t.Fatalf("reset mid-protocol produced a verdict: %+v", rep)
	}
	if !verifier.IsTransport(err) {
		t.Fatalf("got %v, want TransportError", err)
	}
	if !errors.Is(err, channel.ErrReset) {
		t.Fatalf("cause %v, want ErrReset", err)
	}

	// The device power-cycles state per session only on PowerOn; a fresh
	// connection must still attest clean after the torn-down one.
	ep2 := dialFaulty(t, addr, channel.FaultConfig{})
	rep2, err := r.vrf.Attest(ep2, r.golden, r.dyn, verifier.Options{Retry: retryPolicy()})
	if err != nil {
		t.Fatalf("re-attest after reset: %v", err)
	}
	if !rep2.Accepted {
		t.Fatal("device rejected on the session after a reset")
	}
}
