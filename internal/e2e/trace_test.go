// End-to-end checks of the causal tracing layer: a tampered fleetd
// sweep must leave exactly one flight-recorder artifact whose span tree
// carries the full causal chain (sweep → session → phases → events)
// with phase durations that sum to the session report's Elapsed
// exactly, and the Perfetto canonical export of a pinned-NonceSeed
// sweep must be byte-identical across two independently provisioned
// twin fleets.
package e2e

import (
	"bytes"
	"encoding/json"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sacha/internal/attestation"
	"sacha/internal/core"
	"sacha/internal/fleet"
	"sacha/internal/fleet/dispatch"
	"sacha/internal/fleet/fleetd"
	"sacha/internal/fleet/registry"
	"sacha/internal/obs"
	"sacha/internal/obs/span"
	"sacha/internal/prover"
)

// TestFlightRecorderOnTamperedSweep tampers one member of a fleetd
// fleet, sweeps once through the control API, and asserts the flight
// recorder captured exactly one post-mortem: the compromised session's
// span tree with its four phase children telescoping to Report.Elapsed,
// served over /fleet/flightrecords and /debug/trace alongside.
func TestFlightRecorderOnTamperedSweep(t *testing.T) {
	const size = 8
	const bad = 3
	reg, err := registry.New(size, fleetdFactory)
	if err != nil {
		t.Fatal(err)
	}
	tamperOpts := func(id uint64) core.AttestOptions {
		if id != bad {
			return core.AttestOptions{}
		}
		sys, _ := reg.System(id)
		return core.AttestOptions{TamperDevice: func(d *prover.Device) {
			d.Fabric.Mem.Frame(sys.DynFrames()[1])[2] ^= 4
		}}
	}

	dir := t.TempDir()
	col := span.NewCollector(0)
	rec, err := span.NewRecorder(dir, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	seed := uint64(0x5EED)
	daemon := fleetd.New(fleetd.Config{
		Registry:   reg,
		Dispatcher: dispatch.New(dispatch.Config{Shards: 2, PlanCacheSize: 4}),
		Template: fleet.SweepConfig{
			Concurrency: 4,
			SharePlans:  true,
			Freshness:   attestation.PerDevice,
			NonceSeed:   &seed,
			Spans:       col,
			Flight:      rec,
		},
		Opts: tamperOpts,
	})
	srv, addr, err := obs.Serve("127.0.0.1:0", nil, daemon.Tracker(), daemon.Routes()...)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	base := "http://" + addr.String()

	body := bytes.NewBufferString(`{"wait": true}`)
	resp, err := http.Post(base+"/fleet/sweep", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var swept fleetd.SweepRecord
	if err := json.NewDecoder(resp.Body).Decode(&swept); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if swept.Healthy != size-1 || swept.Compromised != 1 {
		t.Fatalf("sweep verdicts: %+v", swept)
	}

	// Exactly one flight record: the one compromised session.
	records := rec.Records()
	if len(records) != 1 {
		t.Fatalf("flight recorder holds %d records, want exactly 1", len(records))
	}
	r := records[0]
	if r.Kind != "verdict" || r.Device != bad || r.Verdict != obs.VerdictCompromised {
		t.Fatalf("flight record = kind=%s device=%d verdict=%s", r.Kind, r.Device, r.Verdict)
	}
	if r.Trace != span.NewTraceID(seed).String() {
		t.Fatalf("flight record trace %s, want %s (derived from the pinned NonceSeed)",
			r.Trace, span.NewTraceID(seed))
	}
	files, err := filepath.Glob(filepath.Join(dir, "flight-*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 1 {
		t.Fatalf("on-disk artifacts %v, want exactly 1", files)
	}
	if len(r.Events) == 0 {
		t.Fatal("flight record carries no protocol events")
	}

	// The causal chain: the record's span tree holds the session span of
	// the tampered device with shard/worker attribution, a verdict tag,
	// and four phase children whose durations telescope to exactly the
	// report's Elapsed.
	sess := span.SessionSpan(r.Spans, bad)
	if sess == nil {
		t.Fatalf("no session span for device %d in the record's tree", bad)
	}
	if sess.Tags["verdict"] != obs.VerdictCompromised {
		t.Fatalf("session verdict tag %q", sess.Tags["verdict"])
	}
	if sess.Tags["shard"] == "" || sess.Tags["worker"] == "" {
		t.Fatalf("session lacks dispatch attribution: %v", sess.Tags)
	}
	rep, ok := r.Report.(*attestation.Report)
	if !ok || rep == nil {
		t.Fatalf("record report is %T, want *attestation.Report", r.Report)
	}
	wantPhases := []string{"phase:config", "phase:readback", "phase:checksum", "phase:verdict"}
	var phaseSum int64
	var gotPhases []string
	for _, c := range sess.Children {
		if strings.HasPrefix(c.Name, "phase:") {
			gotPhases = append(gotPhases, c.Name)
			phaseSum += c.DurationNS
		}
	}
	if len(gotPhases) != len(wantPhases) {
		t.Fatalf("phase spans %v, want %v", gotPhases, wantPhases)
	}
	for i, name := range wantPhases {
		if gotPhases[i] != name {
			t.Fatalf("phase spans %v, want %v (contiguous protocol order)", gotPhases, wantPhases)
		}
	}
	if phaseSum != rep.Elapsed.Nanoseconds() {
		t.Fatalf("phase durations sum to %d ns, report Elapsed is %d ns — the contiguous-checkpoint invariant broke",
			phaseSum, rep.Elapsed.Nanoseconds())
	}
	if got := rep.Phases.Sum(); got != rep.Elapsed {
		t.Fatalf("PhaseBreakdown.Sum() %v != Elapsed %v", got, rep.Elapsed)
	}

	// The live endpoints serve the same truth.
	var traces struct {
		Traces []span.SpanSnapshot `json:"traces"`
	}
	getJSON(t, base+"/debug/trace?device=3&verdict=compromised", &traces)
	if len(traces.Traces) != 1 || span.SessionSpan(traces.Traces, bad) == nil {
		t.Fatalf("/debug/trace filter returned %d traces", len(traces.Traces))
	}
	var flights struct {
		Records []span.Record `json:"records"`
		Dir     string        `json:"dir"`
	}
	getJSON(t, base+"/fleet/flightrecords", &flights)
	if len(flights.Records) != 1 || flights.Records[0].Device != bad || flights.Dir != dir {
		t.Fatalf("/fleet/flightrecords = %d records, dir %q", len(flights.Records), flights.Dir)
	}
	resp, err = http.Get(base + "/debug/trace/perfetto?canonical=1")
	if err != nil {
		t.Fatal(err)
	}
	var pf struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pf); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(pf.TraceEvents) == 0 {
		t.Fatal("perfetto export is empty")
	}
}

// TestPerfettoExportDeterminism provisions twin fleets from the same
// seeds, sweeps both under a pinned NonceSeed with one worker, and
// requires the canonical Perfetto exports to be byte-identical — the
// replayable-post-mortem contract of the deterministic ID derivation.
func TestPerfettoExportDeterminism(t *testing.T) {
	seed := uint64(42)
	export := func() []byte {
		reg, err := registry.New(6, fleetdFactory)
		if err != nil {
			t.Fatal(err)
		}
		col := span.NewCollector(0)
		d := dispatch.New(dispatch.Config{Shards: 2})
		_, err = d.Sweep(t.Context(), reg, fleet.SweepConfig{
			// One worker: steal order, worker attribution and verdict
			// tags are then pure functions of the membership, which is
			// what lets the whole export be compared byte for byte.
			Concurrency: 1,
			SharePlans:  true,
			Freshness:   attestation.PerDevice,
			NonceSeed:   &seed,
			Spans:       col,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := span.WritePerfetto(&buf, col.Snapshot(span.Filter{}), span.PerfettoOptions{Canonical: true}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	a := export()
	time.Sleep(2 * time.Millisecond) // make wall-clock leakage visible
	b := export()
	if !bytes.Equal(a, b) {
		t.Fatalf("canonical Perfetto exports differ across twin sweeps:\n--- a ---\n%.2000s\n--- b ---\n%.2000s", a, b)
	}
}
