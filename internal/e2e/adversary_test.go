package e2e

import (
	"testing"

	"sacha/internal/attack"
	"sacha/internal/attestation"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
)

// advSystem provisions one fresh device for an adversary run.
func advSystem(t *testing.T, mode core.KeyMode, seed int64) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Config{
		Geo:        device.SmallLX(),
		App:        netlist.Blinker(8),
		KeyMode:    mode,
		DeviceID:   9,
		BuildID:    rigBuildID,
		LabLatency: -1,
		Seed:       seed,
	})
	if err != nil {
		t.Fatalf("system: %v", err)
	}
	return sys
}

// TestAdversaryExhaustiveness runs every registered adversary under
// device states shaped by each of the three freshness policies and
// requires detection to be exactly a Compromised verdict:
//
//   - Detected must be true — the adversary never slips through;
//   - Err must be nil — detection must come from the protocol's verdict
//     (MAC or masked-bitstream mismatch), not from a transport-looking
//     failure. In a fleet sweep a non-nil error files the device under
//     Unreachable or Failed, and an adversary that only "fails the
//     connection" would hide in the partition operators ignore.
//
// The policy dimension shapes the device the adversary meets: PerSweep
// attacks a freshly provisioned static-PUF device (the shared-plan
// fleet state), PerDevice one that already served a sweep attestation
// (per-device nonce churn has advanced its dynamic state), RotateKey a
// dynamic-PUF device whose key circuit was just re-enrolled.
func TestAdversaryExhaustiveness(t *testing.T) {
	policies := []struct {
		policy attestation.FreshnessPolicy
		mode   core.KeyMode
		prep   func(t *testing.T, sys *core.System)
	}{
		{attestation.PerSweep, core.KeyStatPUF, nil},
		{attestation.PerDevice, core.KeyStatPUF, func(t *testing.T, sys *core.System) {
			nonce := uint64(0xFEED5EED)
			rep, err := sys.Attest(core.AttestOptions{Nonce: &nonce})
			if err != nil || !rep.Accepted {
				t.Fatalf("baseline attestation: accepted=%v err=%v", rep != nil && rep.Accepted, err)
			}
		}},
		{attestation.RotateKey, core.KeyDynPUF, func(t *testing.T, sys *core.System) {
			if err := sys.RotateKey(); err != nil {
				t.Fatalf("rotate: %v", err)
			}
		}},
	}
	reg := attack.Registry()
	if len(reg) < 8 {
		t.Fatalf("adversary registry shrank to %d entries", len(reg))
	}
	for pi, pc := range policies {
		for ai, adv := range reg {
			adv := adv
			pc := pc
			t.Run(pc.policy.String()+"/"+adv.Key, func(t *testing.T) {
				t.Parallel()
				sys := advSystem(t, pc.mode, int64(1000+100*pi+ai))
				if pc.prep != nil {
					pc.prep(t, sys)
				}
				res := adv.Fn(sys)
				if !res.Detected {
					t.Fatalf("%s NOT detected under %s (mechanism=%q err=%v)",
						adv.Key, pc.policy, res.Mechanism, res.Err)
				}
				if res.Err != nil {
					t.Fatalf("%s under %s detected only via protocol failure (would sweep as Unreachable/Failed, not Compromised): %v",
						adv.Key, pc.policy, res.Err)
				}
				if res.Mechanism == "" {
					t.Fatalf("%s under %s detected without a mechanism", adv.Key, pc.policy)
				}
			})
		}
	}
}
