package e2e

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"sacha/internal/channel"
	"sacha/internal/verifier"
)

// TestFaultMatrix sweeps every recoverable fault kind across every
// protocol phase, in both directions, as a deterministic scripted
// single-fault experiment on the simulated channel. The contract is the
// whole point of the reliable transport: one injected fault within the
// retry budget must never change the verdict — the attestation recovers
// and accepts the honest device.
//
// Message indexing (stop-and-wait, config batch 1): sends 0..C-1 are the
// ICAP_config commands, C..C+N-1 the ICAP_readbacks, C+N the
// MAC_checksum, where C = len(dyn) and N = NumFrames. Receives line up
// 1:1 (acks, frame sendbacks, MAC value).
func TestFaultMatrix(t *testing.T) {
	r0 := newRig(t) // counts only; each subtest builds its own rig
	c := len(r0.dyn)
	n := r0.geo.NumFrames()

	phases := []struct {
		name  string
		index int
	}{
		{"config", c / 2},
		{"readback", c + n/2},
		{"checksum", c + n},
	}
	kinds := []channel.FaultKind{
		channel.FaultDrop,
		channel.FaultDuplicate,
		channel.FaultReorder,
		channel.FaultCorrupt,
		channel.FaultDelay,
	}
	dirs := []struct {
		name string
		dir  channel.Direction
	}{
		{"cmd", channel.DirSend},
		{"resp", channel.DirRecv},
	}

	seed := int64(0)
	for _, ph := range phases {
		for _, k := range kinds {
			for _, d := range dirs {
				seed++
				name := fmt.Sprintf("%s/%s/%s", ph.name, k, d.name)
				cfg := channel.FaultConfig{
					Seed:   seed,
					Delay:  5 * time.Millisecond,
					Script: []channel.FaultOp{{Dir: d.dir, Index: ph.index, Kind: k}},
				}
				t.Run(name, func(t *testing.T) {
					t.Parallel()
					r := newRig(t)
					ep := r.serveSim(t, cfg)
					rep, err := r.vrf.Attest(ep, r.golden, r.dyn, verifier.Options{Retry: matrixPolicy()})
					if err != nil {
						t.Fatalf("single %v fault exceeded the retry budget: %v", k, err)
					}
					if !rep.Accepted {
						t.Fatalf("single %v fault flipped the verdict: MACOK=%v ConfigOK=%v",
							k, rep.MACOK, rep.ConfigOK)
					}
				})
			}
		}
	}
}

// TestFaultMatrixReset covers the one kind that must NOT recover: a
// connection reset at any phase surfaces as a typed transport error
// carrying ErrReset — never as a verdict.
func TestFaultMatrixReset(t *testing.T) {
	r0 := newRig(t)
	c := len(r0.dyn)
	n := r0.geo.NumFrames()

	for _, ph := range []struct {
		name  string
		index int
	}{
		{"config", c / 2},
		{"readback", c + n/2},
		{"checksum", c + n},
	} {
		t.Run(ph.name, func(t *testing.T) {
			t.Parallel()
			r := newRig(t)
			ep := r.serveSim(t, channel.FaultConfig{Script: []channel.FaultOp{
				{Dir: channel.DirSend, Index: ph.index, Kind: channel.FaultReset},
			}})
			rep, err := r.vrf.Attest(ep, r.golden, r.dyn, verifier.Options{Retry: matrixPolicy()})
			if err == nil {
				t.Fatalf("reset produced a verdict: %+v", rep)
			}
			if !verifier.IsTransport(err) {
				t.Fatalf("got %v, want TransportError", err)
			}
			if !errors.Is(err, channel.ErrReset) {
				t.Fatalf("cause %v, want ErrReset", err)
			}
		})
	}
}

// matrixPolicy keeps the sweep fast: the simulated channel has no real
// latency, so a short timeout re-sends quickly after a dropped message.
func matrixPolicy() verifier.RetryPolicy {
	return verifier.RetryPolicy{
		Timeout:    25 * time.Millisecond,
		MaxRetries: 5,
		Backoff:    time.Millisecond,
		MaxBackoff: 4 * time.Millisecond,
		Seed:       1,
	}
}
