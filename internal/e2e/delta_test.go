// End-to-end delta attestation: the fleet-level behaviours the unit and
// differential suites cannot see — a device whose configuration drifts
// BETWEEN sweeps while the trust ledger still calls it warm, and the
// interplay with the on-device scrubber that repairs SEUs before the
// next sweep arrives. The invariant under test is the §13 admissibility
// rule's enforcement: a delta sweep may skip frames only when the scan
// proves them golden; everything else is a flagged full overwrite,
// never a silent skip.
package e2e

import (
	"context"
	"math/rand"
	"testing"

	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/fleet"
	"sacha/internal/fleet/registry"
	"sacha/internal/netlist"
	"sacha/internal/scrub"
	"sacha/internal/swarm"
	"sacha/internal/verifier"
)

// deltaFleet provisions a small TinyLX fleet plus the delta sweep
// configuration (shared plans, compressed transport, fresh trust
// ledger) and a helper that pins a distinct nonce per sweep.
func deltaFleet(t *testing.T, size int) (*swarm.Fleet, *fleet.SweepConfig) {
	t.Helper()
	f, err := swarm.NewFleet(size, func(id uint64) (*core.System, error) {
		return core.NewSystem(core.Config{
			Geo:        device.TinyLX(),
			App:        netlist.Blinker(8),
			DeviceID:   id,
			BuildID:    rigBuildID,
			LabLatency: -1,
			Seed:       int64(id)*13 + 1,
		})
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := &fleet.SweepConfig{
		Concurrency: 4,
		SharePlans:  true,
		Delta:       true,
		Compress:    true,
		Trust:       registry.NewTrustLedger(),
	}
	return f, cfg
}

// sweepOnce runs one pinned-nonce sweep and requires every device healthy
// unless the caller inspects the report itself.
func sweepOnce(t *testing.T, f *swarm.Fleet, cfg *fleet.SweepConfig, nonce uint64) *fleet.Report {
	t.Helper()
	cfg.Nonce = &nonce
	rep, err := f.Sweep(context.Background(), *cfg, nil)
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	return rep
}

// nonNonceDynFrame returns a dynamic frame of the system's class that is
// NOT in the delta rewrite set — drift there must force the fallback.
func nonNonceDynFrame(t *testing.T, sys *core.System) int {
	t.Helper()
	plan, err := sys.PatchablePlan(verifier.Options{Delta: true})
	if err != nil {
		t.Fatal(err)
	}
	inSet := map[int]bool{}
	for _, fr := range plan.DeltaRewriteFrames() {
		inSet[fr] = true
	}
	for _, fr := range sys.DynFrames() {
		if !inSet[fr] {
			return fr
		}
	}
	t.Fatal("no non-nonce dynamic frame")
	return -1
}

// TestDeltaTamperedBetweenSweepsIsNeverSkipped pins the "never silently
// skip" property end to end: a device whose configuration is altered
// between sweeps — while the ledger still calls it warm — must be
// caught by the delta scan, attested via the flagged full overwrite
// (repairing it), and demoted so the following sweep starts cold.
func TestDeltaTamperedBetweenSweepsIsNeverSkipped(t *testing.T) {
	const size, victim = 6, uint64(2)
	f, cfg := deltaFleet(t, size)

	rep1 := sweepOnce(t, f, cfg, 0xE2E_0001)
	if len(rep1.Healthy) != size || rep1.DeltaFallbacks != size || rep1.DeltaApplied != 0 {
		t.Fatalf("cold sweep: healthy=%d applied=%d fallbacks=%d", len(rep1.Healthy), rep1.DeltaApplied, rep1.DeltaFallbacks)
	}

	// Between sweeps: tamper one configuration bit outside the nonce
	// rewrite set of the (now warm) victim.
	sys, _ := f.System(victim)
	target := nonNonceDynFrame(t, sys)
	sys.Device.Fabric.Mem.Frame(target)[4] ^= 1 << 3

	rep2 := sweepOnce(t, f, cfg, 0xE2E_0002)
	if len(rep2.Healthy) != size {
		t.Fatalf("tampered device not repaired by the fallback: healthy=%v", rep2.Healthy)
	}
	if rep2.DeltaApplied != size-1 || rep2.DeltaFallbacks != 1 {
		t.Fatalf("warm sweep: applied=%d fallbacks=%d, want %d/1", rep2.DeltaApplied, rep2.DeltaFallbacks, size-1)
	}
	if len(rep2.DeltaUnexpected) != 1 || rep2.DeltaUnexpected[0] != victim {
		t.Fatalf("DeltaUnexpected=%v, want exactly device %d", rep2.DeltaUnexpected, victim)
	}
	var vr fleet.DeviceResult
	for _, r := range rep2.Results {
		if r.DeviceID == victim {
			vr = r
		}
	}
	if vr.Report.Delta.Fallback != "mismatch" {
		t.Fatalf("victim fallback %q, want \"mismatch\"", vr.Report.Delta.Fallback)
	}
	found := false
	for _, fr := range vr.Report.Delta.Unexpected {
		if fr == target {
			found = true
		}
	}
	if !found {
		t.Fatalf("tampered frame %d not in the victim's drift list %v", target, vr.Report.Delta.Unexpected)
	}
	if vr.Report.FramesConfigured != len(sys.DynFrames()) {
		t.Fatalf("victim got %d frames configured, want the full %d-frame overwrite — a partial write here would be a silent skip",
			vr.Report.FramesConfigured, len(sys.DynFrames()))
	}

	// The drift demoted the victim: the next sweep must start it cold
	// even though it just attested healthy.
	rep3 := sweepOnce(t, f, cfg, 0xE2E_0003)
	for _, r := range rep3.Results {
		if r.DeviceID != victim {
			continue
		}
		if r.Report.Delta.Fallback != "cold" {
			t.Fatalf("demoted victim fallback %q in the next sweep, want \"cold\"", r.Report.Delta.Fallback)
		}
	}
	if rep3.DeltaApplied != size-1 || rep3.DeltaFallbacks != 1 {
		t.Fatalf("post-demotion sweep: applied=%d fallbacks=%d, want %d/1", rep3.DeltaApplied, rep3.DeltaFallbacks, size-1)
	}
}

// TestDeltaAfterScrubRepairRewritesMinimalSet is the intended steady
// state of the paper's deployment story: SEUs strike between sweeps,
// the on-device scrubber repairs them against its golden image, and the
// next delta sweep — finding the scan clean — rewrites exactly the
// nonce-register frames and nothing else.
func TestDeltaAfterScrubRepairRewritesMinimalSet(t *testing.T) {
	const size, victim = 4, uint64(1)
	const nonce1 = uint64(0xE2E_1001)
	f, cfg := deltaFleet(t, size)

	rep1 := sweepOnce(t, f, cfg, nonce1)
	if len(rep1.Healthy) != size {
		t.Fatalf("cold sweep unhealthy: %v", rep1.Healthy)
	}

	// SEUs strike the victim; its scrubber repairs them against the
	// golden image of the configuration it holds (nonce1's).
	sys, _ := f.System(victim)
	golden, err := sys.Golden(nonce1)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	if flips := scrub.InjectSEUs(sys.Device.Fabric, rng, 8); len(flips) != 8 {
		t.Fatalf("injected %d SEUs, want 8", len(flips))
	}
	sc := scrub.New(sys.Device.Fabric, golden)
	flips, err := sc.ScrubOnce()
	if err != nil {
		t.Fatal(err)
	}
	if len(flips) == 0 {
		t.Fatal("scrubber found none of the injected upsets")
	}

	rep2 := sweepOnce(t, f, cfg, 0xE2E_1002)
	if len(rep2.Healthy) != size || rep2.DeltaApplied != size || rep2.DeltaFallbacks != 0 {
		t.Fatalf("post-scrub sweep: healthy=%d applied=%d fallbacks=%d, want all delta",
			len(rep2.Healthy), rep2.DeltaApplied, rep2.DeltaFallbacks)
	}
	if len(rep2.DeltaUnexpected) != 0 {
		t.Fatalf("scrub-repaired fleet still drifted: %v", rep2.DeltaUnexpected)
	}
	plan, err := sys.PatchablePlan(verifier.Options{Delta: true})
	if err != nil {
		t.Fatal(err)
	}
	minimal := len(plan.DeltaRewriteFrames())
	for _, r := range rep2.Results {
		if r.DeviceID != victim {
			continue
		}
		if r.Report.Delta.FramesRewritten != minimal {
			t.Fatalf("victim rewrote %d frames after scrub repair, want the minimal nonce set of %d",
				r.Report.Delta.FramesRewritten, minimal)
		}
		if r.Report.Delta.FramesSkipped != len(sys.DynFrames())-minimal {
			t.Fatalf("victim skipped %d frames, want %d", r.Report.Delta.FramesSkipped, len(sys.DynFrames())-minimal)
		}
	}
}
