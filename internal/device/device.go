// Package device holds the geometry database for the modelled FPGAs.
//
// The primary device mirrors the Xilinx Virtex-6 XC6VLX240T used in the
// SACHa proof of concept: its configuration memory holds exactly 28,488
// frames of 81 32-bit words, its fabric 18,840 CLBs and 832 18-kbit BRAMs.
// The geometry is simplified to three column types (CLB, BRAM, CFG) laid
// out identically in each of four rows; DSP and IOB configuration is folded
// into the CFG column, as the paper itself omits dedicated primitives from
// its fabric overview.
//
// Frames are addressed either linearly (0 .. NumFrames-1) or through a
// Virtex-style Frame Address Register (FAR) with block-type, row, column
// and minor fields.
package device

import (
	"fmt"
	"sync"
)

// Frame dimensions shared by all modelled devices (Virtex-6 values).
const (
	FrameWords = 81              // 32-bit words per configuration frame
	FrameBytes = FrameWords * 4  // 324 bytes
	FrameBits  = FrameWords * 32 // 2592 bits
)

// ColumnKind identifies the resource type a configuration column drives.
type ColumnKind uint8

const (
	// ColCLB configures a column of CLBs: LUT truth tables, FF config and
	// switch-matrix routing.
	ColCLB ColumnKind = iota
	// ColBRAMInterconnect configures BRAM port wiring.
	ColBRAMInterconnect
	// ColBRAMContent holds BRAM initialisation/content bits.
	ColBRAMContent
	// ColCFG holds clocking, IOB and miscellaneous configuration.
	ColCFG
)

func (k ColumnKind) String() string {
	switch k {
	case ColCLB:
		return "CLB"
	case ColBRAMInterconnect:
		return "BRAM-INT"
	case ColBRAMContent:
		return "BRAM-CNT"
	case ColCFG:
		return "CFG"
	}
	return fmt.Sprintf("ColumnKind(%d)", uint8(k))
}

// FAR block-type codes, in the spirit of the Virtex-6 frame address
// register.
const (
	BlockTypeCLB  = 0 // CLB / interconnect / CFG columns
	BlockTypeBRAM = 1 // BRAM content columns
)

// ColumnSpec describes one column type within a row.
type ColumnSpec struct {
	Kind   ColumnKind
	Count  int // columns of this kind per row
	Frames int // frames per column (minor addresses)
	// Sites is the number of resource sites per column: CLBs for ColCLB,
	// BRAM36 primitives for BRAM columns, 0 for CFG.
	Sites int
}

// Geometry describes a device's configuration memory layout.
type Geometry struct {
	Name string
	Rows int
	// Columns lists the column specs in left-to-right order within a row.
	// Every row has the same layout.
	Columns []ColumnSpec

	// Resource totals for the resource report (Table 2 "Entire FPGA").
	ICAPs int
	DCMs  int

	// colOnce/colRefs lazily cache the per-row column expansion.
	// Frame-address lookups sit on the readback and scrub hot paths, and
	// rebuilding the row layout per lookup costs an allocation per frame
	// — the cache makes ColumnOfFrame allocation-free. Geometries are
	// shared by pointer, so the expansion is built once per device model.
	colOnce sync.Once
	colRefs []columnRef
}

// FAR is a decoded frame address.
type FAR struct {
	BlockType int // BlockTypeCLB or BlockTypeBRAM
	Row       int
	Column    int // index among the columns of that block type in the row
	Minor     int // frame index within the column
}

// Encode packs a FAR into the 32-bit register layout
// [23:21]=block type, [20:16]=row, [15:7]=column, [6:0]=minor.
func (f FAR) Encode() uint32 {
	return uint32(f.BlockType&0x7)<<21 | uint32(f.Row&0x1F)<<16 |
		uint32(f.Column&0x1FF)<<7 | uint32(f.Minor&0x7F)
}

// DecodeFAR unpacks a 32-bit FAR register value.
func DecodeFAR(v uint32) FAR {
	return FAR{
		BlockType: int(v >> 21 & 0x7),
		Row:       int(v >> 16 & 0x1F),
		Column:    int(v >> 7 & 0x1FF),
		Minor:     int(v & 0x7F),
	}
}

// NumFrames returns the total number of configuration frames.
func (g *Geometry) NumFrames() int {
	per := 0
	for _, c := range g.Columns {
		per += c.Count * c.Frames
	}
	return per * g.Rows
}

// CLBs returns the total CLB count.
func (g *Geometry) CLBs() int {
	n := 0
	for _, c := range g.Columns {
		if c.Kind == ColCLB {
			n += c.Count * c.Sites
		}
	}
	return n * g.Rows
}

// BRAM18s returns the total 18-kbit BRAM count (2 per BRAM36 site).
func (g *Geometry) BRAM18s() int {
	n := 0
	for _, c := range g.Columns {
		if c.Kind == ColBRAMContent {
			n += c.Count * c.Sites
		}
	}
	return n * g.Rows * 2
}

// columnAt resolves a global column ordinal within a row to its spec and
// the index among columns of the same kind.
type columnRef struct {
	spec     ColumnSpec
	kindIdx  int // index among columns with the same FAR block type
	kindOrd  int // index among columns with the same ColumnKind
	firstFrm int // first frame (within the row) of this column
}

// rowColumns expands the per-row column layout once and caches it.
func (g *Geometry) rowColumns() []columnRef {
	g.colOnce.Do(func() {
		frm := 0
		kindCount := map[int]int{} // per FAR block type
		kindOrd := map[ColumnKind]int{}
		for _, spec := range g.Columns {
			bt := farBlockType(spec.Kind)
			for i := 0; i < spec.Count; i++ {
				g.colRefs = append(g.colRefs, columnRef{
					spec:     spec,
					kindIdx:  kindCount[bt],
					kindOrd:  kindOrd[spec.Kind],
					firstFrm: frm,
				})
				kindCount[bt]++
				kindOrd[spec.Kind]++
				frm += spec.Frames
			}
		}
	})
	return g.colRefs
}

func farBlockType(k ColumnKind) int {
	if k == ColBRAMContent {
		return BlockTypeBRAM
	}
	return BlockTypeCLB
}

// framesPerRow returns the frame count of one row.
func (g *Geometry) framesPerRow() int {
	per := 0
	for _, c := range g.Columns {
		per += c.Count * c.Frames
	}
	return per
}

// FARForFrame converts a linear frame index into a FAR.
func (g *Geometry) FARForFrame(idx int) (FAR, error) {
	if idx < 0 || idx >= g.NumFrames() {
		return FAR{}, fmt.Errorf("device: frame %d out of range [0,%d)", idx, g.NumFrames())
	}
	perRow := g.framesPerRow()
	row := idx / perRow
	rem := idx % perRow
	for _, ref := range g.rowColumns() {
		if rem >= ref.firstFrm && rem < ref.firstFrm+ref.spec.Frames {
			return FAR{
				BlockType: farBlockType(ref.spec.Kind),
				Row:       row,
				Column:    ref.kindIdx,
				Minor:     rem - ref.firstFrm,
			}, nil
		}
	}
	return FAR{}, fmt.Errorf("device: frame %d not mapped", idx)
}

// FrameForFAR converts a FAR into a linear frame index.
func (g *Geometry) FrameForFAR(f FAR) (int, error) {
	if f.Row < 0 || f.Row >= g.Rows {
		return 0, fmt.Errorf("device: FAR row %d out of range", f.Row)
	}
	for _, ref := range g.rowColumns() {
		if farBlockType(ref.spec.Kind) != f.BlockType || ref.kindIdx != f.Column {
			continue
		}
		if f.Minor < 0 || f.Minor >= ref.spec.Frames {
			return 0, fmt.Errorf("device: FAR minor %d out of range for column", f.Minor)
		}
		return f.Row*g.framesPerRow() + ref.firstFrm + f.Minor, nil
	}
	return 0, fmt.Errorf("device: FAR block %d column %d not found", f.BlockType, f.Column)
}

// ColumnOfFrame returns, for a linear frame index, the column kind, the
// row, the column ordinal *among columns of the same kind* within the row,
// and the minor (frame-within-column) index.
func (g *Geometry) ColumnOfFrame(idx int) (kind ColumnKind, row, kindOrdinal, minor int, err error) {
	if idx < 0 || idx >= g.NumFrames() {
		return 0, 0, 0, 0, fmt.Errorf("device: frame %d out of range", idx)
	}
	perRow := g.framesPerRow()
	row = idx / perRow
	rem := idx % perRow
	for _, ref := range g.rowColumns() {
		if rem >= ref.firstFrm && rem < ref.firstFrm+ref.spec.Frames {
			return ref.spec.Kind, row, ref.kindOrd, rem - ref.firstFrm, nil
		}
	}
	return 0, 0, 0, 0, fmt.Errorf("device: frame %d not mapped", idx)
}

// ColumnBase returns the linear index of the first frame of the ordinal-th
// column of the given kind in the given row, along with the column's frame
// count.
func (g *Geometry) ColumnBase(row int, kind ColumnKind, ordinal int) (firstFrame, frames int, err error) {
	if row < 0 || row >= g.Rows {
		return 0, 0, fmt.Errorf("device: row %d out of range", row)
	}
	count := 0
	frm := 0
	for _, spec := range g.Columns {
		for i := 0; i < spec.Count; i++ {
			if spec.Kind == kind {
				if count == ordinal {
					return row*g.framesPerRow() + frm, spec.Frames, nil
				}
				count++
			}
			frm += spec.Frames
		}
	}
	return 0, 0, fmt.Errorf("device: no column %d of kind %v", ordinal, kind)
}

// ColumnsOf returns the number of columns of the given kind per row.
func (g *Geometry) ColumnsOf(kind ColumnKind) int {
	n := 0
	for _, c := range g.Columns {
		if c.Kind == kind {
			n += c.Count
		}
	}
	return n
}

// SitesPerColumn returns the resource sites per column of the given kind
// (CLBs for ColCLB, BRAM36s for BRAM columns).
func (g *Geometry) SitesPerColumn(kind ColumnKind) int {
	for _, c := range g.Columns {
		if c.Kind == kind {
			return c.Sites
		}
	}
	return 0
}

// FramesPerColumn returns the frame count of a column of the given kind.
func (g *Geometry) FramesPerColumn(kind ColumnKind) int {
	for _, c := range g.Columns {
		if c.Kind == kind {
			return c.Frames
		}
	}
	return 0
}

// ByName resolves a device name used by the command-line tools.
func ByName(name string) (*Geometry, error) {
	switch name {
	case "XC6VLX240T", "xc6vlx240t":
		return XC6VLX240T(), nil
	case "SmallLX", "smalllx":
		return SmallLX(), nil
	case "BigLX", "biglx":
		return BigLX(), nil
	case "TinyLX", "tinylx":
		return TinyLX(), nil
	}
	return nil, fmt.Errorf("device: unknown device %q (available: XC6VLX240T, SmallLX, BigLX, TinyLX)", name)
}

// XC6VLX240T returns the geometry modelling the paper's device.
//
// Layout per row (×4 rows):
//
//	157 CLB columns × 42 frames, 30 CLBs each
//	  4 BRAM interconnect columns × 28 frames, 26 BRAM36 each
//	  4 BRAM content columns × 96 frames
//	  1 CFG column × 32 frames
//
// Totals: frames = 4×(157×42 + 4×28 + 4×96 + 32) = 28,488;
// CLBs = 4×157×30 = 18,840; BRAM18 = 4×4×26×2 = 832 — all equal to the
// values the paper reports for the XC6VLX240T.
func XC6VLX240T() *Geometry {
	return &Geometry{
		Name: "XC6VLX240T",
		Rows: 4,
		Columns: []ColumnSpec{
			{Kind: ColCLB, Count: 157, Frames: 42, Sites: 30},
			{Kind: ColBRAMInterconnect, Count: 4, Frames: 28, Sites: 26},
			{Kind: ColBRAMContent, Count: 4, Frames: 96, Sites: 26},
			{Kind: ColCFG, Count: 1, Frames: 32},
		},
		ICAPs: 1,
		DCMs:  12,
	}
}

// SmallLX returns a small synthetic sibling device for scaling sweeps
// (about one eighth of the XC6VLX240T).
func SmallLX() *Geometry {
	return &Geometry{
		Name: "SmallLX",
		Rows: 2,
		Columns: []ColumnSpec{
			{Kind: ColCLB, Count: 40, Frames: 42, Sites: 30},
			{Kind: ColBRAMInterconnect, Count: 1, Frames: 28, Sites: 26},
			{Kind: ColBRAMContent, Count: 1, Frames: 96, Sites: 26},
			{Kind: ColCFG, Count: 1, Frames: 32},
		},
		ICAPs: 1,
		DCMs:  4,
	}
}

// TinyLX returns a deliberately minimal synthetic device: 112 frames
// total, sized so a full-device attestation finishes in milliseconds.
// It is the target of choice for fault-injection sweeps, fleet tests and
// loopback demos where SmallLX is still three orders of magnitude too
// slow to run hundreds of times. The column mix keeps every invariant
// the fabric model needs: the CLB columns hold the 64-bit nonce register
// (8 sites x 8 FF slots), the CFG column's 4 frames cover the IOB pin
// table, and the BRAM columns exist so region accounting matches the
// real parts.
func TinyLX() *Geometry {
	return &Geometry{
		Name: "TinyLX",
		Rows: 2,
		Columns: []ColumnSpec{
			{Kind: ColCLB, Count: 4, Frames: 12, Sites: 8},
			{Kind: ColBRAMInterconnect, Count: 1, Frames: 2, Sites: 26},
			{Kind: ColBRAMContent, Count: 1, Frames: 2, Sites: 26},
			{Kind: ColCFG, Count: 1, Frames: 4},
		},
		ICAPs: 1,
		DCMs:  1,
	}
}

// BigLX returns a large synthetic sibling device for scaling sweeps
// (about twice the XC6VLX240T).
func BigLX() *Geometry {
	return &Geometry{
		Name: "BigLX",
		Rows: 6,
		Columns: []ColumnSpec{
			{Kind: ColCLB, Count: 210, Frames: 42, Sites: 30},
			{Kind: ColBRAMInterconnect, Count: 6, Frames: 28, Sites: 26},
			{Kind: ColBRAMContent, Count: 6, Frames: 96, Sites: 26},
			{Kind: ColCFG, Count: 1, Frames: 32},
		},
		ICAPs: 1,
		DCMs:  18,
	}
}
