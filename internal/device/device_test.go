package device

import (
	"testing"
	"testing/quick"
)

func TestXC6VLX240TPaperNumbers(t *testing.T) {
	g := XC6VLX240T()
	if got := g.NumFrames(); got != 28488 {
		t.Errorf("NumFrames = %d, want 28488 (paper §6.1)", got)
	}
	if got := g.CLBs(); got != 18840 {
		t.Errorf("CLBs = %d, want 18840 (paper Table 2)", got)
	}
	if got := g.BRAM18s(); got != 832 {
		t.Errorf("BRAM18s = %d, want 832 (paper Table 2)", got)
	}
	if g.ICAPs != 1 || g.DCMs != 12 {
		t.Errorf("ICAPs=%d DCMs=%d, want 1 and 12 (paper Table 2)", g.ICAPs, g.DCMs)
	}
}

func TestFrameConstants(t *testing.T) {
	if FrameWords != 81 || FrameBytes != 324 || FrameBits != 2592 {
		t.Fatalf("frame constants wrong: %d words %d bytes %d bits", FrameWords, FrameBytes, FrameBits)
	}
}

func TestFAREncodeDecode(t *testing.T) {
	cases := []FAR{
		{BlockTypeCLB, 0, 0, 0},
		{BlockTypeBRAM, 3, 3, 95},
		{BlockTypeCLB, 3, 161, 41},
		{BlockTypeCLB, 1, 7, 13},
	}
	for _, f := range cases {
		got := DecodeFAR(f.Encode())
		if got != f {
			t.Errorf("round-trip %+v -> %+v", f, got)
		}
	}
}

func TestFARLinearRoundTripAll(t *testing.T) {
	for _, g := range []*Geometry{XC6VLX240T(), SmallLX(), BigLX()} {
		n := g.NumFrames()
		seen := make(map[uint32]bool, n)
		for i := 0; i < n; i++ {
			far, err := g.FARForFrame(i)
			if err != nil {
				t.Fatalf("%s: FARForFrame(%d): %v", g.Name, i, err)
			}
			enc := far.Encode()
			if seen[enc] {
				t.Fatalf("%s: duplicate FAR %+v at frame %d", g.Name, far, i)
			}
			seen[enc] = true
			back, err := g.FrameForFAR(far)
			if err != nil {
				t.Fatalf("%s: FrameForFAR(%+v): %v", g.Name, far, err)
			}
			if back != i {
				t.Fatalf("%s: frame %d -> %+v -> %d", g.Name, i, far, back)
			}
		}
	}
}

func TestFARForFrameErrors(t *testing.T) {
	g := XC6VLX240T()
	if _, err := g.FARForFrame(-1); err == nil {
		t.Error("negative frame index accepted")
	}
	if _, err := g.FARForFrame(g.NumFrames()); err == nil {
		t.Error("out-of-range frame index accepted")
	}
	if _, err := g.FrameForFAR(FAR{Row: 99}); err == nil {
		t.Error("bad FAR row accepted")
	}
	if _, err := g.FrameForFAR(FAR{BlockType: BlockTypeCLB, Column: 9999}); err == nil {
		t.Error("bad FAR column accepted")
	}
	if _, err := g.FrameForFAR(FAR{BlockType: BlockTypeCLB, Column: 0, Minor: 10000}); err == nil {
		t.Error("bad FAR minor accepted")
	}
}

func TestColumnOfFrame(t *testing.T) {
	g := XC6VLX240T()
	// First frame of the device is minor 0 of the first CLB column.
	kind, row, col, minor, err := g.ColumnOfFrame(0)
	if err != nil || kind != ColCLB || row != 0 || col != 0 || minor != 0 {
		t.Fatalf("frame 0: kind=%v row=%d col=%d minor=%d err=%v", kind, row, col, minor, err)
	}
	// Last frame of row 0 is the last CFG frame.
	perRow := g.NumFrames() / g.Rows
	kind, row, col, minor, err = g.ColumnOfFrame(perRow - 1)
	if err != nil || kind != ColCFG || row != 0 || minor != 31 {
		t.Fatalf("last frame row 0: kind=%v row=%d col=%d minor=%d err=%v", kind, row, col, minor, err)
	}
	// First frame of row 1.
	_, row, _, _, err = g.ColumnOfFrame(perRow)
	if err != nil || row != 1 {
		t.Fatalf("first frame row 1: row=%d err=%v", row, err)
	}
	if _, _, _, _, err := g.ColumnOfFrame(-5); err == nil {
		t.Error("ColumnOfFrame accepted negative index")
	}
}

func TestColumnKindString(t *testing.T) {
	if ColCLB.String() != "CLB" || ColBRAMContent.String() != "BRAM-CNT" ||
		ColBRAMInterconnect.String() != "BRAM-INT" || ColCFG.String() != "CFG" {
		t.Error("ColumnKind.String values changed")
	}
	if ColumnKind(99).String() == "" {
		t.Error("unknown kind should still stringify")
	}
}

func TestSiblingDevicesOrdering(t *testing.T) {
	s, m, b := SmallLX(), XC6VLX240T(), BigLX()
	if !(s.NumFrames() < m.NumFrames() && m.NumFrames() < b.NumFrames()) {
		t.Errorf("frame ordering: %d %d %d", s.NumFrames(), m.NumFrames(), b.NumFrames())
	}
	if !(s.CLBs() < m.CLBs() && m.CLBs() < b.CLBs()) {
		t.Errorf("CLB ordering: %d %d %d", s.CLBs(), m.CLBs(), b.CLBs())
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"XC6VLX240T", "xc6vlx240t", "SmallLX", "smalllx", "BigLX", "biglx"} {
		g, err := ByName(name)
		if err != nil || g == nil {
			t.Errorf("ByName(%q): %v", name, err)
		}
	}
	if _, err := ByName("XC7Z020"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestColumnQueries(t *testing.T) {
	g := XC6VLX240T()
	if got := g.ColumnsOf(ColCLB); got != 157 {
		t.Errorf("CLB columns = %d", got)
	}
	if got := g.SitesPerColumn(ColCLB); got != 30 {
		t.Errorf("CLB sites = %d", got)
	}
	if got := g.FramesPerColumn(ColBRAMContent); got != 96 {
		t.Errorf("BRAM content frames = %d", got)
	}
	if got := g.SitesPerColumn(ColCFG); got != 0 {
		t.Errorf("CFG sites = %d", got)
	}
	if got := g.FramesPerColumn(ColumnKind(99)); got != 0 {
		t.Errorf("unknown kind frames = %d", got)
	}
	// ColumnBase spot checks: first CLB column of row 1 starts one full
	// row of frames in.
	base, n, err := g.ColumnBase(1, ColCLB, 0)
	if err != nil || n != 42 || base != g.NumFrames()/g.Rows {
		t.Errorf("ColumnBase(1, CLB, 0) = %d,%d,%v", base, n, err)
	}
	if _, _, err := g.ColumnBase(99, ColCLB, 0); err == nil {
		t.Error("bad row accepted")
	}
	if _, _, err := g.ColumnBase(0, ColCLB, 999); err == nil {
		t.Error("bad ordinal accepted")
	}
}

// Property: random valid FARs encode to 32 bits and decode back unchanged.
func TestQuickFARCodec(t *testing.T) {
	f := func(bt uint8, row, col, minor uint16) bool {
		far := FAR{
			BlockType: int(bt % 2),
			Row:       int(row % 32),
			Column:    int(col % 512),
			Minor:     int(minor % 128),
		}
		return DecodeFAR(far.Encode()) == far
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
