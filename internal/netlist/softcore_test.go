package netlist

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func readSC4(t *testing.T, s *Simulator) (acc, pc uint8) {
	t.Helper()
	for i := 0; i < 8; i++ {
		v, err := s.Output(fmt.Sprintf("acc%d", i))
		if err != nil {
			t.Fatal(err)
		}
		acc |= v << uint(i)
	}
	for i := 0; i < 4; i++ {
		v, err := s.Output(fmt.Sprintf("pc%d", i))
		if err != nil {
			t.Fatal(err)
		}
		pc |= v << uint(i)
	}
	return acc, pc
}

func TestSoftCoreStraightLine(t *testing.T) {
	prog := SC4Program{
		{Op: SC4Addi, Imm: 5},
		{Op: SC4Addi, Imm: 7},
		{Op: SC4Xori, Imm: 0xFF},
	}
	s, err := NewSimulator(SoftCore(prog))
	if err != nil {
		t.Fatal(err)
	}
	// Cycle 1: ACC=5; cycle 2: ACC=12; cycle 3: ACC=^12=0xF3.
	wantAcc := []uint8{5, 12, 0xF3}
	for i, want := range wantAcc {
		s.Step()
		acc, pc := readSC4(t, s)
		if acc != want {
			t.Fatalf("cycle %d: ACC=%#x want %#x", i+1, acc, want)
		}
		if pc != uint8(i+1) {
			t.Fatalf("cycle %d: PC=%d", i+1, pc)
		}
	}
}

func TestSoftCoreLoop(t *testing.T) {
	// Accumulate 3 per loop iteration: ADDI 3; JMP 0.
	prog := SC4Program{
		{Op: SC4Addi, Imm: 3},
		{Op: SC4Jmp, Imm: 0},
	}
	s, err := NewSimulator(SoftCore(prog))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		s.Step()
	}
	acc, pc := readSC4(t, s)
	wantAcc, wantPC := SC4Reference(prog, 20)
	if acc != wantAcc || pc != wantPC {
		t.Fatalf("after 20 cycles: ACC=%d PC=%d, reference says ACC=%d PC=%d", acc, pc, wantAcc, wantPC)
	}
	if acc != 30 { // 10 ADDI executions in 20 cycles
		t.Fatalf("ACC=%d, want 30", acc)
	}
}

// Property: the netlist implementation matches the reference interpreter
// for random programs and cycle counts.
func TestQuickSoftCoreMatchesReference(t *testing.T) {
	fn := func(seed int64, cyc8 uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(16) + 1
		prog := make(SC4Program, n)
		for i := range prog {
			prog[i] = SC4Instr{Op: rng.Intn(4), Imm: uint8(rng.Intn(256))}
			if prog[i].Op == SC4Jmp {
				prog[i].Imm = uint8(rng.Intn(16))
			}
		}
		s, err := NewSimulator(SoftCore(prog))
		if err != nil {
			return false
		}
		cycles := int(cyc8%60) + 1
		for i := 0; i < cycles; i++ {
			s.Step()
		}
		var acc, pc uint8
		for i := 0; i < 8; i++ {
			v, _ := s.Output(fmt.Sprintf("acc%d", i))
			acc |= v << uint(i)
		}
		for i := 0; i < 4; i++ {
			v, _ := s.Output(fmt.Sprintf("pc%d", i))
			pc |= v << uint(i)
		}
		wantAcc, wantPC := SC4Reference(prog, cycles)
		return acc == wantAcc && pc == wantPC
	}
	if err := quick.Check(fn, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestSC4ProgramValidation(t *testing.T) {
	if _, err := (SC4Program{{Op: 9}}).Encode(); err == nil {
		t.Error("invalid opcode accepted")
	}
	if _, err := (SC4Program{{Op: SC4Jmp, Imm: 99}}).Encode(); err == nil {
		t.Error("out-of-range jump accepted")
	}
	if _, err := (make(SC4Program, 17)).Encode(); err == nil {
		t.Error("oversized program accepted")
	}
}

func TestSoftCoreStats(t *testing.T) {
	st := SoftCore(SC4Program{{Op: SC4Addi, Imm: 1}}).Stats()
	if st.DFFs != 12 {
		t.Fatalf("SC4 has %d DFFs, want 12 (8 ACC + 4 PC)", st.DFFs)
	}
	if st.LUTs < 40 {
		t.Fatalf("SC4 has only %d LUTs — datapath missing?", st.LUTs)
	}
}
