package netlist

import (
	"fmt"
	"testing"
)

func TestShiftRegister(t *testing.T) {
	d := ShiftRegister(4)
	s, err := NewSimulator(d)
	if err != nil {
		t.Fatal(err)
	}
	pattern := []uint8{1, 0, 1, 1, 0, 1}
	var want [4]uint8
	for _, bit := range pattern {
		s.SetInput("din", bit)
		s.Step()
		copy(want[1:], want[:3])
		want[0] = bit
		for i := 0; i < 4; i++ {
			got, _ := s.Output(fmt.Sprintf("q%d", i))
			if got != want[i] {
				t.Fatalf("after shifting %v: q%d = %d, want %d", pattern, i, got, want[i])
			}
		}
	}
}

func TestGrayCounterAdjacency(t *testing.T) {
	const n = 4
	d := GrayCounter(n)
	s, err := NewSimulator(d)
	if err != nil {
		t.Fatal(err)
	}
	s.SetInput("en", 1)
	read := func() int {
		v := 0
		for i := 0; i < n; i++ {
			bit, err := s.Output(fmt.Sprintf("g%d", i))
			if err != nil {
				t.Fatal(err)
			}
			v |= int(bit) << uint(i)
		}
		return v
	}
	seen := map[int]bool{}
	prev := read()
	seen[prev] = true
	for step := 0; step < (1<<n)-1; step++ {
		s.Step()
		cur := read()
		diff := prev ^ cur
		if diff == 0 || diff&(diff-1) != 0 {
			t.Fatalf("step %d: %04b -> %04b differs in more than one bit", step, prev, cur)
		}
		if seen[cur] && step != (1<<n)-1 {
			t.Fatalf("state %04b repeated early", cur)
		}
		seen[cur] = true
		prev = cur
	}
	if len(seen) != 1<<n {
		t.Fatalf("visited %d states, want %d", len(seen), 1<<n)
	}
}

func TestOneHotRing(t *testing.T) {
	const n = 5
	d := OneHotRing(n)
	s, err := NewSimulator(d)
	if err != nil {
		t.Fatal(err)
	}
	for step := 0; step < 2*n; step++ {
		hot := -1
		count := 0
		for i := 0; i < n; i++ {
			v, _ := s.Output(fmt.Sprintf("q%d", i))
			if v == 1 {
				hot = i
				count++
			}
		}
		if count != 1 {
			t.Fatalf("step %d: %d hot bits", step, count)
		}
		if hot != step%n {
			t.Fatalf("step %d: token at %d, want %d", step, hot, step%n)
		}
		s.Step()
	}
}

func TestLibraryPanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("shiftreg", func() { ShiftRegister(0) })
	mustPanic("gray", func() { GrayCounter(1) })
	mustPanic("ring", func() { OneHotRing(1) })
}
