package netlist

import "fmt"

// Common truth tables for 2-input LUTs (input 0 = LSB of the index).
const (
	TruthXOR2 = 0x6 // a ^ b
	TruthAND2 = 0x8 // a & b
	TruthOR2  = 0xE // a | b
	TruthNOT  = 0x1 // !a (1-input)
	TruthBUF  = 0x2 // a  (1-input)
)

// TruthMaj3 is the 3-input majority function.
const TruthMaj3 = 0xE8

// Counter returns an n-bit binary up-counter with an "en" input and
// outputs q0..q(n-1). It demonstrates a carry chain of LUTs and DFFs.
func Counter(n int) *Design {
	if n < 1 || n > 64 {
		panic("netlist: counter width out of range")
	}
	d := NewDesign(fmt.Sprintf("counter%d", n))
	carry := d.Input("en") // carry into bit 0 is the enable
	for i := 0; i < n; i++ {
		q, setD := d.DFFLoop(0)
		setD(d.LUT(TruthXOR2, q, carry)) // q_i toggles when carry in is 1
		if i < n-1 {
			carry = d.LUT(TruthAND2, q, carry)
		}
		d.Output(fmt.Sprintf("q%d", i), q)
	}
	return d
}

// LFSR returns a Fibonacci linear-feedback shift register of the given
// width with taps (bit indices, 0-based from the output bit). Output pin
// "out" is the register's bit 0; all bits init to 1 so it never locks up.
func LFSR(width int, taps []int) *Design {
	if width < 2 || width > 64 {
		panic("netlist: LFSR width out of range")
	}
	d := NewDesign(fmt.Sprintf("lfsr%d", width))
	regs := make([]CellID, width)
	setters := make([]func(CellID), width)
	for i := range regs {
		regs[i], setters[i] = d.DFFLoop(1)
	}
	// Feedback = XOR of tapped bits.
	var fb CellID
	first := true
	for _, t := range taps {
		if t < 0 || t >= width {
			panic("netlist: LFSR tap out of range")
		}
		if first {
			fb = d.LUT(TruthBUF, regs[t])
			first = false
		} else {
			fb = d.LUT(TruthXOR2, fb, regs[t])
		}
	}
	if first {
		panic("netlist: LFSR needs at least one tap")
	}
	// Shift: reg[i] <= reg[i+1], reg[width-1] <= feedback.
	for i := 0; i < width-1; i++ {
		setters[i](regs[i+1])
	}
	setters[width-1](fb)
	d.Output("out", regs[0])
	return d
}

// NonceRegister returns the SACHa nonce partition design: nBits D
// flip-flops holding the nonce value in their init bits, each one holding
// its own state (D = Q). Reconfiguring the partition rewrites the init
// bits and thus the nonce (paper §5.2.2).
func NonceRegister(nBits int, nonce uint64) *Design {
	if nBits < 1 || nBits > 64 {
		panic("netlist: nonce width out of range")
	}
	d := NewDesign(fmt.Sprintf("nonce%d", nBits))
	for i := 0; i < nBits; i++ {
		q, setD := d.DFFLoop(uint8(nonce >> uint(i) & 1))
		setD(q) // hold
		d.Output(fmt.Sprintf("n%d", i), q)
	}
	return d
}

// Blinker returns a small demo application: an n-bit counter whose top
// bit drives a "led" output, gated by an "en" input.
func Blinker(n int) *Design {
	d := Counter(n)
	d.Name = fmt.Sprintf("blinker%d", n)
	top, _ := d.OutputSource(fmt.Sprintf("q%d", n-1))
	d.Output("led", top)
	return d
}

// Majority returns a 3-input majority voter (one LUT), the classic
// TMR voter used in fault-tolerant FPGA designs.
func Majority() *Design {
	d := NewDesign("maj3")
	a, b, c := d.Input("a"), d.Input("b"), d.Input("c")
	m := d.LUT(TruthMaj3, a, b, c)
	d.Output("y", m)
	return d
}

// ShiftRegister returns an n-bit serial-in/parallel-out shift register
// with input "din" and outputs q0..q(n-1); q0 is the newest bit.
func ShiftRegister(n int) *Design {
	if n < 1 || n > 64 {
		panic("netlist: shift register width out of range")
	}
	d := NewDesign(fmt.Sprintf("shiftreg%d", n))
	src := d.Input("din")
	for i := 0; i < n; i++ {
		q, setD := d.DFFLoop(0)
		setD(src)
		d.Output(fmt.Sprintf("q%d", i), q)
		src = q
	}
	return d
}

// GrayCounter returns an n-bit Gray-code counter: a binary counter with a
// combinational binary-to-Gray stage on its outputs g0..g(n-1), gated by
// "en". Successive states differ in exactly one output bit.
func GrayCounter(n int) *Design {
	if n < 2 || n > 32 {
		panic("netlist: gray counter width out of range")
	}
	d := Counter(n)
	d.Name = fmt.Sprintf("gray%d", n)
	for i := 0; i < n; i++ {
		q, _ := d.OutputSource(fmt.Sprintf("q%d", i))
		if i == n-1 {
			d.Output(fmt.Sprintf("g%d", i), d.LUT(TruthBUF, q))
			continue
		}
		hi, _ := d.OutputSource(fmt.Sprintf("q%d", i+1))
		d.Output(fmt.Sprintf("g%d", i), d.LUT(TruthXOR2, q, hi))
	}
	return d
}

// OneHotRing returns an n-stage one-hot ring counter (token rotator):
// exactly one of q0..q(n-1) is high, advancing each clock.
func OneHotRing(n int) *Design {
	if n < 2 || n > 64 {
		panic("netlist: ring length out of range")
	}
	d := NewDesign(fmt.Sprintf("ring%d", n))
	qs := make([]CellID, n)
	setters := make([]func(CellID), n)
	for i := range qs {
		init := uint8(0)
		if i == 0 {
			init = 1
		}
		qs[i], setters[i] = d.DFFLoop(init)
		d.Output(fmt.Sprintf("q%d", i), qs[i])
	}
	for i := range qs {
		setters[i](qs[(i+n-1)%n])
	}
	return d
}

// RippleAdder returns an n-bit ripple-carry adder with inputs a0.., b0..,
// cin and outputs s0.., cout.
func RippleAdder(n int) *Design {
	if n < 1 || n > 32 {
		panic("netlist: adder width out of range")
	}
	d := NewDesign(fmt.Sprintf("adder%d", n))
	carry := d.Input("cin")
	for i := 0; i < n; i++ {
		a := d.Input(fmt.Sprintf("a%d", i))
		b := d.Input(fmt.Sprintf("b%d", i))
		axb := d.LUT(TruthXOR2, a, b)
		sum := d.LUT(TruthXOR2, axb, carry)
		// carry-out = a&b | carry&(a^b) = Maj3(a, b, carry)
		carry = d.LUT(TruthMaj3, a, b, carry)
		d.Output(fmt.Sprintf("s%d", i), sum)
	}
	d.Output("cout", carry)
	return d
}
