package netlist

import "fmt"

// SoftCore builds a small soft-core processor entirely out of LUTs and
// flip-flops — the paper's §8 vision of "embedding softcore processors in
// an FPGA ... allowing the attestation scheme to do a combined
// verification of the FPGA configuration and the current state of the
// FPGA application (including the state of the embedded processor)".
//
// The SC4 architecture:
//
//	PC   4-bit program counter
//	ACC  8-bit accumulator
//	ROM  up to 16 instructions, realised as LUT4s over the PC bits
//	     (one LUT per instruction bit — the program literally *is*
//	     configuration, so attestation covers the code)
//
// Instruction format op[1:0] imm[7:0]:
//
//	00 NOP
//	01 ADDI imm   ACC <- ACC + imm
//	10 XORI imm   ACC <- ACC ^ imm
//	11 JMP  imm   PC  <- imm[3:0]
//
// Outputs: acc0..acc7 and pc0..pc3. The CAPTURE attestation extension can
// therefore verify the processor's live state against a verifier-side
// prediction.

// SC4Op codes.
const (
	SC4Nop = iota
	SC4Addi
	SC4Xori
	SC4Jmp
)

// SC4Instr is one soft-core instruction.
type SC4Instr struct {
	Op  int
	Imm uint8
}

// SC4Program assembles a program for SoftCore.
type SC4Program []SC4Instr

// Encode returns the 10-bit instruction words.
func (p SC4Program) Encode() ([]uint16, error) {
	if len(p) > 16 {
		return nil, fmt.Errorf("netlist: SC4 program of %d instructions exceeds 16", len(p))
	}
	out := make([]uint16, len(p))
	for i, ins := range p {
		if ins.Op < 0 || ins.Op > 3 {
			return nil, fmt.Errorf("netlist: SC4 opcode %d invalid", ins.Op)
		}
		if ins.Op == SC4Jmp && ins.Imm > 15 {
			return nil, fmt.Errorf("netlist: SC4 jump target %d beyond 4-bit PC", ins.Imm)
		}
		out[i] = uint16(ins.Op)<<8 | uint16(ins.Imm)
	}
	return out, nil
}

// SoftCore builds the SC4 design for the given program. Unused ROM slots
// are NOPs.
func SoftCore(program SC4Program) *Design {
	words, err := program.Encode()
	if err != nil {
		panic(err)
	}
	d := NewDesign("sc4")

	// State registers.
	pc := make([]CellID, 4)
	pcSet := make([]func(CellID), 4)
	for i := range pc {
		pc[i], pcSet[i] = d.DFFLoop(0)
	}
	acc := make([]CellID, 8)
	accSet := make([]func(CellID), 8)
	for i := range acc {
		acc[i], accSet[i] = d.DFFLoop(0)
	}

	// Instruction ROM: bit j of the current instruction is a LUT4 over
	// the PC whose truth table is column j of the program.
	romBit := func(j int) CellID {
		var truth uint64
		for addr, w := range words {
			if w>>uint(j)&1 == 1 {
				truth |= 1 << uint(addr)
			}
		}
		return d.LUT(truth, pc[0], pc[1], pc[2], pc[3])
	}
	imm := make([]CellID, 8)
	for j := range imm {
		imm[j] = romBit(j)
	}
	op0 := romBit(8)
	op1 := romBit(9)

	// ALU: sum = ACC + imm (ripple), axor = ACC ^ imm.
	carry := d.Const(0)
	sum := make([]CellID, 8)
	axor := make([]CellID, 8)
	for i := 0; i < 8; i++ {
		axb := d.LUT(TruthXOR2, acc[i], imm[i])
		sum[i] = d.LUT(TruthXOR2, axb, carry)
		carry = d.LUT(TruthMaj3, acc[i], imm[i], carry)
		axor[i] = axb
	}

	// Accumulator update mux: per bit, a LUT5 over
	// (op0, op1, acc_i, sum_i, xor_i):
	//	op=00 or 11 -> acc_i; op=01 -> sum_i; op=10 -> xor_i.
	var accTruth uint64
	for idx := 0; idx < 32; idx++ {
		o0 := idx & 1
		o1 := idx >> 1 & 1
		a := idx >> 2 & 1
		s := idx >> 3 & 1
		x := idx >> 4 & 1
		var v int
		switch o1<<1 | o0 {
		case SC4Addi:
			v = s
		case SC4Xori:
			v = x
		default:
			v = a
		}
		if v == 1 {
			accTruth |= 1 << uint(idx)
		}
	}
	for i := 0; i < 8; i++ {
		accSet[i](d.LUT(accTruth, op0, op1, acc[i], sum[i], axor[i]))
	}

	// PC update: inc = PC + 1; next = (op==11) ? imm[3:0] : inc.
	// isJmp = op0 & op1.
	isJmp := d.LUT(TruthAND2, op0, op1)
	pcCarry := d.Const(1)
	for i := 0; i < 4; i++ {
		inc := d.LUT(TruthXOR2, pc[i], pcCarry)
		pcCarry = d.LUT(TruthAND2, pc[i], pcCarry)
		// mux: LUT3(isJmp, inc_i, imm_i): isJmp ? imm : inc.
		// index bits: b0=isJmp, b1=inc, b2=imm.
		var t uint64
		for idx := 0; idx < 8; idx++ {
			j := idx & 1
			in := idx >> 1 & 1
			im := idx >> 2 & 1
			v := in
			if j == 1 {
				v = im
			}
			if v == 1 {
				t |= 1 << uint(idx)
			}
		}
		pcSet[i](d.LUT(t, isJmp, inc, imm[i]))
	}

	for i := 0; i < 8; i++ {
		d.Output(fmt.Sprintf("acc%d", i), acc[i])
	}
	for i := 0; i < 4; i++ {
		d.Output(fmt.Sprintf("pc%d", i), pc[i])
	}
	return d
}

// SC4Reference interprets a program for n cycles and returns the expected
// (ACC, PC) — the golden model the netlist implementation is verified
// against.
func SC4Reference(program SC4Program, cycles int) (acc uint8, pc uint8) {
	words, err := program.Encode()
	if err != nil {
		panic(err)
	}
	rom := make([]uint16, 16)
	copy(rom, words)
	for i := 0; i < cycles; i++ {
		w := rom[pc&0xF]
		op := int(w >> 8 & 3)
		imm := uint8(w)
		switch op {
		case SC4Addi:
			acc += imm
		case SC4Xori:
			acc ^= imm
		}
		if op == SC4Jmp {
			pc = imm & 0xF
		} else {
			pc = (pc + 1) & 0xF
		}
	}
	return acc, pc
}
