// Package netlist describes and simulates LUT-level hardware designs.
//
// A Design is a list of cells — external inputs, LUTs of up to six inputs,
// D flip-flops and output markers — connected by cell indices. The fabric
// model places designs onto CLB sites and serialises them into
// configuration bits; this package provides the reference functional
// simulation that the fabric's bit-level decode must agree with (the
// semantic-fidelity property in DESIGN.md).
package netlist

import "fmt"

// CellKind enumerates the supported cell types.
type CellKind uint8

const (
	// KindInput is an external input pin.
	KindInput CellKind = iota
	// KindLUT is a look-up table of 1..6 inputs.
	KindLUT
	// KindDFF is a rising-edge D flip-flop with a configurable init value.
	KindDFF
	// KindConst is a constant 0 or 1 driver.
	KindConst
)

// MaxLUTInputs is the LUT arity of the modelled fabric (LUT6).
const MaxLUTInputs = 6

// CellID identifies a cell within a Design.
type CellID int

// Cell is one node of the netlist. Its output value is identified by its
// CellID.
type Cell struct {
	Kind   CellKind
	Name   string   // input/output pin name, optional for internal cells
	Inputs []CellID // LUT inputs or the DFF's D input
	Truth  uint64   // LUT truth table, bit i = output for input pattern i
	Init   uint8    // DFF power-on value (0/1), or the constant value
}

// Design is a named netlist with declared external inputs and outputs.
type Design struct {
	Name    string
	cells   []Cell
	inputs  map[string]CellID
	outputs map[string]CellID
}

// NewDesign returns an empty design.
func NewDesign(name string) *Design {
	return &Design{
		Name:    name,
		inputs:  make(map[string]CellID),
		outputs: make(map[string]CellID),
	}
}

// NumCells returns the number of cells.
func (d *Design) NumCells() int { return len(d.cells) }

// Cell returns cell c.
func (d *Design) Cell(c CellID) Cell { return d.cells[c] }

// Input declares an external input pin and returns its cell.
func (d *Design) Input(name string) CellID {
	if _, dup := d.inputs[name]; dup {
		panic(fmt.Sprintf("netlist: duplicate input %q", name))
	}
	id := d.add(Cell{Kind: KindInput, Name: name})
	d.inputs[name] = id
	return id
}

// Const adds a constant driver of value v&1.
func (d *Design) Const(v uint8) CellID {
	return d.add(Cell{Kind: KindConst, Init: v & 1})
}

// LUT adds a look-up table with the given truth table and inputs.
func (d *Design) LUT(truth uint64, inputs ...CellID) CellID {
	if len(inputs) == 0 || len(inputs) > MaxLUTInputs {
		panic(fmt.Sprintf("netlist: LUT with %d inputs", len(inputs)))
	}
	for _, in := range inputs {
		d.checkRef(in)
	}
	ins := make([]CellID, len(inputs))
	copy(ins, inputs)
	return d.add(Cell{Kind: KindLUT, Inputs: ins, Truth: truth})
}

// DFF adds a D flip-flop fed by dIn with the given power-on init value.
func (d *Design) DFF(dIn CellID, init uint8) CellID {
	d.checkRef(dIn)
	return d.add(Cell{Kind: KindDFF, Inputs: []CellID{dIn}, Init: init & 1})
}

// DFFLoop adds a D flip-flop whose D input is connected later via the
// returned setter. This is how feedback loops (counters, LFSRs, hold
// registers) are built, since cells can otherwise only reference
// already-created cells. The setter must be called exactly once before
// the design is simulated or placed.
func (d *Design) DFFLoop(init uint8) (CellID, func(dIn CellID)) {
	id := d.add(Cell{Kind: KindDFF, Init: init & 1})
	bound := false
	return id, func(dIn CellID) {
		if bound {
			panic("netlist: DFFLoop input bound twice")
		}
		d.checkRef(dIn)
		d.cells[id].Inputs = []CellID{dIn}
		bound = true
	}
}

// Validate checks that every DFF has its D input bound.
func (d *Design) Validate() error {
	for i, c := range d.cells {
		if c.Kind == KindDFF && len(c.Inputs) != 1 {
			return fmt.Errorf("netlist: DFF cell %d in %q has unbound D input", i, d.Name)
		}
	}
	return nil
}

// Output declares an external output pin driven by src.
func (d *Design) Output(name string, src CellID) {
	if _, dup := d.outputs[name]; dup {
		panic(fmt.Sprintf("netlist: duplicate output %q", name))
	}
	d.checkRef(src)
	d.outputs[name] = src
}

func (d *Design) add(c Cell) CellID {
	d.cells = append(d.cells, c)
	return CellID(len(d.cells) - 1)
}

func (d *Design) checkRef(c CellID) {
	if c < 0 || int(c) >= len(d.cells) {
		panic(fmt.Sprintf("netlist: dangling cell reference %d", c))
	}
}

// InputNames returns the declared input pin names (unsorted map keys).
func (d *Design) InputNames() []string {
	out := make([]string, 0, len(d.inputs))
	for n := range d.inputs {
		out = append(out, n)
	}
	return out
}

// OutputNames returns the declared output pin names.
func (d *Design) OutputNames() []string {
	out := make([]string, 0, len(d.outputs))
	for n := range d.outputs {
		out = append(out, n)
	}
	return out
}

// OutputSource returns the cell driving the named output.
func (d *Design) OutputSource(name string) (CellID, bool) {
	id, ok := d.outputs[name]
	return id, ok
}

// Stats summarises resource usage of a design.
type Stats struct {
	LUTs, DFFs, Inputs, Outputs, Consts int
}

// Stats returns the cell counts of the design.
func (d *Design) Stats() Stats {
	var s Stats
	for _, c := range d.cells {
		switch c.Kind {
		case KindLUT:
			s.LUTs++
		case KindDFF:
			s.DFFs++
		case KindInput:
			s.Inputs++
		case KindConst:
			s.Consts++
		}
	}
	s.Outputs = len(d.outputs)
	return s
}

// Simulator evaluates a design cycle by cycle.
type Simulator struct {
	d      *Design
	values []uint8 // current settled value per cell
	state  []uint8 // DFF state
	order  []CellID
	inVals map[string]uint8
}

// NewSimulator builds a simulator; it returns an error if the
// combinational logic contains a cycle.
func NewSimulator(d *Design) (*Simulator, error) {
	if err := d.Validate(); err != nil {
		return nil, err
	}
	order, err := topoOrder(d)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		d:      d,
		values: make([]uint8, len(d.cells)),
		state:  make([]uint8, len(d.cells)),
		order:  order,
		inVals: make(map[string]uint8),
	}
	for i, c := range d.cells {
		if c.Kind == KindDFF {
			s.state[i] = c.Init
		}
	}
	s.settle()
	return s, nil
}

// topoOrder orders combinational cells so every LUT's inputs are computed
// first. DFF outputs are state, so they break cycles.
func topoOrder(d *Design) ([]CellID, error) {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make([]uint8, len(d.cells))
	var order []CellID
	var visit func(CellID) error
	visit = func(c CellID) error {
		switch color[c] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("netlist: combinational cycle through cell %d in %q", c, d.Name)
		}
		color[c] = grey
		cell := d.cells[c]
		if cell.Kind == KindLUT {
			for _, in := range cell.Inputs {
				if d.cells[in].Kind != KindDFF { // DFFs are state, not comb deps
					if err := visit(in); err != nil {
						return err
					}
				}
			}
		}
		color[c] = black
		order = append(order, c)
		return nil
	}
	for i := range d.cells {
		if err := visit(CellID(i)); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// SetInput drives an external input for subsequent evaluation.
func (s *Simulator) SetInput(name string, v uint8) error {
	if _, ok := s.d.inputs[name]; !ok {
		return fmt.Errorf("netlist: unknown input %q", name)
	}
	s.inVals[name] = v & 1
	s.settle()
	return nil
}

// settle recomputes all combinational values from inputs and DFF state.
func (s *Simulator) settle() {
	for _, c := range s.order {
		cell := s.d.cells[c]
		switch cell.Kind {
		case KindInput:
			s.values[c] = s.inVals[cell.Name]
		case KindConst:
			s.values[c] = cell.Init
		case KindDFF:
			s.values[c] = s.state[c]
		case KindLUT:
			idx := 0
			for bit, in := range cell.Inputs {
				if s.values[in] != 0 {
					idx |= 1 << uint(bit)
				}
			}
			s.values[c] = uint8(cell.Truth >> uint(idx) & 1)
		}
	}
}

// Step applies one rising clock edge: all DFFs latch their D inputs
// simultaneously, then combinational logic settles.
func (s *Simulator) Step() {
	next := make([]uint8, 0, 8)
	ids := make([]CellID, 0, 8)
	for i, c := range s.d.cells {
		if c.Kind == KindDFF {
			ids = append(ids, CellID(i))
			next = append(next, s.values[c.Inputs[0]])
		}
	}
	for j, id := range ids {
		s.state[id] = next[j]
	}
	s.settle()
}

// Value returns the settled value of a cell.
func (s *Simulator) Value(c CellID) uint8 { return s.values[c] }

// Output returns the value of a named output pin.
func (s *Simulator) Output(name string) (uint8, error) {
	src, ok := s.d.outputs[name]
	if !ok {
		return 0, fmt.Errorf("netlist: unknown output %q", name)
	}
	return s.values[src], nil
}

// RegisterState returns the current value of every DFF in cell order.
// The fabric's readback capture exposes exactly this vector.
func (s *Simulator) RegisterState() []uint8 {
	var out []uint8
	for i, c := range s.d.cells {
		if c.Kind == KindDFF {
			out = append(out, s.state[i])
		}
	}
	return out
}

// LoadRegisterState forces DFF state (in cell order), modelling the
// global set/reset that follows a partial reconfiguration.
func (s *Simulator) LoadRegisterState(vals []uint8) error {
	idx := 0
	for i, c := range s.d.cells {
		if c.Kind != KindDFF {
			continue
		}
		if idx >= len(vals) {
			return fmt.Errorf("netlist: register state too short: %d values for design with more DFFs", len(vals))
		}
		s.state[i] = vals[idx] & 1
		idx++
	}
	if idx != len(vals) {
		return fmt.Errorf("netlist: register state too long: %d values, %d DFFs", len(vals), idx)
	}
	s.settle()
	return nil
}
