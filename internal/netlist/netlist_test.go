package netlist

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLUTTruthTables(t *testing.T) {
	d := NewDesign("gates")
	a := d.Input("a")
	b := d.Input("b")
	d.Output("xor", d.LUT(TruthXOR2, a, b))
	d.Output("and", d.LUT(TruthAND2, a, b))
	d.Output("or", d.LUT(TruthOR2, a, b))
	d.Output("not", d.LUT(TruthNOT, a))
	s, err := NewSimulator(d)
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		a, b              uint8
		xor, and, or, not uint8
	}{
		{0, 0, 0, 0, 0, 1},
		{1, 0, 1, 0, 1, 0},
		{0, 1, 1, 0, 1, 1},
		{1, 1, 0, 1, 1, 0},
	} {
		s.SetInput("a", tc.a)
		s.SetInput("b", tc.b)
		for name, want := range map[string]uint8{"xor": tc.xor, "and": tc.and, "or": tc.or, "not": tc.not} {
			got, err := s.Output(name)
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Errorf("a=%d b=%d %s = %d, want %d", tc.a, tc.b, name, got, want)
			}
		}
	}
}

func TestCounterCounts(t *testing.T) {
	d := Counter(4)
	s, err := NewSimulator(d)
	if err != nil {
		t.Fatal(err)
	}
	s.SetInput("en", 1)
	read := func() int {
		v := 0
		for i := 0; i < 4; i++ {
			bit, _ := s.Output(fmt.Sprintf("q%d", i))
			v |= int(bit) << uint(i)
		}
		return v
	}
	if read() != 0 {
		t.Fatalf("counter should start at 0, got %d", read())
	}
	for want := 1; want < 20; want++ {
		s.Step()
		if got := read(); got != want%16 {
			t.Fatalf("after %d steps: %d, want %d", want, got, want%16)
		}
	}
	// Disable must freeze it.
	s.SetInput("en", 0)
	frozen := read()
	s.Step()
	if read() != frozen {
		t.Fatal("counter advanced while disabled")
	}
}

func TestLFSRPeriod(t *testing.T) {
	// 4-bit Fibonacci LFSR with taps [0,1] (x^4 + x^3 + 1 reversed layout)
	// has maximal period 15.
	d := LFSR(4, []int{0, 1})
	s, err := NewSimulator(d)
	if err != nil {
		t.Fatal(err)
	}
	start := s.RegisterState()
	period := 0
	for i := 1; i <= 100; i++ {
		s.Step()
		same := true
		for j, v := range s.RegisterState() {
			if v != start[j] {
				same = false
				break
			}
		}
		if same {
			period = i
			break
		}
	}
	if period != 15 {
		t.Fatalf("LFSR period = %d, want 15", period)
	}
}

func TestNonceRegisterHoldsValue(t *testing.T) {
	const nonce = 0xDEADBEEFCAFEF00D
	d := NonceRegister(64, nonce)
	s, err := NewSimulator(d)
	if err != nil {
		t.Fatal(err)
	}
	read := func() uint64 {
		var v uint64
		for i := 0; i < 64; i++ {
			bit, _ := s.Output(fmt.Sprintf("n%d", i))
			v |= uint64(bit) << uint(i)
		}
		return v
	}
	if read() != nonce {
		t.Fatalf("nonce = %#x, want %#x", read(), uint64(nonce))
	}
	for i := 0; i < 5; i++ {
		s.Step()
	}
	if read() != nonce {
		t.Fatal("nonce register did not hold its value across clocks")
	}
}

func TestMajority(t *testing.T) {
	s, err := NewSimulator(Majority())
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 8; v++ {
		s.SetInput("a", uint8(v)&1)
		s.SetInput("b", uint8(v>>1)&1)
		s.SetInput("c", uint8(v>>2)&1)
		got, _ := s.Output("y")
		ones := v&1 + v>>1&1 + v>>2&1
		want := uint8(0)
		if ones >= 2 {
			want = 1
		}
		if got != want {
			t.Errorf("maj(%03b) = %d, want %d", v, got, want)
		}
	}
}

// Property: the ripple adder computes a+b+cin for random operands.
func TestQuickRippleAdder(t *testing.T) {
	d := RippleAdder(8)
	s, err := NewSimulator(d)
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b uint8, cin bool) bool {
		ci := 0
		if cin {
			ci = 1
		}
		s.SetInput("cin", uint8(ci))
		for i := 0; i < 8; i++ {
			s.SetInput(fmt.Sprintf("a%d", i), a>>uint(i)&1)
			s.SetInput(fmt.Sprintf("b%d", i), b>>uint(i)&1)
		}
		sum := 0
		for i := 0; i < 8; i++ {
			bit, _ := s.Output(fmt.Sprintf("s%d", i))
			sum |= int(bit) << uint(i)
		}
		cout, _ := s.Output("cout")
		sum |= int(cout) << 8
		return sum == int(a)+int(b)+ci
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	d := NewDesign("cycle")
	a := d.Input("a")
	l1 := d.LUT(TruthBUF, a)
	// Create a LUT loop via DFFLoop misuse: two LUTs referencing each
	// other is impossible with the builder, so use a DFF-free self loop
	// by rewiring through the only legal mechanism — not available.
	// Instead check that a LUT chain is fine and a grey-node cycle via
	// manual cell surgery errors out.
	d.cells[l1].Inputs[0] = l1 // direct self-reference
	if _, err := NewSimulator(d); err == nil {
		t.Fatal("combinational cycle not detected")
	}
}

func TestDFFBreaksCycle(t *testing.T) {
	// q -> LUT -> q through a DFF must be legal.
	d := NewDesign("dffloop")
	q, setD := d.DFFLoop(1)
	setD(d.LUT(TruthNOT, q))
	d.Output("q", q)
	s, err := NewSimulator(d)
	if err != nil {
		t.Fatal(err)
	}
	v0, _ := s.Output("q")
	s.Step()
	v1, _ := s.Output("q")
	s.Step()
	v2, _ := s.Output("q")
	if v0 != 1 || v1 != 0 || v2 != 1 {
		t.Fatalf("toggle sequence %d %d %d, want 1 0 1", v0, v1, v2)
	}
}

func TestUnboundDFFRejected(t *testing.T) {
	d := NewDesign("unbound")
	q, _ := d.DFFLoop(0)
	d.Output("q", q)
	if _, err := NewSimulator(d); err == nil {
		t.Fatal("unbound DFF accepted")
	}
}

func TestDFFLoopDoubleBindPanics(t *testing.T) {
	d := NewDesign("x")
	q, setD := d.DFFLoop(0)
	setD(q)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	setD(q)
}

func TestRegisterStateRoundTrip(t *testing.T) {
	d := Counter(8)
	s, _ := NewSimulator(d)
	s.SetInput("en", 1)
	for i := 0; i < 37; i++ {
		s.Step()
	}
	st := s.RegisterState()
	if len(st) != 8 {
		t.Fatalf("state length %d", len(st))
	}
	s2, _ := NewSimulator(d)
	if err := s2.LoadRegisterState(st); err != nil {
		t.Fatal(err)
	}
	for i := range st {
		if s2.RegisterState()[i] != st[i] {
			t.Fatal("LoadRegisterState mismatch")
		}
	}
	if err := s2.LoadRegisterState(st[:3]); err == nil {
		t.Fatal("short state accepted")
	}
	if err := s2.LoadRegisterState(append(st, 0)); err == nil {
		t.Fatal("long state accepted")
	}
}

func TestStats(t *testing.T) {
	d := RippleAdder(4)
	st := d.Stats()
	// 4 bits: a,b inputs ×4 + cin = 9 inputs; 2 XOR + 1 MAJ per bit = 12 LUTs;
	// outputs: 4 sums + cout = 5.
	if st.Inputs != 9 || st.LUTs != 12 || st.Outputs != 5 || st.DFFs != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestErrorsAndPanics(t *testing.T) {
	d := NewDesign("e")
	a := d.Input("a")
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("dup input", func() { d.Input("a") })
	mustPanic("lut no inputs", func() { d.LUT(0) })
	mustPanic("lut 7 inputs", func() { d.LUT(0, a, a, a, a, a, a, a) })
	mustPanic("dangling ref", func() { d.LUT(TruthBUF, CellID(99)) })
	d.Output("y", a)
	mustPanic("dup output", func() { d.Output("y", a) })
	mustPanic("counter width", func() { Counter(0) })
	mustPanic("lfsr width", func() { LFSR(1, []int{0}) })
	mustPanic("lfsr taps", func() { LFSR(4, nil) })
	mustPanic("lfsr tap range", func() { LFSR(4, []int{9}) })
	mustPanic("nonce width", func() { NonceRegister(65, 0) })
	mustPanic("adder width", func() { RippleAdder(0) })

	s, err := NewSimulator(d)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.SetInput("zz", 1); err == nil {
		t.Error("unknown input accepted")
	}
	if _, err := s.Output("zz"); err == nil {
		t.Error("unknown output accepted")
	}
}

func TestBlinker(t *testing.T) {
	d := Blinker(3)
	s, _ := NewSimulator(d)
	s.SetInput("en", 1)
	// led = q2, goes high after 4 steps.
	for i := 0; i < 4; i++ {
		if led, _ := s.Output("led"); led != 0 {
			t.Fatalf("led high too early at step %d", i)
		}
		s.Step()
	}
	if led, _ := s.Output("led"); led != 1 {
		t.Fatal("led not high after 4 steps")
	}
}

// Property: simulation is deterministic — two simulators stepped with the
// same random input schedule agree on all outputs.
func TestQuickDeterminism(t *testing.T) {
	d := Counter(6)
	f := func(seed int64) bool {
		r1 := rand.New(rand.NewSource(seed))
		r2 := rand.New(rand.NewSource(seed))
		s1, _ := NewSimulator(d)
		s2, _ := NewSimulator(d)
		for i := 0; i < 50; i++ {
			s1.SetInput("en", uint8(r1.Intn(2)))
			s2.SetInput("en", uint8(r2.Intn(2)))
			s1.Step()
			s2.Step()
		}
		for i := 0; i < 6; i++ {
			a, _ := s1.Output(fmt.Sprintf("q%d", i))
			b, _ := s2.Output(fmt.Sprintf("q%d", i))
			if a != b {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
