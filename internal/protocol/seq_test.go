package protocol

import (
	"bytes"
	"strings"
	"testing"
)

func TestSeqEnvelopeRoundTrip(t *testing.T) {
	inner, err := Readback(4711).Encode()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []*Message{WrapReq(7, inner), WrapResp(1<<31, inner)} {
		back := roundTrip(t, m)
		if back.Seq != m.Seq {
			t.Fatalf("%v seq %d -> %d", m.Type, m.Seq, back.Seq)
		}
		if !bytes.Equal(back.Inner, inner) {
			t.Fatalf("%v inner mismatch", m.Type)
		}
		em, err := Decode(back.Inner)
		if err != nil || em.Type != MsgICAPReadback || em.FrameIndex != 4711 {
			t.Fatalf("embedded message: %+v %v", em, err)
		}
	}
}

func TestSeqEnvelopeCRCDetectsCorruption(t *testing.T) {
	inner, _ := Readback(1).Encode()
	wire, err := WrapReq(3, inner).Encode()
	if err != nil {
		t.Fatal(err)
	}
	// Flip one bit in every position after the type byte: sequence
	// number, CRC field, and embedded payload must all be covered.
	for i := 1; i < len(wire); i++ {
		cp := append([]byte(nil), wire...)
		cp[i] ^= 0x40
		if _, err := Decode(cp); err == nil {
			t.Fatalf("byte %d corruption not detected", i)
		}
	}
}

func TestSeqEnvelopeRejectsEmptyInner(t *testing.T) {
	if _, err := WrapReq(1, nil).Encode(); err == nil {
		t.Fatal("empty envelope accepted on encode")
	}
	// 9-byte wire form would be an envelope with zero-length inner.
	if _, err := Decode([]byte{byte(MsgSeqReq), 0, 0, 0, 1, 0, 0, 0, 0}); err == nil {
		t.Fatal("short envelope accepted on decode")
	}
}

func TestSeqCRCBindsSequenceNumber(t *testing.T) {
	// The CRC covers the sequence number: splicing an old payload under a
	// new sequence number must not validate.
	inner, _ := Readback(9).Encode()
	a, _ := WrapReq(1, inner).Encode()
	b, _ := WrapReq(2, inner).Encode()
	// Graft b's seq field onto a's CRC+payload.
	spliced := append([]byte(nil), a...)
	copy(spliced[1:5], b[1:5])
	if _, err := Decode(spliced); err == nil {
		t.Fatal("spliced sequence number accepted")
	}
}

func TestDecodeRejectsZeroBatch(t *testing.T) {
	if _, err := Decode([]byte{byte(MsgICAPConfigBatch), 0}); err == nil {
		t.Fatal("zero-frame batch accepted")
	}
}

func TestDecodeRejectsOversizedError(t *testing.T) {
	long := strings.Repeat("e", MaxErrLen+1)
	wire := []byte{byte(MsgError), byte(len(long) >> 8), byte(len(long))}
	wire = append(wire, long...)
	if _, err := Decode(wire); err == nil {
		t.Fatal("oversized error string accepted")
	}
}

func TestErrorfTruncates(t *testing.T) {
	m := Errorf("%s", strings.Repeat("y", 5000))
	if len(m.Err) != MaxErrLen {
		t.Fatalf("Errorf kept %d bytes, want %d", len(m.Err), MaxErrLen)
	}
	if _, err := m.Encode(); err != nil {
		t.Fatalf("truncated error does not encode: %v", err)
	}
}
