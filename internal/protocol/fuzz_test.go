package protocol

import (
	"bytes"
	"reflect"
	"testing"

	"sacha/internal/device"
)

// fuzzSeeds returns one valid wire form per message type plus a few
// near-valid mutants, so the fuzzer starts from deep protocol states.
func fuzzSeeds(t interface{ Fatal(...any) }) [][]byte {
	words := make([]uint32, device.FrameWords)
	for i := range words {
		words[i] = uint32(i * 0x01010101)
	}
	inner, err := Readback(17).Encode()
	if err != nil {
		t.Fatal(err)
	}
	msgs := []*Message{
		Config(137, words),
		{Type: MsgICAPConfigBatch, Batch: []FrameRecord{{Index: 1, Words: words}, {Index: 2, Words: words}}},
		Readback(28487),
		Checksum(),
		{Type: MsgSigChecksum, Arg: 5},
		{Type: MsgAppStep, Steps: 1000},
		{Type: MsgFrameData, FrameIndex: 12345, Words: words},
		{Type: MsgMACValue, MAC: [16]byte{1, 2, 3}, Arg: 9},
		{Type: MsgSigValue, Sig: bytes.Repeat([]byte{0xAB}, 71)},
		Errorf("bad FAR %d", 9),
		{Type: MsgAck},
		WrapReq(42, inner),
		WrapResp(42, inner),
	}
	seeds := make([][]byte, 0, len(msgs)+4)
	for _, m := range msgs {
		wire, err := m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		seeds = append(seeds, wire)
	}
	seeds = append(seeds,
		nil,
		[]byte{0},
		[]byte{byte(MsgSeqReq), 0, 0, 0, 1, 0, 0, 0, 0},
		[]byte{byte(MsgError), 0xFF, 0xFF},
	)
	return seeds
}

// FuzzProtocolDecode checks that Decode never panics on arbitrary bytes
// and that every accepted message survives an Encode→Decode round trip
// unchanged — the invariant the retry layer relies on when it re-sends a
// cached wire image.
func FuzzProtocolDecode(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Decode(data)
		if err != nil {
			return // malformed input rejected: fine
		}
		wire, err := m.Encode()
		if err != nil {
			t.Fatalf("decoded message does not re-encode: %v (input %x)", err, data)
		}
		back, err := Decode(wire)
		if err != nil {
			t.Fatalf("re-encoded message does not decode: %v (input %x)", err, data)
		}
		if !reflect.DeepEqual(m, back) {
			t.Fatalf("round trip not stable:\nfirst  %+v\nsecond %+v\ninput %x", m, back, data)
		}
	})
}
