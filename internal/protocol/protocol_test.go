package protocol

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"sacha/internal/device"
)

func roundTrip(t *testing.T, m *Message) *Message {
	t.Helper()
	data, err := m.Encode()
	if err != nil {
		t.Fatalf("encode %v: %v", m.Type, err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatalf("decode %v: %v", m.Type, err)
	}
	if back.Type != m.Type {
		t.Fatalf("type %v -> %v", m.Type, back.Type)
	}
	return back
}

func TestConfigRoundTrip(t *testing.T) {
	words := make([]uint32, device.FrameWords)
	for i := range words {
		words[i] = uint32(i * 7)
	}
	back := roundTrip(t, Config(12345, words))
	if back.FrameIndex != 12345 {
		t.Fatalf("index %d", back.FrameIndex)
	}
	for i, w := range back.Words {
		if w != words[i] {
			t.Fatalf("word %d mismatch", i)
		}
	}
}

func TestReadbackRoundTrip(t *testing.T) {
	back := roundTrip(t, Readback(28487))
	if back.FrameIndex != 28487 {
		t.Fatalf("index %d", back.FrameIndex)
	}
}

func TestSimpleMessages(t *testing.T) {
	roundTrip(t, Checksum())
	roundTrip(t, &Message{Type: MsgAck})
	roundTrip(t, &Message{Type: MsgSigChecksum})
	back := roundTrip(t, &Message{Type: MsgAppStep, Steps: 77})
	if back.Steps != 77 {
		t.Fatalf("steps %d", back.Steps)
	}
}

func TestMACValueRoundTrip(t *testing.T) {
	m := &Message{Type: MsgMACValue, Arg: 42}
	for i := range m.MAC {
		m.MAC[i] = byte(i)
	}
	back := roundTrip(t, m)
	if back.MAC != m.MAC || back.Arg != 42 {
		t.Fatal("MAC mismatch")
	}
}

func TestFrameDataRoundTripAndSize(t *testing.T) {
	words := make([]uint32, device.FrameWords)
	for i := range words {
		words[i] = uint32(i)
	}
	m := &Message{Type: MsgFrameData, FrameIndex: 28487, Words: words}
	data, err := m.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) != SizeFrameData {
		t.Fatalf("FrameData size %d, want %d", len(data), SizeFrameData)
	}
	back, err := Decode(data)
	if err != nil || back.FrameIndex != 28487 {
		t.Fatalf("decode: %v index %d", err, back.FrameIndex)
	}
	// 24-bit overflow must be rejected.
	m.FrameIndex = 1 << 24
	if _, err := m.Encode(); err == nil {
		t.Fatal("oversized 24-bit index accepted")
	}
}

func TestWireSizeConstants(t *testing.T) {
	words := make([]uint32, device.FrameWords)
	for _, tc := range []struct {
		m    *Message
		want int
	}{
		{Config(0, words), SizeICAPConfig},
		{Readback(0), SizeICAPReadback},
		{Checksum(), SizeMACChecksum},
		{&Message{Type: MsgFrameData, Words: words}, SizeFrameData},
		{&Message{Type: MsgMACValue}, SizeMACValue},
	} {
		data, err := tc.m.Encode()
		if err != nil {
			t.Fatal(err)
		}
		if len(data) != tc.want {
			t.Errorf("%v encodes to %d bytes, want %d", tc.m.Type, len(data), tc.want)
		}
	}
}

func TestSigAndErrorRoundTrip(t *testing.T) {
	sig := make([]byte, 71)
	rand.New(rand.NewSource(1)).Read(sig)
	back := roundTrip(t, &Message{Type: MsgSigValue, Sig: sig})
	if string(back.Sig) != string(sig) {
		t.Fatal("sig mismatch")
	}
	back = roundTrip(t, Errorf("bad FAR %d", 9))
	if back.Err != "bad FAR 9" {
		t.Fatalf("err %q", back.Err)
	}
}

func TestEncodeErrors(t *testing.T) {
	if _, err := (&Message{Type: MsgICAPConfig, Words: make([]uint32, 3)}).Encode(); err == nil {
		t.Error("short frame accepted")
	}
	if _, err := (&Message{Type: MsgType(99)}).Encode(); err == nil {
		t.Error("unknown type accepted")
	}
	if _, err := (&Message{Type: MsgError, Err: strings.Repeat("x", 2000)}).Encode(); err == nil {
		t.Error("oversized error accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	cases := [][]byte{
		nil,
		{byte(MsgICAPConfig)},
		{byte(MsgICAPConfig), 1, 2},
		{byte(MsgICAPReadback)},
		{byte(MsgMACChecksum), 1},
		{byte(MsgMACValue), 1, 2, 3},
		{byte(MsgSigValue)},
		{byte(MsgSigValue), 0, 5, 1},
		{byte(MsgError), 0},
		{byte(MsgError), 0, 9, 'x'},
		{99},
	}
	for i, c := range cases {
		if _, err := Decode(c); err == nil {
			t.Errorf("case %d: malformed message accepted", i)
		}
	}
}

func TestTypeStrings(t *testing.T) {
	for _, tc := range []struct {
		t    MsgType
		want string
	}{
		{MsgICAPConfig, "ICAP_config"},
		{MsgICAPReadback, "ICAP_readback"},
		{MsgMACChecksum, "MAC_checksum"},
		{MsgFrameData, "Frame_data"},
		{MsgMACValue, "MAC_value"},
	} {
		if tc.t.String() != tc.want {
			t.Errorf("%d.String() = %q, want %q", tc.t, tc.t.String(), tc.want)
		}
	}
	if MsgType(200).String() == "" {
		t.Error("unknown type should stringify")
	}
}

// Property: random config messages round-trip.
func TestQuickConfigRoundTrip(t *testing.T) {
	f := func(idx uint32, seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		words := make([]uint32, device.FrameWords)
		for i := range words {
			words[i] = rng.Uint32()
		}
		data, err := Config(int(idx), words).Encode()
		if err != nil {
			return false
		}
		back, err := Decode(data)
		if err != nil || back.FrameIndex != idx {
			return false
		}
		for i := range words {
			if back.Words[i] != words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
