// Package protocol defines the SACHa wire messages.
//
// The attestation runs as a repetition of three commands sent from the
// verifier to the prover (paper §6.1):
//
//	ICAP_config(frame)      — write one configuration frame
//	ICAP_readback(frame_nb) — read one frame back, step the MAC
//	MAC_checksum            — finalise the MAC and return the tag
//
// plus the responses (frame sendback, MAC value). Two extension messages
// support the paper's future-work items: AppStep clocks the dynamic
// application a given number of cycles (for the register-state CAPTURE
// attestation), and SigChecksum requests an ECDSA signature instead of a
// MAC when no key was pre-shared.
package protocol

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"sacha/internal/device"
)

// MsgType identifies a protocol message.
type MsgType uint8

const (
	// MsgICAPConfig carries one configuration frame: index + 81 words.
	MsgICAPConfig MsgType = iota + 1
	// MsgICAPConfigBatch carries up to 255 frames in one packet (the
	// §6.1 BRAM-buffer ↔ message-count trade-off): count, then per frame
	// an index + 81 words. The prover rejects batches beyond its frame
	// buffer.
	MsgICAPConfigBatch
	// MsgICAPReadback requests readback of one frame: index.
	MsgICAPReadback
	// MsgMACChecksum requests MAC finalisation.
	MsgMACChecksum
	// MsgAppStep clocks the dynamic application N cycles (extension).
	MsgAppStep
	// MsgSigChecksum requests an ECDSA signature over the readback
	// transcript instead of a MAC (extension).
	MsgSigChecksum

	// MsgFrameData is the prover's frame sendback: index + 81 words.
	MsgFrameData
	// MsgMACValue is the prover's 16-byte AES-CMAC tag.
	MsgMACValue
	// MsgSigValue is the prover's ECDSA signature (variable length).
	MsgSigValue
	// MsgAck acknowledges a command with no data response.
	MsgAck
	// MsgError reports a prover-side failure.
	MsgError

	// MsgSeqReq is the reliable-transport request envelope: a sequence
	// number plus a CRC-32 over the sequence number and the embedded
	// message. The verifier's retry layer wraps every command in it; the
	// prover answers each distinct sequence number exactly once and
	// replays the cached response for duplicates, making re-sends
	// idempotent (a readback is MACed once however often the request is
	// duplicated on the wire).
	MsgSeqReq
	// MsgSeqResp is the matching response envelope. Commands without a
	// response of their own (ICAP_config) are acknowledged with an
	// embedded Ack.
	MsgSeqResp

	// MsgHello opens a capability negotiation: the verifier offers a
	// bitmask of optional protocol features (compressed payloads, the
	// batched readback scan). A prover that predates the message answers
	// with an Error, which the verifier treats as "no capabilities" — the
	// protocol then degrades to the paper's baseline.
	MsgHello
	// MsgHelloAck is the prover's answer: the subset of the offered
	// capabilities it implements and enables for this session.
	MsgHelloAck
	// MsgICAPConfigBatchC is the compressed configuration batch: a frame
	// count, the explicit frame indices, and one compress.Encode stream
	// holding the concatenated frame words. At typical bitstream
	// compression ratios a 16-frame compressed batch fits the same
	// Ethernet MTU as a 4-frame raw batch. The prover decodes with a hard
	// bound of count×FrameWords words, so hostile counts cannot inflate
	// its buffers (the bounded-memory argument survives compression).
	MsgICAPConfigBatchC
	// MsgFrameDataC is the compressed frame sendback: 24-bit index plus a
	// compress.Encode stream of exactly FrameWords words. The verifier
	// absorbs the *decompressed* words into the MAC, so H_Vrf is
	// bit-identical to an uncompressed session.
	MsgFrameDataC
	// MsgScan requests a MAC-free readback of up to FrameBufferFrames
	// frames in one round trip: a count plus explicit frame indices. It
	// is the probe of the delta-configuration mode — unlike
	// ICAP_readback it never touches the attestation MAC, so a scan
	// before Phase 1 cannot perturb H_Prv.
	MsgScan
	// MsgScanData is the prover's scan answer: the echoed count and
	// indices plus one compressed stream of the concatenated frame words.
	MsgScanData
)

// Capability bits negotiated via MsgHello/MsgHelloAck.
const (
	// CapCompress enables the compressed encodings: the verifier may send
	// MsgICAPConfigBatchC and the prover answers readback with
	// MsgFrameDataC.
	CapCompress uint32 = 1 << 0
	// CapScan enables the MsgScan/MsgScanData probe pair.
	CapScan uint32 = 1 << 1
)

// MaxScanFrames bounds the frame count of one MsgScan/MsgScanData
// exchange. It mirrors the prover's frame-buffer capacity
// (prover.FrameBufferFrames): a scan response must never require more
// device memory than a configuration batch.
const MaxScanFrames = 16

func (t MsgType) String() string {
	switch t {
	case MsgICAPConfig:
		return "ICAP_config"
	case MsgICAPConfigBatch:
		return "ICAP_config_batch"
	case MsgICAPReadback:
		return "ICAP_readback"
	case MsgMACChecksum:
		return "MAC_checksum"
	case MsgAppStep:
		return "App_step"
	case MsgSigChecksum:
		return "Sig_checksum"
	case MsgFrameData:
		return "Frame_data"
	case MsgMACValue:
		return "MAC_value"
	case MsgSigValue:
		return "Sig_value"
	case MsgAck:
		return "Ack"
	case MsgError:
		return "Error"
	case MsgSeqReq:
		return "Seq_req"
	case MsgSeqResp:
		return "Seq_resp"
	case MsgHello:
		return "Hello"
	case MsgHelloAck:
		return "Hello_ack"
	case MsgICAPConfigBatchC:
		return "ICAP_config_batch_c"
	case MsgFrameDataC:
		return "Frame_data_c"
	case MsgScan:
		return "Scan"
	case MsgScanData:
		return "Scan_data"
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Message is a decoded protocol message.
type Message struct {
	Type       MsgType
	FrameIndex uint32        // ICAPConfig, ICAPReadback, FrameData
	Words      []uint32      // ICAPConfig, FrameData: 81 frame words
	Steps      uint32        // AppStep
	Arg        uint32        // MACChecksum/SigChecksum reserved arg; MACValue sequence
	MAC        [16]byte      // MACValue
	Sig        []byte        // SigValue
	Err        string        // Error
	Batch      []FrameRecord // ICAPConfigBatch
	Seq        uint32        // SeqReq, SeqResp: envelope sequence number
	Inner      []byte        // SeqReq, SeqResp: embedded encoded message
	Caps       uint32        // Hello, HelloAck: capability bitmask
	Frames     []uint32      // ConfigBatchC, Scan, ScanData: explicit frame indices
	Comp       []byte        // ConfigBatchC, FrameDataC, ScanData: compressed words
}

// MaxErrLen bounds the Error message string on the wire.
const MaxErrLen = 1024

// FrameRecord is one addressed frame within a batch message.
type FrameRecord struct {
	Index uint32
	Words []uint32
}

// Wire sizes of the fixed-layout messages, in bytes. These are the
// payload sizes behind the paper's Table 3 per-action wire times:
// a 328-byte frame sendback (A8 = 2,928 ns), 5-byte commands
// (A9 = 344 ns) and a 21-byte MAC sendback (A10 = 472 ns).
const (
	SizeICAPConfig   = 1 + 4 + 4*device.FrameWords // 329
	SizeICAPReadback = 1 + 4                       // 5
	SizeMACChecksum  = 1 + 4                       // 5
	SizeFrameData    = 1 + 3 + 4*device.FrameWords // 328 (24-bit index)
	SizeMACValue     = 1 + 16 + 4                  // 21
)

// Encode serialises the message.
func (m *Message) Encode() ([]byte, error) {
	out := []byte{byte(m.Type)}
	switch m.Type {
	case MsgICAPConfig:
		if len(m.Words) != device.FrameWords {
			return nil, fmt.Errorf("protocol: %v with %d words", m.Type, len(m.Words))
		}
		out = binary.BigEndian.AppendUint32(out, m.FrameIndex)
		for _, w := range m.Words {
			out = binary.BigEndian.AppendUint32(out, w)
		}
	case MsgFrameData:
		// The frame sendback packs the index into 24 bits, giving the
		// 328-byte payload behind the paper's A8 timing.
		if len(m.Words) != device.FrameWords {
			return nil, fmt.Errorf("protocol: %v with %d words", m.Type, len(m.Words))
		}
		if m.FrameIndex >= 1<<24 {
			return nil, fmt.Errorf("protocol: frame index %d exceeds 24 bits", m.FrameIndex)
		}
		out = append(out, byte(m.FrameIndex>>16), byte(m.FrameIndex>>8), byte(m.FrameIndex))
		for _, w := range m.Words {
			out = binary.BigEndian.AppendUint32(out, w)
		}
	case MsgICAPConfigBatch:
		if len(m.Batch) == 0 || len(m.Batch) > 255 {
			return nil, fmt.Errorf("protocol: batch of %d frames", len(m.Batch))
		}
		out = append(out, byte(len(m.Batch)))
		for _, fr := range m.Batch {
			if len(fr.Words) != device.FrameWords {
				return nil, fmt.Errorf("protocol: batch frame %d has %d words", fr.Index, len(fr.Words))
			}
			out = binary.BigEndian.AppendUint32(out, fr.Index)
			for _, w := range fr.Words {
				out = binary.BigEndian.AppendUint32(out, w)
			}
		}
	case MsgICAPReadback:
		out = binary.BigEndian.AppendUint32(out, m.FrameIndex)
	case MsgMACChecksum, MsgSigChecksum:
		out = binary.BigEndian.AppendUint32(out, m.Arg)
	case MsgAck:
		// type byte only
	case MsgAppStep:
		out = binary.BigEndian.AppendUint32(out, m.Steps)
	case MsgMACValue:
		out = append(out, m.MAC[:]...)
		out = binary.BigEndian.AppendUint32(out, m.Arg)
	case MsgSigValue:
		out = binary.BigEndian.AppendUint16(out, uint16(len(m.Sig)))
		out = append(out, m.Sig...)
	case MsgError:
		if len(m.Err) > MaxErrLen {
			return nil, fmt.Errorf("protocol: error string too long")
		}
		out = binary.BigEndian.AppendUint16(out, uint16(len(m.Err)))
		out = append(out, m.Err...)
	case MsgSeqReq, MsgSeqResp:
		if len(m.Inner) == 0 {
			return nil, fmt.Errorf("protocol: empty %v envelope", m.Type)
		}
		out = binary.BigEndian.AppendUint32(out, m.Seq)
		out = binary.BigEndian.AppendUint32(out, seqCRC(m.Seq, m.Inner))
		out = append(out, m.Inner...)
	case MsgHello, MsgHelloAck:
		out = binary.BigEndian.AppendUint32(out, m.Caps)
	case MsgICAPConfigBatchC, MsgScanData:
		if len(m.Frames) == 0 || len(m.Frames) > MaxScanFrames {
			return nil, fmt.Errorf("protocol: %v with %d frames", m.Type, len(m.Frames))
		}
		if len(m.Comp) == 0 {
			return nil, fmt.Errorf("protocol: %v without payload", m.Type)
		}
		out = append(out, byte(len(m.Frames)))
		for _, f := range m.Frames {
			out = binary.BigEndian.AppendUint32(out, f)
		}
		out = append(out, m.Comp...)
	case MsgScan:
		if len(m.Frames) == 0 || len(m.Frames) > MaxScanFrames {
			return nil, fmt.Errorf("protocol: %v with %d frames", m.Type, len(m.Frames))
		}
		out = append(out, byte(len(m.Frames)))
		for _, f := range m.Frames {
			out = binary.BigEndian.AppendUint32(out, f)
		}
	case MsgFrameDataC:
		if m.FrameIndex >= 1<<24 {
			return nil, fmt.Errorf("protocol: frame index %d exceeds 24 bits", m.FrameIndex)
		}
		if len(m.Comp) == 0 {
			return nil, fmt.Errorf("protocol: %v without payload", m.Type)
		}
		out = append(out, byte(m.FrameIndex>>16), byte(m.FrameIndex>>8), byte(m.FrameIndex))
		out = append(out, m.Comp...)
	default:
		return nil, fmt.Errorf("protocol: cannot encode %v", m.Type)
	}
	return out, nil
}

// Decode parses a message.
func Decode(data []byte) (*Message, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("protocol: empty message")
	}
	m := &Message{Type: MsgType(data[0])}
	body := data[1:]
	need := func(n int) error {
		if len(body) != n {
			return fmt.Errorf("protocol: %v message has %d body bytes, want %d", m.Type, len(body), n)
		}
		return nil
	}
	switch m.Type {
	case MsgICAPConfig:
		if err := need(4 + 4*device.FrameWords); err != nil {
			return nil, err
		}
		m.FrameIndex = binary.BigEndian.Uint32(body)
		m.Words = make([]uint32, device.FrameWords)
		for i := range m.Words {
			m.Words[i] = binary.BigEndian.Uint32(body[4+4*i:])
		}
	case MsgFrameData:
		if err := need(3 + 4*device.FrameWords); err != nil {
			return nil, err
		}
		m.FrameIndex = uint32(body[0])<<16 | uint32(body[1])<<8 | uint32(body[2])
		m.Words = make([]uint32, device.FrameWords)
		for i := range m.Words {
			m.Words[i] = binary.BigEndian.Uint32(body[3+4*i:])
		}
	case MsgICAPConfigBatch:
		if len(body) < 1 {
			return nil, fmt.Errorf("protocol: empty batch")
		}
		count := int(body[0])
		if count == 0 {
			return nil, fmt.Errorf("protocol: batch of zero frames")
		}
		per := 4 + 4*device.FrameWords
		if len(body) != 1+count*per {
			return nil, fmt.Errorf("protocol: batch of %d frames has %d body bytes", count, len(body))
		}
		body = body[1:]
		m.Batch = make([]FrameRecord, count)
		for i := 0; i < count; i++ {
			rec := FrameRecord{
				Index: binary.BigEndian.Uint32(body),
				Words: make([]uint32, device.FrameWords),
			}
			for w := range rec.Words {
				rec.Words[w] = binary.BigEndian.Uint32(body[4+4*w:])
			}
			m.Batch[i] = rec
			body = body[per:]
		}
	case MsgICAPReadback:
		if err := need(4); err != nil {
			return nil, err
		}
		m.FrameIndex = binary.BigEndian.Uint32(body)
	case MsgMACChecksum, MsgSigChecksum:
		if err := need(4); err != nil {
			return nil, err
		}
		m.Arg = binary.BigEndian.Uint32(body)
	case MsgAck:
		if err := need(0); err != nil {
			return nil, err
		}
	case MsgAppStep:
		if err := need(4); err != nil {
			return nil, err
		}
		m.Steps = binary.BigEndian.Uint32(body)
	case MsgMACValue:
		if err := need(16 + 4); err != nil {
			return nil, err
		}
		copy(m.MAC[:], body)
		m.Arg = binary.BigEndian.Uint32(body[16:])
	case MsgSigValue:
		if len(body) < 2 {
			return nil, fmt.Errorf("protocol: short Sig_value")
		}
		n := int(binary.BigEndian.Uint16(body))
		if len(body) != 2+n {
			return nil, fmt.Errorf("protocol: Sig_value length mismatch")
		}
		m.Sig = append([]byte(nil), body[2:]...)
	case MsgError:
		if len(body) < 2 {
			return nil, fmt.Errorf("protocol: short Error")
		}
		n := int(binary.BigEndian.Uint16(body))
		if len(body) != 2+n {
			return nil, fmt.Errorf("protocol: Error length mismatch")
		}
		if n > MaxErrLen {
			return nil, fmt.Errorf("protocol: error string too long")
		}
		m.Err = string(body[2:])
	case MsgSeqReq, MsgSeqResp:
		if len(body) < 9 {
			return nil, fmt.Errorf("protocol: short %v envelope", m.Type)
		}
		m.Seq = binary.BigEndian.Uint32(body)
		sum := binary.BigEndian.Uint32(body[4:])
		m.Inner = append([]byte(nil), body[8:]...)
		if sum != seqCRC(m.Seq, m.Inner) {
			return nil, fmt.Errorf("protocol: %v envelope CRC mismatch", m.Type)
		}
	case MsgHello, MsgHelloAck:
		if err := need(4); err != nil {
			return nil, err
		}
		m.Caps = binary.BigEndian.Uint32(body)
	case MsgICAPConfigBatchC, MsgScanData:
		if len(body) < 1 {
			return nil, fmt.Errorf("protocol: empty %v", m.Type)
		}
		count := int(body[0])
		if count == 0 || count > MaxScanFrames {
			return nil, fmt.Errorf("protocol: %v with %d frames", m.Type, count)
		}
		if len(body) < 1+4*count+1 {
			return nil, fmt.Errorf("protocol: short %v", m.Type)
		}
		m.Frames = make([]uint32, count)
		for i := range m.Frames {
			m.Frames[i] = binary.BigEndian.Uint32(body[1+4*i:])
		}
		m.Comp = append([]byte(nil), body[1+4*count:]...)
	case MsgScan:
		if len(body) < 1 {
			return nil, fmt.Errorf("protocol: empty %v", m.Type)
		}
		count := int(body[0])
		if count == 0 || count > MaxScanFrames {
			return nil, fmt.Errorf("protocol: %v with %d frames", m.Type, count)
		}
		if len(body) != 1+4*count {
			return nil, fmt.Errorf("protocol: %v with %d frames has %d body bytes", m.Type, count, len(body))
		}
		m.Frames = make([]uint32, count)
		for i := range m.Frames {
			m.Frames[i] = binary.BigEndian.Uint32(body[1+4*i:])
		}
	case MsgFrameDataC:
		if len(body) < 4 {
			return nil, fmt.Errorf("protocol: short %v", m.Type)
		}
		m.FrameIndex = uint32(body[0])<<16 | uint32(body[1])<<8 | uint32(body[2])
		m.Comp = append([]byte(nil), body[3:]...)
	default:
		return nil, fmt.Errorf("protocol: unknown message type %d", data[0])
	}
	return m, nil
}

// Convenience constructors.

// Config builds an ICAP_config message.
func Config(frameIndex int, words []uint32) *Message {
	return &Message{Type: MsgICAPConfig, FrameIndex: uint32(frameIndex), Words: words}
}

// Readback builds an ICAP_readback message.
func Readback(frameIndex int) *Message {
	return &Message{Type: MsgICAPReadback, FrameIndex: uint32(frameIndex)}
}

// Checksum builds a MAC_checksum message.
func Checksum() *Message { return &Message{Type: MsgMACChecksum} }

// Hello builds a capability-offer message.
func Hello(caps uint32) *Message { return &Message{Type: MsgHello, Caps: caps} }

// Scan builds a batched MAC-free readback request.
func Scan(frames []uint32) *Message { return &Message{Type: MsgScan, Frames: frames} }

// Errorf builds an Error message, truncating to the wire limit.
func Errorf(format string, args ...any) *Message {
	s := fmt.Sprintf(format, args...)
	if len(s) > MaxErrLen {
		s = s[:MaxErrLen]
	}
	return &Message{Type: MsgError, Err: s}
}

// seqCRC is the envelope checksum: CRC-32 (IEEE) over the big-endian
// sequence number followed by the embedded message, so corruption of
// either is detected at the transport layer — a flipped frame bit must
// trigger a re-send, never silently poison the readback MAC.
func seqCRC(seq uint32, inner []byte) uint32 {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], seq)
	return crc32.Update(crc32.ChecksumIEEE(hdr[:]), crc32.IEEETable, inner)
}

// WrapReq wraps an encoded command in a request envelope.
func WrapReq(seq uint32, inner []byte) *Message {
	return &Message{Type: MsgSeqReq, Seq: seq, Inner: inner}
}

// WrapResp wraps an encoded response in a response envelope.
func WrapResp(seq uint32, inner []byte) *Message {
	return &Message{Type: MsgSeqResp, Seq: seq, Inner: inner}
}
