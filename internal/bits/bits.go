// Package bits provides a compact bit-vector with ranged accessors.
//
// The FPGA fabric model stores per-column configuration as flat bit
// vectors; LUT truth tables, routing selectors and flip-flop fields are
// read and written as little-endian unsigned integers at arbitrary bit
// offsets. The vector is backed by 32-bit words so that it maps one-to-one
// onto configuration-frame words.
package bits

import (
	"fmt"
	"math/bits"
)

// Vector is a fixed-length bit vector. The zero value is an empty vector;
// use New to create one with a given length.
type Vector struct {
	n     int // length in bits
	words []uint32
}

// New returns a zeroed Vector holding n bits.
func New(n int) *Vector {
	if n < 0 {
		panic("bits: negative length")
	}
	return &Vector{n: n, words: make([]uint32, (n+31)/32)}
}

// FromWords wraps a copy of the given 32-bit words as a Vector of
// len(words)*32 bits.
func FromWords(words []uint32) *Vector {
	v := &Vector{n: len(words) * 32, words: make([]uint32, len(words))}
	copy(v.words, words)
	return v
}

// Len returns the length of the vector in bits.
func (v *Vector) Len() int { return v.n }

// Words returns the backing 32-bit words. The slice is shared, not copied;
// the caller must not change its length.
func (v *Vector) Words() []uint32 { return v.words }

// Clone returns a deep copy of v.
func (v *Vector) Clone() *Vector {
	c := &Vector{n: v.n, words: make([]uint32, len(v.words))}
	copy(c.words, v.words)
	return c
}

func (v *Vector) check(i int) {
	if i < 0 || i >= v.n {
		panic(fmt.Sprintf("bits: index %d out of range [0,%d)", i, v.n))
	}
}

// Bit returns bit i as 0 or 1.
func (v *Vector) Bit(i int) uint32 {
	v.check(i)
	return (v.words[i>>5] >> (uint(i) & 31)) & 1
}

// SetBit sets bit i to b&1.
func (v *Vector) SetBit(i int, b uint32) {
	v.check(i)
	w, s := i>>5, uint(i)&31
	v.words[w] = (v.words[w] &^ (1 << s)) | ((b & 1) << s)
}

// Flip inverts bit i.
func (v *Vector) Flip(i int) {
	v.check(i)
	v.words[i>>5] ^= 1 << (uint(i) & 31)
}

// Uint returns width bits starting at bit offset off, as a little-endian
// unsigned integer (bit off is the least-significant bit of the result).
// width must be in [0,64].
func (v *Vector) Uint(off, width int) uint64 {
	if width < 0 || width > 64 {
		panic("bits: width out of range")
	}
	if width == 0 {
		return 0
	}
	v.check(off)
	v.check(off + width - 1)
	var out uint64
	for i := 0; i < width; {
		w, s := (off+i)>>5, uint(off+i)&31
		take := 32 - int(s)
		if take > width-i {
			take = width - i
		}
		chunk := uint64(v.words[w]>>s) & ((1 << uint(take)) - 1)
		out |= chunk << uint(i)
		i += take
	}
	return out
}

// SetUint writes the low width bits of val at bit offset off.
func (v *Vector) SetUint(off, width int, val uint64) {
	if width < 0 || width > 64 {
		panic("bits: width out of range")
	}
	if width == 0 {
		return
	}
	v.check(off)
	v.check(off + width - 1)
	for i := 0; i < width; {
		w, s := (off+i)>>5, uint(off+i)&31
		take := 32 - int(s)
		if take > width-i {
			take = width - i
		}
		mask := uint32((1<<uint(take))-1) << s
		v.words[w] = (v.words[w] &^ mask) | (uint32(val>>uint(i)) << s & mask)
		i += take
	}
}

// Xor xors other into v in place. Both vectors must have the same length.
func (v *Vector) Xor(other *Vector) {
	if v.n != other.n {
		panic("bits: length mismatch in Xor")
	}
	for i := range v.words {
		v.words[i] ^= other.words[i]
	}
}

// And ands other into v in place. Both vectors must have the same length.
func (v *Vector) And(other *Vector) {
	if v.n != other.n {
		panic("bits: length mismatch in And")
	}
	for i := range v.words {
		v.words[i] &= other.words[i]
	}
}

// OnesCount returns the number of set bits.
func (v *Vector) OnesCount() int {
	c := 0
	for i, w := range v.words {
		if i == len(v.words)-1 && v.n%32 != 0 {
			w &= (1 << uint(v.n%32)) - 1
		}
		c += bits.OnesCount32(w)
	}
	return c
}

// Equal reports whether v and other hold the same bits.
func (v *Vector) Equal(other *Vector) bool {
	if v.n != other.n {
		return false
	}
	last := len(v.words) - 1
	for i := range v.words {
		a, b := v.words[i], other.words[i]
		if i == last && v.n%32 != 0 {
			m := uint32(1)<<uint(v.n%32) - 1
			a &= m
			b &= m
		}
		if a != b {
			return false
		}
	}
	return true
}
