package bits

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewZeroed(t *testing.T) {
	v := New(100)
	if v.Len() != 100 {
		t.Fatalf("Len = %d, want 100", v.Len())
	}
	for i := 0; i < 100; i++ {
		if v.Bit(i) != 0 {
			t.Fatalf("bit %d not zero", i)
		}
	}
}

func TestSetGetBit(t *testing.T) {
	v := New(70)
	idx := []int{0, 1, 31, 32, 33, 63, 64, 69}
	for _, i := range idx {
		v.SetBit(i, 1)
	}
	for i := 0; i < 70; i++ {
		want := uint32(0)
		for _, j := range idx {
			if i == j {
				want = 1
			}
		}
		if v.Bit(i) != want {
			t.Fatalf("bit %d = %d, want %d", i, v.Bit(i), want)
		}
	}
	if v.OnesCount() != len(idx) {
		t.Fatalf("OnesCount = %d, want %d", v.OnesCount(), len(idx))
	}
	v.SetBit(31, 0)
	if v.Bit(31) != 0 {
		t.Fatal("clearing bit 31 failed")
	}
}

func TestFlip(t *testing.T) {
	v := New(40)
	v.Flip(35)
	if v.Bit(35) != 1 {
		t.Fatal("flip 0->1 failed")
	}
	v.Flip(35)
	if v.Bit(35) != 0 {
		t.Fatal("flip 1->0 failed")
	}
}

func TestUintRoundTripAligned(t *testing.T) {
	v := New(128)
	v.SetUint(32, 32, 0xDEADBEEF)
	if got := v.Uint(32, 32); got != 0xDEADBEEF {
		t.Fatalf("Uint = %#x, want 0xDEADBEEF", got)
	}
	if got := v.Uint(0, 32); got != 0 {
		t.Fatalf("neighbouring word disturbed: %#x", got)
	}
	if got := v.Uint(64, 32); got != 0 {
		t.Fatalf("neighbouring word disturbed: %#x", got)
	}
}

func TestUintRoundTripUnaligned(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		v := New(300)
		off := rng.Intn(230)
		width := 1 + rng.Intn(64)
		if off+width > 300 {
			width = 300 - off
		}
		val := rng.Uint64()
		if width < 64 {
			val &= (1 << uint(width)) - 1
		}
		v.SetUint(off, width, val)
		if got := v.Uint(off, width); got != val {
			t.Fatalf("off=%d width=%d: got %#x want %#x", off, width, got, val)
		}
	}
}

func TestSetUintPreservesNeighbours(t *testing.T) {
	v := New(96)
	for i := 0; i < 96; i++ {
		v.SetBit(i, 1)
	}
	v.SetUint(30, 10, 0) // clear bits 30..39
	for i := 0; i < 96; i++ {
		want := uint32(1)
		if i >= 30 && i < 40 {
			want = 0
		}
		if v.Bit(i) != want {
			t.Fatalf("bit %d = %d, want %d", i, v.Bit(i), want)
		}
	}
}

func TestXorAndEqualClone(t *testing.T) {
	a := New(65)
	b := New(65)
	a.SetBit(0, 1)
	a.SetBit(64, 1)
	b.SetBit(64, 1)
	c := a.Clone()
	if !c.Equal(a) {
		t.Fatal("clone not equal")
	}
	a.Xor(b) // a = {0}
	if a.Bit(0) != 1 || a.Bit(64) != 0 {
		t.Fatal("xor wrong")
	}
	if a.Equal(c) {
		t.Fatal("Equal should detect difference")
	}
	a.And(b) // a = {}
	if a.OnesCount() != 0 {
		t.Fatalf("and wrong, OnesCount=%d", a.OnesCount())
	}
}

func TestFromWords(t *testing.T) {
	w := []uint32{0x00000001, 0x80000000}
	v := FromWords(w)
	if v.Len() != 64 {
		t.Fatalf("len=%d", v.Len())
	}
	if v.Bit(0) != 1 || v.Bit(63) != 1 || v.OnesCount() != 2 {
		t.Fatal("FromWords layout wrong")
	}
	w[0] = 0 // must not alias
	if v.Bit(0) != 1 {
		t.Fatal("FromWords aliases input")
	}
}

func TestEqualIgnoresTailGarbage(t *testing.T) {
	// Two vectors of 33 bits that differ only in backing bits past Len
	// must compare equal.
	a := New(33)
	b := New(33)
	b.words[1] |= 0xFFFFFFFE // bits 33..63, beyond Len
	if !a.Equal(b) {
		t.Fatal("Equal must ignore bits beyond Len")
	}
	if b.OnesCount() != 0 {
		t.Fatal("OnesCount must ignore bits beyond Len")
	}
}

func TestPanics(t *testing.T) {
	v := New(8)
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Fatalf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("Bit oob", func() { v.Bit(8) })
	mustPanic("SetBit oob", func() { v.SetBit(-1, 1) })
	mustPanic("Uint oob", func() { v.Uint(4, 8) })
	mustPanic("width oob", func() { v.Uint(0, 65) })
	mustPanic("xor mismatch", func() { v.Xor(New(9)) })
	mustPanic("negative new", func() { New(-1) })
}

// Property: for any pair of offsets/values, SetUint then Uint round-trips
// and OnesCount equals the popcount of all written fields (fields disjoint).
func TestQuickUintRoundTrip(t *testing.T) {
	f := func(off8 uint8, val uint64, width8 uint8) bool {
		width := int(width8%64) + 1
		off := int(off8) % 100
		v := New(200)
		masked := val
		if width < 64 {
			masked &= (1 << uint(width)) - 1
		}
		v.SetUint(off, width, val)
		return v.Uint(off, width) == masked
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: Xor is an involution — a.Xor(b); a.Xor(b) restores a.
func TestQuickXorInvolution(t *testing.T) {
	f := func(seedA, seedB int64) bool {
		ra := rand.New(rand.NewSource(seedA))
		rb := rand.New(rand.NewSource(seedB))
		a := New(257)
		b := New(257)
		for i := 0; i < 257; i++ {
			a.SetBit(i, uint32(ra.Intn(2)))
			b.SetBit(i, uint32(rb.Intn(2)))
		}
		orig := a.Clone()
		a.Xor(b)
		a.Xor(b)
		return a.Equal(orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
