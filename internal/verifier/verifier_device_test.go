package verifier

import (
	"strings"
	"testing"

	"sacha/internal/bitstream"
	"sacha/internal/channel"
	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/netlist"
	"sacha/internal/prover"
	"sacha/internal/trace"
)

// realDevice provisions a prover and the matching golden image without
// going through internal/core (which depends on this package's caller
// side only, but the test keeps the layers independent).
func realDevice(t *testing.T) (*prover.Device, *fabric.Image, []int, [16]byte) {
	t.Helper()
	geo := device.SmallLX()
	key := [16]byte{9, 8, 7}

	statFrames := fabric.StatRegion(geo).Frames()
	golden := fabric.NewImage(geo)
	fabric.FillStatic(golden, statFrames, 4)
	boot := bitstream.FromImage(golden, statFrames)
	if _, err := fabric.PlaceDesign(golden, fabric.AppRegion(geo), netlist.Counter(6)); err != nil {
		t.Fatal(err)
	}
	if _, err := fabric.PlaceDesign(golden, fabric.NonceRegion(geo), netlist.NonceRegister(64, 0xABCD)); err != nil {
		t.Fatal(err)
	}
	dev, err := prover.New(prover.Config{Geo: geo, BootMem: boot, Key: prover.RegisterKey(key)})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.PowerOn(); err != nil {
		t.Fatal(err)
	}
	return dev, golden, fabric.DynRegion(geo).Frames(), key
}

func TestAttestRealDeviceEndToEnd(t *testing.T) {
	dev, golden, dyn, key := realDevice(t)
	v := New(dev.Geo, key)
	vrfEP, prvEP := channel.SimPair(channel.SimConfig{})
	done := make(chan error, 1)
	go func() { done <- dev.Serve(prvEP) }()

	var sb strings.Builder
	log := trace.NewLog(4)
	rep, err := v.Attest(vrfEP, golden, dyn, Options{
		Offset:      99,
		ConfigBatch: 2,
		Trace:       &sb,
		Events:      log,
	})
	vrfEP.Close()
	if err != nil {
		t.Fatal(err)
	}
	if serr := <-done; serr != nil {
		t.Fatal(serr)
	}
	if !rep.Accepted || !rep.MACOK || !rep.ConfigOK {
		t.Fatalf("honest device rejected: %+v", rep)
	}
	if rep.FramesConfigured != len(dyn) || rep.FramesRead != dev.Geo.NumFrames() {
		t.Fatalf("frame counts: %d configured, %d read", rep.FramesConfigured, rep.FramesRead)
	}
	if !strings.Contains(sb.String(), "MAC_checksum") {
		t.Error("trace missing")
	}
	if log.Count(trace.KindReadback) != dev.Geo.NumFrames() {
		t.Errorf("event log readbacks: %d", log.Count(trace.KindReadback))
	}
	// Verifier-side software time accrued for every command.
	if v.Timeline.Tag("vrf-sw") == 0 {
		t.Error("verifier timeline not charged")
	}
}

func TestAttestRealDeviceCapture(t *testing.T) {
	dev, golden, dyn, key := realDevice(t)
	v := New(dev.Geo, key)
	vrfEP, prvEP := channel.SimPair(channel.SimConfig{})
	go dev.Serve(prvEP)
	defer vrfEP.Close()
	rep, err := v.Attest(vrfEP, golden, dyn, Options{AppSteps: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("CAPTURE run rejected: %+v", rep)
	}
}

func TestAttestEmptyDynFramesRejected(t *testing.T) {
	geo := device.SmallLX()
	v := New(geo, [16]byte{})
	a, _ := channel.SimPair(channel.SimConfig{})
	defer a.Close()
	if _, err := v.Attest(a, fabric.NewImage(geo), nil, Options{}); err == nil {
		t.Fatal("empty dynamic frame list accepted")
	}
}
