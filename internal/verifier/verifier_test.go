package verifier

import (
	"strings"
	"testing"

	"sacha/internal/channel"
	"sacha/internal/cmac"
	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/protocol"
)

// serveScript runs a scripted prover: the handler returns the response
// (nil for none) and whether to close the connection afterwards, letting
// tests model arbitrary prover misbehaviour.
func serveScript(t *testing.T, handler func(m *protocol.Message) (*protocol.Message, bool)) channel.Endpoint {
	t.Helper()
	vrfEP, prvEP := channel.SimPair(channel.SimConfig{})
	go func() {
		for {
			raw, err := prvEP.Recv()
			if err != nil {
				return
			}
			m, err := protocol.Decode(raw)
			if err != nil {
				return
			}
			resp, stop := handler(m)
			if resp != nil {
				enc, err := resp.Encode()
				if err != nil {
					return
				}
				if prvEP.Send(enc) != nil {
					return
				}
			}
			if stop {
				prvEP.Close()
				return
			}
		}
	}()
	return vrfEP
}

// attestAgainst runs a full-device TinyLX attestation against the
// scripted prover: every dynamic frame configured, every frame read back
// in the default (bijective) order.
func attestAgainst(t *testing.T, handler func(m *protocol.Message) (*protocol.Message, bool)) (*Report, error) {
	t.Helper()
	geo := device.TinyLX()
	v := New(geo, [16]byte{})
	golden := fabric.NewImage(geo)
	dyn := fabric.DynRegion(geo).Frames()
	ep := serveScript(t, handler)
	defer ep.Close()
	return v.Attest(ep, golden, dyn, Options{})
}

func TestWrongFrameIndexRejected(t *testing.T) {
	_, err := attestAgainst(t, func(m *protocol.Message) (*protocol.Message, bool) {
		switch m.Type {
		case protocol.MsgICAPReadback:
			return &protocol.Message{
				Type:       protocol.MsgFrameData,
				FrameIndex: m.FrameIndex + 1, // wrong frame
				Words:      make([]uint32, device.FrameWords),
			}, false
		case protocol.MsgMACChecksum:
			return &protocol.Message{Type: protocol.MsgMACValue}, false
		}
		return nil, false
	})
	if err == nil {
		t.Fatal("mismatched frame index accepted")
	}
}

func TestErrorResponseSurfaces(t *testing.T) {
	_, err := attestAgainst(t, func(m *protocol.Message) (*protocol.Message, bool) {
		if m.Type == protocol.MsgICAPReadback {
			return protocol.Errorf("device on fire"), false
		}
		return nil, false
	})
	if err == nil {
		t.Fatal("prover Error response not surfaced")
	}
}

func TestChannelDropDetected(t *testing.T) {
	// The prover drops the connection at the first readback; the
	// verifier must fail with an error rather than hang.
	_, err := attestAgainst(t, func(m *protocol.Message) (*protocol.Message, bool) {
		return nil, m.Type == protocol.MsgICAPReadback
	})
	if err == nil {
		t.Fatal("dropped connection not reported")
	}
}

func TestHonestZeroImageAccepted(t *testing.T) {
	// The all-zero golden image against a prover returning all-zero
	// frames and the matching MAC: the one scripted run that must be
	// accepted, pinning the MAC transcript format end to end.
	geo := device.TinyLX()
	rep, err := attestAgainst(t, func(m *protocol.Message) (*protocol.Message, bool) {
		switch m.Type {
		case protocol.MsgICAPReadback:
			return &protocol.Message{Type: protocol.MsgFrameData, FrameIndex: m.FrameIndex, Words: make([]uint32, device.FrameWords)}, false
		case protocol.MsgMACChecksum:
			return &protocol.Message{Type: protocol.MsgMACValue, MAC: macOverZeroFrames(geo.NumFrames())}, false
		}
		return nil, false
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Accepted {
		t.Fatalf("honest zero-image run rejected: MACOK=%v ConfigOK=%v", rep.MACOK, rep.ConfigOK)
	}
	if rep.FramesRead != geo.NumFrames() {
		t.Fatalf("frames read %d, want %d", rep.FramesRead, geo.NumFrames())
	}
}

func macOverZeroFrames(n int) [16]byte {
	m, err := cmac.New(make([]byte, 16))
	if err != nil {
		panic(err)
	}
	buf := make([]byte, device.FrameBytes)
	for i := 0; i < n; i++ {
		m.Update(buf)
	}
	return m.Sum()
}

// rejectedPermutation asserts that Attest refuses the permutation at
// plan construction — before a single message crosses the channel.
func rejectedPermutation(t *testing.T, perm []int, wantSub string) {
	t.Helper()
	geo := device.TinyLX()
	v := New(geo, [16]byte{})
	golden := fabric.NewImage(geo)
	sent := make(chan struct{}, 1)
	ep := serveScript(t, func(m *protocol.Message) (*protocol.Message, bool) {
		select {
		case sent <- struct{}{}:
		default:
		}
		return nil, true
	})
	defer ep.Close()
	_, err := v.Attest(ep, golden, fabric.DynRegion(geo).Frames(), Options{Permutation: perm})
	if err == nil {
		t.Fatal("non-bijective permutation accepted")
	}
	if !strings.Contains(err.Error(), wantSub) {
		t.Fatalf("error %q missing %q", err, wantSub)
	}
	select {
	case <-sent:
		t.Fatal("verifier talked to the prover before rejecting the permutation")
	default:
	}
}

func TestPermutationMustCoverAllFrames(t *testing.T) {
	// A short order silently skips frames from the MAC and the masked
	// comparison — a tampered frame outside the order would attest clean.
	rejectedPermutation(t, []int{0, 1, 2}, "covers 3 of")
}

func TestPermutationMustNotRepeatFrames(t *testing.T) {
	geo := device.TinyLX()
	perm := make([]int, geo.NumFrames())
	for i := range perm {
		perm[i] = i
	}
	perm[7] = 3 // frame 3 twice, frame 7 never
	rejectedPermutation(t, perm, "twice")
}

func TestPermutationMustStayInRange(t *testing.T) {
	geo := device.TinyLX()
	perm := make([]int, geo.NumFrames())
	for i := range perm {
		perm[i] = i
	}
	perm[0] = geo.NumFrames() // out of range
	rejectedPermutation(t, perm, "out of range")
}

func TestSignatureModeWithoutKeyRejected(t *testing.T) {
	geo := device.TinyLX()
	v := New(geo, [16]byte{}) // no SigVerifier
	golden := fabric.NewImage(geo)
	ep := serveScript(t, func(m *protocol.Message) (*protocol.Message, bool) { return nil, false })
	defer ep.Close()
	_, err := v.Attest(ep, golden, fabric.DynRegion(geo).Frames(),
		Options{SignatureMode: true})
	if err == nil {
		t.Fatal("signature mode without enrolled key accepted")
	}
}

func TestMACMismatchReported(t *testing.T) {
	// A prover returning a garbage MAC over otherwise perfect zero
	// frames must fail the MAC check but pass nothing else silently.
	rep, err := attestAgainst(t, func(m *protocol.Message) (*protocol.Message, bool) {
		switch m.Type {
		case protocol.MsgICAPReadback:
			return &protocol.Message{Type: protocol.MsgFrameData, FrameIndex: m.FrameIndex, Words: make([]uint32, device.FrameWords)}, false
		case protocol.MsgMACChecksum:
			return &protocol.Message{Type: protocol.MsgMACValue, MAC: [16]byte{0xBA, 0xD0}}, false
		}
		return nil, false
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MACOK {
		t.Fatal("garbage MAC accepted")
	}
	if rep.Accepted {
		t.Fatal("run accepted despite MAC failure")
	}
}
