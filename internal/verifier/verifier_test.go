package verifier

import (
	"io"
	"testing"

	"sacha/internal/channel"
	"sacha/internal/cmac"
	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/protocol"
)

func TestReadbackOrderOffset(t *testing.T) {
	v := New(device.SmallLX(), [16]byte{})
	n := v.Geo.NumFrames()
	order := v.ReadbackOrder(Options{Offset: 5})
	if len(order) != n {
		t.Fatalf("order length %d", len(order))
	}
	if order[0] != 5 || order[n-1] != 4 {
		t.Fatalf("order endpoints %d..%d", order[0], order[n-1])
	}
	seen := make([]bool, n)
	for _, idx := range order {
		if seen[idx] {
			t.Fatalf("frame %d visited twice", idx)
		}
		seen[idx] = true
	}
	// Negative offsets wrap too.
	order = v.ReadbackOrder(Options{Offset: -1})
	if order[0] != n-1 {
		t.Fatalf("negative offset start %d", order[0])
	}
	// Offsets beyond n wrap.
	order = v.ReadbackOrder(Options{Offset: n + 3})
	if order[0] != 3 {
		t.Fatalf("wrapped offset start %d", order[0])
	}
}

func TestReadbackOrderPermutationPassthrough(t *testing.T) {
	v := New(device.SmallLX(), [16]byte{})
	perm := []int{3, 1, 2, 2, 0} // repeats allowed (paper §6.1)
	got := v.ReadbackOrder(Options{Permutation: perm, Offset: 99})
	if len(got) != len(perm) {
		t.Fatal("permutation not passed through")
	}
	for i := range perm {
		if got[i] != perm[i] {
			t.Fatal("permutation altered")
		}
	}
}

// serveScript runs a scripted prover: the handler returns the response
// (nil for none) and whether to close the connection afterwards, letting
// tests model arbitrary prover misbehaviour.
func serveScript(t *testing.T, handler func(m *protocol.Message) (*protocol.Message, bool)) channel.Endpoint {
	t.Helper()
	vrfEP, prvEP := channel.SimPair(channel.SimConfig{})
	go func() {
		for {
			raw, err := prvEP.Recv()
			if err != nil {
				return
			}
			m, err := protocol.Decode(raw)
			if err != nil {
				return
			}
			resp, stop := handler(m)
			if resp != nil {
				enc, err := resp.Encode()
				if err != nil {
					return
				}
				if prvEP.Send(enc) != nil {
					return
				}
			}
			if stop {
				prvEP.Close()
				return
			}
		}
	}()
	return vrfEP
}

func attestAgainst(t *testing.T, handler func(m *protocol.Message) (*protocol.Message, bool)) (*Report, error) {
	t.Helper()
	geo := device.SmallLX()
	v := New(geo, [16]byte{})
	golden := fabric.NewImage(geo)
	dyn := fabric.DynRegion(geo).Frames()
	ep := serveScript(t, handler)
	defer ep.Close()
	// Limit the readback to a handful of frames via a short permutation
	// so misbehaviour tests stay fast.
	return v.Attest(ep, golden, dyn[:3], Options{Permutation: []int{0, 1, 2}})
}

func TestWrongFrameIndexRejected(t *testing.T) {
	_, err := attestAgainst(t, func(m *protocol.Message) (*protocol.Message, bool) {
		switch m.Type {
		case protocol.MsgICAPReadback:
			return &protocol.Message{
				Type:       protocol.MsgFrameData,
				FrameIndex: m.FrameIndex + 1, // wrong frame
				Words:      make([]uint32, device.FrameWords),
			}, false
		case protocol.MsgMACChecksum:
			return &protocol.Message{Type: protocol.MsgMACValue}, false
		}
		return nil, false
	})
	if err == nil {
		t.Fatal("mismatched frame index accepted")
	}
}

func TestErrorResponseSurfaces(t *testing.T) {
	_, err := attestAgainst(t, func(m *protocol.Message) (*protocol.Message, bool) {
		if m.Type == protocol.MsgICAPReadback {
			return protocol.Errorf("device on fire"), false
		}
		return nil, false
	})
	if err == nil {
		t.Fatal("prover Error response not surfaced")
	}
}

func TestChannelDropDetected(t *testing.T) {
	// The prover drops the connection at the first readback; the
	// verifier must fail with an error rather than hang.
	_, err := attestAgainst(t, func(m *protocol.Message) (*protocol.Message, bool) {
		return nil, m.Type == protocol.MsgICAPReadback
	})
	if err == nil {
		t.Fatal("dropped connection not reported")
	}
}

func TestIncompleteReadbackRejected(t *testing.T) {
	// A prover that answers correctly, but a verifier order covering only
	// 3 of the device's frames: the remaining frames must be reported as
	// mismatches (never received).
	geo := device.SmallLX()
	v := New(geo, [16]byte{})
	golden := fabric.NewImage(geo)
	dyn := fabric.DynRegion(geo).Frames()

	ep := serveScript(t, func(m *protocol.Message) (*protocol.Message, bool) {
		switch m.Type {
		case protocol.MsgICAPReadback:
			return &protocol.Message{
				Type:       protocol.MsgFrameData,
				FrameIndex: m.FrameIndex,
				Words:      make([]uint32, device.FrameWords),
			}, false
		case protocol.MsgMACChecksum:
			// Tag over three zero frames with the zero key — compute what
			// the verifier will compute so the MAC check passes and the
			// coverage check is what must fire.
			return &protocol.Message{Type: protocol.MsgMACValue, MAC: macOverZeroFrames(3)}, false
		}
		return nil, false
	})
	defer ep.Close()
	rep, err := v.Attest(ep, golden, dyn[:3], Options{Permutation: []int{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ConfigOK {
		t.Fatal("incomplete readback accepted")
	}
	if len(rep.Mismatches) != geo.NumFrames()-3 {
		t.Fatalf("mismatches %d, want %d", len(rep.Mismatches), geo.NumFrames()-3)
	}
}

func macOverZeroFrames(n int) [16]byte {
	m, err := cmac.New(make([]byte, 16))
	if err != nil {
		panic(err)
	}
	buf := make([]byte, device.FrameBytes)
	for i := 0; i < n; i++ {
		m.Update(buf)
	}
	return m.Sum()
}

func TestSignatureModeWithoutKeyRejected(t *testing.T) {
	geo := device.SmallLX()
	v := New(geo, [16]byte{}) // no SigVerifier
	golden := fabric.NewImage(geo)
	ep := serveScript(t, func(m *protocol.Message) (*protocol.Message, bool) { return nil, false })
	defer ep.Close()
	_, err := v.Attest(ep, golden, fabric.DynRegion(geo).Frames()[:1],
		Options{Permutation: []int{0}, SignatureMode: true})
	if err == nil {
		t.Fatal("signature mode without enrolled key accepted")
	}
}

func TestMACMismatchReported(t *testing.T) {
	// A prover returning a garbage MAC over otherwise perfect zero
	// frames must fail the MAC check but pass nothing else silently.
	rep, err := attestAgainst(t, func(m *protocol.Message) (*protocol.Message, bool) {
		switch m.Type {
		case protocol.MsgICAPReadback:
			return &protocol.Message{Type: protocol.MsgFrameData, FrameIndex: m.FrameIndex, Words: make([]uint32, device.FrameWords)}, false
		case protocol.MsgMACChecksum:
			return &protocol.Message{Type: protocol.MsgMACValue, MAC: [16]byte{0xBA, 0xD0}}, false
		}
		return nil, false
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.MACOK {
		t.Fatal("garbage MAC accepted")
	}
	if rep.Accepted {
		t.Fatal("run accepted despite MAC failure")
	}
	_ = io.Discard
}
