// Package verifier implements the SACHa verifier: the protocol driver of
// Fig. 9 and the two-stage verdict — the MAC proves authenticity and
// integrity of the transported frames, the masked bitstream comparison
// (B_Prv == B_Vrf) proves the device holds exactly the golden
// configuration.
//
// Since the Plan/Run split the package is a thin facade over
// internal/attestation: Plan precomputes every fleet-invariant artifact
// (pre-encoded configuration and readback messages, the validated
// readback bijection, masked golden or CAPTURE-predicted comparison
// frames), and Attest drives one per-session Run over it. Callers that
// attest many devices of one class should build the Plan once (Plan or
// attestation.NewPlan) and share it across concurrent Runs instead of
// calling Attest per device.
package verifier

import (
	"io"

	"sacha/internal/attestation"
	"sacha/internal/channel"
	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/obs/span"
	"sacha/internal/signature"
	"sacha/internal/sim"
	"sacha/internal/trace"
)

// MaxConfigBatch caps batched configuration; see attestation.MaxConfigBatch.
const MaxConfigBatch = attestation.MaxConfigBatch

// Report, RetryPolicy and TransportError are defined by the attestation
// engine; the aliases keep this package the single import point for
// protocol-driving callers.
type (
	Report         = attestation.Report
	RetryPolicy    = attestation.RetryPolicy
	TransportError = attestation.TransportError
)

// DefaultRetryPolicy is a reasonable starting point for a real network.
func DefaultRetryPolicy() RetryPolicy { return attestation.DefaultRetryPolicy() }

// IsTransport reports whether err is (or wraps) a TransportError.
func IsTransport(err error) bool { return attestation.IsTransport(err) }

// Options tune one attestation run. Offset, Permutation, AppSteps,
// SignatureMode and ConfigBatch shape the Plan (fleet-invariant); Trace,
// Events and Retry belong to the individual Run.
type Options struct {
	// Offset is the starting frame address i of the ascending modular
	// readback order (paper Fig. 9). Ignored if Permutation is set.
	Offset int
	// Permutation, if non-nil, is the explicit readback order. It must
	// be a bijection over all frames — every frame exactly once; plan
	// construction rejects anything else.
	Permutation []int
	// AppSteps, if non-zero, clocks the configured application that many
	// cycles after configuration and verifies the flip-flop state as
	// well as the configuration (the paper's §8 CAPTURE extension). The
	// masked comparison is then replaced by a raw comparison against a
	// verifier-side prediction.
	AppSteps uint32
	// SignatureMode uses the ECDSA extension instead of the MAC.
	SignatureMode bool
	// ConfigBatch sends that many frames per ICAP_config_batch packet
	// (0 or 1 = one frame per packet, the paper's proof of concept). The
	// prover bounds accepted batches by its frame buffer.
	ConfigBatch int
	// Trace, if non-nil, receives a Fig. 9-style protocol trace.
	Trace io.Writer
	// Events, if non-nil, records every protocol step with its modelled
	// duration (the machine-readable Fig. 9).
	Events *trace.Log
	// Span, if non-nil, is the causal span of this session: Run records
	// phase children and protocol milestones on it (and bridges Events
	// into it when both are set). Nil disables tracing at zero cost.
	Span *span.Span
	// Retry, when enabled, runs the protocol over the reliable transport:
	// per-message timeouts, bounded re-sends with backoff, idempotent
	// envelopes. The zero value speaks the paper's bare protocol.
	Retry RetryPolicy
	// Compress pre-encodes compressed configuration batches in the plan
	// and opts sessions into the compressed wire encodings (negotiated
	// via Hello; provers without the capability silently get the plain
	// packets). Verdict and H_Vrf are identical either way.
	Compress bool
	// Delta precomputes the delta configuration mode in the plan and opts
	// sessions into it: scan first, rewrite only the nonce-register
	// frames when the device verifiably holds the previous golden
	// configuration, full overwrite otherwise. Requires the golden image
	// to hold the placed nonce register and AppSteps == 0.
	Delta bool
	// DeltaWarm asserts the delta admissibility precondition: the
	// immediately preceding full-trust attestation of THIS device
	// succeeded under the same key generation and golden class. Without
	// it a delta session falls back to the full overwrite ("cold").
	DeltaWarm bool
	// DeltaMaxRewrite caps the frames a delta session may rewrite before
	// falling back ("threshold"); 0 means a quarter of the dynamic
	// partition, floored at the nonce-frame count.
	DeltaMaxRewrite int
}

// Verifier drives attestations against one enrolled device.
type Verifier struct {
	Geo *device.Geometry
	// Key is the enrolled MAC key (from the PUF enrollment database).
	// It is a per-Run input, so rotating it does not invalidate Plans.
	Key [16]byte
	// SigVerifier checks signature-mode responses (extension).
	SigVerifier *signature.Verifier
	// Timeline accumulates verifier-side software time.
	Timeline *sim.Timeline
}

// New returns a verifier for the geometry and enrolled key.
func New(geo *device.Geometry, key [16]byte) *Verifier {
	return &Verifier{
		Geo:      geo,
		Key:      key,
		Timeline: sim.NewTimeline(),
	}
}

// PlanSpec assembles the attestation.Spec for the golden image and the
// plan-shaping halves of opts — the input of attestation.NewPlan and the
// cache key of attestation.PlanCache.
func (v *Verifier) PlanSpec(golden *fabric.Image, dynFrames []int, opts Options) attestation.Spec {
	return attestation.Spec{
		Geo:           v.Geo,
		Golden:        golden,
		DynFrames:     dynFrames,
		Offset:        opts.Offset,
		Permutation:   opts.Permutation,
		AppSteps:      opts.AppSteps,
		SignatureMode: opts.SignatureMode,
		ConfigBatch:   opts.ConfigBatch,
		Compress:      opts.Compress,
		Delta:         opts.Delta,
	}
}

// Plan precomputes the fleet-shared half of an attestation for the
// golden image: build it once per (golden image, geometry, options) and
// reuse it via RunPlan across any number of devices of the class.
func (v *Verifier) Plan(golden *fabric.Image, dynFrames []int, opts Options) (*attestation.Plan, error) {
	return attestation.NewPlan(v.PlanSpec(golden, dynFrames, opts))
}

// RunPlan drives one per-session Run of a precomputed plan against the
// prover at the other end of ep, using this verifier's enrolled key.
// Only the per-run fields of opts (Trace, Events, Span, Retry, Compress,
// Delta, DeltaWarm, DeltaMaxRewrite) are consulted; the plan-shaping
// fields were fixed when the plan was built. Compress/Delta sessions
// require a plan whose spec set the matching flag.
func (v *Verifier) RunPlan(ep channel.Endpoint, plan *attestation.Plan, opts Options) (*Report, error) {
	return plan.Run(ep, attestation.RunOpts{
		Key:             v.Key,
		SigVerifier:     v.SigVerifier,
		Retry:           opts.Retry,
		Trace:           opts.Trace,
		Events:          opts.Events,
		Span:            opts.Span,
		Timeline:        v.Timeline,
		Compress:        opts.Compress,
		Delta:           opts.Delta,
		DeltaWarm:       opts.DeltaWarm,
		DeltaMaxRewrite: opts.DeltaMaxRewrite,
	})
}

// Attest runs the full SACHa protocol of Fig. 9 against the prover at the
// other end of ep. golden is the full-device golden image (static
// partition content plus the intended dynamic configuration); dynFrames
// lists the dynamic frames to configure, in transmission order.
//
// Attest builds a fresh Plan per call — correct everywhere, but fleet
// callers should amortise with Plan + RunPlan.
func (v *Verifier) Attest(ep channel.Endpoint, golden *fabric.Image, dynFrames []int, opts Options) (*Report, error) {
	plan, err := v.Plan(golden, dynFrames, opts)
	if err != nil {
		return nil, err
	}
	return v.RunPlan(ep, plan, opts)
}
