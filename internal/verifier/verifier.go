// Package verifier implements the SACHa verifier: the protocol driver of
// Fig. 9 and the two-stage verdict — the MAC proves authenticity and
// integrity of the transported frames, the masked bitstream comparison
// (B_Prv == B_Vrf) proves the device holds exactly the golden
// configuration.
package verifier

import (
	"fmt"
	"io"

	"sacha/internal/channel"
	"sacha/internal/cmac"
	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/protocol"
	"sacha/internal/signature"
	"sacha/internal/sim"
	"sacha/internal/timing"
	"sacha/internal/trace"
)

// MaxConfigBatch caps batched configuration at four frames per packet:
// 4 × 328 bytes plus headers is the most that fits a standard Ethernet
// MTU (larger batches would need jumbo frames).
const MaxConfigBatch = 4

// Options tune one attestation run.
type Options struct {
	// Offset is the starting frame address i of the ascending modular
	// readback order (paper Fig. 9). Ignored if Permutation is set.
	Offset int
	// Permutation, if non-nil, is the explicit readback order. It may be
	// any permutation and may visit frames multiple times (paper §6.1).
	Permutation []int
	// AppSteps, if non-zero, clocks the configured application that many
	// cycles after configuration and verifies the flip-flop state as
	// well as the configuration (the paper's §8 CAPTURE extension). The
	// masked comparison is then replaced by a raw comparison against a
	// verifier-side prediction.
	AppSteps uint32
	// SignatureMode uses the ECDSA extension instead of the MAC.
	SignatureMode bool
	// ConfigBatch sends that many frames per ICAP_config_batch packet
	// (0 or 1 = one frame per packet, the paper's proof of concept). The
	// prover bounds accepted batches by its frame buffer.
	ConfigBatch int
	// Trace, if non-nil, receives a Fig. 9-style protocol trace.
	Trace io.Writer
	// Events, if non-nil, records every protocol step with its modelled
	// duration (the machine-readable Fig. 9).
	Events *trace.Log
	// Retry, when enabled, runs the protocol over the reliable transport:
	// per-message timeouts, bounded re-sends with backoff, idempotent
	// envelopes. The zero value speaks the paper's bare protocol.
	Retry RetryPolicy
}

// Report is the outcome of one attestation.
type Report struct {
	// MACOK: H_Prv equals H_Vrf (frames authentic and untampered in
	// transit). In signature mode this is the signature check.
	MACOK bool
	// ConfigOK: masked received bitstream equals masked golden bitstream.
	ConfigOK bool
	// Accepted is the overall verdict.
	Accepted bool
	// Mismatches lists frame indices whose masked content differed.
	Mismatches []int
	// FramesConfigured and FramesRead count protocol actions.
	FramesConfigured, FramesRead int
	// Retries counts message re-sends by the reliable transport; zero on
	// a clean link. TransportFaults counts received messages that were
	// discarded (corrupted envelopes, stale duplicates). Together they
	// make link flakiness observable and distinguishable from a MAC
	// rejection.
	Retries, TransportFaults int
}

// Verifier drives attestations against one enrolled device.
type Verifier struct {
	Geo *device.Geometry
	// Key is the enrolled MAC key (from the PUF enrollment database).
	Key [16]byte
	// Msk is the register-capture mask applied before comparison.
	Msk *fabric.Image
	// SigVerifier checks signature-mode responses (extension).
	SigVerifier *signature.Verifier
	// Timeline accumulates verifier-side software time.
	Timeline *sim.Timeline

	model *timing.Model
}

// New returns a verifier for the geometry and enrolled key.
func New(geo *device.Geometry, key [16]byte) *Verifier {
	return &Verifier{
		Geo:      geo,
		Key:      key,
		Msk:      fabric.GenerateMask(geo),
		Timeline: sim.NewTimeline(),
		model:    timing.NewModel(geo),
	}
}

// frameBytes mirrors the prover's frame serialisation.
func frameBytes(words []uint32) []byte {
	out := make([]byte, 0, len(words)*4)
	for _, w := range words {
		out = append(out, byte(w>>24), byte(w>>16), byte(w>>8), byte(w))
	}
	return out
}

// ReadbackOrder expands the options into the concrete frame order: every
// frame exactly once, ascending from the offset modulo the frame count,
// unless an explicit permutation is given.
func (v *Verifier) ReadbackOrder(opts Options) []int {
	if opts.Permutation != nil {
		return opts.Permutation
	}
	n := v.Geo.NumFrames()
	order := make([]int, n)
	start := ((opts.Offset % n) + n) % n
	for k := range order {
		order[k] = (start + k) % n
	}
	return order
}

// Attest runs the full SACHa protocol of Fig. 9 against the prover at the
// other end of ep. golden is the full-device golden image (static
// partition content plus the intended dynamic configuration); dynFrames
// lists the dynamic frames to configure, in transmission order.
func (v *Verifier) Attest(ep channel.Endpoint, golden *fabric.Image, dynFrames []int, opts Options) (*Report, error) {
	trc := func(format string, args ...any) {
		if opts.Trace != nil {
			fmt.Fprintf(opts.Trace, format+"\n", args...)
		}
	}
	rep := &Report{}
	if opts.SignatureMode && v.SigVerifier == nil {
		return nil, fmt.Errorf("verifier: signature mode without an enrolled public key")
	}
	if len(dynFrames) == 0 {
		return nil, fmt.Errorf("verifier: no dynamic frames to configure")
	}
	sess := newSession(ep, opts.Retry, rep)

	// Phase 1: dynamic configuration — the verifier overwrites the
	// entire DynMem (bounded-memory model), one frame per packet or in
	// batches (§6.1 trade-off).
	batch := opts.ConfigBatch
	if batch < 1 {
		batch = 1
	}
	if batch > MaxConfigBatch {
		batch = MaxConfigBatch
	}
	for start := 0; start < len(dynFrames); start += batch {
		end := start + batch
		if end > len(dynFrames) {
			end = len(dynFrames)
		}
		var m *protocol.Message
		if end-start == 1 {
			m = protocol.Config(dynFrames[start], golden.Frame(dynFrames[start]))
		} else {
			m = &protocol.Message{Type: protocol.MsgICAPConfigBatch}
			for _, idx := range dynFrames[start:end] {
				m.Batch = append(m.Batch, protocol.FrameRecord{Index: uint32(idx), Words: golden.Frame(idx)})
			}
		}
		if err := sess.sendConfig(m, fmt.Sprintf("ICAP_config(%d)", dynFrames[start])); err != nil {
			return nil, err
		}
		v.Timeline.Add("vrf-sw", timing.VrfConfigOverhead())
		if opts.Events != nil {
			opts.Events.Add(trace.KindConfig, dynFrames[start],
				v.model.ActionTime(timing.A1)+v.model.ActionTime(timing.A2), "")
		}
		rep.FramesConfigured += end - start
	}
	trc("command: ICAP_config(frame_%d..frame_%d)  [%d frames, DynMem overwritten]",
		dynFrames[0], dynFrames[len(dynFrames)-1], len(dynFrames))

	// Optional CAPTURE extension: clock the application deterministically
	// before reading back, and predict the state locally.
	var prediction *fabric.Fabric
	if opts.AppSteps > 0 {
		var err error
		prediction, err = v.predict(golden, opts.AppSteps)
		if err != nil {
			return nil, err
		}
		resp, err := sess.exchange(&protocol.Message{Type: protocol.MsgAppStep, Steps: opts.AppSteps}, "App_step", true)
		if err != nil {
			return nil, err
		}
		if resp.Type != protocol.MsgAck {
			return nil, fmt.Errorf("verifier: AppStep answered with %v (%s)", resp.Type, resp.Err)
		}
		trc("command: App_step(%d)", opts.AppSteps)
	}

	// Phase 2: full configuration readback in the chosen order.
	order := v.ReadbackOrder(opts)
	mac, err := cmac.New(v.Key[:])
	if err != nil {
		return nil, err
	}
	transcript := signature.NewTranscript()
	received := make(map[int][]uint32, v.Geo.NumFrames())
	first, last := order[0], order[len(order)-1]
	for _, idx := range order {
		v.Timeline.Add("vrf-sw", timing.VrfReadbackOverhead())
		resp, err := sess.exchange(protocol.Readback(idx), fmt.Sprintf("ICAP_readback(%d)", idx), true)
		if err != nil {
			return nil, err
		}
		if resp.Type != protocol.MsgFrameData {
			return nil, fmt.Errorf("verifier: readback of frame %d answered with %v (%s)", idx, resp.Type, resp.Err)
		}
		if resp.FrameIndex != uint32(idx) {
			return nil, fmt.Errorf("verifier: asked for frame %d, got %d", idx, resp.FrameIndex)
		}
		raw := frameBytes(resp.Words)
		mac.Update(raw)
		transcript.Absorb(raw)
		received[idx] = resp.Words
		rep.FramesRead++
		if opts.Events != nil {
			opts.Events.Add(trace.KindReadback, idx,
				v.model.ActionTime(timing.A3)+v.model.ActionTime(timing.A4)+v.model.ActionTime(timing.A6), "")
			opts.Events.Add(trace.KindFrameData, idx, v.model.ActionTime(timing.A8), "frame sendback")
		}
	}
	trc("command: ICAP_readback(%d)..ICAP_readback(%d)  [%d frames, order offset %d mod %d]",
		first, last, len(order), first, v.Geo.NumFrames())

	// Phase 3: checksum.
	if opts.SignatureMode {
		resp, err := sess.exchange(&protocol.Message{Type: protocol.MsgSigChecksum}, "Sig_checksum", true)
		if err != nil {
			return nil, err
		}
		if resp.Type != protocol.MsgSigValue {
			return nil, fmt.Errorf("verifier: Sig_checksum answered with %v (%s)", resp.Type, resp.Err)
		}
		rep.MACOK = v.SigVerifier.Verify(transcript.Digest(), resp.Sig)
		trc("command: Sig_checksum  ->  signature %d bytes, valid=%v", len(resp.Sig), rep.MACOK)
	} else {
		resp, err := sess.exchange(protocol.Checksum(), "MAC_checksum", true)
		if err != nil {
			return nil, err
		}
		if resp.Type != protocol.MsgMACValue {
			return nil, fmt.Errorf("verifier: MAC_checksum answered with %v (%s)", resp.Type, resp.Err)
		}
		hVrf := mac.Sum()
		rep.MACOK = cmac.Equal(resp.MAC, hVrf)
		trc("command: MAC_checksum  ->  H_Prv == H_Vrf: %v", rep.MACOK)
		if opts.Events != nil {
			opts.Events.Add(trace.KindChecksum, -1,
				v.model.ActionTime(timing.A9)+v.model.ActionTime(timing.A7), "finalize")
			opts.Events.Add(trace.KindMACValue, -1, v.model.ActionTime(timing.A10),
				fmt.Sprintf("H_Prv == H_Vrf: %v", rep.MACOK))
		}
	}

	// Phase 4: bitstream comparison — masked against the golden image,
	// or raw against the stepped prediction in CAPTURE mode.
	expected := golden
	useMask := true
	if prediction != nil {
		useMask = false
	}
	rep.ConfigOK = true
	for idx := 0; idx < v.Geo.NumFrames(); idx++ {
		words, ok := received[idx]
		if !ok {
			rep.ConfigOK = false
			rep.Mismatches = append(rep.Mismatches, idx)
			continue
		}
		var want []uint32
		if prediction != nil {
			w, err := prediction.ReadbackFrame(idx)
			if err != nil {
				return nil, err
			}
			want = w
		} else {
			want = expected.Frame(idx)
		}
		var bPrv, bVrf []uint32
		if useMask {
			bPrv = fabric.ApplyMask(words, v.Msk.Frame(idx))
			bVrf = fabric.ApplyMask(want, v.Msk.Frame(idx))
		} else {
			bPrv, bVrf = words, want
		}
		for w := range bPrv {
			if bPrv[w] != bVrf[w] {
				rep.ConfigOK = false
				rep.Mismatches = append(rep.Mismatches, idx)
				break
			}
		}
	}
	trc("verdict: B_Prv == B_Vrf: %v  (%d mismatching frames)", rep.ConfigOK, len(rep.Mismatches))

	rep.Accepted = rep.MACOK && rep.ConfigOK
	return rep, nil
}

// predict builds the verifier-side state prediction for the CAPTURE
// extension: configure a local fabric with the golden image exactly as
// the device is configured, then clock the dynamic partition.
func (v *Verifier) predict(golden *fabric.Image, steps uint32) (*fabric.Fabric, error) {
	fab := fabric.New(v.Geo)
	for idx := 0; idx < v.Geo.NumFrames(); idx++ {
		if err := fab.WriteFrame(idx, golden.Frame(idx)); err != nil {
			return nil, err
		}
	}
	live, err := fab.Live(fabric.DynRegion(v.Geo))
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < steps; i++ {
		if err := live.Step(); err != nil {
			return nil, err
		}
	}
	return fab, nil
}
