package verifier

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"sacha/internal/bitstream"
	"sacha/internal/channel"
	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/prover"
)

// testPolicy is a fast retry policy for the simulated link.
func testPolicy() RetryPolicy {
	return RetryPolicy{Timeout: 25 * time.Millisecond, MaxRetries: 5,
		Backoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond, Seed: 1}
}

// faultyProverSession boots a real TinyLX prover, serves it on a SimPair
// and returns the verifier-side endpoint wrapped in the fault injector,
// plus everything needed to attest it. TinyLX keeps the full-device
// bijective readback (112 frames) fast enough to run under retries.
func faultyProverSession(t *testing.T, cfg channel.FaultConfig) (*Verifier, channel.Endpoint, *fabric.Image, []int) {
	t.Helper()
	geo := device.TinyLX()
	statFrames := fabric.StatRegion(geo).Frames()
	boot := fabric.NewImage(geo)
	fabric.FillStatic(boot, statFrames, 1)
	key := prover.RegisterKey{9, 9, 9}
	dev, err := prover.New(prover.Config{
		Geo:     geo,
		BootMem: bitstream.FromImage(boot, statFrames),
		Key:     key,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := dev.PowerOn(); err != nil {
		t.Fatal(err)
	}

	vrfEP, prvEP := channel.SimPair(channel.SimConfig{})
	go dev.Serve(prvEP)
	faulty := channel.NewFault(vrfEP, cfg)
	t.Cleanup(func() { faulty.Close() })

	// The golden image: booted static partition, zeroed dynamic partition
	// (which is exactly what the test configures).
	golden := fabric.NewImage(geo)
	fabric.FillStatic(golden, statFrames, 1)
	var k [16]byte = key
	return New(geo, k), faulty, golden, fabric.DynRegion(geo).Frames()
}

// faultIndexes computes the message-index layout of one full TinyLX
// attestation under the stop-and-wait transport: sends 0..nCfg-1 are the
// ICAP_config commands, nCfg..nCfg+nFrames-1 the readbacks, and
// nCfg+nFrames the checksum. Receives line up 1:1.
func faultIndexes() (cfgMid, rb0, rb1, rb2, checksum int) {
	geo := device.TinyLX()
	nCfg := len(fabric.DynRegion(geo).Frames())
	return nCfg / 2, nCfg, nCfg + 1, nCfg + 2, nCfg + geo.NumFrames()
}

// attestFull runs a full-device attestation — every dynamic frame
// configured, every frame read back in the validated bijective order.
func attestFull(t *testing.T, cfg channel.FaultConfig, pol RetryPolicy) (*Report, error) {
	t.Helper()
	v, ep, golden, dyn := faultyProverSession(t, cfg)
	return v.Attest(ep, golden, dyn, Options{Retry: pol})
}

// requireMACOK asserts the protocol completed with a clean MAC and at
// least one retry — transport recovery, not luck.
func requireMACOK(t *testing.T, rep *Report, err error) {
	t.Helper()
	if err != nil {
		t.Fatalf("attest: %v", err)
	}
	if !rep.MACOK {
		t.Fatal("MAC rejected on an honest device — a transport fault leaked into the verdict")
	}
	if rep.Retries == 0 {
		t.Fatal("no retries counted despite injected faults")
	}
}

func TestRetryRecoversFromDroppedCommand(t *testing.T) {
	_, rb0, _, rb2, _ := faultIndexes()
	rep, err := attestFull(t, channel.FaultConfig{Script: []channel.FaultOp{
		{Dir: channel.DirSend, Index: 1, Kind: channel.FaultDrop},
		{Dir: channel.DirSend, Index: rb0, Kind: channel.FaultDrop},
		{Dir: channel.DirSend, Index: rb2 + 1, Kind: channel.FaultDrop},
	}}, testPolicy())
	requireMACOK(t, rep, err)
	if rep.Retries < 2 {
		t.Fatalf("retries = %d, want >= 2", rep.Retries)
	}
}

func TestRetryRecoversFromDroppedResponse(t *testing.T) {
	_, rb0, _, _, _ := faultIndexes()
	rep, err := attestFull(t, channel.FaultConfig{Script: []channel.FaultOp{
		{Dir: channel.DirRecv, Index: rb0, Kind: channel.FaultDrop},
	}}, testPolicy())
	requireMACOK(t, rep, err)
}

func TestRetryRecoversFromCorruptedResponse(t *testing.T) {
	// A frame-sendback response with a flipped bit: the envelope CRC must
	// catch it, the verifier discard and re-request, and the replayed
	// cached response keep the MAC intact. Silent acceptance of the
	// corrupted frame would flip the verdict — the one outcome the
	// transport layer exists to prevent.
	_, _, rb1, _, _ := faultIndexes()
	rep, err := attestFull(t, channel.FaultConfig{Seed: 3, Script: []channel.FaultOp{
		{Dir: channel.DirRecv, Index: rb1, Kind: channel.FaultCorrupt},
	}}, testPolicy())
	requireMACOK(t, rep, err)
	if rep.TransportFaults == 0 {
		t.Fatal("corrupted response not counted as a transport fault")
	}
}

func TestRetryRecoversFromCorruptedCommand(t *testing.T) {
	// The corrupted command reaches the prover, which answers with a
	// decode Error (or a CRC-rejected envelope); either way the verifier
	// must re-send rather than fail or accept.
	_, rb0, _, _, _ := faultIndexes()
	rep, err := attestFull(t, channel.FaultConfig{Seed: 4, Script: []channel.FaultOp{
		{Dir: channel.DirSend, Index: rb0, Kind: channel.FaultCorrupt},
	}}, testPolicy())
	requireMACOK(t, rep, err)
}

func TestRetryRecoversFromDuplicatedCommand(t *testing.T) {
	// The duplicate hits the prover's sequence cache; the extra cached
	// response is discarded by sequence matching on the next exchange.
	_, rb0, _, rb2, _ := faultIndexes()
	rep, err := attestFull(t, channel.FaultConfig{Script: []channel.FaultOp{
		{Dir: channel.DirSend, Index: rb0, Kind: channel.FaultDuplicate},
		{Dir: channel.DirSend, Index: rb2, Kind: channel.FaultDuplicate},
	}}, testPolicy())
	if err != nil {
		t.Fatalf("attest: %v", err)
	}
	if !rep.MACOK {
		t.Fatal("duplicated readback corrupted the MAC — request not idempotent")
	}
}

func TestRetryBudgetExhaustionIsTyped(t *testing.T) {
	// A dead link (every message dropped) must exhaust the budget and
	// surface as a TransportError wrapping a timeout — never as a verdict.
	pol := RetryPolicy{Timeout: 10 * time.Millisecond, MaxRetries: 2, Backoff: time.Millisecond}
	rep, err := attestFull(t, channel.FaultConfig{DropProb: 1}, pol)
	if rep != nil && err == nil {
		t.Fatal("dead link produced a verdict")
	}
	if !IsTransport(err) {
		t.Fatalf("got %v, want TransportError", err)
	}
	if !errors.Is(err, channel.ErrTimeout) {
		t.Fatalf("cause %v, want ErrTimeout", err)
	}
	var te *TransportError
	errors.As(err, &te)
	if te.Attempts != 3 {
		t.Fatalf("attempts = %d, want 3 (1 + 2 retries)", te.Attempts)
	}
}

func TestRetriesDisabledFailsFast(t *testing.T) {
	// MaxRetries 0: one attempt per message; a single dropped command must
	// fail the attestation with a typed transport error.
	_, rb0, _, _, _ := faultIndexes()
	pol := RetryPolicy{Timeout: 20 * time.Millisecond, MaxRetries: 0, Backoff: time.Millisecond}
	_, err := attestFull(t, channel.FaultConfig{Script: []channel.FaultOp{
		{Dir: channel.DirSend, Index: rb0, Kind: channel.FaultDrop},
	}}, pol)
	if !IsTransport(err) {
		t.Fatalf("got %v, want TransportError", err)
	}
}

func TestConnectionResetIsTyped(t *testing.T) {
	cfgMid, _, _, _, _ := faultIndexes()
	_, err := attestFull(t, channel.FaultConfig{Script: []channel.FaultOp{
		{Dir: channel.DirSend, Index: cfgMid, Kind: channel.FaultReset},
	}}, testPolicy())
	if !IsTransport(err) {
		t.Fatalf("got %v, want TransportError", err)
	}
	if !errors.Is(err, channel.ErrReset) {
		t.Fatalf("cause %v, want ErrReset", err)
	}
}

func TestLossyLotterySurvived(t *testing.T) {
	// The acceptance mix — random drops and corruption over the whole
	// full-device run, seeded for reproducibility. The rates are scaled
	// to the ~200-message TinyLX exchange so the test stays fast while
	// still injecting a handful of each fault kind.
	rep, err := attestFull(t, channel.FaultConfig{
		Seed: 42, DropProb: 0.02, CorruptProb: 0.005,
	}, testPolicy())
	if err != nil {
		t.Fatalf("attest: %v", err)
	}
	if !rep.MACOK {
		t.Fatal("lossy link flipped the MAC verdict")
	}
}

func TestTransportErrorFormatting(t *testing.T) {
	te := &TransportError{Op: "ICAP_readback(17)", Attempts: 3, Err: channel.ErrTimeout}
	msg := te.Error()
	for _, want := range []string{"ICAP_readback(17)", "3", "timeout"} {
		if !contains(msg, want) {
			t.Fatalf("error %q missing %q", msg, want)
		}
	}
	if !IsTransport(fmt.Errorf("wrapped: %w", te)) {
		t.Fatal("IsTransport fails through wrapping")
	}
	if IsTransport(errors.New("plain")) {
		t.Fatal("IsTransport false positive")
	}
}

func contains(s, sub string) bool {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return true
		}
	}
	return false
}
