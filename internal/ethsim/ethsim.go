// Package ethsim models the Gigabit Ethernet link between verifier and
// prover.
//
// The SACHa proof of concept transports one protocol command per network
// packet over a Gigabit link (paper §6.1); the ETH core moves one byte per
// 125 MHz cycle, i.e. 8 ns/byte. This package provides the Ethernet II
// frame codec with a bit-serial CRC-32 (the FCS generator is modelled as
// the LFSR a hardware MAC uses, and is cross-checked against the standard
// table-driven implementation in tests) and the line-time model used by
// the Table 3 reproduction.
package ethsim

import (
	"encoding/binary"
	"fmt"
	"time"
)

// EtherTypeSACHa is the experimental ethertype carrying SACHa messages.
const EtherTypeSACHa = 0x88B5

// Physical-layer constants for Gigabit Ethernet.
const (
	NsPerByte     = 8  // one byte per 125 MHz cycle
	PreambleBytes = 8  // preamble + start-of-frame delimiter
	IFGBytes      = 12 // inter-frame gap
	HeaderBytes   = 14 // dst(6) + src(6) + ethertype(2)
	FCSBytes      = 4
	MaxPayload    = 1500
)

// MAC is a 48-bit hardware address.
type MAC [6]byte

// Frame is an Ethernet II frame.
type Frame struct {
	Dst, Src  MAC
	EtherType uint16
	Payload   []byte
}

// crcTable is built at init by running the bit-serial LFSR once per byte
// value — the hardware's shift register unrolled into a lookup table.
var crcTable [256]uint32

func init() {
	for b := 0; b < 256; b++ {
		crc := uint32(b)
		for bit := 0; bit < 8; bit++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0xEDB88320
			} else {
				crc >>= 1
			}
		}
		crcTable[b] = crc
	}
}

// CRC32Serial computes the IEEE 802.3 frame check sequence with the
// bit-serial reflected LFSR (polynomial 0xEDB88320), exactly as a
// hardware MAC's shift register does. CRC32 is the table-accelerated
// equivalent; tests assert they agree.
func CRC32Serial(data []byte) uint32 {
	crc := uint32(0xFFFFFFFF)
	for _, b := range data {
		crc ^= uint32(b)
		for bit := 0; bit < 8; bit++ {
			if crc&1 != 0 {
				crc = crc>>1 ^ 0xEDB88320
			} else {
				crc >>= 1
			}
		}
	}
	return crc ^ 0xFFFFFFFF
}

// CRC32 computes the IEEE 802.3 frame check sequence.
func CRC32(data []byte) uint32 {
	crc := uint32(0xFFFFFFFF)
	for _, b := range data {
		crc = crc>>8 ^ crcTable[byte(crc)^b]
	}
	return crc ^ 0xFFFFFFFF
}

// Marshal serialises the frame with its FCS. Payloads beyond MaxPayload
// are rejected; short frames are *not* padded (the model keeps payload
// sizes exact, and WireBytes accounts for the 64-byte minimum).
func (f *Frame) Marshal() ([]byte, error) {
	if len(f.Payload) > MaxPayload {
		return nil, fmt.Errorf("ethsim: payload %d exceeds MTU %d", len(f.Payload), MaxPayload)
	}
	out := make([]byte, 0, HeaderBytes+len(f.Payload)+FCSBytes)
	out = append(out, f.Dst[:]...)
	out = append(out, f.Src[:]...)
	out = binary.BigEndian.AppendUint16(out, f.EtherType)
	out = append(out, f.Payload...)
	out = binary.BigEndian.AppendUint32(out, CRC32(out))
	return out, nil
}

// Unmarshal parses a frame and verifies its FCS.
func Unmarshal(data []byte) (*Frame, error) {
	if len(data) < HeaderBytes+FCSBytes {
		return nil, fmt.Errorf("ethsim: frame of %d bytes too short", len(data))
	}
	body := data[:len(data)-FCSBytes]
	want := binary.BigEndian.Uint32(data[len(data)-FCSBytes:])
	if got := CRC32(body); got != want {
		return nil, fmt.Errorf("ethsim: FCS mismatch (got %#08x, want %#08x)", got, want)
	}
	f := &Frame{EtherType: binary.BigEndian.Uint16(body[12:14])}
	copy(f.Dst[:], body[0:6])
	copy(f.Src[:], body[6:12])
	f.Payload = append([]byte(nil), body[14:]...)
	return f, nil
}

// WireBytes returns the total on-wire byte count for a payload of the
// given size, including preamble, header, FCS and inter-frame gap. The
// SACHa ETH core emits frames without minimum-size padding (the paper's
// A9/A10 timings correspond to 43- and 59-byte frames), so no 64-byte
// minimum is enforced here.
func WireBytes(payloadLen int) int {
	return PreambleBytes + HeaderBytes + payloadLen + FCSBytes + IFGBytes
}

// WireTime returns the Gigabit line time for a payload of the given size.
func WireTime(payloadLen int) time.Duration {
	return time.Duration(WireBytes(payloadLen)*NsPerByte) * time.Nanosecond
}
