package ethsim

import (
	"hash/crc32"
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func TestCRC32AgainstStdlib(t *testing.T) {
	cases := [][]byte{
		nil,
		{0},
		[]byte("123456789"),
		make([]byte, 1500),
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 20; i++ {
		b := make([]byte, rng.Intn(400))
		rng.Read(b)
		cases = append(cases, b)
	}
	for _, c := range cases {
		if got, want := CRC32(c), crc32.ChecksumIEEE(c); got != want {
			t.Fatalf("CRC32(%d bytes) = %#08x, want %#08x", len(c), got, want)
		}
		if got, want := CRC32Serial(c), CRC32(c); got != want {
			t.Fatalf("bit-serial LFSR disagrees with table: %#08x vs %#08x", got, want)
		}
	}
}

func TestCRC32KnownVector(t *testing.T) {
	// The classic check value for CRC-32/IEEE.
	if got := CRC32([]byte("123456789")); got != 0xCBF43926 {
		t.Fatalf("check value = %#08x, want 0xCBF43926", got)
	}
}

func TestFrameRoundTrip(t *testing.T) {
	f := &Frame{
		Dst:       MAC{0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF},
		Src:       MAC{2, 0, 0, 0, 0, 1},
		EtherType: EtherTypeSACHa,
		Payload:   []byte("hello sacha"),
	}
	wire, err := f.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(wire)
	if err != nil {
		t.Fatal(err)
	}
	if back.Dst != f.Dst || back.Src != f.Src || back.EtherType != f.EtherType {
		t.Fatal("header mismatch")
	}
	if string(back.Payload) != string(f.Payload) {
		t.Fatal("payload mismatch")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	f := &Frame{EtherType: EtherTypeSACHa, Payload: make([]byte, 100)}
	wire, _ := f.Marshal()
	for _, pos := range []int{0, 7, 20, len(wire) - 1} {
		bad := append([]byte(nil), wire...)
		bad[pos] ^= 0x10
		if _, err := Unmarshal(bad); err == nil {
			t.Fatalf("corruption at byte %d accepted", pos)
		}
	}
	if _, err := Unmarshal(wire[:10]); err == nil {
		t.Fatal("short frame accepted")
	}
}

func TestMarshalRejectsJumbo(t *testing.T) {
	f := &Frame{Payload: make([]byte, MaxPayload+1)}
	if _, err := f.Marshal(); err == nil {
		t.Fatal("jumbo payload accepted")
	}
}

func TestWireBytes(t *testing.T) {
	// A 5-byte payload (ICAP_readback / MAC_checksum command) is a
	// 43-byte wire event — the paper's A9 = 344 ns.
	if got := WireBytes(5); got != 43 {
		t.Fatalf("WireBytes(5) = %d, want 43", got)
	}
	// A 328-byte payload (frame sendback: 24-bit-index header + 81 words)
	// gives the byte count behind the paper's A8 = 2,928 ns.
	if got := WireBytes(328); got != 366 {
		t.Fatalf("WireBytes(328) = %d, want 366", got)
	}
	// A 21-byte payload (MAC sendback) is 59 bytes — A10 = 472 ns.
	if got := WireBytes(21); got != 59 {
		t.Fatalf("WireBytes(21) = %d, want 59", got)
	}
}

func TestWireTimeGigabit(t *testing.T) {
	if got := WireTime(328); got != 366*NsPerByte*time.Nanosecond {
		t.Fatalf("WireTime(328) = %v", got)
	}
	// Must be within 10%% of the paper's measured A8 (2,928 ns — the
	// prover's frame sendback).
	a8 := WireTime(328)
	if a8 < 2600*time.Nanosecond || a8 > 3200*time.Nanosecond {
		t.Fatalf("A8 wire time %v outside the paper's ballpark", a8)
	}
}

// Property: marshal/unmarshal round-trips random frames.
func TestQuickFrameRoundTrip(t *testing.T) {
	f := func(dst, src [6]byte, et uint16, seed int64, n16 uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		payload := make([]byte, int(n16)%MaxPayload)
		rng.Read(payload)
		fr := &Frame{Dst: dst, Src: src, EtherType: et, Payload: payload}
		wire, err := fr.Marshal()
		if err != nil {
			return false
		}
		back, err := Unmarshal(wire)
		if err != nil {
			return false
		}
		if back.Dst != dst || back.Src != src || back.EtherType != et || len(back.Payload) != len(payload) {
			return false
		}
		for i := range payload {
			if back.Payload[i] != payload[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
