// Package attestation splits the SACHa verifier into two layers:
//
//   - Plan — everything derivable from the golden image, the device
//     geometry and the protocol options alone. A Plan is built once and
//     is immutable afterwards: the pre-encoded ICAP_config frame/batch
//     wire messages, the validated readback permutation with its
//     pre-encoded ICAP_readback commands, the masked golden comparison
//     frames (or, in CAPTURE mode, the predicted post-step frames), and
//     the pre-encoded checksum command. Plans are safe to share across
//     any number of concurrent Runs, so a fleet verifier pays the
//     O(fabric) golden-image work once per device class instead of once
//     per device.
//
//   - Run — the per-session remainder: the transport session (sequence
//     numbers, retries), the CMAC/transcript state keyed by the device's
//     enrolled key, and the report. Runs are cheap; nothing in the Run
//     path touches the fabric model or re-encodes a frame.
//
// The nonce is deliberately *not* part of this package's state: the
// golden image handed to NewPlan already contains the placed nonce
// register, so a Plan is implicitly bound to one nonce (one sweep), while
// the MAC state lives in the Run because it is keyed per device.
package attestation

import (
	"fmt"

	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/protocol"
	"sacha/internal/timing"

	"time"
)

// MaxConfigBatch caps batched configuration at four frames per packet:
// 4 × 328 bytes plus headers is the most that fits a standard Ethernet
// MTU (larger batches would need jumbo frames).
const MaxConfigBatch = 4

// Spec is the fleet-invariant input of a Plan: the golden image, the
// geometry, and the protocol options that shape the message sequence.
// Per-session knobs (key, retry policy, trace sinks) live in RunOpts.
type Spec struct {
	// Geo is the device geometry of the fleet class.
	Geo *device.Geometry
	// Golden is the full-device golden image: static partition content
	// plus the intended dynamic configuration (including the placed
	// nonce register for this sweep).
	Golden *fabric.Image
	// DynFrames lists the dynamic frames to configure, in transmission
	// order.
	DynFrames []int
	// Offset is the starting frame address i of the ascending modular
	// readback order (paper Fig. 9). Ignored if Permutation is set.
	Offset int
	// Permutation, if non-nil, is the explicit readback order. It must
	// be a bijection over all frames: every frame exactly once. Short,
	// duplicate-bearing or out-of-range permutations are rejected —
	// they would silently exclude frames from the MAC and the golden
	// comparison.
	Permutation []int
	// AppSteps, if non-zero, clocks the configured application that many
	// cycles after configuration and verifies the flip-flop state as
	// well as the configuration (the paper's §8 CAPTURE extension). The
	// masked comparison is then replaced by a raw comparison against a
	// verifier-side prediction, computed once at plan build.
	AppSteps uint32
	// SignatureMode uses the ECDSA extension instead of the MAC.
	SignatureMode bool
	// ConfigBatch sends that many frames per ICAP_config_batch packet
	// (0 or 1 = one frame per packet, the paper's proof of concept). The
	// prover bounds accepted batches by its frame buffer.
	ConfigBatch int
	// PatchableNonce demotes the placed nonce register's value from plan
	// identity to per-session input: the plan records where the nonce
	// bits live (fabric.NonceTemplate), Plan.WithNonce re-derives the
	// affected configuration packets and comparison frames for a new
	// nonce in O(nonce column) instead of O(fabric), and SpecKey hashes
	// the golden image with the nonce bits zeroed — so one cached plan
	// serves every nonce of a device class. The golden image must hold a
	// NonceBits-wide netlist.NonceRegister as the first design placed
	// into fabric.NonceRegion (every core.System golden build does);
	// NewPlan verifies the template against the built artifacts and
	// rejects the spec otherwise.
	PatchableNonce bool
	// NonceBits is the placed nonce register width under PatchableNonce;
	// 0 means 64 (core.NonceBits).
	NonceBits int
}

// nonceBits resolves the NonceBits default.
func (s Spec) nonceBits() int {
	if s.NonceBits == 0 {
		return 64
	}
	return s.NonceBits
}

// configStep is one pre-encoded configuration packet.
type configStep struct {
	wire  []byte
	first int // first frame index, for trace/event labels
	count int
}

// Plan is the immutable, concurrency-safe fleet-shared half of an
// attestation: build it once per (golden image, geometry, options) and
// drive any number of concurrent Runs from it.
type Plan struct {
	geo   *device.Geometry
	model *timing.Model

	configs                     []configStep
	dynFirst, dynLast, dynCount int

	appSteps    uint32
	appStepWire []byte

	order     []int
	readbacks [][]byte // pre-encoded ICAP_readback, parallel to order

	signatureMode bool
	checksumWire  []byte

	// expected[idx] is what frame idx must read back as, after the
	// per-mode normalisation: masked golden words, or the raw predicted
	// words in CAPTURE mode. mask is nil in CAPTURE mode (raw compare).
	expected [][]uint32
	mask     *fabric.Image

	// patch carries the nonce-patching state under Spec.PatchableNonce;
	// nil for plans whose nonce is part of their identity.
	patch *noncePatchState
}

// NewPlan validates the spec and precomputes every fleet-invariant
// artifact of the protocol. The returned Plan never mutates.
func NewPlan(spec Spec) (*Plan, error) {
	start := time.Now()
	defer func() {
		mPlanBuilds.Inc()
		mPlanBuildSeconds.ObserveDuration(time.Since(start))
	}()
	if spec.Geo == nil {
		return nil, fmt.Errorf("attestation: plan without a geometry")
	}
	if spec.Golden == nil {
		return nil, fmt.Errorf("attestation: plan without a golden image")
	}
	n := spec.Geo.NumFrames()
	if spec.Golden.NumFrames() != n {
		return nil, fmt.Errorf("attestation: golden image has %d frames, geometry %s has %d",
			spec.Golden.NumFrames(), spec.Geo.Name, n)
	}
	if len(spec.DynFrames) == 0 {
		return nil, fmt.Errorf("attestation: no dynamic frames to configure")
	}
	for _, idx := range spec.DynFrames {
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("attestation: dynamic frame %d out of range [0,%d)", idx, n)
		}
	}
	order, err := readbackOrder(n, spec.Offset, spec.Permutation)
	if err != nil {
		return nil, err
	}

	p := &Plan{
		geo:           spec.Geo,
		model:         timing.NewModel(spec.Geo),
		dynFirst:      spec.DynFrames[0],
		dynLast:       spec.DynFrames[len(spec.DynFrames)-1],
		dynCount:      len(spec.DynFrames),
		appSteps:      spec.AppSteps,
		order:         order,
		signatureMode: spec.SignatureMode,
	}

	if spec.PatchableNonce {
		if err := p.initNoncePatch(spec); err != nil {
			return nil, err
		}
	}

	// Configuration packets, one frame per packet or batched (§6.1).
	batch := spec.ConfigBatch
	if batch < 1 {
		batch = 1
	}
	if batch > MaxConfigBatch {
		batch = MaxConfigBatch
	}
	for start := 0; start < len(spec.DynFrames); start += batch {
		end := start + batch
		if end > len(spec.DynFrames) {
			end = len(spec.DynFrames)
		}
		var m *protocol.Message
		if end-start == 1 {
			m = protocol.Config(spec.DynFrames[start], spec.Golden.Frame(spec.DynFrames[start]))
		} else {
			m = &protocol.Message{Type: protocol.MsgICAPConfigBatch}
			for _, idx := range spec.DynFrames[start:end] {
				m.Batch = append(m.Batch, protocol.FrameRecord{Index: uint32(idx), Words: spec.Golden.Frame(idx)})
			}
		}
		wire, err := m.Encode()
		if err != nil {
			return nil, err
		}
		p.configs = append(p.configs, configStep{wire: wire, first: spec.DynFrames[start], count: end - start})
		p.recordPatchStep(spec, spec.DynFrames[start:end])
	}

	if spec.AppSteps > 0 {
		wire, err := (&protocol.Message{Type: protocol.MsgAppStep, Steps: spec.AppSteps}).Encode()
		if err != nil {
			return nil, err
		}
		p.appStepWire = wire
	}

	p.readbacks = make([][]byte, len(order))
	for k, idx := range order {
		wire, err := protocol.Readback(idx).Encode()
		if err != nil {
			return nil, err
		}
		p.readbacks[k] = wire
	}

	cks := protocol.Checksum()
	if spec.SignatureMode {
		cks = &protocol.Message{Type: protocol.MsgSigChecksum}
	}
	if p.checksumWire, err = cks.Encode(); err != nil {
		return nil, err
	}

	// Comparison frames. CAPTURE mode predicts the post-step readback
	// once here — the full fabric rebuild plus AppSteps clock ticks that
	// the pre-plan verifier paid on every attestation. Plain mode masks
	// the golden frames once. Either way the Plan owns fresh slices: it
	// holds no live reference into the caller's golden image.
	p.expected = make([][]uint32, n)
	if spec.AppSteps > 0 {
		pred, err := predict(spec.Geo, spec.Golden, spec.AppSteps)
		if err != nil {
			return nil, err
		}
		for idx := 0; idx < n; idx++ {
			w, err := pred.ReadbackFrame(idx)
			if err != nil {
				return nil, err
			}
			p.expected[idx] = w
		}
	} else {
		p.mask = fabric.GenerateMask(spec.Geo)
		for idx := 0; idx < n; idx++ {
			p.expected[idx] = fabric.ApplyMask(spec.Golden.Frame(idx), p.mask.Frame(idx))
		}
	}
	if p.patch != nil {
		// Re-derive the nonce-dependent artifacts through the patch path
		// at the built nonce and demand bit-identity with the cold build
		// above. This pins WithNonce's correctness at build time: if the
		// golden image's nonce partition is not the assumed hold-register
		// layout, the spec is rejected instead of producing plans that
		// drift from cold builds at other nonces.
		if err := p.verifyPatchBase(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// readbackOrder expands offset/permutation into the concrete frame order
// and enforces that it is a bijection over all frames: every frame
// exactly once. Anything less would silently exclude frames from the MAC
// and the comparison, turning "attested" into "partially attested".
func readbackOrder(n, offset int, perm []int) ([]int, error) {
	if perm == nil {
		order := make([]int, n)
		start := ((offset % n) + n) % n
		for k := range order {
			order[k] = (start + k) % n
		}
		return order, nil
	}
	if len(perm) != n {
		return nil, fmt.Errorf("attestation: permutation covers %d of %d frames — every frame must be read back exactly once", len(perm), n)
	}
	seen := make([]bool, n)
	for _, idx := range perm {
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("attestation: permutation entry %d out of range [0,%d)", idx, n)
		}
		if seen[idx] {
			return nil, fmt.Errorf("attestation: permutation visits frame %d twice — not a bijection", idx)
		}
		seen[idx] = true
	}
	out := make([]int, n)
	copy(out, perm)
	return out, nil
}

// predict builds the verifier-side state prediction for the CAPTURE
// extension: configure a local fabric with the golden image exactly as
// the device is configured, then clock the dynamic partition.
func predict(geo *device.Geometry, golden *fabric.Image, steps uint32) (*fabric.Fabric, error) {
	fab := fabric.New(geo)
	for idx := 0; idx < geo.NumFrames(); idx++ {
		if err := fab.WriteFrame(idx, golden.Frame(idx)); err != nil {
			return nil, err
		}
	}
	live, err := fab.Live(fabric.DynRegion(geo))
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < steps; i++ {
		if err := live.Step(); err != nil {
			return nil, err
		}
	}
	return fab, nil
}

// Geo returns the plan's device geometry.
func (p *Plan) Geo() *device.Geometry { return p.geo }

// NumFrames returns the frame count covered by the plan's readback.
func (p *Plan) NumFrames() int { return len(p.order) }

// Order returns a copy of the validated readback order.
func (p *Plan) Order() []int {
	out := make([]int, len(p.order))
	copy(out, p.order)
	return out
}

// ConfigPackets returns the number of pre-encoded configuration packets.
func (p *Plan) ConfigPackets() int { return len(p.configs) }

// AppSteps returns the CAPTURE step count (0 = plain attestation).
func (p *Plan) AppSteps() uint32 { return p.appSteps }

// SignatureMode reports whether Runs use the ECDSA extension.
func (p *Plan) SignatureMode() bool { return p.signatureMode }
