// Package attestation splits the SACHa verifier into two layers:
//
//   - Plan — everything derivable from the golden image, the device
//     geometry and the protocol options alone. A Plan is built once and
//     is immutable afterwards: the pre-encoded ICAP_config frame/batch
//     wire messages, the validated readback permutation with its
//     pre-encoded ICAP_readback commands, the masked golden comparison
//     frames (or, in CAPTURE mode, the predicted post-step frames), and
//     the pre-encoded checksum command. Plans are safe to share across
//     any number of concurrent Runs, so a fleet verifier pays the
//     O(fabric) golden-image work once per device class instead of once
//     per device.
//
//   - Run — the per-session remainder: the transport session (sequence
//     numbers, retries), the CMAC/transcript state keyed by the device's
//     enrolled key, and the report. Runs are cheap; nothing in the Run
//     path touches the fabric model or re-encodes a frame.
//
// The nonce is deliberately *not* part of this package's state: the
// golden image handed to NewPlan already contains the placed nonce
// register, so a Plan is implicitly bound to one nonce (one sweep), while
// the MAC state lives in the Run because it is keyed per device.
package attestation

import (
	"fmt"
	"sort"

	"sacha/internal/compress"
	"sacha/internal/device"
	"sacha/internal/fabric"
	"sacha/internal/protocol"
	"sacha/internal/timing"

	"time"
)

// MaxConfigBatch caps batched configuration at four frames per packet:
// 4 × 328 bytes plus headers is the most that fits a standard Ethernet
// MTU (larger batches would need jumbo frames).
const MaxConfigBatch = 4

// CompressBatch is the frame count of one compressed configuration
// batch and one delta-mode scan probe. Sixteen frames is the prover's
// packet-buffer capacity (prover.FrameBufferFrames), and at bitstream
// compression ratios a 16-frame compressed batch still fits the same
// Ethernet MTU that bounds MaxConfigBatch for raw frames.
const CompressBatch = protocol.MaxScanFrames

// Spec is the fleet-invariant input of a Plan: the golden image, the
// geometry, and the protocol options that shape the message sequence.
// Per-session knobs (key, retry policy, trace sinks) live in RunOpts.
type Spec struct {
	// Geo is the device geometry of the fleet class.
	Geo *device.Geometry
	// Golden is the full-device golden image: static partition content
	// plus the intended dynamic configuration (including the placed
	// nonce register for this sweep).
	Golden *fabric.Image
	// DynFrames lists the dynamic frames to configure, in transmission
	// order.
	DynFrames []int
	// Offset is the starting frame address i of the ascending modular
	// readback order (paper Fig. 9). Ignored if Permutation is set.
	Offset int
	// Permutation, if non-nil, is the explicit readback order. It must
	// be a bijection over all frames: every frame exactly once. Short,
	// duplicate-bearing or out-of-range permutations are rejected —
	// they would silently exclude frames from the MAC and the golden
	// comparison.
	Permutation []int
	// AppSteps, if non-zero, clocks the configured application that many
	// cycles after configuration and verifies the flip-flop state as
	// well as the configuration (the paper's §8 CAPTURE extension). The
	// masked comparison is then replaced by a raw comparison against a
	// verifier-side prediction, computed once at plan build.
	AppSteps uint32
	// SignatureMode uses the ECDSA extension instead of the MAC.
	SignatureMode bool
	// ConfigBatch sends that many frames per ICAP_config_batch packet
	// (0 or 1 = one frame per packet, the paper's proof of concept). The
	// prover bounds accepted batches by its frame buffer.
	ConfigBatch int
	// PatchableNonce demotes the placed nonce register's value from plan
	// identity to per-session input: the plan records where the nonce
	// bits live (fabric.NonceTemplate), Plan.WithNonce re-derives the
	// affected configuration packets and comparison frames for a new
	// nonce in O(nonce column) instead of O(fabric), and SpecKey hashes
	// the golden image with the nonce bits zeroed — so one cached plan
	// serves every nonce of a device class. The golden image must hold a
	// NonceBits-wide netlist.NonceRegister as the first design placed
	// into fabric.NonceRegion (every core.System golden build does);
	// NewPlan verifies the template against the built artifacts and
	// rejects the spec otherwise.
	PatchableNonce bool
	// NonceBits is the placed nonce register width under PatchableNonce;
	// 0 means 64 (core.NonceBits).
	NonceBits int
	// Compress additionally pre-encodes the configuration as compressed
	// 16-frame batches (MsgICAPConfigBatchC) and lets Runs negotiate the
	// compressed encodings via Hello. Sessions whose prover does not
	// acknowledge the capability fall back to the plain packets; H_Vrf
	// and the verdict are independent of the negotiation outcome.
	Compress bool
	// Delta precomputes the artifacts of the delta configuration mode:
	// pre-encoded MsgScan probes over the dynamic frames, the raw
	// expected scan readback, and rewrite packets covering exactly the
	// nonce-register frames (the only frames that legitimately differ
	// between a healthy device and a fresh golden image). Runs opt in
	// per session via RunOpts.Delta. Delta mode requires AppSteps == 0:
	// skipping a frame's rewrite also skips the flip-flop reset that
	// CAPTURE-mode prediction assumes, so the two are incompatible by
	// construction. The golden image must hold the placed nonce register
	// (as under PatchableNonce) so the rewrite set is derivable.
	Delta bool
}

// nonceBits resolves the NonceBits default.
func (s Spec) nonceBits() int {
	if s.NonceBits == 0 {
		return 64
	}
	return s.NonceBits
}

// configStep is one pre-encoded configuration packet.
type configStep struct {
	wire  []byte
	first int // first frame index, for trace/event labels
	count int
}

// scanStep is one pre-encoded delta-mode scan probe with the frame
// indices it covers, in probe order.
type scanStep struct {
	wire   []byte
	frames []int
}

// Plan is the immutable, concurrency-safe fleet-shared half of an
// attestation: build it once per (golden image, geometry, options) and
// drive any number of concurrent Runs from it.
type Plan struct {
	geo   *device.Geometry
	model *timing.Model

	configs                     []configStep
	dynFirst, dynLast, dynCount int

	appSteps    uint32
	appStepWire []byte

	order     []int
	readbacks [][]byte // pre-encoded ICAP_readback, parallel to order

	signatureMode bool
	checksumWire  []byte

	// expected[idx] is what frame idx must read back as, after the
	// per-mode normalisation: masked golden words, or the raw predicted
	// words in CAPTURE mode. mask is nil in CAPTURE mode (raw compare).
	expected [][]uint32
	mask     *fabric.Image

	// patch carries the nonce-patching state under Spec.PatchableNonce;
	// nil for plans whose nonce is part of their identity.
	patch *noncePatchState

	// Capability-negotiated artifacts (Spec.Compress / Spec.Delta); all
	// nil when the spec requested neither.
	helloCaps uint32
	helloWire []byte
	// configsC are the compressed configuration batches, used instead of
	// configs when a session negotiates CapCompress.
	configsC []configStep
	// scanSteps are the pre-encoded MsgScan probes covering DynFrames;
	// scanExpected[idx] is the raw readback frame idx must scan as on a
	// device that already holds this plan's golden configuration
	// (predicted post-configuration readback: memory bits plus held
	// flip-flop state — a *raw* comparison, unlike the masked verdict,
	// because skipping a rewrite is only sound if the frame is
	// bit-identical to what a full overwrite would have left).
	scanSteps    []scanStep
	scanExpected [][]uint32
	// nonceSet marks the frames that legitimately differ between a
	// healthy device (configured at the previous nonce) and this plan's
	// golden image; deltaSteps / deltaStepsC are the pre-encoded rewrite
	// packets covering exactly those frames, plain and compressed.
	nonceSet    map[int]bool
	deltaSteps  []configStep
	deltaStepsC []configStep
}

// NewPlan validates the spec and precomputes every fleet-invariant
// artifact of the protocol. The returned Plan never mutates.
func NewPlan(spec Spec) (*Plan, error) {
	start := time.Now()
	defer func() {
		mPlanBuilds.Inc()
		mPlanBuildSeconds.ObserveDuration(time.Since(start))
	}()
	if spec.Geo == nil {
		return nil, fmt.Errorf("attestation: plan without a geometry")
	}
	if spec.Golden == nil {
		return nil, fmt.Errorf("attestation: plan without a golden image")
	}
	n := spec.Geo.NumFrames()
	if spec.Golden.NumFrames() != n {
		return nil, fmt.Errorf("attestation: golden image has %d frames, geometry %s has %d",
			spec.Golden.NumFrames(), spec.Geo.Name, n)
	}
	if len(spec.DynFrames) == 0 {
		return nil, fmt.Errorf("attestation: no dynamic frames to configure")
	}
	for _, idx := range spec.DynFrames {
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("attestation: dynamic frame %d out of range [0,%d)", idx, n)
		}
	}
	if spec.Delta && spec.AppSteps > 0 {
		return nil, fmt.Errorf("attestation: delta mode is incompatible with CAPTURE (AppSteps=%d): a skipped rewrite also skips the flip-flop reset the prediction assumes", spec.AppSteps)
	}
	order, err := readbackOrder(n, spec.Offset, spec.Permutation)
	if err != nil {
		return nil, err
	}

	p := &Plan{
		geo:           spec.Geo,
		model:         timing.NewModel(spec.Geo),
		dynFirst:      spec.DynFrames[0],
		dynLast:       spec.DynFrames[len(spec.DynFrames)-1],
		dynCount:      len(spec.DynFrames),
		appSteps:      spec.AppSteps,
		order:         order,
		signatureMode: spec.SignatureMode,
	}

	if spec.PatchableNonce {
		if err := p.initNoncePatch(spec); err != nil {
			return nil, err
		}
	}

	// Configuration packets, one frame per packet or batched (§6.1).
	batch := spec.ConfigBatch
	if batch < 1 {
		batch = 1
	}
	if batch > MaxConfigBatch {
		batch = MaxConfigBatch
	}
	goldenWords := func(_ int, f int) []uint32 { return spec.Golden.Frame(f) }
	for start := 0; start < len(spec.DynFrames); start += batch {
		end := start + batch
		if end > len(spec.DynFrames) {
			end = len(spec.DynFrames)
		}
		frames := spec.DynFrames[start:end]
		wire, err := encodeConfigPacket(frames, goldenWords, false)
		if err != nil {
			return nil, err
		}
		p.configs = append(p.configs, configStep{wire: wire, first: frames[0], count: len(frames)})
		p.recordPatchStep(spec, tgtConfig, len(p.configs)-1, frames)
	}

	// Compressed configuration batches (Spec.Compress): same frames,
	// same order, 16 frames per packet behind one compress.Encode stream.
	if spec.Compress {
		for start := 0; start < len(spec.DynFrames); start += CompressBatch {
			end := start + CompressBatch
			if end > len(spec.DynFrames) {
				end = len(spec.DynFrames)
			}
			frames := spec.DynFrames[start:end]
			wire, err := encodeConfigPacket(frames, goldenWords, true)
			if err != nil {
				return nil, err
			}
			p.configsC = append(p.configsC, configStep{wire: wire, first: frames[0], count: len(frames)})
			p.recordPatchStep(spec, tgtConfigC, len(p.configsC)-1, frames)
		}
	}

	// Delta-mode artifacts (Spec.Delta): scan probes, the raw expected
	// scan readback, and the nonce-frame rewrite packets.
	if spec.Delta {
		if err := p.initDelta(spec); err != nil {
			return nil, err
		}
	}

	if spec.Compress || spec.Delta {
		if spec.Compress {
			p.helloCaps |= protocol.CapCompress
		}
		if spec.Delta {
			p.helloCaps |= protocol.CapScan
		}
		if p.helloWire, err = protocol.Hello(p.helloCaps).Encode(); err != nil {
			return nil, err
		}
	}

	if spec.AppSteps > 0 {
		wire, err := (&protocol.Message{Type: protocol.MsgAppStep, Steps: spec.AppSteps}).Encode()
		if err != nil {
			return nil, err
		}
		p.appStepWire = wire
	}

	p.readbacks = make([][]byte, len(order))
	for k, idx := range order {
		wire, err := protocol.Readback(idx).Encode()
		if err != nil {
			return nil, err
		}
		p.readbacks[k] = wire
	}

	cks := protocol.Checksum()
	if spec.SignatureMode {
		cks = &protocol.Message{Type: protocol.MsgSigChecksum}
	}
	if p.checksumWire, err = cks.Encode(); err != nil {
		return nil, err
	}

	// Comparison frames. CAPTURE mode predicts the post-step readback
	// once here — the full fabric rebuild plus AppSteps clock ticks that
	// the pre-plan verifier paid on every attestation. Plain mode masks
	// the golden frames once. Either way the Plan owns fresh slices: it
	// holds no live reference into the caller's golden image.
	p.expected = make([][]uint32, n)
	if spec.AppSteps > 0 {
		pred, err := predict(spec.Geo, spec.Golden, spec.AppSteps)
		if err != nil {
			return nil, err
		}
		for idx := 0; idx < n; idx++ {
			w, err := pred.ReadbackFrame(idx)
			if err != nil {
				return nil, err
			}
			p.expected[idx] = w
		}
	} else {
		p.mask = fabric.GenerateMask(spec.Geo)
		for idx := 0; idx < n; idx++ {
			p.expected[idx] = fabric.ApplyMask(spec.Golden.Frame(idx), p.mask.Frame(idx))
		}
	}
	if p.patch != nil {
		// Re-derive the nonce-dependent artifacts through the patch path
		// at the built nonce and demand bit-identity with the cold build
		// above. This pins WithNonce's correctness at build time: if the
		// golden image's nonce partition is not the assumed hold-register
		// layout, the spec is rejected instead of producing plans that
		// drift from cold builds at other nonces.
		if err := p.verifyPatchBase(); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// encodeConfigPacket pre-encodes one configuration packet covering
// frames, with wordsAt(k, frame) supplying the words of the k-th frame.
// Plain packets use ICAP_config (single frame) or ICAP_config_batch;
// compressed packets concatenate the words behind one compress.Encode
// stream (ICAP_config_batch_c).
func encodeConfigPacket(frames []int, wordsAt func(k, frame int) []uint32, compressed bool) ([]byte, error) {
	var m *protocol.Message
	switch {
	case compressed:
		m = &protocol.Message{Type: protocol.MsgICAPConfigBatchC}
		all := make([]uint32, 0, len(frames)*device.FrameWords)
		for k, f := range frames {
			m.Frames = append(m.Frames, uint32(f))
			all = append(all, wordsAt(k, f)...)
		}
		m.Comp = compress.Encode(all)
	case len(frames) == 1:
		m = protocol.Config(frames[0], wordsAt(0, frames[0]))
	default:
		m = &protocol.Message{Type: protocol.MsgICAPConfigBatch}
		for k, f := range frames {
			m.Batch = append(m.Batch, protocol.FrameRecord{Index: uint32(f), Words: wordsAt(k, f)})
		}
	}
	return m.Encode()
}

// initDelta precomputes the delta-mode artifacts: the scan probes, the
// raw expected scan readback, the nonce-frame set and the rewrite
// packets covering it. Called by NewPlan after the full-overwrite
// packets are built.
func (p *Plan) initDelta(spec Spec) error {
	// Scan probes: 16 frames per round trip over the dynamic frames.
	for start := 0; start < len(spec.DynFrames); start += CompressBatch {
		end := start + CompressBatch
		if end > len(spec.DynFrames) {
			end = len(spec.DynFrames)
		}
		frames := append([]int(nil), spec.DynFrames[start:end]...)
		u := make([]uint32, len(frames))
		for k, f := range frames {
			u[k] = uint32(f)
		}
		wire, err := protocol.Scan(u).Encode()
		if err != nil {
			return err
		}
		p.scanSteps = append(p.scanSteps, scanStep{wire: wire, frames: frames})
	}

	// The raw expected scan readback is the predicted post-configuration
	// readback: golden memory bits with every used flip-flop's capture
	// bit holding the flip-flop's init value. Raw equality of a scanned
	// frame against this is exactly the condition under which skipping
	// its rewrite leaves the Phase-2 readback bit-identical to a full
	// overwrite (DESIGN.md §13).
	pred, err := predict(spec.Geo, spec.Golden, 0)
	if err != nil {
		return err
	}
	p.scanExpected = make([][]uint32, spec.Geo.NumFrames())
	for _, idx := range spec.DynFrames {
		if p.scanExpected[idx] != nil {
			continue
		}
		w, err := pred.ReadbackFrame(idx)
		if err != nil {
			return err
		}
		p.scanExpected[idx] = w
	}

	// The expected-delta set: exactly the frames carrying nonce-register
	// bits (init or capture). They are the only frames that legitimately
	// differ between a healthy device configured at the previous nonce
	// and this plan's golden image, so the rewrite packets cover them
	// unconditionally — a delta run never encodes a packet at runtime.
	refs := p.patch.templateBits()
	if refs == nil {
		if refs, err = fabric.NonceTemplate(spec.Geo, spec.nonceBits()); err != nil {
			return fmt.Errorf("attestation: delta mode needs the placed nonce register to derive its rewrite set: %w", err)
		}
	}
	inNonce := map[int]bool{}
	for _, ref := range refs {
		inNonce[ref.InitFrame] = true
		inNonce[ref.CapFrame] = true
	}
	var nonceFrames []int
	seen := map[int]bool{}
	for _, f := range spec.DynFrames {
		if inNonce[f] && !seen[f] {
			seen[f] = true
			nonceFrames = append(nonceFrames, f)
		}
	}
	for f := range inNonce {
		if !seen[f] {
			return fmt.Errorf("attestation: nonce frame %d is not in the dynamic frame list — a delta rewrite would never configure it", f)
		}
	}
	p.nonceSet = inNonce

	goldenWords := func(_ int, f int) []uint32 { return spec.Golden.Frame(f) }
	for start := 0; start < len(nonceFrames); start += MaxConfigBatch {
		end := start + MaxConfigBatch
		if end > len(nonceFrames) {
			end = len(nonceFrames)
		}
		frames := nonceFrames[start:end]
		wire, err := encodeConfigPacket(frames, goldenWords, false)
		if err != nil {
			return err
		}
		p.deltaSteps = append(p.deltaSteps, configStep{wire: wire, first: frames[0], count: len(frames)})
		p.recordPatchStep(spec, tgtDelta, len(p.deltaSteps)-1, frames)
	}
	if spec.Compress {
		for start := 0; start < len(nonceFrames); start += CompressBatch {
			end := start + CompressBatch
			if end > len(nonceFrames) {
				end = len(nonceFrames)
			}
			frames := nonceFrames[start:end]
			wire, err := encodeConfigPacket(frames, goldenWords, true)
			if err != nil {
				return err
			}
			p.deltaStepsC = append(p.deltaStepsC, configStep{wire: wire, first: frames[0], count: len(frames)})
			p.recordPatchStep(spec, tgtDeltaC, len(p.deltaStepsC)-1, frames)
		}
	}
	return nil
}

// readbackOrder expands offset/permutation into the concrete frame order
// and enforces that it is a bijection over all frames: every frame
// exactly once. Anything less would silently exclude frames from the MAC
// and the comparison, turning "attested" into "partially attested".
func readbackOrder(n, offset int, perm []int) ([]int, error) {
	if perm == nil {
		order := make([]int, n)
		start := ((offset % n) + n) % n
		for k := range order {
			order[k] = (start + k) % n
		}
		return order, nil
	}
	if len(perm) != n {
		return nil, fmt.Errorf("attestation: permutation covers %d of %d frames — every frame must be read back exactly once", len(perm), n)
	}
	seen := make([]bool, n)
	for _, idx := range perm {
		if idx < 0 || idx >= n {
			return nil, fmt.Errorf("attestation: permutation entry %d out of range [0,%d)", idx, n)
		}
		if seen[idx] {
			return nil, fmt.Errorf("attestation: permutation visits frame %d twice — not a bijection", idx)
		}
		seen[idx] = true
	}
	out := make([]int, n)
	copy(out, perm)
	return out, nil
}

// predict builds the verifier-side state prediction for the CAPTURE
// extension: configure a local fabric with the golden image exactly as
// the device is configured, then clock the dynamic partition.
func predict(geo *device.Geometry, golden *fabric.Image, steps uint32) (*fabric.Fabric, error) {
	fab := fabric.New(geo)
	for idx := 0; idx < geo.NumFrames(); idx++ {
		if err := fab.WriteFrame(idx, golden.Frame(idx)); err != nil {
			return nil, err
		}
	}
	live, err := fab.Live(fabric.DynRegion(geo))
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < steps; i++ {
		if err := live.Step(); err != nil {
			return nil, err
		}
	}
	return fab, nil
}

// Geo returns the plan's device geometry.
func (p *Plan) Geo() *device.Geometry { return p.geo }

// NumFrames returns the frame count covered by the plan's readback.
func (p *Plan) NumFrames() int { return len(p.order) }

// Order returns a copy of the validated readback order.
func (p *Plan) Order() []int {
	out := make([]int, len(p.order))
	copy(out, p.order)
	return out
}

// ConfigPackets returns the number of pre-encoded configuration packets.
func (p *Plan) ConfigPackets() int { return len(p.configs) }

// DeltaRewriteFrames returns the frames an applied delta run rewrites —
// the nonce-register frames — in ascending order; nil for plans built
// without Spec.Delta.
func (p *Plan) DeltaRewriteFrames() []int {
	if p.nonceSet == nil {
		return nil
	}
	out := make([]int, 0, len(p.nonceSet))
	for f := range p.nonceSet {
		out = append(out, f)
	}
	sort.Ints(out)
	return out
}

// AppSteps returns the CAPTURE step count (0 = plain attestation).
func (p *Plan) AppSteps() uint32 { return p.appSteps }

// SignatureMode reports whether Runs use the ECDSA extension.
func (p *Plan) SignatureMode() bool { return p.signatureMode }
