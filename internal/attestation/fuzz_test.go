package attestation_test

import (
	"strings"
	"sync"
	"testing"

	"sacha/internal/attestation"
	"sacha/internal/core"
	"sacha/internal/device"
	"sacha/internal/netlist"
)

// fuzzBase lazily builds one shared patchable TinyLX plan plus the cold
// fingerprints the fuzzer compares against. Building it once keeps each
// fuzz iteration at patch cost, not fabric-build cost.
var fuzzBase struct {
	once sync.Once
	plan *attestation.Plan
	err  error
}

func fuzzPlan(t testing.TB) *attestation.Plan {
	t.Helper()
	fuzzBase.once.Do(func() {
		golden, dyn, err := core.BuildGolden(device.TinyLX(), netlist.Blinker(8), 0xD00D, 0x5EED)
		if err != nil {
			fuzzBase.err = err
			return
		}
		fuzzBase.plan, fuzzBase.err = attestation.NewPlan(attestation.Spec{
			Geo:            device.TinyLX(),
			Golden:         golden,
			DynFrames:      dyn,
			ConfigBatch:    3,
			PatchableNonce: true,
			NonceBits:      core.NonceBits,
		})
	})
	if fuzzBase.err != nil {
		t.Fatal(fuzzBase.err)
	}
	return fuzzBase.plan
}

// FuzzFreshnessPolicy throws hostile inputs at the freshness policy's
// two parsing/patching surfaces:
//
//   - ParseFreshnessPolicy must never panic, and any accepted string
//     must round-trip (parse(policy.String()) == policy) and be Valid.
//   - Plan.WithNonce must stay path-independent and idempotent for ANY
//     nonce — zero, all-ones, repeated, whatever the fuzzer finds —
//     because the swarm patches a shared plan with attacker-observable
//     nonces and any drift between patch orders would fork H_Vrf.
func FuzzFreshnessPolicy(f *testing.F) {
	f.Add("per-sweep", uint64(0), uint64(0))
	f.Add("per-device", uint64(0), ^uint64(0))
	f.Add("rotate-key", uint64(0x5EED), uint64(0x5EED))
	f.Add("PerDevice", ^uint64(0), uint64(1))
	f.Add(" bogus ", uint64(42), uint64(42))
	f.Fuzz(func(t *testing.T, raw string, a, b uint64) {
		pol, err := attestation.ParseFreshnessPolicy(raw)
		if err == nil {
			if !pol.Valid() {
				t.Fatalf("ParseFreshnessPolicy(%q) accepted invalid policy %d", raw, int(pol))
			}
			round, err := attestation.ParseFreshnessPolicy(pol.String())
			if err != nil || round != pol {
				t.Fatalf("%q → %v does not round-trip: %v %v", raw, pol, round, err)
			}
		} else if strings.TrimSpace(strings.ToLower(raw)) == "per-sweep" {
			t.Fatalf("canonical spelling rejected: %v", err)
		}

		base := fuzzPlan(t)
		pa, err := base.WithNonce(a)
		if err != nil {
			t.Fatalf("WithNonce(%#x): %v", a, err)
		}
		// Idempotence: re-patching to the same nonce is the same plan.
		again, err := pa.WithNonce(a)
		if err != nil || again.Fingerprint() != pa.Fingerprint() {
			t.Fatalf("WithNonce(%#x) not idempotent: %v", a, err)
		}
		// Path independence: base→a→b must equal base→b.
		chained, err := pa.WithNonce(b)
		if err != nil {
			t.Fatalf("WithNonce(%#x) after %#x: %v", b, a, err)
		}
		direct, err := base.WithNonce(b)
		if err != nil {
			t.Fatalf("WithNonce(%#x): %v", b, err)
		}
		if chained.Fingerprint() != direct.Fingerprint() {
			t.Fatalf("patch path dependence: base→%#x→%#x != base→%#x", a, b, b)
		}
		if n, ok := direct.Nonce(); !ok || n != b {
			t.Fatalf("patched plan reports nonce %#x/%v, want %#x", n, ok, b)
		}
		// Distinct nonces must yield distinct artifacts — a collision
		// would mean the patch silently ignored nonce bits.
		if a != b && chained.Fingerprint() == pa.Fingerprint() {
			t.Fatalf("plans for nonces %#x and %#x are identical", a, b)
		}
	})
}
